// Package whilepar parallelizes WHILE loops and DO loops with
// conditional exits, implementing the framework of Rauchwerger & Padua,
// "Parallelizing WHILE Loops for Multiprocessor Systems".
//
// A WHILE loop is modelled as a dispatching recurrence (the dominating
// recurrence controlling the loop), a remainder body, and termination
// conditions that are either remainder invariant (RI — they depend only
// on the dispatcher) or remainder variant (RV — they depend on values
// the body computes).  Depending on the dispatcher's kind the library
// transforms the loop with:
//
//   - Induction-1 / Induction-2 (closed-form dispatchers): the loop runs
//     as a DOALL with the termination test folded into the body, the
//     last valid iteration recovered by a minimum reduction or QUIT;
//   - parallel-prefix distribution (associative recurrences);
//   - General-1/2/3 (linked-list and other general recurrences):
//     lock-serialized, statically assigned, or dynamically assigned
//     private-cursor traversals.
//
// When a parallel execution can overshoot the termination condition, or
// when the body's memory accesses cannot be analyzed, the execution is
// speculative: shared arrays are checkpointed and time-stamped, the PD
// test watches for cross-iteration dependences, and on success the
// overshot iterations are undone (on failure the loop re-executes
// sequentially).  See RunInduction, RunAssociative, RunList and DoAny.
//
// The managed-memory requirement: the run-time techniques interpose on
// the body's loads and stores, so loop state that other iterations might
// conflict on must live in *Array values accessed through the iteration
// context (Iter.Load / Iter.Store).
package whilepar

import (
	"context"

	"whilepar/internal/autotune"
	"whilepar/internal/core"
	"whilepar/internal/costmodel"
	"whilepar/internal/doany"
	"whilepar/internal/genrec"
	"whilepar/internal/induction"
	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
	"whilepar/internal/speculate"
)

// Array is a managed shared array; all loop state the run-time system
// must be able to checkpoint, stamp and restore lives in Arrays.
type Array = mem.Array

// NewArray allocates a managed array of n float64 elements.
func NewArray(name string, n int) *Array { return mem.NewArray(name, n) }

// FromSlice wraps an existing slice (not copied) as a managed array.
func FromSlice(name string, data []float64) *Array { return mem.FromSlice(name, data) }

// Tracker interposes on managed-array loads and stores; the run-time
// system hands one to custom parallel runners (e.g. RunStripped's
// per-strip executor) so their accesses are time-stamped and shadowed.
type Tracker = mem.Tracker

// Iter is the per-iteration context handed to loop bodies; bodies access
// managed arrays through it and may charge abstract work units for the
// simulated-machine backend.
type Iter = loopir.Iter

// IntLoop is a WHILE loop whose dispatcher yields ints (inductions).
type IntLoop = loopir.Loop[int]

// FloatLoop is a WHILE loop whose dispatcher yields float64s
// (associative recurrences such as x = a*x + b).
type FloatLoop = loopir.Loop[float64]

// Node is a linked-list node, the dispatcher value of a general-
// recurrence loop.
type Node = list.Node

// BuildList constructs an n-node list with values/work from f (nil for
// zeros), returning the head.
func BuildList(n int, f func(i int) (val, work float64)) *Node { return list.Build(n, f) }

// Dispatcher constructors and taxonomy.
type (
	// IntInduction is the dispatcher d(i) = C*i + B.
	IntInduction = loopir.IntInduction
	// Affine is the associative dispatcher x(i) = A*x(i-1)+B, x(0)=X0.
	Affine = loopir.Affine
	// Class is a loop's taxonomy cell (dispatcher kind x terminator
	// kind), as Table 1 of the paper classifies it.
	Class = loopir.Class
	// TaxonomyRow is one rendered cell of Table 1.
	TaxonomyRow = loopir.TaxonomyRow
)

// Dispatcher and terminator kinds (Table 1).
const (
	MonotonicInduction    = loopir.MonotonicInduction
	NonMonotonicInduction = loopir.NonMonotonicInduction
	AssociativeRecurrence = loopir.AssociativeRecurrence
	GeneralRecurrence     = loopir.GeneralRecurrence
	RI                    = loopir.RI
	RV                    = loopir.RV
)

// Taxonomy reproduces Table 1: for each dispatcher/terminator pair,
// whether parallel execution can overshoot and how the dispatcher can be
// evaluated.
func Taxonomy() []TaxonomyRow { return loopir.TaxonomyTable() }

// Options configures an orchestrated execution (processors, method
// selection, speculation annotations, cost-model inputs).
type Options = core.Options

// Report describes what an execution did: valid iteration count, chosen
// strategy, speculation outcome, undo statistics.
type Report = core.Report

// Strategy selects the execution engine.  The zero value, Auto, hands
// the choice to the adaptive selector: an online sequential probe
// measures the body, the loop's persistent profile (keyed by call
// site) supplies history, and the engine/schedule/strip size follow
// from both.  The explicit values pin one engine each and are the only
// way to request the run-twice, recovery and pipelined protocols.
type Strategy = core.Strategy

// Execution strategies.
const (
	// Auto (the default) lets the adaptive selector choose.
	Auto = core.Auto
	// StrategySequential runs the loop on the calling goroutine.
	StrategySequential = core.StrategySequential
	// StrategySpeculate pins the classic Table 1 + speculation engines.
	StrategySpeculate = core.StrategySpeculate
	// StrategyRunTwice pins the time-stamp-free run-twice protocol.
	StrategyRunTwice = core.StrategyRunTwice
	// StrategyRecover pins partial-commit misspeculation recovery.
	StrategyRecover = core.StrategyRecover
	// StrategyPipeline pins pipelined strip speculation.
	StrategyPipeline = core.StrategyPipeline
)

// Validation pins the speculative validation tier: full element-wise
// shadows, per-worker hash signatures, or shadow-free trusted strips
// with sampled audits.  The zero value, ValidationAuto, is the
// confidence-gated dial — tiers are earned by consecutive clean runs
// of the loop's profile and revoked on the first violation.
type Validation = core.Validation

// Validation tiers.
const (
	// ValidationAuto lets the profile's clean streak drive the tier.
	ValidationAuto = core.ValidationAuto
	// ValidationFull pins the element-wise shadow machinery (Tier 0).
	ValidationFull = core.ValidationFull
	// ValidationSignature pins hash-signature validation (Tier 1).
	ValidationSignature = core.ValidationSignature
	// ValidationTrusted pins shadow-free audited strips (Tier 2).
	ValidationTrusted = core.ValidationTrusted
)

// Profile is a loop's learned execution history: smoothed per-iteration
// cost, trip fraction and violation rate, plus the engine last chosen.
type Profile = autotune.Profile

// ProfileStore holds per-loop Profiles keyed by call site (or by
// Options.Key).  It is safe for concurrent use and JSON round-trips, so
// profiles can persist across processes.  Options.Profiles selects a
// store; nil uses a process-wide default.
type ProfileStore = autotune.ProfileStore

// RetuneEvent records one mid-run adjustment by the adaptive engine
// (strip growth/shrink, pipeline promotion, sequential demotion);
// Report.Retunes lists them.
type RetuneEvent = autotune.RetuneEvent

// NewProfileStore returns an empty profile store.
func NewProfileStore() *ProfileStore { return autotune.NewProfileStore() }

// Induction method selection.
const (
	// Induction1 runs the whole iteration space and finds the exit by a
	// post-loop minimum reduction.
	Induction1 = induction.Induction1
	// Induction2 stops issuing iterations once an exit is found (QUIT).
	Induction2 = induction.Induction2
)

// List (general recurrence) method selection.
const (
	AutoList = core.AutoList
	General1 = core.General1
	General2 = core.General2
	General3 = core.General3
	// DoacrossList runs the traversal as a WHILE-DOACROSS pipeline.
	DoacrossList = core.DoacrossList
)

// Schedules for the DOALL substrate.
const (
	Dynamic = sched.Dynamic
	Static  = sched.Static
	// Guided self-scheduling: chunked claims of decreasing size.
	Guided = sched.Guided
	// Stealing: per-worker home blocks with work stealing — no shared
	// claim counter on the balanced path.
	Stealing = sched.Stealing
)

// PrivSpec marks an array for privatization during speculation.
type PrivSpec = speculate.PrivSpec

// WorkerPool is a persistent worker-pool executor: workers are spawned
// once and parked on a barrier between parallel regions.  Pass one via
// Options.Workers to run an execution's parallel phases on it (the
// library never closes a caller-supplied pool; Close it yourself).
type WorkerPool = sched.Pool

// NewWorkerPool spawns a single-coordinator pool of procs workers —
// one execution at a time may run on it.  Close it when done.
func NewWorkerPool(procs int) *WorkerPool { return sched.NewPool(procs) }

// NewSharedWorkerPool spawns a pool that admits concurrent executions
// in FIFO order: many Run/RunContext calls can set Options.Workers to
// the same shared pool and their parallel regions serialize fairly on
// one set of workers instead of each spawning its own.  This is the
// substrate behind the whilepard service.  Close it when done.
func NewSharedWorkerPool(procs int) *WorkerPool { return sched.NewSharedPool(procs) }

// Observability: pass a *Metrics (and optionally a Tracer) in Options to
// collect runtime counters and structured events from every layer of an
// execution — iterations issued/executed/overshot, Guided chunk sizes,
// stamped stores and undo counts, PD-test verdicts, speculation
// attempts/commits/aborts.  Both are optional; nil costs nothing.
type (
	// Metrics accumulates counters across one or more executions; safe
	// for concurrent use, and usable across sequential runs to aggregate.
	Metrics = obs.Metrics
	// MetricsSnapshot is a plain-value copy of the counters (also
	// attached to Report.Metrics when Options.Metrics is set).
	MetricsSnapshot = obs.Snapshot
	// Tracer receives structured runtime events (iteration spans, QUIT
	// posts, checkpoints, undos, PD verdicts).
	Tracer = obs.Tracer
	// TraceEvent is one Chrome trace-event-format record.
	TraceEvent = obs.Event
	// ChromeTracer buffers events and writes Chrome's trace-event JSON
	// (load the file in chrome://tracing or Perfetto).
	ChromeTracer = obs.ChromeTracer
	// PDVerdict is one recorded PD-test outcome.
	PDVerdict = obs.PDVerdict
)

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewChromeTracer returns a tracer that buffers events in memory; call
// WriteFile to emit Chrome trace-event JSON.
func NewChromeTracer() *ChromeTracer { return obs.NewChromeTracer() }

// BranchStats predicts a loop's trip count from prior executions
// (Section 7); pass it in Options to drive the parallelize decision and
// the statistics-enhanced time-stamp threshold.
type BranchStats = costmodel.BranchStats

// LoopTimes characterizes a loop for the Section 7 cost model.
type LoopTimes = costmodel.LoopTimes

// RunInduction executes a WHILE loop whose dispatcher is an induction
// (closed form).  l.Max must bound the iteration space.  If the loop can
// overshoot and writes shared arrays (Options.Shared), or has
// unanalyzable accesses (Options.Tested), the execution is speculative
// with undo/fallback.
func RunInduction(l *IntLoop, opt Options) (Report, error) { return core.RunInduction(l, opt) }

// RunInductionContext is RunInduction under a context; see RunContext
// for the cancellation and panic-containment contract.
func RunInductionContext(ctx context.Context, l *IntLoop, opt Options) (Report, error) {
	return core.RunInductionCtx(ctx, l, opt)
}

// RunAssociative executes a WHILE loop whose dispatcher is an Affine
// associative recurrence: the dispatcher terms are evaluated by a
// parallel prefix computation and the remainder runs as a DOALL.
func RunAssociative(l *FloatLoop, opt Options) (Report, error) { return core.RunAssociative(l, opt) }

// RunAssociativeContext is RunAssociative under a context; see
// RunContext for the cancellation contract.
func RunAssociativeContext(ctx context.Context, l *FloatLoop, opt Options) (Report, error) {
	return core.RunAssociativeCtx(ctx, l, opt)
}

// RunGeneralNumeric executes a WHILE loop whose dispatcher is an opaque
// numeric recurrence (a FuncDispatcher): the runtime first tries to
// recognize the recurrence as affine — promoting the loop to the
// parallel-prefix path — and otherwise falls back to the naive loop
// distribution (sequential term evaluation + DOALL remainder).
func RunGeneralNumeric(l *FloatLoop, opt Options) (Report, error) {
	return core.RunGeneralNumeric(l, opt)
}

// RunGeneralNumericContext is RunGeneralNumeric under a context; see
// RunContext for the cancellation contract.
func RunGeneralNumericContext(ctx context.Context, l *FloatLoop, opt Options) (Report, error) {
	return core.RunGeneralNumericCtx(ctx, l, opt)
}

// FuncDispatcher adapts opaque start/next closures to a dispatcher.
type FuncDispatcher = loopir.Func[float64]

// RecognizeAffine samples an opaque numeric recurrence and reports
// whether it is the affine map x' = A*x + B (run-time classification).
func RecognizeAffine(next func(float64) float64, x0 float64) (Affine, bool) {
	return loopir.RecognizeAffine(next, x0)
}

// ListBody is the remainder of a list-traversing loop; returning false
// signals a remainder-variant exit (before any stores, by convention).
type ListBody = genrec.Body

// RunList executes a WHILE loop traversing a linked list with one of
// the General-1/2/3 methods (General-3 by default).
func RunList(head *Node, body ListBody, class Class, opt Options) (Report, error) {
	return core.RunList(head, body, class, opt)
}

// RunListContext is RunList under a context; see RunContext for the
// cancellation contract.
func RunListContext(ctx context.Context, head *Node, body ListBody, class Class, opt Options) (Report, error) {
	return core.RunListCtx(ctx, head, body, class, opt)
}

// LastValidInt executes the IntLoop sequentially — the semantic oracle
// every parallel execution must match — and returns the index of the
// first iteration that does NOT run (equivalently, the number of valid
// iterations; the last valid iteration is the return value minus one).
func LastValidInt(l *IntLoop) int { return loopir.LastValid(l) }

// LastValidFloat is LastValidInt for FloatLoops.
func LastValidFloat(l *FloatLoop) int { return loopir.LastValid(l) }

// DoAnyVerdict is an iteration's report under WHILE-DOANY.
type DoAnyVerdict = doany.Verdict

// WHILE-DOANY verdicts.
const (
	// Nothing: no contribution.
	Nothing = doany.Nothing
	// Found: fold the returned value into the result.
	Found = doany.Found
	// Satisfied: fold the value AND stop issuing iterations.
	Satisfied = doany.Satisfied
)

// DoAnyStats reports a WHILE-DOANY execution.
type DoAnyStats = doany.Stats

// DoAny executes iterations [0, n) in arbitrary order on procs virtual
// processors, folding contributions with the associative+commutative
// combine — the WHILE-DOANY construct (order-insensitive search loops
// need no backups or time-stamps even though they overshoot).
func DoAny[T any](n, procs int, zero T, combine func(T, T) T, body func(i, vpn int) (T, DoAnyVerdict)) (T, DoAnyStats) {
	return doany.Run(n, procs, zero, combine, body)
}
