package whilepar

// Public-surface contract of the context-aware front door: typed
// sentinels compose with errors.Is against both the facade and the
// standard library, cancellation returns committed prefixes, deadlines
// flow through Options, contained panics surface with their detail, and
// a canceled execution leaves no goroutines behind.

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunContextPreCanceled(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	a := NewArray("A", 32)
	l := &IntLoop{
		Class: Class{Dispatcher: MonotonicInduction, Terminator: RI, ThresholdOnMonotonic: true},
		Disp:  IntInduction{C: 1},
		Body: func(it *Iter, d int) bool {
			it.Store(a, d, 1)
			return true
		},
		Max: 32,
	}
	rep, err := RunContext(ctx, l, Options{Procs: 2})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid != 0 {
		t.Fatalf("report %+v", rep)
	}
}

func TestRunContextOptionsDeadline(t *testing.T) {
	a := NewArray("A", 1000)
	l := &IntLoop{
		Class: Class{Dispatcher: MonotonicInduction, Terminator: RI, ThresholdOnMonotonic: true},
		Disp:  IntInduction{C: 1},
		Body: func(it *Iter, d int) bool {
			time.Sleep(time.Millisecond)
			it.Store(a, d, 1)
			return true
		},
		Max: 1000,
	}
	// Run (no explicit ctx) must honour Options.Deadline too.
	rep, err := Run(l, Options{Procs: 2, Deadline: 10 * time.Millisecond})
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid >= 1000 {
		t.Fatalf("deadline did not stop the loop: %+v", rep)
	}
}

func TestRunContextRejectsNegativeDeadline(t *testing.T) {
	l := &IntLoop{Disp: IntInduction{C: 1}, Body: func(*Iter, int) bool { return true }, Max: 4}
	if _, err := Run(l, Options{Deadline: -time.Second}); !errors.Is(err, ErrBadDeadline) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunContextPanicDetail(t *testing.T) {
	a := NewArray("A", 64)
	l := &IntLoop{
		Class: Class{Dispatcher: MonotonicInduction, Terminator: RI, ThresholdOnMonotonic: true},
		Disp:  IntInduction{C: 1},
		Body: func(it *Iter, d int) bool {
			if d == 17 {
				panic("kaboom")
			}
			it.Store(a, d, 1)
			return true
		},
		Max: 64,
	}
	_, err := RunContext(context.Background(), l, Options{Procs: 4})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
	pe, ok := AsPanicError(err)
	if !ok || pe.Iter != 17 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic detail %+v", pe)
	}
}

func TestRunContextCancelDrainsGoroutines(t *testing.T) {
	// After a canceled speculative execution returns, every worker must
	// have exited: no goroutine leak, no wedged barrier.  goleak is not
	// available here, so poll runtime.NumGoroutine with slack.
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		n := 1 << 12
		a := NewArray("A", n)
		ctx, stop := context.WithCancel(context.Background())
		var hit atomic.Bool
		l := &IntLoop{
			Class: Class{Dispatcher: MonotonicInduction, Terminator: RV},
			Disp:  IntInduction{C: 1},
			Body: func(it *Iter, d int) bool {
				if d == 8 && hit.CompareAndSwap(false, true) {
					stop()
				}
				if ctx.Err() != nil {
					time.Sleep(time.Microsecond)
				}
				it.Store(a, d, 1)
				return d < n-1
			},
			Max: n,
		}
		_, err := RunContext(ctx, l, Options{
			Procs:  4,
			Shared: []*Array{a},
			Tested: []*Array{a},
		})
		stop()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("round %d: err = %v", round, err)
		}
	}
	// Workers park on the scheduler asynchronously; give them a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before %d, after %d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunContextListLoop(t *testing.T) {
	n := 100
	a := NewArray("A", n)
	head := BuildList(n, func(i int) (float64, float64) { return float64(i), 1 })
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	rep, err := RunContext(ctx, &ListLoop{
		Head: head,
		Body: func(it *Iter, nd *Node) bool {
			it.Store(a, nd.Key, nd.Val+1)
			return true
		},
		Class: Class{Dispatcher: GeneralRecurrence, Terminator: RI},
	}, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n {
		t.Fatalf("report %+v", rep)
	}
}

func TestSequentialOracles(t *testing.T) {
	l := &IntLoop{
		Disp: IntInduction{C: 1},
		Body: func(it *Iter, d int) bool { return d < 10 },
		Max:  64,
	}
	if got := LastValidInt(l); got != 10 {
		t.Fatalf("LastValidInt = %d, want 10", got)
	}
	f := &FloatLoop{
		Disp: Affine{A: 1, B: 1, X0: 0},
		Cond: func(x float64) bool { return x < 5 },
		Body: func(*Iter, float64) bool { return true },
		Max:  64,
	}
	if got := LastValidFloat(f); got != 5 {
		t.Fatalf("LastValidFloat = %d, want 5", got)
	}
}

func TestConstructContextWrappers(t *testing.T) {
	// RunStrippedContext / RunWindowedContext / DoacrossContext /
	// WhileDoacrossContext observe a pre-canceled context without
	// starting any work.
	ctx, stop := context.WithCancel(context.Background())
	stop()
	a := NewArray("A", 40)
	if _, err := RunStrippedContext(ctx, SpecSpec{Procs: 2, Shared: SharedArrays(a)}, 40, 10,
		func(tr Tracker, lo, hi int) (int, bool, error) {
			t.Error("strip must not run")
			return 0, false, nil
		},
		func(lo, hi int) (int, bool) { return 0, false }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunStrippedContext err = %v", err)
	}
	if _, err := RunWindowedContext(ctx, SpecSpec{Procs: 2, Shared: SharedArrays(a)}, 40,
		WindowConfig{Window: 8},
		func(tr Tracker, i, vpn int) bool { t.Error("round must not run"); return true },
		func() int { return 0 }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunWindowedContext err = %v", err)
	}
	if _, err := DoacrossContext(ctx, 10, 2, func(i, vpn int, s *DoacrossSync) DoacrossControl {
		t.Error("iteration must not run")
		return DoacrossContinue
	}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("DoacrossContext err = %v", err)
	}
	if _, err := WhileDoacrossContext(ctx, 0, func(d int) int { return d + 1 }, nil, 10, 2,
		func(i, vpn int, d int) bool { t.Error("iteration must not run"); return true }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("WhileDoacrossContext err = %v", err)
	}
}
