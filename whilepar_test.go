package whilepar

import (
	"testing"
	"testing/quick"
)

// The integration tests exercise the library exactly as a user would:
// through the public API only.

func TestQuickstartShape(t *testing.T) {
	// do i = 0..999 { if A[i] < 0 exit; B[i] = sqrt-ish(A[i]) } with the
	// error planted at 700.
	n := 1000
	a := NewArray("A", n)
	b := NewArray("B", n)
	for i := 0; i < n; i++ {
		a.Data[i] = float64(i + 1)
	}
	a.Data[700] = -1
	loop := &IntLoop{
		Class: Class{Dispatcher: MonotonicInduction, Terminator: RV},
		Disp:  IntInduction{C: 1},
		Body: func(it *Iter, i int) bool {
			v := it.Load(a, i)
			if v < 0 {
				return false
			}
			it.Store(b, i, v*v)
			return true
		},
		Max: n,
	}
	rep, err := RunInduction(loop, Options{
		Procs:           8,
		InductionMethod: Induction1,
		Shared:          []*Array{b},
		Tested:          []*Array{b},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedParallel || rep.Valid != 700 {
		t.Fatalf("report %+v", rep)
	}
	for i := 0; i < n; i++ {
		want := 0.0
		if i < 700 {
			want = float64(i+1) * float64(i+1)
		}
		if b.Data[i] != want {
			t.Fatalf("B[%d] = %v, want %v", i, b.Data[i], want)
		}
	}
}

func TestPublicListTraversal(t *testing.T) {
	n := 400
	out := NewArray("out", n)
	head := BuildList(n, func(i int) (float64, float64) { return float64(i), 1 })
	rep, err := RunList(head, func(it *Iter, nd *Node) bool {
		it.Store(out, nd.Key, nd.Val+1)
		return true
	}, Class{Dispatcher: GeneralRecurrence, Terminator: RI}, Options{Procs: 4, ListMethod: General2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || !rep.UsedParallel {
		t.Fatalf("report %+v", rep)
	}
	for i := 0; i < n; i++ {
		if out.Data[i] != float64(i+1) {
			t.Fatalf("out[%d] = %v", i, out.Data[i])
		}
	}
}

func TestPublicAssociative(t *testing.T) {
	// x = 1.5x + 1 from 1 while x < 1e6.
	xs := NewArray("xs", 64)
	loop := &FloatLoop{
		Class: Class{Dispatcher: AssociativeRecurrence, Terminator: RI},
		Disp:  Affine{A: 1.5, B: 1, X0: 1},
		Cond:  func(x float64) bool { return x < 1e6 },
		Body: func(it *Iter, x float64) bool {
			it.Store(xs, it.Index, x)
			return true
		},
		Max: 64,
	}
	want := LastValidFloat(&FloatLoop{
		Class: loop.Class, Disp: loop.Disp, Cond: loop.Cond,
		Body: func(*Iter, float64) bool { return true }, Max: 64,
	})
	rep, err := RunAssociative(loop, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != want {
		t.Fatalf("parallel valid %d != sequential %d", rep.Valid, want)
	}
}

func TestPublicDoAny(t *testing.T) {
	// Find any index whose value is divisible by 97; order-insensitive.
	vals := make([]int, 10000)
	for i := range vals {
		vals[i] = i * 31
	}
	best, st := DoAny(len(vals), 4, -1, func(a, b int) int {
		if a == -1 {
			return b
		}
		return a
	}, func(i, vpn int) (int, DoAnyVerdict) {
		if vals[i]%97 == 0 && i > 0 {
			return i, Satisfied
		}
		return 0, Nothing
	})
	if best <= 0 || vals[best]%97 != 0 {
		t.Fatalf("best = %d (stats %+v)", best, st)
	}
}

func TestTaxonomyPublic(t *testing.T) {
	rows := Taxonomy()
	if len(rows) != 8 {
		t.Fatalf("%d taxonomy rows", len(rows))
	}
}

func TestBranchStatsDrivenRun(t *testing.T) {
	var stats BranchStats
	n := 300
	for run := 0; run < 3; run++ {
		a := NewArray("A", n)
		loop := &IntLoop{
			Class: Class{Dispatcher: MonotonicInduction, Terminator: RV},
			Disp:  IntInduction{C: 1},
			Body: func(it *Iter, i int) bool {
				if i == 250 {
					return false
				}
				it.Store(a, i, 1)
				return true
			},
			Max: n,
		}
		rep, err := RunInduction(loop, Options{Procs: 4, Stats: &stats, Shared: []*Array{a}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Valid != 250 {
			t.Fatalf("run %d: %+v", run, rep)
		}
	}
	if stats.Samples() != 3 {
		t.Fatalf("stats samples = %d", stats.Samples())
	}
	if ni, conf := stats.Estimate(); ni != 250 || conf < 0.9 {
		t.Fatalf("estimate (%v, %v)", ni, conf)
	}
}

// Property: the full speculative pipeline through the public API matches
// sequential execution for random exits and processor counts.
func TestEndToEndSpeculationProperty(t *testing.T) {
	f := func(exitRaw, procsRaw uint8, method bool) bool {
		n := 128
		exit := int(exitRaw) % n
		procs := int(procsRaw)%6 + 1
		m := Induction2
		if method {
			m = Induction1
		}
		par := NewArray("A", n)
		seq := NewArray("A", n)
		mk := func(a *Array) *IntLoop {
			return &IntLoop{
				Class: Class{Dispatcher: MonotonicInduction, Terminator: RV},
				Disp:  IntInduction{C: 1},
				Body: func(it *Iter, i int) bool {
					if i == exit {
						return false
					}
					it.Store(a, (i*7)%n, float64(i))
					return true
				},
				Max: n,
			}
		}
		// Sequential oracle.
		for i := 0; i < exit; i++ {
			seq.Data[(i*7)%n] = float64(i)
		}
		rep, err := RunInduction(mk(par), Options{
			Procs: procs, InductionMethod: m,
			Shared: []*Array{par}, Tested: []*Array{par},
		})
		if err != nil || rep.Valid != exit {
			return false
		}
		return par.Equal(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunGeneralNumericPublic(t *testing.T) {
	// Opaque recurrence secretly affine: promoted to parallel prefix.
	out := NewArray("out", 64)
	l := &FloatLoop{
		Class: Class{Dispatcher: GeneralRecurrence, Terminator: RI},
		Disp: FuncDispatcher{
			StartFn: func() float64 { return 2 },
			NextFn:  func(x float64) float64 { return 3 * x },
		},
		Cond: func(x float64) bool { return x < 1e6 },
		Body: func(it *Iter, x float64) bool {
			it.Store(out, it.Index, x)
			return true
		},
		Max: 64,
	}
	rep, err := RunGeneralNumeric(l, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 2, 6, 18, ... 2*3^k < 1e6 -> k <= 11 -> 12 terms.
	if rep.Valid != 12 {
		t.Fatalf("valid = %d (%+v)", rep.Valid, rep)
	}
	if out.Data[11] != 2*177147 { // 2*3^11
		t.Fatalf("out[11] = %v", out.Data[11])
	}
	if aff, ok := RecognizeAffine(func(x float64) float64 { return 3 * x }, 2); !ok || aff.A != 3 {
		t.Fatalf("RecognizeAffine: %+v ok=%v", aff, ok)
	}
}
