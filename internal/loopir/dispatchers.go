package loopir

// IntInduction is the induction dispatcher d(i) = C*i + B of Section 3.1.
// It has a closed form, so every processor can evaluate any term
// independently (Figure 2's Induction-1/2 methods rely on this).
type IntInduction struct {
	C, B int
}

// Start returns d(0) = B.
func (d IntInduction) Start() int { return d.B }

// Next returns the successor term.
func (d IntInduction) Next(x int) int { return x + d.C }

// At evaluates the closed form d(i) = C*i + B.
func (d IntInduction) At(i int) int { return d.C*i + d.B }

// Monotonic reports whether the induction is monotonic (C != 0).
func (d IntInduction) Monotonic() bool { return d.C != 0 }

var _ Dispatcher[int] = IntInduction{}
var _ ClosedForm[int] = IntInduction{}

// Affine is the associative recurrence dispatcher
//
//	x(i) = A*x(i-1) + B,  x(0) = X0
//
// of Section 3.2.  Its terms are not independently computable term by
// term at O(1) each without the recurrence — but composition of affine
// maps is associative, so the whole prefix x(0..n-1) is computable by a
// parallel prefix computation in O(n/p + log p) (internal/prefix).
type Affine struct {
	A, B float64
	X0   float64
}

// Start returns x(0).
func (d Affine) Start() float64 { return d.X0 }

// Next applies one recurrence step.
func (d Affine) Next(x float64) float64 { return d.A*x + d.B }

var _ Dispatcher[float64] = Affine{}

// AffineMap is one composable step of an Affine recurrence: y = A*x + B.
// The prefix package scans over these; Compose is the associative
// operator.
type AffineMap struct {
	A, B float64
}

// Apply evaluates the map at x.
func (m AffineMap) Apply(x float64) float64 { return m.A*x + m.B }

// Compose returns the map equivalent to applying m first, then n —
// i.e. (n ∘ m)(x) = n(m(x)).  Composition of affine maps is associative,
// which is what makes the dispatcher a Table 1 "YES-PP" case.
func Compose(m, n AffineMap) AffineMap {
	return AffineMap{A: n.A * m.A, B: n.A*m.B + n.B}
}

// IdentityMap is the neutral element of Compose.
var IdentityMap = AffineMap{A: 1, B: 0}

// Func adapts a pair of closures to the Dispatcher interface, for
// general recurrences that are not linked lists (e.g. x = a*x + b with a
// data-dependent coefficient, or any opaque next function).
type Func[D any] struct {
	StartFn func() D
	NextFn  func(D) D
}

// Start calls StartFn.
func (f Func[D]) Start() D { return f.StartFn() }

// Next calls NextFn.
func (f Func[D]) Next(d D) D { return f.NextFn(d) }
