package loopir

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRecognizeAffine(t *testing.T) {
	d := Affine{A: 1.5, B: -2, X0: 10}
	got, ok := RecognizeAffine(d.Next, d.X0)
	if !ok {
		t.Fatal("affine recurrence not recognized")
	}
	if math.Abs(got.A-1.5) > 1e-12 || math.Abs(got.B+2) > 1e-12 || got.X0 != 10 {
		t.Fatalf("recognized %+v", got)
	}
}

func TestRecognizeAffineRejectsNonAffine(t *testing.T) {
	cases := map[string]func(float64) float64{
		"quadratic": func(x float64) float64 { return x*x + 1 },
		"sqrt":      func(x float64) float64 { return math.Sqrt(x + 2) },
		"nan":       func(x float64) float64 { return math.NaN() },
		"inf":       func(x float64) float64 { return x * 1e308 * 10 },
	}
	for name, next := range cases {
		if _, ok := RecognizeAffine(next, 3); ok {
			t.Errorf("%s recurrence wrongly recognized as affine", name)
		}
	}
}

func TestRecognizeAffineConstantSequence(t *testing.T) {
	got, ok := RecognizeAffine(func(x float64) float64 { return 7 }, 7)
	if !ok {
		t.Fatal("fixed point not recognized")
	}
	if v := got.A*7 + got.B; v != 7 {
		t.Fatalf("fixed point broken: %+v", got)
	}
}

func TestRecognizeAffineProperty(t *testing.T) {
	// Every genuine affine map must be recognized with matching terms.
	f := func(aRaw, bRaw, x0Raw int16) bool {
		a := float64(aRaw%7) / 2
		b := float64(bRaw % 50)
		x0 := float64(x0Raw % 100)
		d := Affine{A: a, B: b, X0: x0}
		got, ok := RecognizeAffine(d.Next, x0)
		if !ok {
			return false
		}
		// Compare on the first 10 terms rather than coefficients (a
		// constant sequence has many valid parameterizations).
		xw, xg := d.Start(), got.Start()
		for i := 0; i < 10; i++ {
			if math.Abs(xw-xg) > 1e-6*(1+math.Abs(xw)) {
				return false
			}
			xw, xg = d.Next(xw), got.Next(xg)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRecognizeInduction(t *testing.T) {
	got, ok := RecognizeInduction(func(d int) int { return d + 4 }, 3)
	if !ok || got.C != 4 || got.B != 3 {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
	if _, ok := RecognizeInduction(func(d int) int { return d * 2 }, 3); ok {
		t.Fatal("geometric recurrence wrongly recognized as induction")
	}
	// Constant (C=0).
	got, ok = RecognizeInduction(func(d int) int { return d }, 9)
	if !ok || got.C != 0 {
		t.Fatalf("constant induction: %+v ok=%v", got, ok)
	}
}
