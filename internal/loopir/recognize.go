package loopir

import "math"

// RecognizeAffine attempts run-time recognition of an opaque numeric
// recurrence as an affine map x' = A*x + B — the kind of dynamic
// classification Section 7 gestures at when static analysis fails
// ("the compiler should use both static analysis and run-time
// statistics").  It samples a handful of terms from next, solves for
// (A, B) from the first two steps, and verifies the hypothesis on the
// remaining samples.  On success the dispatcher can be promoted from
// "general recurrence" (sequential) to "associative recurrence"
// (parallel prefix) in the Table 1 taxonomy.
//
// Recognition is conservative: any mismatch, non-finite value, or a
// degenerate sample set (constant or numerically indistinguishable
// steps) returns ok=false and the loop stays on the sequential path.
func RecognizeAffine(next func(float64) float64, x0 float64) (Affine, bool) {
	const samples = 6
	xs := make([]float64, samples)
	xs[0] = x0
	for i := 1; i < samples; i++ {
		xs[i] = next(xs[i-1])
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
			return Affine{}, false
		}
	}
	// Two steps give two equations:
	//   x1 = A*x0 + B
	//   x2 = A*x1 + B  =>  A = (x2-x1)/(x1-x0), B = x1 - A*x0.
	den := xs[1] - xs[0]
	var a, b float64
	if den == 0 {
		// A constant sequence is affine with A=0 only if B = x1 = x0...
		// any (A, B) with A*x0+B = x0 fits; choose the fixed point.
		a, b = 0, xs[1]
	} else {
		a = (xs[2] - xs[1]) / den
		b = xs[1] - a*xs[0]
	}
	if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
		return Affine{}, false
	}
	// Verify on every sampled step with a relative tolerance.
	for i := 1; i < samples; i++ {
		want := a*xs[i-1] + b
		tol := 1e-9 * (1 + math.Abs(want))
		if math.Abs(xs[i]-want) > tol {
			return Affine{}, false
		}
	}
	return Affine{A: a, B: b, X0: x0}, true
}

// RecognizeInduction attempts run-time recognition of an opaque integer
// recurrence as the induction d' = d + C.  Same sampling discipline as
// RecognizeAffine; on success the dispatcher is fully parallel.
func RecognizeInduction(next func(int) int, d0 int) (IntInduction, bool) {
	const samples = 6
	ds := make([]int, samples)
	ds[0] = d0
	for i := 1; i < samples; i++ {
		ds[i] = next(ds[i-1])
	}
	c := ds[1] - ds[0]
	for i := 1; i < samples; i++ {
		if ds[i]-ds[i-1] != c {
			return IntInduction{}, false
		}
	}
	return IntInduction{C: c, B: d0}, true
}
