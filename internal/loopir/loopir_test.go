package loopir

import (
	"math"
	"testing"
	"testing/quick"

	"whilepar/internal/mem"
)

func TestTaxonomyMatchesTable1(t *testing.T) {
	// The expected cells, transcribed from Table 1 of the paper.
	// Row order: RI then RV; column order: monotonic induction,
	// non-monotonic induction, associative recurrence, general
	// recurrence.
	type cell struct {
		overshoot bool
		par       Parallelism
	}
	want := []cell{
		{false, FullyParallel},  // RI / monotonic induction (threshold)
		{true, FullyParallel},   // RI / non-monotonic induction
		{false, ParallelPrefix}, // RI / associative
		{false, Sequential},     // RI / general
		{true, FullyParallel},   // RV / monotonic induction
		{true, FullyParallel},   // RV / non-monotonic induction
		{true, ParallelPrefix},  // RV / associative
		{true, Sequential},      // RV / general
	}
	rows := TaxonomyTable()
	if len(rows) != len(want) {
		t.Fatalf("taxonomy has %d cells, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if r.Overshoot != want[i].overshoot {
			t.Errorf("cell %d (%v): overshoot = %v, want %v", i, r.Class, r.Overshoot, want[i].overshoot)
		}
		if r.Parallelism != want[i].par {
			t.Errorf("cell %d (%v): parallelism = %v, want %v", i, r.Class, r.Parallelism, want[i].par)
		}
	}
}

func TestMonotonicThresholdException(t *testing.T) {
	// d(i) = i^2 with tc = d(i) < V: monotonic threshold, no overshoot.
	c := Class{Dispatcher: MonotonicInduction, Terminator: RI, ThresholdOnMonotonic: true}
	if c.CanOvershoot() {
		t.Error("monotonic threshold RI loop must not overshoot")
	}
	// The same dispatcher with a non-threshold RI exit can overshoot.
	c.ThresholdOnMonotonic = false
	if !c.CanOvershoot() {
		t.Error("non-threshold RI induction loop can overshoot")
	}
}

func TestRVAlwaysOvershoots(t *testing.T) {
	for _, d := range []DispatcherKind{MonotonicInduction, NonMonotonicInduction, AssociativeRecurrence, GeneralRecurrence} {
		c := Class{Dispatcher: d, Terminator: RV, ThresholdOnMonotonic: true}
		if !c.CanOvershoot() {
			t.Errorf("%v: RV terminator must allow overshoot", c)
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[string]string{
		MonotonicInduction.String():    "monotonic induction",
		NonMonotonicInduction.String(): "non-monotonic induction",
		AssociativeRecurrence.String(): "associative recurrence",
		GeneralRecurrence.String():     "general recurrence",
		RI.String():                    "RI",
		RV.String():                    "RV",
		Sequential.String():            "NO",
		ParallelPrefix.String():        "YES-PP",
		FullyParallel.String():         "YES",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestIntInductionClosedForm(t *testing.T) {
	d := IntInduction{C: 3, B: 7}
	x := d.Start()
	for i := 0; i < 100; i++ {
		if got := d.At(i); got != x {
			t.Fatalf("At(%d) = %d, iterated value %d", i, got, x)
		}
		x = d.Next(x)
	}
	if !d.Monotonic() {
		t.Error("C=3 induction should be monotonic")
	}
	if (IntInduction{C: 0, B: 1}).Monotonic() {
		t.Error("C=0 induction should not be monotonic")
	}
}

func TestAffineComposeAssociative(t *testing.T) {
	f := func(a1, b1, a2, b2, a3, b3, x float64) bool {
		// Keep magnitudes tame to avoid float blowup masking logic bugs.
		clamp := func(v float64) float64 { return math.Mod(v, 8) }
		m1 := AffineMap{clamp(a1), clamp(b1)}
		m2 := AffineMap{clamp(a2), clamp(b2)}
		m3 := AffineMap{clamp(a3), clamp(b3)}
		l := Compose(Compose(m1, m2), m3)
		r := Compose(m1, Compose(m2, m3))
		xl, xr := l.Apply(clamp(x)), r.Apply(clamp(x))
		return math.Abs(xl-xr) <= 1e-6*(1+math.Abs(xl))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAffineComposeMatchesSequentialApplication(t *testing.T) {
	m1 := AffineMap{2, 3}
	m2 := AffineMap{-1, 5}
	x := 7.0
	seq := m2.Apply(m1.Apply(x))
	if got := Compose(m1, m2).Apply(x); got != seq {
		t.Errorf("Compose(m1,m2)(x) = %v, want m2(m1(x)) = %v", got, seq)
	}
	if got := Compose(IdentityMap, m1).Apply(x); got != m1.Apply(x) {
		t.Errorf("identity left compose broken: %v", got)
	}
	if got := Compose(m1, IdentityMap).Apply(x); got != m1.Apply(x) {
		t.Errorf("identity right compose broken: %v", got)
	}
}

func TestRunSequentialRIExit(t *testing.T) {
	// while (d < 10) { A[d] = d; d++ }
	a := mem.NewArray("A", 16)
	l := &Loop[int]{
		Class: Class{Dispatcher: MonotonicInduction, Terminator: RI, ThresholdOnMonotonic: true},
		Disp:  IntInduction{C: 1, B: 0},
		Cond:  func(d int) bool { return d < 10 },
		Body: func(it *Iter, d int) bool {
			it.Store(a, d, float64(d))
			return true
		},
		Max: 1000,
	}
	res := RunSequential(l)
	if res.Iterations != 10 || res.ExitRV {
		t.Fatalf("got %+v, want 10 iterations, RI exit", res)
	}
	for i := 0; i < 10; i++ {
		if a.Data[i] != float64(i) {
			t.Errorf("A[%d] = %v, want %v", i, a.Data[i], float64(i))
		}
	}
	if a.Data[10] != 0 {
		t.Errorf("A[10] = %v, want untouched 0", a.Data[10])
	}
}

func TestRunSequentialRVExit(t *testing.T) {
	// do i=0..; if i == 7 exit; A[i] = 1
	a := mem.NewArray("A", 16)
	l := &Loop[int]{
		Class: Class{Dispatcher: MonotonicInduction, Terminator: RV},
		Disp:  IntInduction{C: 1, B: 0},
		Body: func(it *Iter, d int) bool {
			if d == 7 {
				return false
			}
			it.Store(a, d, 1)
			return true
		},
		Max: 100,
	}
	res := RunSequential(l)
	if res.Iterations != 7 || !res.ExitRV {
		t.Fatalf("got %+v, want 7 iterations with RV exit", res)
	}
	if LastValid(l) != 7 {
		t.Errorf("LastValid = %d, want 7", LastValid(l))
	}
}

func TestRunSequentialMaxBound(t *testing.T) {
	n := 0
	l := &Loop[int]{
		Disp: IntInduction{C: 1},
		Body: func(it *Iter, d int) bool { n++; return true },
		Max:  25,
	}
	res := RunSequential(l)
	if res.Iterations != 25 || n != 25 {
		t.Fatalf("Max bound not respected: res=%+v n=%d", res, n)
	}
}

func TestRunSequentialChargesWork(t *testing.T) {
	l := &Loop[int]{
		Disp: IntInduction{C: 1},
		Body: func(it *Iter, d int) bool { it.Charge(2.5); return true },
		Max:  4,
	}
	res := RunSequential(l)
	if res.Work != 10 {
		t.Fatalf("Work = %v, want 10", res.Work)
	}
	if res.DispatcherWork != 4 {
		t.Fatalf("DispatcherWork = %v, want 4", res.DispatcherWork)
	}
}

func TestFuncDispatcher(t *testing.T) {
	d := Func[int]{StartFn: func() int { return 5 }, NextFn: func(x int) int { return x * 2 }}
	if d.Start() != 5 || d.Next(5) != 10 {
		t.Error("Func dispatcher does not delegate")
	}
}

func TestAffineDispatcherWalk(t *testing.T) {
	d := Affine{A: 2, B: 1, X0: 1}
	// x: 1, 3, 7, 15, 31 (2^n - 1 pattern)
	x := d.Start()
	want := []float64{1, 3, 7, 15, 31}
	for i, w := range want {
		if x != w {
			t.Fatalf("term %d = %v, want %v", i, x, w)
		}
		x = d.Next(x)
	}
}
