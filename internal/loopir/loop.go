package loopir

import (
	"whilepar/internal/mem"
)

// Dispatcher produces the sequence of values that controls the WHILE
// loop: d(0), d(1), ... .  Start returns d(0); Next(d(i)) returns d(i+1).
// D is the dispatcher value type — int for inductions, a list node for a
// pointer chase, a float64 for a numeric recurrence.
type Dispatcher[D any] interface {
	Start() D
	Next(D) D
}

// ClosedForm is the capability of evaluating the i-th dispatcher term
// directly, without the i-1 preceding terms.  Inductions implement it;
// it is what makes the Induction-1/2 methods (Fig. 2) fully parallel.
type ClosedForm[D any] interface {
	At(i int) D
}

// Body is the remainder of the WHILE loop for one iteration: it receives
// the iteration context and the dispatcher value for this iteration, and
// returns true if the iteration completed (is valid), or false if it hit
// a remainder-variant termination condition.
//
// Convention: a body that returns false must do so *before* performing
// any stores — the common `if cond then exit` shape — so that an
// exit-signalling iteration is entirely invalid.  The sequential
// reference executor and the parallel methods both adopt this
// convention; the undo machinery (internal/tsmem) restores every store
// of every iteration at or beyond the first exit-signalling one.
type Body[D any] func(it *Iter, d D) bool

// Iter is the per-iteration execution context handed to a Body.  All
// accesses to managed shared memory go through it so the run-time system
// (time-stamping, PD-test shadow marking) can interpose.
type Iter struct {
	// Index is the zero-based iteration number.
	Index int
	// VPN is the virtual processor number executing this iteration.
	VPN int
	// Tracker interposes on managed-memory accesses; nil means direct.
	Tracker mem.Tracker
	// Work accumulates abstract work units charged by the body via
	// Charge; the simulated-multiprocessor backend uses it to cost the
	// iteration.
	Work float64
}

// Load reads element idx of managed array a through the tracker.
func (it *Iter) Load(a *mem.Array, idx int) float64 {
	if it.Tracker == nil {
		return a.Data[idx]
	}
	return it.Tracker.Load(a, idx, it.Index, it.VPN)
}

// Store writes v to element idx of managed array a through the tracker.
func (it *Iter) Store(a *mem.Array, idx int, v float64) {
	if it.Tracker == nil {
		a.Data[idx] = v
		return
	}
	it.Tracker.Store(a, idx, v, it.Index, it.VPN)
}

// LoadRange reads elements [lo, hi) of managed array a into dst with a
// single tracker interposition when the bound tracker supports batched
// access (mem.RangeTracker), and element by element otherwise.  dst is
// grown (or allocated when nil) to hi-lo elements and returned; bodies
// that process strips should reuse the returned slice across calls.
func (it *Iter) LoadRange(a *mem.Array, lo, hi int, dst []float64) []float64 {
	n := hi - lo
	if n <= 0 {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	switch tr := it.Tracker.(type) {
	case nil:
		copy(dst, a.Data[lo:hi])
	case mem.RangeTracker:
		tr.LoadRange(a, lo, hi, dst, it.Index, it.VPN)
	default:
		for i := lo; i < hi; i++ {
			dst[i-lo] = it.Tracker.Load(a, i, it.Index, it.VPN)
		}
	}
	return dst
}

// StoreRange writes src over elements [lo, lo+len(src)) of managed
// array a with a single tracker interposition when the bound tracker
// supports batched access, and element by element otherwise.
func (it *Iter) StoreRange(a *mem.Array, lo int, src []float64) {
	if len(src) == 0 {
		return
	}
	switch tr := it.Tracker.(type) {
	case nil:
		copy(a.Data[lo:lo+len(src)], src)
	case mem.RangeTracker:
		tr.StoreRange(a, lo, src, it.Index, it.VPN)
	default:
		for k, v := range src {
			it.Tracker.Store(a, lo+k, v, it.Index, it.VPN)
		}
	}
}

// Charge adds abstract work units to the iteration's cost.  Workloads
// call it to tell the simulated multiprocessor how expensive the
// iteration's computation is; it has no effect on real execution.
func (it *Iter) Charge(units float64) { it.Work += units }

// Loop is the runtime representation of a WHILE loop in the paper's
// general form.
//
//	d := Disp.Start()
//	for Cond(d) {
//	    if !Body(it, d) { break }   // RV exit
//	    d = Disp.Next(d)
//	}
//
// Cond is the remainder-invariant part of the terminator (it may inspect
// only d and loop-invariant state); a Body returning false is the
// remainder-variant part.  Either may be absent (Cond nil means "true";
// a body that never returns false has a pure-RI loop).
type Loop[D any] struct {
	// Class is the loop's taxonomy cell, as a compiler's analysis would
	// have annotated it.
	Class Class
	// Disp is the dispatching recurrence.
	Disp Dispatcher[D]
	// Cond is the RI termination condition: the loop continues while
	// Cond(d) holds.  nil means no RI condition.
	Cond func(D) bool
	// Body is the remainder.
	Body Body[D]
	// Max is an upper bound on the number of iterations (the `u` of the
	// DOALLs in Figs. 2 and 4).  It may come from the body (e.g. an
	// array extent) or from strip-mining.  Max <= 0 means unknown.
	Max int
}

// SeqResult is what a sequential execution of the loop produced.
type SeqResult struct {
	// Iterations is the number of *valid* iterations executed (the body
	// ran and returned true).
	Iterations int
	// ExitRV reports whether the loop ended on a remainder-variant exit
	// (body returned false) rather than on the RI condition or Max.
	ExitRV bool
	// Work is the total abstract work charged by valid iterations.
	Work float64
	// DispatcherWork counts dispatcher advancements performed
	// (sequential-chain length), used by the cost model.
	DispatcherWork int
}

// RunSequential executes the loop exactly as the original sequential
// WHILE loop would, with direct (untracked) memory access.  It is the
// semantic oracle every parallel method is validated against.
func RunSequential[D any](l *Loop[D]) SeqResult {
	return RunSequentialTracked(l, nil)
}

// RunSequentialTracked is RunSequential with an explicit memory tracker,
// used when the sequential re-execution after a failed PD test must
// still observe accesses (e.g. to collect statistics).
func RunSequentialTracked[D any](l *Loop[D], t mem.Tracker) SeqResult {
	var res SeqResult
	d := l.Disp.Start()
	for i := 0; l.Max <= 0 || i < l.Max; i++ {
		if l.Cond != nil && !l.Cond(d) {
			return res
		}
		it := Iter{Index: i, VPN: 0, Tracker: t}
		if !l.Body(&it, d) {
			res.ExitRV = true
			return res
		}
		res.Iterations++
		res.Work += it.Work
		d = l.Disp.Next(d)
		res.DispatcherWork++
	}
	return res
}

// LastValid computes, sequentially and with no side effects beyond the
// body's own stores, the index of the first iteration that fails (RI or
// RV); equivalently the number of valid iterations.  It is used by the
// run-twice scheme of Section 4 and by tests.
func LastValid[D any](l *Loop[D]) int {
	r := RunSequential(l)
	return r.Iterations
}
