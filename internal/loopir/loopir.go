// Package loopir defines the runtime intermediate representation of a
// WHILE loop and the taxonomy of Section 2 / Table 1 of the paper.
//
// A WHILE loop, in the paper's general form, consists of
//
//   - one or more recurrences detectable at compile time, the dominating
//     one being the *dispatcher*;
//   - a *remainder* (the rest of the body), whose dependence structure is
//     either statically known or unknown;
//   - one or more *termination conditions* (the terminator), classified
//     as remainder invariant (RI: depends only on the dispatcher and
//     loop-invariant values) or remainder variant (RV: depends on values
//     computed by the remainder).
//
// The taxonomy determines two things for each (dispatcher, terminator)
// pair: whether a parallel execution can *overshoot* (execute iterations
// the sequential loop would not have), and whether the dispatcher itself
// can be evaluated in parallel (fully, via a parallel prefix computation,
// or not at all).
package loopir

import "fmt"

// DispatcherKind classifies the dominating recurrence of a WHILE loop,
// matching the columns of Table 1.
type DispatcherKind int

const (
	// MonotonicInduction is an induction d(i) = c*i + b (or any closed
	// form) that is monotonic in i.  Each term is independently
	// computable; all iterations can start simultaneously.
	MonotonicInduction DispatcherKind = iota

	// NonMonotonicInduction has a closed form but is not monotonic
	// (e.g. a wrapping counter), so a threshold terminator cannot be
	// localized and overshoot is always possible.
	NonMonotonicInduction

	// AssociativeRecurrence is a recurrence such as x(i) = a*x(i-k) + b
	// whose terms can be evaluated with a parallel prefix computation in
	// O(n/p + log p) time.
	AssociativeRecurrence

	// GeneralRecurrence must be evaluated sequentially, term by term;
	// the canonical example is a pointer traversing a linked list.
	GeneralRecurrence
)

// String returns the Table 1 column header for the kind.
func (k DispatcherKind) String() string {
	switch k {
	case MonotonicInduction:
		return "monotonic induction"
	case NonMonotonicInduction:
		return "non-monotonic induction"
	case AssociativeRecurrence:
		return "associative recurrence"
	case GeneralRecurrence:
		return "general recurrence"
	}
	return fmt.Sprintf("DispatcherKind(%d)", int(k))
}

// TerminatorKind classifies the loop's termination condition(s), matching
// the rows of Table 1.
type TerminatorKind int

const (
	// RI (remainder invariant): the terminator depends only on the
	// dispatcher and values computed outside the loop.
	RI TerminatorKind = iota
	// RV (remainder variant): the terminator depends on a value computed
	// by the remainder, so iteration i cannot decide whether some
	// iteration i' < i already satisfied it.
	RV
)

// String returns "RI" or "RV".
func (k TerminatorKind) String() string {
	if k == RI {
		return "RI"
	}
	return "RV"
}

// Parallelism describes how the dispatcher's terms can be evaluated.
type Parallelism int

const (
	// Sequential: the terms form a flow-dependence chain and must be
	// evaluated one by one.
	Sequential Parallelism = iota
	// ParallelPrefix: terms computable by a parallel prefix computation
	// (Table 1's "YES-PP").
	ParallelPrefix
	// FullyParallel: every term computable independently from a closed
	// form; all iterations may start simultaneously.
	FullyParallel
)

// String returns the Table 1 cell notation.
func (p Parallelism) String() string {
	switch p {
	case Sequential:
		return "NO"
	case ParallelPrefix:
		return "YES-PP"
	case FullyParallel:
		return "YES"
	}
	return fmt.Sprintf("Parallelism(%d)", int(p))
}

// Class is a cell of Table 1: one (dispatcher, terminator) combination,
// possibly refined by the monotonic-threshold exception.
type Class struct {
	Dispatcher DispatcherKind
	Terminator TerminatorKind

	// ThresholdOnMonotonic marks the exception discussed in Section 2:
	// the dispatcher is a monotonic function and the terminator is a
	// threshold on it (e.g. d(i)=i^2, tc(i) = d(i) < V), in which case
	// no overshoot occurs even though the dispatcher is an induction.
	// Only meaningful for MonotonicInduction with an RI terminator.
	ThresholdOnMonotonic bool
}

// DispatcherParallelism returns how the dispatcher's terms can be
// evaluated, per Table 1.
func (c Class) DispatcherParallelism() Parallelism {
	switch c.Dispatcher {
	case MonotonicInduction, NonMonotonicInduction:
		return FullyParallel
	case AssociativeRecurrence:
		return ParallelPrefix
	default:
		return Sequential
	}
}

// CanOvershoot reports whether a parallel execution of the loop may
// execute iterations beyond the last valid one, per Table 1.
//
// With an RV terminator overshoot is always possible: iteration i cannot
// know that the remainder of some iteration i' < i satisfied the exit.
// With an RI terminator, overshoot is possible only when iterations are
// dispatched eagerly from a closed form without being able to localize
// the exit — i.e. for inductions — except in the monotonic-threshold
// case.  A general recurrence with an RI terminator (the linked-list
// walk ending at nil) never overshoots because the dispatcher values are
// produced in order and the exit is checked as each is produced; the
// same holds for an associative recurrence, whose terms are produced by
// the (distributed) recurrence loop that also evaluates the exit.
func (c Class) CanOvershoot() bool {
	if c.Terminator == RV {
		return true
	}
	switch c.Dispatcher {
	case MonotonicInduction:
		return !c.ThresholdOnMonotonic
	case NonMonotonicInduction:
		return true
	case AssociativeRecurrence, GeneralRecurrence:
		return false
	}
	return true
}

// String renders the class like "general recurrence / RI".
func (c Class) String() string {
	return fmt.Sprintf("%v / %v", c.Dispatcher, c.Terminator)
}

// TaxonomyRow is one cell of Table 1 rendered with its derived
// properties; TaxonomyTable regenerates the whole table.
type TaxonomyRow struct {
	Class       Class
	Overshoot   bool
	Parallelism Parallelism
}

// TaxonomyTable reproduces Table 1 of the paper: for every
// (terminator, dispatcher) pair, whether overshoot can occur and whether
// the dispatcher is parallelizable.  Rows are ordered RI then RV, columns
// in DispatcherKind order, matching the paper's layout.
func TaxonomyTable() []TaxonomyRow {
	var rows []TaxonomyRow
	for _, t := range []TerminatorKind{RI, RV} {
		for _, d := range []DispatcherKind{
			MonotonicInduction, NonMonotonicInduction,
			AssociativeRecurrence, GeneralRecurrence,
		} {
			c := Class{Dispatcher: d, Terminator: t}
			// Table 1's "Monotonic Induction / RI" row entry is the
			// threshold case (Overshoot NO): a monotonic induction whose
			// RI exit is not a threshold behaves like the non-monotonic
			// column.
			if d == MonotonicInduction && t == RI {
				c.ThresholdOnMonotonic = true
			}
			rows = append(rows, TaxonomyRow{
				Class:       c,
				Overshoot:   c.CanOvershoot(),
				Parallelism: c.DispatcherParallelism(),
			})
		}
	}
	return rows
}
