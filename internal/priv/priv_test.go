package priv

import (
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

func TestPrivatizedTemporaryFigure5b(t *testing.T) {
	// Figure 5(b): each iteration swaps A[2i] and A[2i+1] through a
	// shared temporary.  The temporary carries anti dependences;
	// privatizing it makes the loop a valid DOALL.
	n := 64
	seqA := mem.NewArray("A", 2*n)
	parA := mem.NewArray("A", 2*n)
	for i := range seqA.Data {
		seqA.Data[i] = float64(i)
		parA.Data[i] = float64(i)
	}
	// Sequential reference.
	for i := 0; i < n; i++ {
		tmp := seqA.Data[2*i]
		seqA.Data[2*i] = seqA.Data[2*i+1]
		seqA.Data[2*i+1] = tmp
	}
	// Parallel with privatized tmp.
	tmp := mem.NewArray("tmp", 1)
	p := New(tmp, 8, Options{})
	tr := p.Tracker(nil)
	sched.DOALL(n, sched.Options{Procs: 8}, func(i, vpn int) sched.Control {
		tr.Store(tmp, 0, tr.Load(parA, 2*i, i, vpn), i, vpn)
		tr.Store(parA, 2*i, tr.Load(parA, 2*i+1, i, vpn), i, vpn)
		tr.Store(parA, 2*i+1, tr.Load(tmp, 0, i, vpn), i, vpn)
		return sched.Continue
	})
	if !parA.Equal(seqA) {
		t.Fatal("privatized parallel swap diverged from sequential")
	}
}

func TestCopyIn(t *testing.T) {
	shared := mem.FromSlice("S", []float64{5, 6, 7})
	p := New(shared, 3, Options{CopyIn: true})
	for k := 0; k < 3; k++ {
		if !p.Copy(k).Equal(shared) {
			t.Fatalf("copy %d not initialized from shared", k)
		}
	}
	// Without copy-in the copies are zero.
	p0 := New(shared, 2, Options{})
	if p0.Copy(1).Data[0] != 0 {
		t.Fatal("no-copy-in private copy should start zero")
	}
	if p0.Trail() != nil {
		t.Fatal("non-live array should have no trail")
	}
}

func TestLastValueCopyOut(t *testing.T) {
	shared := mem.NewArray("V", 4)
	shared.Data[2] = -9 // pre-loop value, must survive if only overshot writes hit it
	p := New(shared, 4, Options{Live: true, CopyIn: true})
	tr := p.Tracker(nil)
	// Iterations write element 0 with their own index; element 2 only
	// written by iteration 9 (overshoot if valid < 10).
	sched.DOALL(12, sched.Options{Procs: 4}, func(i, vpn int) sched.Control {
		tr.Store(shared, 0, float64(100+i), i, vpn)
		if i == 9 {
			tr.Store(shared, 2, 777, i, vpn)
		}
		return sched.Continue
	})
	// Shared must be untouched before copy-out — the original is the
	// backup (Section 4).
	if shared.Data[0] != 0 || shared.Data[2] != -9 {
		t.Fatal("privatized execution altered shared array before copy-out")
	}
	n := p.CopyOut(8) // iterations 0..7 valid
	if n != 1 {
		t.Fatalf("copied out %d elements, want 1", n)
	}
	if shared.Data[0] != 107 {
		t.Fatalf("last value = %v, want 107 (iteration 7's write)", shared.Data[0])
	}
	if shared.Data[2] != -9 {
		t.Fatal("overshot-only element must keep its pre-loop value")
	}
}

func TestCopyOutNonLiveIsNoop(t *testing.T) {
	shared := mem.NewArray("V", 2)
	p := New(shared, 2, Options{})
	tr := p.Tracker(nil)
	tr.Store(shared, 0, 5, 0, 0)
	if p.CopyOut(10) != 0 {
		t.Fatal("non-live CopyOut should be a no-op")
	}
	if shared.Data[0] != 0 {
		t.Fatal("non-live privatized writes must never reach shared")
	}
}

func TestTrackerPassesThroughOtherArrays(t *testing.T) {
	shared := mem.NewArray("P", 2)
	other := mem.NewArray("O", 2)
	p := New(shared, 2, Options{})
	tr := p.Tracker(nil)
	tr.Store(other, 1, 42, 0, 0)
	if other.Data[1] != 42 {
		t.Fatal("store to other array did not pass through")
	}
	if got := tr.Load(other, 1, 0, 1); got != 42 {
		t.Fatalf("load from other array = %v", got)
	}
}

func TestPrivateCopiesAreIsolated(t *testing.T) {
	shared := mem.NewArray("P", 1)
	p := New(shared, 2, Options{})
	tr := p.Tracker(nil)
	tr.Store(shared, 0, 11, 0, 0) // vpn 0
	tr.Store(shared, 0, 22, 1, 1) // vpn 1
	if got := tr.Load(shared, 0, 2, 0); got != 11 {
		t.Fatalf("vpn 0 sees %v, want its own 11", got)
	}
	if got := tr.Load(shared, 0, 3, 1); got != 22 {
		t.Fatalf("vpn 1 sees %v, want its own 22", got)
	}
}

func TestReset(t *testing.T) {
	shared := mem.FromSlice("P", []float64{3})
	p := New(shared, 2, Options{CopyIn: true, Live: true})
	tr := p.Tracker(nil)
	tr.Store(shared, 0, 99, 0, 0)
	p.Reset()
	if p.Copy(0).Data[0] != 3 {
		t.Fatal("Reset should re-copy-in")
	}
	if p.Trail().Len() != 0 {
		t.Fatal("Reset should clear the trail")
	}
	// Without copy-in, Reset zeroes.
	p2 := New(shared, 1, Options{})
	tr2 := p2.Tracker(nil)
	tr2.Store(shared, 0, 1, 0, 0)
	p2.Reset()
	if p2.Copy(0).Data[0] != 0 {
		t.Fatal("Reset without copy-in should zero")
	}
}

func TestProcsCoercion(t *testing.T) {
	p := New(mem.NewArray("x", 1), 0, Options{})
	if len(p.copies) != 1 {
		t.Fatal("procs < 1 should coerce to 1")
	}
	if p.Shared().Name != "x" {
		t.Fatal("Shared accessor broken")
	}
}
