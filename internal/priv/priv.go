// Package priv implements array privatization for speculative parallel
// loops (Section 5): each virtual processor cooperating on the loop gets
// a private copy of a variable that gives rise to anti or output
// dependences, removing those memory-related dependences.
//
// Privatization Criterion (paper, Section 5): a shared array A may be
// privatized iff every read access to an element of A is preceded by a
// write to that same element within the same iteration.  A variable
// initialized from a value computed outside the loop additionally needs
// a *copy-in* mechanism; a privatized variable that is live after the
// loop needs *last-value copy-out* — and because a private location may
// legitimately be written by many iterations of a valid parallel loop,
// copy-out uses a time-stamped write trail (internal/tsmem.Trail) to
// select, per element, the value written by the largest valid iteration.
//
// A useful side effect noted in Section 4: privatized variables need no
// checkpoint — the shared original is never altered during the parallel
// execution, so it *is* the backup.
package priv

import (
	"whilepar/internal/mem"
	"whilepar/internal/tsmem"
)

// Options configures a privatized array.
type Options struct {
	// CopyIn initializes each private copy from the shared array, for
	// variables whose first read in an iteration may legally precede
	// any write (requires the copy-in mechanism the paper describes).
	CopyIn bool
	// Live marks the array live after the loop: writes are logged to a
	// time-stamped trail and CopyOut must be called after the last
	// valid iteration is known.
	Live bool
}

// Private is one privatized shared array across p virtual processors.
type Private struct {
	shared *mem.Array
	copies []*mem.Array
	trail  *tsmem.Trail
	opts   Options
}

// New privatizes shared across procs processors.
func New(shared *mem.Array, procs int, opts Options) *Private {
	if procs < 1 {
		procs = 1
	}
	p := &Private{shared: shared, opts: opts}
	for k := 0; k < procs; k++ {
		var c *mem.Array
		if opts.CopyIn {
			c = shared.Clone()
		} else {
			c = mem.NewArray(shared.Name, shared.Len())
		}
		p.copies = append(p.copies, c)
	}
	if opts.Live {
		p.trail = tsmem.NewTrail()
	}
	return p
}

// Shared returns the original array.
func (p *Private) Shared() *mem.Array { return p.shared }

// Copy returns processor vpn's private copy (mainly for tests and
// diagnostics).
func (p *Private) Copy(vpn int) *mem.Array { return p.copies[vpn] }

// Trail returns the write trail (nil unless Live).
func (p *Private) Trail() *tsmem.Trail { return p.trail }

// Tracker wraps next so that accesses to the privatized array are
// redirected to the accessing processor's private copy, while accesses
// to every other array flow through next unchanged.  next may be nil
// for direct access to other arrays.
func (p *Private) Tracker(next mem.Tracker) mem.Tracker {
	if next == nil {
		next = mem.Direct{}
	}
	return privTracker{p: p, next: next}
}

type privTracker struct {
	p    *Private
	next mem.Tracker
}

func (t privTracker) Load(a *mem.Array, idx, iter, vpn int) float64 {
	if a != t.p.shared {
		return t.next.Load(a, idx, iter, vpn)
	}
	return t.p.copies[vpn].Data[idx]
}

func (t privTracker) Store(a *mem.Array, idx int, v float64, iter, vpn int) {
	if a != t.p.shared {
		t.next.Store(a, idx, v, iter, vpn)
		return
	}
	t.p.copies[vpn].Data[idx] = v
	if t.p.trail != nil {
		t.p.trail.Record(vpn, iter, idx, v)
	}
}

// CopyOut writes, for every element written by a valid iteration
// (index < valid), the value with the largest valid time-stamp back to
// the shared array, and returns the number of elements copied out.  It
// is a no-op (returning 0) unless the array was created Live.
func (p *Private) CopyOut(valid int) int {
	if p.trail == nil {
		return 0
	}
	vals := p.trail.LastValues(valid)
	for idx, v := range vals {
		p.shared.Data[idx] = v
	}
	return len(vals)
}

// Reset re-initializes the private copies (and trail) for re-execution,
// e.g. after a failed PD test or across strips.
func (p *Private) Reset() {
	for _, c := range p.copies {
		if p.opts.CopyIn {
			copy(c.Data, p.shared.Data)
		} else {
			for i := range c.Data {
				c.Data[i] = 0
			}
		}
	}
	if p.opts.Live {
		p.trail = tsmem.NewTrail()
	}
}
