package list

import "testing"

func TestBuildAndTraverse(t *testing.T) {
	h := Build(5, func(i int) (float64, float64) { return float64(i * 10), float64(i) })
	if Len(h) != 5 {
		t.Fatalf("Len = %d", Len(h))
	}
	nodes := Collect(h)
	for i, n := range nodes {
		if n.Key != i || n.Val != float64(i*10) || n.Work != float64(i) {
			t.Fatalf("node %d = %+v", i, *n)
		}
	}
	if vals := Values(h); len(vals) != 5 || vals[3] != 30 {
		t.Fatalf("Values = %v", vals)
	}
}

func TestBuildEmpty(t *testing.T) {
	if Build(0, nil) != nil || Build(-1, nil) != nil {
		t.Fatal("empty build should be nil")
	}
	if Len(nil) != 0 || Collect(nil) != nil {
		t.Fatal("nil list should have length 0")
	}
}

func TestFromValues(t *testing.T) {
	h := FromValues([]float64{1, 2, 3})
	if Len(h) != 3 || h.Next.Val != 2 || h.Work != 1 {
		t.Fatal("FromValues broken")
	}
}

func TestAdvance(t *testing.T) {
	h := Build(10, nil)
	if Advance(h, 0) != h {
		t.Fatal("Advance 0 should be identity")
	}
	if n := Advance(h, 4); n == nil || n.Key != 4 {
		t.Fatalf("Advance 4 = %+v", n)
	}
	if Advance(h, 10) != nil {
		t.Fatal("Advance past end should be nil")
	}
	if Advance(nil, 3) != nil {
		t.Fatal("Advance from nil should be nil")
	}
}

func TestChunked(t *testing.T) {
	c := BuildChunked(10, 3, func(i int) (float64, float64) { return float64(i), 1 })
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Chunks() != 4 { // 3+3+3+1
		t.Fatalf("Chunks = %d", c.Chunks())
	}
	offs := c.Offsets()
	want := []int{0, 3, 6, 9}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("Offsets = %v", offs)
		}
	}
	// Keys are globally numbered.
	second := c.Head.Next
	if second.Elems[0].Key != 3 || second.Elems[0].Val != 3 {
		t.Fatalf("chunk element mislabeled: %+v", second.Elems[0])
	}
}

func TestChunkedDegenerate(t *testing.T) {
	c := BuildChunked(4, 0, nil) // chunkSize coerced to 1
	if c.Chunks() != 4 || c.Len() != 4 {
		t.Fatalf("chunks=%d len=%d", c.Chunks(), c.Len())
	}
	e := BuildChunked(0, 8, nil)
	if e.Head != nil || e.Len() != 0 {
		t.Fatal("empty chunked list should have nil head")
	}
}
