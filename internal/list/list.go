// Package list is the linked-list substrate over which the general-
// recurrence methods (General-1/2/3, Section 3.3) operate.  The
// dispatcher of a list-traversing WHILE loop is the pointer `tmp` of
// Figure 1(b): tmp = head; while tmp != nil { WORK(tmp); tmp = next(tmp) }.
//
// The package also provides Harrison-style chunked lists (Section 10):
// lists made of contiguously allocated chunks whose headers record their
// lengths, enabling a sequential prefix over chunk lengths to assign
// chunk-sized portions of the recurrence to processors.  They are used
// by the related-work ablation benchmark.
package list

// Node is one element of a singly linked list.  Key identifies the node
// (its creation index, used by tests to check traversal order); Val is
// mutable payload; Work is the abstract cost of processing this node,
// consumed by the simulated-multiprocessor workloads.
type Node struct {
	Next *Node
	Key  int
	Val  float64
	Work float64
}

// Build constructs a list of n nodes with keys 0..n-1 and values/work
// from f (f may be nil for zero values), returning the head.  Nodes are
// allocated in one slice so construction is cheap, but the *traversal*
// still follows Next pointers one at a time — the dispatcher remains a
// general recurrence.
func Build(n int, f func(i int) (val, work float64)) *Node {
	if n <= 0 {
		return nil
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i].Key = i
		if f != nil {
			nodes[i].Val, nodes[i].Work = f(i)
		}
		if i+1 < n {
			nodes[i].Next = &nodes[i+1]
		}
	}
	return &nodes[0]
}

// FromValues builds a list holding the given values with unit work.
func FromValues(vals []float64) *Node {
	return Build(len(vals), func(i int) (float64, float64) { return vals[i], 1 })
}

// Len walks the list and returns its length.
func Len(head *Node) int {
	n := 0
	for p := head; p != nil; p = p.Next {
		n++
	}
	return n
}

// Collect returns the nodes in traversal order.
func Collect(head *Node) []*Node {
	var out []*Node
	for p := head; p != nil; p = p.Next {
		out = append(out, p)
	}
	return out
}

// Values returns the node values in traversal order.
func Values(head *Node) []float64 {
	var out []float64
	for p := head; p != nil; p = p.Next {
		out = append(out, p.Val)
	}
	return out
}

// Advance follows Next k times from p, stopping early at nil.  It is the
// "hop" primitive whose cost dominates General-2/3; the simulator charges
// per-hop cost for each pointer dereference it represents.
func Advance(p *Node, k int) *Node {
	for i := 0; i < k && p != nil; i++ {
		p = p.Next
	}
	return p
}

// Chunk is a contiguously allocated run of list elements with a header
// recording its length, as in Harrison's allocation scheme.
type Chunk struct {
	Next  *Chunk
	Elems []Node // Node.Next pointers are not used within chunks
}

// Chunked is a list represented as linked chunks.
type Chunked struct {
	Head *Chunk
}

// BuildChunked builds a chunked list of n elements with the given chunk
// size (the final chunk may be shorter).  chunkSize < 1 is treated as 1.
func BuildChunked(n, chunkSize int, f func(i int) (val, work float64)) Chunked {
	if chunkSize < 1 {
		chunkSize = 1
	}
	var head, tail *Chunk
	for base := 0; base < n; base += chunkSize {
		sz := chunkSize
		if base+sz > n {
			sz = n - base
		}
		c := &Chunk{Elems: make([]Node, sz)}
		for j := range c.Elems {
			c.Elems[j].Key = base + j
			if f != nil {
				c.Elems[j].Val, c.Elems[j].Work = f(base + j)
			}
		}
		if tail == nil {
			head = c
		} else {
			tail.Next = c
		}
		tail = c
	}
	return Chunked{Head: head}
}

// Len returns the total element count by summing chunk headers — a walk
// over chunks, not elements, which is the source of Harrison's speedup.
func (c Chunked) Len() int {
	n := 0
	for ch := c.Head; ch != nil; ch = ch.Next {
		n += len(ch.Elems)
	}
	return n
}

// Chunks returns the number of chunks.
func (c Chunked) Chunks() int {
	n := 0
	for ch := c.Head; ch != nil; ch = ch.Next {
		n++
	}
	return n
}

// Offsets returns, for each chunk, the global index of its first element
// — the sequential prefix computation over chunk headers that assigns
// chunk portions of the recurrence to processors.
func (c Chunked) Offsets() []int {
	var offs []int
	n := 0
	for ch := c.Head; ch != nil; ch = ch.Next {
		offs = append(offs, n)
		n += len(ch.Elems)
	}
	return offs
}
