package failsafe

import "testing"

func TestRunAdoptsParallelWhenValid(t *testing.T) {
	got, out := Run(
		func() int { return 1 },
		func() (int, bool) { return 2, true },
	)
	if got != 2 || !out.UsedParallel {
		t.Fatalf("got %d, %+v", got, out)
	}
}

func TestRunFallsBackToSequential(t *testing.T) {
	got, out := Run(
		func() int { return 1 },
		func() (int, bool) { return 999, false },
	)
	if got != 1 || out.UsedParallel {
		t.Fatalf("got %d, %+v", got, out)
	}
}

func TestRunExecutesBothOnSeparateCopies(t *testing.T) {
	// Both closures mutate their own state; both must have run.
	seqRan, parRan := false, false
	Run(
		func() struct{} { seqRan = true; return struct{}{} },
		func() (struct{}, bool) { parRan = true; return struct{}{}, true },
	)
	if !seqRan || !parRan {
		t.Fatal("both executions must run")
	}
}

func TestSimTime(t *testing.T) {
	// Valid speculation: earlier finisher wins.
	if got := SimTime(1000, 200, 50, true); got != 250 {
		t.Fatalf("valid SimTime = %v, want 250", got)
	}
	// Parallel slower than sequential but valid: sequential racer's
	// finish bounds the time.
	if got := SimTime(1000, 3000, 50, true); got != 1050 {
		t.Fatalf("valid-slow SimTime = %v, want 1050", got)
	}
	// Invalid speculation: only the copy cost is lost beyond sequential.
	if got := SimTime(1000, 200, 50, false); got != 1050 {
		t.Fatalf("invalid SimTime = %v, want 1050", got)
	}
}
