package failsafe

import "testing"

func TestRunAdoptsParallelWhenValid(t *testing.T) {
	got, out := Run(
		func() int { return 1 },
		func() (int, bool) { return 2, true },
	)
	if got != 2 || !out.UsedParallel {
		t.Fatalf("got %d, %+v", got, out)
	}
}

func TestRunFallsBackToSequential(t *testing.T) {
	got, out := Run(
		func() int { return 1 },
		func() (int, bool) { return 999, false },
	)
	if got != 1 || out.UsedParallel {
		t.Fatalf("got %d, %+v", got, out)
	}
}

func TestRunExecutesBothOnSeparateCopies(t *testing.T) {
	// Both closures mutate their own state; both must have run.
	seqRan, parRan := false, false
	Run(
		func() struct{} { seqRan = true; return struct{}{} },
		func() (struct{}, bool) { parRan = true; return struct{}{}, true },
	)
	if !seqRan || !parRan {
		t.Fatal("both executions must run")
	}
}

func TestSimTime(t *testing.T) {
	// Valid speculation: earlier finisher wins.
	if got := SimTime(1000, 200, 50, true); got != 250 {
		t.Fatalf("valid SimTime = %v, want 250", got)
	}
	// Parallel slower than sequential but valid: sequential racer's
	// finish bounds the time.
	if got := SimTime(1000, 3000, 50, true); got != 1050 {
		t.Fatalf("valid-slow SimTime = %v, want 1050", got)
	}
	// Invalid speculation: only the copy cost is lost beyond sequential.
	if got := SimTime(1000, 200, 50, false); got != 1050 {
		t.Fatalf("invalid SimTime = %v, want 1050", got)
	}
}

func TestRunRaceCancelsSpeculationWhenSequentialWins(t *testing.T) {
	// The speculative racer blocks until cancelled; the sequential racer
	// finishes immediately.  RunRace must return promptly with the
	// sequential result and unblock the speculation via its channel.
	got, out := RunRace(
		func(<-chan struct{}) int { return 7 },
		func(cancel <-chan struct{}) (int, bool) {
			<-cancel // prompt cancellation is the only way out
			return 0, false
		},
	)
	if got != 7 || out.UsedParallel || !out.LoserCanceled {
		t.Fatalf("got %d, %+v", got, out)
	}
}

func TestRunRaceCancelsSequentialWhenSpeculationWins(t *testing.T) {
	seqSawCancel := make(chan struct{}, 1)
	got, out := RunRace(
		func(cancel <-chan struct{}) int {
			<-cancel
			seqSawCancel <- struct{}{}
			return 0
		},
		func(<-chan struct{}) (int, bool) { return 42, true },
	)
	if got != 42 || !out.UsedParallel || !out.LoserCanceled {
		t.Fatalf("got %d, %+v", got, out)
	}
	select {
	case <-seqSawCancel:
	default:
		t.Fatal("sequential racer was not signalled")
	}
}

func TestRunRaceInvalidSpeculationWaitsForSequential(t *testing.T) {
	// A failed speculation must not cancel the sequential racer — its
	// result is the only correct one left.
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, out := RunRace(
			func(cancel <-chan struct{}) int {
				select {
				case <-cancel:
					t.Error("sequential racer must not be cancelled after a failed speculation")
				case <-release:
				}
				return 5
			},
			func(<-chan struct{}) (int, bool) { return 999, false },
		)
		// LoserCanceled is timing-dependent here (the sequential racer may
		// finish while the speculation's goroutine is still returning), so
		// only the adoption matters: the sequential result, uncancelled.
		if got != 5 || out.UsedParallel {
			t.Errorf("got %d, %+v", got, out)
		}
	}()
	release <- struct{}{}
	<-done
}
