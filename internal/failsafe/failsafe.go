// Package failsafe implements the one-processor / (p-1)-processor
// solution of Section 8.3: to minimize the risk of parallelizing a WHILE
// loop, one processor executes the original sequential loop while the
// remaining p-1 processors execute the speculative parallel version —
// on separate copies of the loop's output data.  If the speculation
// succeeds first, its result is used; if it fails (or the sequential
// racer finishes first), the sequential result is used.  The worst case
// is thus (nearly) the sequential time plus the cost of creating the
// data copies, while the best case keeps most of the parallel speedup.
package failsafe

import (
	"math"
	"sync"
)

// Outcome reports which execution produced the adopted result.
type Outcome struct {
	// UsedParallel is true if the speculative parallel execution was
	// valid and its result was adopted.
	UsedParallel bool
	// LoserCanceled is true if the losing side was still running when
	// the winner finished and was signalled to stop (RunRace only; Run
	// always lets both sides complete).
	LoserCanceled bool
}

// Run executes seq and par concurrently (modelling the disjoint
// processor sets) and returns the adopted result: par's if it reports
// validity, seq's otherwise.  Both functions must operate on their own
// copies of the data; the caller commits the returned value.
func Run[T any](seq func() T, par func() (T, bool)) (T, Outcome) {
	var (
		wg     sync.WaitGroup
		seqRes T
		parRes T
		parOK  bool
	)
	wg.Add(2)
	go func() { defer wg.Done(); seqRes = seq() }()
	go func() { defer wg.Done(); parRes, parOK = par() }()
	wg.Wait()
	if parOK {
		return parRes, Outcome{UsedParallel: true}
	}
	return seqRes, Outcome{}
}

// RunRace is Run with prompt cancellation of the losing side: each
// racer receives a cancel channel that is closed as soon as the other
// side has produced the adopted result, so a long-running loser can
// stop polling/iterating instead of burning its processors to the end.
// Bodies should check the channel at iteration (or strip) boundaries
// and return early when it is closed; a body that ignores it simply
// degenerates to Run's behaviour.
//
// Adoption follows the racing semantics of Section 8.3: whichever side
// first produces a usable result wins — the sequential racer's result
// is always usable; the speculative racer's only if it reports
// validity.  An invalid speculation cancels nothing (the sequential
// racer must still finish).  Both goroutines are always waited for, so
// no execution leaks past the return.
func RunRace[T any](seq func(cancel <-chan struct{}) T, par func(cancel <-chan struct{}) (T, bool)) (T, Outcome) {
	var (
		seqRes, parRes T
		parOK          bool
	)
	seqCancel := make(chan struct{})
	parCancel := make(chan struct{})
	seqDone := make(chan struct{})
	parDone := make(chan struct{})
	go func() { seqRes = seq(seqCancel); close(seqDone) }()
	go func() { parRes, parOK = par(parCancel); close(parDone) }()

	var out Outcome
	select {
	case <-seqDone:
		// The sequential racer finished first: its result is correct by
		// construction, so the speculation is moot — stop it.
		select {
		case <-parDone:
		default:
			out.LoserCanceled = true
		}
		close(parCancel)
		<-parDone
		return seqRes, out
	case <-parDone:
		if !parOK {
			// Failed speculation: only the sequential result remains.
			<-seqDone
			return seqRes, out
		}
		select {
		case <-seqDone:
		default:
			out.LoserCanceled = true
		}
		close(seqCancel)
		<-seqDone
		out.UsedParallel = true
		return parRes, out
	}
}

// SimTime models the scheme's completion time: the sequential loop runs
// on 1 processor (tseq1), the parallel version on p-1 processors
// (tparP1), both after paying copyCost to duplicate the output data.
// If the parallel execution is valid, the result is available at the
// earlier of the two finish times (whichever produces the same, correct
// answer first); if invalid, only the sequential racer's result counts.
func SimTime(tseq1, tparP1, copyCost float64, parValid bool) float64 {
	if parValid {
		return copyCost + math.Min(tseq1, tparP1)
	}
	return copyCost + tseq1
}
