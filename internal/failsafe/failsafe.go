// Package failsafe implements the one-processor / (p-1)-processor
// solution of Section 8.3: to minimize the risk of parallelizing a WHILE
// loop, one processor executes the original sequential loop while the
// remaining p-1 processors execute the speculative parallel version —
// on separate copies of the loop's output data.  If the speculation
// succeeds first, its result is used; if it fails (or the sequential
// racer finishes first), the sequential result is used.  The worst case
// is thus (nearly) the sequential time plus the cost of creating the
// data copies, while the best case keeps most of the parallel speedup.
package failsafe

import (
	"math"
	"sync"
)

// Outcome reports which execution produced the adopted result.
type Outcome struct {
	// UsedParallel is true if the speculative parallel execution was
	// valid and its result was adopted.
	UsedParallel bool
}

// Run executes seq and par concurrently (modelling the disjoint
// processor sets) and returns the adopted result: par's if it reports
// validity, seq's otherwise.  Both functions must operate on their own
// copies of the data; the caller commits the returned value.
func Run[T any](seq func() T, par func() (T, bool)) (T, Outcome) {
	var (
		wg     sync.WaitGroup
		seqRes T
		parRes T
		parOK  bool
	)
	wg.Add(2)
	go func() { defer wg.Done(); seqRes = seq() }()
	go func() { defer wg.Done(); parRes, parOK = par() }()
	wg.Wait()
	if parOK {
		return parRes, Outcome{UsedParallel: true}
	}
	return seqRes, Outcome{}
}

// SimTime models the scheme's completion time: the sequential loop runs
// on 1 processor (tseq1), the parallel version on p-1 processors
// (tparP1), both after paying copyCost to duplicate the output data.
// If the parallel execution is valid, the result is available at the
// earlier of the two finish times (whichever produces the same, correct
// answer first); if invalid, only the sequential racer's result counts.
func SimTime(tseq1, tparP1, copyCost float64, parValid bool) float64 {
	if parValid {
		return copyCost + math.Min(tseq1, tparP1)
	}
	return copyCost + tseq1
}
