package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"whilepar/internal/cancel"
	"whilepar/internal/core"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
)

// countLoop is the canonical native body: a monotonic induction loop
// over a fresh array, run through the core orchestrator so the shared
// pool, metrics and ctx plumbing all engage.  perIter > 0 inserts a
// sleep per iteration so deadline/cancel tests have time to fire.
func countLoop(n int, perIter time.Duration) NativeFunc {
	return func(ctx context.Context, opt core.Options, args map[string]float64) (core.Report, error) {
		a := mem.NewArray("A", n)
		opt.Shared = []*mem.Array{a}
		opt.Tested = []*mem.Array{a}
		return core.RunInductionCtx(ctx, &loopir.Loop[int]{
			Class: loopir.Class{Dispatcher: loopir.MonotonicInduction, Terminator: loopir.RV},
			Disp:  loopir.IntInduction{C: 1},
			Body: func(it *loopir.Iter, d int) bool {
				if perIter > 0 {
					time.Sleep(perIter)
				}
				it.Store(a, d, float64(d)+1)
				return true
			},
			Max: n,
		}, opt)
	}
}

// panicLoop panics mid-loop on one virtual processor.
func panicLoop(n int) NativeFunc {
	return func(ctx context.Context, opt core.Options, args map[string]float64) (core.Report, error) {
		a := mem.NewArray("A", n)
		opt.Shared = []*mem.Array{a}
		opt.Tested = []*mem.Array{a}
		return core.RunInductionCtx(ctx, &loopir.Loop[int]{
			Class: loopir.Class{Dispatcher: loopir.MonotonicInduction, Terminator: loopir.RV},
			Disp:  loopir.IntInduction{C: 1},
			Body: func(it *loopir.Iter, d int) bool {
				if d == n/2 {
					panic("injected body panic")
				}
				it.Store(a, d, 1)
				return true
			},
			Max: n,
		}, opt)
	}
}

const testProgram = `
	while (i < n) {
		b[i] = 2*a[i] + 1
		i = i + 1
	}`

func newTestScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s := NewScheduler(cfg)
	t.Cleanup(s.Close)
	return s
}

func waitDone(t *testing.T, s *Scheduler, id string) Status {
	t.Helper()
	ctx, cancelFn := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelFn()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}

func TestSubmitValidation(t *testing.T) {
	s := newTestScheduler(t, Config{Procs: 2, MaxInFlight: 1})
	cases := []JobSpec{
		{Kind: "bogus"},
		{Kind: "while"},                            // empty program
		{Kind: "while", Program: "garbage ("},      // parse error
		{Kind: "native", Native: "no-such-native"}, // unregistered
		{Kind: "while", Program: testProgram, Strategy: "warp-speed"}, // unknown strategy
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d: err = %v, want ErrBadSpec", i, err)
		}
	}
	st := s.Stats()
	if st.Submitted != 0 {
		t.Fatalf("bad specs counted as submissions: %+v", st)
	}
}

func TestWhileJobRuns(t *testing.T) {
	s := newTestScheduler(t, Config{Procs: 4, MaxInFlight: 2})
	id, err := s.Submit(JobSpec{Kind: "while", Program: testProgram, MaxIter: 256})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, id)
	if st.State != "done" || st.Report == nil || st.Report.Valid != 256 {
		t.Fatalf("status %+v (report %+v)", st, st.Report)
	}
	if st.Metrics == nil || st.Metrics.Issued == 0 {
		t.Fatalf("job metrics not recorded: %+v", st.Metrics)
	}
}

func TestRateLimitRejects(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	RegisterNative("rl-count", countLoop(64, 0))
	s := newTestScheduler(t, Config{Procs: 2, MaxInFlight: 1, Rate: 1, Burst: 2, Now: clock})

	spec := JobSpec{Kind: "native", Native: "rl-count"}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst submit: err = %v, want ErrRateLimited", err)
	}
	mu.Lock()
	now = now.Add(time.Second) // refill one token
	mu.Unlock()
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
	if st := s.Stats(); st.RejectedRate != 1 {
		t.Fatalf("stats %+v, want RejectedRate 1", st)
	}
}

func TestQueueFullRejects(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	RegisterNative("qf-block", func(ctx context.Context, opt core.Options, args map[string]float64) (core.Report, error) {
		started <- struct{}{}
		<-gate
		return core.Report{}, nil
	})
	s := newTestScheduler(t, Config{Procs: 2, MaxInFlight: 1, QueueDepth: 2})

	first, err := s.Submit(JobSpec{Kind: "native", Native: "qf-block"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single dispatch slot is now occupied
	var queued []string
	for i := 0; i < 2; i++ {
		id, err := s.Submit(JobSpec{Kind: "native", Native: "qf-block"})
		if err != nil {
			t.Fatalf("fill queue %d: %v", i, err)
		}
		queued = append(queued, id)
	}
	if _, err := s.Submit(JobSpec{Kind: "native", Native: "qf-block"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth submit: err = %v, want ErrQueueFull", err)
	}
	close(gate)
	for range queued {
		<-started // drain the start signals as the queue unblocks
	}
	for _, id := range append([]string{first}, queued...) {
		if st := waitDone(t, s, id); st.State != "done" {
			t.Fatalf("job %s: %+v", id, st)
		}
	}
	if st := s.Stats(); st.RejectedQueue != 1 || st.Completed != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPriorityDispatchOrder(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	RegisterNative("prio-block", func(ctx context.Context, opt core.Options, args map[string]float64) (core.Report, error) {
		started <- struct{}{}
		<-gate
		return core.Report{}, nil
	})
	var mu sync.Mutex
	var order []float64
	RegisterNative("prio-mark", func(ctx context.Context, opt core.Options, args map[string]float64) (core.Report, error) {
		mu.Lock()
		order = append(order, args["tag"])
		mu.Unlock()
		return core.Report{}, nil
	})
	s := newTestScheduler(t, Config{Procs: 2, MaxInFlight: 1, QueueDepth: 16})

	blocker, err := s.Submit(JobSpec{Kind: "native", Native: "prio-block"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var ids []string
	for i, prio := range []int{0, 5, 0, 5} {
		id, err := s.Submit(JobSpec{
			Kind: "native", Native: "prio-mark",
			Priority: prio,
			Args:     map[string]float64{"tag": float64(10*prio + i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	close(gate)
	waitDone(t, s, blocker)
	for _, id := range ids {
		waitDone(t, s, id)
	}
	want := []float64{51, 53, 0, 2} // priority 5 first, FIFO within a priority
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	RegisterNative("cx-block", func(ctx context.Context, opt core.Options, args map[string]float64) (core.Report, error) {
		started <- struct{}{}
		select {
		case <-gate:
			return core.Report{}, nil
		case <-ctx.Done():
			return core.Report{}, cancel.Wrap(ctx.Err())
		}
	})
	s := newTestScheduler(t, Config{Procs: 2, MaxInFlight: 1, QueueDepth: 8})

	runningID, err := s.Submit(JobSpec{Kind: "native", Native: "cx-block"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queuedID, err := s.Submit(JobSpec{Kind: "native", Native: "cx-block"})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Cancel(queuedID); err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, s, queuedID); st.State != "canceled" {
		t.Fatalf("queued cancel: %+v", st)
	}
	if err := s.Cancel(runningID); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, runningID)
	if st.State != "canceled" || st.ErrorKind != "canceled" {
		t.Fatalf("running cancel: %+v", st)
	}
	if err := s.Cancel(runningID); err != nil { // idempotent on terminal
		t.Fatal(err)
	}
	if err := s.Cancel("j999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v", err)
	}
	close(gate)
}

// TestMixedConcurrentJobs is the acceptance scenario: 64 jobs — .while
// programs and native bodies, several strategies, some with deadlines
// guaranteed to expire, one panicking — all multiplexed onto one shared
// pool.  Every job must reach the right terminal state and the
// scheduler must stay serviceable afterwards.
func TestMixedConcurrentJobs(t *testing.T) {
	RegisterNative("mx-count", countLoop(256, 0))
	RegisterNative("mx-slow", countLoop(100_000, 200*time.Microsecond))
	RegisterNative("mx-panic", panicLoop(128))
	s := newTestScheduler(t, Config{Procs: 4, MaxInFlight: 8, QueueDepth: 128})

	type expect struct {
		id    string
		state string
		kind  string
	}
	strategies := []string{"auto", "speculate", "pipeline", "sequential"}
	var jobs []expect
	for i := 0; i < 64; i++ {
		var (
			spec JobSpec
			want expect
		)
		switch i % 4 {
		case 0:
			spec = JobSpec{Kind: "while", Program: testProgram, MaxIter: 256,
				Strategy: strategies[(i/4)%len(strategies)]}
			want = expect{state: "done"}
		case 1:
			spec = JobSpec{Kind: "native", Native: "mx-count", Priority: i % 3}
			want = expect{state: "done"}
		case 2:
			// 100k iterations at 200µs each can't finish in 25ms,
			// whether the time is spent queued or running.
			spec = JobSpec{Kind: "native", Native: "mx-slow", DeadlineMs: 25}
			want = expect{state: "failed", kind: "deadline"}
		default:
			if i == 3 {
				spec = JobSpec{Kind: "native", Native: "mx-panic"}
				want = expect{state: "failed", kind: "panic"}
			} else {
				spec = JobSpec{Kind: "native", Native: "mx-count"}
				want = expect{state: "done"}
			}
		}
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		want.id = id
		jobs = append(jobs, want)
	}

	for i, want := range jobs {
		st := waitDone(t, s, want.id)
		if st.State != want.state {
			t.Errorf("job %d (%s): state %q (errkind %q, err %q), want %q",
				i, want.id, st.State, st.ErrorKind, st.Error, want.state)
		}
		if want.kind != "" && st.ErrorKind != want.kind {
			t.Errorf("job %d (%s): error kind %q (err %q), want %q",
				i, want.id, st.ErrorKind, st.Error, want.kind)
		}
		if want.state == "done" && (st.Report == nil || st.Report.Valid != 256) {
			t.Errorf("job %d (%s): report %+v, want Valid 256", i, want.id, st.Report)
		}
	}

	// The pool must have survived deadline unwinds and the panic.
	id, err := s.Submit(JobSpec{Kind: "while", Program: testProgram, MaxIter: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, s, id); st.State != "done" || st.Report.Valid != 64 {
		t.Fatalf("post-storm job: %+v", st)
	}

	stats := s.Stats()
	if stats.Submitted != 65 || stats.Running != 0 || stats.Queued != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Completed+stats.Failed != 65 {
		t.Fatalf("stats %+v: completed+failed != 65", stats)
	}
	agg := s.MetricsSnapshot()
	if agg.Issued == 0 || agg.WorkerPanics == 0 {
		t.Fatalf("aggregate metrics %+v: want issued > 0 and worker panics > 0", agg)
	}
}

func TestRetainDoneEvictsButKeepsCounters(t *testing.T) {
	RegisterNative("ev-count", countLoop(64, 0))
	s := newTestScheduler(t, Config{Procs: 2, MaxInFlight: 2, RetainDone: 4, QueueDepth: 64})

	var ids []string
	for i := 0; i < 12; i++ {
		// Pin the strategy: Auto may settle on a sequential plan for a
		// loop this small, and sequential execution issues nothing —
		// the conservation check below needs a fixed per-job count.
		id, err := s.Submit(JobSpec{Kind: "native", Native: "ev-count", Strategy: "speculate"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var issued int64
	for _, id := range ids {
		// A job can be evicted before we query it; Wait then reports
		// ErrNotFound, which is fine — its counters are in the aggregate.
		ctx, cancelFn := context.WithTimeout(context.Background(), 30*time.Second)
		st, err := s.Wait(ctx, id)
		cancelFn()
		if err == nil && st.Metrics != nil {
			issued = st.Metrics.Issued
		} else if !errors.Is(err, ErrNotFound) {
			t.Fatalf("Wait(%s): %v", id, err)
		}
	}
	_ = issued
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := s.Stats(); st.Completed == 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats %+v: jobs did not drain", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := len(s.List()); n > 4+2 { // retained plus any not yet retired
		t.Fatalf("retained %d jobs, want <= 6", n)
	}
	// Eviction must not lose counters: 12 jobs x 64 issued iterations.
	if agg := s.MetricsSnapshot(); agg.Issued != 12*64 {
		t.Fatalf("aggregate issued = %d, want %d", agg.Issued, 12*64)
	}
}

func TestCloseCancelsOutstanding(t *testing.T) {
	started := make(chan struct{}, 1)
	RegisterNative("cl-block", func(ctx context.Context, opt core.Options, args map[string]float64) (core.Report, error) {
		started <- struct{}{}
		<-ctx.Done()
		return core.Report{}, cancel.Wrap(ctx.Err())
	})
	s := NewScheduler(Config{Procs: 2, MaxInFlight: 1, QueueDepth: 8})
	runningID, err := s.Submit(JobSpec{Kind: "native", Native: "cl-block"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queuedID, err := s.Submit(JobSpec{Kind: "native", Native: "cl-block"})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	for _, id := range []string{runningID, queuedID} {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State != "canceled" {
			t.Fatalf("job %s after Close: %+v", id, st)
		}
	}
	if _, err := s.Submit(JobSpec{Kind: "native", Native: "cl-block"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	s.Close() // idempotent
}

func TestNativeRegistry(t *testing.T) {
	RegisterNative("reg-a", countLoop(8, 0))
	RegisterNative("reg-b", countLoop(8, 0))
	names := Natives()
	found := 0
	for _, n := range names {
		if n == "reg-a" || n == "reg-b" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("Natives() = %v", names)
	}
	if _, ok := LookupNative("reg-a"); !ok {
		t.Fatal("LookupNative(reg-a) = false")
	}
	if _, ok := LookupNative(fmt.Sprintf("reg-%d", 99)); ok {
		t.Fatal("LookupNative on unknown name = true")
	}
}
