package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"whilepar/internal/cancel"
	"whilepar/internal/core"
)

func postJob(t *testing.T, srv *httptest.Server, spec JobSpec) (*http.Response, map[string]string) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestHTTPSubmitAndStatus(t *testing.T) {
	s := newTestScheduler(t, Config{Procs: 4, MaxInFlight: 2})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp, out := postJob(t, srv, JobSpec{Kind: "while", Program: testProgram, MaxIter: 128})
	if resp.StatusCode != http.StatusAccepted || out["id"] == "" {
		t.Fatalf("submit: %d %v", resp.StatusCode, out)
	}
	id := out["id"]

	var st Status
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status: %d", r.StatusCode)
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "queued" || st.State == "running" {
			if time.Now().After(deadline) {
				t.Fatalf("job stuck: %+v", st)
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		break
	}
	if st.State != "done" || st.Report == nil || st.Report.Valid != 128 {
		t.Fatalf("terminal status %+v", st)
	}
	if st.Metrics == nil {
		t.Fatal("status carries no metrics snapshot")
	}

	r, err := http.Get(srv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", r.StatusCode)
	}

	resp, _ = postJob(t, srv, JobSpec{Kind: "while", Program: "broken ("})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad program: %d", resp.StatusCode)
	}
}

func TestHTTPRateLimit429(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(2000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	s := newTestScheduler(t, Config{Procs: 2, MaxInFlight: 1, Rate: 1, Burst: 1, Now: clock})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	spec := JobSpec{Kind: "while", Program: testProgram, MaxIter: 16}
	resp, _ := postJob(t, srv, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp, out := postJob(t, srv, spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(out["error"], "rate limit") {
		t.Fatalf("429 body: %v", out)
	}
}

func TestHTTPQueueFull503(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	RegisterNative("http-block", func(ctx context.Context, opt core.Options, args map[string]float64) (core.Report, error) {
		started <- struct{}{}
		<-gate
		return core.Report{}, nil
	})
	defer close(gate)
	s := newTestScheduler(t, Config{Procs: 2, MaxInFlight: 1, QueueDepth: 1})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	if resp, _ := postJob(t, srv, JobSpec{Kind: "native", Native: "http-block"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first: %d", resp.StatusCode)
	}
	<-started
	if resp, _ := postJob(t, srv, JobSpec{Kind: "native", Native: "http-block"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued: %d", resp.StatusCode)
	}
	resp, _ := postJob(t, srv, JobSpec{Kind: "native", Native: "http-block"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-depth: %d", resp.StatusCode)
	}
}

func TestHTTPMetricsHealthzNatives(t *testing.T) {
	RegisterNative("http-count", countLoop(64, 0))
	s := newTestScheduler(t, Config{Procs: 2, MaxInFlight: 2})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	_, out := postJob(t, srv, JobSpec{Kind: "native", Native: "http-count", Strategy: "speculate"})
	waitDone(t, s, out["id"])

	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(r.Body)
	r.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"whilepard_jobs_submitted_total 1",
		"whilepard_jobs_completed_total 1",
		"whilepard_pool_procs 2",
		"# TYPE whilepard_issued counter",
		"whilepard_issued 64",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		OK bool `json:"ok"`
		Stats
	}
	err = json.NewDecoder(r.Body).Decode(&hz)
	r.Body.Close()
	if err != nil || !hz.OK || hz.Submitted != 1 {
		t.Fatalf("healthz: %+v err %v", hz, err)
	}

	r, err = http.Get(srv.URL + "/v1/natives")
	if err != nil {
		t.Fatal(err)
	}
	var nat map[string][]string
	err = json.NewDecoder(r.Body).Decode(&nat)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range nat["natives"] {
		if n == "http-count" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/v1/natives = %v", nat)
	}
}

func TestHTTPStreamAndCancel(t *testing.T) {
	started := make(chan struct{}, 1)
	RegisterNative("http-stream-block", func(ctx context.Context, opt core.Options, args map[string]float64) (core.Report, error) {
		started <- struct{}{}
		<-ctx.Done()
		return core.Report{}, cancel.Wrap(ctx.Err())
	})
	s := newTestScheduler(t, Config{Procs: 2, MaxInFlight: 1})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	_, out := postJob(t, srv, JobSpec{Kind: "native", Native: "http-stream-block"})
	id := out["id"]
	<-started

	streamDone := make(chan []string, 1)
	go func() {
		r, err := http.Get(srv.URL + "/v1/jobs/" + id + "/stream")
		if err != nil {
			streamDone <- nil
			return
		}
		defer r.Body.Close()
		var states []string
		sc := bufio.NewScanner(r.Body)
		for sc.Scan() {
			var st Status
			if json.Unmarshal(sc.Bytes(), &st) == nil {
				states = append(states, st.State)
			}
		}
		streamDone <- states
	}()

	time.Sleep(120 * time.Millisecond) // let a few stream ticks land
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", r.StatusCode)
	}

	select {
	case states := <-streamDone:
		if len(states) == 0 {
			t.Fatal("stream yielded nothing")
		}
		if states[len(states)-1] != "canceled" {
			t.Fatalf("stream states %v, want terminal canceled", states)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not terminate after cancel")
	}
	if st := waitDone(t, s, id); st.State != "canceled" {
		t.Fatalf("final status %+v", st)
	}
}
