// Package serve multiplexes many concurrent loop executions onto one
// shared worker pool behind an admission-controlled scheduler.
//
// The embedding model (one whilepar.Run per caller-owned pool) breaks
// down in a long-lived service: spawning a fresh pool per request
// thrashes the runtime, and unbounded concurrent requests oversubscribe
// the machine.  The Scheduler here owns a single sched.Pool in shared
// (FIFO-ticket) mode and admits jobs through three gates:
//
//   - a token bucket bounds the submission rate (reject: ErrRateLimited),
//   - a bounded queue caps waiting work (reject: ErrQueueFull),
//   - a fixed dispatcher count caps in-flight executions; dispatch order
//     is priority-then-FIFO.
//
// Jobs are .while programs (compiled at submission, so malformed
// programs fail fast) or pre-registered native Go loop bodies.  Each
// job carries its own obs.Metrics; the service-wide view is the sum of
// per-job snapshots (Snapshot.Add), rendered by WriteMetrics in the
// Prometheus text format.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"whilepar/internal/autotune"
	"whilepar/internal/cancel"
	"whilepar/internal/core"
	"whilepar/internal/frontend"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
)

// Typed admission and lookup errors.  The HTTP layer maps these onto
// status codes (429, 503, 404); embedders match with errors.Is.
var (
	// ErrBadSpec: the JobSpec is malformed — unknown kind, empty or
	// uncompilable program, unregistered native, unknown strategy.
	ErrBadSpec = errors.New("serve: bad job spec")
	// ErrRateLimited: the token bucket is empty; retry later.
	ErrRateLimited = errors.New("serve: submission rate limit exceeded")
	// ErrQueueFull: the admission queue is at QueueDepth.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrClosed: the scheduler has been shut down.
	ErrClosed = errors.New("serve: scheduler closed")
	// ErrNotFound: no job with that ID (it may have been evicted after
	// RetainDone newer jobs finished).
	ErrNotFound = errors.New("serve: no such job")
)

// Config sizes a Scheduler.  The zero value is usable: every field
// has a default.
type Config struct {
	// Procs is the shared pool's width (virtual processors).  Default
	// GOMAXPROCS.
	Procs int
	// QueueDepth caps jobs waiting for a dispatch slot; submissions
	// beyond it get ErrQueueFull.  Default 64.
	QueueDepth int
	// MaxInFlight caps concurrently executing jobs.  Each in-flight
	// job runs its parallel phases through the shared pool's FIFO
	// admission, so this bounds memory and queueing pressure, not CPU
	// oversubscription.  Default 4.
	MaxInFlight int
	// Rate and Burst parameterize the submission token bucket (jobs
	// per second, bucket depth).  Rate 0 disables rate limiting.
	Rate  float64
	Burst int
	// RetainDone is how many finished jobs stay queryable; older ones
	// are evicted after folding their counters into the service-wide
	// aggregate, so /metrics stays monotonic.  Default 256.
	RetainDone int
	// Profiles, if non-nil, is shared across jobs so adaptive strategy
	// selection warms up across requests with the same Options.Key.
	Profiles *autotune.ProfileStore
	// Now injects a clock for tests.  Default time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.RetainDone <= 0 {
		c.RetainDone = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a point-in-time view of the Scheduler's admission counters.
type Stats struct {
	Submitted     int64 `json:"submitted"`
	RejectedRate  int64 `json:"rejected_rate"`
	RejectedQueue int64 `json:"rejected_queue"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Canceled      int64 `json:"canceled"`
	Queued        int   `json:"queued"`
	Running       int   `json:"running"`
	PoolProcs     int   `json:"pool_procs"`
}

// Scheduler multiplexes jobs onto one shared pool.  Create with
// NewScheduler, shut down with Close.
type Scheduler struct {
	cfg     Config
	pool    *sched.Pool
	limiter *tokenBucket
	now     func() time.Time
	wg      sync.WaitGroup

	mu         sync.Mutex
	cond       *sync.Cond
	closed     bool
	seq        uint64
	queue      jobQueue
	jobs       map[string]*job
	doneOrder  []string     // finished job IDs, oldest first, for eviction
	retiredAgg obs.Snapshot // counters of evicted jobs, so /metrics is monotonic

	submitted, rejectedRate, rejectedQueue int64
	completed, failed, canceled            int64
	running                                int
}

// NewScheduler starts the shared pool and cfg.MaxInFlight dispatchers.
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:     cfg,
		pool:    sched.NewSharedPool(cfg.Procs),
		now:     cfg.Now,
		limiter: newTokenBucket(cfg.Rate, cfg.Burst, cfg.Now),
		jobs:    make(map[string]*job),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.MaxInFlight; i++ {
		s.wg.Add(1)
		go s.dispatch()
	}
	return s
}

// compileWhile builds the interpreted program for a "while" job.
func compileWhile(spec JobSpec) (*frontend.Program, error) {
	if spec.Program == "" {
		return nil, fmt.Errorf("%w: empty program", ErrBadSpec)
	}
	ast, err := frontend.Parse(spec.Program)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	an, err := frontend.Analyze(ast)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	maxIter := spec.MaxIter
	if maxIter <= 0 {
		maxIter = 1024
	}
	n := spec.ArrayN
	if n <= 0 {
		n = maxIter
	}
	prog, err := frontend.Compile(ast, an, frontend.AutoEnv(ast, n), maxIter)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	return prog, nil
}

// Submit admits a job.  The program is compiled (or the native looked
// up) before any admission gate, so a malformed spec always reports
// ErrBadSpec rather than consuming rate-limit tokens.  On success the
// returned ID addresses Status, Wait and Cancel.
func (s *Scheduler) Submit(spec JobSpec) (string, error) {
	if _, err := parseStrategy(spec.Strategy); err != nil {
		return "", err
	}
	var (
		prog   *frontend.Program
		native NativeFunc
		err    error
	)
	switch spec.Kind {
	case "while":
		if prog, err = compileWhile(spec); err != nil {
			return "", err
		}
	case "native":
		var ok bool
		if native, ok = LookupNative(spec.Native); !ok {
			return "", fmt.Errorf("%w: unregistered native %q", ErrBadSpec, spec.Native)
		}
	default:
		return "", fmt.Errorf("%w: kind must be \"while\" or \"native\", got %q", ErrBadSpec, spec.Kind)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if !s.limiter.allow() {
		s.rejectedRate++
		return "", ErrRateLimited
	}
	if s.queue.Len() >= s.cfg.QueueDepth {
		s.rejectedQueue++
		return "", ErrQueueFull
	}
	s.seq++
	now := s.now()
	j := &job{
		id:        fmt.Sprintf("j%d", s.seq),
		seq:       s.seq,
		spec:      spec,
		prog:      prog,
		native:    native,
		metrics:   obs.NewMetrics(),
		submitted: now,
		done:      make(chan struct{}),
	}
	if spec.DeadlineMs > 0 {
		j.deadline = now.Add(time.Duration(spec.DeadlineMs) * time.Millisecond)
	}
	s.jobs[j.id] = j
	s.queue.push(j)
	s.submitted++
	s.cond.Signal()
	return j.id, nil
}

// dispatch is one in-flight slot: pop the highest-priority queued job,
// run it to a terminal state, account for it, repeat.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && s.queue.Len() == 0 {
			s.cond.Wait()
		}
		j := s.queue.pop()
		if j == nil { // closed and drained
			s.mu.Unlock()
			return
		}
		s.running++
		s.mu.Unlock()

		s.runJob(j)

		s.mu.Lock()
		s.running--
		s.retireLocked(j)
		s.mu.Unlock()
	}
}

// runJob executes one job on the shared pool and moves it to a
// terminal state.  Errors from the runtime keep their typed identity
// (cancel.ErrDeadline, cancel.ErrWorkerPanic, ...) in the job record.
func (s *Scheduler) runJob(j *job) {
	now := s.now()

	j.mu.Lock()
	if j.state.Terminal() { // canceled while queued
		j.mu.Unlock()
		return
	}
	if j.canceled {
		j.mu.Unlock()
		j.finish(Canceled, nil, cancel.ErrCanceled, "canceled", now)
		return
	}
	// The deadline is absolute from submission, so a job that aged out
	// in the queue fails without touching the pool.
	if !j.deadline.IsZero() && !now.Before(j.deadline) {
		j.mu.Unlock()
		j.finish(Failed, nil,
			fmt.Errorf("%w: deadline expired after %v in queue", cancel.ErrDeadline, now.Sub(j.submitted)),
			"deadline", now)
		return
	}
	ctx := context.Background()
	var cancelFn context.CancelFunc
	if j.deadline.IsZero() {
		ctx, cancelFn = context.WithCancel(ctx)
	} else {
		ctx, cancelFn = context.WithDeadline(ctx, j.deadline)
	}
	j.state = Running
	j.started = now
	j.cancel = cancelFn
	j.mu.Unlock()
	defer cancelFn()

	procs := s.pool.Size()
	if j.spec.Procs > 0 && j.spec.Procs < procs {
		procs = j.spec.Procs
	}
	strategy, _ := parseStrategy(j.spec.Strategy) // validated at Submit
	opt := core.Options{
		Strategy: strategy,
		Procs:    procs,
		Workers:  s.pool,
		Metrics:  j.metrics,
		Profiles: s.cfg.Profiles,
		Key:      j.spec.Native, // "" for while jobs; harmless without Profiles
	}

	// The runtime converts worker panics to cancel.PanicError, but a
	// native body can panic outside any whilepar entry point; contain
	// that too so the dispatch slot survives.
	rep, err := func() (rep core.Report, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%w: job body: %v", cancel.ErrWorkerPanic, r)
			}
		}()
		if j.prog != nil {
			return j.prog.RunContext(ctx, opt)
		}
		return j.native(ctx, opt, j.spec.Args)
	}()

	state, kind := Done, ""
	switch {
	case err == nil:
	case cancel.IsPanic(err):
		state, kind = Failed, "panic"
	case errors.Is(err, cancel.ErrDeadline):
		state, kind = Failed, "deadline"
	case errors.Is(err, cancel.ErrCanceled):
		state, kind = Canceled, "canceled"
	default:
		state, kind = Failed, "program"
	}
	s.jobDone(j, state, &rep, err, kind)
}

func (s *Scheduler) jobDone(j *job, state State, rep *core.Report, err error, kind string) {
	j.finish(state, rep, err, kind, s.now())
}

// retireLocked accounts a terminal job and evicts beyond RetainDone.
// Caller holds s.mu.
func (s *Scheduler) retireLocked(j *job) {
	j.mu.Lock()
	st := j.state
	j.mu.Unlock()
	switch st {
	case Done:
		s.completed++
	case Failed:
		s.failed++
	case Canceled:
		s.canceled++
	}
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.RetainDone {
		old := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		if oj, ok := s.jobs[old]; ok {
			s.retiredAgg = s.retiredAgg.Add(oj.metrics.Snapshot())
			delete(s.jobs, old)
		}
	}
}

// Status returns the job's current snapshot.
func (s *Scheduler) Status(id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.status(), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (s *Scheduler) Wait(ctx context.Context, id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	select {
	case <-j.done:
		return j.status(), nil
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// Done exposes the job's completion channel (closed on any terminal
// state) for select-based waiting.
func (s *Scheduler) Done(id string) (<-chan struct{}, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return j.done, nil
}

// Cancel withdraws a job: a queued job goes terminal immediately, a
// running one has its context canceled and finishes with ErrCanceled.
// Canceling a terminal job is a no-op.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return nil
	}
	j.canceled = true
	if j.cancel != nil { // running: let runJob classify the unwind
		j.cancel()
		j.mu.Unlock()
		return nil
	}
	j.mu.Unlock()
	// Queued: finish now; the dispatcher skips terminal jobs on pop.
	j.finish(Canceled, nil, cancel.ErrCanceled, "canceled", s.now())
	return nil
}

// List snapshots every retained job, oldest submission first.
func (s *Scheduler) List() []Status {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Stats reads the admission counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Submitted:     s.submitted,
		RejectedRate:  s.rejectedRate,
		RejectedQueue: s.rejectedQueue,
		Completed:     s.completed,
		Failed:        s.failed,
		Canceled:      s.canceled,
		Queued:        s.queue.Len(),
		Running:       s.running,
		PoolProcs:     s.pool.Size(),
	}
}

// MetricsSnapshot aggregates every job's counters — evicted, retained
// and still running — into one service-wide obs.Snapshot.
func (s *Scheduler) MetricsSnapshot() obs.Snapshot {
	s.mu.Lock()
	agg := s.retiredAgg
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		agg = agg.Add(j.metrics.Snapshot())
	}
	return agg
}

// WriteMetrics renders the scheduler gauges and the aggregated runtime
// counters in the Prometheus text format under the whilepard_ prefix.
func (s *Scheduler) WriteMetrics(w io.Writer) error {
	st := s.Stats()
	for _, g := range []struct {
		name string
		typ  string
		val  int64
	}{
		{"jobs_submitted_total", "counter", st.Submitted},
		{"jobs_rejected_rate_total", "counter", st.RejectedRate},
		{"jobs_rejected_queue_total", "counter", st.RejectedQueue},
		{"jobs_completed_total", "counter", st.Completed},
		{"jobs_failed_total", "counter", st.Failed},
		{"jobs_canceled_total", "counter", st.Canceled},
		{"jobs_queued", "gauge", int64(st.Queued)},
		{"jobs_running", "gauge", int64(st.Running)},
		{"pool_procs", "gauge", int64(st.PoolProcs)},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE whilepard_%s %s\nwhilepard_%s %d\n",
			g.name, g.typ, g.name, g.val); err != nil {
			return err
		}
	}
	return obs.WritePrometheus(w, "whilepard", s.MetricsSnapshot())
}

// Close stops admission, cancels queued and running jobs, waits for
// the dispatchers to drain and closes the shared pool.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for {
		j := s.queue.pop()
		if j == nil {
			break
		}
		j.finish(Canceled, nil, ErrClosed, "canceled", s.now())
		s.retireLocked(j)
	}
	running := make([]*job, 0, s.running)
	for _, j := range s.jobs {
		running = append(running, j)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	for _, j := range running {
		j.mu.Lock()
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	s.wg.Wait()
	s.pool.Close()
}
