package serve

import "container/heap"

// jobQueue is the admission queue: a max-heap on Priority with FIFO
// order (submission sequence) among equal priorities, so a burst of
// same-priority jobs dispatches in arrival order and a higher-priority
// late arrival jumps the line without starving anyone already running.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].spec.Priority != q[j].spec.Priority {
		return q[i].spec.Priority > q[j].spec.Priority
	}
	return q[i].seq < q[j].seq
}

func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *jobQueue) Push(x any) { *q = append(*q, x.(*job)) }

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// push and pop keep call sites heap-safe without exposing heap.Interface.
func (q *jobQueue) push(j *job) { heap.Push(q, j) }

func (q *jobQueue) pop() *job {
	if q.Len() == 0 {
		return nil
	}
	return heap.Pop(q).(*job)
}
