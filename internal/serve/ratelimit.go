package serve

import (
	"sync"
	"time"
)

// tokenBucket is the submission rate limiter: Rate tokens per second
// refill up to a Burst-deep bucket, one token per admitted job.  The
// clock is injected so tests can drive it deterministically.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables limiting
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	tb := &tokenBucket{rate: rate, burst: float64(burst), now: now}
	tb.tokens = tb.burst
	tb.last = now()
	return tb
}

// allow consumes one token if available; false means the caller is
// over rate and must be rejected (HTTP 429 at the service boundary).
func (tb *tokenBucket) allow() bool {
	if tb.rate <= 0 {
		return true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	t := tb.now()
	tb.tokens += t.Sub(tb.last).Seconds() * tb.rate
	tb.last = t
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}
