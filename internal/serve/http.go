package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// NewHandler wires the Scheduler into an http.Handler:
//
//	POST   /v1/jobs           submit a JobSpec  -> 202 {"id": "..."}
//	GET    /v1/jobs           list retained jobs
//	GET    /v1/jobs/{id}      job status (report, metrics, error)
//	GET    /v1/jobs/{id}/stream  NDJSON status stream until terminal
//	DELETE /v1/jobs/{id}      cancel
//	GET    /v1/natives        registered native loop bodies
//	GET    /healthz           liveness + admission counters
//	GET    /metrics           Prometheus text format
//
// Admission failures map onto status codes: ErrRateLimited -> 429,
// ErrQueueFull and ErrClosed -> 503 (with Retry-After), ErrBadSpec ->
// 400.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrRateLimited):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, err)
			default:
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": Queued.String()})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		done, err := s.Done(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		emit := func() bool {
			st, err := s.Status(id)
			if err != nil {
				return false
			}
			if enc.Encode(st) != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
			return true
		}
		if !emit() {
			return
		}
		for {
			select {
			case <-done:
				emit() // final terminal snapshot
				return
			case <-r.Context().Done():
				return
			case <-tick.C:
				if !emit() {
					return
				}
			}
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id"), "state": "canceling"})
	})
	mux.HandleFunc("GET /v1/natives", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"natives": Natives()})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			OK bool `json:"ok"`
			Stats
		}{OK: true, Stats: s.Stats()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.WriteMetrics(w)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
