package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"whilepar/internal/core"
	"whilepar/internal/frontend"
	"whilepar/internal/obs"
)

// State is a job's position in its lifecycle.
type State int

const (
	// Queued: admitted, waiting for a dispatch slot.
	Queued State = iota
	// Running: executing on the shared pool.
	Running
	// Done: completed; the Report is final.
	Done
	// Failed: finished with an error (deadline, panic, bad program).
	Failed
	// Canceled: withdrawn before or during execution.
	Canceled
)

// String names the state for JSON and logs.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// JobSpec describes one unit of work submitted to the Scheduler:
// either a .while program interpreted through the frontend, or a
// pre-registered native Go loop body.
type JobSpec struct {
	// Kind is "while" (interpret Program) or "native" (run Native).
	Kind string `json:"kind"`
	// Program is the .while source text (Kind "while").
	Program string `json:"program,omitempty"`
	// MaxIter bounds the interpreted loop's iteration space (Kind
	// "while"); 0 defaults to 1024.
	MaxIter int `json:"max_iter,omitempty"`
	// ArrayN sizes the auto-built environment arrays (Kind "while");
	// 0 defaults to MaxIter.
	ArrayN int `json:"array_n,omitempty"`
	// Native names a loop body registered with RegisterNative (Kind
	// "native"); Args is passed through to it.
	Native string             `json:"native,omitempty"`
	Args   map[string]float64 `json:"args,omitempty"`
	// Priority orders dispatch among queued jobs (higher first; ties
	// FIFO by submission).
	Priority int `json:"priority,omitempty"`
	// DeadlineMs bounds the job's wall-clock time in milliseconds,
	// measured from submission — time spent queued counts.  0 means
	// no deadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Procs caps the virtual processors the job runs on; 0 (or any
	// value beyond the pool width) uses the whole shared pool.
	Procs int `json:"procs,omitempty"`
	// Strategy pins an execution strategy by name ("sequential",
	// "speculate", "run-twice", "recover", "pipeline"); "" or "auto"
	// lets the adaptive selector choose.
	Strategy string `json:"strategy,omitempty"`
}

// parseStrategy maps a JobSpec.Strategy name onto the core constant.
func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "", "auto":
		return core.Auto, nil
	case "sequential":
		return core.StrategySequential, nil
	case "speculate":
		return core.StrategySpeculate, nil
	case "run-twice":
		return core.StrategyRunTwice, nil
	case "recover":
		return core.StrategyRecover, nil
	case "pipeline":
		return core.StrategyPipeline, nil
	}
	return core.Auto, fmt.Errorf("%w: unknown strategy %q", ErrBadSpec, s)
}

// NativeFunc is a pre-registered Go loop body.  It receives the
// service-assembled Options (shared pool, metrics, deadline-bearing
// ctx) and must run its loop through the whilepar entry points so the
// runtime machinery applies; Args carries the caller's parameters.
type NativeFunc func(ctx context.Context, opt core.Options, args map[string]float64) (core.Report, error)

var (
	nativesMu sync.RWMutex
	natives   = map[string]NativeFunc{}
)

// RegisterNative makes fn submittable as JobSpec{Kind: "native", Native:
// name}.  Registering an existing name replaces it; registration is
// typically done at process start (cmd/whilepard does it in main).
func RegisterNative(name string, fn NativeFunc) {
	nativesMu.Lock()
	defer nativesMu.Unlock()
	natives[name] = fn
}

// LookupNative returns the registered body, if any.
func LookupNative(name string) (NativeFunc, bool) {
	nativesMu.RLock()
	defer nativesMu.RUnlock()
	fn, ok := natives[name]
	return fn, ok
}

// Natives lists the registered native names, sorted.
func Natives() []string {
	nativesMu.RLock()
	defer nativesMu.RUnlock()
	out := make([]string, 0, len(natives))
	for name := range natives {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Status is the externally visible snapshot of a job.
type Status struct {
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Kind      string    `json:"kind"`
	Priority  int       `json:"priority"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Error and ErrorKind describe a failed (or canceled) job;
	// ErrorKind is one of "deadline", "canceled", "panic", "program"
	// or "" for an unclassified error.
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Report is the orchestrator's report (terminal states only).
	Report *core.Report `json:"report,omitempty"`
	// Metrics is the job's live counter snapshot — readable mid-run,
	// consistent once terminal.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// job is the Scheduler's internal record.
type job struct {
	id      string
	seq     uint64
	spec    JobSpec
	prog    *frontend.Program // compiled at submit (Kind "while")
	native  NativeFunc        // resolved at submit (Kind "native")
	metrics *obs.Metrics

	submitted time.Time
	deadline  time.Time // zero = none

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	report   *core.Report
	err      error
	errKind  string
	cancel   context.CancelFunc // non-nil while running
	canceled bool               // cancellation requested
	done     chan struct{}      // closed on any terminal state
}

// status snapshots the job under its lock.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		State:     j.state.String(),
		Kind:      j.spec.Kind,
		Priority:  j.spec.Priority,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Report:    j.report,
		ErrorKind: j.errKind,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	s := j.metrics.Snapshot()
	st.Metrics = &s
	return st
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(state State, rep *core.Report, err error, errKind string, at time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.report = rep
	j.err = err
	j.errKind = errKind
	j.finished = at
	j.cancel = nil
	close(j.done)
}
