// Package sig implements Tier-1 dependence validation: per-worker
// read/write hash signatures — Bloom-style fixed-size bitsets over
// (array, element-block) addresses — marked instead of the PD test's
// element-wise shadow records, and validated after the strip barrier by
// pairwise signature intersection in O(signature size) rather than
// O(touched elements).
//
// The verdict is conservative by construction, in both directions that
// matter:
//
//   - false negatives are impossible: membership is never
//     under-reported.  Every access sets its address's bit in the
//     owning worker's filter, and Conflict declares a conflict for any
//     bit present in one worker's write filter and in at least two
//     workers' filters — a superset of the true cross-worker
//     write/read and write/write overlaps (hash collisions only add
//     phantom overlaps, never remove real ones);
//   - false positives are safe: a flagged strip is simply re-run under
//     the full Tier-0 shadow machinery, which delivers the exact
//     element-wise verdict.  A false positive costs one strip
//     re-execution, never a wrong commit.
//
// What pairwise intersection checks is cross-*worker* conflicts, not
// cross-*iteration* dependences.  Same-worker dependences are honored
// by execution order instead: each worker executes its iterations in
// ascending order, so a dependence whose endpoints both ran on one
// worker was executed in sequential order and the committed values
// match the sequential loop.  That argument is load-bearing, so the
// signatures watch it: every mark carries its iteration index, and a
// worker observed running iterations out of ascending order (e.g. a
// work-stealing schedule handing a chunk backwards) conservatively
// poisons the verdict — Conflict returns true and the strip re-runs
// under Tier 0.
//
// Addresses are hashed at 64-element block granularity (Config
// .BlockShift) with a single probe bit per address (k = 1).  Both
// choices minimize the filter fill, which is what the pairwise-
// intersection false-positive rate depends on: two workers with fill
// f1, f2 share ~Bits*f1*f2 phantom bits, so halving the fill quarters
// the phantom-overlap rate.  Contiguous per-worker footprints — the
// block and stealing schedules the promoted clean loops run under —
// collapse to hi-lo >> BlockShift blocks per worker, keeping the fill
// (and the measured false-positive rate, see sig_test.go) low.  The
// block grain also makes range marking O(blocks), mirroring the
// tsmem/pdtest batched range paths.
package sig

import (
	"math/bits"

	"whilepar/internal/arena"
	"whilepar/internal/mem"
)

// DefaultBits is the default signature size in bits (8 KiB per
// filter).  See the package comment and the sizing math in DESIGN.md:
// at b bits, workers touching n1 and n2 distinct blocks share
// ~n1*n2/b phantom bits, so 64 Ki bits keeps the expected phantom
// overlap below 0.1 for the ~50-block contiguous footprints strip-
// mined clean loops produce.
const DefaultBits = 1 << 16

// DefaultBlockShift hashes element indexes at 64-element granularity —
// the same grain as the tsmem block journal, and the reason contiguous
// footprints have tiny fill.  Two distinct elements in one block alias
// to one address: a false positive by design, never a false negative.
const DefaultBlockShift = 6

// Config sizes a signature set.  The zero value selects the defaults.
type Config struct {
	// Bits per filter; rounded up to a power of two, minimum 64.
	Bits int
	// BlockShift is the element-index right-shift applied before
	// hashing (0 means DefaultBlockShift; negative means shift 0,
	// i.e. element-granular hashing).
	BlockShift int
}

func (c Config) bits() int {
	b := c.Bits
	if b <= 0 {
		b = DefaultBits
	}
	if b < 64 {
		b = 64
	}
	// Round up to a power of two so positions reduce with a mask.
	p := 64
	for p < b {
		p <<= 1
	}
	return p
}

func (c Config) shift() uint {
	switch {
	case c.BlockShift == 0:
		return DefaultBlockShift
	case c.BlockShift < 0:
		return 0
	}
	return uint(c.BlockShift)
}

// wordPool recycles filter backing slices across engine invocations;
// each worker's filters are separate pool allocations, so two workers
// never share a backing array (no false sharing on the hot mark path).
var wordPool = arena.NewSlicePool[uint64]()

// worker is one virtual processor's signature pair plus the execution-
// order watchdog.  The trailing pad keeps adjacent workers' hot fields
// (lastIter, ooo and the slice headers) on distinct cache lines.
type worker struct {
	rd, wr []uint64
	// dirtyRd/dirtyWr journal the word indexes holding at least one
	// bit, so Reset clears O(touched words), not O(filter).
	dirtyRd, dirtyWr []int
	// lastIter watches per-worker execution order; ooo latches a mark
	// whose iteration ran backwards (see the package comment).
	lastIter int
	started  bool
	ooo      bool
	// lastRdKey/lastWrKey memoize the most recent marked hash key
	// (salt ^ block index) per filter.  Key equality implies bit
	// equality, and set is idempotent, so a repeat of the previous key
	// skips the mix64+set — which turns the dominant access pattern of
	// strip-mined loops (runs of consecutive indexes inside one
	// 64-element block) into a shift, an xor and a compare.  Invariant:
	// when the memo flag is set, bit pos(lastKey) is set in the filter;
	// Reset clears the filters and must clear the memos with them.
	lastRdKey, lastWrKey uint64
	rdMemo, wrMemo       bool
	_                    [22]byte
}

// Sigs is a per-worker read/write signature set over a fixed list of
// arrays.  Mark* methods are safe for concurrent use by different
// workers (vpn values); two goroutines must not share a vpn.
type Sigs struct {
	words int
	mask  uint64
	shift uint
	// a0/salt0 cache the first registered array's salt so the
	// overwhelmingly common one-array case resolves with a pointer
	// compare, keeping the Mark* fast path within the inlining budget.
	a0    *mem.Array
	salt0 uint64
	// salts maps each registered array to its hash salt by pointer
	// scan — a handful of entries, cheaper than a map hash per access.
	salts []arraySalt
	ws    []worker
	// seen/seenGen deduplicate the workers' dirty-word journals into
	// touched when Conflict builds its worklist (generation-tagged so
	// no per-verdict clear is needed).  Coordinator-only state: Conflict
	// runs after the strip barrier, never concurrently with Mark*.
	seen    []uint32
	seenGen uint32
	touched []int
}

type arraySalt struct {
	a    *mem.Array
	salt uint64
}

// New builds a signature set for procs workers over the given arrays.
func New(procs int, arrays []*mem.Array, cfg Config) *Sigs {
	if procs < 1 {
		procs = 1
	}
	nbits := cfg.bits()
	s := &Sigs{
		words: nbits / 64,
		mask:  uint64(nbits - 1),
		shift: cfg.shift(),
		ws:    make([]worker, procs),
	}
	for i, a := range arrays {
		s.salts = append(s.salts, arraySalt{a: a, salt: mix64(uint64(i+1) * 0x9e3779b97f4a7c15)})
	}
	if len(s.salts) > 0 {
		s.a0, s.salt0 = s.salts[0].a, s.salts[0].salt
	}
	s.seen = make([]uint32, s.words)
	for k := range s.ws {
		w := &s.ws[k]
		w.rd = wordPool.GetZeroed(s.words)
		w.wr = wordPool.GetZeroed(s.words)
		w.dirtyRd = arena.Ints(64)
		w.dirtyWr = arena.Ints(64)
	}
	return s
}

// Procs returns the number of worker slots.
func (s *Sigs) Procs() int { return len(s.ws) }

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// salt returns the hash salt for a registered array; unregistered
// arrays share a fixed salt (their accesses still conflict soundly
// with each other, just never distinguished by array).  The first
// registered array — the only one, in almost every engine run — hits
// the cached compare; the scan is the multi-array slow path.
func (s *Sigs) salt(a *mem.Array) uint64 {
	if a == s.a0 {
		return s.salt0
	}
	return s.saltSlow(a)
}

func (s *Sigs) saltSlow(a *mem.Array) uint64 {
	for i := range s.salts {
		if s.salts[i].a == a {
			return s.salts[i].salt
		}
	}
	return 0x9e3779b97f4a7c15
}

// pos maps one (array, element) address to its filter bit position.
func (s *Sigs) pos(a *mem.Array, idx int) uint64 {
	return mix64(s.salt(a)^uint64(idx)>>s.shift) & s.mask
}

func (w *worker) order(iter int) {
	if w.started && iter < w.lastIter {
		w.ooo = true
	}
	w.lastIter = iter
	w.started = true
}

func set(words []uint64, dirty *[]int, pos uint64) {
	wi := pos >> 6
	b := uint64(1) << (pos & 63)
	if words[wi] == 0 {
		*dirty = append(*dirty, int(wi))
	}
	words[wi] |= b
}

// MarkLoad records a read of a[idx] by iteration iter on worker vpn.
// The memo-hit fast path (a repeat of the previous block on the same
// worker) inlines into the caller; only a fresh block pays the
// hash+set in loadMiss.
func (s *Sigs) MarkLoad(a *mem.Array, idx, iter, vpn int) {
	w := &s.ws[vpn]
	w.order(iter)
	key := s.salt(a) ^ uint64(idx)>>s.shift
	if !w.rdMemo || key != w.lastRdKey {
		w.loadMiss(key, s.mask)
	}
}

func (w *worker) loadMiss(key, mask uint64) {
	w.lastRdKey, w.rdMemo = key, true
	set(w.rd, &w.dirtyRd, mix64(key)&mask)
}

// MarkStore records a write of a[idx] by iteration iter on worker vpn.
func (s *Sigs) MarkStore(a *mem.Array, idx, iter, vpn int) {
	w := &s.ws[vpn]
	w.order(iter)
	key := s.salt(a) ^ uint64(idx)>>s.shift
	if !w.wrMemo || key != w.lastWrKey {
		w.storeMiss(key, s.mask)
	}
}

func (w *worker) storeMiss(key, mask uint64) {
	w.lastWrKey, w.wrMemo = key, true
	set(w.wr, &w.dirtyWr, mix64(key)&mask)
}

// MarkLoadRange records reads of a[lo:hi] — one bit per touched
// 64-element block, so a contiguous range costs O(blocks) marks.
func (s *Sigs) MarkLoadRange(a *mem.Array, lo, hi, iter, vpn int) {
	if hi <= lo {
		return
	}
	w := &s.ws[vpn]
	w.order(iter)
	salt := s.salt(a)
	for b := lo >> s.shift; b <= (hi-1)>>s.shift; b++ {
		set(w.rd, &w.dirtyRd, mix64(salt^uint64(b))&s.mask)
	}
}

// MarkStoreRange records writes of a[lo:hi] at block granularity.
func (s *Sigs) MarkStoreRange(a *mem.Array, lo, hi, iter, vpn int) {
	if hi <= lo {
		return
	}
	w := &s.ws[vpn]
	w.order(iter)
	salt := s.salt(a)
	for b := lo >> s.shift; b <= (hi-1)>>s.shift; b++ {
		set(w.wr, &w.dirtyWr, mix64(salt^uint64(b))&s.mask)
	}
}

// Conflict validates the strip by pairwise signature intersection: it
// reports true if any bit is present in one worker's write filter and
// in the filters of at least two distinct workers — i.e. some address
// (or a hash alias of one) was written by a worker and touched by
// another — or if any worker ran its iterations out of ascending
// order, which voids the same-worker ordering argument.
//
// A word with no set bit in any filter cannot witness a conflict, so
// the check visits only the union of the dirty-word journals —
// O(procs x touched words), not O(procs x signature words).  A
// strip-sized contiguous footprint touches a few dozen words of a
// 1024-word filter, which keeps the verdict cost proportional to the
// strip, the same bound the marking side already obeys.
func (s *Sigs) Conflict() bool {
	for k := range s.ws {
		if s.ws[k].ooo {
			return true
		}
	}
	s.seenGen++
	if s.seenGen == 0 {
		for i := range s.seen {
			s.seen[i] = 0
		}
		s.seenGen = 1
	}
	touched := s.touched[:0]
	for k := range s.ws {
		w := &s.ws[k]
		for _, j := range w.dirtyWr {
			if s.seen[j] != s.seenGen {
				s.seen[j] = s.seenGen
				touched = append(touched, j)
			}
		}
		// Read-only words can complete a conflict only against some
		// worker's write word, and that word is already in the union
		// via its own dirtyWr entry — so dirtyRd need not seed the
		// worklist.
	}
	s.touched = touched
	for _, j := range touched {
		var one, two, anyWr uint64
		for k := range s.ws {
			w := &s.ws[k]
			acc := w.rd[j] | w.wr[j]
			two |= one & acc
			one |= acc
			anyWr |= w.wr[j]
		}
		if anyWr&two != 0 {
			return true
		}
	}
	return false
}

// Reset clears every filter for the next strip in O(touched words).
func (s *Sigs) Reset() {
	for k := range s.ws {
		w := &s.ws[k]
		for _, wi := range w.dirtyRd {
			w.rd[wi] = 0
		}
		for _, wi := range w.dirtyWr {
			w.wr[wi] = 0
		}
		w.dirtyRd = w.dirtyRd[:0]
		w.dirtyWr = w.dirtyWr[:0]
		w.lastIter, w.started, w.ooo = 0, false, false
		w.rdMemo, w.wrMemo = false, false
	}
}

// Release returns the filter buffers to the arena.  The Sigs must not
// be used afterwards.
func (s *Sigs) Release() {
	for k := range s.ws {
		w := &s.ws[k]
		wordPool.Put(w.rd)
		wordPool.Put(w.wr)
		arena.PutInts(w.dirtyRd)
		arena.PutInts(w.dirtyWr)
		w.rd, w.wr, w.dirtyRd, w.dirtyWr = nil, nil, nil, nil
	}
}

// Stats reports the filter geometry and current fill for reports and
// benchmarks: total set bits across read and write filters, and the
// configured size in bits per filter.
func (s *Sigs) Stats() (setBits, totalBits int) {
	for k := range s.ws {
		w := &s.ws[k]
		for _, wi := range w.dirtyRd {
			setBits += bits.OnesCount64(w.rd[wi])
		}
		for _, wi := range w.dirtyWr {
			setBits += bits.OnesCount64(w.wr[wi])
		}
	}
	return setBits, s.words * 64
}
