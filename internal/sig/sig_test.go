package sig

import (
	"math/rand"
	"sync"
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/pdtest"
)

// TestConflictBasics pins the three dependence shapes pairwise
// intersection must flag and the two it must not.
func TestConflictBasics(t *testing.T) {
	a := mem.NewArray("a", 1024)
	cases := []struct {
		name string
		mark func(s *Sigs)
		want bool
	}{
		{"read-read clean", func(s *Sigs) {
			s.MarkLoad(a, 5, 0, 0)
			s.MarkLoad(a, 5, 1, 1)
		}, false},
		{"disjoint writes clean", func(s *Sigs) {
			s.MarkStore(a, 0, 0, 0)
			s.MarkStore(a, 512, 1, 1)
		}, false},
		{"cross-worker flow", func(s *Sigs) {
			s.MarkStore(a, 7, 0, 0)
			s.MarkLoad(a, 7, 1, 1)
		}, true},
		{"cross-worker anti", func(s *Sigs) {
			s.MarkLoad(a, 7, 0, 0)
			s.MarkStore(a, 7, 1, 1)
		}, true},
		{"cross-worker output", func(s *Sigs) {
			s.MarkStore(a, 7, 0, 0)
			s.MarkStore(a, 7, 1, 1)
		}, true},
		{"same-worker in order clean", func(s *Sigs) {
			s.MarkStore(a, 7, 0, 0)
			s.MarkLoad(a, 7, 1, 0)
		}, false},
		{"same-worker out of order poisons", func(s *Sigs) {
			s.MarkStore(a, 0, 5, 0)
			s.MarkStore(a, 512, 3, 0)
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(2, []*mem.Array{a}, Config{})
			defer s.Release()
			tc.mark(s)
			if got := s.Conflict(); got != tc.want {
				t.Fatalf("Conflict() = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestRangeMatchesElementwise pins the range marks to the element-wise
// marks they batch: any conflict the element path sees, the range path
// must see too (same block-granular positions by construction).
func TestRangeMatchesElementwise(t *testing.T) {
	a := mem.NewArray("a", 4096)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		lo0, n0 := rng.Intn(2048), 1+rng.Intn(512)
		lo1, n1 := rng.Intn(2048), 1+rng.Intn(512)

		el := New(2, []*mem.Array{a}, Config{})
		for i := lo0; i < lo0+n0; i++ {
			el.MarkStore(a, i, 0, 0)
		}
		for i := lo1; i < lo1+n1; i++ {
			el.MarkLoad(a, i, 1, 1)
		}
		elConf := el.Conflict()
		el.Release()

		rg := New(2, []*mem.Array{a}, Config{})
		rg.MarkStoreRange(a, lo0, lo0+n0, 0, 0)
		rg.MarkLoadRange(a, lo1, lo1+n1, 1, 1)
		rgConf := rg.Conflict()
		rg.Release()

		if elConf != rgConf {
			t.Fatalf("trial %d: element-wise verdict %v, range verdict %v (w[%d,%d) r[%d,%d))",
				trial, elConf, rgConf, lo0, lo0+n0, lo1, lo1+n1)
		}
	}
}

// TestResetClears pins the O(touched words) reset: a conflict-heavy
// strip followed by Reset must leave a clean verdict and empty filters.
func TestResetClears(t *testing.T) {
	a := mem.NewArray("a", 1024)
	s := New(4, []*mem.Array{a}, Config{})
	defer s.Release()
	for v := 0; v < 4; v++ {
		s.MarkStore(a, 5, v, v)
	}
	if !s.Conflict() {
		t.Fatal("expected a conflict before Reset")
	}
	s.Reset()
	if s.Conflict() {
		t.Fatal("Conflict() still true after Reset")
	}
	if set, _ := s.Stats(); set != 0 {
		t.Fatalf("%d bits still set after Reset", set)
	}
}

// TestSignatureSupersetOfOracle is the randomized equivalence suite:
// on every trial the signature verdict must be a superset of the
// element-wise pdtest oracle's — whenever the oracle rejects the strip
// (not a DOALL), the signatures must flag it too.  Iterations are
// mapped one-to-one onto workers (the paper's VP-per-iteration model),
// so every cross-iteration dependence is a cross-worker dependence and
// the containment is exact, not schedule-relative.  Marking runs one
// goroutine per worker so the -race build exercises the concurrent
// mark path the engines use.
func TestSignatureSupersetOfOracle(t *testing.T) {
	const (
		iters  = 16
		elems  = 1 << 14
		trials = 300
	)
	a := mem.NewArray("a", elems)
	rng := rand.New(rand.NewSource(42))
	flagged, oracleFlagged := 0, 0
	for trial := 0; trial < trials; trial++ {
		// Mostly-disjoint footprints with occasional collisions: each
		// iteration works a private slice of the array, then with
		// probability ~1/3 also touches a shared hot index.
		type access struct {
			idx   int
			store bool
		}
		accesses := make([][]access, iters)
		hot := rng.Intn(elems)
		for i := 0; i < iters; i++ {
			base := i * (elems / iters)
			n := 1 + rng.Intn(8)
			for k := 0; k < n; k++ {
				accesses[i] = append(accesses[i], access{
					idx:   base + rng.Intn(elems/iters),
					store: rng.Intn(2) == 0,
				})
			}
			if rng.Intn(3) == 0 {
				accesses[i] = append(accesses[i], access{idx: hot, store: rng.Intn(2) == 0})
			}
		}

		// Element-granular hashing so the only over-reporting left is
		// genuine hash aliasing, not block aliasing.
		s := New(iters, []*mem.Array{a}, Config{BlockShift: -1})
		oracle := pdtest.New(a, iters)
		var wg sync.WaitGroup
		for i := 0; i < iters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for _, ac := range accesses[i] {
					if ac.store {
						s.MarkStore(a, ac.idx, i, i)
						oracle.MarkStore(a, ac.idx, i, i)
					} else {
						s.MarkLoad(a, ac.idx, i, i)
						oracle.MarkLoad(a, ac.idx, i, i)
					}
				}
			}(i)
		}
		wg.Wait()

		sigConf := s.Conflict()
		res := oracle.Analyze(iters)
		s.Release()
		oracle.Release()

		if !res.DOALL {
			oracleFlagged++
			if !sigConf {
				t.Fatalf("trial %d: oracle rejected (flow/anti=%v output=%v) but signatures passed",
					trial, res.FlowAntiDep, res.OutputDep)
			}
		}
		if sigConf {
			flagged++
		}
	}
	if oracleFlagged == 0 {
		t.Fatal("trial generator produced no true dependences; the suite proved nothing")
	}
	if flagged == trials {
		t.Fatal("signatures flagged every trial; the suite proved nothing about clean strips")
	}
	t.Logf("%d/%d trials had true dependences; signatures flagged %d (overshoot is the FP rate)",
		oracleFlagged, trials, flagged)
}

// TestFalsePositiveRateBound is the adversarial bound: workers touch
// provably disjoint block-aligned regions at scattered indexes (the
// worst footprint for block-granular hashing — every access its own
// block), so every reported conflict is a false positive.  At the
// default signature size (DefaultBits = 64 Ki bits) with 4 workers x
// 32 scattered blocks the expected pairwise phantom overlap is
// sum(ni*nj)/bits ~ 0.094, i.e. ~9% of strips; the test bounds the
// measured rate at 25%, the ceiling DESIGN.md documents.  Every false
// positive costs one Tier-0 strip re-run; none can corrupt a commit.
func TestFalsePositiveRateBound(t *testing.T) {
	const (
		procs     = 4
		perWorker = 32
		trials    = 400
		ceiling   = 0.25
	)
	block := 1 << DefaultBlockShift
	region := 4096 * block // per-worker index region, block-aligned
	a := mem.NewArray("a", procs*region)
	rng := rand.New(rand.NewSource(1))
	fps := 0
	for trial := 0; trial < trials; trial++ {
		s := New(procs, []*mem.Array{a}, Config{})
		for v := 0; v < procs; v++ {
			base := v * region
			for k := 0; k < perWorker; k++ {
				// One access per random distinct block keeps the
				// footprint scattered; store/load mix is irrelevant to
				// the bound (writes maximize flaggable pairs).
				idx := base + rng.Intn(4096)*block
				s.MarkStore(a, idx, v, v)
			}
		}
		if s.Conflict() {
			fps++
		}
		s.Release()
	}
	rate := float64(fps) / trials
	t.Logf("false-positive rate: %d/%d = %.3f (ceiling %.2f)", fps, trials, rate, ceiling)
	if rate > ceiling {
		t.Fatalf("false-positive rate %.3f exceeds the documented ceiling %.2f at DefaultBits=%d",
			rate, ceiling, DefaultBits)
	}
}

// TestUnregisteredArraySound: arrays the Sigs was not built over still
// conflict against each other (shared fallback salt) — conservative,
// never silently ignored.
func TestUnregisteredArraySound(t *testing.T) {
	known := mem.NewArray("known", 64)
	stray := mem.NewArray("stray", 64)
	s := New(2, []*mem.Array{known}, Config{})
	defer s.Release()
	s.MarkStore(stray, 3, 0, 0)
	s.MarkLoad(stray, 3, 1, 1)
	if !s.Conflict() {
		t.Fatal("cross-worker conflict on an unregistered array was not flagged")
	}
}
