package sparse

import (
	"math"
	"testing"
)

func rhsFor(m *Matrix, xTrue []float64) []float64 {
	b := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for _, e := range m.Rows[i] {
			b[i] += e.Val * xTrue[e.Col]
		}
	}
	return b
}

func TestFactorizeAndSolve(t *testing.T) {
	m := Generate("lu", 120, 700, 0, 77)
	xTrue := make([]float64, m.N)
	for i := range xTrue {
		xTrue[i] = float64(i%13) - 6
	}
	b := rhsFor(m, xTrue)

	lu, err := Factorize(m, FactorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lu.Steps() != m.N {
		t.Fatalf("steps = %d", lu.Steps())
	}
	x, err := lu.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(m, x, b); r > 1e-8 {
		t.Fatalf("relative residual %g too large", r)
	}
}

func TestFactorizeParallelSearchIsConsistent(t *testing.T) {
	// The parallel pivot search is sequentially consistent, so the
	// factorization — every pivot, every factor — is identical.
	m := Generate("lu-par", 80, 480, 0, 31)
	seqLU, err := Factorize(m, FactorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parLU, err := Factorize(m, FactorOptions{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seqLU.Steps() != parLU.Steps() {
		t.Fatalf("step counts differ: %d vs %d", seqLU.Steps(), parLU.Steps())
	}
	for k := range seqLU.steps {
		sp, pp := seqLU.steps[k].pivot, parLU.steps[k].pivot
		if sp.Row != pp.Row || sp.Col != pp.Col {
			t.Fatalf("step %d: pivot (%d,%d) vs (%d,%d)", k, sp.Row, sp.Col, pp.Row, pp.Col)
		}
	}
	// And the solutions agree bit for bit.
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i + 1)
	}
	xs, _ := seqLU.Solve(b)
	xp, _ := parLU.Solve(b)
	for i := range xs {
		if xs[i] != xp[i] {
			t.Fatalf("solutions differ at %d", i)
		}
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	m := Generate("lu-bad", 20, 90, 0, 5)
	lu, err := Factorize(m, FactorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lu.Solve(make([]float64, 3)); err == nil {
		t.Fatal("wrong rhs length must be rejected")
	}
	incomplete := &LU{n: 20}
	if _, err := incomplete.Solve(make([]float64, 20)); err == nil {
		t.Fatal("incomplete factorization must be rejected")
	}
}

func TestFactorizeBreakdownReported(t *testing.T) {
	// A matrix with an unconditionally unacceptable search (cost cap
	// negative) cannot factorize.
	m := Generate("lu-break", 30, 140, 0, 9)
	_, err := Factorize(m, FactorOptions{Params: SearchParams{CostCap: -1, Stab: 0.5}})
	if err == nil {
		t.Fatal("breakdown must be reported")
	}
}

func TestResidualEdgeCases(t *testing.T) {
	m := Generate("r", 10, 40, 0, 3)
	x := make([]float64, 10)
	b := make([]float64, 10)
	if Residual(m, x, b) != 0 {
		t.Fatal("zero everything should have zero residual")
	}
	b[0] = 1
	if r := Residual(m, x, b); math.Abs(r-1) > 1e-12 {
		t.Fatalf("residual = %v, want 1", r)
	}
}

func TestFactorizeDoesNotMutateInput(t *testing.T) {
	m := Generate("lu-im", 40, 200, 0, 21)
	before := m.Clone()
	if _, err := Factorize(m, FactorOptions{}); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != before.NNZ() {
		t.Fatal("Factorize mutated its input")
	}
	for i := 0; i < m.N; i++ {
		for k, e := range m.Rows[i] {
			if before.Rows[i][k] != e {
				t.Fatal("Factorize mutated its input entries")
			}
		}
	}
}
