package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateShape(t *testing.T) {
	m := Generate("t", 100, 500, 0, 7)
	if m.N != 100 {
		t.Fatalf("N = %d", m.N)
	}
	nnz := m.NNZ()
	if nnz < 300 || nnz > 500 {
		t.Fatalf("nnz = %d, want near 500", nnz)
	}
	// Diagonal present and counts consistent.
	totalRC, totalCC := 0, 0
	for i := 0; i < m.N; i++ {
		if m.At(i, i) == 0 {
			t.Fatalf("missing diagonal at %d", i)
		}
		if m.RowCount[i] != len(m.Rows[i]) {
			t.Fatalf("row count mismatch at %d", i)
		}
		totalRC += m.RowCount[i]
		totalCC += m.ColCount[i]
	}
	if totalRC != nnz || totalCC != nnz {
		t.Fatalf("count totals %d/%d != nnz %d", totalRC, totalCC, nnz)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("x", 50, 200, 10, 42)
	b := Generate("x", 50, 200, 10, 42)
	for i := 0; i < 50; i++ {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			t.Fatal("generation not deterministic")
		}
		for k := range a.Rows[i] {
			if a.Rows[i][k] != b.Rows[i][k] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestBandRestrictsSpread(t *testing.T) {
	m := Generate("banded", 200, 1000, 5, 3)
	for i := 0; i < m.N; i++ {
		for _, e := range m.Rows[i] {
			if d := e.Col - i; d < -5 || d > 5 {
				t.Fatalf("entry (%d,%d) outside band", i, e.Col)
			}
		}
	}
}

func TestPresetsLoad(t *testing.T) {
	wantDims := map[string]int{"gematt11": 4929, "gematt12": 4929, "orsreg1": 2205, "saylr4": 3564}
	for _, name := range Inputs() {
		m := Load(name)
		if m.N != wantDims[name] {
			t.Fatalf("%s: N = %d", name, m.N)
		}
		if m.Name != name {
			t.Fatalf("name = %q", m.Name)
		}
		if m.String() == "" {
			t.Fatal("String empty")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown preset should panic")
		}
	}()
	Load("nosuch")
}

func TestCloneIsDeep(t *testing.T) {
	m := Generate("c", 20, 80, 0, 5)
	c := m.Clone()
	c.Rows[3][0].Val = 999
	c.RowCount[3] = 0
	if m.Rows[3][0].Val == 999 || m.RowCount[3] == 0 {
		t.Fatal("clone aliased original")
	}
}

func TestMarkowitzAndStability(t *testing.T) {
	m := Generate("mk", 30, 120, 0, 9)
	i := 0
	j := m.Rows[i][0].Col
	want := float64(m.RowCount[i]-1) * float64(m.ColCount[j]-1)
	if got := m.MarkowitzCost(i, j); got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
	// Acceptable rejects zero entries, unstable entries, costly entries.
	if _, ok := m.Acceptable(0, 0, -1, 0); ok {
		t.Fatal("cost cap -1 should reject everything")
	}
	if _, ok := m.Acceptable(0, 0, math.Inf(1), 0); !ok {
		t.Fatal("diagonal with infinite cap must be acceptable")
	}
	// A value below stab*maxrow fails.
	if mx := m.MaxAbsInRow(0); mx <= 0 {
		t.Fatal("row 0 should have entries")
	}
}

func TestSearchOrderSorts(t *testing.T) {
	order := SearchOrder([]int{5, 1, 3, 1})
	if order[0] != 1 || order[1] != 3 { // stable: index 1 before 3
		t.Fatalf("order = %v", order)
	}
}

func TestParPivotMatchesSequential(t *testing.T) {
	p := SearchParams{CostCap: 60, Stab: 0.1}
	for _, name := range []string{"orsreg1", "saylr4"} {
		m := Load(name)
		seqPv, seqOK, seqIters := SeqPivotRows(m, p)
		for _, procs := range []int{1, 2, 4, 8} {
			res := ParPivotRows(m, p, procs)
			if res.OK != seqOK {
				t.Fatalf("%s p=%d: ok mismatch", name, procs)
			}
			if seqOK && (res.Pivot.Row != seqPv.Row || res.Pivot.Col != seqPv.Col) {
				t.Fatalf("%s p=%d: pivot (%d,%d) != sequential (%d,%d)",
					name, procs, res.Pivot.Row, res.Pivot.Col, seqPv.Row, seqPv.Col)
			}
			if seqOK && res.Valid != seqIters {
				t.Fatalf("%s p=%d: valid %d != sequential iterations %d", name, procs, res.Valid, seqIters)
			}
		}
		// Column search too.
		seqPvC, seqOKC, _ := SeqPivotCols(m, p)
		resC := ParPivotCols(m, p, 4)
		if resC.OK != seqOKC || (seqOKC && (resC.Pivot.Row != seqPvC.Row || resC.Pivot.Col != seqPvC.Col)) {
			t.Fatalf("%s: column search mismatch", name)
		}
	}
}

func TestParPivotNoAcceptableCandidate(t *testing.T) {
	m := Generate("none", 40, 160, 0, 2)
	p := SearchParams{CostCap: -1, Stab: 0} // nothing acceptable
	res := ParPivotRows(m, p, 4)
	if res.OK {
		t.Fatal("no candidate should be found")
	}
	if res.Valid != m.N {
		t.Fatalf("valid = %d, want full space", res.Valid)
	}
}

func TestDoanyPivotFindsAcceptable(t *testing.T) {
	m := Load("orsreg1")
	p := SearchParams{CostCap: 100, Stab: 0.05}
	pv, ok, st := DoanyPivot(m, p, 4)
	if !ok {
		t.Fatal("doany search found nothing")
	}
	// The pivot must actually be acceptable.
	if _, acc := m.Acceptable(pv.Row, pv.Col, p.CostCap, p.Stab); !acc {
		t.Fatalf("doany produced unacceptable pivot %+v", pv)
	}
	if st.Executed == 0 {
		t.Fatal("stats empty")
	}
	// With an impossible threshold the space is exhausted.
	_, ok2, st2 := DoanyPivot(m, SearchParams{CostCap: -1, Stab: 0}, 4)
	if ok2 || st2.SatisfiedAt != -1 {
		t.Fatalf("impossible search: ok=%v stats=%+v", ok2, st2)
	}
}

func TestEliminateMaintainsCounts(t *testing.T) {
	m := Generate("elim", 60, 300, 0, 13)
	p := SearchParams{CostCap: math.Inf(1), Stab: 0.01}
	pv, ok, _ := SeqPivotRows(m, p)
	if !ok {
		t.Fatal("setup: no pivot")
	}
	m.Eliminate(pv)
	// Pivot row retired.
	if m.RowCount[pv.Row] != 0 || len(m.Rows[pv.Row]) != 0 {
		t.Fatal("pivot row not retired")
	}
	// Counts must equal structure.
	colCount := make([]int, m.N)
	for i := 0; i < m.N; i++ {
		if m.RowCount[i] != len(m.Rows[i]) {
			t.Fatalf("row count desync at %d: %d != %d", i, m.RowCount[i], len(m.Rows[i]))
		}
		for _, e := range m.Rows[i] {
			colCount[e.Col]++
		}
	}
	for j := 0; j < m.N; j++ {
		if m.ColCount[j] != colCount[j] {
			t.Fatalf("col count desync at %d: %d != %d", j, m.ColCount[j], colCount[j])
		}
	}
	// Pivot column emptied of live entries.
	for i := 0; i < m.N; i++ {
		if i != pv.Row && m.At(i, pv.Col) != 0 {
			t.Fatalf("column entry (%d,%d) survived elimination", i, pv.Col)
		}
	}
}

func TestEliminateSchurUpdate(t *testing.T) {
	// 2x2 dense check: eliminating (0,0) must set A[1][1] -= A[1][0]*A[0][1]/A[0][0].
	m := &Matrix{Name: "s", N: 2,
		Rows: [][]Entry{
			{{Col: 0, Val: 2}, {Col: 1, Val: 4}},
			{{Col: 0, Val: 1}, {Col: 1, Val: 10}},
		},
		RowCount: []int{2, 2}, ColCount: []int{2, 2},
	}
	m.Eliminate(Pivot{Row: 0, Col: 0, Val: 2})
	if got := m.At(1, 1); got != 8 { // 10 - (1/2)*4
		t.Fatalf("Schur update = %v, want 8", got)
	}
	if m.At(1, 0) != 0 {
		t.Fatal("eliminated entry survived")
	}
}

func TestEliminateIgnoresDegeneratePivot(t *testing.T) {
	m := Generate("d", 10, 40, 0, 1)
	before := m.NNZ()
	m.Eliminate(Pivot{Row: -1})
	m.Eliminate(Pivot{Row: 0, Col: 0, Val: 0})
	if m.NNZ() != before {
		t.Fatal("degenerate pivots must be no-ops")
	}
}

// Property: parallel pivot search is sequentially consistent for random
// small matrices and thresholds.
func TestParPivotSequentialConsistencyProperty(t *testing.T) {
	f := func(seed uint64, capRaw, procsRaw uint8) bool {
		m := Generate("prop", 40, 200, 0, seed)
		p := SearchParams{CostCap: float64(capRaw % 50), Stab: 0.05}
		procs := int(procsRaw)%6 + 1
		seqPv, seqOK, _ := SeqPivotRows(m, p)
		res := ParPivotRows(m, p, procs)
		if res.OK != seqOK {
			return false
		}
		if !seqOK {
			return true
		}
		return res.Pivot.Row == seqPv.Row && res.Pivot.Col == seqPv.Col && res.Pivot.Iter == seqPv.Iter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
