package sparse

import (
	"fmt"
	"math"
)

// LU is a recorded sparse LU factorization with Markowitz pivoting, the
// MA28-shaped driver that the paper's loops 270/320 live inside: at each
// step a pivot is searched for (sequentially or with the parallelized,
// sequentially consistent search), recorded, and eliminated.
type LU struct {
	n     int
	steps []luStep
}

type luStep struct {
	pivot   Pivot
	row     []Entry  // the pivot row at elimination time
	factors []factor // rows eliminated against the pivot
}

type factor struct {
	row int
	f   float64
}

// FactorOptions configures a factorization.
type FactorOptions struct {
	// Params is the pivot acceptance criterion; zero value means a
	// permissive search (cost cap +inf, stability 0.01).
	Params SearchParams
	// Procs > 1 uses the parallel, sequentially consistent pivot search
	// (ParPivotRows) at every step; otherwise the sequential search.
	Procs int
}

// Factorize computes an LU factorization of a (which is cloned, not
// mutated) using row-search Markowitz pivoting.  It fails if at some
// step no acceptable pivot exists (structural or numerical breakdown).
func Factorize(a *Matrix, opt FactorOptions) (*LU, error) {
	p := opt.Params
	if p.CostCap == 0 && p.Stab == 0 {
		p = SearchParams{CostCap: math.Inf(1), Stab: 0.01}
	}
	m := a.Clone()
	lu := &LU{n: m.N}
	for step := 0; step < m.N; step++ {
		var pv Pivot
		var ok bool
		if opt.Procs > 1 {
			res := ParPivotRows(m, p, opt.Procs)
			pv, ok = res.Pivot, res.OK
		} else {
			pv, ok, _ = SeqPivotRows(m, p)
		}
		if !ok {
			return nil, fmt.Errorf("sparse: factorization breakdown at step %d of %d", step, m.N)
		}
		s := luStep{
			pivot: pv,
			row:   append([]Entry(nil), m.Rows[pv.Row]...),
		}
		for _, i := range m.ColRows(pv.Col) {
			if i == pv.Row {
				continue
			}
			if v := m.At(i, pv.Col); v != 0 {
				s.factors = append(s.factors, factor{row: i, f: v / pv.Val})
			}
		}
		lu.steps = append(lu.steps, s)
		m.Eliminate(pv)
	}
	return lu, nil
}

// Steps returns the number of elimination steps recorded.
func (lu *LU) Steps() int { return len(lu.steps) }

// Solve computes x with A*x = b from the recorded factorization.
func (lu *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != lu.n {
		return nil, fmt.Errorf("sparse: rhs length %d != %d", len(b), lu.n)
	}
	if len(lu.steps) != lu.n {
		return nil, fmt.Errorf("sparse: incomplete factorization (%d of %d steps)", len(lu.steps), lu.n)
	}
	// Forward elimination: replay the row updates on the rhs.
	y := append([]float64(nil), b...)
	for _, s := range lu.steps {
		for _, f := range s.factors {
			y[f.row] -= f.f * y[s.pivot.Row]
		}
	}
	// Back substitution in reverse elimination order: step k's pivot row
	// involves only variables eliminated at steps >= k.
	x := make([]float64, lu.n)
	for k := len(lu.steps) - 1; k >= 0; k-- {
		s := lu.steps[k]
		sum := y[s.pivot.Row]
		for _, e := range s.row {
			if e.Col != s.pivot.Col {
				sum -= e.Val * x[e.Col]
			}
		}
		x[s.pivot.Col] = sum / s.pivot.Val
	}
	return x, nil
}

// Residual returns the relative residual ||A*x - b||_inf / ||b||_inf,
// used to validate Solve against the original matrix.
func Residual(a *Matrix, x, b []float64) float64 {
	var worst, bmax float64
	for i := 0; i < a.N; i++ {
		var ax float64
		for _, e := range a.Rows[i] {
			ax += e.Val * x[e.Col]
		}
		if r := math.Abs(ax - b[i]); r > worst {
			worst = r
		}
		if v := math.Abs(b[i]); v > bmax {
			bmax = v
		}
	}
	if bmax == 0 {
		return worst
	}
	return worst / bmax
}
