package sparse

import (
	"math"
	"sort"

	"whilepar/internal/doany"
	"whilepar/internal/sched"
)

// Pivot is a pivot candidate.
type Pivot struct {
	Row, Col int
	Val      float64
	Cost     float64 // Markowitz cost at selection time
	// Iter is the search iteration that selected it (its time-stamp).
	Iter int
}

// Acceptable reports whether a candidate passes MA28's combined test: a
// Markowitz cost not above costCap and numerical stability |val| >=
// stab * max|column| (the growth bound for row-wise elimination).
func (m *Matrix) Acceptable(i, j int, costCap, stab float64) (Pivot, bool) {
	v := m.At(i, j)
	if v == 0 {
		return Pivot{}, false
	}
	if math.Abs(v) < stab*m.MaxAbsInCol(j) {
		return Pivot{}, false
	}
	c := m.MarkowitzCost(i, j)
	if c > costCap {
		return Pivot{}, false
	}
	return Pivot{Row: i, Col: j, Val: v, Cost: c}, true
}

// SearchOrder returns the rows (or columns, by count array) sorted by
// ascending live count — MA28 examines sparser rows first because they
// bound the Markowitz cost.
func SearchOrder(counts []int) []int {
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] < counts[order[b]] })
	return order
}

// SearchParams bundle the search thresholds.
type SearchParams struct {
	// CostCap is the Markowitz cost threshold below which a candidate
	// terminates the search (the loop's RV termination condition).
	CostCap float64
	// Stab is the partial-pivoting stability factor (MA28's u).
	Stab float64
}

// SeqPivotRows is the sequential reference for MA30AD Loop 270: examine
// rows in ascending-count order; within each row take the best-cost
// acceptable entry; exit as soon as a candidate meets the cost cap.  It
// returns the selected pivot (ok=false if none acceptable anywhere) and
// the number of loop iterations the sequential WHILE loop performed.
func SeqPivotRows(m *Matrix, p SearchParams) (Pivot, bool, int) {
	order := SearchOrder(m.RowCount)
	for it, i := range order {
		if pv, ok := bestInRow(m, i, p); ok {
			pv.Iter = it
			return pv, true, it + 1
		}
	}
	return Pivot{}, false, len(order)
}

// bestInRow scans one row for its lowest-cost acceptable entry.
func bestInRow(m *Matrix, i int, p SearchParams) (Pivot, bool) {
	best := Pivot{Cost: math.Inf(1)}
	found := false
	for _, e := range m.Rows[i] {
		if pv, ok := m.Acceptable(i, e.Col, p.CostCap, p.Stab); ok && pv.Cost < best.Cost {
			best = pv
			found = true
		}
	}
	return best, found
}

// bestInCol scans one column (Loop 320's orientation).
func bestInCol(m *Matrix, j int, p SearchParams) (Pivot, bool) {
	best := Pivot{Cost: math.Inf(1)}
	found := false
	for _, i := range m.ColRows(j) {
		if pv, ok := m.Acceptable(i, j, p.CostCap, p.Stab); ok && pv.Cost < best.Cost {
			best = pv
			found = true
		}
	}
	return best, found
}

// SeqPivotCols is the sequential reference for MA30AD Loop 320: the
// column-oriented search.
func SeqPivotCols(m *Matrix, p SearchParams) (Pivot, bool, int) {
	order := SearchOrder(m.ColCount)
	for it, j := range order {
		if pv, ok := bestInCol(m, j, p); ok {
			pv.Iter = it
			return pv, true, it + 1
		}
	}
	return Pivot{}, false, len(order)
}

// ParPivotResult reports a parallel pivot search.
type ParPivotResult struct {
	Pivot    Pivot
	OK       bool
	Valid    int // last valid iteration bound (exclusive)
	Executed int
	Overshot int
}

// ParPivot parallelizes a pivot search (Loop 270 or 320) preserving
// MA28's sequential consistency, exactly as Section 9 describes: the
// candidate space is run as a speculative DOALL; every processor
// time-stamps the pivots it finds into privatized storage; after
// termination, a time-stamp-ordered reduction selects the pivot the
// sequential search would have chosen — the acceptable candidate with
// the minimum iteration number.  Overshot iterations only produced
// discarded candidates, so the only state needing backup IS the
// privatized, time-stamped candidate list.
//
// scan(i) evaluates candidate order[i] and reports an acceptable pivot
// if it holds one.  The search exits (RV) at the first acceptable
// candidate in iteration order.
func ParPivot(n, procs int, scan func(i int) (Pivot, bool)) ParPivotResult {
	if procs < 1 {
		procs = 1
	}
	// Privatized, time-stamped candidate storage: one slice per virtual
	// processor, appended to only by that processor's iterations.
	type stamped struct{ pivots []Pivot }
	perVP := make([]stamped, procs)

	res := sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
		if pv, ok := scan(i); ok {
			pv.Iter = i
			perVP[vpn].pivots = append(perVP[vpn].pivots, pv)
			return sched.Quit
		}
		return sched.Continue
	})

	// Time-stamp-ordered reduction: minimum iteration among candidates
	// stamped at or below the quit bound.
	out := ParPivotResult{Valid: res.QuitIndex + 1, Executed: res.Executed, Overshot: res.Overshot}
	best := Pivot{Iter: int(^uint(0) >> 1)}
	for _, s := range perVP {
		for _, pv := range s.pivots {
			if pv.Iter <= res.QuitIndex && pv.Iter < best.Iter {
				best = pv
				out.OK = true
			}
		}
	}
	if out.OK {
		out.Pivot = best
	} else {
		out.Valid = n
	}
	return out
}

// ParPivotRows runs Loop 270 in parallel.
func ParPivotRows(m *Matrix, p SearchParams, procs int) ParPivotResult {
	order := SearchOrder(m.RowCount)
	return ParPivot(len(order), procs, func(i int) (Pivot, bool) {
		return bestInRow(m, order[i], p)
	})
}

// ParPivotCols runs Loop 320 in parallel.
func ParPivotCols(m *Matrix, p SearchParams, procs int) ParPivotResult {
	order := SearchOrder(m.ColCount)
	return ParPivot(len(order), procs, func(i int) (Pivot, bool) {
		return bestInCol(m, order[i], p)
	})
}

// DoanyPivot implements MCSPARSE DFACT Loop 500 as a WHILE-DOANY
// (Section 9): the program is insensitive to the order in which rows and
// columns are searched, so the row loop and the column WHILE loop fuse
// into one unordered search over 2N candidates — candidate i < N is row
// i, candidate i >= N is column i-N.  The first acceptable pivot found
// (in any order) satisfies the terminator; overshot iterations need no
// backups and no time-stamps because extra searching is harmless.
func DoanyPivot(m *Matrix, p SearchParams, procs int) (Pivot, bool, doany.Stats) {
	n2 := 2 * m.N
	better := func(a, b Pivot) Pivot {
		// Order-insensitive combiner: lowest cost wins; ties by
		// position for determinism of the *reduction* (not the search).
		if !validPivot(a) {
			return b
		}
		if !validPivot(b) {
			return a
		}
		if b.Cost < a.Cost || (b.Cost == a.Cost && (b.Row < a.Row || (b.Row == a.Row && b.Col < a.Col))) {
			return b
		}
		return a
	}
	zero := Pivot{Cost: math.Inf(1), Row: -1}
	pv, st := doany.Run(n2, procs, zero, better, func(i, vpn int) (Pivot, doany.Verdict) {
		var cand Pivot
		var ok bool
		if i < m.N {
			cand, ok = bestInRow(m, i, p)
		} else {
			cand, ok = bestInCol(m, i-m.N, p)
		}
		if !ok {
			return zero, doany.Nothing
		}
		return cand, doany.Satisfied
	})
	return pv, validPivot(pv), st
}

func validPivot(p Pivot) bool { return p.Row >= 0 && !math.IsInf(p.Cost, 1) }

// Eliminate performs one step of structural Gaussian elimination with
// the given pivot: it removes the pivot row and column from the live
// structure and adds fill-in entries (structurally) for every (i, j)
// with i in the pivot column and j in the pivot row.  Values are updated
// with the Schur-complement formula on stored entries.  It keeps the
// pivot searches honest: successive searches see evolving counts.
func (m *Matrix) Eliminate(p Pivot) {
	if p.Row < 0 || p.Row >= m.N || p.Val == 0 {
		return
	}
	// Column entries: rows i != p.Row with a stored (i, p.Col).
	var colRows []int
	for i := 0; i < m.N; i++ {
		if i != p.Row && m.At(i, p.Col) != 0 {
			colRows = append(colRows, i)
		}
	}
	pivotRow := append([]Entry(nil), m.Rows[p.Row]...)
	for _, i := range colRows {
		f := m.At(i, p.Col) / p.Val
		for _, e := range pivotRow {
			if e.Col == p.Col {
				continue
			}
			if m.has(i, e.Col) {
				for k := range m.Rows[i] {
					if m.Rows[i][k].Col == e.Col {
						m.Rows[i][k].Val -= f * e.Val
					}
				}
			} else {
				m.Rows[i] = append(m.Rows[i], Entry{Col: e.Col, Val: -f * e.Val})
				m.RowCount[i]++
				m.ColCount[e.Col]++
			}
		}
		// Remove the eliminated (i, p.Col) entry.
		m.removeEntry(i, p.Col)
	}
	// Retire the pivot row.
	for _, e := range m.Rows[p.Row] {
		m.ColCount[e.Col]--
	}
	m.Rows[p.Row] = nil
	m.RowCount[p.Row] = 0
	m.InvalidateIndex()
}

func (m *Matrix) removeEntry(i, j int) {
	row := m.Rows[i]
	for k := range row {
		if row[k].Col == j {
			m.Rows[i] = append(row[:k], row[k+1:]...)
			m.RowCount[i]--
			m.ColCount[j]--
			return
		}
	}
}
