// Package sparse is the sparse linear-algebra substrate for the MA28 and
// MCSPARSE experiments of Section 9.  It provides a compressed sparse
// matrix representation, deterministic synthetic generators standing in
// for the Harwell-Boeing inputs the paper used (gematt11, gematt12,
// orsreg1, saylr4 — matched in dimension and nonzero count), the
// Markowitz-style pivot searches of MA28's MA30AD (loops 270 and 320)
// and MCSPARSE's DFACT (loop 500), and a small elimination step so the
// pivot searches operate on evolving structure as they do inside a real
// factorization.
//
// Substitution note (see DESIGN.md): the real Harwell-Boeing files are
// not available offline, so Generate produces pseudo-random patterns
// with the published dimensions/nnz and a band/spread parameter that
// controls how much acceptable-pivot density — and therefore available
// parallelism — the search sees, which is the property the paper's
// per-input speedup differences hinge on.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Entry is one stored nonzero.
type Entry struct {
	Col int
	Val float64
}

// Matrix is a row-major sparse matrix with per-row/column counts
// maintained for Markowitz costing.
type Matrix struct {
	Name string
	N    int
	Rows [][]Entry
	// RowCount[i] and ColCount[j] are the live nonzero counts.
	RowCount []int
	ColCount []int

	// idx caches the column index and per-column maxima as one immutable
	// snapshot behind an atomic pointer: the parallel pivot searches hit
	// the lazy build from many workers at once, and the matrix is
	// read-only during a search, so racing builders all compute the same
	// snapshot and whichever Store lands last wins.  Eliminate
	// invalidates it.
	idx atomic.Pointer[colIndexData]
}

// colIndexData is the lazily built column view: rows[j] lists the rows
// holding a nonzero in column j, max[j] is the largest |value| there.
type colIndexData struct {
	rows [][]int
	max  []float64
}

// rng is a small deterministic linear congruential generator so matrix
// generation is reproducible without math/rand plumbing.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 11
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float() float64 { return float64(r.next()%1_000_000) / 1_000_000 }

// Generate builds an n x n matrix with roughly nnz nonzeros: a unit
// diagonal plus off-diagonal entries whose column offsets are bounded by
// band (band <= 0 means unrestricted spread).  Larger bands spread the
// structure and raise the density of acceptable pivots early in the
// search order; narrow bands concentrate fill and starve it — the knob
// that differentiates the per-input speedups.
func Generate(name string, n, nnz, band int, seed uint64) *Matrix {
	if n < 1 {
		panic("sparse: matrix dimension must be positive")
	}
	m := &Matrix{
		Name:     name,
		N:        n,
		Rows:     make([][]Entry, n),
		RowCount: make([]int, n),
		ColCount: make([]int, n),
	}
	r := rng{s: seed ^ 0x9e3779b97f4a7c15}
	// Diagonal first: keeps the matrix structurally nonsingular.  The
	// diagonals are deliberately weak (as in a matrix mid-factorization)
	// so the partial-pivoting stability test — |v| against the column
	// max — does real work in the pivot searches.
	for i := 0; i < n; i++ {
		m.Rows[i] = append(m.Rows[i], Entry{Col: i, Val: 0.05 + 0.15*r.float()})
	}
	// Minimum-degree floor: a matrix mid-factorization has no singleton
	// rows or columns (those pivots were taken long ago), and the pivot
	// searches are only interesting without such freebies.  Give every
	// row and column at least minDeg entries before spending the rest of
	// the nonzero budget at random.
	const minDeg = 4
	colCount := make([]int, n)
	for i := range colCount {
		colCount[i] = 1 // the diagonal
	}
	place := func(i, j int) bool {
		if j == i || j < 0 || j >= n || m.has(i, j) {
			return false
		}
		m.Rows[i] = append(m.Rows[i], Entry{Col: j, Val: r.float()*2 - 1})
		colCount[j]++
		return true
	}
	remaining := nnz - n
	for i := 0; i < n && remaining > 0; i++ {
		for len(m.Rows[i]) < minDeg && remaining > 0 {
			var j int
			if band > 0 {
				j = i + r.intn(2*band+1) - band
			} else {
				j = r.intn(n)
			}
			if place(i, j) {
				remaining--
			}
		}
	}
	for j := 0; j < n && remaining > 0; j++ {
		for colCount[j] < minDeg && remaining > 0 {
			var i int
			if band > 0 {
				i = j + r.intn(2*band+1) - band
			} else {
				i = r.intn(n)
			}
			if i >= 0 && i < n && place(i, j) {
				remaining--
			}
		}
	}
	for remaining > 0 {
		i := r.intn(n)
		var j int
		if band > 0 {
			j = i + r.intn(2*band+1) - band
			if j < 0 || j >= n {
				continue
			}
		} else {
			j = r.intn(n)
		}
		if j == i || m.has(i, j) {
			remaining--
			continue
		}
		m.Rows[i] = append(m.Rows[i], Entry{Col: j, Val: r.float()*2 - 1})
		colCount[j]++
		remaining--
	}
	for i := range m.Rows {
		sort.Slice(m.Rows[i], func(a, b int) bool { return m.Rows[i][a].Col < m.Rows[i][b].Col })
		m.RowCount[i] = len(m.Rows[i])
		for _, e := range m.Rows[i] {
			m.ColCount[e.Col]++
		}
	}
	return m
}

func (m *Matrix) has(i, j int) bool {
	for _, e := range m.Rows[i] {
		if e.Col == j {
			return true
		}
	}
	return false
}

// NNZ returns the stored nonzero count.
func (m *Matrix) NNZ() int {
	n := 0
	for _, r := range m.Rows {
		n += len(r)
	}
	return n
}

// At returns the value at (i, j), zero if not stored.
func (m *Matrix) At(i, j int) float64 {
	for _, e := range m.Rows[i] {
		if e.Col == j {
			return e.Val
		}
	}
	return 0
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Name: m.Name, N: m.N,
		Rows:     make([][]Entry, m.N),
		RowCount: append([]int(nil), m.RowCount...),
		ColCount: append([]int(nil), m.ColCount...),
	}
	for i, r := range m.Rows {
		c.Rows[i] = append([]Entry(nil), r...)
	}
	return c
}

func (m *Matrix) String() string {
	return fmt.Sprintf("%s (%dx%d, %d nnz)", m.Name, m.N, m.N, m.NNZ())
}

// InvalidateIndex drops the lazy column index/maxima after a structural
// change.
func (m *Matrix) InvalidateIndex() {
	m.idx.Store(nil)
}

// index returns the column index, building it if missing.
func (m *Matrix) index() *colIndexData {
	if ix := m.idx.Load(); ix != nil {
		return ix
	}
	ix := &colIndexData{
		rows: make([][]int, m.N),
		max:  make([]float64, m.N),
	}
	for i := 0; i < m.N; i++ {
		for _, e := range m.Rows[i] {
			ix.rows[e.Col] = append(ix.rows[e.Col], i)
			if a := math.Abs(e.Val); a > ix.max[e.Col] {
				ix.max[e.Col] = a
			}
		}
	}
	m.idx.Store(ix)
	return ix
}

// ColRows returns the rows holding a nonzero in column j.
func (m *Matrix) ColRows(j int) []int {
	return m.index().rows[j]
}

// MaxAbsInCol returns the largest |value| stored in column j, the
// quantity MA28's partial-pivoting stability test compares candidate
// pivots against (for row-wise elimination the growth bound is per
// column).
func (m *Matrix) MaxAbsInCol(j int) float64 {
	return m.index().max[j]
}

// MaxAbsInRow returns the largest |value| in row i (0 if empty).
func (m *Matrix) MaxAbsInRow(i int) float64 {
	var mx float64
	for _, e := range m.Rows[i] {
		if a := math.Abs(e.Val); a > mx {
			mx = a
		}
	}
	return mx
}

// MarkowitzCost is (r_i - 1)*(c_j - 1), MA28's fill-in heuristic.
func (m *Matrix) MarkowitzCost(i, j int) float64 {
	return float64(m.RowCount[i]-1) * float64(m.ColCount[j]-1)
}

// The published dimensions/nonzero counts of the paper's Harwell-Boeing
// inputs.  The seeds are the synthetic stand-ins' structure knobs: they
// were selected (see EXPERIMENTS.md) so that the pivot searches see
// per-input acceptable-pivot densities ordered the way the paper's
// per-input speedups are — e.g. the orsreg1 stand-in's column search
// finds a pivot much sooner than its row search (little parallelism in
// Loop 320), while the gematt stand-ins show the opposite flip.
var presets = map[string]struct {
	n, nnz, band int
	seed         uint64
}{
	"gematt11": {4929, 33108, 0, 19},
	"gematt12": {4929, 33044, 0, 10},
	"orsreg1":  {2205, 14133, 0, 75},
	"saylr4":   {3564, 22316, 0, 3},
}

// Inputs lists the preset names in the paper's order.
func Inputs() []string { return []string{"gematt11", "gematt12", "orsreg1", "saylr4"} }

// Load builds the synthetic stand-in for the named Harwell-Boeing
// matrix.  It panics on an unknown name (the four paper inputs are
// available via Inputs).
func Load(name string) *Matrix {
	p, ok := presets[name]
	if !ok {
		panic(fmt.Sprintf("sparse: unknown input %q (have %v)", name, Inputs()))
	}
	return Generate(name, p.n, p.nnz, p.band, p.seed)
}
