package hb

import (
	"bytes"
	"strings"
	"testing"

	"whilepar/internal/sparse"
)

func TestRoundTrip(t *testing.T) {
	m := sparse.Generate("rt", 60, 300, 0, 42)
	var buf bytes.Buffer
	if err := Write(&buf, m, "round trip test matrix", "RT1"); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N || got.NNZ() != m.NNZ() {
		t.Fatalf("shape changed: %v vs %v", got, m)
	}
	for i := 0; i < m.N; i++ {
		if len(got.Rows[i]) != len(m.Rows[i]) {
			t.Fatalf("row %d length changed", i)
		}
		for k, e := range m.Rows[i] {
			g := got.Rows[i][k]
			if g.Col != e.Col {
				t.Fatalf("row %d entry %d column %d vs %d", i, k, g.Col, e.Col)
			}
			if diff := g.Val - e.Val; diff > 1e-11 || diff < -1e-11 {
				t.Fatalf("row %d entry %d value %v vs %v", i, k, g.Val, e.Val)
			}
		}
		if got.RowCount[i] != m.RowCount[i] {
			t.Fatalf("row count desync at %d", i)
		}
	}
	for j := 0; j < m.N; j++ {
		if got.ColCount[j] != m.ColCount[j] {
			t.Fatalf("col count desync at %d", j)
		}
	}
}

func TestHeaderLayout(t *testing.T) {
	m := sparse.Generate("h", 10, 40, 0, 7)
	var buf bytes.Buffer
	if err := Write(&buf, m, "title goes here", "KEY"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if len(lines[0]) != 80 {
		t.Fatalf("header line 1 width = %d, want 80", len(lines[0]))
	}
	if !strings.HasPrefix(lines[0], "title goes here") || !strings.Contains(lines[0], "KEY") {
		t.Fatalf("header line 1 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "RUA") {
		t.Fatalf("type line = %q", lines[2])
	}
	if !strings.Contains(lines[3], "(10I8)") || !strings.Contains(lines[3], "(4E20.12)") {
		t.Fatalf("formats line = %q", lines[3])
	}
}

func TestParseFmt(t *testing.T) {
	good := map[string][2]int{
		"(10I8)":     {10, 8},
		"(4E20.12)":  {4, 20},
		"( 5D16.8 )": {5, 16},
		"(3F10.3)":   {3, 10},
	}
	for s, want := range good {
		per, w, err := parseFmt(s)
		if err != nil || per != want[0] || w != want[1] {
			t.Errorf("parseFmt(%q) = %d,%d,%v", s, per, w, err)
		}
	}
	for _, s := range []string{"", "(I8)", "(10X8)", "garbage", "(0I8)"} {
		if _, _, err := parseFmt(s); err == nil {
			t.Errorf("parseFmt(%q) accepted", s)
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"no counts": "title\n",
		"bad type": "title\n 1 1 1 1 1\nPSA" + strings.Repeat(" ", 11) +
			"             3             3             4             0\n(10I8)          (10I8)          (4E20.12)           \n",
		"bad dims": "title\n 1 1 1 1 1\nRUA" + strings.Repeat(" ", 11) + " x y z 0\n",
	}
	for what, src := range cases {
		if _, err := Read(strings.NewReader(src), "x"); err == nil {
			t.Errorf("%s accepted", what)
		}
	}
}

func TestReadFortranDExponents(t *testing.T) {
	// A 2x2 matrix with D-exponent values, hand-written.
	src := strings.Join([]string{
		"tiny" + strings.Repeat(" ", 68) + "TINY    ",
		"             3             1             1             1             0",
		"RUA" + strings.Repeat(" ", 11) + "             2             2             3             0",
		"(10I8)          (10I8)          (4D20.12)           ",
		"       1       3       4",
		"       1       2       2",
		"  0.100000000000D+01  0.250000000000D+01  0.400000000000D+01",
	}, "\n") + "\n"
	m, err := Read(strings.NewReader(src), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 0) != 2.5 || m.At(1, 1) != 4 {
		t.Fatalf("values wrong: %v %v %v", m.At(0, 0), m.At(1, 0), m.At(1, 1))
	}
}

func TestExportedPresetUsableAfterReload(t *testing.T) {
	// The pivot search must behave identically on a matrix that went
	// through the file format.
	m := sparse.Generate("p", 80, 420, 0, 99)
	var buf bytes.Buffer
	if err := Write(&buf, m, "preset", "P"); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, "p")
	if err != nil {
		t.Fatal(err)
	}
	params := sparse.SearchParams{CostCap: 30, Stab: 0.5}
	p1, ok1, it1 := sparse.SeqPivotRows(m, params)
	p2, ok2, it2 := sparse.SeqPivotRows(back, params)
	if ok1 != ok2 || it1 != it2 || p1.Row != p2.Row || p1.Col != p2.Col {
		t.Fatalf("pivot search diverged after round trip: %+v vs %+v", p1, p2)
	}
}

func TestRoundTripProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		m := sparse.Generate("prop", 30+int(seed)*7, 150+int(seed)*20, int(seed%3)*10, seed)
		var buf bytes.Buffer
		if err := Write(&buf, m, "prop", "P"); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf, "prop")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.NNZ() != m.NNZ() || got.N != m.N {
			t.Fatalf("seed %d: shape changed", seed)
		}
		for i := 0; i < m.N; i++ {
			for k, e := range m.Rows[i] {
				g := got.Rows[i][k]
				if g.Col != e.Col || g.Val-e.Val > 1e-11 || e.Val-g.Val > 1e-11 {
					t.Fatalf("seed %d: entry (%d,%d) changed", seed, i, e.Col)
				}
			}
		}
	}
}
