// Package hb reads and writes sparse matrices in the Harwell-Boeing
// exchange format (type RUA: real, unsymmetric, assembled) — the format
// the paper's experimental inputs (gematt11, gematt12, orsreg1, saylr4)
// were distributed in.  The synthetic stand-ins built by internal/sparse
// can be exported for inspection with external tools and read back
// losslessly.
//
// The format is column-compressed with a four-line fixed-field header:
//
//	line 1: TITLE (72 chars)  KEY (8 chars)
//	line 2: TOTCRD PTRCRD INDCRD VALCRD RHSCRD   (5 x I14)
//	line 3: MXTYPE (3)  blanks  NROW NCOL NNZERO NELTVL (4 x I14)
//	line 4: PTRFMT INDFMT (2 x A16)  VALFMT RHSFMT (2 x A20)
//
// followed by the column pointers (1-based), row indices (1-based) and
// values, each laid out per its declared Fortran format.  This package
// emits (10I8) for integers and (4E20.12) for values, and its reader
// accepts any (cIw) / (cEw.d) / (cDw.d) / (cFw.d) declaration.
package hb

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"whilepar/internal/sparse"
)

const (
	ptrFmt = "(10I8)"
	valFmt = "(4E20.12)"
	intPer = 10
	intW   = 8
	valPer = 4
	valW   = 20
)

// Write emits m in HB/RUA format.  title and key label the header (both
// are clipped to their fixed widths).
func Write(w io.Writer, m *sparse.Matrix, title, key string) error {
	n := m.N
	// Convert the row-major structure to compressed sparse column.
	type cell struct {
		row int
		val float64
	}
	cols := make([][]cell, n)
	for i := 0; i < n; i++ {
		for _, e := range m.Rows[i] {
			cols[e.Col] = append(cols[e.Col], cell{row: i, val: e.Val})
		}
	}
	nnz := 0
	colptr := make([]int, n+1)
	colptr[0] = 1
	for j := 0; j < n; j++ {
		sort.Slice(cols[j], func(a, b int) bool { return cols[j][a].row < cols[j][b].row })
		nnz += len(cols[j])
		colptr[j+1] = colptr[j] + len(cols[j])
	}

	lines := func(count, per int) int { return (count + per - 1) / per }
	ptrcrd := lines(n+1, intPer)
	indcrd := lines(nnz, intPer)
	valcrd := lines(nnz, valPer)
	totcrd := ptrcrd + indcrd + valcrd

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-72.72s%-8.8s\n", title, key)
	fmt.Fprintf(bw, "%14d%14d%14d%14d%14d\n", totcrd, ptrcrd, indcrd, valcrd, 0)
	fmt.Fprintf(bw, "%-3.3s%11s%14d%14d%14d%14d\n", "RUA", "", n, n, nnz, 0)
	fmt.Fprintf(bw, "%-16.16s%-16.16s%-20.20s%-20.20s\n", ptrFmt, ptrFmt, valFmt, "")

	writeInts := func(vals []int) {
		for i, v := range vals {
			fmt.Fprintf(bw, "%*d", intW, v)
			if (i+1)%intPer == 0 || i == len(vals)-1 {
				bw.WriteByte('\n')
			}
		}
	}
	writeInts(colptr)
	rowind := make([]int, 0, nnz)
	vals := make([]float64, 0, nnz)
	for j := 0; j < n; j++ {
		for _, c := range cols[j] {
			rowind = append(rowind, c.row+1)
			vals = append(vals, c.val)
		}
	}
	writeInts(rowind)
	for i, v := range vals {
		fmt.Fprintf(bw, "%*.12E", valW, v)
		if (i+1)%valPer == 0 || i == len(vals)-1 {
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

var fmtRe = regexp.MustCompile(`^\(\s*(\d+)\s*[IEDFiedf]\s*(\d+)(?:\.\d+)?\s*\)$`)

// parseFmt extracts (count, width) from a Fortran format like (10I8) or
// (4E20.12).
func parseFmt(s string) (per, width int, err error) {
	m := fmtRe.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return 0, 0, fmt.Errorf("hb: unsupported format %q", s)
	}
	per, _ = strconv.Atoi(m[1])
	width, _ = strconv.Atoi(m[2])
	if per < 1 || width < 1 {
		return 0, 0, fmt.Errorf("hb: degenerate format %q", s)
	}
	return per, width, nil
}

// fixedReader pulls fixed-width fields from format-laid-out lines.
type fixedReader struct {
	sc    *bufio.Scanner
	line  string
	pos   int
	per   int
	width int
	used  int // fields consumed from the current line
}

func (r *fixedReader) next() (string, error) {
	for {
		if r.line != "" && r.used < r.per && r.pos < len(r.line) {
			end := r.pos + r.width
			if end > len(r.line) {
				end = len(r.line)
			}
			f := strings.TrimSpace(r.line[r.pos:end])
			r.pos = end
			r.used++
			if f != "" {
				return f, nil
			}
			continue
		}
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		r.line = r.sc.Text()
		r.pos, r.used = 0, 0
	}
}

// Read parses an HB/RUA matrix.  name labels the resulting Matrix.
func Read(rd io.Reader, name string) (*sparse.Matrix, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	readLine := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	if _, err := readLine(); err != nil { // title line
		return nil, fmt.Errorf("hb: missing header: %w", err)
	}
	if _, err := readLine(); err != nil { // card counts
		return nil, fmt.Errorf("hb: missing card counts: %w", err)
	}
	l3, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("hb: missing type line: %w", err)
	}
	if len(l3) < 3 || !strings.EqualFold(strings.TrimSpace(l3[:3]), "RUA") {
		return nil, fmt.Errorf("hb: unsupported matrix type %q", strings.TrimSpace(l3[:min(3, len(l3))]))
	}
	dims := strings.Fields(l3[3:])
	if len(dims) < 3 {
		return nil, fmt.Errorf("hb: malformed dimensions line %q", l3)
	}
	nrow, err1 := strconv.Atoi(dims[0])
	ncol, err2 := strconv.Atoi(dims[1])
	nnz, err3 := strconv.Atoi(dims[2])
	if err1 != nil || err2 != nil || err3 != nil || nrow != ncol || nrow < 1 || nnz < 0 {
		return nil, fmt.Errorf("hb: bad dimensions %v", dims)
	}
	l4, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("hb: missing formats line: %w", err)
	}
	if len(l4) < 52 {
		l4 += strings.Repeat(" ", 52-len(l4))
	}
	ptrPer, ptrW, err := parseFmt(l4[0:16])
	if err != nil {
		return nil, err
	}
	indPer, indW, err := parseFmt(l4[16:32])
	if err != nil {
		return nil, err
	}
	valPerR, valWR, err := parseFmt(l4[32:52])
	if err != nil {
		return nil, err
	}

	readInts := func(count, per, width int) ([]int, error) {
		r := fixedReader{sc: sc, per: per, width: width}
		out := make([]int, count)
		for i := range out {
			f, err := r.next()
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("hb: bad integer %q: %w", f, err)
			}
			out[i] = v
		}
		return out, nil
	}
	colptr, err := readInts(ncol+1, ptrPer, ptrW)
	if err != nil {
		return nil, err
	}
	rowind, err := readInts(nnz, indPer, indW)
	if err != nil {
		return nil, err
	}
	r := fixedReader{sc: sc, per: valPerR, width: valWR}
	vals := make([]float64, nnz)
	for i := range vals {
		f, err := r.next()
		if err != nil {
			return nil, err
		}
		// Fortran D exponents.
		f = strings.ReplaceAll(strings.ReplaceAll(f, "D", "E"), "d", "e")
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("hb: bad value %q: %w", f, err)
		}
		vals[i] = v
	}

	// CSC -> the row-major Matrix.
	m := &sparse.Matrix{
		Name:     name,
		N:        nrow,
		Rows:     make([][]sparse.Entry, nrow),
		RowCount: make([]int, nrow),
		ColCount: make([]int, ncol),
	}
	for j := 0; j < ncol; j++ {
		lo, hi := colptr[j]-1, colptr[j+1]-1
		if lo < 0 || hi < lo || hi > nnz {
			return nil, fmt.Errorf("hb: column pointer corruption at column %d", j)
		}
		for k := lo; k < hi; k++ {
			i := rowind[k] - 1
			if i < 0 || i >= nrow {
				return nil, fmt.Errorf("hb: row index %d out of range", rowind[k])
			}
			m.Rows[i] = append(m.Rows[i], sparse.Entry{Col: j, Val: vals[k]})
		}
	}
	for i := range m.Rows {
		sort.Slice(m.Rows[i], func(a, b int) bool { return m.Rows[i][a].Col < m.Rows[i][b].Col })
		m.RowCount[i] = len(m.Rows[i])
		for _, e := range m.Rows[i] {
			m.ColCount[e.Col]++
		}
	}
	return m, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
