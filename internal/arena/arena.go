// Package arena pools the large flat slices the speculative machinery
// allocates per engine invocation — checkpoint copies, stamp shards,
// epoch tags, PD shadow marks.  A strip-mined run used to pay a fresh
// O(procs x n) allocation (and the runtime's implied zeroing) for every
// engine construction; recycling the buffers through sync.Pool turns
// that into a size check and, where staleness matters, one memclr.
//
// Contract: slices handed out by the non-zeroed getters carry arbitrary
// stale content.  Callers must either fully overwrite them before
// reading (checkpoint copies, stamp shards behind epoch tags) or
// request the zeroed variant (epoch tags themselves, where zero means
// "stale since before any epoch").  Returning a slice via its Put
// function transfers ownership back — the caller must not retain a
// reference.
package arena

import "sync"

// The pools hold pointers-to-slices so Put does not allocate an
// interface box per call.  Buffers of any capacity share one pool per
// element type; Get reallocates when the recycled capacity is short,
// which keeps mixed-size usage correct at the cost of occasionally
// dropping a small buffer on the floor.
var (
	float64Pool = sync.Pool{New: func() any { return new([]float64) }}
	int64Pool   = sync.Pool{New: func() any { return new([]int64) }}
	uint32Pool  = sync.Pool{New: func() any { return new([]uint32) }}
	intPool     = sync.Pool{New: func() any { return new([]int) }}
)

// Float64s returns a length-n slice with arbitrary content.
func Float64s(n int) []float64 {
	p := float64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return (*p)[:n]
}

// PutFloat64s recycles a slice obtained from Float64s.  nil is a no-op.
func PutFloat64s(s []float64) {
	if s == nil {
		return
	}
	float64Pool.Put(&s)
}

// Int64s returns a length-n slice with arbitrary content.
func Int64s(n int) []int64 {
	p := int64Pool.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, n)
	}
	return (*p)[:n]
}

// PutInt64s recycles a slice obtained from Int64s.  nil is a no-op.
func PutInt64s(s []int64) {
	if s == nil {
		return
	}
	int64Pool.Put(&s)
}

// Uint32sZeroed returns a length-n slice of zeros — the "stale before
// any epoch" state generation-tag consumers require on first use.
func Uint32sZeroed(n int) []uint32 {
	p := uint32Pool.Get().(*[]uint32)
	if cap(*p) < n {
		// A fresh allocation is already zeroed.
		*p = make([]uint32, n)
		return *p
	}
	s := (*p)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// PutUint32s recycles a slice obtained from Uint32sZeroed.  nil is a
// no-op.
func PutUint32s(s []uint32) {
	if s == nil {
		return
	}
	uint32Pool.Put(&s)
}

// Ints returns a length-0 slice with at least the given capacity —
// the shape dirty-index journals want (append-only, truncated on
// reset).
func Ints(capacity int) []int {
	p := intPool.Get().(*[]int)
	if cap(*p) < capacity {
		*p = make([]int, 0, capacity)
	}
	return (*p)[:0]
}

// PutInts recycles a slice obtained from Ints.  nil is a no-op.
func PutInts(s []int) {
	if s == nil {
		return
	}
	intPool.Put(&s)
}

// SlicePool is the generic form of the typed pools above, for element
// types the package does not predeclare (packed shadow records, block
// bitmaps).  Each instantiation owns its own sync.Pool, so buffers of
// different element types never mix.  The same contract applies:
// Get/GetCap hand out arbitrary stale content, GetZeroed hands out
// zeros, and Put transfers ownership back.
type SlicePool[T any] struct{ p sync.Pool }

// NewSlicePool returns an empty pool for []T buffers.
func NewSlicePool[T any]() *SlicePool[T] {
	sp := &SlicePool[T]{}
	sp.p.New = func() any { return new([]T) }
	return sp
}

// Get returns a length-n slice with arbitrary content.
func (sp *SlicePool[T]) Get(n int) []T {
	p := sp.p.Get().(*[]T)
	if cap(*p) < n {
		*p = make([]T, n)
	}
	return (*p)[:n]
}

// GetZeroed returns a length-n slice of zero values.
func (sp *SlicePool[T]) GetZeroed(n int) []T {
	p := sp.p.Get().(*[]T)
	if cap(*p) < n {
		// A fresh allocation is already zeroed.
		*p = make([]T, n)
		return *p
	}
	s := (*p)[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// GetCap returns a length-0 slice with at least the given capacity —
// the append-only journal shape.
func (sp *SlicePool[T]) GetCap(capacity int) []T {
	p := sp.p.Get().(*[]T)
	if cap(*p) < capacity {
		*p = make([]T, 0, capacity)
	}
	return (*p)[:0]
}

// Put recycles a slice obtained from any of the getters.  nil is a
// no-op.
func (sp *SlicePool[T]) Put(s []T) {
	if s == nil {
		return
	}
	sp.p.Put(&s)
}
