package arena

import "testing"

func TestRoundTripSizes(t *testing.T) {
	a := Float64s(1024)
	if len(a) != 1024 {
		t.Fatalf("Float64s(1024) len = %d", len(a))
	}
	for i := range a {
		a[i] = float64(i)
	}
	PutFloat64s(a)
	// A larger request after recycling a smaller buffer must still be
	// correctly sized.
	b := Float64s(4096)
	if len(b) != 4096 {
		t.Fatalf("Float64s(4096) len = %d", len(b))
	}
	PutFloat64s(b)

	s := Int64s(256)
	if len(s) != 256 {
		t.Fatalf("Int64s(256) len = %d", len(s))
	}
	PutInt64s(s)
}

func TestUint32sZeroedAfterReuse(t *testing.T) {
	tags := Uint32sZeroed(512)
	for i := range tags {
		tags[i] = 7
	}
	PutUint32s(tags)
	// Whatever buffer comes back — recycled or fresh — must read as
	// all-stale.
	again := Uint32sZeroed(512)
	for i, v := range again {
		if v != 0 {
			t.Fatalf("reused tag[%d] = %d, want 0", i, v)
		}
	}
	PutUint32s(again)
}

func TestIntsComeBackEmpty(t *testing.T) {
	d := Ints(64)
	if len(d) != 0 || cap(d) < 64 {
		t.Fatalf("Ints(64): len=%d cap=%d", len(d), cap(d))
	}
	d = append(d, 1, 2, 3)
	PutInts(d)
	e := Ints(16)
	if len(e) != 0 {
		t.Fatalf("recycled journal has len %d, want 0", len(e))
	}
	PutInts(e)
}

func TestNilPutsAreNoOps(t *testing.T) {
	PutFloat64s(nil)
	PutInt64s(nil)
	PutUint32s(nil)
	PutInts(nil)
}
