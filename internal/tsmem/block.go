// Block-journaled, cache-packed stamp layout — the default first-touch
// bookkeeping of a sharded Memory.
//
// The element-journal layout (the JournalElement oracle) spreads one
// stamped store's bookkeeping over three unrelated allocations: the
// stamp word, its epoch tag, and an append to the shard's dirty-index
// journal.  A first touch therefore dirties three cache lines (plus the
// data word), and the journal append's bounds check + possible grow sit
// on the hottest path in the package.
//
// The packed layout collapses the per-element state into one 16-byte
// array-of-structs record — stamp (8B) + epoch tag (4B) + flags (4B,
// carrying the journaled bit in what would otherwise be padding) — so
// the stamp word and its liveness tag always share a cache line (four
// records per 64-byte line).  The per-element journal is replaced by
// per-block range journaling: elements are grouped into fixed 64-element
// blocks, each block has one epoch-tagged dirty bitmap (a single
// uint64), and the journal records each block id once per epoch.  A
// first-touch store then touches the record's line and the block line —
// two lines instead of three-plus — and the journal append happens only
// once per 64-element block instead of once per element.  Batched
// StoreRange marks whole blocks with O(blocks) bitmap ORs.
//
// Everything downstream (merge, Undo, PartialCommit, MinStampFrom,
// WriteSet, Stamp) iterates journaled block ranges and their union
// bitmaps, visiting exactly the touched elements via TrailingZeros64.
// Undo stays element-granular *within* a block — each set bit's merged
// stamp is compared individually — which is what keeps the
// stamp-threshold contract intact: a sub-threshold store is neither
// stamped nor bitmap-marked, so a block-level restore can never clobber
// it (see TestThresholdStoreSurvivesBlockUndo).
package tsmem

import (
	"math/bits"
	"sync"

	"whilepar/internal/arena"
	"whilepar/internal/mem"
)

// Journal selects the first-touch bookkeeping layout of a sharded
// Memory.  The zero value is the packed block layout.
type Journal uint8

const (
	// JournalBlock packs stamp + epoch + journaled bit into one
	// 16-byte record and journals dirty 64-element blocks (bitmap +
	// block id) instead of individual element indices.  The default.
	JournalBlock Journal = iota
	// JournalElement keeps the prior layout — parallel stamp and
	// epoch-tag arrays plus per-element dirty-index journals —
	// retained as the equivalence oracle and A/B benchmark baseline.
	JournalElement
)

// String renders the mode the way the whilebench -journal flag spells
// it.
func (j Journal) String() string {
	if j == JournalElement {
		return "element"
	}
	return "block"
}

const (
	// blockShift/blockSize/blockMask define the journaling granule:
	// 64 elements, so one block's dirty bitmap is exactly one uint64
	// and one block's worth of float64 data is 8 cache lines.  Smaller
	// blocks would journal more ids per strip; larger ones would need
	// multi-word bitmaps and make the merge's bit scan less dense.
	blockShift = 6
	blockSize  = 1 << blockShift
	blockMask  = blockSize - 1
)

// rec is the packed per-element shadow record: the minimum writing
// iteration, the stamp generation that wrote it, and a flags word
// occupying what would otherwise be struct padding.  Exactly 16 bytes
// (pinned by TestPackedRecordLayout) so four records share a cache
// line and stamp + tag can never split across lines.
type rec struct {
	stamp int64
	epoch uint32
	flags uint32
}

// recJournaled marks a record first-touched in its epoch.  The block
// bitmap is the authoritative journal; the bit exists so a record is
// self-describing when inspected on its own.
const recJournaled = 1 << 0

// numBlocks returns how many journaling blocks cover n elements.
func numBlocks(n int) int { return (n + blockMask) >> blockShift }

// Pools for the packed layout's buffers.  Records and block tags must
// come back zeroed (a recycled epoch tag could equal a fresh Memory's
// live epoch and read as a current stamp); bitmaps and union scratch
// hide behind those tags, so their stale content is fine.
var (
	recPool    = arena.NewSlicePool[rec]()
	uint64Pool = arena.NewSlicePool[uint64]()
	int32Pool  = arena.NewSlicePool[int32]()
)

// mergePacked is mergeStamps for the packed layout: deduplicate the
// per-shard block journals into touchedBlk, OR the per-shard bitmaps
// into unionBits, then min-merge the shards' records over exactly the
// set bits.  Cost is O(journaled blocks x procs + touched elements x
// writers), independent of array length.
func (m *Memory) mergePacked() {
	m.mgGen++
	if m.mgGen == 0 {
		for _, sn := range m.mgBlkSeen {
			for i := range sn {
				sn[i] = 0
			}
		}
		m.mgGen = 1
	}
	stamped := 0
	for _, a := range m.arrays {
		rss := m.recs[a]
		bts := m.blkTag[a]
		n := a.Len()
		mg := m.merged[a]
		if len(mg) != n {
			arena.PutInt64s(mg)
			mg = arena.Int64s(n)
			m.merged[a] = mg
		}
		bs := m.mgBlkSeen[a]
		ub := m.unionBits[a]
		blist := m.touchedBlk[a][:0]
		for k := 0; k < m.procs; k++ {
			bb := m.blkBits[a][k]
			for _, b := range m.blocks[a][k] {
				// Journals are truncated at every reset, so each entry
				// is current-epoch by construction and its bitmap live.
				if bs[b] != m.mgGen {
					bs[b] = m.mgGen
					ub[b] = bb[b]
					blist = append(blist, b)
				} else {
					ub[b] |= bb[b]
				}
			}
		}
		m.touchedBlk[a] = blist
		var mu sync.Mutex
		parallelDo(m.procs, len(blist), func(lo, hi int) {
			count := 0
			liveK := make([]int, 0, m.procs)
			liveBits := make([]uint64, 0, m.procs)
			for _, b := range blist[lo:hi] {
				// Gather the shards that journaled this block so the
				// per-element min scan touches only actual writers.
				liveK, liveBits = liveK[:0], liveBits[:0]
				for k := 0; k < m.procs; k++ {
					if bts[k][b] == m.epoch && m.blkBits[a][k][b] != 0 {
						liveK = append(liveK, k)
						liveBits = append(liveBits, m.blkBits[a][k][b])
					}
				}
				base := int(b) << blockShift
				w := ub[b]
				for w != 0 {
					t := bits.TrailingZeros64(w)
					bit := uint64(1) << uint(t)
					w &^= bit
					i := base + t
					min := NoStamp
					for j, k := range liveK {
						if liveBits[j]&bit != 0 {
							if st := rss[k][i].stamp; min == NoStamp || st < min {
								min = st
							}
						}
					}
					mg[i] = min
					count++
				}
			}
			mu.Lock()
			stamped += count
			mu.Unlock()
		})
	}
	m.stamped = stamped
	m.mergedOK.Store(true)
	m.obsM.StampedStoresAdd(stamped)
	m.obsM.ShardMergeDone(m.procs, stamped)
}

// packedRestoreAbove restores from the checkpoint every touched
// location whose merged stamp is >= bound and returns how many.  The
// merge must have run.  Restoration is element-granular inside each
// block — only set bits with a qualifying stamp are rewound — so
// unjournaled (sub-threshold) neighbors in the same block survive.
func (m *Memory) packedRestoreAbove(bound int64) int {
	restored := 0
	for ai, a := range m.arrays {
		cp := m.checkpoints[ai]
		mg := m.merged[a]
		ub := m.unionBits[a]
		blist := m.touchedBlk[a]
		var mu sync.Mutex
		parallelDo(m.procs, len(blist), func(lo, hi int) {
			count := 0
			for _, b := range blist[lo:hi] {
				base := int(b) << blockShift
				w := ub[b]
				for w != 0 {
					i := base + bits.TrailingZeros64(w)
					w &= w - 1
					if st := mg[i]; st != NoStamp && st >= bound {
						a.Data[i] = cp.Data[i]
						count++
					}
				}
			}
			mu.Lock()
			restored += count
			mu.Unlock()
		})
	}
	return restored
}

// packedMinStampFrom is MinStampFrom's block-layout scan.
func (m *Memory) packedMinStampFrom(from int64) int64 {
	min := NoStamp
	for _, a := range m.arrays {
		mg := m.merged[a]
		ub := m.unionBits[a]
		for _, b := range m.touchedBlk[a] {
			base := int(b) << blockShift
			w := ub[b]
			for w != 0 {
				i := base + bits.TrailingZeros64(w)
				w &= w - 1
				if st := mg[i]; st != NoStamp && st >= from && (min == NoStamp || st < min) {
					min = st
				}
			}
		}
	}
	return min
}

// packedWriteSet expands the touched-block bitmaps of one array into a
// deduplicated element-index list (WriteSet's per-array shape).
func (m *Memory) packedWriteSet(a *mem.Array) []int {
	ub := m.unionBits[a]
	blist := m.touchedBlk[a]
	out := make([]int, 0, len(blist)*8)
	for _, b := range blist {
		base := int(b) << blockShift
		w := ub[b]
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}
