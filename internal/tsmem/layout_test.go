package tsmem

import (
	"testing"
	"unsafe"
)

// The packed layout's whole point is that one shadow record is exactly
// 16 bytes — four per cache line, stamp and epoch tag never split
// across lines.  Pin the size and alignment so an innocent-looking
// field addition (or reordering that introduces padding) fails fast
// instead of silently doubling the shadow footprint.
func TestPackedRecordLayout(t *testing.T) {
	if got := unsafe.Sizeof(rec{}); got != 16 {
		t.Fatalf("packed record is %d bytes, want 16", got)
	}
	if got := unsafe.Alignof(rec{}); got != 8 {
		t.Fatalf("packed record alignment is %d, want 8", got)
	}
	var r rec
	if off := unsafe.Offsetof(r.epoch); off != 8 {
		t.Fatalf("epoch tag at offset %d, want 8 (same line as stamp)", off)
	}
	// One block's dirty bitmap must be exactly one uint64, and the
	// shift/mask must agree with the size.
	if blockSize != 64 {
		t.Fatalf("blockSize %d does not fit a single uint64 bitmap", blockSize)
	}
	if blockSize != 1<<blockShift {
		t.Fatalf("blockShift %d inconsistent with blockSize %d", blockShift, blockSize)
	}
	if blockMask != blockSize-1 {
		t.Fatalf("blockMask %d inconsistent with blockSize %d", blockMask, blockSize)
	}
}
