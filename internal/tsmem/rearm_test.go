package tsmem

import (
	"math/rand"
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

// TestRearmMatchesFullCheckpoint drives two Memories over identical
// multi-strip store scripts: the subject re-arms between strips with
// Rearm(previous strip's WriteSet), the oracle takes a full Checkpoint
// every strip.  After every strip both sides perform the same
// randomized repair action (commit with overshoot Undo, PartialCommit,
// or RestoreAll) and the array contents must match exactly — the proof
// that refreshing only the dirtied checkpoint words preserves every
// rollback semantic the full copy provides.
func TestRearmMatchesFullCheckpoint(t *testing.T) {
	const (
		n      = 256
		procs  = 4
		strips = 10
		cases  = 30
	)
	for c := 0; c < cases; c++ {
		rng := rand.New(rand.NewSource(int64(7000 + c)))
		a1 := mem.NewArray("x", n)
		a2 := mem.NewArray("x", n)
		for i := 0; i < n; i++ {
			a1.Data[i] = float64(i)
			a2.Data[i] = float64(i)
		}
		sub := NewSharded(procs, a1)
		ora := NewSharded(procs, a2)

		var pending [][]int
		for s := 0; s < strips; s++ {
			sub.Rearm(pending)
			ora.Checkpoint()

			// One strip's worth of colliding stores, mirrored.
			type st struct {
				idx, iter, vpn int
				v              float64
			}
			var script []st
			base := s * 64
			for i := 0; i < 1+rng.Intn(60); i++ {
				script = append(script, st{
					idx:  rng.Intn(n),
					iter: base + rng.Intn(64),
					vpn:  rng.Intn(procs),
					v:    rng.Float64(),
				})
			}
			for _, w := range script {
				sub.Tracker().Store(a1, w.idx, w.v, w.iter, w.vpn)
				ora.Tracker().Store(a2, w.idx, w.v, w.iter, w.vpn)
			}

			switch rng.Intn(4) {
			case 0: // clean commit, keep everything
				pending = sub.WriteSet()
				ora.WriteSet() // keep merge state symmetric
			case 1: // overshoot undo at a boundary inside the strip
				cut := base + rng.Intn(65)
				pending = sub.WriteSet()
				r1, e1 := sub.Undo(cut)
				r2, e2 := ora.Undo(cut)
				if e1 != nil || e2 != nil {
					t.Fatalf("case %d strip %d: undo errs %v %v", c, s, e1, e2)
				}
				if r1 != r2 {
					t.Fatalf("case %d strip %d: undo restored %d != %d", c, s, r1, r2)
				}
			case 2: // partial commit mid-strip (re-baselines both)
				cut := base + rng.Intn(65)
				r1, e1 := sub.PartialCommit(cut)
				r2, e2 := ora.PartialCommit(cut)
				if e1 != nil || e2 != nil {
					t.Fatalf("case %d strip %d: partial-commit errs %v %v", c, s, e1, e2)
				}
				if r1 != r2 {
					t.Fatalf("case %d strip %d: partial-commit restored %d != %d", c, s, r1, r2)
				}
				// PartialCommit re-baselined internally: nothing pending.
				pending = make([][]int, 1)
			case 3: // total rollback
				if err := sub.RestoreAll(); err != nil {
					t.Fatal(err)
				}
				if err := ora.RestoreAll(); err != nil {
					t.Fatal(err)
				}
				// Everything equals the checkpoint again; the journals
				// still list this strip's (now reverted) locations, so
				// handing them to Rearm stays correct.
				pending = sub.WriteSet()
			}

			for i := 0; i < n; i++ {
				if a1.Data[i] != a2.Data[i] {
					t.Fatalf("case %d strip %d: data[%d] %v != %v", c, s, i, a1.Data[i], a2.Data[i])
				}
			}
			// Spot-check merged stamps agree too.
			for i := 0; i < 8; i++ {
				idx := rng.Intn(n)
				if s1, s2 := sub.Stamp(a1, idx), ora.Stamp(a2, idx); s1 != s2 {
					t.Fatalf("case %d strip %d: stamp[%d] %d != %d", c, s, idx, s1, s2)
				}
			}
		}
		sub.Release()
		ora.Release()
	}
}

// TestRearmDegradesToFullCheckpoint exercises the guard rails: an
// invalidated checkpoint, a nil pending, or a stamp threshold must all
// force Rearm into a full Checkpoint rather than a wrong incremental
// refresh.
func TestRearmDegradesToFullCheckpoint(t *testing.T) {
	const n = 64
	a := mem.NewArray("x", n)
	m := NewSharded(2, a)
	m.Checkpoint()

	// Untracked write, then InvalidateCheckpoint: the next Rearm with an
	// empty pending list would miss it unless it degrades to a full copy.
	a.Data[7] = 42
	m.InvalidateCheckpoint()
	m.Rearm(make([][]int, 1))
	a.Data[7] = 99
	m.Tracker().Store(a, 7, 99, 0, 0) // stamp it so Undo sees it
	if _, err := m.Undo(0); err != nil {
		t.Fatal(err)
	}
	if a.Data[7] != 42 {
		t.Fatalf("after degrade+undo, data[7] = %v, want 42 (checkpointed post-invalidate state)", a.Data[7])
	}

	// nil pending always full-copies.
	a.Data[3] = 5
	m.Rearm(nil)
	m.Tracker().Store(a, 3, 8, 0, 0)
	if _, err := m.Undo(0); err != nil {
		t.Fatal(err)
	}
	if a.Data[3] != 5 {
		t.Fatalf("after nil-pending rearm+undo, data[3] = %v, want 5", a.Data[3])
	}

	// A stamp threshold leaves sub-threshold stores unjournaled, so
	// Rearm must refuse the incremental path outright.
	m.Checkpoint()
	m.SetStampThreshold(10)
	m.Tracker().Store(a, 1, 1, 3, 0) // below threshold: not journaled
	m.Rearm(m.WriteSet())            // must be a full checkpoint of current state
	m.SetStampThreshold(0)
	m.Tracker().Store(a, 1, 2, 0, 0)
	if _, err := m.Undo(0); err != nil {
		t.Fatal(err)
	}
	if a.Data[1] != 1 {
		t.Fatalf("threshold rearm lost the unjournaled store: data[1] = %v, want 1", a.Data[1])
	}
	m.Release()
}

// TestRearmConcurrentStores is the -race variant: strips of concurrent
// disjoint stores under a real DOALL, incremental re-arms in between,
// then an undo — exercising journal appends from all shards and the
// touched-only merge under the race detector.
func TestRearmConcurrentStores(t *testing.T) {
	const (
		n     = 8192
		procs = 8
	)
	a := mem.NewArray("x", n)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	m := NewSharded(procs, a)
	tr := m.Tracker()

	// ref mirrors what the arrays must hold after each strip's undo.
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(i)
	}

	var pending [][]int
	for s := 0; s < 4; s++ {
		m.Rearm(pending)
		lo, hi := s*1024, (s+1)*1024+512 // overlapping windows across strips
		sched.DOALL(hi-lo, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
			idx := lo + i
			tr.Store(a, idx, float64(1000*(s+1)+idx), idx, vpn)
			return sched.Continue
		})
		pending = m.WriteSet()
		cut := lo + 768
		if _, err := m.Undo(cut); err != nil {
			t.Fatal(err)
		}
		// Each location idx in [lo, hi) was written once with iteration
		// stamp idx, so the undo keeps [lo, cut) and reverts [cut, hi).
		for idx := lo; idx < cut; idx++ {
			ref[idx] = float64(1000*(s+1) + idx)
		}
		for i := range ref {
			if a.Data[i] != ref[i] {
				t.Fatalf("strip %d: data[%d] = %v, want %v", s, i, a.Data[i], ref[i])
			}
		}
	}
	m.Release()
}
