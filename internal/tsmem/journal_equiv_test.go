package tsmem

import (
	"math/rand"
	"sort"
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

// The block-journal rewrite must be invisible: the packed block layout,
// the element-journal oracle and the per-element CAS baseline must
// produce bit-identical stamps, stamped counts, undo/commit results and
// array contents on the same store sequence — including batched
// StoreRange, Rearm's incremental re-checkpoint, PartialCommit's
// re-baselining, and the stamp-threshold path where sub-threshold
// stores stay unjournaled.  Runs under -race in CI (the concurrent
// phase uses a bijective index map, so the only sharing is the stamp
// machinery itself).

// journalTrioStoreRange applies one batched store to the two Memory
// layouts and emulates it element-wise on the atomic baseline (which
// has no RangeTracker).
func journalTrioStoreRange(blk, elt *Memory, at *AtomicMemory,
	aB, aE, aA *mem.Array, lo int, src []float64, iter, vpn int) {
	blk.StampStoreRange(aB, lo, src, iter, vpn)
	elt.StampStoreRange(aE, lo, src, iter, vpn)
	trA := at.Tracker()
	for j, v := range src {
		trA.Store(aA, lo+j, v, iter, vpn)
	}
}

func TestJournalLayoutsMatchRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(260) + 40 // spans partial and multiple 64-blocks
		procs := rng.Intn(8) + 1
		init := make([]float64, n)
		for i := range init {
			init[i] = rng.Float64() * 100
		}
		aB := mem.FromSlice("A", append([]float64(nil), init...))
		aE := mem.FromSlice("A", append([]float64(nil), init...))
		aA := mem.FromSlice("A", append([]float64(nil), init...))

		blk := NewShardedJournal(procs, JournalBlock, aB)
		elt := NewShardedJournal(procs, JournalElement, aE)
		at := NewAtomic(aA)
		blk.Checkpoint()
		elt.Checkpoint()
		at.Checkpoint()
		trB, trE, trA := blk.Tracker(), elt.Tracker(), at.Tracker()

		th := 0
		for strip := 0; strip < 5; strip++ {
			if rng.Intn(3) == 0 {
				th = rng.Intn(n / 2)
				blk.SetStampThreshold(th)
				elt.SetStampThreshold(th)
				at.SetStampThreshold(th)
			}

			// Concurrent phase: iteration i writes the unique location
			// perm[i] on whatever vpn the DOALL hands it.
			perm := rng.Perm(n)
			sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
				trB.Store(aB, perm[i], float64(i)+0.5, i, vpn)
				return sched.Continue
			})
			sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
				trE.Store(aE, perm[i], float64(i)+0.5, i, vpn)
				return sched.Continue
			})
			sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
				trA.Store(aA, perm[i], float64(i)+0.5, i, vpn)
				return sched.Continue
			})

			// Sequential collision phase: random indices (sub- and
			// above-threshold writers landing in the same block),
			// shuffled vpns including out-of-range ones.
			for k := 0; k < 2*n; k++ {
				idx, iter := rng.Intn(n), rng.Intn(n)
				vpn := rng.Intn(2*procs+1) - procs
				v := rng.Float64()
				trB.Store(aB, idx, v, iter, vpn)
				trE.Store(aE, idx, v, iter, vpn)
				trA.Store(aA, idx, v, iter, vpn)
			}

			// Batched phase: ranges that straddle block boundaries.
			for k := 0; k < 3; k++ {
				lo := rng.Intn(n - 1)
				ln := rng.Intn(n-lo) + 1
				src := make([]float64, ln)
				for j := range src {
					src[j] = rng.Float64()
				}
				journalTrioStoreRange(blk, elt, at, aB, aE, aA,
					lo, src, rng.Intn(n), rng.Intn(procs))
			}

			for idx := 0; idx < n; idx++ {
				sb, se, sa := blk.Stamp(aB, idx), elt.Stamp(aE, idx), at.Stamp(aA, idx)
				if sb != se || sb != sa {
					t.Fatalf("trial %d strip %d: stamp[%d] block=%d element=%d atomic=%d",
						trial, strip, idx, sb, se, sa)
				}
			}
			_, _, _, stB := blk.Stats()
			_, _, _, stE := elt.Stats()
			_, _, _, stA := at.Stats()
			if stB != stE || stB != stA {
				t.Fatalf("trial %d strip %d: stamped block=%d element=%d atomic=%d",
					trial, strip, stB, stE, stA)
			}

			switch rng.Intn(4) {
			case 0: // undo the overshoot
				valid := th + rng.Intn(n-th+1)
				uB, errB := blk.Undo(valid)
				uE, errE := elt.Undo(valid)
				uA, errA := at.Undo(valid)
				if (errB != nil) != (errE != nil) || (errB != nil) != (errA != nil) {
					t.Fatalf("trial %d strip %d: Undo errors diverge: %v / %v / %v",
						trial, strip, errB, errE, errA)
				}
				if uB != uE || uB != uA {
					t.Fatalf("trial %d strip %d: Undo restored block=%d element=%d atomic=%d",
						trial, strip, uB, uE, uA)
				}
			case 1: // keep a prefix, rewind the rest, re-baseline
				upto := th + rng.Intn(n-th+1)
				uB, errB := blk.PartialCommit(upto)
				uE, errE := elt.PartialCommit(upto)
				if (errB != nil) != (errE != nil) {
					t.Fatalf("trial %d strip %d: PartialCommit errors diverge: %v / %v",
						trial, strip, errB, errE)
				}
				// The atomic baseline has no PartialCommit: Undo(upto)
				// followed by a fresh Checkpoint is its definition.
				uA, errA := at.Undo(upto)
				if (errB != nil) != (errA != nil) {
					t.Fatalf("trial %d strip %d: PartialCommit vs atomic Undo diverge: %v / %v",
						trial, strip, errB, errA)
				}
				if errB == nil {
					at.SetStampThreshold(0)
					at.Checkpoint()
					th = 0
					if uB != uE || uB != uA {
						t.Fatalf("trial %d strip %d: PartialCommit restored block=%d element=%d atomic=%d",
							trial, strip, uB, uE, uA)
					}
				}
			case 2: // incremental re-checkpoint from the write-sets
				wsB, wsE := blk.WriteSet(), elt.WriteSet()
				for ai := range wsB {
					b := append([]int(nil), wsB[ai]...)
					e := append([]int(nil), wsE[ai]...)
					sort.Ints(b)
					sort.Ints(e)
					if len(b) != len(e) {
						t.Fatalf("trial %d strip %d: write-set sizes block=%d element=%d",
							trial, strip, len(b), len(e))
					}
					for j := range b {
						if b[j] != e[j] {
							t.Fatalf("trial %d strip %d: write-sets diverge at %d: %d vs %d",
								trial, strip, j, b[j], e[j])
						}
					}
				}
				blk.Rearm(wsB)
				elt.Rearm(wsE)
				at.Checkpoint()
			case 3: // abandon the strip entirely
				if err := blk.RestoreAll(); err != nil {
					t.Fatal(err)
				}
				if err := elt.RestoreAll(); err != nil {
					t.Fatal(err)
				}
				if err := at.RestoreAll(); err != nil {
					t.Fatal(err)
				}
			}
			if !aB.Equal(aE) || !aB.Equal(aA) {
				t.Fatalf("trial %d strip %d: arrays diverge after rewind op", trial, strip)
			}
		}
		blk.Release()
		elt.Release()
	}
}

// Regression for the stamp-threshold edge (Section 8.1) under block
// journaling: a sub-threshold store is neither stamped nor journaled —
// its block bitmap bit stays clear — so a block-granular Undo of an
// otherwise-dirty block must leave it in place, and Rearm must carry it
// into the refreshed checkpoint rather than clobbering it.
func TestThresholdStoreSurvivesBlockUndo(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(procs int, arrays ...*mem.Array) *Memory
	}{
		{"block", NewSharded},
		{"element", NewShardedElement},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := mem.NewArray("A", 128)
			m := tc.mk(2, a)
			defer m.Release()
			m.Checkpoint()
			m.SetStampThreshold(5)
			tr := m.Tracker()
			tr.Store(a, 10, 111, 2, 0) // sub-threshold: predicted valid, unjournaled
			tr.Store(a, 11, 222, 9, 0) // same 64-element block, overshoot
			tr.Store(a, 70, 333, 9, 1) // different block, overshoot

			restored, err := m.Undo(6)
			if err != nil {
				t.Fatal(err)
			}
			if restored != 2 {
				t.Fatalf("Undo restored %d locations, want the 2 overshoot stores", restored)
			}
			if a.Data[10] != 111 {
				t.Fatalf("sub-threshold store clobbered by block Undo: a[10]=%v, want 111", a.Data[10])
			}
			if a.Data[11] != 0 || a.Data[70] != 0 {
				t.Fatalf("overshoot stores survived Undo: a[11]=%v a[70]=%v", a.Data[11], a.Data[70])
			}

			// Rearm with a threshold degrades to a full Checkpoint,
			// which must adopt the surviving sub-threshold value as the
			// new baseline.
			m.Rearm(m.WriteSet())
			tr.Store(a, 11, 444, 7, 0)
			if _, err := m.Undo(5); err != nil {
				t.Fatal(err)
			}
			if a.Data[10] != 111 {
				t.Fatalf("sub-threshold store lost across Rearm: a[10]=%v, want 111", a.Data[10])
			}
			if a.Data[11] != 0 {
				t.Fatalf("post-Rearm overshoot store survived: a[11]=%v", a.Data[11])
			}
		})
	}
}
