package tsmem

import (
	"testing"
	"testing/quick"

	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

func TestUndoRestoresOvershotWritesOnly(t *testing.T) {
	a := mem.NewArray("A", 20)
	for i := range a.Data {
		a.Data[i] = -1
	}
	m := New(a)
	m.Checkpoint()
	tr := m.Tracker()
	// Iterations 0..9 each write A[i] = i; valid = 6.
	for i := 0; i < 10; i++ {
		tr.Store(a, i, float64(i), i, 0)
	}
	restored, err := m.Undo(6)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 4 {
		t.Fatalf("restored %d locations, want 4", restored)
	}
	for i := 0; i < 6; i++ {
		if a.Data[i] != float64(i) {
			t.Errorf("valid write A[%d] lost: %v", i, a.Data[i])
		}
	}
	for i := 6; i < 10; i++ {
		if a.Data[i] != -1 {
			t.Errorf("overshot write A[%d] not undone: %v", i, a.Data[i])
		}
	}
}

func TestUndoWithoutCheckpointFails(t *testing.T) {
	m := New(mem.NewArray("A", 4))
	if _, err := m.Undo(0); err == nil {
		t.Fatal("Undo without Checkpoint should fail")
	}
	if err := m.RestoreAll(); err == nil {
		t.Fatal("RestoreAll without Checkpoint should fail")
	}
}

func TestRestoreAllAndCommit(t *testing.T) {
	a := mem.NewArray("A", 4)
	a.Data[1] = 5
	m := New(a)
	m.Checkpoint()
	tr := m.Tracker()
	tr.Store(a, 1, 99, 0, 0)
	tr.Store(a, 2, 98, 1, 0)
	if err := m.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	if a.Data[1] != 5 || a.Data[2] != 0 {
		t.Fatalf("RestoreAll left %v", a.Data)
	}
	m.Commit()
	d, c, s, st := m.Stats()
	if d != 4 || c != 0 || s != 4 || st != 0 {
		t.Fatalf("post-commit stats = %d %d %d %d", d, c, s, st)
	}
}

func TestStampKeepsMinimumIteration(t *testing.T) {
	a := mem.NewArray("A", 2)
	m := New(a)
	m.Checkpoint()
	tr := m.Tracker()
	tr.Store(a, 0, 1, 9, 0)
	tr.Store(a, 0, 2, 3, 1) // earlier iteration writes same location
	tr.Store(a, 0, 3, 7, 2)
	if got := m.Stamp(a, 0); got != 3 {
		t.Fatalf("stamp = %d, want min writer 3", got)
	}
	if m.Stamp(a, 1) != NoStamp {
		t.Fatal("unwritten location should have NoStamp")
	}
	if m.Stamp(mem.NewArray("other", 1), 0) != NoStamp {
		t.Fatal("untracked array should report NoStamp")
	}
}

func TestStampThreshold(t *testing.T) {
	a := mem.NewArray("A", 10)
	m := New(a)
	m.Checkpoint()
	m.SetStampThreshold(5)
	tr := m.Tracker()
	for i := 0; i < 10; i++ {
		tr.Store(a, i, 1, i, 0)
	}
	if m.Stamp(a, 3) != NoStamp {
		t.Fatal("below-threshold store should not be stamped")
	}
	if m.Stamp(a, 7) != 7 {
		t.Fatal("above-threshold store should be stamped")
	}
	// Undo with valid >= threshold works; below threshold must fail.
	if _, err := m.Undo(6); err != nil {
		t.Fatalf("Undo above threshold failed: %v", err)
	}
	if _, err := m.Undo(3); err == nil {
		t.Fatal("Undo below threshold must fail (stamps missing)")
	}
}

func TestStatsTripleMemory(t *testing.T) {
	a, b := mem.NewArray("A", 100), mem.NewArray("B", 50)
	m := New(a, b)
	m.Checkpoint()
	d, c, s, _ := m.Stats()
	if d != 150 || c != 150 || s != 150 {
		t.Fatalf("stats = %d/%d/%d, want the 3x footprint of Section 4", d, c, s)
	}
}

// Property: a speculative parallel execution followed by Undo(valid)
// leaves memory exactly as a sequential execution of the valid prefix.
func TestUndoEquivalentToSequentialPrefix(t *testing.T) {
	f := func(nRaw, validRaw, procsRaw uint8) bool {
		n := int(nRaw)%64 + 8
		valid := int(validRaw) % n
		procs := int(procsRaw)%4 + 1

		par := mem.NewArray("A", n)
		seq := mem.NewArray("A", n)
		for i := 0; i < n; i++ {
			par.Data[i] = float64(-i - 1)
			seq.Data[i] = float64(-i - 1)
		}

		m := NewSharded(procs, par)
		m.Checkpoint()
		tr := m.Tracker()
		// Parallel: all n iterations run speculatively.
		sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
			tr.Store(par, i, float64(i*i), i, vpn)
			return sched.Continue
		})
		if _, err := m.Undo(valid); err != nil {
			return false
		}
		// Sequential: only valid iterations run.
		for i := 0; i < valid; i++ {
			seq.Data[i] = float64(i * i)
		}
		return par.Equal(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrailLastValues(t *testing.T) {
	tr := NewTrail()
	// Location 3 written by iterations 2, 5, 9; location 4 only by 8.
	tr.Record(0, 5, 3, 50)
	tr.Record(1, 2, 3, 20)
	tr.Record(0, 9, 3, 90)
	tr.Record(1, 8, 4, 80)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// valid = 6: iterations 0..5 valid.
	vals := tr.LastValues(6)
	if v, ok := vals[3]; !ok || v != 50 {
		t.Fatalf("vals[3] = %v, want 50 (iteration 5's write)", vals[3])
	}
	if _, ok := vals[4]; ok {
		t.Fatal("location 4 written only by overshoot; must be absent")
	}
	// valid = 10: everything counts; last write (iter 9) wins.
	vals = tr.LastValues(10)
	if vals[3] != 90 || vals[4] != 80 {
		t.Fatalf("vals = %v", vals)
	}
	// valid = 0: nothing.
	if len(tr.LastValues(0)) != 0 {
		t.Fatal("no valid iterations should yield no values")
	}
}

func TestTrailConcurrentRecord(t *testing.T) {
	tr := NewTrail()
	sched.DOALL(200, sched.Options{Procs: 8}, func(i, vpn int) sched.Control {
		tr.Record(vpn, i, i%10, float64(i))
		return sched.Continue
	})
	if tr.Len() != 200 {
		t.Fatalf("Len = %d, want 200", tr.Len())
	}
	vals := tr.LastValues(200)
	for idx, v := range vals {
		// Last writer of location idx is the largest i with i%10 == idx.
		want := float64(190 + idx)
		if v != want {
			t.Fatalf("vals[%d] = %v, want %v", idx, v, want)
		}
	}
}

func TestSparseMemoryUndo(t *testing.T) {
	a := mem.NewArray("A", 1000)
	for i := range a.Data {
		a.Data[i] = 7
	}
	s := NewSparse()
	tr := s.Tracker()
	// Sparse writes: every 37th element, iteration = index/37.
	for i := 0; i < 1000; i += 37 {
		tr.Store(a, i, 100, i/37, 0)
	}
	if s.Touched() != 28 {
		t.Fatalf("Touched = %d, want 28", s.Touched())
	}
	restored := s.Undo(10) // iterations 0..9 valid -> indices 0..333 keep writes
	if restored != 28-10 {
		t.Fatalf("restored = %d, want 18", restored)
	}
	if a.Data[0] != 100 || a.Data[37*9] != 100 {
		t.Fatal("valid sparse writes lost")
	}
	if a.Data[37*10] != 7 {
		t.Fatal("overshot sparse write not restored")
	}
}

func TestSparseMemoryKeepsOldestValueAndMinStamp(t *testing.T) {
	a := mem.NewArray("A", 4)
	a.Data[2] = 5
	s := NewSparse()
	tr := s.Tracker()
	tr.Store(a, 2, 10, 8, 0) // first write saves old=5, stamp=8
	tr.Store(a, 2, 20, 3, 1) // earlier iteration lowers the stamp
	if got := tr.Load(a, 2, 0, 0); got != 20 {
		t.Fatalf("Load = %v", got)
	}
	// valid=4 > stamp min 3 -> kept.
	if s.Undo(4) != 0 {
		t.Fatal("write with min stamp 3 should be kept at valid=4")
	}
	s.Reset()
	tr.Store(a, 2, 30, 9, 0)
	if s.RestoreAll() != 1 || a.Data[2] != 20 {
		t.Fatalf("RestoreAll should rewind to pre-loop value, got %v", a.Data[2])
	}
	if s.String() == "" {
		t.Fatal("String should describe the log")
	}
}

func TestSparseMemoryConcurrent(t *testing.T) {
	a := mem.NewArray("A", 512)
	s := NewSparseSharded(8)
	tr := s.Tracker()
	sched.DOALL(512, sched.Options{Procs: 8}, func(i, vpn int) sched.Control {
		tr.Store(a, i, float64(i), i, vpn)
		return sched.Continue
	})
	if s.Touched() != 512 {
		t.Fatalf("Touched = %d", s.Touched())
	}
	if s.Undo(256) != 256 {
		t.Fatal("half the writes should be undone")
	}
}

func TestPartialCommitKeepsPrefixAndRebases(t *testing.T) {
	a := mem.NewArray("A", 16)
	for i := range a.Data {
		a.Data[i] = -1
	}
	m := NewSharded(4, a)
	m.Checkpoint()
	tr := m.Tracker()
	// Iterations 0..11 each write their own element.
	for i := 0; i < 12; i++ {
		tr.Store(a, i, float64(100+i), i, i%4)
	}
	restored, err := m.PartialCommit(8)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 4 {
		t.Fatalf("restored %d, want 4 (iterations 8..11)", restored)
	}
	for i := 0; i < 8; i++ {
		if a.Data[i] != float64(100+i) {
			t.Fatalf("prefix write A[%d] lost: %v", i, a.Data[i])
		}
	}
	for i := 8; i < 16; i++ {
		if a.Data[i] != -1 {
			t.Fatalf("suffix A[%d] not rewound: %v", i, a.Data[i])
		}
	}
	// The commit re-baselined: a new round's stores rewind to the
	// post-prefix state, not the original one.
	for i := 8; i < 12; i++ {
		tr.Store(a, i, float64(200+i), i, i%4)
	}
	if err := m.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if a.Data[i] != float64(100+i) {
			t.Fatalf("rebased checkpoint lost prefix at %d: %v", i, a.Data[i])
		}
	}
	for i := 8; i < 16; i++ {
		if a.Data[i] != -1 {
			t.Fatalf("rebased checkpoint wrong at %d: %v", i, a.Data[i])
		}
	}
}

func TestPartialCommitClearsStamps(t *testing.T) {
	a := mem.NewArray("A", 8)
	m := New(a)
	m.Checkpoint()
	tr := m.Tracker()
	tr.Store(a, 1, 1, 1, 0)
	tr.Store(a, 5, 5, 5, 0)
	if _, err := m.PartialCommit(3); err != nil {
		t.Fatal(err)
	}
	if st := m.Stamp(a, 1); st != NoStamp {
		t.Fatalf("stamp below the bound should be cleared by the rebase, got %d", st)
	}
	if st := m.Stamp(a, 5); st != NoStamp {
		t.Fatalf("stamp above the bound should be cleared by the rebase, got %d", st)
	}
	// A new round's undo only sees the new round's stores.
	tr.Store(a, 6, 6, 2, 0)
	n, err := m.Undo(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("new round undo restored %d, want 1", n)
	}
}

func TestPartialCommitErrors(t *testing.T) {
	a := mem.NewArray("A", 4)
	m := New(a)
	if _, err := m.PartialCommit(0); err == nil {
		t.Fatal("PartialCommit without Checkpoint should fail")
	}
	m.Checkpoint()
	m.SetStampThreshold(4)
	if _, err := m.PartialCommit(2); err == nil {
		t.Fatal("PartialCommit below the stamp threshold should fail")
	}
}

func TestMinStampFrom(t *testing.T) {
	a := mem.NewArray("A", 8)
	m := NewSharded(2, a)
	m.Checkpoint()
	tr := m.Tracker()
	tr.Store(a, 0, 1, 3, 0)
	tr.Store(a, 1, 1, 7, 1)
	tr.Store(a, 2, 1, 12, 0)
	if got := m.MinStampFrom(0); got != 3 {
		t.Fatalf("MinStampFrom(0) = %d, want 3", got)
	}
	if got := m.MinStampFrom(4); got != 7 {
		t.Fatalf("MinStampFrom(4) = %d, want 7", got)
	}
	if got := m.MinStampFrom(13); got != NoStamp {
		t.Fatalf("MinStampFrom(13) = %d, want NoStamp", got)
	}
}

func TestCheckpointReusesBuffers(t *testing.T) {
	a := mem.NewArray("A", 64)
	m := New(a)
	m.Checkpoint()
	first := m.checkpoints[0].Data
	a.Data[3] = 42
	m.Checkpoint()
	if &m.checkpoints[0].Data[0] != &first[0] {
		t.Fatal("second Checkpoint should reuse the buffer")
	}
	if m.checkpoints[0].Data[3] != 42 {
		t.Fatal("reused buffer should hold the fresh snapshot")
	}
}
