//go:build race

package tsmem

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Under speculation a worker's load of a data word can race with
// another worker's store to it: that is exactly the dependence
// violation the PD test exists to detect, and the undo pass discards
// every value the mis-speculated iteration produced.  The recovery
// makes the race benign for the loop's semantics, but the Go memory
// model does not have benign races, and the race detector rightly
// flags the unsynchronized word access.  Under -race the stamped paths
// route data words through atomics so the full speculative machinery —
// violating workloads included — stays testable with the detector on;
// normal builds use the plain accessors in data_norace.go.

func loadData(p *float64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(p))))
}

func storeData(p *float64, v float64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(p)), math.Float64bits(v))
}

func loadDataRange(dst, src []float64) {
	for i := range src {
		dst[i] = loadData(&src[i])
	}
}

func storeDataRange(dst, src []float64) {
	for i := range src {
		storeData(&dst[i], src[i])
	}
}
