package tsmem

import (
	"context"
	"math/rand"
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

// The sharding refactor must be invisible: the sharded Memory's merged
// stamps, undo results and stamped-store counts must be bit-identical
// to the per-element atomic (CAS) baseline on the same store sequence.
// These tests run under -race in CI; the concurrent phase writes
// per-iteration-unique locations (a bijection) so the only sharing is
// the stamp machinery itself, and the sequential phase mixes vpns and
// colliding indices to exercise the cross-shard minimum merge.

func TestShardedStampsMatchAtomicRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(200) + 32
		procs := rng.Intn(8) + 1
		init := make([]float64, n)
		for i := range init {
			init[i] = rng.Float64() * 100
		}
		aSh := mem.FromSlice("A", append([]float64(nil), init...))
		aAt := mem.FromSlice("A", append([]float64(nil), init...))

		msh := NewSharded(procs, aSh)
		mat := NewAtomic(aAt)
		msh.Checkpoint()
		mat.Checkpoint()
		trSh, trAt := msh.Tracker(), mat.Tracker()

		// Concurrent phase: iteration i writes the unique location
		// perm[i] on whatever vpn the DOALL hands it.
		perm := rng.Perm(n)
		sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
			trSh.Store(aSh, perm[i], float64(i)+0.5, i, vpn)
			return sched.Continue
		})
		sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
			trAt.Store(aAt, perm[i], float64(i)+0.5, i, vpn)
			return sched.Continue
		})

		// Sequential phase: colliding indices, shuffled vpns (including
		// out-of-range ones, which fold onto a shard), random iters —
		// the cross-shard minimum must match the CAS minimum exactly.
		for k := 0; k < 3*n; k++ {
			idx := rng.Intn(n)
			iter := rng.Intn(n)
			vpn := rng.Intn(2*procs+1) - procs
			v := rng.Float64()
			trSh.Store(aSh, idx, v, iter, vpn)
			trAt.Store(aAt, idx, v, iter, vpn)
		}

		for idx := 0; idx < n; idx++ {
			if got, want := msh.Stamp(aSh, idx), mat.Stamp(aAt, idx); got != want {
				t.Fatalf("trial %d: stamp[%d] sharded %d != atomic %d (procs=%d)", trial, idx, got, want, procs)
			}
		}
		_, _, _, stSh := msh.Stats()
		_, _, _, stAt := mat.Stats()
		if stSh != stAt {
			t.Fatalf("trial %d: stamped-store count sharded %d != atomic %d", trial, stSh, stAt)
		}

		valid := rng.Intn(n + 1)
		uSh, err := msh.Undo(valid)
		if err != nil {
			t.Fatal(err)
		}
		uAt, err := mat.Undo(valid)
		if err != nil {
			t.Fatal(err)
		}
		if uSh != uAt {
			t.Fatalf("trial %d: undo restored sharded %d != atomic %d", trial, uSh, uAt)
		}
		if !aSh.Equal(aAt) {
			t.Fatalf("trial %d: arrays diverge after Undo(%d)", trial, valid)
		}
	}
}

// The sparse log must agree with the dense sharded memory: after the
// same store sequence, Undo(valid) leaves the array in the same state.
func TestSparseShardedMatchesDenseRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(200) + 32
		procs := rng.Intn(8) + 1
		init := make([]float64, n)
		for i := range init {
			init[i] = rng.Float64() * 100
		}
		aSp := mem.FromSlice("A", append([]float64(nil), init...))
		aDn := mem.FromSlice("A", append([]float64(nil), init...))

		sp := NewSparseSharded(procs)
		dn := NewSharded(procs, aDn)
		dn.Checkpoint()
		trSp, trDn := sp.Tracker(), dn.Tracker()

		perm := rng.Perm(n)
		sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
			trSp.Store(aSp, perm[i], float64(i)+0.25, i, vpn)
			return sched.Continue
		})
		sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
			trDn.Store(aDn, perm[i], float64(i)+0.25, i, vpn)
			return sched.Continue
		})
		for k := 0; k < 2*n; k++ {
			idx := rng.Intn(n)
			iter := rng.Intn(n)
			vpn := rng.Intn(procs)
			v := rng.Float64()
			trSp.Store(aSp, idx, v, iter, vpn)
			trDn.Store(aDn, idx, v, iter, vpn)
		}

		valid := rng.Intn(n + 1)
		uSp := sp.Undo(valid)
		uDn, err := dn.Undo(valid)
		if err != nil {
			t.Fatal(err)
		}
		if uSp != uDn {
			t.Fatalf("trial %d: sparse restored %d, dense %d", trial, uSp, uDn)
		}
		if !aSp.Equal(aDn) {
			t.Fatalf("trial %d: sparse and dense diverge after Undo(%d)", trial, valid)
		}
	}
}

// Batched StoreRange must be semantically identical to element-wise
// stores: same stamps, same data, same undo — including under
// concurrency (each worker owns a disjoint contiguous strip).
func TestStoreRangeMatchesElementwise(t *testing.T) {
	const n, procs, strip = 512, 8, 64
	aR := mem.NewArray("A", n)
	aE := mem.NewArray("A", n)
	mr := NewSharded(procs, aR)
	me := NewSharded(procs, aE)
	mr.Checkpoint()
	me.Checkpoint()
	trR, trE := mr.Tracker().(mem.RangeTracker), me.Tracker()

	sched.ForEachProc(context.Background(), procs, sched.ProcConfig{}, func(vpn int) {
		lo := vpn * strip
		buf := make([]float64, strip)
		for i := range buf {
			buf[i] = float64(lo + i)
		}
		iter := n - lo // varied per worker
		trR.StoreRange(aR, lo, buf, iter, vpn)
		for i := 0; i < strip; i++ {
			trE.Store(aE, lo+i, buf[i], iter, vpn)
		}
	})

	for idx := 0; idx < n; idx++ {
		if mr.Stamp(aR, idx) != me.Stamp(aE, idx) {
			t.Fatalf("stamp[%d]: range %d != element %d", idx, mr.Stamp(aR, idx), me.Stamp(aE, idx))
		}
	}
	if !aR.Equal(aE) {
		t.Fatal("data diverges between range and element-wise stores")
	}
	uR, err := mr.Undo(n / 2)
	if err != nil {
		t.Fatal(err)
	}
	uE, err := me.Undo(n / 2)
	if err != nil {
		t.Fatal(err)
	}
	if uR != uE || !aR.Equal(aE) {
		t.Fatalf("undo diverges: range %d, element %d", uR, uE)
	}
}
