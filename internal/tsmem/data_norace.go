//go:build !race

package tsmem

// Plain data-word accessors for normal builds: these inline to the raw
// load/store/memmove, so the stamped fast paths pay nothing for the
// indirection.  See data_race.go for why they exist.

func loadData(p *float64) float64 { return *p }

func storeData(p *float64, v float64) { *p = v }

func loadDataRange(dst, src []float64) { copy(dst, src) }

func storeDataRange(dst, src []float64) { copy(dst, src) }
