package tsmem

import (
	"fmt"
	"sync"

	"whilepar/internal/mem"
	"whilepar/internal/obs"
)

// SparseMemory is the hash-table variant of the undo scheme suggested in
// Section 4 for arrays with sparse access patterns: instead of cloning
// whole arrays and keeping a stamp per element, it saves, on the first
// store to each location, the overwritten value together with the
// writing iteration.  Memory use is proportional to the number of
// *accessed* elements, not the array extent.
//
// The hash table is sharded by element index to keep concurrent stores
// from serializing on one mutex.
type SparseMemory struct {
	shards [nShards]sparseShard

	// Optional observability hooks (nil-safe).
	obsM *obs.Metrics
	obsT obs.Tracer
}

// SetObs attaches observability hooks: m accumulates tracked/stamped
// store counts and undo/restore counts; t receives undo events.
func (s *SparseMemory) SetObs(mx *obs.Metrics, t obs.Tracer) { s.obsM, s.obsT = mx, t }

const nShards = 16

type sparseShard struct {
	mu sync.Mutex
	m  map[sparseKey]sparseEntry
}

type sparseKey struct {
	arr *mem.Array
	idx int
}

type sparseEntry struct {
	old   float64 // value before the loop's first write
	stamp int64   // minimum iteration that wrote
}

// NewSparse returns an empty sparse undo log.
func NewSparse() *SparseMemory {
	s := &SparseMemory{}
	for i := range s.shards {
		s.shards[i].m = make(map[sparseKey]sparseEntry)
	}
	return s
}

func (s *SparseMemory) shard(idx int) *sparseShard {
	return &s.shards[idx&(nShards-1)]
}

// Tracker returns the mem.Tracker the speculative DOALL uses: stores
// save the overwritten value on first touch and keep the minimum writing
// iteration; loads pass through.
func (s *SparseMemory) Tracker() mem.Tracker { return sparseTracker{s} }

type sparseTracker struct{ s *SparseMemory }

func (t sparseTracker) Load(a *mem.Array, idx, _, _ int) float64 { return a.Data[idx] }

func (t sparseTracker) Store(a *mem.Array, idx int, v float64, iter, _ int) {
	t.s.obsM.TrackedStore()
	sh := t.s.shard(idx)
	k := sparseKey{a, idx}
	sh.mu.Lock()
	e, ok := sh.m[k]
	if !ok {
		sh.m[k] = sparseEntry{old: a.Data[idx], stamp: int64(iter)}
		t.s.obsM.StampedStore()
	} else if int64(iter) < e.stamp {
		e.stamp = int64(iter)
		sh.m[k] = e
	}
	a.Data[idx] = v
	sh.mu.Unlock()
}

// Undo restores every location first written by an iteration >= valid
// (where iterations 0..valid-1 are the valid ones) and returns how many
// locations it restored.
func (s *SparseMemory) Undo(valid int) int {
	ts := obs.Start(s.obsT)
	restored := s.rewind(valid)
	s.obsM.UndoneAdd(restored)
	if s.obsT != nil {
		obs.Span(s.obsT, ts, "undo", "tsmem", 0, map[string]any{"restored": restored, "lastValid": valid})
	}
	return restored
}

func (s *SparseMemory) rewind(valid int) int {
	restored := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			if e.stamp >= int64(valid) {
				k.arr.Data[k.idx] = e.old
				restored++
			}
		}
		sh.mu.Unlock()
	}
	return restored
}

// RestoreAll rewinds every touched location to its pre-loop value (an
// abort's rewind, accounted as a restore rather than an overshoot
// undo).
func (s *SparseMemory) RestoreAll() int {
	ts := obs.Start(s.obsT)
	restored := s.rewind(0)
	s.obsM.RestoreDone()
	if s.obsT != nil {
		obs.Span(s.obsT, ts, "restore-all", "tsmem", 0, map[string]any{"restored": restored})
	}
	return restored
}

// Touched returns how many distinct locations the loop wrote — the
// sparse scheme's memory footprint in entries.
func (s *SparseMemory) Touched() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Reset clears the log for reuse across strips.
func (s *SparseMemory) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = make(map[sparseKey]sparseEntry)
		sh.mu.Unlock()
	}
}

// String summarizes the log for diagnostics.
func (s *SparseMemory) String() string {
	return fmt.Sprintf("SparseMemory(%d touched)", s.Touched())
}
