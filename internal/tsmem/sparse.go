package tsmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"whilepar/internal/mem"
	"whilepar/internal/obs"
)

// SparseMemory is the hash-table variant of the undo scheme suggested in
// Section 4 for arrays with sparse access patterns: instead of cloning
// whole arrays and keeping a stamp per element, it saves, on the first
// store to each location, the overwritten value together with the
// writing iteration.  Memory use is proportional to the number of
// *accessed* elements, not the array extent.
//
// Throughput: stamps are sharded per virtual processor — worker k keeps
// its minimum writing iteration per location in a private map with no
// locking, and the per-location minimum is taken only when Undo needs
// it, after the DOALL barrier.  Only the pre-loop value capture crosses
// workers: the first store to a location publishes the overwritten
// value through a lock-free first-touch (sync.Map.LoadOrStore).  That
// capture is correct because every write to a location is preceded (in
// its own goroutine) by a LoadOrStore on that location, so the
// temporally first LoadOrStore — the one that sticks — read the
// location before any tracked write could have modified it.
// Resets are epoch-tagged like the dense Memory's: every captured
// value and stamp carries the generation that recorded it and is live
// only while that generation is current, so the per-strip Reset is a
// single epoch bump instead of reallocating every map.  A stale entry
// is replaced in place on the next touch; the first-touch argument
// still holds because a loser of the replacement CAS performs its data
// write only after its failed CAS, which is after the winner's read.
type SparseMemory struct {
	procs int
	// old maps sparseKey -> sparseOld: the location's value before the
	// current epoch's first write.  First LoadOrStore (or first stale-
	// entry CAS) of the epoch wins.
	old *sync.Map
	// stamps[k] is worker k's private minimum-iteration map.
	stamps []map[sparseKey]sparseStamp
	// touchedKeys[k] journals the locations whose pre-value capture
	// worker k won this epoch — the sparse analogue of the dense
	// layout's first-touch journals.  Exactly one worker wins each
	// location's capture per epoch (the LoadOrStore/CAS winner), so
	// the union of the journals is a duplicate-free list of this
	// epoch's captured set, and rewind can walk it directly instead of
	// ranging over every entry the map has accumulated across all
	// epochs.  Single-writer per slot, truncated on Reset.
	touchedKeys [][]sparseKey
	touched     atomic.Int64 // distinct locations captured this epoch
	// epoch is the current generation; entries tagged with an older
	// one are stale and treated as absent.  uint64, so no wrap
	// handling is needed (unlike the dense tags, sized per element).
	epoch uint64
	// explicit disables epoch tagging: Reset reallocates the maps (the
	// pre-epoch scheme), kept as the equivalence oracle.
	explicit bool

	// Optional observability hooks (nil-safe).
	obsM *obs.Metrics
	obsT obs.Tracer
}

// sparseOld is one captured pre-loop value, tagged with its epoch.
type sparseOld struct {
	ep  uint64
	val float64
}

// sparseStamp is one worker's minimum writing iteration, tagged with
// its epoch.
type sparseStamp struct {
	ep   uint64
	iter int64
}

// SetObs attaches observability hooks: m accumulates tracked/stamped
// store counts and undo/restore counts; t receives undo events.
func (s *SparseMemory) SetObs(mx *obs.Metrics, t obs.Tracer) { s.obsM, s.obsT = mx, t }

type sparseKey struct {
	arr *mem.Array
	idx int
}

// NewSparse returns an empty single-worker sparse undo log; parallel
// executions must size it with NewSparseSharded.
func NewSparse() *SparseMemory { return NewSparseSharded(1) }

// NewSparseSharded returns an empty sparse undo log whose stamp maps
// are sharded for procs virtual processors: worker k records its
// minimum writing iterations in its own single-writer map.
func NewSparseSharded(procs int) *SparseMemory {
	return newSparseSharded(procs, false)
}

// NewSparseShardedExplicit is NewSparseSharded with epoch tagging
// disabled: Reset reallocates every map instead of bumping the
// generation.  Retained as the equivalence oracle for the O(1) reset.
func NewSparseShardedExplicit(procs int) *SparseMemory {
	return newSparseSharded(procs, true)
}

func newSparseSharded(procs int, explicit bool) *SparseMemory {
	if procs < 1 {
		procs = 1
	}
	s := &SparseMemory{procs: procs, explicit: explicit, epoch: 1, old: &sync.Map{}}
	s.stamps = make([]map[sparseKey]sparseStamp, procs)
	for k := range s.stamps {
		s.stamps[k] = make(map[sparseKey]sparseStamp)
	}
	if !explicit {
		s.touchedKeys = make([][]sparseKey, procs)
	}
	return s
}

// slot folds a virtual processor number onto a stamp-map index.
func (s *SparseMemory) slot(vpn int) int {
	if vpn >= 0 && vpn < s.procs {
		return vpn
	}
	return ((vpn % s.procs) + s.procs) % s.procs
}

// Tracker returns the mem.Tracker the speculative DOALL uses: stores
// save the overwritten value on first touch and keep the minimum writing
// iteration in the worker's private map; loads pass through.  The
// tracker also implements mem.RangeTracker for batched strips.
func (s *SparseMemory) Tracker() mem.Tracker { return sparseTracker{s} }

type sparseTracker struct{ s *SparseMemory }

func (t sparseTracker) Load(a *mem.Array, idx, _, _ int) float64 { return loadData(&a.Data[idx]) }

func (t sparseTracker) Store(a *mem.Array, idx int, v float64, iter, vpn int) {
	t.s.obsM.TrackedStore()
	t.s.store(a, idx, v, iter, vpn)
}

func (s *SparseMemory) store(a *mem.Array, idx int, v float64, iter, vpn int) {
	k := sparseKey{a, idx}
	kslot := s.slot(vpn)
	// Capture the pre-loop value: the read must precede the LoadOrStore
	// (see the type comment for why the first-touch winner is sound).
	cur := loadData(&a.Data[idx])
	entry := sparseOld{ep: s.epoch, val: cur}
	if prev, loaded := s.old.LoadOrStore(k, entry); !loaded {
		s.captured(kslot, k)
	} else if prev.(sparseOld).ep != s.epoch {
		// Stale capture from an earlier strip: replace it in place.
		// CAS so the temporally first replacer of THIS epoch wins —
		// any loser writes its data only after its CAS fails, i.e.
		// after the winner's pre-value read, so the winner's capture
		// predates every tracked write of the epoch.
		if s.old.CompareAndSwap(k, prev, entry) {
			s.captured(kslot, k)
		}
	}
	st := s.stamps[kslot]
	if prev, ok := st[k]; !ok || prev.ep != s.epoch || int64(iter) < prev.iter {
		st[k] = sparseStamp{ep: s.epoch, iter: int64(iter)}
	}
	storeData(&a.Data[idx], v)
}

// captured records one won pre-value capture: the winning worker
// journals the key (its slot is single-writer, so no locking) and the
// shared touched counter moves.
func (s *SparseMemory) captured(kslot int, k sparseKey) {
	if s.touchedKeys != nil {
		s.touchedKeys[kslot] = append(s.touchedKeys[kslot], k)
	}
	s.touched.Add(1)
	s.obsM.StampedStore()
}

// LoadRange copies [lo, hi) of a into dst with one interposition.
func (t sparseTracker) LoadRange(a *mem.Array, lo, hi int, dst []float64, _, _ int) {
	t.s.obsM.BatchedRange(hi - lo)
	loadDataRange(dst, a.Data[lo:hi])
}

// StoreRange performs len(src) tracked stores with one interposition.
func (t sparseTracker) StoreRange(a *mem.Array, lo int, src []float64, iter, vpn int) {
	t.s.obsM.TrackedStoresAdd(len(src))
	t.s.obsM.BatchedRange(len(src))
	for k, v := range src {
		t.s.store(a, lo+k, v, iter, vpn)
	}
}

// minStamp merges the per-worker maps for one location.  Call only
// after the parallel section's barrier.
func (s *SparseMemory) minStamp(k sparseKey) int64 {
	min := NoStamp
	for _, st := range s.stamps {
		if v, ok := st[k]; ok && v.ep == s.epoch && (min == NoStamp || v.iter < min) {
			min = v.iter
		}
	}
	return min
}

// Undo restores every location first written by an iteration >= valid
// (where iterations 0..valid-1 are the valid ones) and returns how many
// locations it restored.  It merges the per-worker stamp maps, so it
// must only run after the parallel section completes.
func (s *SparseMemory) Undo(valid int) int {
	ts := obs.Start(s.obsT)
	restored := s.rewind(valid)
	s.obsM.UndoneAdd(restored)
	if s.obsT != nil {
		obs.Span(s.obsT, ts, "undo", "tsmem", 0, map[string]any{"restored": restored, "lastValid": valid})
	}
	return restored
}

func (s *SparseMemory) rewind(valid int) int {
	restored := 0
	if s.touchedKeys != nil {
		// Epoch mode: the capture journals list exactly this epoch's
		// touched set (duplicate-free — one winner per key), so the
		// rewind is O(touched this epoch), not O(all entries the map
		// has accumulated across strips).
		for _, keys := range s.touchedKeys {
			for _, k := range keys {
				val, ok := s.old.Load(k)
				if !ok {
					continue
				}
				po := val.(sparseOld)
				if po.ep != s.epoch {
					continue
				}
				if st := s.minStamp(k); st != NoStamp && st >= int64(valid) {
					k.arr.Data[k.idx] = po.val
					restored++
				}
			}
		}
	} else {
		// Explicit oracle: maps are reallocated per Reset, so every
		// entry is current and a full Range is the touched set.
		s.old.Range(func(key, val any) bool {
			po := val.(sparseOld)
			if po.ep != s.epoch {
				return true // stale capture from a reset-away strip
			}
			k := key.(sparseKey)
			if st := s.minStamp(k); st != NoStamp && st >= int64(valid) {
				k.arr.Data[k.idx] = po.val
				restored++
			}
			return true
		})
	}
	if s.procs > 1 {
		s.obsM.ShardMergeDone(s.procs, int(s.touched.Load()))
	}
	return restored
}

// RestoreAll rewinds every touched location to its pre-loop value (an
// abort's rewind, accounted as a restore rather than an overshoot
// undo).
func (s *SparseMemory) RestoreAll() int {
	ts := obs.Start(s.obsT)
	restored := s.rewind(0)
	s.obsM.RestoreDone()
	if s.obsT != nil {
		obs.Span(s.obsT, ts, "restore-all", "tsmem", 0, map[string]any{"restored": restored})
	}
	return restored
}

// Touched returns how many distinct locations the loop wrote — the
// sparse scheme's memory footprint in entries.
func (s *SparseMemory) Touched() int { return int(s.touched.Load()) }

// Stamp returns the merged minimum stamp recorded for a location, or
// NoStamp if the loop never wrote it.  Call only after the parallel
// section completes.
func (s *SparseMemory) Stamp(a *mem.Array, idx int) int64 {
	return s.minStamp(sparseKey{a, idx})
}

// Reset clears the log for reuse across strips.  Must not run
// concurrently with tracked stores.  With epoch tagging (the default)
// it is a single generation bump: stale entries stay allocated and are
// replaced in place when their location is touched again, so a loop
// that revisits the same sparse working set per strip pays no
// reallocation at all.  In explicit mode it reallocates every map.
func (s *SparseMemory) Reset() {
	if s.explicit {
		s.old = &sync.Map{}
		for k := range s.stamps {
			s.stamps[k] = make(map[sparseKey]sparseStamp)
		}
		s.touched.Store(0)
		return
	}
	s.epoch++
	for k := range s.touchedKeys {
		s.touchedKeys[k] = s.touchedKeys[k][:0]
	}
	s.touched.Store(0)
	s.obsM.EpochReset()
}

// String summarizes the log for diagnostics.
func (s *SparseMemory) String() string {
	return fmt.Sprintf("SparseMemory(%d touched)", s.Touched())
}
