package tsmem

import (
	"context"
	"math/rand"
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

// Epoch tagging must be invisible: a Memory whose per-strip reset is a
// generation bump must be indistinguishable — stamps, undo counts,
// array contents — from one that eagerly refills its stamp shards with
// NoStamp (the explicit oracle the constructors expose for exactly this
// comparison).  The randomized scripts below drive both through many
// strips with mixed sequential and concurrent store phases, including
// the uint32 generation wrap-around.

// densePair drives one epoch-tagged Memory and one explicit-clear
// oracle through an identical randomized multi-strip script and fails
// on the first divergence.
func densePair(t *testing.T, rng *rand.Rand, prime func(*Memory)) {
	t.Helper()
	n := 32 + rng.Intn(96)
	procs := 1 + rng.Intn(4)
	aE := mem.NewArray("A", n)
	aX := mem.NewArray("A", n)
	for i := 0; i < n; i++ {
		aE.Data[i] = float64(i)
		aX.Data[i] = float64(i)
	}
	me := NewSharded(procs, aE)
	mx := NewShardedExplicit(procs, aX)
	if prime != nil {
		prime(me)
	}

	strips := 4 + rng.Intn(10)
	for s := 0; s < strips; s++ {
		me.Checkpoint()
		mx.Checkpoint()
		te, tx := me.Tracker(), mx.Tracker()
		base := s * 1000

		// Concurrent phase: each vpn owns a disjoint residue class, so
		// the store set is deterministic and -race sees the real
		// interleaving.
		sched.ForEachProc(context.Background(), procs, sched.ProcConfig{}, func(vpn int) {
			for i := vpn; i < n; i += procs {
				iter := base + i
				te.Store(aE, i, float64(iter), iter, vpn)
			}
		})
		sched.ForEachProc(context.Background(), procs, sched.ProcConfig{}, func(vpn int) {
			for i := vpn; i < n; i += procs {
				iter := base + i
				tx.Store(aX, i, float64(iter), iter, vpn)
			}
		})
		// Sequential phase: colliding indices and shuffled vpns to
		// exercise the cross-shard minimum merge against live epochs.
		for k, stores := 0, rng.Intn(80); k < stores; k++ {
			idx := rng.Intn(n)
			iter := base + rng.Intn(n)
			vpn := rng.Intn(procs)
			v := float64(base + rng.Intn(5000))
			te.Store(aE, idx, v, iter, vpn)
			tx.Store(aX, idx, v, iter, vpn)
		}

		for k := 0; k < 16; k++ {
			idx := rng.Intn(n)
			if g, w := me.Stamp(aE, idx), mx.Stamp(aX, idx); g != w {
				t.Fatalf("strip %d: Stamp[%d] = %d, explicit oracle %d", s, idx, g, w)
			}
		}

		switch rng.Intn(3) {
		case 0: // overshoot undo at a random bound
			bound := base + rng.Intn(n+1)
			ge, err := me.Undo(bound)
			if err != nil {
				t.Fatal(err)
			}
			gx, err := mx.Undo(bound)
			if err != nil {
				t.Fatal(err)
			}
			if ge != gx {
				t.Fatalf("strip %d: Undo(%d) restored %d, explicit oracle %d", s, bound, ge, gx)
			}
		case 1: // abort
			if err := me.RestoreAll(); err != nil {
				t.Fatal(err)
			}
			if err := mx.RestoreAll(); err != nil {
				t.Fatal(err)
			}
		case 2: // partial commit, a fresh round of stores, then undo
			upto := base + rng.Intn(n+1)
			ge, err := me.PartialCommit(upto)
			if err != nil {
				t.Fatal(err)
			}
			gx, err := mx.PartialCommit(upto)
			if err != nil {
				t.Fatal(err)
			}
			if ge != gx {
				t.Fatalf("strip %d: PartialCommit(%d) restored %d, explicit oracle %d", s, upto, ge, gx)
			}
			for k, stores := 0, rng.Intn(30); k < stores; k++ {
				idx := rng.Intn(n)
				iter := upto + rng.Intn(n)
				vpn := rng.Intn(procs)
				v := float64(rng.Intn(5000))
				te.Store(aE, idx, v, iter, vpn)
				tx.Store(aX, idx, v, iter, vpn)
			}
			bound := upto + rng.Intn(n)
			ge, err = me.Undo(bound)
			if err != nil {
				t.Fatal(err)
			}
			gx, err = mx.Undo(bound)
			if err != nil {
				t.Fatal(err)
			}
			if ge != gx {
				t.Fatalf("strip %d: post-commit Undo restored %d, explicit oracle %d", s, ge, gx)
			}
		}

		for i := 0; i < n; i++ {
			if aE.Data[i] != aX.Data[i] {
				t.Fatalf("strip %d: A[%d] = %v, explicit oracle %v", s, i, aE.Data[i], aX.Data[i])
			}
		}
	}
}

func TestEpochResetMatchesExplicitDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		densePair(t, rng, nil)
	}
}

func TestEpochResetSurvivesGenerationWrap(t *testing.T) {
	// Start the epoch counter right below the uint32 ceiling so the
	// per-strip bumps cross zero mid-script: the wrap sweep must make
	// old tags (now numerically *above* the restarted epoch) dead.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		densePair(t, rng, func(m *Memory) { m.epoch = ^uint32(0) - 3 })
	}
}

func TestSparseEpochResetMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 64 + rng.Intn(128)
		procs := 1 + rng.Intn(4)
		aE := mem.NewArray("A", n)
		aX := mem.NewArray("A", n)
		for i := 0; i < n; i++ {
			aE.Data[i] = float64(i)
			aX.Data[i] = float64(i)
		}
		se := NewSparseSharded(procs)
		sx := NewSparseShardedExplicit(procs)
		te, tx := se.Tracker(), sx.Tracker()

		strips := 4 + rng.Intn(10)
		for s := 0; s < strips; s++ {
			base := s * 1000

			// Concurrent disjoint phase (the -race certification), then
			// a sequential colliding phase.
			sched.ForEachProc(context.Background(), procs, sched.ProcConfig{}, func(vpn int) {
				for i := vpn; i < n; i += procs {
					if (i+s)%3 == 0 { // sparse: only some locations touched
						iter := base + i
						te.Store(aE, i, float64(iter), iter, vpn)
					}
				}
			})
			sched.ForEachProc(context.Background(), procs, sched.ProcConfig{}, func(vpn int) {
				for i := vpn; i < n; i += procs {
					if (i+s)%3 == 0 {
						iter := base + i
						tx.Store(aX, i, float64(iter), iter, vpn)
					}
				}
			})
			for k, stores := 0, rng.Intn(60); k < stores; k++ {
				idx := rng.Intn(n)
				iter := base + rng.Intn(n)
				vpn := rng.Intn(procs)
				v := float64(base + rng.Intn(5000))
				te.Store(aE, idx, v, iter, vpn)
				tx.Store(aX, idx, v, iter, vpn)
			}

			if se.Touched() != sx.Touched() {
				t.Fatalf("strip %d: touched %d, explicit oracle %d", s, se.Touched(), sx.Touched())
			}
			for k := 0; k < 16; k++ {
				idx := rng.Intn(n)
				if g, w := se.Stamp(aE, idx), sx.Stamp(aX, idx); g != w {
					t.Fatalf("strip %d: Stamp[%d] = %d, explicit oracle %d", s, idx, g, w)
				}
			}

			if rng.Intn(2) == 0 {
				bound := base + rng.Intn(n+1)
				if ge, gx := se.Undo(bound), sx.Undo(bound); ge != gx {
					t.Fatalf("strip %d: Undo(%d) restored %d, explicit oracle %d", s, bound, ge, gx)
				}
			} else {
				if ge, gx := se.RestoreAll(), sx.RestoreAll(); ge != gx {
					t.Fatalf("strip %d: RestoreAll restored %d, explicit oracle %d", s, ge, gx)
				}
			}
			for i := 0; i < n; i++ {
				if aE.Data[i] != aX.Data[i] {
					t.Fatalf("strip %d: A[%d] = %v, explicit oracle %v", s, i, aE.Data[i], aX.Data[i])
				}
			}

			se.Reset()
			sx.Reset()
			// A dead log: stale entries must be invisible to stamps and
			// rewinds until touched again.
			if se.Touched() != 0 {
				t.Fatalf("strip %d: touched %d after Reset", s, se.Touched())
			}
			if g := se.Stamp(aE, rng.Intn(n)); g != NoStamp {
				t.Fatalf("strip %d: stale stamp %d visible after Reset", s, g)
			}
			if g := se.Undo(0); g != 0 {
				t.Fatalf("strip %d: Undo rewound %d stale entries after Reset", s, g)
			}
		}
	}
}
