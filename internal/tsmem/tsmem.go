// Package tsmem implements the time-stamped memory of Section 4: the
// machinery that lets a speculatively parallelized WHILE loop *undo* the
// work of iterations that overshot the termination condition.
//
// The scheme is the paper's: checkpoint the affected arrays before the
// DOALL, record for every memory location the iteration that wrote it
// during the loop, and, once the last valid iteration is known, restore
// the checkpointed value of every location whose stamp exceeds it.  This
// costs up to three times the loop's own memory (data + checkpoint +
// stamps), which Stats exposes so the resource-controlled strategies of
// Section 8 can react.
//
// The package also provides the write Trail needed when a privatized
// array under test is live after the loop (Section 5.1): a privatized
// location may legitimately be written by several iterations of a valid
// parallel loop, so last-value copy-out must pick, per location, the
// value with the largest stamp not exceeding the last valid iteration.
package tsmem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"whilepar/internal/mem"
	"whilepar/internal/obs"
)

// NoStamp is the stamp value of a location never written in the loop.
const NoStamp = int64(-1)

// Memory tracks a set of managed arrays through one speculative loop
// execution: checkpoint -> (stamped stores during the DOALL) -> undo or
// commit.
type Memory struct {
	arrays      []*mem.Array
	checkpoints []*mem.Array
	stamps      map[*mem.Array][]atomic.Int64
	// threshold is the statistics-enhanced strip-mining cutoff n'_i of
	// Section 8.1: stores by iterations below it are NOT stamped (they
	// are predicted valid).  Undo below the threshold is impossible.
	threshold int
	stamped   atomic.Int64 // stores that recorded a stamp

	// Optional observability hooks (nil-safe).
	obsM *obs.Metrics
	obsT obs.Tracer
}

// SetObs attaches observability hooks: m accumulates tracked/stamped
// store counts, checkpoint words, undo and restore counts; t receives
// checkpoint/undo/restore events.  Either may be nil.  Must be set
// before the speculative execution begins.
func (m *Memory) SetObs(mx *obs.Metrics, t obs.Tracer) { m.obsM, m.obsT = mx, t }

// New creates a Memory over the given arrays.  Checkpoint must be called
// before the speculative execution begins.
func New(arrays ...*mem.Array) *Memory {
	m := &Memory{stamps: make(map[*mem.Array][]atomic.Int64, len(arrays))}
	for _, a := range arrays {
		m.arrays = append(m.arrays, a)
		m.stamps[a] = make([]atomic.Int64, a.Len())
	}
	m.resetStamps()
	return m
}

func (m *Memory) resetStamps() {
	for _, s := range m.stamps {
		for i := range s {
			s[i].Store(NoStamp)
		}
	}
	m.stamped.Store(0)
}

// Checkpoint snapshots every tracked array (the overhead Tb of the cost
// model).  Calling it again discards the previous snapshot.
func (m *Memory) Checkpoint() {
	ts := obs.Start(m.obsT)
	m.checkpoints = m.checkpoints[:0]
	words := 0
	for _, a := range m.arrays {
		m.checkpoints = append(m.checkpoints, a.Clone())
		words += a.Len()
	}
	m.resetStamps()
	m.obsM.CheckpointDone(words)
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "checkpoint", "tsmem", 0, map[string]any{"words": words})
	}
}

// SetStampThreshold enables Section 8.1's statistics-enhanced stamping:
// stores by iterations with index < n are not stamped.  Must be set
// before the parallel execution.  n <= 0 stamps everything.
func (m *Memory) SetStampThreshold(n int) { m.threshold = n }

// Tracker returns the mem.Tracker that the speculative DOALL's
// iterations must use: loads pass through; stores record the writing
// iteration in the location's stamp (keeping the minimum if, due to a
// cross-iteration dependence, several iterations write the same
// location) and then perform the write.
func (m *Memory) Tracker() mem.Tracker { return stampTracker{m} }

type stampTracker struct{ m *Memory }

func (t stampTracker) Load(a *mem.Array, idx, _, _ int) float64 { return a.Data[idx] }

func (t stampTracker) Store(a *mem.Array, idx int, v float64, iter, _ int) {
	t.m.obsM.TrackedStore()
	if iter >= t.m.threshold {
		if s := t.m.stamps[a]; s != nil {
			for {
				cur := s[idx].Load()
				if cur != NoStamp && cur <= int64(iter) {
					break
				}
				if s[idx].CompareAndSwap(cur, int64(iter)) {
					if cur == NoStamp {
						t.m.stamped.Add(1)
						t.m.obsM.StampedStore()
					}
					break
				}
			}
		}
	}
	a.Data[idx] = v
}

// Undo restores, from the checkpoint, every location whose stamp exceeds
// lastValid (i.e. written only by overshot iterations), completing the
// "undo iterations that overshot" step.  It returns the number of
// locations restored.  It fails if Checkpoint was not called, or if
// lastValid falls below the stamp threshold — in that case the stamps
// needed to undo were never recorded and the caller must restore the
// full checkpoint (RestoreAll) and re-execute.
func (m *Memory) Undo(lastValid int) (int, error) {
	if len(m.checkpoints) != len(m.arrays) {
		return 0, fmt.Errorf("tsmem: Undo without Checkpoint")
	}
	if lastValid < m.threshold {
		return 0, fmt.Errorf("tsmem: last valid iteration %d below stamp threshold %d; stamps missing", lastValid, m.threshold)
	}
	ts := obs.Start(m.obsT)
	restored := 0
	for ai, a := range m.arrays {
		cp := m.checkpoints[ai]
		s := m.stamps[a]
		for i := range s {
			if st := s[i].Load(); st != NoStamp && st >= int64(lastValid) {
				// Stamps are zero-based iteration indices; iterations
				// 0..lastValid-1 are valid, so any stamp >= lastValid
				// is overshoot.
				a.Data[i] = cp.Data[i]
				restored++
			}
		}
	}
	m.obsM.UndoneAdd(restored)
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "undo", "tsmem", 0, map[string]any{"restored": restored, "lastValid": lastValid})
	}
	return restored, nil
}

// RestoreAll rewinds every tracked array to its checkpoint (used when a
// PD test fails, or when an exception abandons the parallel execution).
func (m *Memory) RestoreAll() error {
	if len(m.checkpoints) != len(m.arrays) {
		return fmt.Errorf("tsmem: RestoreAll without Checkpoint")
	}
	ts := obs.Start(m.obsT)
	for ai, a := range m.arrays {
		copy(a.Data, m.checkpoints[ai].Data)
	}
	m.obsM.RestoreDone()
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "restore-all", "tsmem", 0, nil)
	}
	return nil
}

// Commit discards checkpoints and stamps after a fully valid execution.
func (m *Memory) Commit() {
	m.checkpoints = nil
	m.resetStamps()
}

// Stamp returns the stamp recorded for a location (NoStamp if unwritten
// or below the threshold).
func (m *Memory) Stamp(a *mem.Array, idx int) int64 {
	s, ok := m.stamps[a]
	if !ok {
		return NoStamp
	}
	return s[idx].Load()
}

// Stats reports the scheme's memory footprint in words: live data,
// checkpoint copies, and stamps — the "as much as three times the actual
// memory" of Section 4 — plus how many stores were stamped.
func (m *Memory) Stats() (dataWords, checkpointWords, stampWords, stampedStores int) {
	for _, a := range m.arrays {
		dataWords += a.Len()
		stampWords += a.Len()
	}
	for _, c := range m.checkpoints {
		checkpointWords += c.Len()
	}
	return dataWords, checkpointWords, stampWords, int(m.stamped.Load())
}

// TrailEntry is one logged write to a live privatized array.
type TrailEntry struct {
	Iter int
	Idx  int
	Val  float64
}

// Trail is the time-stamped log of all writes to a privatized array that
// is live after the loop (Section 5.1).  Each virtual processor appends
// to its own buffer, so recording is contention-free; LastValues merges.
type Trail struct {
	mu   sync.Mutex
	byVP map[int][]TrailEntry
}

// NewTrail returns an empty trail.
func NewTrail() *Trail { return &Trail{byVP: make(map[int][]TrailEntry)} }

// Record logs a write by iteration iter on processor vpn.
func (t *Trail) Record(vpn, iter, idx int, val float64) {
	t.mu.Lock()
	t.byVP[vpn] = append(t.byVP[vpn], TrailEntry{Iter: iter, Idx: idx, Val: val})
	t.mu.Unlock()
}

// Len returns the total number of logged writes.
func (t *Trail) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, es := range t.byVP {
		n += len(es)
	}
	return n
}

// LastValues returns, for every written location, the value carrying the
// largest stamp that does not exceed lastValid-1 — the value the
// sequential loop would have left there.  Locations written only by
// overshot iterations are absent from the result.
func (t *Trail) LastValues(lastValid int) map[int]float64 {
	t.mu.Lock()
	var all []TrailEntry
	for _, es := range t.byVP {
		all = append(all, es...)
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Idx != all[j].Idx {
			return all[i].Idx < all[j].Idx
		}
		return all[i].Iter < all[j].Iter
	})
	out := make(map[int]float64)
	for _, e := range all {
		if e.Iter < lastValid {
			out[e.Idx] = e.Val // sorted ascending by iter: last write wins
		}
	}
	return out
}
