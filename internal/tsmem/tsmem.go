// Package tsmem implements the time-stamped memory of Section 4: the
// machinery that lets a speculatively parallelized WHILE loop *undo* the
// work of iterations that overshot the termination condition.
//
// The scheme is the paper's: checkpoint the affected arrays before the
// DOALL, record for every memory location the iteration that wrote it
// during the loop, and, once the last valid iteration is known, restore
// the checkpointed value of every location whose stamp exceeds it.  This
// costs up to three times the loop's own memory (data + checkpoint +
// stamps), which Stats exposes so the resource-controlled strategies of
// Section 8 can react.
//
// Throughput: the stamp store is the hot path every speculative
// execution funnels each write through, so Memory keeps its stamps
// *sharded per virtual processor*: worker k writes min-stamps into its
// own private slice with plain (non-atomic) loads and stores, and the
// shards are merged into the authoritative per-location minimum only
// after the DOALL's barrier, when Undo/Stamp/Stats first need them.
// This removes all atomic contention (and cache-line ping-pong) from
// the store path at the cost of procs x words of stamp memory — the
// same privatize-then-reduce trade the paper itself applies to the PD
// test's shadow structures.  AtomicMemory (atomic.go) preserves the
// per-element CAS scheme as the comparison baseline.
//
// Checkpoint, RestoreAll and the undo scan are parallelized across the
// same worker count, so the Tb/Ta overheads of the cost model shrink
// with processors too.
//
// Stamps are epoch-tagged: each shard slot carries the generation that
// wrote it and is live only while that generation is current, so the
// per-strip stamp reset of a strip-mined execution is one epoch bump —
// O(1) — instead of an O(procs x n) NoStamp sweep.  NewShardedExplicit
// keeps the eager-sweep scheme as the equivalence oracle and baseline.
//
// The package also provides the write Trail needed when a privatized
// array under test is live after the loop (Section 5.1): a privatized
// location may legitimately be written by several iterations of a valid
// parallel loop, so last-value copy-out must pick, per location, the
// value with the largest stamp not exceeding the last valid iteration.
package tsmem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"whilepar/internal/mem"
	"whilepar/internal/obs"
)

// NoStamp is the stamp value of a location never written in the loop.
const NoStamp = int64(-1)

// minSpan is the smallest per-worker chunk worth spawning a goroutine
// for in the parallel copy/merge helpers; below it the work runs inline.
const minSpan = 4096

// parallelDo splits [0, n) into at most workers contiguous spans and
// runs f on each concurrently, waiting for all.  Small ranges run
// inline.  It returns the number of workers actually used.
func parallelDo(workers, n int, f func(lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	if workers > n/minSpan {
		workers = n / minSpan
	}
	if workers <= 1 {
		f(0, n)
		return 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	span := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * span
		hi := lo + span
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return workers
}

// Memory tracks a set of managed arrays through one speculative loop
// execution: checkpoint -> (stamped stores during the DOALL) -> undo or
// commit.
//
// Stamps are sharded per virtual processor: shard k is written only by
// the worker running as vpn k (single-writer slots, no atomics), and
// the shards are merged lazily after the parallel section's barrier.
// Callers must size the shards with NewSharded(procs, ...) to at least
// the number of concurrent workers; stores from an out-of-range vpn are
// folded onto shard vpn mod procs, which is only safe when that vpn is
// not concurrent with the shard's owner.
type Memory struct {
	arrays      []*mem.Array
	checkpoints []*mem.Array
	procs       int
	// stamps[a][k][i] is worker k's minimum writing iteration for
	// location i of array a (NoStamp if it never wrote it).
	stamps map[*mem.Array][][]int64
	// epochs[a][k][i] tags stamps[a][k][i] with the stamp generation
	// that wrote it: a stamp is live iff its tag equals the Memory's
	// current epoch.  Bumping the epoch therefore invalidates every
	// stamp at once — the O(1) reset a strip-mined loop performs
	// between strips — without sweeping procs x n words.
	epochs map[*mem.Array][][]uint32
	// epoch is the current stamp generation.  It starts at 1 so the
	// zeroed tags of a fresh allocation are already stale.
	epoch uint32
	// explicit disables epoch tagging: resets eagerly refill every
	// shard with NoStamp and the epoch never moves.  Kept as the
	// equivalence oracle for the O(1) reset (NewShardedExplicit).
	explicit bool
	// merged[a][i] is the cross-shard minimum, computed after the
	// barrier by mergeStamps; mergedOK guards the lazy merge.  Stamping
	// stores clear it (merged is a copy, not an alias, so a store after
	// a merge would otherwise read back a stale minimum); the flag is
	// atomic only for that rare cross-worker clear — the hot path pays
	// one read of a rarely-written cache line.
	merged   map[*mem.Array][]int64
	mergedOK atomic.Bool
	stamped  int // distinct stamped locations, counted at merge
	// threshold is the statistics-enhanced strip-mining cutoff n'_i of
	// Section 8.1: stores by iterations below it are NOT stamped (they
	// are predicted valid).  Undo below the threshold is impossible.
	threshold int

	// Optional observability hooks (nil-safe).
	obsM *obs.Metrics
	obsT obs.Tracer
}

// SetObs attaches observability hooks: m accumulates tracked/stamped
// store counts, checkpoint words, shard merges, undo and restore
// counts; t receives checkpoint/undo/restore events.  Either may be
// nil.  Must be set before the speculative execution begins.
func (m *Memory) SetObs(mx *obs.Metrics, t obs.Tracer) { m.obsM, m.obsT = mx, t }

// New creates a single-worker Memory over the given arrays — the shape
// sequential re-execution and tests use.  Parallel executions must use
// NewSharded so every virtual processor owns a stamp shard.  Checkpoint
// must be called before the speculative execution begins.
func New(arrays ...*mem.Array) *Memory { return NewSharded(1, arrays...) }

// NewSharded creates a Memory whose stamps are sharded for procs
// virtual processors: worker k records stamps in its own single-writer
// shard, eliminating atomic contention on shared stamp words.  Stamps
// are epoch-tagged, so the per-strip reset a Checkpoint performs is a
// single generation bump rather than an O(procs x n) sweep.
// Checkpoint must be called before the speculative execution begins.
func NewSharded(procs int, arrays ...*mem.Array) *Memory {
	return newSharded(procs, false, arrays...)
}

// NewShardedExplicit is NewSharded with epoch tagging disabled: every
// reset eagerly refills the shards with NoStamp, the pre-epoch scheme.
// It is retained as the equivalence oracle for the O(1) epoch reset
// and as its benchmark baseline.
func NewShardedExplicit(procs int, arrays ...*mem.Array) *Memory {
	return newSharded(procs, true, arrays...)
}

func newSharded(procs int, explicit bool, arrays ...*mem.Array) *Memory {
	if procs < 1 {
		procs = 1
	}
	m := &Memory{
		procs:    procs,
		explicit: explicit,
		stamps:   make(map[*mem.Array][][]int64, len(arrays)),
		epochs:   make(map[*mem.Array][][]uint32, len(arrays)),
		merged:   make(map[*mem.Array][]int64, len(arrays)),
	}
	for _, a := range arrays {
		m.arrays = append(m.arrays, a)
		sh := make([][]int64, procs)
		eps := make([][]uint32, procs)
		for k := range sh {
			sh[k] = make([]int64, a.Len())
			eps[k] = make([]uint32, a.Len())
		}
		m.stamps[a] = sh
		m.epochs[a] = eps
	}
	if explicit {
		// The epoch never moves in explicit mode: pre-mark every tag
		// live once so the store path's tag check always passes and
		// the NoStamp refill below carries the full reset.
		m.epoch = 1
		for _, eps := range m.epochs {
			for _, ep := range eps {
				for i := range ep {
					ep[i] = 1
				}
			}
		}
	}
	m.resetStamps()
	return m
}

// Procs returns the shard count the Memory was sized for.
func (m *Memory) Procs() int { return m.procs }

func (m *Memory) resetStamps() {
	if m.explicit {
		for _, sh := range m.stamps {
			for _, s := range sh {
				parallelDo(m.procs, len(s), func(lo, hi int) {
					s := s[lo:hi]
					for i := range s {
						s[i] = NoStamp
					}
				})
			}
		}
	} else {
		m.epoch++
		if m.epoch == 0 {
			// uint32 wrap: tags written 2^32 generations ago would read
			// as live again, so pay one full sweep to zero them and
			// restart at 1 (zero is never a live epoch).
			for _, eps := range m.epochs {
				for _, ep := range eps {
					parallelDo(m.procs, len(ep), func(lo, hi int) {
						ep := ep[lo:hi]
						for i := range ep {
							ep[i] = 0
						}
					})
				}
			}
			m.epoch = 1
		}
		m.obsM.EpochReset()
	}
	m.mergedOK.Store(false)
	m.stamped = 0
}

// Checkpoint snapshots every tracked array (the overhead Tb of the cost
// model), splitting the copy across the Memory's workers.  Calling it
// again discards the previous snapshot, reusing its buffers — so the
// re-baselining a partial commit performs every recovery round pays
// only the copy, not an allocation.
func (m *Memory) Checkpoint() {
	ts := obs.Start(m.obsT)
	reuse := len(m.checkpoints) == len(m.arrays)
	if !reuse {
		m.checkpoints = m.checkpoints[:0]
	}
	words, maxWorkers := 0, 1
	for ai, a := range m.arrays {
		var cp *mem.Array
		if reuse && m.checkpoints[ai].Len() == a.Len() {
			cp = m.checkpoints[ai]
		} else {
			cp = &mem.Array{Name: a.Name, Data: make([]float64, a.Len())}
			if reuse {
				m.checkpoints[ai] = cp
			}
		}
		src := a.Data
		w := parallelDo(m.procs, len(src), func(lo, hi int) {
			copy(cp.Data[lo:hi], src[lo:hi])
		})
		if w > maxWorkers {
			maxWorkers = w
		}
		if !reuse {
			m.checkpoints = append(m.checkpoints, cp)
		}
		words += a.Len()
	}
	m.resetStamps()
	m.obsM.CheckpointDone(words)
	if maxWorkers > 1 {
		m.obsM.ParallelCopy(maxWorkers)
	}
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "checkpoint", "tsmem", 0, map[string]any{"words": words, "workers": maxWorkers})
	}
}

// SetStampThreshold enables Section 8.1's statistics-enhanced stamping:
// stores by iterations with index < n are not stamped.  Must be set
// before the parallel execution.  n <= 0 stamps everything.
func (m *Memory) SetStampThreshold(n int) { m.threshold = n }

// Tracker returns the mem.Tracker that the speculative DOALL's
// iterations must use: loads pass through; stores record the writing
// iteration in the executing worker's private stamp shard (keeping the
// per-shard minimum; the cross-shard minimum is taken at the merge) and
// then perform the write.  The tracker also implements
// mem.RangeTracker, so strip-mined bodies pay one interposition per
// contiguous range.
func (m *Memory) Tracker() mem.Tracker { return stampTracker{m} }

// slot folds a virtual processor number onto a shard index.
func (m *Memory) slot(vpn int) int {
	if vpn >= 0 && vpn < m.procs {
		return vpn
	}
	return ((vpn % m.procs) + m.procs) % m.procs
}

type stampTracker struct{ m *Memory }

func (t stampTracker) Load(a *mem.Array, idx, _, _ int) float64 { return a.Data[idx] }

func (t stampTracker) Store(a *mem.Array, idx int, v float64, iter, vpn int) {
	m := t.m
	m.obsM.TrackedStore()
	if iter >= m.threshold {
		if sh := m.stamps[a]; sh != nil {
			if m.mergedOK.Load() {
				m.mergedOK.Store(false)
			}
			k := m.slot(vpn)
			s, ep := sh[k], m.epochs[a][k]
			if ep[idx] != m.epoch {
				// Stale generation: whatever stamp is there belongs to
				// an earlier strip.  First touch of this epoch.
				ep[idx] = m.epoch
				s[idx] = int64(iter)
			} else if cur := s[idx]; cur == NoStamp || int64(iter) < cur {
				s[idx] = int64(iter)
			}
		}
	}
	a.Data[idx] = v
}

// LoadRange copies [lo, hi) of a into dst: loads pass through, one
// interposition for the whole strip.
func (t stampTracker) LoadRange(a *mem.Array, lo, hi int, dst []float64, _, _ int) {
	t.m.obsM.BatchedRange(hi - lo)
	copy(dst, a.Data[lo:hi])
}

// StoreRange performs len(src) stamped stores with a single
// interposition: the stamp updates hit the worker's private shard with
// plain writes, then the data is copied in one memmove.
func (t stampTracker) StoreRange(a *mem.Array, lo int, src []float64, iter, vpn int) {
	m := t.m
	n := len(src)
	m.obsM.TrackedStoresAdd(n)
	m.obsM.BatchedRange(n)
	if iter >= m.threshold {
		if sh := m.stamps[a]; sh != nil {
			if m.mergedOK.Load() {
				m.mergedOK.Store(false)
			}
			k := m.slot(vpn)
			s, ep := sh[k], m.epochs[a][k]
			it64 := int64(iter)
			for i := lo; i < lo+n; i++ {
				if ep[i] != m.epoch {
					ep[i] = m.epoch
					s[i] = it64
				} else if cur := s[i]; cur == NoStamp || it64 < cur {
					s[i] = it64
				}
			}
		}
	}
	copy(a.Data[lo:lo+n], src)
}

// mergeStamps combines the per-worker shards into the authoritative
// per-location minimum stamp.  It must be called only after the
// parallel section has completed (the DOALL barrier orders the shard
// writes before it); Undo, Stamp and Stats call it lazily.  The merge
// itself is a DOALL over locations, split across the Memory's workers.
func (m *Memory) mergeStamps() {
	if m.mergedOK.Load() {
		return
	}
	words, stamped := 0, 0
	for _, a := range m.arrays {
		sh := m.stamps[a]
		eps := m.epochs[a]
		n := a.Len()
		words += n
		mg := m.merged[a]
		if len(mg) != n {
			mg = make([]int64, n)
			m.merged[a] = mg
		}
		var mu sync.Mutex
		parallelDo(m.procs, n, func(lo, hi int) {
			count := 0
			for i := lo; i < hi; i++ {
				min := NoStamp
				for k := 0; k < m.procs; k++ {
					if eps[k][i] != m.epoch {
						// Stale tag: a stamp from an earlier strip that
						// the O(1) reset never swept.  Not a write.
						continue
					}
					if st := sh[k][i]; st != NoStamp && (min == NoStamp || st < min) {
						min = st
					}
				}
				mg[i] = min
				if min != NoStamp {
					count++
				}
			}
			mu.Lock()
			stamped += count
			mu.Unlock()
		})
	}
	m.stamped = stamped
	m.mergedOK.Store(true)
	m.obsM.StampedStoresAdd(stamped)
	m.obsM.ShardMergeDone(m.procs, words)
}

// Undo restores, from the checkpoint, every location whose stamp exceeds
// lastValid (i.e. written only by overshot iterations), completing the
// "undo iterations that overshot" step.  The scan is parallelized across
// the Memory's workers.  It returns the number of locations restored.
// It fails if Checkpoint was not called, or if lastValid falls below the
// stamp threshold — in that case the stamps needed to undo were never
// recorded and the caller must restore the full checkpoint (RestoreAll)
// and re-execute.
func (m *Memory) Undo(lastValid int) (int, error) {
	if len(m.checkpoints) != len(m.arrays) {
		return 0, fmt.Errorf("tsmem: Undo without Checkpoint")
	}
	if lastValid < m.threshold {
		return 0, fmt.Errorf("tsmem: last valid iteration %d below stamp threshold %d; stamps missing", lastValid, m.threshold)
	}
	ts := obs.Start(m.obsT)
	m.mergeStamps()
	restored := 0
	for ai, a := range m.arrays {
		cp := m.checkpoints[ai]
		s := m.merged[a]
		var mu sync.Mutex
		parallelDo(m.procs, len(s), func(lo, hi int) {
			count := 0
			for i := lo; i < hi; i++ {
				if st := s[i]; st != NoStamp && st >= int64(lastValid) {
					// Stamps are zero-based iteration indices; iterations
					// 0..lastValid-1 are valid, so any stamp >= lastValid
					// is overshoot.
					a.Data[i] = cp.Data[i]
					count++
				}
			}
			mu.Lock()
			restored += count
			mu.Unlock()
		})
	}
	m.obsM.UndoneAdd(restored)
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "undo", "tsmem", 0, map[string]any{"restored": restored, "lastValid": lastValid})
	}
	return restored, nil
}

// PartialCommit keeps the work of iterations below upto and rewinds the
// rest: every location whose (minimum) write stamp is >= upto is
// restored from the checkpoint, and the Memory is then re-baselined —
// the surviving state becomes the new checkpoint and all stamps are
// cleared — so a following re-speculation round undoes only its own
// stores.  It returns the number of locations restored.
//
// Safety: with minimum stamps a location written by both a kept and an
// undone iteration cannot be selectively rewound, so upto must be
// chosen so that no location mixes writers across the boundary.  The PD
// test's Result.FirstViolation bound has exactly that property: every
// writer of every violating element is at or beyond it, and a location
// written on both sides of the boundary by *valid* iterations would
// itself be a violating element (output dependence).  Like Undo, it
// fails when no checkpoint exists or when upto falls below the stamp
// threshold (the stamps needed were never recorded).
func (m *Memory) PartialCommit(upto int) (int, error) {
	if len(m.checkpoints) != len(m.arrays) {
		return 0, fmt.Errorf("tsmem: PartialCommit without Checkpoint")
	}
	if upto < m.threshold {
		return 0, fmt.Errorf("tsmem: partial-commit bound %d below stamp threshold %d; stamps missing", upto, m.threshold)
	}
	ts := obs.Start(m.obsT)
	m.mergeStamps()
	restored := 0
	for ai, a := range m.arrays {
		cp := m.checkpoints[ai]
		s := m.merged[a]
		var mu sync.Mutex
		parallelDo(m.procs, len(s), func(lo, hi int) {
			count := 0
			for i := lo; i < hi; i++ {
				if st := s[i]; st != NoStamp && st >= int64(upto) {
					a.Data[i] = cp.Data[i]
					count++
				}
			}
			mu.Lock()
			restored += count
			mu.Unlock()
		})
	}
	m.obsM.SuffixUndoneAdd(restored)
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "partial-commit", "tsmem", 0, map[string]any{"restored": restored, "upto": upto})
	}
	// Re-baseline: the prefix's effects are now permanent; the next
	// round's rollback target is the state we just produced.  The
	// threshold is spent — the new round's stores must all be stamped.
	m.threshold = 0
	m.Checkpoint()
	return restored, nil
}

// MinStampFrom returns the smallest recorded stamp at or above from
// across all tracked arrays, or NoStamp when nothing at or above from
// was written.  Like Stamp it merges the shards, so it must only be
// called after the parallel section completes.
func (m *Memory) MinStampFrom(from int) int64 {
	m.mergeStamps()
	min := NoStamp
	for _, a := range m.arrays {
		for _, st := range m.merged[a] {
			if st != NoStamp && st >= int64(from) && (min == NoStamp || st < min) {
				min = st
			}
		}
	}
	return min
}

// RestoreAll rewinds every tracked array to its checkpoint (used when a
// PD test fails, or when an exception abandons the parallel execution),
// splitting the copy across the Memory's workers.
func (m *Memory) RestoreAll() error {
	if len(m.checkpoints) != len(m.arrays) {
		return fmt.Errorf("tsmem: RestoreAll without Checkpoint")
	}
	ts := obs.Start(m.obsT)
	maxWorkers := 1
	for ai, a := range m.arrays {
		cp := m.checkpoints[ai]
		dst := a.Data
		w := parallelDo(m.procs, len(dst), func(lo, hi int) {
			copy(dst[lo:hi], cp.Data[lo:hi])
		})
		if w > maxWorkers {
			maxWorkers = w
		}
	}
	m.obsM.RestoreDone()
	if maxWorkers > 1 {
		m.obsM.ParallelCopy(maxWorkers)
	}
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "restore-all", "tsmem", 0, map[string]any{"workers": maxWorkers})
	}
	return nil
}

// Commit discards checkpoints and stamps after a fully valid execution.
func (m *Memory) Commit() {
	m.checkpoints = nil
	m.resetStamps()
}

// Stamp returns the stamp recorded for a location (NoStamp if unwritten
// or below the threshold).  It merges the per-worker shards on first
// use, so it must only be called after the parallel section completes.
func (m *Memory) Stamp(a *mem.Array, idx int) int64 {
	if _, ok := m.stamps[a]; !ok {
		return NoStamp
	}
	m.mergeStamps()
	return m.merged[a][idx]
}

// Stats reports the scheme's memory footprint in words: live data,
// checkpoint copies, and stamps — the "as much as three times the actual
// memory" of Section 4, where the stamp term is now procs shards wide —
// plus how many distinct locations were stamped.  Call it after the
// parallel section (it merges the shards).
func (m *Memory) Stats() (dataWords, checkpointWords, stampWords, stampedStores int) {
	for _, a := range m.arrays {
		dataWords += a.Len()
		stampWords += a.Len() * m.procs
	}
	for _, c := range m.checkpoints {
		checkpointWords += c.Len()
	}
	m.mergeStamps()
	return dataWords, checkpointWords, stampWords, m.stamped
}

// TrailEntry is one logged write to a live privatized array.
type TrailEntry struct {
	Iter int
	Idx  int
	Val  float64
}

// Trail is the time-stamped log of all writes to a privatized array that
// is live after the loop (Section 5.1).  Each virtual processor appends
// to its own buffer, so recording is contention-free; LastValues merges.
type Trail struct {
	mu   sync.Mutex
	byVP map[int][]TrailEntry
}

// NewTrail returns an empty trail.
func NewTrail() *Trail { return &Trail{byVP: make(map[int][]TrailEntry)} }

// Record logs a write by iteration iter on processor vpn.
func (t *Trail) Record(vpn, iter, idx int, val float64) {
	t.mu.Lock()
	t.byVP[vpn] = append(t.byVP[vpn], TrailEntry{Iter: iter, Idx: idx, Val: val})
	t.mu.Unlock()
}

// Len returns the total number of logged writes.
func (t *Trail) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, es := range t.byVP {
		n += len(es)
	}
	return n
}

// LastValues returns, for every written location, the value carrying the
// largest stamp that does not exceed lastValid-1 — the value the
// sequential loop would have left there.  Locations written only by
// overshot iterations are absent from the result.
func (t *Trail) LastValues(lastValid int) map[int]float64 {
	t.mu.Lock()
	var all []TrailEntry
	for _, es := range t.byVP {
		all = append(all, es...)
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Idx != all[j].Idx {
			return all[i].Idx < all[j].Idx
		}
		return all[i].Iter < all[j].Iter
	})
	out := make(map[int]float64)
	for _, e := range all {
		if e.Iter < lastValid {
			out[e.Idx] = e.Val // sorted ascending by iter: last write wins
		}
	}
	return out
}
