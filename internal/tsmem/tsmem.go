// Package tsmem implements the time-stamped memory of Section 4: the
// machinery that lets a speculatively parallelized WHILE loop *undo* the
// work of iterations that overshot the termination condition.
//
// The scheme is the paper's: checkpoint the affected arrays before the
// DOALL, record for every memory location the iteration that wrote it
// during the loop, and, once the last valid iteration is known, restore
// the checkpointed value of every location whose stamp exceeds it.  This
// costs up to three times the loop's own memory (data + checkpoint +
// stamps), which Stats exposes so the resource-controlled strategies of
// Section 8 can react.
//
// Throughput: the stamp store is the hot path every speculative
// execution funnels each write through, so Memory keeps its stamps
// *sharded per virtual processor*: worker k writes min-stamps into its
// own private slice with plain (non-atomic) loads and stores, and the
// shards are merged into the authoritative per-location minimum only
// after the DOALL's barrier, when Undo/Stamp/Stats first need them.
// This removes all atomic contention (and cache-line ping-pong) from
// the store path at the cost of procs x words of stamp memory — the
// same privatize-then-reduce trade the paper itself applies to the PD
// test's shadow structures.  AtomicMemory (atomic.go) preserves the
// per-element CAS scheme as the comparison baseline.
//
// Strip-mining throughput: every per-strip cost is proportional to the
// strip's writes, not the array length.
//
//   - Stamps are epoch-tagged: each shard slot carries the generation
//     that wrote it and is live only while that generation is current,
//     so the per-strip stamp reset is one epoch bump — O(1) — instead
//     of an O(procs x n) NoStamp sweep.  NewShardedExplicit keeps the
//     eager-sweep scheme as the equivalence oracle and baseline.
//   - Each shard journals the locations it first-touches per epoch, so
//     the post-barrier shard merge (and everything downstream: Undo,
//     PartialCommit, Stamp, Stats) visits only written locations.
//   - The journals double as write-sets (WriteSet), which lets an
//     engine re-arm the checkpoint incrementally (Rearm): instead of
//     recopying every array per strip, only the locations the previous
//     strip dirtied are refreshed — O(writes) per strip.
//   - Buffers come from a shared sync.Pool arena (internal/arena) and
//     go back via Release, so repeated engine invocations recycle their
//     checkpoint/stamp/tag memory instead of reallocating it.
//
// Checkpoint, RestoreAll and the undo scan are parallelized across the
// same worker count, so the Tb/Ta overheads of the cost model shrink
// with processors too.
//
// The package also provides the write Trail needed when a privatized
// array under test is live after the loop (Section 5.1): a privatized
// location may legitimately be written by several iterations of a valid
// parallel loop, so last-value copy-out must pick, per location, the
// value with the largest stamp not exceeding the last valid iteration.
package tsmem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"whilepar/internal/arena"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
)

// NoStamp is the stamp value of a location never written in the loop.
const NoStamp = int64(-1)

// minSpan is the smallest per-worker chunk worth spawning a goroutine
// for in the parallel copy/merge helpers; below it the work runs inline.
const minSpan = 4096

// parallelDo splits [0, n) into at most workers contiguous spans and
// runs f on each concurrently, waiting for all.  Small ranges run
// inline.  It returns the number of workers actually used.
func parallelDo(workers, n int, f func(lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	if workers > n/minSpan {
		workers = n / minSpan
	}
	if workers <= 1 {
		f(0, n)
		return 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	span := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * span
		hi := lo + span
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return workers
}

// Memory tracks a set of managed arrays through one speculative loop
// execution: checkpoint -> (stamped stores during the DOALL) -> undo or
// commit.
//
// Stamps are sharded per virtual processor: shard k is written only by
// the worker running as vpn k (single-writer slots, no atomics), and
// the shards are merged lazily after the parallel section's barrier.
// Callers must size the shards with NewSharded(procs, ...) to at least
// the number of concurrent workers; stores from an out-of-range vpn are
// folded onto shard vpn mod procs, which is only safe when that vpn is
// not concurrent with the shard's owner.
type Memory struct {
	arrays      []*mem.Array
	checkpoints []*mem.Array
	procs       int
	// stamps[a][k][i] is worker k's minimum writing iteration for
	// location i of array a (NoStamp if it never wrote it).
	stamps map[*mem.Array][][]int64
	// epochs[a][k][i] tags stamps[a][k][i] with the stamp generation
	// that wrote it: a stamp is live iff its tag equals the Memory's
	// current epoch.  Bumping the epoch therefore invalidates every
	// stamp at once — the O(1) reset a strip-mined loop performs
	// between strips — without sweeping procs x n words.
	epochs map[*mem.Array][][]uint32
	// dirty[a][k] journals the locations worker k first-touched since
	// the last stamp reset (in both epoch and explicit mode): the
	// worklist the lazy merge deduplicates, and the raw material of
	// WriteSet.  Single-writer per shard, like the stamps.
	dirty map[*mem.Array][][]int
	// Packed block-journal layout (the JournalBlock default; see
	// block.go).  recs[a][k][i] fuses stamp + epoch tag + flags into
	// one 16-byte record; blkTag/blkBits[a][k][b] are the epoch tag and
	// dirty bitmap of 64-element block b in shard k; blocks[a][k]
	// journals each block id once per epoch.  unionBits/mgBlkSeen/
	// touchedBlk are the merge's block-granular results and scratch,
	// playing the role touchedIdx/mgSeen play for the element layout.
	// Exactly one of {recs..., stamps...} is populated per Memory.
	recs       map[*mem.Array][][]rec
	blkTag     map[*mem.Array][][]uint32
	blkBits    map[*mem.Array][][]uint64
	blocks     map[*mem.Array][][]int32
	unionBits  map[*mem.Array][]uint64
	mgBlkSeen  map[*mem.Array][]uint32
	touchedBlk map[*mem.Array][]int32
	// packed selects the block layout's code paths (JournalBlock and
	// not explicit).
	packed bool
	// views carries the same stamp/epoch/dirty slice headers as the
	// maps above, keyed by position: the per-element store path resolves
	// its array by a linear pointer scan over this handful of entries
	// instead of two pointer-keyed map hashes per store (the dominant
	// cost in membench before this cache).  The slice headers alias the
	// map entries, so journal appends through either stay coherent.
	views []shardView
	// epoch is the current stamp generation.  It starts at 1 so the
	// zeroed tags of a fresh allocation are already stale.
	epoch uint32
	// explicit disables epoch tagging: resets eagerly refill every
	// shard with NoStamp and the epoch never moves.  Kept as the
	// equivalence oracle for the O(1) reset (NewShardedExplicit).
	explicit bool
	// merged[a][i] is the cross-shard minimum, computed after the
	// barrier by mergeStamps; mergedOK guards the lazy merge.  Stamping
	// stores clear it (merged is a copy, not an alias, so a store after
	// a merge would otherwise read back a stale minimum); the flag is
	// atomic only for that rare cross-worker clear — the hot path pays
	// one read of a rarely-written cache line.  merged[a][i] is only
	// meaningful where mgSeen[a][i] carries the current mgGen — every
	// other location is NoStamp by construction (never written since
	// the reset) and is not stored explicitly.
	merged   map[*mem.Array][]int64
	mergedOK atomic.Bool
	// touchedIdx[a] is the deduplicated union of the dirty journals as
	// of the last merge: the exact location set Undo/PartialCommit/
	// MinStampFrom must visit.  mgSeen/mgGen are its generation-tagged
	// dedup scratch (also the "is merged[a][i] meaningful" gate).
	touchedIdx map[*mem.Array][]int
	mgSeen     map[*mem.Array][]uint32
	mgGen      uint32
	stamped    int // distinct stamped locations, counted at merge
	// cpValid reports that the held checkpoint still mirrors the array
	// state as of the last stamp reset at every location outside the
	// current journals — the invariant Rearm's incremental refresh
	// maintains and any untracked write (sequential fallback) breaks.
	cpValid bool
	// threshold is the statistics-enhanced strip-mining cutoff n'_i of
	// Section 8.1: stores by iterations below it are NOT stamped (they
	// are predicted valid).  Undo below the threshold is impossible.
	threshold int

	// Optional observability hooks (nil-safe).
	obsM *obs.Metrics
	obsT obs.Tracer
}

// SetObs attaches observability hooks: m accumulates tracked/stamped
// store counts, checkpoint words, shard merges, undo and restore
// counts; t receives checkpoint/undo/restore events.  Either may be
// nil.  Must be set before the speculative execution begins.
func (m *Memory) SetObs(mx *obs.Metrics, t obs.Tracer) { m.obsM, m.obsT = mx, t }

// New creates a single-worker Memory over the given arrays — the shape
// sequential re-execution and tests use.  Parallel executions must use
// NewSharded so every virtual processor owns a stamp shard.  Checkpoint
// must be called before the speculative execution begins.
func New(arrays ...*mem.Array) *Memory { return NewSharded(1, arrays...) }

// NewSharded creates a Memory whose stamps are sharded for procs
// virtual processors: worker k records stamps in its own single-writer
// shard, eliminating atomic contention on shared stamp words.  Stamps
// are epoch-tagged, so the per-strip reset a Checkpoint performs is a
// single generation bump rather than an O(procs x n) sweep, and live in
// the packed block-journal layout (JournalBlock, block.go) so a
// first-touch store stays within one shadow cache line.
// Checkpoint must be called before the speculative execution begins.
func NewSharded(procs int, arrays ...*mem.Array) *Memory {
	return newSharded(procs, false, JournalBlock, arrays...)
}

// NewShardedJournal is NewSharded with an explicit journal layout —
// the A/B constructor the whilebench -journal flag drives.
func NewShardedJournal(procs int, journal Journal, arrays ...*mem.Array) *Memory {
	return newSharded(procs, false, journal, arrays...)
}

// NewShardedElement is NewSharded with the element-journal layout:
// separate stamp and epoch-tag arrays plus per-element dirty-index
// journals.  Retained as the equivalence oracle for the packed block
// layout and as its benchmark baseline.
func NewShardedElement(procs int, arrays ...*mem.Array) *Memory {
	return newSharded(procs, false, JournalElement, arrays...)
}

// NewShardedExplicit is NewSharded with epoch tagging disabled: every
// reset eagerly refills the shards with NoStamp, the pre-epoch scheme
// (which implies the element layout).  It is retained as the
// equivalence oracle for the O(1) epoch reset and as its benchmark
// baseline.
func NewShardedExplicit(procs int, arrays ...*mem.Array) *Memory {
	return newSharded(procs, true, JournalElement, arrays...)
}

// shardView bundles one tracked array's shard slices for the hot store
// path (see the views field).  stamps/epochs/dirty serve the element
// layout; recs/blkTag/blkBits/blocks the packed block layout.
type shardView struct {
	a       *mem.Array
	stamps  [][]int64
	epochs  [][]uint32
	dirty   [][]int
	recs    [][]rec
	blkTag  [][]uint32
	blkBits [][]uint64
	blocks  [][]int32
}

// viewOf resolves a tracked array's shard view by pointer scan, nil if
// the array is untracked (privatized or read-only arrays reach the
// tracker too).
func (m *Memory) viewOf(a *mem.Array) *shardView {
	for i := range m.views {
		if m.views[i].a == a {
			return &m.views[i]
		}
	}
	return nil
}

func newSharded(procs int, explicit bool, journal Journal, arrays ...*mem.Array) *Memory {
	if procs < 1 {
		procs = 1
	}
	m := &Memory{
		procs:    procs,
		explicit: explicit,
		packed:   journal == JournalBlock && !explicit,
		merged:   make(map[*mem.Array][]int64, len(arrays)),
	}
	if m.packed {
		m.recs = make(map[*mem.Array][][]rec, len(arrays))
		m.blkTag = make(map[*mem.Array][][]uint32, len(arrays))
		m.blkBits = make(map[*mem.Array][][]uint64, len(arrays))
		m.blocks = make(map[*mem.Array][][]int32, len(arrays))
		m.unionBits = make(map[*mem.Array][]uint64, len(arrays))
		m.mgBlkSeen = make(map[*mem.Array][]uint32, len(arrays))
		m.touchedBlk = make(map[*mem.Array][]int32, len(arrays))
		for _, a := range arrays {
			m.arrays = append(m.arrays, a)
			nb := numBlocks(a.Len())
			rss := make([][]rec, procs)
			bts := make([][]uint32, procs)
			bbs := make([][]uint64, procs)
			bjs := make([][]int32, procs)
			for k := range rss {
				// Records and block tags must start all-stale: a
				// recycled epoch tag equal to this Memory's first live
				// epoch would read as a current stamp.  Bitmaps hide
				// behind the block tags, so stale content is fine.
				rss[k] = recPool.GetZeroed(a.Len())
				bts[k] = arena.Uint32sZeroed(nb)
				bbs[k] = uint64Pool.Get(nb)
				bjs[k] = int32Pool.GetCap(64)
			}
			m.recs[a] = rss
			m.blkTag[a] = bts
			m.blkBits[a] = bbs
			m.blocks[a] = bjs
			m.views = append(m.views, shardView{a: a, recs: rss, blkTag: bts, blkBits: bbs, blocks: bjs})
			m.unionBits[a] = uint64Pool.Get(nb)
			m.mgBlkSeen[a] = arena.Uint32sZeroed(nb)
			m.touchedBlk[a] = int32Pool.GetCap(64)
		}
		m.resetStamps()
		return m
	}
	m.stamps = make(map[*mem.Array][][]int64, len(arrays))
	m.epochs = make(map[*mem.Array][][]uint32, len(arrays))
	m.dirty = make(map[*mem.Array][][]int, len(arrays))
	m.touchedIdx = make(map[*mem.Array][]int, len(arrays))
	m.mgSeen = make(map[*mem.Array][]uint32, len(arrays))
	for _, a := range arrays {
		m.arrays = append(m.arrays, a)
		sh := make([][]int64, procs)
		eps := make([][]uint32, procs)
		dj := make([][]int, procs)
		for k := range sh {
			// Stamp words hide behind the epoch tags (or the explicit
			// NoStamp refill below), so their recycled content is fine;
			// the tags themselves must start all-stale.
			sh[k] = arena.Int64s(a.Len())
			eps[k] = arena.Uint32sZeroed(a.Len())
			dj[k] = arena.Ints(64)
		}
		m.stamps[a] = sh
		m.epochs[a] = eps
		m.dirty[a] = dj
		m.views = append(m.views, shardView{a: a, stamps: sh, epochs: eps, dirty: dj})
		m.mgSeen[a] = arena.Uint32sZeroed(a.Len())
	}
	if explicit {
		// The epoch never moves in explicit mode: pre-mark every tag
		// live once so the store path's tag check always passes and
		// the NoStamp refill below carries the full reset.
		m.epoch = 1
		for _, eps := range m.epochs {
			for _, ep := range eps {
				for i := range ep {
					ep[i] = 1
				}
			}
		}
	}
	m.resetStamps()
	return m
}

// Release returns the Memory's stamp shards, tags, journals, merge
// scratch and checkpoint buffers to the shared arena.  The Memory must
// not be used afterwards; call it when an engine invocation is done.
// The tracked arrays themselves are caller-owned and untouched.
func (m *Memory) Release() {
	for _, a := range m.arrays {
		for _, s := range m.stamps[a] {
			arena.PutInt64s(s)
		}
		for _, ep := range m.epochs[a] {
			arena.PutUint32s(ep)
		}
		for _, d := range m.dirty[a] {
			arena.PutInts(d)
		}
		for _, rs := range m.recs[a] {
			recPool.Put(rs)
		}
		for _, bt := range m.blkTag[a] {
			arena.PutUint32s(bt)
		}
		for _, bb := range m.blkBits[a] {
			uint64Pool.Put(bb)
		}
		for _, bj := range m.blocks[a] {
			int32Pool.Put(bj)
		}
		uint64Pool.Put(m.unionBits[a])
		arena.PutUint32s(m.mgBlkSeen[a])
		int32Pool.Put(m.touchedBlk[a])
		arena.PutInt64s(m.merged[a])
		arena.PutUint32s(m.mgSeen[a])
		arena.PutInts(m.touchedIdx[a])
	}
	for _, cp := range m.checkpoints {
		arena.PutFloat64s(cp.Data)
	}
	m.stamps, m.epochs, m.dirty, m.merged, m.mgSeen, m.touchedIdx = nil, nil, nil, nil, nil, nil
	m.recs, m.blkTag, m.blkBits, m.blocks = nil, nil, nil, nil
	m.unionBits, m.mgBlkSeen, m.touchedBlk = nil, nil, nil
	m.checkpoints, m.arrays, m.views = nil, nil, nil
	m.cpValid = false
}

// Procs returns the shard count the Memory was sized for.
func (m *Memory) Procs() int { return m.procs }

func (m *Memory) resetStamps() {
	if m.explicit {
		for _, sh := range m.stamps {
			for _, s := range sh {
				parallelDo(m.procs, len(s), func(lo, hi int) {
					s := s[lo:hi]
					for i := range s {
						s[i] = NoStamp
					}
				})
			}
		}
	} else {
		m.epoch++
		if m.epoch == 0 {
			// uint32 wrap: tags written 2^32 generations ago would read
			// as live again, so pay one full sweep to zero them and
			// restart at 1 (zero is never a live epoch).
			for _, eps := range m.epochs {
				for _, ep := range eps {
					parallelDo(m.procs, len(ep), func(lo, hi int) {
						ep := ep[lo:hi]
						for i := range ep {
							ep[i] = 0
						}
					})
				}
			}
			for _, rss := range m.recs {
				for _, rs := range rss {
					parallelDo(m.procs, len(rs), func(lo, hi int) {
						rs := rs[lo:hi]
						for i := range rs {
							rs[i].epoch = 0
						}
					})
				}
			}
			for _, bts := range m.blkTag {
				for _, bt := range bts {
					for i := range bt {
						bt[i] = 0
					}
				}
			}
			m.epoch = 1
		}
		m.obsM.EpochReset()
	}
	for _, dj := range m.dirty {
		for k := range dj {
			dj[k] = dj[k][:0]
		}
	}
	for _, bj := range m.blocks {
		for k := range bj {
			bj[k] = bj[k][:0]
		}
	}
	m.mergedOK.Store(false)
	m.stamped = 0
}

// Checkpoint snapshots every tracked array (the overhead Tb of the cost
// model), splitting the copy across the Memory's workers.  Calling it
// again discards the previous snapshot, reusing its buffers — so the
// re-baselining a partial commit performs every recovery round pays
// only the copy, not an allocation.
func (m *Memory) Checkpoint() {
	ts := obs.Start(m.obsT)
	reuse := len(m.checkpoints) == len(m.arrays)
	if !reuse {
		m.checkpoints = m.checkpoints[:0]
	}
	words, maxWorkers := 0, 1
	for ai, a := range m.arrays {
		var cp *mem.Array
		if reuse && m.checkpoints[ai].Len() == a.Len() {
			cp = m.checkpoints[ai]
		} else {
			cp = &mem.Array{Name: a.Name, Data: arena.Float64s(a.Len())}
			if reuse {
				arena.PutFloat64s(m.checkpoints[ai].Data)
				m.checkpoints[ai] = cp
			}
		}
		src := a.Data
		w := parallelDo(m.procs, len(src), func(lo, hi int) {
			copy(cp.Data[lo:hi], src[lo:hi])
		})
		if w > maxWorkers {
			maxWorkers = w
		}
		if !reuse {
			m.checkpoints = append(m.checkpoints, cp)
		}
		words += a.Len()
	}
	m.resetStamps()
	m.cpValid = true
	m.obsM.CheckpointDone(words)
	if maxWorkers > 1 {
		m.obsM.ParallelCopy(maxWorkers)
	}
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "checkpoint", "tsmem", 0, map[string]any{"words": words, "workers": maxWorkers})
	}
}

// WriteSet returns, per tracked array in registration order, the
// deduplicated locations written through the Tracker since the last
// stamp reset.  Call it after the parallel section (it merges the
// shards) and before the next reset; the returned slices are the
// caller's to keep.  Together with Rearm it closes the incremental
// checkpoint loop: the write-set of strip k is exactly what the next
// strip's checkpoint must refresh.
func (m *Memory) WriteSet() [][]int {
	m.mergeStamps()
	out := make([][]int, len(m.arrays))
	for ai, a := range m.arrays {
		if m.packed {
			out[ai] = m.packedWriteSet(a)
		} else {
			out[ai] = append([]int(nil), m.touchedIdx[a]...)
		}
	}
	return out
}

// Rearm re-arms the Memory for the next strip: where Checkpoint copies
// every tracked word, Rearm refreshes only the pending locations —
// the union of write-sets taken since the checkpoint last mirrored the
// arrays — and then resets the stamps.  pending is indexed like the
// arrays passed at construction (WriteSet's shape).
//
// Correctness: the held checkpoint equals the array state except at
// locations written through the Tracker since it was (re)armed.  An
// engine that hands Rearm exactly those locations maintains the
// invariant; any write that bypassed the Tracker (sequential fallback,
// caller mutation) breaks it, and the engine must call
// InvalidateCheckpoint so the next Rearm degrades to a full
// Checkpoint.  Rearm also degrades on its own whenever the incremental
// premise fails: no valid checkpoint, nil or mis-shaped pending, or a
// stamp threshold (stores below it are neither stamped nor journaled,
// so write-sets are incomplete).
func (m *Memory) Rearm(pending [][]int) {
	if !m.cpValid || pending == nil || len(pending) != len(m.arrays) ||
		m.threshold > 0 || len(m.checkpoints) != len(m.arrays) {
		m.Checkpoint()
		return
	}
	for ai, a := range m.arrays {
		if m.checkpoints[ai].Len() != a.Len() {
			m.Checkpoint()
			return
		}
	}
	ts := obs.Start(m.obsT)
	words := 0
	for ai, a := range m.arrays {
		cp := m.checkpoints[ai].Data
		src := a.Data
		for _, idx := range pending[ai] {
			cp[idx] = src[idx]
		}
		words += len(pending[ai])
	}
	m.resetStamps()
	m.obsM.DeltaCheckpointDone(words)
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "rearm", "tsmem", 0, map[string]any{"words": words})
	}
}

// InvalidateCheckpoint marks the held checkpoint stale: the next Rearm
// performs a full Checkpoint regardless of pending.  Engines call it
// after any write that bypassed the Tracker — a sequential fallback
// re-executing a strip, a caller mutating the arrays between strips —
// because such writes are invisible to the write-set journals.
func (m *Memory) InvalidateCheckpoint() { m.cpValid = false }

// SetStampThreshold enables Section 8.1's statistics-enhanced stamping:
// stores by iterations with index < n are not stamped.  Must be set
// before the parallel execution.  n <= 0 stamps everything.
func (m *Memory) SetStampThreshold(n int) { m.threshold = n }

// Tracker returns the mem.Tracker that the speculative DOALL's
// iterations must use: loads pass through; stores record the writing
// iteration in the executing worker's private stamp shard (keeping the
// per-shard minimum; the cross-shard minimum is taken at the merge) and
// then perform the write.  The tracker also implements
// mem.RangeTracker, so strip-mined bodies pay one interposition per
// contiguous range.  The tracker is a thin shim over the concrete
// StampLoad/StampStore methods, which fused fast paths may call
// directly to skip the interface dispatch.
func (m *Memory) Tracker() mem.Tracker { return stampTracker{m} }

// slot folds a virtual processor number onto a shard index.
func (m *Memory) slot(vpn int) int {
	if vpn >= 0 && vpn < m.procs {
		return vpn
	}
	return ((vpn % m.procs) + m.procs) % m.procs
}

// StampLoad is the concrete load path: loads pass through untracked.
func (m *Memory) StampLoad(a *mem.Array, idx int) float64 { return loadData(&a.Data[idx]) }

// StampStore is the concrete store path (Tracker's Store without the
// interface dispatch): record the writing iteration in the worker's
// private shard — journaling the first touch per reset — then write.
func (m *Memory) StampStore(a *mem.Array, idx int, v float64, iter, vpn int) {
	m.obsM.TrackedStore()
	if iter >= m.threshold {
		if vw := m.viewOf(a); vw != nil {
			if m.mergedOK.Load() {
				m.mergedOK.Store(false)
			}
			k := m.slot(vpn)
			if m.packed {
				r := &vw.recs[k][idx]
				if r.epoch != m.epoch {
					// First touch of this epoch: one 16-byte record
					// write covers stamp, liveness tag and journaled
					// bit — a single shadow cache line.
					r.stamp = int64(iter)
					r.epoch = m.epoch
					r.flags = recJournaled
					b := idx >> blockShift
					bt := vw.blkTag[k]
					if bt[b] != m.epoch {
						bt[b] = m.epoch
						vw.blkBits[k][b] = 0
						vw.blocks[k] = append(vw.blocks[k], int32(b))
					}
					vw.blkBits[k][b] |= 1 << (uint(idx) & blockMask)
				} else if it := int64(iter); it < r.stamp {
					r.stamp = it
				}
				storeData(&a.Data[idx], v)
				return
			}
			s, ep := vw.stamps[k], vw.epochs[k]
			if ep[idx] != m.epoch {
				// Stale generation: whatever stamp is there belongs to
				// an earlier strip.  First touch of this epoch.
				ep[idx] = m.epoch
				s[idx] = int64(iter)
				vw.dirty[k] = append(vw.dirty[k], idx)
			} else if cur := s[idx]; cur == NoStamp {
				// Explicit mode's first touch: tags are pinned live, so
				// the refilled NoStamp word is the staleness signal.
				s[idx] = int64(iter)
				vw.dirty[k] = append(vw.dirty[k], idx)
			} else if int64(iter) < cur {
				s[idx] = int64(iter)
			}
		}
	}
	storeData(&a.Data[idx], v)
}

// StampLoadRange copies [lo, hi) of a into dst: loads pass through, one
// interposition for the whole strip.
func (m *Memory) StampLoadRange(a *mem.Array, lo, hi int, dst []float64) {
	m.obsM.BatchedRange(hi - lo)
	loadDataRange(dst, a.Data[lo:hi])
}

// StampStoreRange performs len(src) stamped stores with a single
// interposition: the stamp updates hit the worker's private shard with
// plain writes, then the data is copied in one memmove.
func (m *Memory) StampStoreRange(a *mem.Array, lo int, src []float64, iter, vpn int) {
	n := len(src)
	m.obsM.TrackedStoresAdd(n)
	m.obsM.BatchedRange(n)
	if iter >= m.threshold {
		if vw := m.viewOf(a); vw != nil {
			if m.mergedOK.Load() {
				m.mergedOK.Store(false)
			}
			k := m.slot(vpn)
			if m.packed {
				rs := vw.recs[k]
				it64 := int64(iter)
				for i := lo; i < lo+n; i++ {
					r := &rs[i]
					if r.epoch != m.epoch {
						r.stamp = it64
						r.epoch = m.epoch
						r.flags = recJournaled
					} else if it64 < r.stamp {
						r.stamp = it64
					}
				}
				// Journal whole blocks in O(blocks): one epoch-tagged
				// bitmap OR per 64-element block, with partial masks at
				// the range's edges.
				bt, bb := vw.blkTag[k], vw.blkBits[k]
				firstB, lastB := lo>>blockShift, (lo+n-1)>>blockShift
				for b := firstB; b <= lastB; b++ {
					s := 0
					if b == firstB {
						s = lo & blockMask
					}
					e := blockSize
					if b == lastB {
						e = (lo+n-1)&blockMask + 1
					}
					// e-s == 64 wraps 1<<64 to 0, and 0-1 to all-ones:
					// exactly the full-block mask.
					mask := ((uint64(1) << uint(e-s)) - 1) << uint(s)
					if bt[b] != m.epoch {
						bt[b] = m.epoch
						bb[b] = 0
						vw.blocks[k] = append(vw.blocks[k], int32(b))
					}
					bb[b] |= mask
				}
				storeDataRange(a.Data[lo:lo+n], src)
				return
			}
			s, ep := vw.stamps[k], vw.epochs[k]
			djk := vw.dirty[k]
			it64 := int64(iter)
			for i := lo; i < lo+n; i++ {
				if ep[i] != m.epoch {
					ep[i] = m.epoch
					s[i] = it64
					djk = append(djk, i)
				} else if cur := s[i]; cur == NoStamp {
					s[i] = it64
					djk = append(djk, i)
				} else if it64 < cur {
					s[i] = it64
				}
			}
			vw.dirty[k] = djk
		}
	}
	storeDataRange(a.Data[lo:lo+n], src)
}

type stampTracker struct{ m *Memory }

func (t stampTracker) Load(a *mem.Array, idx, _, _ int) float64 { return t.m.StampLoad(a, idx) }

func (t stampTracker) Store(a *mem.Array, idx int, v float64, iter, vpn int) {
	t.m.StampStore(a, idx, v, iter, vpn)
}

// LoadRange copies [lo, hi) of a into dst: loads pass through, one
// interposition for the whole strip.
func (t stampTracker) LoadRange(a *mem.Array, lo, hi int, dst []float64, _, _ int) {
	t.m.StampLoadRange(a, lo, hi, dst)
}

// StoreRange performs len(src) stamped stores with a single
// interposition.
func (t stampTracker) StoreRange(a *mem.Array, lo int, src []float64, iter, vpn int) {
	t.m.StampStoreRange(a, lo, src, iter, vpn)
}

// mergeStamps combines the per-worker shards into the authoritative
// per-location minimum stamp.  It must be called only after the
// parallel section has completed (the DOALL barrier orders the shard
// writes before it); Undo, Stamp and Stats call it lazily.  The merge
// visits only journaled locations — the union of the per-shard dirty
// lists, deduplicated against a generation-tagged scratch — so its
// cost is O(writes x procs), not O(n x procs); large worklists split
// across the Memory's workers.
func (m *Memory) mergeStamps() {
	if m.mergedOK.Load() {
		return
	}
	if m.packed {
		m.mergePacked()
		return
	}
	m.mgGen++
	if m.mgGen == 0 {
		for _, sn := range m.mgSeen {
			for i := range sn {
				sn[i] = 0
			}
		}
		m.mgGen = 1
	}
	words, stamped := 0, 0
	for _, a := range m.arrays {
		sh := m.stamps[a]
		eps := m.epochs[a]
		n := a.Len()
		mg := m.merged[a]
		if len(mg) != n {
			arena.PutInt64s(mg)
			mg = arena.Int64s(n)
			m.merged[a] = mg
		}
		sn := m.mgSeen[a]
		list := m.touchedIdx[a][:0]
		for _, d := range m.dirty[a] {
			for _, idx := range d {
				if sn[idx] != m.mgGen {
					sn[idx] = m.mgGen
					list = append(list, idx)
				}
			}
		}
		m.touchedIdx[a] = list
		words += len(list)
		var mu sync.Mutex
		parallelDo(m.procs, len(list), func(lo, hi int) {
			count := 0
			for _, i := range list[lo:hi] {
				min := NoStamp
				for k := 0; k < m.procs; k++ {
					if eps[k][i] != m.epoch {
						// Stale tag: a stamp from an earlier strip that
						// the O(1) reset never swept.  Not a write.
						continue
					}
					if st := sh[k][i]; st != NoStamp && (min == NoStamp || st < min) {
						min = st
					}
				}
				mg[i] = min
				if min != NoStamp {
					count++
				}
			}
			mu.Lock()
			stamped += count
			mu.Unlock()
		})
	}
	m.stamped = stamped
	m.mergedOK.Store(true)
	m.obsM.StampedStoresAdd(stamped)
	m.obsM.ShardMergeDone(m.procs, words)
}

// Undo restores, from the checkpoint, every location whose stamp exceeds
// lastValid (i.e. written only by overshot iterations), completing the
// "undo iterations that overshot" step.  The scan visits only journaled
// locations and is parallelized across the Memory's workers when large.
// It returns the number of locations restored.  It fails if Checkpoint
// was not called, or if lastValid falls below the stamp threshold — in
// that case the stamps needed to undo were never recorded and the caller
// must restore the full checkpoint (RestoreAll) and re-execute.
func (m *Memory) Undo(lastValid int) (int, error) {
	if len(m.checkpoints) != len(m.arrays) {
		return 0, fmt.Errorf("tsmem: Undo without Checkpoint")
	}
	if lastValid < m.threshold {
		return 0, fmt.Errorf("tsmem: last valid iteration %d below stamp threshold %d; stamps missing", lastValid, m.threshold)
	}
	ts := obs.Start(m.obsT)
	m.mergeStamps()
	restored := 0
	if m.packed {
		// Stamps are zero-based iteration indices; iterations
		// 0..lastValid-1 are valid, so any stamp >= lastValid is
		// overshoot.
		restored = m.packedRestoreAbove(int64(lastValid))
	} else {
		for ai, a := range m.arrays {
			cp := m.checkpoints[ai]
			mg := m.merged[a]
			list := m.touchedIdx[a]
			var mu sync.Mutex
			parallelDo(m.procs, len(list), func(lo, hi int) {
				count := 0
				for _, i := range list[lo:hi] {
					if st := mg[i]; st != NoStamp && st >= int64(lastValid) {
						// Stamps are zero-based iteration indices; iterations
						// 0..lastValid-1 are valid, so any stamp >= lastValid
						// is overshoot.
						a.Data[i] = cp.Data[i]
						count++
					}
				}
				mu.Lock()
				restored += count
				mu.Unlock()
			})
		}
	}
	m.obsM.UndoneAdd(restored)
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "undo", "tsmem", 0, map[string]any{"restored": restored, "lastValid": lastValid})
	}
	return restored, nil
}

// PartialCommit keeps the work of iterations below upto and rewinds the
// rest: every location whose (minimum) write stamp is >= upto is
// restored from the checkpoint, and the Memory is then re-baselined —
// the surviving state becomes the new checkpoint and all stamps are
// cleared — so a following re-speculation round undoes only its own
// stores.  It returns the number of locations restored.
//
// Safety: with minimum stamps a location written by both a kept and an
// undone iteration cannot be selectively rewound, so upto must be
// chosen so that no location mixes writers across the boundary.  The PD
// test's Result.FirstViolation bound has exactly that property: every
// writer of every violating element is at or beyond it, and a location
// written on both sides of the boundary by *valid* iterations would
// itself be a violating element (output dependence).  Like Undo, it
// fails when no checkpoint exists or when upto falls below the stamp
// threshold (the stamps needed were never recorded).
func (m *Memory) PartialCommit(upto int) (int, error) {
	if len(m.checkpoints) != len(m.arrays) {
		return 0, fmt.Errorf("tsmem: PartialCommit without Checkpoint")
	}
	if upto < m.threshold {
		return 0, fmt.Errorf("tsmem: partial-commit bound %d below stamp threshold %d; stamps missing", upto, m.threshold)
	}
	ts := obs.Start(m.obsT)
	m.mergeStamps()
	restored := 0
	if m.packed {
		restored = m.packedRestoreAbove(int64(upto))
	} else {
		for ai, a := range m.arrays {
			cp := m.checkpoints[ai]
			mg := m.merged[a]
			list := m.touchedIdx[a]
			var mu sync.Mutex
			parallelDo(m.procs, len(list), func(lo, hi int) {
				count := 0
				for _, i := range list[lo:hi] {
					if st := mg[i]; st != NoStamp && st >= int64(upto) {
						a.Data[i] = cp.Data[i]
						count++
					}
				}
				mu.Lock()
				restored += count
				mu.Unlock()
			})
		}
	}
	m.obsM.SuffixUndoneAdd(restored)
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "partial-commit", "tsmem", 0, map[string]any{"restored": restored, "upto": upto})
	}
	// Re-baseline: the prefix's effects are now permanent; the next
	// round's rollback target is the state we just produced.  The
	// threshold is spent — the new round's stores must all be stamped.
	m.threshold = 0
	m.Checkpoint()
	return restored, nil
}

// MinStampFrom returns the smallest recorded stamp at or above from
// across all tracked arrays, or NoStamp when nothing at or above from
// was written.  Like Stamp it merges the shards, so it must only be
// called after the parallel section completes.
func (m *Memory) MinStampFrom(from int) int64 {
	m.mergeStamps()
	if m.packed {
		return m.packedMinStampFrom(int64(from))
	}
	min := NoStamp
	for _, a := range m.arrays {
		mg := m.merged[a]
		for _, i := range m.touchedIdx[a] {
			if st := mg[i]; st != NoStamp && st >= int64(from) && (min == NoStamp || st < min) {
				min = st
			}
		}
	}
	return min
}

// RestoreAll rewinds every tracked array to its checkpoint (used when a
// PD test fails, or when an exception abandons the parallel execution),
// splitting the copy across the Memory's workers.
func (m *Memory) RestoreAll() error {
	if len(m.checkpoints) != len(m.arrays) {
		return fmt.Errorf("tsmem: RestoreAll without Checkpoint")
	}
	ts := obs.Start(m.obsT)
	maxWorkers := 1
	for ai, a := range m.arrays {
		cp := m.checkpoints[ai]
		dst := a.Data
		w := parallelDo(m.procs, len(dst), func(lo, hi int) {
			copy(dst[lo:hi], cp.Data[lo:hi])
		})
		if w > maxWorkers {
			maxWorkers = w
		}
	}
	m.obsM.RestoreDone()
	if maxWorkers > 1 {
		m.obsM.ParallelCopy(maxWorkers)
	}
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "restore-all", "tsmem", 0, map[string]any{"workers": maxWorkers})
	}
	return nil
}

// Commit discards checkpoints and stamps after a fully valid execution.
func (m *Memory) Commit() {
	for _, cp := range m.checkpoints {
		arena.PutFloat64s(cp.Data)
	}
	m.checkpoints = nil
	m.cpValid = false
	m.resetStamps()
}

// Stamp returns the stamp recorded for a location (NoStamp if unwritten
// or below the threshold).  It merges the per-worker shards on first
// use, so it must only be called after the parallel section completes.
func (m *Memory) Stamp(a *mem.Array, idx int) int64 {
	if m.packed {
		if _, ok := m.recs[a]; !ok {
			return NoStamp
		}
		m.mergeStamps()
		b := idx >> blockShift
		if m.mgBlkSeen[a][b] != m.mgGen || m.unionBits[a][b]&(1<<(uint(idx)&blockMask)) == 0 {
			// Block never journaled, or this element's bit unset:
			// unwritten since the last reset.
			return NoStamp
		}
		return m.merged[a][idx]
	}
	if _, ok := m.stamps[a]; !ok {
		return NoStamp
	}
	m.mergeStamps()
	if m.mgSeen[a][idx] != m.mgGen {
		// Never journaled since the last reset: unwritten.
		return NoStamp
	}
	return m.merged[a][idx]
}

// Stats reports the scheme's memory footprint in words: live data,
// checkpoint copies, and stamps — the "as much as three times the actual
// memory" of Section 4, where the stamp term is now procs shards wide —
// plus how many distinct locations were stamped.  Call it after the
// parallel section (it merges the shards).
func (m *Memory) Stats() (dataWords, checkpointWords, stampWords, stampedStores int) {
	for _, a := range m.arrays {
		dataWords += a.Len()
		stampWords += a.Len() * m.procs
	}
	for _, c := range m.checkpoints {
		checkpointWords += c.Len()
	}
	m.mergeStamps()
	return dataWords, checkpointWords, stampWords, m.stamped
}

// TrailEntry is one logged write to a live privatized array.
type TrailEntry struct {
	Iter int
	Idx  int
	Val  float64
}

// Trail is the time-stamped log of all writes to a privatized array that
// is live after the loop (Section 5.1).  Each virtual processor appends
// to its own buffer, so recording is contention-free; LastValues merges.
type Trail struct {
	mu   sync.Mutex
	byVP map[int][]TrailEntry
}

// NewTrail returns an empty trail.
func NewTrail() *Trail { return &Trail{byVP: make(map[int][]TrailEntry)} }

// Record logs a write by iteration iter on processor vpn.
func (t *Trail) Record(vpn, iter, idx int, val float64) {
	t.mu.Lock()
	t.byVP[vpn] = append(t.byVP[vpn], TrailEntry{Iter: iter, Idx: idx, Val: val})
	t.mu.Unlock()
}

// Len returns the total number of logged writes.
func (t *Trail) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, es := range t.byVP {
		n += len(es)
	}
	return n
}

// LastValues returns, for every written location, the value carrying the
// largest stamp that does not exceed lastValid-1 — the value the
// sequential loop would have left there.  Locations written only by
// overshot iterations are absent from the result.
func (t *Trail) LastValues(lastValid int) map[int]float64 {
	t.mu.Lock()
	var all []TrailEntry
	for _, es := range t.byVP {
		all = append(all, es...)
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Idx != all[j].Idx {
			return all[i].Idx < all[j].Idx
		}
		return all[i].Iter < all[j].Iter
	})
	out := make(map[int]float64)
	for _, e := range all {
		if e.Iter < lastValid {
			out[e.Idx] = e.Val // sorted ascending by iter: last write wins
		}
	}
	return out
}
