package tsmem

import (
	"fmt"
	"sync/atomic"

	"whilepar/internal/mem"
	"whilepar/internal/obs"
)

// AtomicMemory is the per-element CAS variant of the time-stamped
// memory: every stamped store contends on a shared atomic stamp word
// with a compare-and-swap loop keeping the minimum writing iteration.
// It is retained as the comparison baseline for the sharded fast path
// (Memory) — the whilebench stamped-store microbenchmark and the
// bit-equivalence stress tests run both implementations over identical
// loops.  New code should use Memory/NewSharded.
type AtomicMemory struct {
	arrays      []*mem.Array
	checkpoints []*mem.Array
	stamps      map[*mem.Array][]atomic.Int64
	// threshold is the statistics-enhanced strip-mining cutoff n'_i of
	// Section 8.1: stores by iterations below it are NOT stamped.
	threshold int
	stamped   atomic.Int64 // stores that recorded a stamp

	// Optional observability hooks (nil-safe).
	obsM *obs.Metrics
	obsT obs.Tracer
}

// SetObs attaches observability hooks; either may be nil.  Must be set
// before the speculative execution begins.
func (m *AtomicMemory) SetObs(mx *obs.Metrics, t obs.Tracer) { m.obsM, m.obsT = mx, t }

// NewAtomic creates an AtomicMemory over the given arrays.  Checkpoint
// must be called before the speculative execution begins.
func NewAtomic(arrays ...*mem.Array) *AtomicMemory {
	m := &AtomicMemory{stamps: make(map[*mem.Array][]atomic.Int64, len(arrays))}
	for _, a := range arrays {
		m.arrays = append(m.arrays, a)
		m.stamps[a] = make([]atomic.Int64, a.Len())
	}
	m.resetStamps()
	return m
}

func (m *AtomicMemory) resetStamps() {
	for _, s := range m.stamps {
		for i := range s {
			s[i].Store(NoStamp)
		}
	}
	m.stamped.Store(0)
}

// Checkpoint snapshots every tracked array.  Calling it again discards
// the previous snapshot.
func (m *AtomicMemory) Checkpoint() {
	ts := obs.Start(m.obsT)
	m.checkpoints = m.checkpoints[:0]
	words := 0
	for _, a := range m.arrays {
		m.checkpoints = append(m.checkpoints, a.Clone())
		words += a.Len()
	}
	m.resetStamps()
	m.obsM.CheckpointDone(words)
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "checkpoint", "tsmem", 0, map[string]any{"words": words})
	}
}

// SetStampThreshold enables Section 8.1's statistics-enhanced stamping:
// stores by iterations with index < n are not stamped.
func (m *AtomicMemory) SetStampThreshold(n int) { m.threshold = n }

// Tracker returns the mem.Tracker whose stores CAS the per-location
// minimum stamp before performing the write.
func (m *AtomicMemory) Tracker() mem.Tracker { return atomicTracker{m} }

type atomicTracker struct{ m *AtomicMemory }

func (t atomicTracker) Load(a *mem.Array, idx, _, _ int) float64 { return a.Data[idx] }

func (t atomicTracker) Store(a *mem.Array, idx int, v float64, iter, _ int) {
	t.m.obsM.TrackedStore()
	if iter >= t.m.threshold {
		if s := t.m.stamps[a]; s != nil {
			for {
				cur := s[idx].Load()
				if cur != NoStamp && cur <= int64(iter) {
					break
				}
				if s[idx].CompareAndSwap(cur, int64(iter)) {
					if cur == NoStamp {
						t.m.stamped.Add(1)
						t.m.obsM.StampedStore()
					}
					break
				}
			}
		}
	}
	a.Data[idx] = v
}

// Undo restores, from the checkpoint, every location whose stamp is at
// or beyond lastValid, returning the number of locations restored.
func (m *AtomicMemory) Undo(lastValid int) (int, error) {
	if len(m.checkpoints) != len(m.arrays) {
		return 0, fmt.Errorf("tsmem: Undo without Checkpoint")
	}
	if lastValid < m.threshold {
		return 0, fmt.Errorf("tsmem: last valid iteration %d below stamp threshold %d; stamps missing", lastValid, m.threshold)
	}
	ts := obs.Start(m.obsT)
	restored := 0
	for ai, a := range m.arrays {
		cp := m.checkpoints[ai]
		s := m.stamps[a]
		for i := range s {
			if st := s[i].Load(); st != NoStamp && st >= int64(lastValid) {
				a.Data[i] = cp.Data[i]
				restored++
			}
		}
	}
	m.obsM.UndoneAdd(restored)
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "undo", "tsmem", 0, map[string]any{"restored": restored, "lastValid": lastValid})
	}
	return restored, nil
}

// RestoreAll rewinds every tracked array to its checkpoint.
func (m *AtomicMemory) RestoreAll() error {
	if len(m.checkpoints) != len(m.arrays) {
		return fmt.Errorf("tsmem: RestoreAll without Checkpoint")
	}
	ts := obs.Start(m.obsT)
	for ai, a := range m.arrays {
		copy(a.Data, m.checkpoints[ai].Data)
	}
	m.obsM.RestoreDone()
	if m.obsT != nil {
		obs.Span(m.obsT, ts, "restore-all", "tsmem", 0, nil)
	}
	return nil
}

// Commit discards checkpoints and stamps after a fully valid execution.
func (m *AtomicMemory) Commit() {
	m.checkpoints = nil
	m.resetStamps()
}

// Stamp returns the stamp recorded for a location (NoStamp if unwritten
// or below the threshold).
func (m *AtomicMemory) Stamp(a *mem.Array, idx int) int64 {
	s, ok := m.stamps[a]
	if !ok {
		return NoStamp
	}
	return s[idx].Load()
}

// Stats reports the scheme's memory footprint in words plus how many
// stores were stamped.
func (m *AtomicMemory) Stats() (dataWords, checkpointWords, stampWords, stampedStores int) {
	for _, a := range m.arrays {
		dataWords += a.Len()
		stampWords += a.Len()
	}
	for _, c := range m.checkpoints {
		checkpointWords += c.Len()
	}
	return dataWords, checkpointWords, stampWords, int(m.stamped.Load())
}
