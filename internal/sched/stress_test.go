package sched

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"whilepar/internal/obs"
)

// TestDOALLStressGuarantee is the randomized stress test of the DOALL
// guarantee, meant to run under -race in CI: for every schedule and a
// spread of shapes (iteration counts, processor counts, quit sets),
//
//   - every iteration below the final QuitIndex executes exactly once,
//   - no iteration executes twice,
//   - the final QuitIndex is exactly the smallest planted quit index
//     (iterations below it all run, so the minimum quitter always
//     fires),
//   - Overshot is exact against the per-iteration execution log, and
//   - Executed == min(QuitIndex, n) + Overshot.
func TestDOALLStressGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	schedules := []Schedule{Dynamic, Static, Guided}
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(500)
		p := 1 + rng.Intn(8)
		schedule := schedules[trial%len(schedules)]

		// Plant quits: usually a sparse random set, sometimes none,
		// sometimes many (adversarial for the CAS-min).
		quits := make([]bool, n)
		q0 := n
		switch trial % 4 {
		case 0: // none
		case 1: // dense
			for i := range quits {
				if rng.Intn(4) == 0 {
					quits[i] = true
				}
			}
		default: // sparse
			for i := range quits {
				if rng.Intn(64) == 0 {
					quits[i] = true
				}
			}
		}
		for i, q := range quits {
			if q {
				q0 = i
				break
			}
		}

		execCount := make([]atomic.Int32, n)
		m := obs.NewMetrics()
		res := DOALL(n, Options{Procs: p, Schedule: schedule, Metrics: m}, func(i, vpn int) Control {
			execCount[i].Add(1)
			if i%17 == 0 {
				runtime.Gosched() // shake interleavings
			}
			if quits[i] {
				return Quit
			}
			return Continue
		})

		if res.QuitIndex != q0 {
			t.Fatalf("[%d %v n=%d p=%d] QuitIndex = %d, want %d", trial, schedule, n, p, res.QuitIndex, q0)
		}
		totalExec, overshot := 0, 0
		for i := range execCount {
			c := int(execCount[i].Load())
			if c > 1 {
				t.Fatalf("[%d %v n=%d p=%d] iteration %d executed %d times", trial, schedule, n, p, i, c)
			}
			if i < q0 && c != 1 {
				t.Fatalf("[%d %v n=%d p=%d] iteration %d below QuitIndex %d executed %d times", trial, schedule, n, p, i, q0, c)
			}
			totalExec += c
			if c == 1 && i >= q0 {
				overshot++
			}
		}
		if res.Executed != totalExec {
			t.Fatalf("[%d %v] Executed = %d, log says %d", trial, schedule, res.Executed, totalExec)
		}
		if res.Overshot != overshot {
			t.Fatalf("[%d %v] Overshot = %d, log says %d", trial, schedule, res.Overshot, overshot)
		}
		lower := res.QuitIndex
		if lower > n {
			lower = n
		}
		if res.Executed != lower+res.Overshot {
			t.Fatalf("[%d %v] identity violated: Executed %d != min(QuitIndex,n) %d + Overshot %d",
				trial, schedule, res.Executed, lower, res.Overshot)
		}

		s := m.Snapshot()
		if s.Executed != int64(res.Executed) || s.Overshot != int64(res.Overshot) {
			t.Fatalf("[%d %v] metrics disagree with result: %+v vs %+v", trial, schedule, s, res)
		}
		if s.Issued < s.Executed {
			t.Fatalf("[%d %v] issued %d < executed %d", trial, schedule, s.Issued, s.Executed)
		}
		var busy int64
		for _, v := range s.VPNBusy {
			busy += v
		}
		if busy != s.Executed {
			t.Fatalf("[%d %v] per-vpn busy sum %d != executed %d", trial, schedule, busy, s.Executed)
		}
	}
}

// TestGuidedStopsIssuingAfterQuit is the regression test for the
// Guided claim loop: before the fix, workers kept claiming and
// scanning chunks long after a QUIT was posted, so the number of
// issued iterations approached n even for an early exit.  With the
// quitAt check in the claim loop, a single processor stops after the
// chunk that contained the quitting iteration.
func TestGuidedStopsIssuingAfterQuit(t *testing.T) {
	const n, quitAt = 10_000, 5
	m := obs.NewMetrics()
	res := DOALL(n, Options{Procs: 1, Schedule: Guided, Metrics: m}, func(i, _ int) Control {
		if i == quitAt {
			return Quit
		}
		return Continue
	})
	if res.QuitIndex != quitAt {
		t.Fatalf("QuitIndex = %d", res.QuitIndex)
	}
	s := m.Snapshot()
	// One processor's first chunk is ceil(n/2) = 5000 iterations and
	// contains the quit; no further chunk may be claimed.
	if s.GuidedChunks != 1 || s.Issued != 5000 {
		t.Fatalf("guided kept claiming after QUIT: chunks=%d issued=%d", s.GuidedChunks, s.Issued)
	}
	if res.Executed != quitAt+1 || res.Overshot != 1 {
		t.Fatalf("executed=%d overshot=%d", res.Executed, res.Overshot)
	}
}

// TestDynamicOvershootCountsQuittingIteration pins the exact-accounting
// semantics deterministically: with one processor, iterations run in
// order, the quitting iteration is the only one at or beyond the final
// quit index, and Overshot is exactly 1.
func TestDynamicOvershootCountsQuittingIteration(t *testing.T) {
	for _, schedule := range []Schedule{Dynamic, Static, Guided} {
		res := DOALL(100, Options{Procs: 1, Schedule: schedule}, func(i, _ int) Control {
			if i == 40 {
				return Quit
			}
			return Continue
		})
		if res.QuitIndex != 40 || res.Executed != 41 || res.Overshot != 1 {
			t.Fatalf("%v: %+v", schedule, res)
		}
	}
}
