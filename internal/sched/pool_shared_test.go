package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"whilepar/internal/cancel"
)

// A shared pool admits concurrent Run callers one at a time, in FIFO
// order, instead of panicking on the busy CAS the way an owned pool
// does.  These tests drive it the way internal/serve does: many
// goroutines, one pool.

func TestSharedPoolConcurrentRun(t *testing.T) {
	p := NewSharedPool(4)
	defer p.Close()
	if !p.Shared() {
		t.Fatal("NewSharedPool: Shared() = false")
	}

	const callers = 32
	var sum atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Run(func(vpn int) { sum.Add(1) }); err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := sum.Load(); got != callers*4 {
		t.Fatalf("sum = %d, want %d (each Run touches all 4 workers)", got, callers*4)
	}
}

func TestSharedPoolFIFOAdmission(t *testing.T) {
	p := NewSharedPool(2)
	defer p.Close()

	// Hold the pool with one long Run, pile up waiters in a known
	// order, then verify they execute in that order.
	release := make(chan struct{})
	holding := make(chan struct{})
	var once sync.Once
	go func() {
		_ = p.Run(func(vpn int) {
			once.Do(func() { close(holding) })
			<-release
		})
	}()
	<-holding

	const waiters = 8
	var order []int
	var mu sync.Mutex
	enqueued := make(chan struct{}, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			enqueued <- struct{}{}
			_ = p.Run(func(vpn int) {
				if vpn == 0 {
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
				}
			})
		}(i)
	}
	// Admission order is the order the goroutines reach acquire(),
	// which we can't fully control — but every waiter enqueued before
	// the holder releases must run exactly once, with no lost or
	// duplicated tickets.
	for i := 0; i < waiters; i++ {
		<-enqueued
	}
	close(release)
	wg.Wait()
	if len(order) != waiters {
		t.Fatalf("ran %d waiters, want %d (order %v)", len(order), waiters, order)
	}
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] {
			t.Fatalf("waiter %d ran twice: %v", i, order)
		}
		seen[i] = true
	}
}

func TestSharedPoolPanicLeavesPoolUsable(t *testing.T) {
	p := NewSharedPool(3)
	defer p.Close()

	err := p.Run(func(vpn int) {
		if vpn == 1 {
			panic("boom")
		}
	})
	if !cancel.IsPanic(err) {
		t.Fatalf("err = %v, want worker panic", err)
	}

	// The ticket must have been released: later callers admit and run.
	var n atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Run(func(vpn int) { n.Add(1) }); err != nil {
				t.Errorf("Run after panic: %v", err)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 8*3 {
		t.Fatalf("n = %d, want %d", n.Load(), 8*3)
	}
}

func TestSharedPoolConcurrentDOALL(t *testing.T) {
	p := NewSharedPool(4)
	defer p.Close()

	const loops = 16
	const n = 200
	var wg sync.WaitGroup
	for c := 0; c < loops; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var hits atomic.Int64
			res, err := DOALLCtx(context.Background(), n, Options{Procs: 4, Pool: p},
				func(i, vpn int) Control {
					hits.Add(1)
					return Continue
				})
			if err != nil {
				t.Errorf("DOALLCtx: %v", err)
				return
			}
			if res.Executed != n || hits.Load() != n {
				t.Errorf("executed %d, hits %d, want %d", res.Executed, hits.Load(), n)
			}
		}()
	}
	wg.Wait()
}

func TestOwnedPoolStillPanicsOnConcurrentRun(t *testing.T) {
	// The single-coordinator discipline on owned pools is load-bearing
	// (it catches misuse); shared mode must not have weakened it.
	p := NewPool(2)
	defer p.Close()

	inside := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	go func() {
		_ = p.Run(func(vpn int) {
			once.Do(func() { close(inside) })
			<-release
		})
	}()
	<-inside
	func() {
		defer func() {
			if recover() == nil {
				t.Error("concurrent Run on an owned pool did not panic")
			}
			close(release)
		}()
		_ = p.Run(func(vpn int) {})
	}()
}
