package sched

import (
	"sync/atomic"
	"testing"

	"whilepar/internal/obs"
)

// TestStealingExactlyOnce checks the core DOALL contract under the
// work-stealing schedule: with no QUIT, every iteration runs exactly
// once, whatever the interleaving of home-block claims and steals.
func TestStealingExactlyOnce(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 8, 16} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			counts := make([]atomic.Int32, n)
			res := DOALL(n, Options{Procs: procs, Schedule: Stealing}, func(i, vpn int) Control {
				counts[i].Add(1)
				return Continue
			})
			if res.Executed != n || res.QuitIndex != n || res.Overshot != 0 || res.Prefix != n {
				t.Fatalf("procs=%d n=%d: %+v", procs, n, res)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("procs=%d n=%d: iteration %d ran %d times", procs, n, i, c)
				}
			}
		}
	}
}

// TestStealingQuitSemantics checks the Alliant QUIT contract under
// stealing: every iteration below the minimum quitting index runs
// exactly once, regardless of which block it lives in — including
// blocks belonging to workers other than the quitter's.
func TestStealingQuitSemantics(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		const n = 512
		for _, quit := range []int{0, 1, 100, 255, 511} {
			counts := make([]atomic.Int32, n)
			res := DOALL(n, Options{Procs: procs, Schedule: Stealing}, func(i, vpn int) Control {
				counts[i].Add(1)
				if i == quit {
					return Quit
				}
				return Continue
			})
			if res.QuitIndex != quit {
				t.Fatalf("procs=%d quit=%d: QuitIndex=%d", procs, quit, res.QuitIndex)
			}
			for i := 0; i < quit; i++ {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("procs=%d quit=%d: iteration %d ran %d times", procs, quit, i, c)
				}
			}
			for i := quit; i < n; i++ {
				if c := counts[i].Load(); c > 1 {
					t.Fatalf("procs=%d quit=%d: iteration %d ran %d times", procs, quit, i, c)
				}
			}
			if res.Prefix != quit {
				t.Fatalf("procs=%d quit=%d: Prefix=%d", procs, quit, res.Prefix)
			}
		}
	}
}

// TestStealingMatchesDynamic treats the shared-counter Dynamic schedule
// as the oracle: for identical deterministic bodies both schedules must
// produce identical Results (the executed set above the quit may differ
// — that is speculative overshoot — but the committed contract must
// not).
func TestStealingMatchesDynamic(t *testing.T) {
	const n = 777
	for _, procs := range []int{1, 3, 8} {
		for _, quit := range []int{-1, 0, 300, 776} {
			run := func(s Schedule) Result {
				return DOALL(n, Options{Procs: procs, Schedule: s}, func(i, vpn int) Control {
					if i == quit {
						return Quit
					}
					return Continue
				})
			}
			d, w := run(Dynamic), run(Stealing)
			if d.QuitIndex != w.QuitIndex || d.Prefix != w.Prefix {
				t.Fatalf("procs=%d quit=%d: dynamic %+v vs stealing %+v", procs, quit, d, w)
			}
			if quit < 0 && (w.Executed != n || d.Executed != n) {
				t.Fatalf("procs=%d: full space not covered: dynamic %+v vs stealing %+v", procs, d, w)
			}
		}
	}
}

// TestStealingOnPoolRecordsSteals runs the stealing schedule on a
// persistent pool with deliberately imbalanced bodies and checks both
// the contract and (when imbalance forces cross-block claims) the steal
// metrics plumbing.
func TestStealingOnPoolRecordsSteals(t *testing.T) {
	const n, procs = 2048, 8
	pool := NewPool(procs)
	defer pool.Close()
	m := &obs.Metrics{}
	counts := make([]atomic.Int32, n)
	res := DOALL(n, Options{Procs: procs, Schedule: Stealing, Pool: pool, Metrics: m}, func(i, vpn int) Control {
		counts[i].Add(1)
		if i < n/procs {
			// Workers owning later blocks finish early and must steal
			// the slow first block's leftovers.
			for k := 0; k < 2000; k++ {
				_ = k * k
			}
		}
		return Continue
	})
	if res.Executed != n {
		t.Fatalf("executed %d of %d", res.Executed, n)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
	// Steal counters are load-dependent; on a single-core host the home
	// worker may drain its block before anyone else runs.  Just require
	// the snapshot to be consistent.
	s := m.Snapshot()
	if s.StealChunks < 0 || s.StealIters < s.StealChunks {
		t.Fatalf("inconsistent steal counters: %+v", s)
	}
}

// TestPoolStressWideAndOversubscribed hammers 16- and 32-worker pools —
// far beyond this host's core count — with back-to-back regions, so the
// spin-then-park barrier's park path, not just the spin path, gets
// exercised under the race detector.
func TestPoolStressWideAndOversubscribed(t *testing.T) {
	for _, procs := range []int{16, 32} {
		pool := NewPool(procs)
		perVPN := make([]atomic.Int64, procs)
		const rounds = 300
		for r := 0; r < rounds; r++ {
			if err := pool.Run(func(vpn int) {
				perVPN[vpn].Add(1)
			}); err != nil {
				t.Fatalf("procs=%d round %d: %v", procs, r, err)
			}
		}
		for k := range perVPN {
			if got := perVPN[k].Load(); got != rounds {
				t.Fatalf("procs=%d: worker %d ran %d regions, want %d", procs, k, got, rounds)
			}
		}
		// A panicked region must not wedge the barrier.
		err := pool.Run(func(vpn int) {
			if vpn == procs/2 {
				panic("boom")
			}
		})
		if err == nil {
			t.Fatalf("procs=%d: contained panic not surfaced", procs)
		}
		if err := pool.Run(func(vpn int) { perVPN[vpn].Add(1) }); err != nil {
			t.Fatalf("procs=%d: pool unusable after panic: %v", procs, err)
		}
		pool.Close()
	}
}
