// Package sched is the goroutine-backed DOALL substrate: it executes the
// iteration space of a transformed WHILE loop on p virtual processors
// with either dynamic (self-scheduled) or static (mod-p, General-2
// style) assignment, and implements the Alliant-style QUIT semantics of
// Section 3.1: once an iteration signals QUIT, iterations with larger
// indices are never begun, while all iterations with smaller indices are
// executed; if several iterations signal QUIT, the smallest controls the
// exit.
//
// This executor establishes the *functional correctness* of every loop
// transformation under true concurrency.  Timing/speedup measurement is
// the job of internal/simproc — the host running the test suite may have
// a single CPU, whereas the paper's curves need 1..8 processors with
// controlled cost ratios.
package sched

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Control is a loop body's verdict for one iteration.
type Control int

const (
	// Continue: the iteration completed normally.
	Continue Control = iota
	// Quit: the iteration met a termination condition; iterations with
	// larger indices must not be started (they may already be running).
	Quit
)

// Schedule selects how iterations are assigned to virtual processors.
type Schedule int

const (
	// Dynamic self-scheduling: each free processor grabs the next
	// unissued iteration (the paper's dynamically scheduled DOALL,
	// used by Induction-1/2 and General-1/3).
	Dynamic Schedule = iota
	// Static mod-p assignment: processor k runs iterations congruent to
	// k modulo p (the assignment of General-2).
	Static
	// Guided self-scheduling: each free processor claims a chunk of
	// ceil(remaining/(2p)) iterations, amortizing the dispatch overhead
	// over early (large) chunks while keeping late (small) chunks for
	// load balance.  An extension beyond the paper's dynamic/static
	// pair, used by the scheduling-overhead ablation.
	Guided
)

// Options configures a DOALL execution.
type Options struct {
	// Procs is the number of virtual processors (goroutines). Values
	// below 1 are treated as 1.
	Procs int
	// Schedule selects dynamic or static iteration assignment.
	Schedule Schedule
}

func (o Options) procs() int {
	if o.Procs < 1 {
		return 1
	}
	return o.Procs
}

// Result reports what a DOALL execution did.
type Result struct {
	// Executed is the number of iterations whose body ran.
	Executed int
	// QuitIndex is the smallest iteration index that returned Quit, or
	// n if none did.  All iterations below it were executed; it and
	// anything above it that ran speculatively counts as overshoot for
	// RV loops.
	QuitIndex int
	// Overshot is the number of executed iterations with index >=
	// QuitIndex (including the quitting iteration itself only if other
	// iterations above the minimum also ran; the quitting iteration's
	// own body is assumed to have exited before writing).
	Overshot int
}

// DOALL executes iterations [0, n) of body on opts.procs() goroutines
// with QUIT semantics.  body receives the iteration index and the
// virtual processor number and must be safe for concurrent invocation on
// distinct iterations.
//
// Guarantee: every iteration with index below the final QuitIndex is
// executed exactly once.  No iteration is executed twice.  Iterations
// above the final QuitIndex may or may not be executed (speculative
// overshoot), mirroring a machine where in-flight iterations complete
// after a QUIT.
func DOALL(n int, opts Options, body func(i, vpn int) Control) Result {
	p := opts.procs()
	if n <= 0 {
		return Result{QuitIndex: 0}
	}

	var (
		next     atomic.Int64 // dynamic issue counter
		quitAt   atomic.Int64 // min index that returned Quit
		executed atomic.Int64
		overshot atomic.Int64
		wg       sync.WaitGroup
	)
	quitAt.Store(int64(n))

	runIter := func(i, vpn int) {
		if body(i, vpn) == Quit {
			// CAS-min on quitAt.
			for {
				cur := quitAt.Load()
				if int64(i) >= cur || quitAt.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
		executed.Add(1)
		if int64(i) > quitAt.Load() {
			overshot.Add(1)
		}
	}

	worker := func(vpn int) {
		defer wg.Done()
		switch opts.Schedule {
		case Static:
			for i := vpn; i < n; i += p {
				if int64(i) > quitAt.Load() {
					// A smaller iteration already quit; do not begin
					// larger ones.  Smaller ones on this processor have
					// already run (we go in order), so stop entirely.
					break
				}
				runIter(i, vpn)
			}
		case Guided:
			for {
				// Claim a chunk of ceil(remaining/(2p)) iterations.
				var lo, hi int
				for {
					cur := next.Load()
					if cur >= int64(n) {
						return
					}
					size := (int64(n) - cur + int64(2*p) - 1) / int64(2*p)
					if size < 1 {
						size = 1
					}
					if next.CompareAndSwap(cur, cur+size) {
						lo, hi = int(cur), int(cur+size)
						break
					}
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if int64(i) > quitAt.Load() {
						return
					}
					runIter(i, vpn)
				}
			}
		default: // Dynamic
			for {
				i := int(next.Add(1) - 1)
				if i >= n || int64(i) > quitAt.Load() {
					return
				}
				runIter(i, vpn)
			}
		}
	}

	wg.Add(p)
	for k := 0; k < p; k++ {
		go worker(k)
	}
	wg.Wait()

	return Result{
		Executed:  int(executed.Load()),
		QuitIndex: int(quitAt.Load()),
		Overshot:  int(overshot.Load()),
	}
}

// Dilemma with dynamic scheduling and QUIT: iterations strictly below the
// minimum quitting index must all run even if they are issued after the
// QUIT.  DOALL guarantees this because the issue counter is monotone: by
// the time iteration q returns Quit, every index below q has already
// been issued (dynamic) or is owned by a processor that will reach it
// before breaking (static, in-order per processor).

// ForEachProc runs fn(vpn) on procs goroutines and waits; it is the
// "doall i = 1, nproc" idiom of General-2 (Fig. 4).
func ForEachProc(procs int, fn func(vpn int)) {
	if procs < 1 {
		procs = 1
	}
	var wg sync.WaitGroup
	wg.Add(procs)
	for k := 0; k < procs; k++ {
		go func(vpn int) {
			defer wg.Done()
			fn(vpn)
		}(k)
	}
	wg.Wait()
}

// MinReduce computes the minimum over per-processor values, the
// post-DOALL "LI = min(L[0:nproc-1])" reduction of Fig. 2.  It returns
// def if vals is empty.
func MinReduce(vals []int, def int) int {
	m := def
	for _, v := range vals {
		if v < m {
			m = v
		}
	}
	return m
}

// MinReduceFloat is MinReduce over float64 values with identity +Inf.
func MinReduceFloat(vals []float64) float64 {
	m := math.Inf(1)
	for _, v := range vals {
		if v < m {
			m = v
		}
	}
	return m
}

// Validate panics if a schedule constant is out of range; used by
// callers that accept user-provided options.
func Validate(s Schedule) error {
	switch s {
	case Dynamic, Static, Guided:
		return nil
	}
	return fmt.Errorf("sched: unknown schedule %d", int(s))
}
