// Package sched is the goroutine-backed DOALL substrate: it executes the
// iteration space of a transformed WHILE loop on p virtual processors
// with either dynamic (self-scheduled) or static (mod-p, General-2
// style) assignment, and implements the Alliant-style QUIT semantics of
// Section 3.1: once an iteration signals QUIT, iterations with larger
// indices are never begun, while all iterations with smaller indices are
// executed; if several iterations signal QUIT, the smallest controls the
// exit.
//
// This executor establishes the *functional correctness* of every loop
// transformation under true concurrency.  Timing/speedup measurement is
// the job of internal/simproc — the host running the test suite may have
// a single CPU, whereas the paper's curves need 1..8 processors with
// controlled cost ratios.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"whilepar/internal/cancel"
	"whilepar/internal/obs"
)

// ErrUnknownSchedule is the typed sentinel Validate wraps when handed a
// Schedule constant outside the known set; callers test for it with
// errors.Is.
var ErrUnknownSchedule = errors.New("sched: unknown schedule")

// Control is a loop body's verdict for one iteration.
type Control int

const (
	// Continue: the iteration completed normally.
	Continue Control = iota
	// Quit: the iteration met a termination condition; iterations with
	// larger indices must not be started (they may already be running).
	Quit
)

// Schedule selects how iterations are assigned to virtual processors.
type Schedule int

const (
	// Dynamic self-scheduling: each free processor claims the next
	// unissued chunk of iterations from the shared counter, the chunk
	// growing geometrically (1, 2, 4, ... capped relative to n/p) so
	// the fetch-add and metrics costs amortize while the first claims
	// stay small enough for load balance (the paper's dynamically
	// scheduled DOALL, used by Induction-1/2 and General-1/3).
	Dynamic Schedule = iota
	// Static mod-p assignment: processor k runs iterations congruent to
	// k modulo p (the assignment of General-2).
	Static
	// Guided self-scheduling: each free processor claims a chunk of
	// ceil(remaining/(2p)) iterations, amortizing the dispatch overhead
	// over early (large) chunks while keeping late (small) chunks for
	// load balance.  An extension beyond the paper's dynamic/static
	// pair, used by the scheduling-overhead ablation.
	Guided
	// Stealing splits the iteration space into p contiguous blocks,
	// one per virtual processor, each with its own (cache-line padded)
	// claim cursor: a worker drains its home block and only then scans
	// the other blocks for leftovers.  On the common balanced strip
	// this removes the all-workers fetch-add contention of Dynamic —
	// each cursor is touched by one worker — while imbalance still
	// redistributes through the stealing pass.  QUIT semantics are
	// preserved by the same monotone-cursor argument as Dynamic,
	// applied per block (see the dilemma note below DOALLCtx).
	Stealing
)

// Options configures a DOALL execution.
type Options struct {
	// Procs is the number of virtual processors (goroutines). Values
	// below 1 are treated as 1.
	Procs int
	// Schedule selects dynamic or static iteration assignment.
	Schedule Schedule
	// Metrics, if non-nil, accumulates issue/execute/overshoot counts,
	// per-vpn busy counts and Guided chunk sizes.  nil records nothing.
	Metrics *obs.Metrics
	// Tracer, if non-nil, receives iteration spans and QUIT events.
	// nil costs one branch per potential event.
	Tracer obs.Tracer
	// Pool, if non-nil, dispatches workers onto a persistent pool
	// instead of spawning goroutines: Procs is clamped to the pool's
	// size and each DOALL costs one barrier release instead of p
	// spawns.  nil keeps the spawn-per-call path — the default and the
	// equivalence oracle for the pool.
	Pool *Pool
}

func (o Options) procs() int {
	if o.Procs < 1 {
		return 1
	}
	return o.Procs
}

// Result reports what a DOALL execution did.
type Result struct {
	// Executed is the number of iterations whose body ran.
	Executed int
	// QuitIndex is the smallest iteration index that returned Quit, or
	// n if none did.  All iterations below it were executed; it and
	// anything above it that ran speculatively counts as overshoot for
	// RV loops.
	QuitIndex int
	// Overshot is the number of executed iterations with index >= the
	// final QuitIndex — the quitting iteration itself plus every
	// speculative iteration above it that ran.  The accounting is exact:
	// it is computed after all workers have finished, against the final
	// quit index, so Executed == min(QuitIndex, n) + Overshot always
	// holds for a run-to-completion execution (every iteration below the
	// final QuitIndex runs exactly once).  A canceled or panicked
	// execution may leave holes below QuitIndex; Prefix is the honest
	// committed prefix in that case.
	Overshot int
	// Prefix is the length of the contiguous executed prefix, capped at
	// QuitIndex: every iteration in [0, Prefix) ran.  For an uncanceled,
	// panic-free execution Prefix == min(QuitIndex, n); after a
	// cancellation or contained panic it may be smaller.
	Prefix int
}

// blockCursor is one Stealing block's claim cursor, padded to a cache
// line so the p cursors — each written by its home worker on the common
// balanced path — never false-share.
type blockCursor struct {
	c atomic.Int64
	_ [56]byte
}

// DOALL executes iterations [0, n) of body on opts.procs() goroutines
// with QUIT semantics.  body receives the iteration index and the
// virtual processor number and must be safe for concurrent invocation on
// distinct iterations.
//
// Guarantee: every iteration with index below the final QuitIndex is
// executed exactly once.  No iteration is executed twice.  Iterations
// above the final QuitIndex may or may not be executed (speculative
// overshoot), mirroring a machine where in-flight iterations complete
// after a QUIT.
//
// DOALL runs to completion and preserves the historical crash semantics:
// a panicking body panics the caller.  Use DOALLCtx for cancellation and
// contained panics.
func DOALL(n int, opts Options, body func(i, vpn int) Control) Result {
	res, err := DOALLCtx(context.Background(), n, opts, body)
	if pe, ok := cancel.AsPanic(err); ok {
		panic(pe.Value)
	}
	return res
}

// DOALLCtx is DOALL under a context.  Cancellation is cooperative and
// observed at chunk claims and iteration boundaries: once ctx is done,
// workers stop claiming work and return within one chunk, and the call
// returns the Result accumulated so far (Result.Prefix is the committed
// contiguous prefix) together with ErrCanceled or ErrDeadline.
//
// A panicking body is contained by the worker that ran it: the first
// panic is converted into a *cancel.PanicError carrying the iteration
// and virtual processor, sibling workers are stopped as for a
// cancellation, and the error is returned (matching ErrWorkerPanic under
// errors.Is).  Workers never leak and the pool barrier, when one is
// used, always completes.
func DOALLCtx(ctx context.Context, n int, opts Options, body func(i, vpn int) Control) (Result, error) {
	p := opts.procs()
	if opts.Pool != nil && p > opts.Pool.Size() {
		// The worker closures below bake p into their schedules (the
		// Static stride, Guided chunk divisor), so the clamp must
		// happen before they are built.
		p = opts.Pool.Size()
	}
	if n <= 0 {
		return Result{QuitIndex: 0}, nil
	}

	m, tr := opts.Metrics, opts.Tracer

	if err := cancel.Err(ctx); err != nil {
		m.CtxCancel()
		return Result{QuitIndex: n}, err
	}

	var (
		next    atomic.Int64 // dynamic issue counter
		quitAt  atomic.Int64 // min index that returned Quit
		stopped atomic.Bool  // cancellation/panic stop flag
		panicAt atomic.Pointer[cancel.PanicError]
		blocks  []blockCursor // Stealing: one claim cursor per home block
	)
	quitAt.Store(int64(n))
	blockSpan := 0
	if opts.Schedule == Stealing {
		blocks = make([]blockCursor, p)
		blockSpan = (n + p - 1) / p
		for k := range blocks {
			blocks[k].c.Store(int64(k * blockSpan))
		}
	}

	// One atomic flag, flipped by context.AfterFunc, makes the per-chunk
	// cancellation check a plain load instead of a channel poll.
	if ctx != nil && ctx.Done() != nil {
		stopWatch := context.AfterFunc(ctx, func() { stopped.Store(true) })
		defer stopWatch()
	}

	// ran records which iterations actually executed.  Every index has
	// exactly one owner (the worker that claimed it), so plain bools
	// suffice; the reads below happen after wg.Wait(), which orders them
	// after every write.  Overshoot is then computed against the *final*
	// quit index — the per-iteration check `i > quitAt` used previously
	// raced against a concurrently-lowering quitAt and undercounted.
	ran := make([]bool, n)

	// Executed counts are batched per worker and flushed at chunk
	// boundaries (or loop exit) by the callers, so the hot path pays no
	// per-iteration busy-slot lookup.
	runIter := func(i, vpn int) {
		defer func() {
			if r := recover(); r != nil {
				pe := &cancel.PanicError{Iter: i, VPN: vpn, Value: r, Stack: debug.Stack()}
				if panicAt.CompareAndSwap(nil, pe) {
					m.WorkerPanic()
				}
				stopped.Store(true)
			}
		}()
		ts := obs.Start(tr)
		c := body(i, vpn)
		ran[i] = true
		if tr != nil {
			obs.Span(tr, ts, "iter", "doall", vpn, map[string]any{"i": i})
		}
		if c == Quit {
			// CAS-min on quitAt.
			for {
				cur := quitAt.Load()
				if int64(i) >= cur || quitAt.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			m.QuitPosted()
			if tr != nil {
				obs.Instant(tr, "QUIT", "doall", vpn, map[string]any{"i": i})
			}
		}
	}

	worker := func(vpn int) {
		switch opts.Schedule {
		case Stealing:
			// Geometric chunking as in Dynamic, but claims hit the home
			// block's private cursor first; only after the home block is
			// drained (or killed by a QUIT below it) does the worker
			// scan the other blocks, round-robin from its own.
			maxChunk := int64(n / (8 * p))
			if maxChunk > 64 {
				maxChunk = 64
			}
			if maxChunk < 1 {
				maxChunk = 1
			}
			chunk := int64(1)
			for d := 0; d < p; d++ {
				b := (vpn + d) % p
				end := int64((b + 1) * blockSpan)
				if end > int64(n) {
					end = int64(n)
				}
				cur := &blocks[b].c
				for {
					c := cur.Load()
					if stopped.Load() {
						return
					}
					if c >= end || c > quitAt.Load() {
						// Block exhausted, or its smallest unclaimed
						// index is beyond a posted QUIT: every index
						// still unclaimed here is dead work.  Cursors
						// are monotone and quitAt only decreases, so a
						// finished block never revives — one pass over
						// all p blocks covers the whole space.
						break
					}
					size := chunk
					if rem := end - c; size > rem {
						size = rem
					}
					if !cur.CompareAndSwap(c, c+size) {
						continue
					}
					lo, hi := int(c), int(c+size)
					m.IterIssued(hi - lo)
					if d == 0 {
						m.DynamicChunk(hi - lo)
					} else {
						m.StealChunk(hi - lo)
					}
					if chunk < maxChunk {
						chunk *= 2
						if chunk > maxChunk {
							chunk = maxChunk
						}
					}
					done := 0
					for i := lo; i < hi; i++ {
						if stopped.Load() || int64(i) > quitAt.Load() {
							break
						}
						runIter(i, vpn)
						done++
					}
					m.IterExecutedN(vpn, done)
				}
			}
		case Static:
			issued, done := 0, 0
			for i := vpn; i < n; i += p {
				if stopped.Load() {
					break
				}
				issued++
				if int64(i) > quitAt.Load() {
					// A smaller iteration already quit; do not begin
					// larger ones.  Smaller ones on this processor have
					// already run (we go in order), so stop entirely.
					break
				}
				runIter(i, vpn)
				done++
			}
			m.IterIssued(issued)
			m.IterExecutedN(vpn, done)
		case Guided:
			for {
				// Claim a chunk of ceil(remaining/(2p)) iterations.
				var lo, hi int
				for {
					cur := next.Load()
					if stopped.Load() || cur >= int64(n) || cur > quitAt.Load() {
						// The space is exhausted, a QUIT at an index
						// below the next chunk has been posted, or the
						// context was canceled — claiming further chunks
						// could only produce dead work, so stop issuing
						// promptly.
						return
					}
					size := (int64(n) - cur + int64(2*p) - 1) / int64(2*p)
					if size < 1 {
						size = 1
					}
					if next.CompareAndSwap(cur, cur+size) {
						lo, hi = int(cur), int(cur+size)
						break
					}
				}
				if hi > n {
					hi = n
				}
				m.IterIssued(hi - lo)
				m.GuidedChunk(hi - lo)
				done := 0
				for i := lo; i < hi; i++ {
					if stopped.Load() || int64(i) > quitAt.Load() {
						m.IterExecutedN(vpn, done)
						return
					}
					runIter(i, vpn)
					done++
				}
				m.IterExecutedN(vpn, done)
			}
		default: // Dynamic
			// Geometric chunking: per-worker claims double from 1 up to
			// a cap that keeps at least ~8 chunks per worker available
			// for balance.  Correctness is the Guided argument: the
			// claim counter is monotone, chunks are processed in order
			// with a per-iteration QUIT check, and no chunk is claimed
			// once the counter passes the posted quit index.
			maxChunk := int64(n / (8 * p))
			if maxChunk > 64 {
				maxChunk = 64
			}
			if maxChunk < 1 {
				maxChunk = 1
			}
			chunk := int64(1)
			for {
				var lo, hi int
				for {
					cur := next.Load()
					if stopped.Load() || cur >= int64(n) || cur > quitAt.Load() {
						return
					}
					size := chunk
					if rem := int64(n) - cur; size > rem {
						size = rem
					}
					if next.CompareAndSwap(cur, cur+size) {
						lo, hi = int(cur), int(cur+size)
						break
					}
				}
				m.IterIssued(hi - lo)
				m.DynamicChunk(hi - lo)
				if chunk < maxChunk {
					chunk *= 2
					if chunk > maxChunk {
						chunk = maxChunk
					}
				}
				done := 0
				for i := lo; i < hi; i++ {
					if stopped.Load() || int64(i) > quitAt.Load() {
						m.IterExecutedN(vpn, done)
						return
					}
					runIter(i, vpn)
					done++
				}
				m.IterExecutedN(vpn, done)
			}
		}
	}

	if opts.Pool != nil {
		// One barrier release instead of p spawns.  Pool workers with
		// vpn >= p (the clamp above makes this impossible, but a
		// smaller Procs is allowed) just arrive at the barrier.
		m.PoolDispatch(p)
		if err := opts.Pool.Run(func(vpn int) {
			if vpn < p {
				worker(vpn)
			}
		}); err != nil {
			// Backstop for panics escaping the per-iteration recover
			// (i.e. in the scheduling code itself, not a body).
			if pe, ok := cancel.AsPanic(err); ok && panicAt.CompareAndSwap(nil, pe) {
				m.WorkerPanic()
			}
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(p)
		for k := 0; k < p; k++ {
			go func(vpn int) {
				defer wg.Done()
				worker(vpn)
			}(k)
		}
		wg.Wait()
	}

	// Exact accounting against the final quit index; prefix is the first
	// hole (an unexecuted index), which only cancellation or a panic can
	// open below the quit index.
	q := int(quitAt.Load())
	executed, overshot, prefix := 0, 0, -1
	for i, r := range ran {
		if r {
			executed++
			if i >= q {
				overshot++
			}
		} else if prefix < 0 {
			prefix = i
		}
	}
	if prefix < 0 {
		prefix = n
	}
	if q < prefix {
		prefix = q
	}
	m.OvershotAdd(overshot)

	res := Result{
		Executed:  executed,
		QuitIndex: q,
		Overshot:  overshot,
		Prefix:    prefix,
	}
	if pe := panicAt.Load(); pe != nil {
		return res, pe
	}
	if err := cancel.Err(ctx); err != nil {
		m.CtxCancel()
		return res, err
	}
	return res, nil
}

// Dilemma with dynamic scheduling and QUIT: iterations strictly below the
// minimum quitting index must all run even if they are issued after the
// QUIT.  DOALL guarantees this because the issue counter is monotone: by
// the time iteration q returns Quit, every index below q has already
// been claimed (dynamic/guided chunks cover the counter's prefix, and
// each owner processes its chunk in order, skipping only indices
// strictly above the posted quit) or is owned by a processor that will
// reach it before breaking (static, in-order per processor).  Stealing
// applies the same argument per block: each block's cursor is monotone,
// every worker's scan leaves a block only when it is exhausted or its
// smallest unclaimed index exceeds the posted quit (which only
// decreases), so an index below the final quit in any block is always
// claimed by some worker's pass and executed by its in-order chunk walk.

// ProcConfig bundles the optional knobs of ForEachProc into one options
// struct, so the entry point has a single signature instead of an
// arity ladder.  The zero value (no hooks, spawn-per-call) is valid.
type ProcConfig struct {
	// Hooks, if non-zero, receives worker spans and pool-dispatch
	// counts.
	Hooks obs.Hooks
	// Pool, if non-nil, dispatches the workers onto a persistent pool
	// (procs is clamped to its size) instead of spawning goroutines.
	Pool *Pool
}

// ForEachProc runs fn(vpn) on procs workers and waits; it is the
// "doall i = 1, nproc" idiom of General-2 (Fig. 4).  Each virtual
// processor's whole activation is traced as one span (cfg.Hooks), so
// the per-vpn lanes of a Chrome trace show when workers were alive.
//
// A ctx that is already done prevents any worker from starting; a ctx
// canceled mid-run cannot interrupt fn (the workers run one activation
// each — cooperative engines layered on top poll their own stop flags)
// but is reported in the returned error.  A panicking fn is contained:
// the first panic is returned as a *cancel.PanicError (Iter == -1, the
// panic was not tied to an iteration), the remaining workers complete,
// and the pool barrier, when one is used, always completes.
func ForEachProc(ctx context.Context, procs int, cfg ProcConfig, fn func(vpn int)) error {
	if procs < 1 {
		procs = 1
	}
	h := cfg.Hooks
	if err := cancel.Err(ctx); err != nil {
		h.M.CtxCancel()
		return err
	}

	var panicAt atomic.Pointer[cancel.PanicError]
	run := func(vpn int) {
		defer func() {
			if r := recover(); r != nil {
				pe := &cancel.PanicError{Iter: -1, VPN: vpn, Value: r, Stack: debug.Stack()}
				if panicAt.CompareAndSwap(nil, pe) {
					h.M.WorkerPanic()
				}
			}
		}()
		ts := obs.Start(h.T)
		fn(vpn)
		if h.T != nil {
			obs.Span(h.T, ts, "worker", "foreachproc", vpn, nil)
		}
	}

	if pool := cfg.Pool; pool != nil {
		if procs > pool.Size() {
			procs = pool.Size()
		}
		h.M.PoolDispatch(procs)
		if err := pool.Run(func(vpn int) {
			if vpn < procs {
				run(vpn)
			}
		}); err != nil {
			if pe, ok := cancel.AsPanic(err); ok && panicAt.CompareAndSwap(nil, pe) {
				h.M.WorkerPanic()
			}
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(procs)
		for k := 0; k < procs; k++ {
			go func(vpn int) {
				defer wg.Done()
				run(vpn)
			}(k)
		}
		wg.Wait()
	}

	if pe := panicAt.Load(); pe != nil {
		return pe
	}
	if err := cancel.Err(ctx); err != nil {
		h.M.CtxCancel()
		return err
	}
	return nil
}

// MinReduce computes the minimum over per-processor values, the
// post-DOALL "LI = min(L[0:nproc-1])" reduction of Fig. 2.  It returns
// def if vals is empty.
func MinReduce(vals []int, def int) int {
	m := def
	for _, v := range vals {
		if v < m {
			m = v
		}
	}
	return m
}

// MinReduceFloat is MinReduce over float64 values with identity +Inf.
func MinReduceFloat(vals []float64) float64 {
	m := math.Inf(1)
	for _, v := range vals {
		if v < m {
			m = v
		}
	}
	return m
}

// Validate returns an error if a schedule constant is out of range (it
// never panics); callers that accept user-provided options check it
// before executing so an unknown schedule is rejected rather than
// silently treated as Dynamic.
func Validate(s Schedule) error {
	switch s {
	case Dynamic, Static, Guided, Stealing:
		return nil
	}
	return fmt.Errorf("%w: %d", ErrUnknownSchedule, int(s))
}
