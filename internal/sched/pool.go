package sched

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"whilepar/internal/cancel"
	"whilepar/internal/obs"
)

// Pool is a persistent worker-pool executor: p goroutines are spawned
// once and then parked on a sense-reversing barrier between parallel
// regions, so a strip-mined speculative loop pays one barrier release
// per strip instead of p goroutine spawns plus a fresh sync.WaitGroup.
//
// The barrier is the classic sense-reversing design generalized to a
// generation counter: the coordinator publishes a job and advances the
// shared sense word; each worker holds the last sense it observed, runs
// the job when the shared word moves past it, and parks again after
// signalling arrival.  A counter instead of a flipped boolean keeps the
// same one-word hand-off while making a missed wakeup structurally
// impossible (a worker can never confuse generation k with k+2).
//
// Discipline: a Pool has a single coordinator.  Run blocks until every
// worker has finished the job, so two concurrent Runs on one Pool are
// a bug (Run panics on misuse rather than interleaving jobs).  Workers
// are identified by their virtual processor number 0..Size()-1, which
// is stable across Runs — per-vpn substrates (stamp shards, busy
// counters) see the same single-writer slots a spawn-per-call DOALL
// would produce.
//
// The spawn-per-call paths (DOALL with a nil Options.Pool, ForEachProc)
// are retained unchanged as the equivalence oracle and benchmark
// baseline.
type Pool struct {
	procs int

	mu   sync.Mutex
	cv   *sync.Cond // workers park here between regions
	done *sync.Cond // the coordinator parks here during a region

	sense  uint64 // barrier sense word: advances once per region
	job    func(vpn int)
	jobErr *cancel.PanicError // first panic contained during the region
	left   int                // workers that have not yet arrived at the barrier
	closed bool

	busy atomic.Bool // coordinator-misuse guard
	wg   sync.WaitGroup
}

// NewPool spawns procs workers (at least 1) and parks them.  The
// caller must Close the pool when done with it; a leaked pool leaks
// its parked goroutines.
func NewPool(procs int) *Pool {
	if procs < 1 {
		procs = 1
	}
	p := &Pool{procs: procs}
	p.cv = sync.NewCond(&p.mu)
	p.done = sync.NewCond(&p.mu)
	p.wg.Add(procs)
	for k := 0; k < procs; k++ {
		go p.worker(k)
	}
	return p
}

// Size returns the number of workers the pool was spawned with.
func (p *Pool) Size() int { return p.procs }

func (p *Pool) worker(vpn int) {
	defer p.wg.Done()
	seen := uint64(0) // the sense this worker last ran
	for {
		p.mu.Lock()
		for p.sense == seen && !p.closed {
			p.cv.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		seen = p.sense
		job := p.job
		p.mu.Unlock()

		pe := runShielded(job, vpn)

		p.mu.Lock()
		if pe != nil && p.jobErr == nil {
			p.jobErr = pe
		}
		p.left--
		if p.left == 0 {
			p.done.Signal()
		}
		p.mu.Unlock()
	}
}

// runShielded executes one worker's share of a region behind a recover
// backstop: a panicking job must still arrive at the barrier (the
// decrement of left above), or every future Run would deadlock the
// coordinator and the panic would take the whole process down with a
// parked pool.  The first contained panic per region is surfaced by Run.
func runShielded(job func(vpn int), vpn int) (pe *cancel.PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = &cancel.PanicError{Iter: -1, VPN: vpn, Value: r, Stack: debug.Stack()}
		}
	}()
	job(vpn)
	return nil
}

// Run executes job(vpn) on every worker and returns when all have
// finished — one barrier release plus one barrier arrival, no spawns.
// It panics if called concurrently with itself (single coordinator) or
// after Close.
//
// A panicking job is contained by the worker's recover backstop so the
// barrier always completes; the first such panic is returned as a
// *cancel.PanicError (nil when the region ran clean).  The pool remains
// usable after a panicked region.
func (p *Pool) Run(job func(vpn int)) error {
	if !p.busy.CompareAndSwap(false, true) {
		panic("sched: concurrent Pool.Run (a Pool has a single coordinator)")
	}
	defer p.busy.Store(false)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sched: Pool.Run after Close")
	}
	p.job = job
	p.jobErr = nil
	p.left = p.procs
	p.sense++ // release the barrier: workers holding the old sense wake
	p.cv.Broadcast()
	for p.left > 0 {
		p.done.Wait()
	}
	p.job = nil
	var err error
	if p.jobErr != nil {
		err = p.jobErr
		p.jobErr = nil
	}
	p.mu.Unlock()
	return err
}

// Close unparks every worker for exit and waits for them to terminate.
// It must not race a Run; calling it twice is a no-op.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cv.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// ForEachProcPool is the legacy pool-arity entry point: the "doall
// i = 1, nproc" idiom without the per-call spawns.  procs is clamped to
// the pool's size; a nil pool falls back to the spawn-per-call path.
//
// Deprecated: use ForEachProc with a ProcConfig.  This wrapper runs on
// context.Background() and re-panics a contained worker panic to
// preserve the historical crash semantics.
func ForEachProcPool(procs int, pool *Pool, h obs.Hooks, fn func(vpn int)) {
	if err := ForEachProc(context.Background(), procs, ProcConfig{Hooks: h, Pool: pool}, fn); err != nil {
		if pe, ok := cancel.AsPanic(err); ok {
			panic(pe.Value)
		}
	}
}
