package sched

import (
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"whilepar/internal/cancel"
)

// Spin tuning for the barrier fast path.  A strip-mined loop releases
// the barrier every few microseconds, so both sides spin briefly on the
// atomic words — yielding the scheduler periodically to stay fair on
// oversubscribed hosts — before falling back to a condvar park.  The
// defaults suit a dedicated host; PoolConfig (or the WHILEPAR_SPIN_*
// environment variables) retunes them for oversubscribed or
// latency-insensitive deployments without touching call sites.
const (
	defaultSpinArrive = 192  // worker iterations on the sense word before parking
	defaultSpinDone   = 1024 // coordinator iterations on the arrival count before parking
	yieldEvery        = 16
)

// envSpin reads the process-wide spin overrides once: a non-negative
// integer in WHILEPAR_SPIN_ARRIVE / WHILEPAR_SPIN_DONE replaces the
// corresponding default for every pool that does not set an explicit
// PoolConfig value.  Malformed or negative values are ignored — a bad
// environment must never change barrier semantics, only spin budget.
var envSpin = sync.OnceValues(func() (arrive, done int) {
	arrive, done = defaultSpinArrive, defaultSpinDone
	if v, err := strconv.Atoi(os.Getenv("WHILEPAR_SPIN_ARRIVE")); err == nil && v >= 0 {
		arrive = v
	}
	if v, err := strconv.Atoi(os.Getenv("WHILEPAR_SPIN_DONE")); err == nil && v >= 0 {
		done = v
	}
	return arrive, done
})

// PoolConfig tunes a Pool beyond its worker count.  The zero value of
// every field means "the default" (after the WHILEPAR_SPIN_ARRIVE /
// WHILEPAR_SPIN_DONE environment overrides, when set), so
// NewPoolWith(PoolConfig{Procs: n}) is NewPool(n).
type PoolConfig struct {
	// Procs is the worker count (at least 1).
	Procs int
	// SpinArrive bounds each worker's spin on the barrier sense word
	// before it parks on the condvar; SpinDone bounds the coordinator's
	// spin on the arrival count.  0 means the default; a negative value
	// disables spinning entirely (park immediately — the right call on
	// heavily oversubscribed hosts where a spinning worker steals the
	// cycles the release needs).
	SpinArrive int
	SpinDone   int
	// Shared relaxes the single-coordinator discipline: concurrent Run
	// calls are admitted one at a time in strict FIFO order instead of
	// panicking, so many independent executions can multiplex their
	// parallel regions onto one pool.  Each region still runs with the
	// pool entirely to itself — sharing serializes at region
	// granularity, it never interleaves two jobs on the barrier.
	Shared bool
}

// spin resolves one configured spin bound against its env-adjusted
// default.
func (c PoolConfig) spin(configured, fallback int) int {
	if configured < 0 {
		return 0
	}
	if configured == 0 {
		return fallback
	}
	return configured
}

// Pool is a persistent worker-pool executor: p goroutines are spawned
// once and then parked on a sense-reversing barrier between parallel
// regions, so a strip-mined speculative loop pays one barrier release
// per strip instead of p goroutine spawns plus a fresh sync.WaitGroup.
//
// The barrier is the classic sense-reversing design generalized to a
// generation counter, with the hand-off moved off the mutex: the
// coordinator publishes a job and advances an atomic sense word; each
// worker holds the last sense it ran and spins briefly on the shared
// word before parking on a condvar, so back-to-back strips release in
// a handful of atomic loads with no lock traffic at all.  A counter
// instead of a flipped boolean keeps the same one-word hand-off while
// making a missed wakeup structurally impossible (a worker can never
// confuse generation k with k+2).
//
// Park/release soundness (Go atomics are sequentially consistent): a
// worker announces itself in parked before re-checking the sense under
// the mutex, and the coordinator advances the sense before reading
// parked.  Whichever order the two sides interleave in, either the
// coordinator observes the parker and broadcasts under the same mutex,
// or the worker's under-lock re-check observes the advanced sense and
// never sleeps.  The completion side mirrors it: the coordinator raises
// coordWaiting before re-checking the arrival count under its mutex,
// and the last worker decrements the count before reading coordWaiting.
//
// Discipline: a Pool has a single coordinator.  Run blocks until every
// worker has finished the job, so two concurrent Runs on one Pool are
// a bug (Run panics on misuse rather than interleaving jobs).  A
// shared pool (PoolConfig.Shared / NewSharedPool) keeps the invariant
// by admission instead of by contract: concurrent Run calls queue in
// FIFO order and each region still owns the barrier outright.  Workers
// are identified by their virtual processor number 0..Size()-1, which
// is stable across Runs — per-vpn substrates (stamp shards, busy
// counters) see the same single-writer slots a spawn-per-call DOALL
// would produce.
//
// The spawn-per-call paths (DOALL with a nil Options.Pool, ForEachProc)
// are retained unchanged as the equivalence oracle and benchmark
// baseline.
type Pool struct {
	procs                int
	spinArrive, spinDone int

	sense  atomic.Uint64 // barrier sense word: advances once per region
	left   atomic.Int64  // workers that have not yet arrived at the barrier
	parked atomic.Int64  // workers asleep on cv (coordinator broadcasts only then)
	closed atomic.Bool

	job    func(vpn int)
	jobErr atomic.Pointer[cancel.PanicError] // first panic contained during the region

	mu sync.Mutex // guards worker parking only
	cv *sync.Cond // workers park here between regions

	coordWaiting atomic.Bool
	doneMu       sync.Mutex // guards coordinator parking only
	doneCv       *sync.Cond // the coordinator parks here during a long region

	busy atomic.Bool // coordinator-misuse guard
	wg   sync.WaitGroup

	// Shared-mode admission (PoolConfig.Shared): concurrent Run calls
	// queue here in FIFO order instead of tripping the busy guard.
	shared  bool
	admitMu sync.Mutex
	running bool            // a coordinator currently owns the barrier
	waiters []chan struct{} // FIFO queue of blocked Run calls
}

// NewPool spawns procs workers (at least 1) and parks them.  The
// caller must Close the pool when done with it; a leaked pool leaks
// its parked goroutines.
func NewPool(procs int) *Pool {
	return NewPoolWith(PoolConfig{Procs: procs})
}

// NewSharedPool spawns a pool whose coordinator role is admitted
// across concurrent Run calls in strict FIFO order (PoolConfig.Shared)
// — the substrate for services that multiplex many independent loop
// executions onto one set of workers.
func NewSharedPool(procs int) *Pool {
	return NewPoolWith(PoolConfig{Procs: procs, Shared: true})
}

// NewPoolWith is NewPool with the barrier spin budget under the
// caller's control; see PoolConfig.
func NewPoolWith(cfg PoolConfig) *Pool {
	procs := cfg.Procs
	if procs < 1 {
		procs = 1
	}
	envArrive, envDone := envSpin()
	p := &Pool{
		procs:      procs,
		spinArrive: cfg.spin(cfg.SpinArrive, envArrive),
		spinDone:   cfg.spin(cfg.SpinDone, envDone),
		shared:     cfg.Shared,
	}
	p.cv = sync.NewCond(&p.mu)
	p.doneCv = sync.NewCond(&p.doneMu)
	p.wg.Add(procs)
	for k := 0; k < procs; k++ {
		go p.worker(k)
	}
	return p
}

// Size returns the number of workers the pool was spawned with.
func (p *Pool) Size() int { return p.procs }

// Shared reports whether the pool admits concurrent Run callers (FIFO)
// instead of panicking on a second coordinator.
func (p *Pool) Shared() bool { return p.shared }

// acquire blocks until the caller owns the coordinator role.  Admission
// is strict FIFO: a releasing coordinator hands the role directly to
// the oldest waiter (running stays true across the hand-off), so no
// caller can barge past the queue.
func (p *Pool) acquire() {
	p.admitMu.Lock()
	if !p.running {
		p.running = true
		p.admitMu.Unlock()
		return
	}
	ch := make(chan struct{})
	p.waiters = append(p.waiters, ch)
	p.admitMu.Unlock()
	<-ch
}

// release hands the coordinator role to the oldest waiter, or marks the
// pool idle when none is queued.
func (p *Pool) release() {
	p.admitMu.Lock()
	if len(p.waiters) > 0 {
		ch := p.waiters[0]
		p.waiters = p.waiters[1:]
		close(ch)
	} else {
		p.running = false
	}
	p.admitMu.Unlock()
}

func (p *Pool) worker(vpn int) {
	defer p.wg.Done()
	seen := uint64(0) // the sense this worker last ran
	for {
		if !p.await(seen) {
			return
		}
		// The single-coordinator discipline means the sense advances
		// exactly once per region (Run cannot start the next region
		// until every worker has arrived), so the next generation is
		// always seen+1.
		seen++
		job := p.job

		pe := runShielded(job, vpn)
		if pe != nil {
			p.jobErr.CompareAndSwap(nil, pe)
		}
		if p.left.Add(-1) == 0 && p.coordWaiting.Load() {
			p.doneMu.Lock()
			p.doneCv.Signal()
			p.doneMu.Unlock()
		}
	}
}

// await blocks until the sense word moves past seen (returning true) or
// the pool closes (returning false): a bounded spin on the atomic word,
// then a condvar park announced through the parked counter.
func (p *Pool) await(seen uint64) bool {
	for spin := 0; spin < p.spinArrive; spin++ {
		if p.sense.Load() != seen {
			return true
		}
		if p.closed.Load() {
			return false
		}
		if spin%yieldEvery == yieldEvery-1 {
			runtime.Gosched()
		}
	}
	p.parked.Add(1)
	p.mu.Lock()
	for p.sense.Load() == seen && !p.closed.Load() {
		p.cv.Wait()
	}
	p.mu.Unlock()
	p.parked.Add(-1)
	return p.sense.Load() != seen
}

// runShielded executes one worker's share of a region behind a recover
// backstop: a panicking job must still arrive at the barrier (the
// decrement of left above), or every future Run would deadlock the
// coordinator and the panic would take the whole process down with a
// parked pool.  The first contained panic per region is surfaced by Run.
func runShielded(job func(vpn int), vpn int) (pe *cancel.PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = &cancel.PanicError{Iter: -1, VPN: vpn, Value: r, Stack: debug.Stack()}
		}
	}()
	job(vpn)
	return nil
}

// Run executes job(vpn) on every worker and returns when all have
// finished — one atomic barrier release plus one barrier arrival, no
// spawns and (on the fast path) no locks.  It panics if called
// concurrently with itself (single coordinator) or after Close.
//
// A panicking job is contained by the worker's recover backstop so the
// barrier always completes; the first such panic is returned as a
// *cancel.PanicError (nil when the region ran clean).  The pool remains
// usable after a panicked region.
//
// On a shared pool (NewSharedPool) concurrent Run calls do not panic:
// each blocks until it is admitted as the coordinator, in FIFO order.
func (p *Pool) Run(job func(vpn int)) error {
	if p.shared {
		p.acquire()
		defer p.release()
	}
	if !p.busy.CompareAndSwap(false, true) {
		panic("sched: concurrent Pool.Run (a Pool has a single coordinator)")
	}
	defer p.busy.Store(false)
	if p.closed.Load() {
		panic("sched: Pool.Run after Close")
	}
	p.job = job
	p.jobErr.Store(nil)
	p.left.Store(int64(p.procs))
	p.sense.Add(1) // release: spinning workers see the new generation at once
	if p.parked.Load() > 0 {
		p.mu.Lock()
		p.cv.Broadcast()
		p.mu.Unlock()
	}
	p.awaitDone()
	p.job = nil
	if pe := p.jobErr.Swap(nil); pe != nil {
		return pe
	}
	return nil
}

// awaitDone blocks until every worker has arrived: a bounded spin on
// the arrival count, then a condvar park announced via coordWaiting.
func (p *Pool) awaitDone() {
	for spin := 0; spin < p.spinDone; spin++ {
		if p.left.Load() == 0 {
			return
		}
		if spin%yieldEvery == yieldEvery-1 {
			runtime.Gosched()
		}
	}
	p.coordWaiting.Store(true)
	p.doneMu.Lock()
	for p.left.Load() > 0 {
		p.doneCv.Wait()
	}
	p.doneMu.Unlock()
	p.coordWaiting.Store(false)
}

// Close unparks every worker for exit and waits for them to terminate.
// It must not race a Run; calling it twice is a no-op.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	p.mu.Lock()
	p.cv.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
