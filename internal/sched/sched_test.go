package sched

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDOALLExecutesAllIterationsOnce(t *testing.T) {
	for _, s := range []Schedule{Dynamic, Static} {
		n := 1000
		counts := make([]atomic.Int32, n)
		res := DOALL(n, Options{Procs: 7, Schedule: s}, func(i, vpn int) Control {
			counts[i].Add(1)
			return Continue
		})
		if res.Executed != n || res.QuitIndex != n || res.Overshot != 0 {
			t.Fatalf("schedule %v: result %+v", s, res)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("schedule %v: iteration %d ran %d times", s, i, c)
			}
		}
	}
}

func TestDOALLQuitSemantics(t *testing.T) {
	// Iteration 100 quits.  Every iteration below 100 must run exactly
	// once; no iteration may run twice; the quit index must be exact.
	for _, s := range []Schedule{Dynamic, Static} {
		n := 5000
		counts := make([]atomic.Int32, n)
		res := DOALL(n, Options{Procs: 8, Schedule: s}, func(i, vpn int) Control {
			counts[i].Add(1)
			if i == 100 {
				return Quit
			}
			return Continue
		})
		if res.QuitIndex != 100 {
			t.Fatalf("schedule %v: QuitIndex = %d, want 100", s, res.QuitIndex)
		}
		for i := 0; i < 100; i++ {
			if counts[i].Load() != 1 {
				t.Fatalf("schedule %v: valid iteration %d ran %d times", s, i, counts[i].Load())
			}
		}
		for i := range counts {
			if counts[i].Load() > 1 {
				t.Fatalf("schedule %v: iteration %d ran twice", s, i)
			}
		}
		if res.Executed >= n {
			t.Fatalf("schedule %v: quit did not curb execution (%d)", s, res.Executed)
		}
	}
}

func TestDOALLMultipleQuitsSmallestWins(t *testing.T) {
	// Several iterations quit; the smallest controls the exit.
	quitters := map[int]bool{50: true, 200: true, 75: true}
	res := DOALL(1000, Options{Procs: 4}, func(i, vpn int) Control {
		if quitters[i] {
			return Quit
		}
		return Continue
	})
	if res.QuitIndex != 50 {
		t.Fatalf("QuitIndex = %d, want 50", res.QuitIndex)
	}
}

func TestDOALLZeroAndNegativeN(t *testing.T) {
	ran := false
	res := DOALL(0, Options{Procs: 4}, func(i, vpn int) Control { ran = true; return Continue })
	if ran || res.Executed != 0 || res.QuitIndex != 0 {
		t.Fatalf("empty loop misbehaved: %+v", res)
	}
	res = DOALL(-5, Options{Procs: 4}, func(i, vpn int) Control { ran = true; return Continue })
	if ran || res.Executed != 0 {
		t.Fatalf("negative-n loop misbehaved: %+v", res)
	}
}

func TestDOALLDefaultsToOneProc(t *testing.T) {
	order := []int{}
	res := DOALL(10, Options{}, func(i, vpn int) Control {
		if vpn != 0 {
			t.Fatalf("vpn = %d on 1-proc run", vpn)
		}
		order = append(order, i) // safe: single goroutine
		return Continue
	})
	if res.Executed != 10 {
		t.Fatalf("executed %d", res.Executed)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("1-proc dynamic order not sequential: %v", order)
		}
	}
}

func TestDOALLVPNRange(t *testing.T) {
	var bad atomic.Bool
	DOALL(500, Options{Procs: 5}, func(i, vpn int) Control {
		if vpn < 0 || vpn >= 5 {
			bad.Store(true)
		}
		return Continue
	})
	if bad.Load() {
		t.Fatal("vpn out of range")
	}
}

func TestDOALLQuitProperty(t *testing.T) {
	// Property: for a random quit set, the final QuitIndex is the
	// minimum of the set (if any quitter <= all executed indices gets
	// executed — guaranteed because everything below the running
	// minimum is executed).
	f := func(seed uint16, procsRaw uint8) bool {
		n := 300
		q1 := int(seed) % n
		q2 := (int(seed) * 7) % n
		procs := int(procsRaw)%6 + 1
		want := q1
		if q2 < q1 {
			want = q2
		}
		res := DOALL(n, Options{Procs: procs, Schedule: Dynamic}, func(i, vpn int) Control {
			if i == q1 || i == q2 {
				return Quit
			}
			return Continue
		})
		return res.QuitIndex == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestForEachProc(t *testing.T) {
	var mask atomic.Int64
	if err := ForEachProc(context.Background(), 6, ProcConfig{}, func(vpn int) { mask.Add(1 << vpn) }); err != nil {
		t.Fatalf("ForEachProc: %v", err)
	}
	if mask.Load() != (1<<6)-1 {
		t.Fatalf("mask = %b", mask.Load())
	}
	// procs < 1 coerces to 1.
	calls := 0
	if err := ForEachProc(context.Background(), 0, ProcConfig{}, func(vpn int) { calls++ }); err != nil {
		t.Fatalf("ForEachProc: %v", err)
	}
	if calls != 1 {
		t.Fatalf("ForEachProc(0) ran %d times", calls)
	}
}

func TestMinReduce(t *testing.T) {
	if MinReduce([]int{9, 3, 7}, 100) != 3 {
		t.Error("MinReduce broken")
	}
	if MinReduce(nil, 42) != 42 {
		t.Error("MinReduce default broken")
	}
	if MinReduceFloat([]float64{2.5, 1.5}) != 1.5 {
		t.Error("MinReduceFloat broken")
	}
	if !math.IsInf(MinReduceFloat(nil), 1) {
		t.Error("MinReduceFloat identity broken")
	}
}

func TestValidate(t *testing.T) {
	if Validate(Dynamic) != nil || Validate(Static) != nil {
		t.Error("valid schedules rejected")
	}
	if Validate(Schedule(99)) == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestGuidedScheduleCorrectness(t *testing.T) {
	n := 3000
	counts := make([]atomic.Int32, n)
	res := DOALL(n, Options{Procs: 6, Schedule: Guided}, func(i, vpn int) Control {
		counts[i].Add(1)
		return Continue
	})
	if res.Executed != n || res.QuitIndex != n {
		t.Fatalf("result %+v", res)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestGuidedScheduleQuit(t *testing.T) {
	n := 5000
	counts := make([]atomic.Int32, n)
	res := DOALL(n, Options{Procs: 8, Schedule: Guided}, func(i, vpn int) Control {
		counts[i].Add(1)
		if i == 321 {
			return Quit
		}
		return Continue
	})
	if res.QuitIndex != 321 {
		t.Fatalf("QuitIndex = %d", res.QuitIndex)
	}
	for i := 0; i < 321; i++ {
		if counts[i].Load() != 1 {
			t.Fatalf("valid iteration %d ran %d times", i, counts[i].Load())
		}
	}
	for i := range counts {
		if counts[i].Load() > 1 {
			t.Fatalf("iteration %d ran twice", i)
		}
	}
}

func TestGuidedQuitProperty(t *testing.T) {
	f := func(qRaw, pRaw uint8) bool {
		n := 800
		q := int(qRaw) * 3 % n
		procs := int(pRaw)%8 + 1
		var ran [800]atomic.Bool
		res := DOALL(n, Options{Procs: procs, Schedule: Guided}, func(i, vpn int) Control {
			ran[i].Store(true)
			if i == q {
				return Quit
			}
			return Continue
		})
		if res.QuitIndex != q {
			return false
		}
		for i := 0; i < q; i++ {
			if !ran[i].Load() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
