package sched

// Cancellation, panic containment and pool-drain behaviour of the
// context-aware DOALL substrate: canceled executions must stop within a
// chunk, report the committed contiguous prefix honestly, and never
// leak workers or wedge the pool barrier.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"whilepar/internal/cancel"
	"whilepar/internal/obs"
)

func TestDOALLCtxPreCanceled(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	m := &obs.Metrics{}
	res, err := DOALLCtx(ctx, 100, Options{Procs: 4, Metrics: m}, func(i, vpn int) Control {
		t.Error("no iteration may run")
		return Continue
	})
	if !errors.Is(err, cancel.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Executed != 0 {
		t.Fatalf("result %+v", res)
	}
	if m.Snapshot().CtxCancels != 1 {
		t.Fatalf("snapshot %+v", m.Snapshot())
	}
}

func TestDOALLCtxStopsWithinChunks(t *testing.T) {
	// Cancel after iteration 10 runs; with chunked claims some in-flight
	// work may still complete, but the executed count must stay far
	// below n and the Prefix must be an honestly committed prefix.
	for _, s := range []Schedule{Dynamic, Static, Guided} {
		n := 1 << 16
		ctx, stop := context.WithCancel(context.Background())
		var executed atomic.Int64
		ran := make([]atomic.Bool, n)
		res, err := DOALLCtx(ctx, n, Options{Procs: 4, Schedule: s}, func(i, vpn int) Control {
			executed.Add(1)
			ran[i].Store(true)
			if i == 10 {
				stop()
			}
			if ctx.Err() != nil {
				// Cancellation is cooperative (a flag flipped by
				// context.AfterFunc); yield so the flag-setter runs
				// instead of racing 64k trivial iterations against it.
				time.Sleep(time.Microsecond)
			}
			return Continue
		})
		if !errors.Is(err, cancel.ErrCanceled) {
			t.Fatalf("schedule %v: err = %v", s, err)
		}
		if got := int(executed.Load()); res.Executed != got {
			t.Fatalf("schedule %v: Executed = %d, body ran %d times", s, res.Executed, got)
		}
		if res.Executed == n {
			t.Fatalf("schedule %v: cancellation did not stop issue (executed all %d)", s, n)
		}
		for i := 0; i < res.Prefix; i++ {
			if !ran[i].Load() {
				t.Fatalf("schedule %v: Prefix = %d but iteration %d never ran", s, res.Prefix, i)
			}
		}
	}
}

func TestDOALLCtxDeadline(t *testing.T) {
	ctx, stop := context.WithTimeout(context.Background(), 0)
	defer stop()
	<-ctx.Done()
	_, err := DOALLCtx(ctx, 8, Options{Procs: 2}, func(i, vpn int) Control { return Continue })
	if !errors.Is(err, cancel.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestDOALLCtxPanicContained(t *testing.T) {
	n := 1 << 14
	m := &obs.Metrics{}
	res, err := DOALLCtx(context.Background(), n, Options{Procs: 4, Metrics: m},
		func(i, vpn int) Control {
			if i == 37 {
				panic("body blew up")
			}
			return Continue
		})
	if !errors.Is(err, cancel.ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
	pe, ok := cancel.AsPanic(err)
	if !ok || pe.Iter != 37 || pe.Value != "body blew up" || len(pe.Stack) == 0 {
		t.Fatalf("panic detail %+v", pe)
	}
	if res.Executed == n {
		t.Fatalf("panic did not stop siblings (executed all %d)", n)
	}
	if m.Snapshot().WorkerPanics != 1 {
		t.Fatalf("snapshot %+v", m.Snapshot())
	}
}

func TestDOALLCtxPanicDoesNotWedgePool(t *testing.T) {
	// A contained panic must release the pool barrier: subsequent
	// dispatches on the same pool run normally.
	pool := NewPool(4)
	defer pool.Close()
	_, err := DOALLCtx(context.Background(), 64, Options{Procs: 4, Pool: pool},
		func(i, vpn int) Control {
			if i == 5 {
				panic("boom")
			}
			return Continue
		})
	if !errors.Is(err, cancel.ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
	var count atomic.Int64
	res, err := DOALLCtx(context.Background(), 64, Options{Procs: 4, Pool: pool},
		func(i, vpn int) Control {
			count.Add(1)
			return Continue
		})
	if err != nil || res.Executed != 64 || count.Load() != 64 {
		t.Fatalf("pool wedged after panic: res %+v err %v count %d", res, err, count.Load())
	}
}

func TestDOALLCtxCancelDoesNotWedgePool(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	ctx, stop := context.WithCancel(context.Background())
	_, err := DOALLCtx(ctx, 1<<14, Options{Procs: 2, Pool: pool},
		func(i, vpn int) Control {
			if i == 3 {
				stop()
			}
			return Continue
		})
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	res, err := DOALLCtx(context.Background(), 32, Options{Procs: 2, Pool: pool},
		func(i, vpn int) Control { return Continue })
	if err != nil || res.Executed != 32 {
		t.Fatalf("pool wedged after cancel: res %+v err %v", res, err)
	}
}

func TestDOALLPrefixUnderPanic(t *testing.T) {
	// With one processor iterations run in order, so a panic at k leaves
	// exactly the prefix [0, k) committed.
	res, err := DOALLCtx(context.Background(), 100, Options{Procs: 1},
		func(i, vpn int) Control {
			if i == 42 {
				panic("stop here")
			}
			return Continue
		})
	if !errors.Is(err, cancel.ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
	if res.Prefix != 42 || res.Executed != 42 {
		t.Fatalf("result %+v", res)
	}
}

func TestForEachProcCtxPreCanceled(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	err := ForEachProc(ctx, 4, ProcConfig{}, func(vpn int) {
		t.Error("no worker may start")
	})
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachProcPanicContained(t *testing.T) {
	var ran atomic.Int64
	err := ForEachProc(context.Background(), 4, ProcConfig{}, func(vpn int) {
		ran.Add(1)
		if vpn == 2 {
			panic("worker 2 down")
		}
	})
	if !errors.Is(err, cancel.ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
	pe, _ := cancel.AsPanic(err)
	if pe.VPN != 2 || pe.Iter != -1 {
		t.Fatalf("panic detail %+v", pe)
	}
	if ran.Load() != 4 {
		t.Fatalf("siblings must complete their single activation: ran %d", ran.Load())
	}
}

func TestForEachProcPanicDoesNotWedgePool(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	err := ForEachProc(context.Background(), 3, ProcConfig{Pool: pool}, func(vpn int) {
		panic("all down")
	})
	if !errors.Is(err, cancel.ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
	var ran atomic.Int64
	if err := ForEachProc(context.Background(), 3, ProcConfig{Pool: pool}, func(vpn int) {
		ran.Add(1)
	}); err != nil || ran.Load() != 3 {
		t.Fatalf("pool wedged after panic: err %v ran %d", err, ran.Load())
	}
}
