package sched

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"whilepar/internal/obs"
)

// The persistent pool must be invisible: a DOALL dispatched onto a Pool
// must produce exactly the accounting and per-iteration guarantees of
// the spawn-per-call path (its oracle), across every schedule and under
// QUIT.  These tests run under -race in CI, so they also certify the
// barrier's happens-before edges (job visibility on release, worker
// writes on join).

func TestPoolRunsEveryWorkerOncePerDispatch(t *testing.T) {
	p := NewPool(5)
	defer p.Close()
	if p.Size() != 5 {
		t.Fatalf("Size = %d, want 5", p.Size())
	}
	for round := 0; round < 50; round++ {
		counts := make([]int, 5) // plain ints: the barrier must order them
		p.Run(func(vpn int) { counts[vpn]++ })
		for vpn, c := range counts {
			if c != 1 {
				t.Fatalf("round %d: worker %d ran %d times", round, vpn, c)
			}
		}
	}
}

func TestPoolRunPanicsAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close must panic")
		}
	}()
	p.Run(func(int) {})
}

func TestPoolRejectsConcurrentRun(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	go p.Run(func(vpn int) {
		if vpn == 0 {
			close(started)
			<-release
		}
	})
	<-started
	func() {
		defer func() {
			if recover() == nil {
				t.Error("concurrent Run must panic")
			}
			close(release)
		}()
		p.Run(func(int) {})
	}()
}

func TestDOALLPoolMatchesSpawnRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(4000)
		procs := 1 + rng.Intn(8)
		schedule := []Schedule{Dynamic, Static, Guided}[rng.Intn(3)]
		quitAt := -1 // no quit on most trials
		if rng.Intn(2) == 0 {
			quitAt = rng.Intn(n)
		}

		runOne := func(usePool bool) (Result, obs.Snapshot, []int32) {
			counts := make([]int32, n)
			o := Options{Procs: procs, Schedule: schedule, Metrics: obs.NewMetrics()}
			var p *Pool
			if usePool {
				p = NewPool(procs)
				o.Pool = p
			}
			res := DOALL(n, o, func(i, vpn int) Control {
				atomic.AddInt32(&counts[i], 1)
				if i == quitAt {
					return Quit
				}
				return Continue
			})
			if p != nil {
				p.Close()
			}
			return res, o.Metrics.Snapshot(), counts
		}

		wantQuit := n
		if quitAt >= 0 {
			wantQuit = quitAt
		}
		for _, usePool := range []bool{false, true} {
			name := "spawn"
			if usePool {
				name = "pool"
			}
			res, s, counts := runOne(usePool)
			if res.QuitIndex != wantQuit {
				t.Fatalf("trial %d %s: QuitIndex = %d, want %d (n=%d procs=%d sched=%v)",
					trial, name, res.QuitIndex, wantQuit, n, procs, schedule)
			}
			// Every valid iteration exactly once, none twice.
			for i := 0; i < wantQuit; i++ {
				if counts[i] != 1 {
					t.Fatalf("trial %d %s: iteration %d ran %d times", trial, name, i, counts[i])
				}
			}
			total := 0
			for i := range counts {
				if counts[i] > 1 {
					t.Fatalf("trial %d %s: iteration %d ran twice", trial, name, i)
				}
				total += int(counts[i])
			}
			// The QUIT/overshoot accounting identity must hold on both
			// paths: executed = valid prefix + exact overshoot.
			if res.Executed != total || res.Executed != wantQuit+res.Overshot {
				t.Fatalf("trial %d %s: executed=%d total=%d quit=%d overshot=%d",
					trial, name, res.Executed, total, wantQuit, res.Overshot)
			}
			if s.Executed != int64(res.Executed) || s.Overshot != int64(res.Overshot) {
				t.Fatalf("trial %d %s: metrics executed=%d/%d overshot=%d/%d",
					trial, name, s.Executed, res.Executed, s.Overshot, res.Overshot)
			}
			var busy int64
			for _, b := range s.VPNBusy {
				busy += b
			}
			if busy != s.Executed {
				t.Fatalf("trial %d %s: per-vpn busy sum %d != executed %d", trial, name, busy, s.Executed)
			}
			// Chunked schedules: with no quit, the claimed chunks must
			// tile the iteration space exactly on both paths.
			if quitAt < 0 {
				if schedule == Guided && s.GuidedChunkIters != int64(n) {
					t.Fatalf("trial %d %s: guided chunk iters %d != n %d", trial, name, s.GuidedChunkIters, n)
				}
				if schedule == Dynamic && s.DynamicChunkIters != int64(n) {
					t.Fatalf("trial %d %s: dynamic chunk iters %d != n %d", trial, name, s.DynamicChunkIters, n)
				}
			}
			if usePool && s.PoolDispatches != 1 {
				t.Fatalf("trial %d pool: dispatches = %d, want 1", trial, s.PoolDispatches)
			}
		}
	}
}

func TestDOALLPoolClampsToPoolSize(t *testing.T) {
	// Asking for more procs than the pool holds must clamp, not hang:
	// the Static stride and Guided divisor bake p in, so the clamp has
	// to happen before workers launch.
	p := NewPool(3)
	defer p.Close()
	for _, schedule := range []Schedule{Dynamic, Static, Guided} {
		n := 500
		counts := make([]int32, n)
		maxVPN := int32(-1)
		res := DOALL(n, Options{Procs: 9, Schedule: schedule, Pool: p}, func(i, vpn int) Control {
			atomic.AddInt32(&counts[i], 1)
			for {
				cur := atomic.LoadInt32(&maxVPN)
				if int32(vpn) <= cur || atomic.CompareAndSwapInt32(&maxVPN, cur, int32(vpn)) {
					break
				}
			}
			return Continue
		})
		if res.Executed != n {
			t.Fatalf("%v: executed %d", schedule, res.Executed)
		}
		for i := range counts {
			if counts[i] != 1 {
				t.Fatalf("%v: iteration %d ran %d times", schedule, i, counts[i])
			}
		}
		if maxVPN >= 3 {
			t.Fatalf("%v: vpn %d escaped the clamped width 3", schedule, maxVPN)
		}
	}
}

func TestForEachProcPoolMatchesSpawn(t *testing.T) {
	// nil pool falls back to spawn-per-call; a small pool clamps; a big
	// pool leaves the extra workers idle.  In every case each vpn in
	// [0, effective procs) runs exactly once.
	cases := []struct {
		procs, poolSize, want int
	}{
		{4, 0, 4}, // nil pool
		{6, 3, 3}, // clamped
		{2, 8, 2}, // extra pool workers idle
		{5, 5, 5}, // exact fit
	}
	for _, c := range cases {
		var p *Pool
		if c.poolSize > 0 {
			p = NewPool(c.poolSize)
		}
		m := obs.NewMetrics()
		counts := make([]int32, c.want+8)
		if err := ForEachProc(context.Background(), c.procs, ProcConfig{Hooks: obs.Hooks{M: m}, Pool: p}, func(vpn int) {
			atomic.AddInt32(&counts[vpn], 1)
		}); err != nil {
			t.Fatalf("case %+v: ForEachProc: %v", c, err)
		}
		if p != nil {
			p.Close()
		}
		for vpn := 0; vpn < c.want; vpn++ {
			if counts[vpn] != 1 {
				t.Fatalf("case %+v: vpn %d ran %d times", c, vpn, counts[vpn])
			}
		}
		for vpn := c.want; vpn < len(counts); vpn++ {
			if counts[vpn] != 0 {
				t.Fatalf("case %+v: vpn %d beyond width ran", c, vpn)
			}
		}
		if s := m.Snapshot(); p != nil && s.PoolDispatches != 1 {
			t.Fatalf("case %+v: pool dispatches %d", c, s.PoolDispatches)
		}
	}
}

func TestPoolReuseAcrossManyDOALLs(t *testing.T) {
	// One pool serving many back-to-back regions of varying width and
	// schedule — the steady-state shape the strip engines produce.
	p := NewPool(4)
	defer p.Close()
	rng := rand.New(rand.NewSource(3))
	var grand int64
	for round := 0; round < 120; round++ {
		n := 1 + rng.Intn(300)
		schedule := []Schedule{Dynamic, Static, Guided}[rng.Intn(3)]
		var sum int64
		res := DOALL(n, Options{Procs: 1 + rng.Intn(6), Schedule: schedule, Pool: p}, func(i, vpn int) Control {
			atomic.AddInt64(&sum, int64(i))
			return Continue
		})
		want := int64(n) * int64(n-1) / 2
		if res.Executed != n || sum != want {
			t.Fatalf("round %d: executed %d sum %d want %d", round, res.Executed, sum, want)
		}
		grand += sum
	}
	if grand == 0 {
		t.Fatal("no work observed")
	}
}

// TestPoolSpinConfig pins the PoolConfig contract: explicit spin
// budgets and the park-immediately setting must leave barrier
// semantics untouched — every worker still runs exactly once per
// dispatch — and the zero value must resolve to the defaults.
func TestPoolSpinConfig(t *testing.T) {
	cases := []struct {
		name string
		cfg  PoolConfig
	}{
		{"defaults", PoolConfig{Procs: 4}},
		{"explicit", PoolConfig{Procs: 4, SpinArrive: 8, SpinDone: 8}},
		{"park immediately", PoolConfig{Procs: 4, SpinArrive: -1, SpinDone: -1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewPoolWith(c.cfg)
			defer p.Close()
			var ran [4]atomic.Int64
			for round := 0; round < 50; round++ {
				if err := p.Run(func(vpn int) { ran[vpn].Add(1) }); err != nil {
					t.Fatal(err)
				}
			}
			for v := range ran {
				if got := ran[v].Load(); got != 50 {
					t.Fatalf("vpn %d ran %d times, want 50", v, got)
				}
			}
		})
	}
}

// TestPoolSpinResolution pins the 0-means-default, negative-means-zero
// convention the env overrides rely on.
func TestPoolSpinResolution(t *testing.T) {
	var cfg PoolConfig
	if got := cfg.spin(0, 192); got != 192 {
		t.Fatalf("zero resolved to %d, want the 192 fallback", got)
	}
	if got := cfg.spin(-1, 192); got != 0 {
		t.Fatalf("negative resolved to %d, want 0 (park immediately)", got)
	}
	if got := cfg.spin(7, 192); got != 7 {
		t.Fatalf("explicit resolved to %d, want 7", got)
	}
}
