package doany

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func minCombine(a, b int) int {
	if a < b {
		return a
	}
	return b
}

const inf = int(^uint(0) >> 1)

func TestExhaustiveSearchFindsGlobalMin(t *testing.T) {
	// No iteration satisfies the terminator: the whole space is
	// searched and the reduction sees every contribution.
	vals := []int{9, 4, 7, 1, 8, 2, 6}
	got, st := Run(len(vals), 4, inf, minCombine, func(i, vpn int) (int, Verdict) {
		return vals[i], Found
	})
	if got != 1 {
		t.Fatalf("min = %d", got)
	}
	if st.Executed != len(vals) || st.SatisfiedAt != -1 || st.Overshot != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSatisfiedStopsIssue(t *testing.T) {
	n := 100000
	var executed atomic.Int64
	_, st := Run(n, 4, inf, minCombine, func(i, vpn int) (int, Verdict) {
		executed.Add(1)
		if i == 50 {
			return i, Satisfied
		}
		return inf, Nothing
	})
	if st.SatisfiedAt != 50 {
		t.Fatalf("SatisfiedAt = %d", st.SatisfiedAt)
	}
	if st.Executed >= n {
		t.Fatalf("satisfaction did not stop issue: %d executed", st.Executed)
	}
}

func TestOvershootIsHarmlessToResult(t *testing.T) {
	// Iterations after satisfaction may run and contribute; because the
	// reduction is order-insensitive the result must still be the
	// minimum over everything contributed — never corrupted state.
	got, _ := Run(1000, 8, inf, minCombine, func(i, vpn int) (int, Verdict) {
		if i == 10 {
			return 5, Satisfied
		}
		return 1000 + i, Found
	})
	if got > 1000 {
		t.Fatalf("result %d lost the satisfying contribution", got)
	}
	if got != 5 && got < 1000 {
		t.Fatalf("result %d is not a value any iteration produced", got)
	}
}

func TestNothingVerdictContributesNothing(t *testing.T) {
	got, st := Run(50, 3, inf, minCombine, func(i, vpn int) (int, Verdict) {
		return -999, Nothing // value must be ignored
	})
	if got != inf {
		t.Fatalf("Nothing verdicts contributed: %d", got)
	}
	if st.Executed != 50 {
		t.Fatalf("stats %+v", st)
	}
}

func TestProcsCoercionAndEmpty(t *testing.T) {
	got, st := Run(0, 0, 42, minCombine, func(i, vpn int) (int, Verdict) {
		t.Fatal("body must not run")
		return 0, Nothing
	})
	if got != 42 || st.Executed != 0 {
		t.Fatalf("empty run: %d %+v", got, st)
	}
}

// Property: the result always equals the sequential min over the
// executed iterations' contributions, for any satisfaction point.
func TestReductionMatchesContributions(t *testing.T) {
	f := func(nRaw, pRaw, satRaw uint8) bool {
		n := int(nRaw)%200 + 1
		p := int(pRaw)%6 + 1
		sat := int(satRaw) % (2 * n)
		var contributed sync32set
		got, _ := Run(n, p, inf, minCombine, func(i, vpn int) (int, Verdict) {
			contributed.add(int32(i))
			if i == sat {
				return i, Satisfied
			}
			return i, Found
		})
		// The result must be the min over contributed values.
		want := contributed.min()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

type sync32set struct {
	mu  sync.Mutex
	val int
	set bool
}

func (s *sync32set) add(v int32) {
	s.mu.Lock()
	if !s.set || int(v) < s.val {
		s.val, s.set = int(v), true
	}
	s.mu.Unlock()
}

func (s *sync32set) min() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.set {
		return inf
	}
	return s.val
}
