// Package doany implements the WHILE-DOANY construct used by the
// MCSPARSE experiment (Section 9): a WHILE loop whose iterations may
// execute in *any* order because the program is, by design, insensitive
// to the order in which the search space is examined — in MCSPARSE, the
// order in which the rows and columns of the matrix are searched for a
// pivot.
//
// Order-insensitivity is what makes this the cheapest speculative
// construct in the paper: even though the termination condition is
// remainder variant and the parallel execution *does* overshoot, no
// backups and no time-stamps are needed — overshot iterations only
// examined more of the search space, which is harmless.  The loop's
// result is a reduction (e.g. "best pivot seen") over whatever the
// executed iterations produced.
package doany

import (
	"sync"
	"sync/atomic"
)

// Verdict is an iteration's report.
type Verdict int

const (
	// Nothing: the iteration found no contribution.
	Nothing Verdict = iota
	// Found: the iteration produced a value to fold into the result.
	Found
	// Satisfied: the iteration produced a value AND met the termination
	// condition — further iterations need not be issued (though
	// in-flight ones may still contribute; order does not matter).
	Satisfied
)

// Stats reports a WHILE-DOANY execution.
type Stats struct {
	// Executed iterations (includes any overshoot — harmless here).
	Executed int
	// Overshot counts iterations issued after the termination condition
	// was first met.  They cost time but never correctness.
	Overshot int
	// SatisfiedAt is the first (in completion order) iteration index
	// that met the termination condition, or -1 if the space was
	// exhausted.
	SatisfiedAt int
}

// Run executes iterations [0, n) of body on procs goroutines in
// arbitrary order, folding every Found/Satisfied value into an
// accumulator with combine (which must be associative and commutative —
// order-insensitivity is the construct's contract).  zero is combine's
// identity.  Once any iteration reports Satisfied, no further iterations
// are issued.
func Run[T any](n, procs int, zero T, combine func(T, T) T, body func(i, vpn int) (T, Verdict)) (T, Stats) {
	if procs < 1 {
		procs = 1
	}
	var (
		next      atomic.Int64
		stop      atomic.Bool
		executed  atomic.Int64
		overshot  atomic.Int64
		satisfied atomic.Int64
		mu        sync.Mutex
		acc       = zero
		wg        sync.WaitGroup
	)
	satisfied.Store(-1)

	wg.Add(procs)
	for k := 0; k < procs; k++ {
		go func(vpn int) {
			defer wg.Done()
			local := zero
			for {
				if stop.Load() {
					break
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					break
				}
				wasStopped := stop.Load()
				v, verdict := body(i, vpn)
				executed.Add(1)
				if wasStopped {
					overshot.Add(1)
				}
				if verdict != Nothing {
					local = combine(local, v)
				}
				if verdict == Satisfied {
					satisfied.CompareAndSwap(-1, int64(i))
					stop.Store(true)
				}
			}
			mu.Lock()
			acc = combine(acc, local)
			mu.Unlock()
		}(k)
	}
	wg.Wait()

	return acc, Stats{
		Executed:    int(executed.Load()),
		Overshot:    int(overshot.Load()),
		SatisfiedAt: int(satisfied.Load()),
	}
}
