package cancel

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestWrapNil(t *testing.T) {
	if Wrap(nil) != nil {
		t.Fatal("Wrap(nil) != nil")
	}
}

func TestWrapCanceled(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	err := Err(ctx)
	if err == nil {
		t.Fatal("Err on canceled ctx returned nil")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled match", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled match", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, should not match ErrDeadline", err)
	}
	if !IsCancel(err) {
		t.Error("IsCancel = false")
	}
}

func TestWrapDeadline(t *testing.T) {
	ctx, cancelFn := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelFn()
	err := Err(ctx)
	if err == nil {
		t.Fatal("Err on expired ctx returned nil")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline match", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded match", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, should not match ErrCanceled", err)
	}
	if !IsCancel(err) {
		t.Error("IsCancel = false")
	}
}

func TestErrLive(t *testing.T) {
	if err := Err(context.Background()); err != nil {
		t.Fatalf("Err on live ctx = %v", err)
	}
	if err := Err(nil); err != nil {
		t.Fatalf("Err(nil) = %v", err)
	}
}

func TestPanicError(t *testing.T) {
	pe := &PanicError{Iter: 7, VPN: 2, Value: "boom", Stack: []byte("stack")}
	if !errors.Is(pe, ErrWorkerPanic) {
		t.Error("PanicError does not match ErrWorkerPanic")
	}
	if !IsPanic(pe) {
		t.Error("IsPanic(pe) = false")
	}
	wrapped := fmt.Errorf("engine: %w", pe)
	got, ok := AsPanic(wrapped)
	if !ok || got != pe {
		t.Errorf("AsPanic(wrapped) = %v, %v; want pe, true", got, ok)
	}
	if got.Iter != 7 || got.VPN != 2 {
		t.Errorf("PanicError fields lost: %+v", got)
	}
	if IsCancel(pe) {
		t.Error("IsCancel(PanicError) = true")
	}
}
