// Package cancel defines the cross-engine cancellation and panic-
// containment vocabulary of the runtime: the typed sentinel errors every
// engine (sched, doacross, genrec, speculate, core) returns when a
// context.Context is canceled or a loop body panics on a worker, plus
// the small helpers the engines share for observing a context cheaply at
// iteration/strip/chunk boundaries.
//
// The production motivation (ROADMAP north star) is a serving system:
// callers must be able to abandon a loop — request timeout, client
// disconnect — and survive a panicking body without leaking goroutines
// or corrupting shared/shadow state.  The paper's protocol already knows
// how to rewind a speculative attempt (checkpoint + restore, Section 4);
// this package supplies the signal that triggers that machinery early
// and the typed errors that report what happened.
package cancel

import (
	"context"
	"errors"
	"fmt"
)

// Typed sentinels; callers branch with errors.Is.  The facade re-exports
// them (whilepar.ErrCanceled, ...), and the wrapped errors also match
// the context package's own sentinels (context.Canceled,
// context.DeadlineExceeded), so either vocabulary works.
var (
	// ErrCanceled: the execution was abandoned because its context was
	// canceled.  The accompanying Report carries the committed prefix.
	ErrCanceled = errors.New("whilepar: execution canceled")
	// ErrDeadline: the execution was abandoned because its context's
	// deadline (or Options.Deadline) expired.
	ErrDeadline = errors.New("whilepar: deadline exceeded")
	// ErrWorkerPanic: a loop body panicked on a virtual processor; the
	// concrete error is a *PanicError carrying the iteration and VP.
	ErrWorkerPanic = errors.New("whilepar: worker panic")
)

// PanicError reports a loop-body panic contained by a worker: the
// iteration and virtual processor it happened on, the recovered value,
// and the worker's stack at recovery time.  It matches ErrWorkerPanic
// under errors.Is.
type PanicError struct {
	// Iter is the iteration index whose body panicked (-1 if the panic
	// happened outside any iteration, e.g. in a per-processor prologue).
	Iter int
	// VPN is the virtual processor the panic happened on.
	VPN int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("whilepar: worker panic at iteration %d on vp %d: %v", p.Iter, p.VPN, p.Value)
}

// Is matches the ErrWorkerPanic sentinel.
func (p *PanicError) Is(target error) bool { return target == ErrWorkerPanic }

// Wrap converts a context error into the runtime's typed sentinel:
// context.DeadlineExceeded becomes ErrDeadline, anything else (including
// context.Canceled and context.Cause values) becomes ErrCanceled.  Both
// sentinels and the original error remain visible to errors.Is.  A nil
// err returns nil.
func Wrap(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, err)
}

// Err polls ctx without blocking and returns the wrapped typed error if
// it is done, nil otherwise.  Safe on a nil context.
func Err(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return Wrap(ctx.Err())
}

// IsCancel reports whether err is a cancellation or deadline error (the
// two outcomes callers usually treat identically: stop, keep the
// committed prefix, do not fall back to sequential completion).
func IsCancel(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline)
}

// IsPanic reports whether err carries a contained worker panic.
func IsPanic(err error) bool { return errors.Is(err, ErrWorkerPanic) }

// AsPanic extracts the *PanicError from err, if any.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	ok := errors.As(err, &pe)
	return pe, ok
}
