package costmodel

import (
	"math"
	"sync"
)

// BranchStats predicts a WHILE loop's trip count from statistics
// collected on previous executions, the branch-statistics idea of
// Sections 7 and 8.1 (the branch being the loop's termination
// condition).  The prediction feeds both the parallelize/don't decision
// (enough iterations?) and the statistics-enhanced time-stamp threshold
// n'_i: if the compiler's trip-count estimate n_i carries confidence x%,
// only iterations above ~x%*n_i are time-stamped.
type BranchStats struct {
	mu     sync.Mutex
	counts []int
}

// Record logs the observed trip count of one execution of the loop.
func (b *BranchStats) Record(iterations int) {
	if iterations < 0 {
		iterations = 0
	}
	b.mu.Lock()
	b.counts = append(b.counts, iterations)
	b.mu.Unlock()
}

// Samples returns how many executions have been recorded.
func (b *BranchStats) Samples() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.counts)
}

// Estimate returns the predicted trip count n_i (the sample mean) and a
// confidence in [0,1] derived from the relative dispersion of the
// samples: confidence = max(0, 1 - cv) where cv is the coefficient of
// variation.  With no samples it returns (0, 0).
func (b *BranchStats) Estimate() (ni, confidence float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.counts)
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, c := range b.counts {
		sum += float64(c)
	}
	mean := sum / float64(n)
	if n == 1 {
		return mean, 0.5 // a single observation: weak evidence
	}
	var ss float64
	for _, c := range b.counts {
		d := float64(c) - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	if mean <= 0 {
		return mean, 0
	}
	cv := sd / mean
	conf := 1 - cv
	if conf < 0 {
		conf = 0
	}
	return mean, conf
}

// StampThreshold returns n'_i, the iteration below which stores need not
// be time-stamped (Section 8.1): about confidence% of the estimated trip
// count, floored at zero.  With no usable estimate it returns 0 (stamp
// everything).
func (b *BranchStats) StampThreshold() int {
	ni, conf := b.Estimate()
	if ni <= 0 || conf <= 0 {
		return 0
	}
	return int(conf * ni)
}
