package costmodel

import "sync"

// RespecPolicy sizes the speculative window of a partial-commit
// recovery loop.  It is the multiplicative-decrease / multiplicative-
// increase controller the adaptive re-speculation of the recovery
// engine runs on: a misspeculation halves the next window (the
// violation neighbourhood is dependence-dense, so bite off less), a
// clean run doubles it back (the neighbourhood is behind us).  Clean-run
// lengths are recorded into a BranchStats history so a later execution
// of the same loop can seed its first window from evidence instead of
// the configured default.
type RespecPolicy struct {
	mu sync.Mutex
	// window is the current strip/window size proposal.
	window int
	// min and max clamp the adaptation range.
	min, max int
	// history records clean-run lengths across executions (shared by
	// the caller between runs of the same loop, like BranchStats for
	// trip counts).
	history *BranchStats
}

// NewRespecPolicy returns a policy starting at window, adapting within
// [min, max].  Out-of-order or non-positive bounds are coerced: min is
// floored at 1, max at min, and the starting window is clamped into the
// range.
func NewRespecPolicy(window, min, max int) *RespecPolicy {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if window < min {
		window = min
	}
	if window > max {
		window = max
	}
	return &RespecPolicy{window: window, min: min, max: max}
}

// SeedFrom attaches a clean-run history and, when it already holds
// samples, re-seeds the starting window from its trip-count estimate
// (clamped into the policy's range).  The same *BranchStats may be
// shared across policies to carry evidence between executions.
func (p *RespecPolicy) SeedFrom(h *BranchStats) {
	if h == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.history = h
	if h.Samples() == 0 {
		return
	}
	ni, conf := h.Estimate()
	if ni <= 0 || conf <= 0 {
		return
	}
	w := int(ni)
	if w < p.min {
		w = p.min
	}
	if w > p.max {
		w = p.max
	}
	p.window = w
}

// Window returns the size the next speculative window should use.
func (p *RespecPolicy) Window() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.window
}

// OnViolation records a misspeculated window and halves the next one
// (floored at min).
func (p *RespecPolicy) OnViolation() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.window /= 2
	if p.window < p.min {
		p.window = p.min
	}
}

// OnCleanRun records a window of n iterations that validated, doubling
// the next window (capped at max) and feeding n into the attached
// history.
func (p *RespecPolicy) OnCleanRun(n int) {
	p.mu.Lock()
	h := p.history
	p.window *= 2
	if p.window > p.max {
		p.window = p.max
	}
	p.mu.Unlock()
	if h != nil && n > 0 {
		h.Record(n)
	}
}
