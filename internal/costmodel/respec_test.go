package costmodel

import "testing"

func TestRespecPolicyAdapts(t *testing.T) {
	p := NewRespecPolicy(64, 8, 256)
	if p.Window() != 64 {
		t.Fatalf("start window = %d, want 64", p.Window())
	}
	p.OnViolation()
	p.OnViolation()
	if p.Window() != 16 {
		t.Fatalf("after two violations window = %d, want 16", p.Window())
	}
	// The floor holds no matter how many violations.
	for i := 0; i < 10; i++ {
		p.OnViolation()
	}
	if p.Window() != 8 {
		t.Fatalf("window floor = %d, want 8", p.Window())
	}
	for i := 0; i < 10; i++ {
		p.OnCleanRun(p.Window())
	}
	if p.Window() != 256 {
		t.Fatalf("window cap = %d, want 256", p.Window())
	}
}

func TestRespecPolicyCoercesBounds(t *testing.T) {
	p := NewRespecPolicy(0, -3, -5)
	if p.Window() != 1 {
		t.Fatalf("degenerate bounds should coerce to window 1, got %d", p.Window())
	}
	p = NewRespecPolicy(1000, 4, 32)
	if p.Window() != 32 {
		t.Fatalf("start window should clamp to max, got %d", p.Window())
	}
}

func TestRespecPolicySeedsFromHistory(t *testing.T) {
	h := &BranchStats{}
	// A tight cluster of clean-run lengths: high confidence, mean ~100.
	for i := 0; i < 5; i++ {
		h.Record(100)
	}
	p := NewRespecPolicy(8, 4, 512)
	p.SeedFrom(h)
	if p.Window() != 100 {
		t.Fatalf("seeded window = %d, want 100", p.Window())
	}
	// Clean runs now feed the shared history.
	before := h.Samples()
	p.OnCleanRun(120)
	if h.Samples() != before+1 {
		t.Fatal("OnCleanRun should record into the attached history")
	}
	// An empty history must not disturb the configured start.
	p2 := NewRespecPolicy(16, 4, 512)
	p2.SeedFrom(&BranchStats{})
	if p2.Window() != 16 {
		t.Fatalf("empty history changed the window to %d", p2.Window())
	}
}
