// Package costmodel implements the cost/performance analysis of
// Section 7: the ideal and attainable speedups of a parallelized WHILE
// loop, the overhead terms Tb (before), Td (during) and Ta (after), the
// worst-case bounds Sp_at = Sp_id/4 (without the PD test) and Sp_id/5
// (with it), the slowdown of a failed speculation, and the decision
// procedure for whether parallelization should be attempted at all.
//
// It also provides the branch-statistics iteration-count predictor the
// paper proposes for estimating a WHILE loop's trip count (Sections 7
// and 8.1), used both for the parallelize/don't decision and for the
// statistics-enhanced time-stamp threshold n'_i.
package costmodel

import (
	"math"

	"whilepar/internal/loopir"
)

// LoopTimes characterizes one WHILE loop for the analysis.  Times are in
// the same abstract units as the simulator's.
type LoopTimes struct {
	// Trem is the sequential time spent in the remainder of the loop;
	// Trec the time to compute the entire dispatching recurrence.
	Trem, Trec float64
	// Accesses is `a`, the number of data accesses the loop makes
	// (excluding those inserted by the run-time techniques).
	Accesses float64
}

// Tseq returns the loop's sequential execution time Trem + Trec.
func (lt LoopTimes) Tseq() float64 { return lt.Trem + lt.Trec }

// IdealParallelTime returns T_ipar for p processors given the
// dispatcher kind, per Section 7:
//
//   - general recurrence: the recurrence is evaluated sequentially and
//     only the remainder parallelizes — Trem/p + Trec;
//   - induction: everything parallelizes — (Trem + Trec)/p;
//   - associative recurrence: (Trem + Trec)/p with an additional log p
//     term (scaled by the recurrence's per-term cost).
func IdealParallelTime(lt LoopTimes, kind loopir.DispatcherKind, p int) float64 {
	if p < 1 {
		p = 1
	}
	fp := float64(p)
	switch kind {
	case loopir.MonotonicInduction, loopir.NonMonotonicInduction:
		return lt.Tseq() / fp
	case loopir.AssociativeRecurrence:
		logTerm := 0.0
		if p > 1 {
			logTerm = math.Log2(fp)
		}
		// The log term is in units of recurrence steps; scale by the
		// average per-term cost so units stay consistent.
		return lt.Tseq()/fp + logTerm
	default: // general recurrence
		return lt.Trem/fp + lt.Trec
	}
}

// IdealSpeedup returns Sp_id = Tseq / T_ipar.
func IdealSpeedup(lt LoopTimes, kind loopir.DispatcherKind, p int) float64 {
	t := IdealParallelTime(lt, kind, p)
	if t <= 0 {
		return 0
	}
	return lt.Tseq() / t
}

// Overheads are the three overhead classes of the analysis.
type Overheads struct {
	// Tb: before the loop — checkpointing so iterations can be undone
	// or the loop re-executed.
	Tb float64
	// Td: during the loop — time-stamping and shadow-array marking.
	Td float64
	// Ta: after the loop — undoing invalid iterations and the PD test's
	// post-execution analysis.
	Ta float64
}

// Total returns Tb + Td + Ta.
func (o Overheads) Total() float64 { return o.Tb + o.Td + o.Ta }

// WorstCase returns the paper's worst-case overhead terms: Tb ~= Ta =
// a/p (fully parallel pre/post work) and Td = a/Sp_id (the marking work
// parallelizes only as well as the loop itself).  With the PD test, the
// post-execution analysis adds another a/p to Ta.
func WorstCase(lt LoopTimes, spid float64, p int, pdTest bool) Overheads {
	if p < 1 {
		p = 1
	}
	fp := float64(p)
	o := Overheads{Tb: lt.Accesses / fp, Ta: lt.Accesses / fp}
	if spid > 0 {
		o.Td = lt.Accesses / spid
	}
	if pdTest {
		o.Ta += lt.Accesses / fp
	}
	return o
}

// AttainableSpeedup returns Sp_at = Tseq / (T_ipar + Tb + Td + Ta).
func AttainableSpeedup(lt LoopTimes, kind loopir.DispatcherKind, p int, o Overheads) float64 {
	t := IdealParallelTime(lt, kind, p) + o.Total()
	if t <= 0 {
		return 0
	}
	return lt.Tseq() / t
}

// WorstCaseFraction returns the guaranteed fraction of the ideal speedup
// in the paper's worst case (Sp_id ~= p, every access both stamped and
// undone): 1/4 without the PD test, 1/5 with it — the "at least 20-25%
// of the parallelism inherent in the loop" claim.
func WorstCaseFraction(pdTest bool) float64 {
	if pdTest {
		return 1.0 / 5.0
	}
	return 1.0 / 4.0
}

// FailureTime returns the total execution time when the PD test fails:
// the failed parallel attempt (worst case (5/p)*Tseq) plus the
// sequential re-execution, i.e. Tseq + 5*Tseq/p.
func FailureTime(tseq float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	return tseq + 5*tseq/float64(p)
}

// FailureSlowdown returns the relative slowdown of a failed speculation,
// proportional to Tseq/p: FailureTime/Tseq - 1 = 5/p.
func FailureSlowdown(p int) float64 {
	if p < 1 {
		p = 1
	}
	return 5 / float64(p)
}

// Decision is the verdict of ShouldParallelize with its reasoning.
type Decision struct {
	Parallelize bool
	// Reason is a short human-readable justification.
	Reason string
	// ExpectedSpeedup is Sp_at under worst-case overheads (1 if
	// sequential execution is recommended).
	ExpectedSpeedup float64
}

// Params collects what the compiler/run-time knows when deciding.
type Params struct {
	Kind loopir.DispatcherKind
	// Times of the loop (possibly estimates from prior runs).
	Times LoopTimes
	// Procs available.
	Procs int
	// NeedsPDTest: the loop's dependence structure is unknown and the
	// PD test will be speculatively applied.
	NeedsPDTest bool
	// ProbParallel is the estimated probability that the iterations are
	// in fact independent (from run-time statistics or directives);
	// only meaningful with NeedsPDTest.
	ProbParallel float64
	// EstimatedIters is the predicted trip count (from branch
	// statistics); 0 if unknown.
	EstimatedIters float64
	// MinIters is the trip count below which parallelization overhead
	// cannot be recovered.
	MinIters float64
}

// ShouldParallelize implements the decision analysis of Section 7: the
// loop should be parallelized as long as there is enough parallelism
// available — even when the PD test is needed, since the expected gain
// is large and the potential slowdown only ~Tseq*5/p — unless the loop
// is known (with high confidence) to be sequential, the dispatcher
// dominates (Trem < Trec for a general recurrence), or the trip count
// is too small.
func ShouldParallelize(ps Params) Decision {
	spid := IdealSpeedup(ps.Times, ps.Kind, ps.Procs)
	o := WorstCase(ps.Times, spid, ps.Procs, ps.NeedsPDTest)
	spat := AttainableSpeedup(ps.Times, ps.Kind, ps.Procs, o)

	if ps.Kind == loopir.GeneralRecurrence && ps.Times.Trem < ps.Times.Trec {
		return Decision{Parallelize: false, ExpectedSpeedup: 1,
			Reason: "loop essentially evaluates its (sequential) dispatcher: Trem < Trec"}
	}
	if ps.EstimatedIters > 0 && ps.EstimatedIters < ps.MinIters {
		return Decision{Parallelize: false, ExpectedSpeedup: 1,
			Reason: "predicted trip count too small to recover parallelization overhead"}
	}
	if spat <= 1 {
		return Decision{Parallelize: false, ExpectedSpeedup: 1,
			Reason: "attainable speedup does not exceed sequential execution"}
	}
	if ps.NeedsPDTest {
		// Expected time: prob*success + (1-prob)*failure.
		exp := ps.ProbParallel*(ps.Times.Tseq()/spat) + (1-ps.ProbParallel)*FailureTime(ps.Times.Tseq(), ps.Procs)
		if exp >= ps.Times.Tseq() {
			return Decision{Parallelize: false, ExpectedSpeedup: 1,
				Reason: "loop believed sequential: expected speculative time exceeds sequential"}
		}
		return Decision{Parallelize: true, ExpectedSpeedup: ps.Times.Tseq() / exp,
			Reason: "speculation profitable: large expected gain, slowdown bounded by ~5*Tseq/p"}
	}
	return Decision{Parallelize: true, ExpectedSpeedup: spat,
		Reason: "sufficient parallelism available"}
}
