package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"whilepar/internal/loopir"
)

func TestIdealParallelTimeByDispatcher(t *testing.T) {
	lt := LoopTimes{Trem: 900, Trec: 100}
	p := 10
	if got := IdealParallelTime(lt, loopir.MonotonicInduction, p); got != 100 {
		t.Fatalf("induction T_ipar = %v, want 100", got)
	}
	if got := IdealParallelTime(lt, loopir.GeneralRecurrence, p); got != 190 {
		t.Fatalf("general T_ipar = %v, want Trem/p + Trec = 190", got)
	}
	assoc := IdealParallelTime(lt, loopir.AssociativeRecurrence, p)
	if assoc <= 100 || assoc >= 110 {
		t.Fatalf("associative T_ipar = %v, want 100 + log2(10)", assoc)
	}
	// p coerced to >= 1.
	if got := IdealParallelTime(lt, loopir.MonotonicInduction, 0); got != 1000 {
		t.Fatalf("p=0 T_ipar = %v", got)
	}
}

func TestIdealSpeedup(t *testing.T) {
	lt := LoopTimes{Trem: 1000, Trec: 0}
	if sp := IdealSpeedup(lt, loopir.MonotonicInduction, 8); sp != 8 {
		t.Fatalf("Sp_id = %v, want 8", sp)
	}
	// A general recurrence with Trem == Trec: Sp_id approaches 2 as p
	// grows (Amdahl on the sequential dispatcher).
	lt2 := LoopTimes{Trem: 500, Trec: 500}
	sp := IdealSpeedup(lt2, loopir.GeneralRecurrence, 1000)
	if sp < 1.9 || sp > 2.0 {
		t.Fatalf("Sp_id = %v, want just under 2", sp)
	}
}

func TestWorstCaseBounds(t *testing.T) {
	// The paper's worst case: Sp_id ~= p, Tb = Ta = a/p, Td = a/Sp_id.
	// With T_ipar ~= a/p dominated (all time is accesses), Sp_at should
	// be ~Sp_id/4 without PD test and ~Sp_id/5 with it.
	p := 16
	a := 100000.0
	lt := LoopTimes{Trem: a, Trec: 0, Accesses: a}
	spid := IdealSpeedup(lt, loopir.MonotonicInduction, p)

	o := WorstCase(lt, spid, p, false)
	spat := AttainableSpeedup(lt, loopir.MonotonicInduction, p, o)
	if r := spat / spid; math.Abs(r-WorstCaseFraction(false)) > 0.01 {
		t.Fatalf("no-PD worst-case fraction = %v, want ~1/4", r)
	}

	oPD := WorstCase(lt, spid, p, true)
	spatPD := AttainableSpeedup(lt, loopir.MonotonicInduction, p, oPD)
	if r := spatPD / spid; math.Abs(r-WorstCaseFraction(true)) > 0.01 {
		t.Fatalf("PD worst-case fraction = %v, want ~1/5", r)
	}
	if oPD.Ta <= o.Ta {
		t.Fatal("PD test must add post-execution analysis to Ta")
	}
	if o.Total() != o.Tb+o.Td+o.Ta {
		t.Fatal("Total broken")
	}
}

func TestFailureCosts(t *testing.T) {
	tseq := 1000.0
	if got := FailureTime(tseq, 10); got != 1500 {
		t.Fatalf("FailureTime = %v, want Tseq + 5Tseq/p = 1500", got)
	}
	if got := FailureSlowdown(10); got != 0.5 {
		t.Fatalf("FailureSlowdown = %v", got)
	}
	// Slowdown shrinks with more processors.
	if FailureSlowdown(100) >= FailureSlowdown(10) {
		t.Fatal("failure slowdown should be proportional to 1/p")
	}
	if FailureTime(tseq, 0) != 6000 {
		t.Fatal("p coercion broken")
	}
}

func TestShouldParallelizeDecisions(t *testing.T) {
	base := Params{
		Kind:  loopir.MonotonicInduction,
		Times: LoopTimes{Trem: 10000, Trec: 10, Accesses: 1000},
		Procs: 8,
	}
	if d := ShouldParallelize(base); !d.Parallelize || d.ExpectedSpeedup <= 1 {
		t.Fatalf("plainly parallel loop rejected: %+v", d)
	}

	// Dispatcher-dominated general recurrence: sequential.
	seq := base
	seq.Kind = loopir.GeneralRecurrence
	seq.Times = LoopTimes{Trem: 10, Trec: 10000}
	if d := ShouldParallelize(seq); d.Parallelize {
		t.Fatalf("dispatcher-dominated loop accepted: %+v", d)
	}

	// Too few predicted iterations.
	small := base
	small.EstimatedIters = 3
	small.MinIters = 16
	if d := ShouldParallelize(small); d.Parallelize {
		t.Fatalf("tiny loop accepted: %+v", d)
	}

	// Speculation with good odds: accept.
	spec := base
	spec.NeedsPDTest = true
	spec.ProbParallel = 0.9
	if d := ShouldParallelize(spec); !d.Parallelize {
		t.Fatalf("profitable speculation rejected: %+v", d)
	}

	// Speculation on a loop known to be sequential: reject.
	spec.ProbParallel = 0.01
	if d := ShouldParallelize(spec); d.Parallelize {
		t.Fatalf("hopeless speculation accepted: %+v", d)
	}
}

func TestAttainableNeverExceedsIdeal(t *testing.T) {
	f := func(tremRaw, trecRaw, accRaw uint16, pRaw uint8, pd bool) bool {
		lt := LoopTimes{
			Trem:     float64(tremRaw%10000) + 1,
			Trec:     float64(trecRaw % 1000),
			Accesses: float64(accRaw % 5000),
		}
		p := int(pRaw)%32 + 1
		for _, k := range []loopir.DispatcherKind{loopir.MonotonicInduction, loopir.AssociativeRecurrence, loopir.GeneralRecurrence} {
			spid := IdealSpeedup(lt, k, p)
			o := WorstCase(lt, spid, p, pd)
			spat := AttainableSpeedup(lt, k, p, o)
			if spat > spid+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBranchStats(t *testing.T) {
	var b BranchStats
	if ni, conf := b.Estimate(); ni != 0 || conf != 0 {
		t.Fatal("empty stats should estimate (0,0)")
	}
	if b.StampThreshold() != 0 {
		t.Fatal("empty stats threshold should be 0 (stamp everything)")
	}
	b.Record(100)
	if ni, conf := b.Estimate(); ni != 100 || conf != 0.5 {
		t.Fatalf("single sample: (%v,%v)", ni, conf)
	}
	// Tight samples: high confidence, threshold near the mean.
	for i := 0; i < 20; i++ {
		b.Record(100)
	}
	ni, conf := b.Estimate()
	if ni != 100 || conf < 0.95 {
		t.Fatalf("tight samples: (%v,%v)", ni, conf)
	}
	th := b.StampThreshold()
	if th < 90 || th > 100 {
		t.Fatalf("threshold = %d, want ~x%% of n_i", th)
	}
	if b.Samples() != 21 {
		t.Fatalf("Samples = %d", b.Samples())
	}
}

func TestBranchStatsNoisy(t *testing.T) {
	var b BranchStats
	for _, c := range []int{1, 1000, 2, 999, 3, 998} {
		b.Record(c)
	}
	_, conf := b.Estimate()
	if conf > 0.2 {
		t.Fatalf("wildly dispersed samples should have low confidence, got %v", conf)
	}
	// Negative counts clamp to zero.
	var b2 BranchStats
	b2.Record(-5)
	if ni, _ := b2.Estimate(); ni != 0 {
		t.Fatal("negative record should clamp")
	}
	if b2.StampThreshold() != 0 {
		t.Fatal("zero-mean threshold should be 0")
	}
}
