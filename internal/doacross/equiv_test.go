package doacross

// Equivalence of the unified context-first entry points with the legacy
// wrappers: the deprecated Run/RunObs/RunObsPool and RunWhile* arities
// are thin delegations, and this file proves (under -race, like the
// rest of the suite) that both spellings produce identical results on
// the same pipelined workloads.

import (
	"context"
	"sync/atomic"
	"testing"
	"testing/quick"

	"whilepar/internal/obs"
	"whilepar/internal/sched"
)

func TestRunNewEqualsLegacy(t *testing.T) {
	f := func(quitRaw, procsRaw uint8) bool {
		n := 400
		q := int(quitRaw) * 2 % n
		procs := int(procsRaw)%6 + 1
		mk := func() func(i, vpn int, s *Sync) Control {
			return func(i, vpn int, s *Sync) Control {
				if i > 0 {
					s.Wait(i, i-1)
				}
				if i == q {
					return Quit
				}
				return Continue
			}
		}
		newRes, err := Run(context.Background(), n, Config{Procs: procs}, mk())
		if err != nil {
			return false
		}
		oldRes := RunObs(n, procs, obs.Hooks{}, mk())
		return newRes.QuitIndex == oldRes.QuitIndex && newRes.QuitIndex == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunWhileNewEqualsLegacy(t *testing.T) {
	f := func(stepRaw, limitRaw, procsRaw uint8) bool {
		step := int(stepRaw)%9 + 1
		limit := int(limitRaw) + 1
		procs := int(procsRaw)%6 + 1
		max := 300
		next := func(d int) int { return d + step }
		cont := func(d int) bool { return d < limit }
		body := func(int, int, int) bool { return true }

		newRes, err := RunWhile(context.Background(), 0, next, cont, max, Config{Procs: procs}, body)
		if err != nil {
			return false
		}
		oldRes := RunWhileObs(0, next, cont, max, procs, obs.Hooks{}, body)
		return newRes.QuitIndex == oldRes.QuitIndex && newRes.Executed >= newRes.QuitIndex
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunPoolNewEqualsLegacy(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	n := 500
	var sum1, sum2 atomic.Int64
	body := func(acc *atomic.Int64) func(i, vpn int, s *Sync) Control {
		return func(i, vpn int, s *Sync) Control {
			if i > 0 {
				s.Wait(i, i-1)
			}
			acc.Add(int64(i))
			return Continue
		}
	}
	newRes, err := Run(context.Background(), n, Config{Procs: 4, Pool: pool}, body(&sum1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	oldRes := RunObsPool(n, 4, pool, obs.Hooks{}, body(&sum2))
	if newRes != oldRes {
		t.Fatalf("pool results differ: new %+v old %+v", newRes, oldRes)
	}
	if sum1.Load() != sum2.Load() {
		t.Fatalf("work differs: %d vs %d", sum1.Load(), sum2.Load())
	}
}
