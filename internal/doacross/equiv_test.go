package doacross

// The unified context-first entry points must be deterministic in their
// committed results regardless of worker count or goroutine sourcing:
// the quit index and the valid prefix are properties of the loop, not
// of the execution. This file proves (under -race, like the rest of the
// suite) that Run and RunWhile agree with themselves across processor
// counts and with a pool attached.

import (
	"context"
	"sync/atomic"
	"testing"
	"testing/quick"

	"whilepar/internal/sched"
)

func TestRunQuitIndexInvariantAcrossProcs(t *testing.T) {
	f := func(quitRaw, procsRaw uint8) bool {
		n := 400
		q := int(quitRaw) * 2 % n
		procs := int(procsRaw)%6 + 1
		mk := func() func(i, vpn int, s *Sync) Control {
			return func(i, vpn int, s *Sync) Control {
				if i > 0 {
					s.Wait(i, i-1)
				}
				if i == q {
					return Quit
				}
				return Continue
			}
		}
		wide, err := Run(context.Background(), n, Config{Procs: procs}, mk())
		if err != nil {
			return false
		}
		narrow, err := Run(context.Background(), n, Config{Procs: 1}, mk())
		if err != nil {
			return false
		}
		return wide.QuitIndex == narrow.QuitIndex && wide.QuitIndex == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunWhileQuitIndexInvariantAcrossProcs(t *testing.T) {
	f := func(stepRaw, limitRaw, procsRaw uint8) bool {
		step := int(stepRaw)%9 + 1
		limit := int(limitRaw) + 1
		procs := int(procsRaw)%6 + 1
		max := 300
		next := func(d int) int { return d + step }
		cont := func(d int) bool { return d < limit }
		body := func(int, int, int) bool { return true }

		wide, err := RunWhile(context.Background(), 0, next, cont, max, Config{Procs: procs}, body)
		if err != nil {
			return false
		}
		narrow, err := RunWhile(context.Background(), 0, next, cont, max, Config{Procs: 1}, body)
		if err != nil {
			return false
		}
		return wide.QuitIndex == narrow.QuitIndex && wide.Executed >= wide.QuitIndex
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunPoolEqualsSpawn(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	n := 500
	var sum1, sum2 atomic.Int64
	body := func(acc *atomic.Int64) func(i, vpn int, s *Sync) Control {
		return func(i, vpn int, s *Sync) Control {
			if i > 0 {
				s.Wait(i, i-1)
			}
			acc.Add(int64(i))
			return Continue
		}
	}
	spawnRes, err := Run(context.Background(), n, Config{Procs: 4}, body(&sum1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	poolRes, err := Run(context.Background(), n, Config{Procs: 4, Pool: pool}, body(&sum2))
	if err != nil {
		t.Fatalf("Run (pool): %v", err)
	}
	if spawnRes != poolRes {
		t.Fatalf("pool results differ: spawn %+v pool %+v", spawnRes, poolRes)
	}
	if sum1.Load() != sum2.Load() {
		t.Fatalf("work differs: %d vs %d", sum1.Load(), sum2.Load())
	}
}
