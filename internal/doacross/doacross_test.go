package doacross

import (
	"context"
	"sync/atomic"
	"testing"
	"testing/quick"

	"whilepar/internal/simproc"
)

func TestSyncPostWait(t *testing.T) {
	s := NewSync()
	if s.Posted(0) {
		t.Fatal("nothing posted yet")
	}
	s.Post(2)
	s.Post(0)
	if !s.Posted(0) || !s.Posted(2) || s.Posted(1) {
		t.Fatal("post bookkeeping wrong")
	}
	s.Post(1)
	// lowAll compaction: all of 0..2 posted.
	if !s.Posted(0) || !s.Posted(1) || !s.Posted(2) {
		t.Fatal("compaction lost posts")
	}
	// Wait on an out-of-range (negative) iteration returns immediately.
	s.Wait(5, -1)
}

func TestWaitOnFutureIterationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("waiting on the future should panic")
		}
	}()
	NewSync().Wait(3, 3)
}

func TestRunHonoursDistanceOneDependence(t *testing.T) {
	// Each iteration consumes its predecessor's value: a chain that must
	// come out exactly sequential in content despite parallel execution.
	n := 2000
	vals := make([]int64, n)
	res, err := Run(context.Background(), n, Config{Procs: 8}, func(i, vpn int, s *Sync) Control {
		if i > 0 {
			s.Wait(i, i-1)
			atomic.StoreInt64(&vals[i], atomic.LoadInt64(&vals[i-1])+1)
		} else {
			atomic.StoreInt64(&vals[0], 1)
		}
		return Continue
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Executed != n || res.QuitIndex != n || res.Prefix != n {
		t.Fatalf("result %+v", res)
	}
	for i := 0; i < n; i++ {
		if atomic.LoadInt64(&vals[i]) != int64(i+1) {
			t.Fatalf("chain broken at %d: %d", i, vals[i])
		}
	}
}

func TestRunLongerDistances(t *testing.T) {
	// Distance-3 dependence: vals[i] = vals[i-3] + 1.
	n := 999
	vals := make([]int64, n)
	Run(context.Background(), n, Config{Procs: 6}, func(i, vpn int, s *Sync) Control {
		if i >= 3 {
			s.Wait(i, i-3)
			atomic.StoreInt64(&vals[i], atomic.LoadInt64(&vals[i-3])+1)
		} else {
			atomic.StoreInt64(&vals[i], 1)
		}
		return Continue
	})
	for i := 0; i < n; i++ {
		want := int64(i/3 + 1)
		if atomic.LoadInt64(&vals[i]) != want {
			t.Fatalf("vals[%d] = %d, want %d", i, vals[i], want)
		}
	}
}

func TestRunQuitStopsIssueAndDrains(t *testing.T) {
	n := 10_000
	res, _ := Run(context.Background(), n, Config{Procs: 4}, func(i, vpn int, s *Sync) Control {
		if i > 0 {
			s.Wait(i, i-1)
		}
		if i == 50 {
			return Quit
		}
		return Continue
	})
	if res.QuitIndex != 50 {
		t.Fatalf("QuitIndex = %d", res.QuitIndex)
	}
	if res.Executed >= n {
		t.Fatal("quit did not curb execution")
	}
}

func TestRunEmptyAndProcsCoercion(t *testing.T) {
	res, _ := Run(context.Background(), 0, Config{}, func(i, vpn int, s *Sync) Control { return Continue })
	if res.Executed != 0 || res.QuitIndex != 0 {
		t.Fatalf("empty run %+v", res)
	}
}

func TestRunWhilePipelinesRecurrence(t *testing.T) {
	// while (d < limit) { out[i] = d; d = next(d) } with a dispatcher
	// only the predecessor can produce.
	limit := 500
	out := make([]int64, 1000)
	res, _ := RunWhile(context.Background(), 0, func(d int) int { return d + 7 }, func(d int) bool { return d < limit },
		1000, Config{Procs: 6}, func(i, _ int, d int) bool {
			atomic.StoreInt64(&out[i], int64(d))
			return true
		})
	wantIters := (limit + 6) / 7 // d = 0,7,14,... < 500
	if res.QuitIndex != wantIters {
		t.Fatalf("QuitIndex = %d, want %d", res.QuitIndex, wantIters)
	}
	for i := 0; i < wantIters; i++ {
		if atomic.LoadInt64(&out[i]) != int64(7*i) {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
	for i := wantIters; i < len(out); i++ {
		if atomic.LoadInt64(&out[i]) != 0 {
			t.Fatalf("iteration %d ran beyond the terminator", i)
		}
	}
}

func TestRunWhileRVExit(t *testing.T) {
	// The body itself terminates at iteration 40.
	res, _ := RunWhile(context.Background(), 0, func(d int) int { return d + 1 }, nil, 200,
		Config{Procs: 4}, func(i, _, d int) bool { return i != 40 })
	if res.QuitIndex != 40 {
		t.Fatalf("QuitIndex = %d", res.QuitIndex)
	}
}

// Property: RunWhile computes exactly the sequential WHILE loop's
// iteration count for random steps, limits and processor counts.
func TestRunWhileMatchesSequentialProperty(t *testing.T) {
	f := func(stepRaw, limitRaw, procsRaw uint8) bool {
		step := int(stepRaw)%9 + 1
		limit := int(limitRaw) + 1
		procs := int(procsRaw)%6 + 1
		max := 300
		// Sequential count.
		want := 0
		for d := 0; d < limit && want < max; d += step {
			want++
		}
		res, _ := RunWhile(context.Background(), 0, func(d int) int { return d + step },
			func(d int) bool { return d < limit }, max, Config{Procs: procs},
			func(int, int, int) bool { return true })
		return res.QuitIndex == want || (want == max && res.QuitIndex == max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSimulatePipelineBounds(t *testing.T) {
	// With chain c and work w, the p-processor pipeline is bounded below
	// by both n*c (the chain) and n*(c+w)/p (the work), and the
	// simulated makespan should sit near the max of the two.
	n := 1000
	c := SimCosts{Chain: 2, Dispatch: 0, Work: func(int) float64 { return 18 }}
	seq := c.SeqTime(n)
	if seq != 1000*20 {
		t.Fatalf("SeqTime = %v", seq)
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		tr := Simulate(simproc.New(p), n, c)
		lower := 2.0 * float64(n)
		if perProc := seq / float64(p); perProc > lower {
			lower = perProc
		}
		if tr.Makespan < lower-1e-9 {
			t.Fatalf("p=%d: makespan %v below bound %v", p, tr.Makespan, lower)
		}
		if tr.Makespan > 1.3*lower+50 {
			t.Fatalf("p=%d: makespan %v far above bound %v", p, tr.Makespan, lower)
		}
	}
	// Saturation: beyond (c+w)/c = 10 processors the chain dominates
	// and extra processors stop helping.
	t16 := Simulate(simproc.New(16), n, c).Makespan
	t32 := Simulate(simproc.New(32), n, c).Makespan
	if t32 < 0.95*t16 {
		t.Fatalf("pipeline should saturate: t16=%v t32=%v", t16, t32)
	}
}
