package doacross

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"whilepar/internal/obs"
	"whilepar/internal/sched"
)

// The pool-backed DOACROSS must be indistinguishable from the
// spawn-per-call path it replaces: same valid prefix, same dependence
// chains, same accounting — the pool only changes where the worker
// goroutines come from.

func TestRunPoolMatchesSpawnRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 25; trial++ {
		n := 100 + rng.Intn(2000)
		procs := 1 + rng.Intn(6)
		dist := 1 + rng.Intn(4)
		quitAt := -1
		if rng.Intn(2) == 0 {
			quitAt = dist + rng.Intn(n-dist)
		}

		run := func(usePool bool) (Result, []int64, obs.Snapshot) {
			vals := make([]int64, n)
			m := obs.NewMetrics()
			var p *sched.Pool
			if usePool {
				p = sched.NewPool(procs)
			}
			res, err := Run(context.Background(), n, Config{Procs: procs, Hooks: obs.Hooks{M: m}, Pool: p}, func(i, vpn int, s *Sync) Control {
				if i >= dist {
					s.Wait(i, i-dist)
					atomic.StoreInt64(&vals[i], atomic.LoadInt64(&vals[i-dist])+1)
				} else {
					atomic.StoreInt64(&vals[i], 1)
				}
				if i == quitAt {
					return Quit
				}
				return Continue
			})
			if err != nil {
				t.Fatalf("trial %d: Run: %v", trial, err)
			}
			if p != nil {
				p.Close()
			}
			return res, vals, m.Snapshot()
		}

		resS, valsS, _ := run(false)
		resP, valsP, s := run(true)
		if resP.QuitIndex != resS.QuitIndex {
			t.Fatalf("trial %d (n=%d procs=%d dist=%d quit=%d): QuitIndex %d (pool) vs %d (spawn)",
				trial, n, procs, dist, quitAt, resP.QuitIndex, resS.QuitIndex)
		}
		// The valid prefix — everything at or below the quit index — is
		// deterministic on both paths; past it, execution is racy
		// overshoot, so only the prefix is compared.
		for i := 0; i <= resS.QuitIndex && i < n; i++ {
			if valsP[i] != valsS[i] {
				t.Fatalf("trial %d: chain[%d] = %d (pool) vs %d (spawn)", trial, i, valsP[i], valsS[i])
			}
		}
		if s.Executed != int64(resP.Executed) {
			t.Fatalf("trial %d: metrics executed %d != result %d", trial, s.Executed, resP.Executed)
		}
		if s.PoolDispatches != 1 {
			t.Fatalf("trial %d: pool dispatches = %d, want 1", trial, s.PoolDispatches)
		}
	}
}

func TestRunPoolClampsToPoolSize(t *testing.T) {
	p := sched.NewPool(2)
	defer p.Close()
	n := 400
	var maxVPN int32 = -1
	res, err := Run(context.Background(), n, Config{Procs: 8, Pool: p}, func(i, vpn int, s *Sync) Control {
		for {
			cur := atomic.LoadInt32(&maxVPN)
			if int32(vpn) <= cur || atomic.CompareAndSwapInt32(&maxVPN, cur, int32(vpn)) {
				break
			}
		}
		return Continue
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Executed != n || res.QuitIndex != n {
		t.Fatalf("result %+v", res)
	}
	if maxVPN >= 2 {
		t.Fatalf("vpn %d escaped the clamped width 2", maxVPN)
	}
}

func TestRunWhilePoolMatchesSpawn(t *testing.T) {
	// One pool reused across many WHILE-DOACROSS calls; each must match
	// the spawn-per-call run of the same recurrence.
	p := sched.NewPool(4)
	defer p.Close()
	rng := rand.New(rand.NewSource(67))
	for round := 0; round < 20; round++ {
		step := 1 + rng.Intn(9)
		limit := 50 + rng.Intn(400)
		max := 200
		next := func(d int) int { return d + step }
		cont := func(d int) bool { return d < limit }

		outS := make([]int64, max)
		resS, errS := RunWhile(context.Background(), 0, next, cont, max, Config{Procs: 4}, func(i, _ int, d int) bool {
			atomic.StoreInt64(&outS[i], int64(d))
			return true
		})
		outP := make([]int64, max)
		resP, errP := RunWhile(context.Background(), 0, next, cont, max, Config{Procs: 4, Pool: p}, func(i, _ int, d int) bool {
			atomic.StoreInt64(&outP[i], int64(d))
			return true
		})
		if errS != nil || errP != nil {
			t.Fatalf("round %d: RunWhile errors: spawn %v pool %v", round, errS, errP)
		}
		if resP.QuitIndex != resS.QuitIndex {
			t.Fatalf("round %d (step=%d limit=%d): QuitIndex %d (pool) vs %d (spawn)",
				round, step, limit, resP.QuitIndex, resS.QuitIndex)
		}
		for i := 0; i < resS.QuitIndex; i++ {
			if outP[i] != outS[i] {
				t.Fatalf("round %d: out[%d] = %d (pool) vs %d (spawn)", round, i, outP[i], outS[i])
			}
		}
	}
}
