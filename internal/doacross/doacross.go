// Package doacross implements the WHILE-DOACROSS construct: pipelined
// parallel execution of loops whose iterations carry cross-iteration
// dependences that can be honoured with explicit synchronization, the
// execution style the paper names for loops whose recurrences cannot be
// evaluated in parallel (Section 1: "the iterations of the loop must be
// started sequentially, leading in the best case to a pipelined
// execution (also known as a DOACROSS)") and the method of Wu & Lewis
// the paper's Section 10 compares against.
//
// Two entry points:
//
//   - Run executes a counted iteration space under post/wait
//     synchronization: iteration i may Wait for any earlier iteration's
//     Post before consuming its value.
//   - RunWhile pipelines a WHILE loop itself: iteration i receives the
//     dispatcher value produced by iteration i-1, advances the
//     recurrence, posts the successor value, and only then executes the
//     (overlappable) remainder — the dispatcher forms the pipeline's
//     critical path while remainders run concurrently.
package doacross

import (
	"sync"
	"sync/atomic"

	"whilepar/internal/obs"
	"whilepar/internal/sched"
	"whilepar/internal/simproc"
)

// Sync provides post/wait synchronization across iterations.
type Sync struct {
	mu     sync.Mutex
	cond   *sync.Cond
	posted map[int]bool
	// lowAll: every iteration < lowAll has posted (compact common case).
	lowAll int
}

// NewSync returns an empty synchronization structure.
func NewSync() *Sync {
	s := &Sync{posted: make(map[int]bool)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Post marks iteration i's value as produced, releasing any waiters.
func (s *Sync) Post(i int) {
	s.mu.Lock()
	s.posted[i] = true
	for s.posted[s.lowAll] {
		delete(s.posted, s.lowAll)
		s.lowAll++
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Wait blocks until iteration j has posted.  Iterations may only wait on
// strictly earlier iterations; waiting on yourself or the future would
// deadlock the pipeline and panics instead.
func (s *Sync) Wait(self, j int) {
	if j >= self {
		panic("doacross: iteration may only wait on earlier iterations")
	}
	if j < 0 {
		return // dependence out of range: nothing to wait for
	}
	s.mu.Lock()
	for !(j < s.lowAll || s.posted[j]) {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Posted reports whether iteration j has posted (for tests).
func (s *Sync) Posted(j int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j < s.lowAll || s.posted[j]
}

// Control is the body verdict.
type Control int

const (
	Continue Control = iota
	// Quit: this iteration met the termination condition; later
	// iterations are not started (in-flight ones complete).
	Quit
)

// Result reports a DOACROSS execution.
type Result struct {
	Executed  int
	QuitIndex int // smallest quitting iteration; n if none
}

// Run executes iterations [0, n) on procs goroutines.  The body may use
// the Sync to wait for earlier iterations' posts; the runtime posts each
// iteration automatically on completion (a body may also Post
// intermediate events under its own index).  Iterations are issued in
// order (a DOACROSS requirement — iteration i's waiters must already be
// running or done).
func Run(n, procs int, body func(i, vpn int, s *Sync) Control) Result {
	return RunObs(n, procs, obs.Hooks{}, body)
}

// RunObs is Run with observability hooks: iteration spans (whose
// duration includes the pipeline's Wait stalls — the critical path is
// visible in the trace), QUIT posts, and issue/execute/busy counters.
func RunObs(n, procs int, h obs.Hooks, body func(i, vpn int, s *Sync) Control) Result {
	return RunObsPool(n, procs, nil, h, body)
}

// RunObsPool is RunObs dispatched onto a persistent worker pool: the
// pipeline's workers are parked pool goroutines released by one barrier
// instead of procs fresh spawns per call.  procs is clamped to the
// pool's size; a nil pool keeps the spawn-per-call path (the default
// and its equivalence oracle).
func RunObsPool(n, procs int, pool *sched.Pool, h obs.Hooks, body func(i, vpn int, s *Sync) Control) Result {
	if procs < 1 {
		procs = 1
	}
	if pool != nil && procs > pool.Size() {
		procs = pool.Size()
	}
	if n <= 0 {
		return Result{QuitIndex: 0}
	}
	s := NewSync()
	var (
		next   atomic.Int64
		quit   atomic.Int64
		execed atomic.Int64
	)
	quit.Store(int64(n))

	worker := func(vpn int) {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			h.M.IterIssued(1)
			if int64(i) > quit.Load() {
				return
			}
			ts := obs.Start(h.T)
			c := body(i, vpn, s)
			// The runtime's completion post: even a quitting iteration
			// posts, so pipelines drain rather than deadlock.
			s.Post(i)
			execed.Add(1)
			h.M.IterExecuted(vpn)
			if h.T != nil {
				obs.Span(h.T, ts, "iter", "doacross", vpn, map[string]any{"i": i})
			}
			if c == Quit {
				for {
					cur := quit.Load()
					if int64(i) >= cur || quit.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
				h.M.QuitPosted()
				if h.T != nil {
					obs.Instant(h.T, "QUIT", "doacross", vpn, map[string]any{"i": i})
				}
			}
		}
	}
	if pool != nil {
		h.M.PoolDispatch(procs)
		pool.Run(func(vpn int) {
			if vpn < procs {
				worker(vpn)
			}
		})
	} else {
		var wg sync.WaitGroup
		wg.Add(procs)
		for k := 0; k < procs; k++ {
			go func(vpn int) {
				defer wg.Done()
				worker(vpn)
			}(k)
		}
		wg.Wait()
	}
	return Result{Executed: int(execed.Load()), QuitIndex: int(quit.Load())}
}

// RunWhile pipelines a WHILE loop with a sequential dispatcher: start is
// d(0); each iteration i computes d(i+1) = next(d(i)), posts it, then
// runs body(i, d(i)).  cont(d) is the RI termination condition (the
// loop covers at most max iterations).  The dispatcher chain is the
// pipeline's critical path; remainders overlap.  Returns the number of
// valid iterations.
//
// This is the Wu & Lewis-style WHILE-DOACROSS: compared with General-3,
// no traversal is redundant, but every iteration serializes on its
// predecessor's dispatcher hand-off.
func RunWhile[D any](start D, next func(D) D, cont func(D) bool, max, procs int,
	body func(i, vpn int, d D) bool) Result {
	return RunWhileObs(start, next, cont, max, procs, obs.Hooks{}, body)
}

// RunWhileObs is RunWhile with observability hooks, forwarded to the
// underlying pipelined executor.  The body receives the virtual
// processor number so per-worker (sharded) memory substrates can
// attribute its stores to single-writer slots.
func RunWhileObs[D any](start D, next func(D) D, cont func(D) bool, max, procs int,
	h obs.Hooks, body func(i, vpn int, d D) bool) Result {
	return RunWhileObsPool(start, next, cont, max, procs, nil, h, body)
}

// RunWhileObsPool is RunWhileObs on a persistent worker pool (see
// RunObsPool); a nil pool keeps the spawn-per-call path.
func RunWhileObsPool[D any](start D, next func(D) D, cont func(D) bool, max, procs int,
	pool *sched.Pool, h obs.Hooks, body func(i, vpn int, d D) bool) Result {
	if procs < 1 {
		procs = 1
	}
	vals := make([]D, max+1)
	ok := make([]bool, max+1)
	vals[0] = start
	ok[0] = true

	return RunObsPool(max, procs, pool, h, func(i, vpn int, s *Sync) Control {
		s.Wait(i, i-1) // dispatcher value d(i) produced by iteration i-1
		if !ok[i] {
			return Quit // predecessor already terminated the recurrence
		}
		d := vals[i]
		if cont != nil && !cont(d) {
			return Quit
		}
		// Advance the recurrence, publish d(i+1), and post the hand-off
		// immediately so iteration i+1 starts while this iteration's
		// remainder is still running — the overlap is the whole point.
		if i+1 <= max {
			vals[i+1] = next(d)
			ok[i+1] = true
		}
		s.Post(i)
		if !body(i, vpn, d) {
			return Quit
		}
		return Continue
	})
}

// SimCosts parameterizes the simulated-time DOACROSS model.
type SimCosts struct {
	// Chain is the per-iteration critical-path cost (the dispatcher
	// advancement plus the post/wait hand-off).
	Chain float64
	// Work(i) is the overlappable remainder cost.
	Work func(i int) float64
	// Dispatch is the per-iteration issue overhead.
	Dispatch float64
}

// Simulate models the pipeline on machine m: iteration i's chain phase
// cannot start before iteration i-1's chain phase completed; the
// remainder then runs on the assigned processor.  Returns the trace.
func Simulate(m *simproc.Machine, n int, c SimCosts) simproc.Trace {
	var tr simproc.Trace
	chainFree := 0.0
	for i := 0; i < n; i++ {
		k := m.EarliestFree()
		start := m.Clock(k) + c.Dispatch
		if start < chainFree {
			start = chainFree
		}
		m.WaitUntil(k, start)
		m.Run(k, c.Chain)
		chainFree = m.Clock(k)
		m.Run(k, c.Work(i))
		tr.Executed++
	}
	tr.Makespan = m.Makespan()
	return tr
}

// SeqTime is the sequential loop under the same model.
func (c SimCosts) SeqTime(n int) float64 {
	t := c.Chain * float64(n)
	for i := 0; i < n; i++ {
		t += c.Work(i)
	}
	return t
}
