// Package doacross implements the WHILE-DOACROSS construct: pipelined
// parallel execution of loops whose iterations carry cross-iteration
// dependences that can be honoured with explicit synchronization, the
// execution style the paper names for loops whose recurrences cannot be
// evaluated in parallel (Section 1: "the iterations of the loop must be
// started sequentially, leading in the best case to a pipelined
// execution (also known as a DOACROSS)") and the method of Wu & Lewis
// the paper's Section 10 compares against.
//
// Two entry points, both context-first and configured by one options
// struct:
//
//   - Run executes a counted iteration space under post/wait
//     synchronization: iteration i may Wait for any earlier iteration's
//     Post before consuming its value.
//   - RunWhile pipelines a WHILE loop itself: iteration i receives the
//     dispatcher value produced by iteration i-1, advances the
//     recurrence, posts the successor value, and only then executes the
//     (overlappable) remainder — the dispatcher forms the pipeline's
//     critical path while remainders run concurrently.
//
// Cancellation and panic containment never strand a waiter: every
// claimed iteration posts, whether its body ran, was suppressed by a
// QUIT/cancel, or panicked (the post-only drain).  Claims are monotone
// and in order, so every index a pipelined body can wait on is claimed
// by some worker, and every claimed index eventually posts — by
// induction on the lowest in-flight index, the pipeline always drains.
package doacross

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"whilepar/internal/cancel"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
	"whilepar/internal/simproc"
)

// Sync provides post/wait synchronization across iterations.
type Sync struct {
	mu     sync.Mutex
	cond   *sync.Cond
	posted map[int]bool
	// lowAll: every iteration < lowAll has posted (compact common case).
	lowAll int
}

// NewSync returns an empty synchronization structure.
func NewSync() *Sync {
	s := &Sync{posted: make(map[int]bool)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Post marks iteration i's value as produced, releasing any waiters.
func (s *Sync) Post(i int) {
	s.mu.Lock()
	s.posted[i] = true
	for s.posted[s.lowAll] {
		delete(s.posted, s.lowAll)
		s.lowAll++
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Wait blocks until iteration j has posted.  Iterations may only wait on
// strictly earlier iterations; waiting on yourself or the future would
// deadlock the pipeline and panics instead.
func (s *Sync) Wait(self, j int) {
	if j >= self {
		panic("doacross: iteration may only wait on earlier iterations")
	}
	if j < 0 {
		return // dependence out of range: nothing to wait for
	}
	s.mu.Lock()
	for !(j < s.lowAll || s.posted[j]) {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Posted reports whether iteration j has posted (for tests).
func (s *Sync) Posted(j int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j < s.lowAll || s.posted[j]
}

// Control is the body verdict.
type Control int

const (
	Continue Control = iota
	// Quit: this iteration met the termination condition; later
	// iterations are not started (in-flight ones complete).
	Quit
)

// Result reports a DOACROSS execution.
type Result struct {
	Executed  int
	QuitIndex int // smallest quitting iteration; n if none
	// Prefix is the length of the contiguous executed prefix, capped at
	// QuitIndex.  For an uncanceled, panic-free execution it equals
	// min(QuitIndex, n); cancellation or a contained panic may leave it
	// smaller (iterations above it were suppressed or in flight).
	Prefix int
}

// Config bundles the optional knobs of Run and RunWhile into one
// options struct, so each entry point has a single signature instead
// of an arity ladder.  The zero value (1 worker, no hooks,
// spawn-per-call) is valid.
type Config struct {
	// Procs is the number of pipeline workers; values below 1 are
	// treated as 1 (and clamped to Pool's size when a pool is used).
	Procs int
	// Hooks, if non-zero, receives iteration spans (whose duration
	// includes the pipeline's Wait stalls — the critical path is
	// visible in the trace), QUIT posts, and issue/execute/busy
	// counters.
	Hooks obs.Hooks
	// Pool, if non-nil, dispatches the pipeline onto a persistent
	// worker pool: parked goroutines released by one barrier instead of
	// procs fresh spawns per call.  nil keeps the spawn-per-call path
	// (the default and its equivalence oracle).
	Pool *sched.Pool
}

// Run executes iterations [0, n) on cfg.Procs workers.  The body may
// use the Sync to wait for earlier iterations' posts; the runtime posts
// each iteration automatically on completion (a body may also Post
// intermediate events under its own index).  Iterations are issued in
// order (a DOACROSS requirement — iteration i's waiters must already be
// running or done).
//
// Cancellation is observed at claim boundaries: once ctx is done,
// workers stop running bodies, drain their claimed indices by posting
// them (so in-flight waiters are always released), and the call returns
// the Result so far with ErrCanceled/ErrDeadline.  A panicking body is
// contained as a *cancel.PanicError, stops the pipeline like a
// cancellation, and still posts its iteration.
func Run(ctx context.Context, n int, cfg Config, body func(i, vpn int, s *Sync) Control) (Result, error) {
	procs := cfg.Procs
	if procs < 1 {
		procs = 1
	}
	if cfg.Pool != nil && procs > cfg.Pool.Size() {
		procs = cfg.Pool.Size()
	}
	if n <= 0 {
		return Result{QuitIndex: 0}, nil
	}
	h := cfg.Hooks
	if err := cancel.Err(ctx); err != nil {
		h.M.CtxCancel()
		return Result{QuitIndex: n}, err
	}
	s := NewSync()
	var (
		next    atomic.Int64
		quit    atomic.Int64
		execed  atomic.Int64
		stopped atomic.Bool
		panicAt atomic.Pointer[cancel.PanicError]
	)
	quit.Store(int64(n))
	ran := make([]bool, n)
	if ctx != nil && ctx.Done() != nil {
		stopWatch := context.AfterFunc(ctx, func() { stopped.Store(true) })
		defer stopWatch()
	}

	runIter := func(i, vpn int) {
		// The runtime's completion post must fire on every path out of
		// the body — normal return, QUIT, panic — because posts are what
		// drain the pipeline (deferred: it runs after the recover below).
		defer s.Post(i)
		defer func() {
			if r := recover(); r != nil {
				pe := &cancel.PanicError{Iter: i, VPN: vpn, Value: r, Stack: debug.Stack()}
				if panicAt.CompareAndSwap(nil, pe) {
					h.M.WorkerPanic()
				}
				stopped.Store(true)
			}
		}()
		ts := obs.Start(h.T)
		c := body(i, vpn, s)
		ran[i] = true
		execed.Add(1)
		h.M.IterExecuted(vpn)
		if h.T != nil {
			obs.Span(h.T, ts, "iter", "doacross", vpn, map[string]any{"i": i})
		}
		if c == Quit {
			for {
				cur := quit.Load()
				if int64(i) >= cur || quit.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			h.M.QuitPosted()
			if h.T != nil {
				obs.Instant(h.T, "QUIT", "doacross", vpn, map[string]any{"i": i})
			}
		}
	}

	worker := func(vpn int) {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			h.M.IterIssued(1)
			if stopped.Load() || int64(i) > quit.Load() {
				// Post-only drain: a claimed index must post even when
				// its body is suppressed.  A later-claimed iteration may
				// have checked quit before this QUIT/cancel landed and
				// be waiting on this index — returning silently would
				// strand it.
				s.Post(i)
				return
			}
			runIter(i, vpn)
		}
	}
	if pool := cfg.Pool; pool != nil {
		h.M.PoolDispatch(procs)
		if err := pool.Run(func(vpn int) {
			if vpn < procs {
				worker(vpn)
			}
		}); err != nil {
			if pe, ok := cancel.AsPanic(err); ok && panicAt.CompareAndSwap(nil, pe) {
				h.M.WorkerPanic()
			}
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(procs)
		for k := 0; k < procs; k++ {
			go func(vpn int) {
				defer wg.Done()
				worker(vpn)
			}(k)
		}
		wg.Wait()
	}

	q := int(quit.Load())
	prefix := -1
	for i, r := range ran {
		if !r {
			prefix = i
			break
		}
	}
	if prefix < 0 {
		prefix = n
	}
	if q < prefix {
		prefix = q
	}
	res := Result{Executed: int(execed.Load()), QuitIndex: q, Prefix: prefix}
	if pe := panicAt.Load(); pe != nil {
		return res, pe
	}
	if err := cancel.Err(ctx); err != nil {
		h.M.CtxCancel()
		return res, err
	}
	return res, nil
}

// RunWhile pipelines a WHILE loop with a sequential dispatcher: start is
// d(0); each iteration i computes d(i+1) = next(d(i)), posts it, then
// runs body(i, d(i)).  cont(d) is the RI termination condition (the
// loop covers at most max iterations).  The dispatcher chain is the
// pipeline's critical path; remainders overlap.  Returns the number of
// valid iterations.
//
// This is the Wu & Lewis-style WHILE-DOACROSS: compared with General-3,
// no traversal is redundant, but every iteration serializes on its
// predecessor's dispatcher hand-off.
//
// Cancellation and panics behave as in Run: a drained (never-run)
// iteration leaves its successor's hand-off unpublished, so any
// iteration that does run past it observes a missing predecessor value
// and terminates — the committed prefix in Result.Prefix is exact.
func RunWhile[D any](ctx context.Context, start D, next func(D) D, cont func(D) bool, max int,
	cfg Config, body func(i, vpn int, d D) bool) (Result, error) {
	vals := make([]D, max+1)
	ok := make([]bool, max+1)
	if max >= 0 {
		vals[0] = start
		ok[0] = true
	}

	return Run(ctx, max, cfg, func(i, vpn int, s *Sync) Control {
		s.Wait(i, i-1) // dispatcher value d(i) produced by iteration i-1
		if !ok[i] {
			return Quit // predecessor already terminated the recurrence
		}
		d := vals[i]
		if cont != nil && !cont(d) {
			return Quit
		}
		// Advance the recurrence, publish d(i+1), and post the hand-off
		// immediately so iteration i+1 starts while this iteration's
		// remainder is still running — the overlap is the whole point.
		if i+1 <= max {
			vals[i+1] = next(d)
			ok[i+1] = true
		}
		s.Post(i)
		if !body(i, vpn, d) {
			return Quit
		}
		return Continue
	})
}

// SimCosts parameterizes the simulated-time DOACROSS model.
type SimCosts struct {
	// Chain is the per-iteration critical-path cost (the dispatcher
	// advancement plus the post/wait hand-off).
	Chain float64
	// Work(i) is the overlappable remainder cost.
	Work func(i int) float64
	// Dispatch is the per-iteration issue overhead.
	Dispatch float64
}

// Simulate models the pipeline on machine m: iteration i's chain phase
// cannot start before iteration i-1's chain phase completed; the
// remainder then runs on the assigned processor.  Returns the trace.
func Simulate(m *simproc.Machine, n int, c SimCosts) simproc.Trace {
	var tr simproc.Trace
	chainFree := 0.0
	for i := 0; i < n; i++ {
		k := m.EarliestFree()
		start := m.Clock(k) + c.Dispatch
		if start < chainFree {
			start = chainFree
		}
		m.WaitUntil(k, start)
		m.Run(k, c.Chain)
		chainFree = m.Clock(k)
		m.Run(k, c.Work(i))
		tr.Executed++
	}
	tr.Makespan = m.Makespan()
	return tr
}

// SeqTime is the sequential loop under the same model.
func (c SimCosts) SeqTime(n int) float64 {
	t := c.Chain * float64(n)
	for i := 0; i < n; i++ {
		t += c.Work(i)
	}
	return t
}
