package genrec

import (
	"sync/atomic"
	"testing"

	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/simproc"
)

func TestChunkedProcessesEveryElementOnce(t *testing.T) {
	for _, chunk := range []int{1, 7, 64, 1000} {
		n := 500
		c := list.BuildChunked(n, chunk, func(i int) (float64, float64) { return float64(i), 1 })
		counts := make([]atomic.Int32, n)
		res := Chunked(c, func(it *loopir.Iter, nd *list.Node) bool {
			counts[nd.Key].Add(1)
			if nd.Key != it.Index {
				t.Errorf("chunk=%d: element %d ran as iteration %d", chunk, nd.Key, it.Index)
			}
			return true
		}, Config{Procs: 4})
		if res.Valid != n || res.Executed != n || res.Overshot != 0 {
			t.Fatalf("chunk=%d: %+v", chunk, res)
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("chunk=%d: element %d ran %d times", chunk, i, counts[i].Load())
			}
		}
	}
}

func TestChunkedMatchesSequentialResult(t *testing.T) {
	n := 300
	seq := mem.NewArray("A", n)
	par := mem.NewArray("A", n)
	for i := 0; i < n; i++ {
		seq.Data[i] = float64(i) * 3
	}
	c := list.BuildChunked(n, 16, func(i int) (float64, float64) { return float64(i), 1 })
	Chunked(c, func(it *loopir.Iter, nd *list.Node) bool {
		it.Store(par, nd.Key, nd.Val*3)
		return true
	}, Config{Procs: 8})
	if !par.Equal(seq) {
		t.Fatal("chunked traversal diverged")
	}
}

func TestChunkedRVExit(t *testing.T) {
	n := 400
	c := list.BuildChunked(n, 32, nil)
	counts := make([]atomic.Int32, n)
	res := Chunked(c, func(it *loopir.Iter, nd *list.Node) bool {
		if nd.Key == 150 {
			return false
		}
		counts[nd.Key].Add(1)
		return true
	}, Config{Procs: 4})
	if res.Valid != 150 {
		t.Fatalf("Valid = %d", res.Valid)
	}
	for i := 0; i < 150; i++ {
		if counts[i].Load() != 1 {
			t.Fatalf("valid element %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestChunkedHeaderHops(t *testing.T) {
	c := list.BuildChunked(100, 10, nil)
	res := Chunked(c, func(*loopir.Iter, *list.Node) bool { return true }, Config{Procs: 2})
	if res.Hops != 10 {
		t.Fatalf("header hops = %d, want one per chunk", res.Hops)
	}
}

func TestChunkedEmpty(t *testing.T) {
	res := Chunked(list.BuildChunked(0, 8, nil), func(*loopir.Iter, *list.Node) bool {
		t.Fatal("body must not run")
		return true
	}, Config{Procs: 2})
	if res.Valid != 0 || res.Executed != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestSimChunkedSweetSpot(t *testing.T) {
	// Tiny chunks: the sequential header walk dominates ("inefficient
	// restructured version...").  Huge chunks: too few units to balance.
	// A mid-size chunk should beat both.
	n := 10_000
	c := SimCosts{Hop: 1, Dispatch: 0.5, Work: func(int) float64 { return 4 }}
	seq := c.SeqTime(n)
	sp := func(chunk int) float64 {
		tr := SimChunked(simproc.New(8), n, chunk, c)
		return simproc.Speedup(seq, tr.Makespan)
	}
	tiny, mid, huge := sp(1), sp(128), sp(n)
	if mid <= tiny || mid <= huge {
		t.Fatalf("chunk sweet spot missing: tiny=%.2f mid=%.2f huge=%.2f", tiny, mid, huge)
	}
	if huge > 1.3 {
		t.Fatalf("single chunk should be nearly sequential, got %.2f", huge)
	}
	// Degenerate chunk size coerces.
	if got := SimChunked(simproc.New(2), 10, 0, c); got.Executed != 10 {
		t.Fatalf("chunk=0 executed %d", got.Executed)
	}
}
