package genrec

import (
	"sync/atomic"

	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/sched"
	"whilepar/internal/simproc"
)

// Chunked implements Harrison's scheme (Section 10, related work): when
// the list is allocated as linked chunks of contiguous elements with
// per-chunk headers recording their lengths, the dispatcher evaluation
// can be optimized — a *sequential prefix over the chunk headers*
// assigns each chunk's portion of the recurrence a global offset, after
// which chunks are processed in parallel with direct indexing inside
// each chunk.
//
// The paper's point stands in the limits: with every element in its own
// chunk (FORTRAN-style static allocation) the method degenerates to the
// naive distribution with no parallelism advantage; with the whole list
// in a single chunk it is the associative-recurrence case.  The chunk-
// size ablation benchmark quantifies the in-between.
func Chunked(c list.Chunked, body Body, cfg Config) Result {
	p := cfg.procs()
	// Sequential prefix over chunk headers: global offsets.
	offs := c.Offsets()
	var chunks []*list.Chunk
	for ch := c.Head; ch != nil; ch = ch.Next {
		chunks = append(chunks, ch)
	}
	n := c.Len()
	quit := newQuitMin(n)
	var executed, overshot, hops atomic.Int64
	hops.Add(int64(len(chunks))) // the header walk

	sched.DOALL(len(chunks), sched.Options{Procs: p}, func(ci, vpn int) sched.Control {
		ch := chunks[ci]
		base := offs[ci]
		for j := range ch.Elems {
			i := base + j
			if i > quit.get() {
				return sched.Continue
			}
			it := loopir.Iter{Index: i, VPN: vpn, Tracker: cfg.Tracker}
			if !body(&it, &ch.Elems[j]) {
				quit.record(i)
			}
			executed.Add(1)
			if i > quit.get() {
				overshot.Add(1)
			}
		}
		return sched.Continue
	})
	return Result{
		Valid:    quit.get(),
		Executed: int(executed.Load()),
		Overshot: int(overshot.Load()),
		Hops:     hops.Load(),
	}
}

// SimChunked models the scheme's time on machine m: a sequential walk
// over the n/chunk headers (Hop each), then a dynamically scheduled
// DOALL over chunks whose per-chunk cost is the sum of its elements'
// work (no per-element hops — elements are contiguous).
func SimChunked(m *simproc.Machine, n, chunk int, c SimCosts) simproc.Trace {
	if chunk < 1 {
		chunk = 1
	}
	nChunks := (n + chunk - 1) / chunk
	// Header walk on processor 0; everyone waits for the offsets.
	m.Run(0, c.Hop*float64(nChunks))
	m.Barrier(0)
	cost := func(ci int) float64 {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		var t float64
		for i := lo; i < hi; i++ {
			t += c.Work(i)
		}
		return t
	}
	tr := m.DynamicDOALL(nChunks, cost, c.Dispatch, -1, false)
	tr.Executed = n
	tr.Makespan = m.Makespan()
	return tr
}
