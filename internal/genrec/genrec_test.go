package genrec

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/simproc"
)

type runner func(*list.Node, Body, Config) Result

var methods = map[string]runner{
	"General-1": General1,
	"General-2": General2,
	"General-3": General3,
}

func TestAllMethodsProcessEveryNodeExactlyOnce(t *testing.T) {
	for name, run := range methods {
		n := 500
		head := list.Build(n, nil)
		counts := make([]atomic.Int32, n)
		res := run(head, func(it *loopir.Iter, nd *list.Node) bool {
			counts[nd.Key].Add(1)
			if nd.Key != it.Index {
				t.Errorf("%s: node %d processed as iteration %d", name, nd.Key, it.Index)
			}
			return true
		}, Config{Procs: 7})
		if res.Valid != n || res.Executed != n || res.Overshot != 0 {
			t.Fatalf("%s: %+v", name, res)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("%s: node %d processed %d times", name, i, c)
			}
		}
	}
}

func TestResultsMatchSequentialLoop(t *testing.T) {
	// The SPICE-like loop: work(pt) writes A[key] = 3*val.
	for name, run := range methods {
		n := 300
		mkList := func() *list.Node {
			return list.Build(n, func(i int) (float64, float64) { return float64(i * 2), 1 })
		}
		seqA := mem.NewArray("A", n)
		for pt := mkList(); pt != nil; pt = pt.Next {
			seqA.Data[pt.Key] = 3 * pt.Val
		}
		parA := mem.NewArray("A", n)
		run(mkList(), func(it *loopir.Iter, nd *list.Node) bool {
			it.Store(parA, nd.Key, 3*nd.Val)
			return true
		}, Config{Procs: 8})
		if !parA.Equal(seqA) {
			t.Fatalf("%s: parallel result diverged", name)
		}
	}
}

func TestEmptyList(t *testing.T) {
	for name, run := range methods {
		res := run(nil, func(*loopir.Iter, *list.Node) bool {
			t.Fatalf("%s: body ran on empty list", name)
			return true
		}, Config{Procs: 4})
		if res.Valid != 0 || res.Executed != 0 {
			t.Fatalf("%s: %+v", name, res)
		}
	}
}

func TestRVExitRecordsMinQuit(t *testing.T) {
	// Iterations 120 and 60 both signal exit; valid must be 60, and
	// every node below 60 must still be processed.
	for name, run := range methods {
		n := 400
		head := list.Build(n, nil)
		counts := make([]atomic.Int32, n)
		res := run(head, func(it *loopir.Iter, nd *list.Node) bool {
			if nd.Key == 120 || nd.Key == 60 {
				return false
			}
			counts[nd.Key].Add(1)
			return true
		}, Config{Procs: 6, U: n})
		if res.Valid != 60 {
			t.Fatalf("%s: Valid = %d, want 60", name, res.Valid)
		}
		for i := 0; i < 60; i++ {
			if counts[i].Load() != 1 {
				t.Fatalf("%s: valid node %d ran %d times", name, i, counts[i].Load())
			}
		}
	}
}

func TestHopCountsCharacterizeMethods(t *testing.T) {
	n, p := 1000, 4
	body := func(*loopir.Iter, *list.Node) bool { return true }
	h1 := General1(list.Build(n, nil), body, Config{Procs: p}).Hops
	h2 := General2(list.Build(n, nil), body, Config{Procs: p}).Hops
	h3 := General3(list.Build(n, nil), body, Config{Procs: p}).Hops
	if h1 != int64(n) {
		t.Fatalf("General-1 traverses once: hops = %d, want %d", h1, n)
	}
	// General-2: every processor traverses the entire list.
	if h2 < int64(n) || h2 > int64(p*n+p*p) {
		t.Fatalf("General-2 hops = %d, want ~p*n = %d", h2, p*n)
	}
	if h2 <= h1 {
		t.Fatal("General-2 must hop more than General-1")
	}
	// General-3: between n-1 (perfect locality — cursors start at the
	// head, which is iteration 0) and p*(n-1).
	if h3 < int64(n-1) || h3 > int64(p*(n-1)) {
		t.Fatalf("General-3 hops = %d out of [n-1, p*(n-1)]", h3)
	}
}

func TestUBoundsIterations(t *testing.T) {
	for name, run := range map[string]runner{"General-1": General1, "General-3": General3} {
		n := 100
		head := list.Build(n, nil)
		res := run(head, func(*loopir.Iter, *list.Node) bool { return true }, Config{Procs: 3, U: 40})
		if res.Valid != 40 || res.Executed != 40 {
			t.Fatalf("%s with U=40: %+v", name, res)
		}
	}
}

func TestProcsCoercion(t *testing.T) {
	head := list.Build(10, nil)
	res := General3(head, func(*loopir.Iter, *list.Node) bool { return true }, Config{Procs: 0})
	if res.Valid != 10 {
		t.Fatalf("procs=0 run: %+v", res)
	}
}

// Property: for random list lengths, processor counts and exit points,
// all three methods agree with the sequential loop on the valid count.
func TestMethodsAgreeOnValidCount(t *testing.T) {
	f := func(nRaw, pRaw, exitRaw uint8) bool {
		n := int(nRaw)%150 + 1
		p := int(pRaw)%6 + 1
		exit := int(exitRaw) % (2 * n) // may exceed list length -> RI end
		body := func(it *loopir.Iter, nd *list.Node) bool { return nd.Key != exit }
		want := n
		if exit < n {
			want = exit
		}
		for _, run := range methods {
			res := run(list.Build(n, nil), body, Config{Procs: p, U: n})
			if res.Valid != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSimGeneral3BeatsGeneral1UnderLockContention(t *testing.T) {
	// The SPICE Loop 40 observation: with little work per node, the
	// serialized next() of General-1 throttles speedup while General-3
	// keeps scaling (2.9x vs 4.9x on 8 processors in the paper).
	n := 4000
	c := SimCosts{Hop: 1, Lock: 8, Dispatch: 1, Work: func(int) float64 { return 18 }}
	seq := c.SeqTime(n)

	tr1 := SimGeneral1(simproc.New(8), n, c)
	tr3 := SimGeneral3(simproc.New(8), n, c)
	sp1 := simproc.Speedup(seq, tr1.Makespan)
	sp3 := simproc.Speedup(seq, tr3.Makespan)
	if sp3 <= sp1 {
		t.Fatalf("General-3 (%.2f) should outperform General-1 (%.2f)", sp3, sp1)
	}
	if sp1 < 1.5 || sp3 < 3 {
		t.Fatalf("speedups implausibly low: %v %v", sp1, sp3)
	}
}

func TestSimSpeedupsMonotoneInProcs(t *testing.T) {
	n := 2000
	c := SimCosts{Hop: 1, Lock: 5, Dispatch: 1, Work: func(int) float64 { return 30 }}
	seq := c.SeqTime(n)
	sims := map[string]func(*simproc.Machine, int, SimCosts) simproc.Trace{
		"g1": SimGeneral1, "g2": SimGeneral2, "g3": SimGeneral3,
	}
	for name, sim := range sims {
		prev := 0.0
		for _, p := range []int{1, 2, 4, 8} {
			tr := sim(simproc.New(p), n, c)
			sp := simproc.Speedup(seq, tr.Makespan)
			if sp < prev-0.2 { // allow tiny non-monotonicity from remainder effects
				t.Fatalf("%s: speedup dropped at p=%d: %v < %v", name, p, sp, prev)
			}
			prev = sp
		}
	}
}

func TestSimGeneral2MatchesHopModel(t *testing.T) {
	// On one processor General-2 degenerates to the sequential loop.
	n := 100
	c := SimCosts{Hop: 2, Work: func(int) float64 { return 5 }}
	tr := SimGeneral2(simproc.New(1), n, c)
	if tr.Makespan != c.SeqTime(n) {
		t.Fatalf("1-proc General-2 = %v, want %v", tr.Makespan, c.SeqTime(n))
	}
}
