package genrec

import (
	"sync/atomic"
	"testing"

	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/simproc"
)

func TestDistributedProcessesEveryNodeOnce(t *testing.T) {
	n := 400
	head := list.Build(n, nil)
	counts := make([]atomic.Int32, n)
	res := Distributed(head, func(it *loopir.Iter, nd *list.Node) bool {
		counts[nd.Key].Add(1)
		return true
	}, Config{Procs: 6})
	if res.Valid != n || res.Executed != n || res.Hops != int64(n) {
		t.Fatalf("%+v", res)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("node %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	n := 200
	seq := mem.NewArray("A", n)
	par := mem.NewArray("A", n)
	for i := 0; i < n; i++ {
		seq.Data[i] = float64(i) + 0.5
	}
	head := list.Build(n, func(i int) (float64, float64) { return float64(i), 1 })
	Distributed(head, func(it *loopir.Iter, nd *list.Node) bool {
		it.Store(par, nd.Key, nd.Val+0.5)
		return true
	}, Config{Procs: 8})
	if !par.Equal(seq) {
		t.Fatal("distributed traversal diverged")
	}
}

func TestDistributedRVExitAndBound(t *testing.T) {
	head := list.Build(300, nil)
	res := Distributed(head, func(it *loopir.Iter, nd *list.Node) bool {
		return nd.Key != 42
	}, Config{Procs: 4})
	if res.Valid != 42 {
		t.Fatalf("Valid = %d", res.Valid)
	}
	// With an RV terminator the sequential dispatcher loop computed ALL
	// 300 values anyway — the superfluous-terms cost the paper charges
	// against this method.
	if res.Hops != 300 {
		t.Fatalf("hops = %d: distribution must precompute the whole recurrence", res.Hops)
	}
	// U bounds the precomputation.
	res2 := Distributed(head, func(*loopir.Iter, *list.Node) bool { return true }, Config{Procs: 2, U: 50})
	if res2.Valid != 50 || res2.Hops != 50 {
		t.Fatalf("%+v", res2)
	}
	// Empty list.
	res3 := Distributed(nil, func(*loopir.Iter, *list.Node) bool { return true }, Config{Procs: 2})
	if res3.Valid != 0 {
		t.Fatalf("%+v", res3)
	}
}

func TestSimDistributedVsGeneral3(t *testing.T) {
	// With an RI terminator and plentiful work, distribution performs
	// comparably to General-3 (the paper's "likely to be similar");
	// storage costs make it strictly worse per term.
	n := 4000
	c := SimCosts{Hop: 1, Dispatch: 0.5, Work: func(int) float64 { return 30 }}
	seq := c.SeqTime(n)
	spD := simproc.Speedup(seq, SimDistributed(simproc.New(8), n, c, 1).Makespan)
	spG3 := simproc.Speedup(seq, SimGeneral3(simproc.New(8), n, c).Makespan)
	if spD < 0.6*spG3 {
		t.Fatalf("RI: distribution %.2f should be in General-3's ballpark %.2f", spD, spG3)
	}
	// With little work, the sequential precompute pass dominates and
	// distribution falls behind.
	cSmall := SimCosts{Hop: 1, Dispatch: 0.5, Work: func(int) float64 { return 2 }}
	seqS := cSmall.SeqTime(n)
	spDs := simproc.Speedup(seqS, SimDistributed(simproc.New(8), n, cSmall, 1).Makespan)
	spG3s := simproc.Speedup(seqS, SimGeneral3(simproc.New(8), n, cSmall).Makespan)
	if spDs >= spG3s {
		t.Fatalf("low work: distribution %.2f should trail General-3 %.2f", spDs, spG3s)
	}
}
