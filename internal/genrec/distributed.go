package genrec

import (
	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/sched"
	"whilepar/internal/simproc"
)

// Distributed implements the naive loop-distribution method for general
// recurrences that Sections 3.3 and 10 discuss (and attribute to Wu &
// Lewis and, implicitly, Harrison): first a sequential loop evaluates
// the dispatcher and stores its values in an array, then the loop
// iterations are performed in parallel using that array.
//
// The paper's analysis: for an RI terminator this performs about like
// the embedded methods (General-1/2/3), but it requires storage for all
// dispatcher values and, for an RV terminator, either drags remainder
// code into the sequential loop or computes (and stores) superfluous
// dispatcher terms — which is why the paper prefers the embedded
// methods.  It is implemented here as the comparison baseline.
func Distributed(head *list.Node, body Body, cfg Config) Result {
	p := cfg.procs()
	// Loop 1 (sequential): evaluate the dispatcher, storing every value.
	var nodes []*list.Node
	bound := cfg.U
	for pt := head; pt != nil; pt = pt.Next {
		nodes = append(nodes, pt)
		if bound > 0 && len(nodes) >= bound {
			break
		}
	}
	hops := int64(len(nodes))

	// Loop 2 (DOALL): the remainder over the precomputed values.
	res := sched.DOALL(len(nodes), sched.Options{Procs: p}, func(i, vpn int) sched.Control {
		it := loopir.Iter{Index: i, VPN: vpn, Tracker: cfg.Tracker}
		if !body(&it, nodes[i]) {
			return sched.Quit
		}
		return sched.Continue
	})
	return Result{
		Valid:    res.QuitIndex,
		Executed: res.Executed,
		Overshot: res.Overshot,
		Hops:     hops,
	}
}

// SimDistributed models the naive distribution's time: the sequential
// dispatcher loop (n hops, plus a store per term), a barrier, then a
// dynamically scheduled DOALL over the remainder.  storeCost is the
// extra per-term cost of saving the dispatcher value (the "work and
// storage for saving the values computed in the recurrence" the paper's
// methods avoid).
func SimDistributed(m *simproc.Machine, n int, c SimCosts, storeCost float64) simproc.Trace {
	m.Run(0, (c.Hop+storeCost)*float64(n))
	m.Barrier(0)
	tr := m.DynamicDOALL(n, c.Work, c.Dispatch, -1, false)
	tr.Makespan = m.Makespan()
	return tr
}
