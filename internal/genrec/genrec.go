// Package genrec implements the General-1, General-2 and General-3
// methods of Section 3.3 (Figure 4) for WHILE loops whose dispatcher is
// a general recurrence — canonically, a pointer traversing a linked
// list.  The dispatcher itself is inherently sequential (a continuous
// chain of flow dependences), so these methods speed the loop up by
// overlapping the *remainder* work of different iterations:
//
//   - General-1 serializes accesses to next() in a critical section: the
//     list is traversed once, cooperatively, but every dispatcher
//     advancement contends for the lock.
//   - General-2 avoids the lock by giving each processor a private
//     cursor that traverses the *entire* list; processor k statically
//     executes the iterations congruent to k mod nproc.
//   - General-3 also avoids the lock and also privately traverses, but
//     assigns iterations dynamically: a processor assigned iteration i
//     advances its private cursor by i - prev hops from the last
//     iteration it processed.
//
// All three execute the same set of iterations as the sequential loop
// when the terminator is RI (pt == nil); with an RV terminator they
// speculate and report the overshoot for the undo machinery.
package genrec

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"whilepar/internal/cancel"
	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
)

// Body is the remainder executed for each list node; it returns false if
// the iteration met a remainder-variant termination condition (and, by
// the package convention, did so before performing any stores).
type Body func(it *loopir.Iter, node *list.Node) bool

// Config configures a general-recurrence parallel execution.
type Config struct {
	// Procs is the number of virtual processors.
	Procs int
	// Tracker interposes on managed-memory accesses; nil for direct.
	Tracker mem.Tracker
	// U is an upper bound on iterations for the dynamically scheduled
	// methods (the `u` of Figure 4's DOALLs); 0 means "the list length
	// is the bound" (pure RI traversal).
	U int
	// Metrics, if non-nil, accumulates runtime counters; Tracer, if
	// non-nil, receives iteration spans and QUIT events.
	Metrics *obs.Metrics
	Tracer  obs.Tracer
	// Pool, if non-nil, runs the per-processor workers on a persistent
	// pool instead of spawning goroutines per call (see sched.Pool).
	Pool *sched.Pool
}

func (c Config) hooks() obs.Hooks { return obs.Hooks{M: c.Metrics, T: c.Tracer} }

// execLog records which iterations each virtual processor executed.
// Each worker appends only to its own slice (no locking); the merge in
// finish happens after ForEachProc's wait, which orders it after every
// append.  Counting overshoot afterwards, against the *final* quit
// index, makes the accounting exact — a per-iteration `i > quit`
// check would race against a concurrently-lowering quit minimum.
type execLog struct {
	byVP [][]int
}

func newExecLog(procs int) *execLog { return &execLog{byVP: make([][]int, procs)} }

func (e *execLog) record(vpn, i int) { e.byVP[vpn] = append(e.byVP[vpn], i) }

// finish counts executed iterations and those at or beyond valid.
func (e *execLog) finish(valid int) (executed, overshot int) {
	for _, idxs := range e.byVP {
		executed += len(idxs)
		for _, i := range idxs {
			if i >= valid {
				overshot++
			}
		}
	}
	return executed, overshot
}

// prefix returns the length of the contiguous executed prefix — the
// first iteration index no worker executed.  A canceled or panicked
// execution reports this as its honest Valid: iterations above the
// first hole may have run, but nothing guarantees their predecessors
// did.  The prefix can never exceed the total executed count, so the
// scratch bitmap is bounded by it.
func (e *execLog) prefix() int {
	total := 0
	for _, idxs := range e.byVP {
		total += len(idxs)
	}
	seen := make([]bool, total)
	for _, idxs := range e.byVP {
		for _, i := range idxs {
			if i < total {
				seen[i] = true
			}
		}
	}
	for i, s := range seen {
		if !s {
			return i
		}
	}
	return total
}

func (c Config) procs() int {
	if c.Procs < 1 {
		return 1
	}
	return c.Procs
}

// Result reports a general-method execution.
type Result struct {
	// Valid is the number of valid iterations (list length if no RV
	// exit fired).
	Valid int
	// Executed is the number of iterations whose body ran.
	Executed int
	// Overshot is the number of executed iterations at or beyond Valid.
	Overshot int
	// Hops is the total number of next() advancements performed across
	// all processors: ~n for General-1, ~n*p for General-2, and between
	// n and n*p for General-3 — the redundancy the cost model charges.
	Hops int64
}

// ctxGuard bundles the cancellation and panic plumbing shared by the
// three general methods: a stop flag flipped by context.AfterFunc (one
// plain atomic load per iteration instead of a channel poll),
// first-panic capture, and the post-join valid/error resolution.
type ctxGuard struct {
	stop    atomic.Bool
	panicAt atomic.Pointer[cancel.PanicError]
	release func() bool
}

func newCtxGuard(ctx context.Context) *ctxGuard {
	g := &ctxGuard{}
	if ctx != nil && ctx.Done() != nil {
		g.release = context.AfterFunc(ctx, func() { g.stop.Store(true) })
	}
	return g
}

func (g *ctxGuard) done() {
	if g.release != nil {
		g.release()
	}
}

// contain runs one iteration's body behind a recover backstop.  ok is
// false when the body panicked: the panic has been captured (first one
// wins), siblings have been told to stop, and the caller must not log
// the iteration as executed.
func (g *ctxGuard) contain(i, vpn int, m *obs.Metrics, f func() bool) (quitted, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			pe := &cancel.PanicError{Iter: i, VPN: vpn, Value: r, Stack: debug.Stack()}
			if g.panicAt.CompareAndSwap(nil, pe) {
				m.WorkerPanic()
			}
			g.stop.Store(true)
			ok = false
		}
	}()
	return f(), true
}

// resolve caps valid at the contiguous executed prefix when the run
// ended early (holes may sit below the quit-derived valid) and picks
// the error to surface: an iteration-precise panic beats the join
// error, which is itself either a pool-backstop panic or the wrapped
// context error.
func (g *ctxGuard) resolve(valid int, log *execLog, runErr error) (int, error) {
	pe := g.panicAt.Load()
	if pe == nil && runErr == nil {
		return valid, nil
	}
	if pfx := log.prefix(); pfx < valid {
		valid = pfx
	}
	if pe != nil {
		return valid, pe
	}
	return valid, runErr
}

// quitMin tracks the smallest iteration index that signalled an RV exit.
type quitMin struct{ v atomic.Int64 }

func newQuitMin(def int) *quitMin {
	q := &quitMin{}
	q.v.Store(int64(def))
	return q
}

func (q *quitMin) record(i int) {
	for {
		cur := q.v.Load()
		if int64(i) >= cur || q.v.CompareAndSwap(cur, int64(i)) {
			return
		}
	}
}

func (q *quitMin) get() int { return int(q.v.Load()) }

// General1 runs the loop with lock-serialized next() (Figure 4,
// *General-1*): processors cooperatively traverse the list once, each
// dispatcher advancement inside a critical section.  It preserves the
// historical crash semantics (a panicking body panics the caller); use
// General1Ctx for cancellation and contained panics.
func General1(head *list.Node, body Body, cfg Config) Result {
	res, err := General1Ctx(context.Background(), head, body, cfg)
	if pe, ok := cancel.AsPanic(err); ok {
		panic(pe.Value)
	}
	return res
}

// General1Ctx is General1 under a context: cancellation is observed at
// iteration boundaries (workers stop claiming list nodes within one
// iteration), the returned Result reports the contiguous committed
// prefix in Valid, and the error is ErrCanceled/ErrDeadline.  A
// panicking body is contained as a *cancel.PanicError and stops the
// traversal the same way.
func General1Ctx(ctx context.Context, head *list.Node, body Body, cfg Config) (Result, error) {
	p := cfg.procs()
	var (
		mu   sync.Mutex
		cur  = head
		idx  int
		hops atomic.Int64
	)
	bound := cfg.U
	if bound <= 0 {
		bound = int(^uint(0) >> 1) // effectively unbounded; nil ends it
	}
	quit := newQuitMin(bound)
	log := newExecLog(p)
	g := newCtxGuard(ctx)
	defer g.done()

	runErr := sched.ForEachProc(ctx, p, sched.ProcConfig{Hooks: cfg.hooks(), Pool: cfg.Pool}, func(vpn int) {
		for {
			mu.Lock()
			if g.stop.Load() || cur == nil || idx >= bound || idx > quit.get() {
				mu.Unlock()
				return
			}
			pt := cur
			i := idx
			cur = cur.Next
			idx++
			hops.Add(1)
			mu.Unlock()
			cfg.Metrics.IterIssued(1)

			ts := obs.Start(cfg.Tracer)
			q, ok := g.contain(i, vpn, cfg.Metrics, func() bool {
				it := loopir.Iter{Index: i, VPN: vpn, Tracker: cfg.Tracker}
				return !body(&it, pt)
			})
			if !ok {
				return
			}
			log.record(vpn, i)
			cfg.Metrics.IterExecuted(vpn)
			if cfg.Tracer != nil {
				obs.Span(cfg.Tracer, ts, "iter", "general-1", vpn, map[string]any{"i": i})
			}
			if q {
				quit.record(i)
				cfg.Metrics.QuitPosted()
				if cfg.Tracer != nil {
					obs.Instant(cfg.Tracer, "QUIT", "general-1", vpn, map[string]any{"i": i})
				}
			}
		}
	})
	valid := quit.get()
	if valid >= bound {
		valid = idxClamp(idx, bound)
	}
	valid, err := g.resolve(valid, log, runErr)
	executed, overshot := log.finish(valid)
	cfg.Metrics.OvershotAdd(overshot)
	return Result{Valid: valid, Executed: executed, Overshot: overshot, Hops: hops.Load()}, err
}

func idxClamp(n, bound int) int {
	if n > bound {
		return bound
	}
	return n
}

// General2 runs the loop with static mod-p assignment (Figure 4,
// *General-2*): each processor traverses the entire list with a private
// cursor and executes the iterations congruent to its vpn mod nproc.  No
// lock is taken; the list is traversed p times in total.  Panics crash
// the caller; use General2Ctx for cancellation and contained panics.
func General2(head *list.Node, body Body, cfg Config) Result {
	res, err := General2Ctx(context.Background(), head, body, cfg)
	if pe, ok := cancel.AsPanic(err); ok {
		panic(pe.Value)
	}
	return res
}

// General2Ctx is General2 under a context (see General1Ctx for the
// cancellation and panic contract).
func General2Ctx(ctx context.Context, head *list.Node, body Body, cfg Config) (Result, error) {
	p := cfg.procs()
	var hops atomic.Int64
	n := list.Len(head) // headers walk; counted as hops below per processor
	quit := newQuitMin(n)
	log := newExecLog(p)
	g := newCtxGuard(ctx)
	defer g.done()

	runErr := sched.ForEachProc(ctx, p, sched.ProcConfig{Hooks: cfg.hooks(), Pool: cfg.Pool}, func(vpn int) {
		pt := head
		// Initial advance to this processor's first iteration.
		for j := 0; j < vpn && pt != nil; j++ {
			pt = pt.Next
			hops.Add(1)
		}
		for i := vpn; pt != nil; i += p {
			if g.stop.Load() {
				return
			}
			cfg.Metrics.IterIssued(1)
			if i > quit.get() {
				return
			}
			ts := obs.Start(cfg.Tracer)
			node := pt
			q, ok := g.contain(i, vpn, cfg.Metrics, func() bool {
				it := loopir.Iter{Index: i, VPN: vpn, Tracker: cfg.Tracker}
				return !body(&it, node)
			})
			if !ok {
				return
			}
			log.record(vpn, i)
			cfg.Metrics.IterExecuted(vpn)
			if cfg.Tracer != nil {
				obs.Span(cfg.Tracer, ts, "iter", "general-2", vpn, map[string]any{"i": i})
			}
			if q {
				quit.record(i)
				cfg.Metrics.QuitPosted()
				if cfg.Tracer != nil {
					obs.Instant(cfg.Tracer, "QUIT", "general-2", vpn, map[string]any{"i": i})
				}
			}
			for j := 0; j < p && pt != nil; j++ {
				pt = pt.Next
				hops.Add(1)
			}
		}
	})
	valid := quit.get()
	valid, err := g.resolve(valid, log, runErr)
	executed, overshot := log.finish(valid)
	cfg.Metrics.OvershotAdd(overshot)
	return Result{Valid: valid, Executed: executed, Overshot: overshot, Hops: hops.Load()}, err
}

// General3 runs the loop with dynamic assignment and private cursors
// (Figure 4, *General-3*): a processor assigned iteration i advances its
// private cursor i - prev hops.  No lock is taken; the total hop count
// lies between n (perfect locality) and n*p.  Panics crash the caller;
// use General3Ctx for cancellation and contained panics.
func General3(head *list.Node, body Body, cfg Config) Result {
	res, err := General3Ctx(context.Background(), head, body, cfg)
	if pe, ok := cancel.AsPanic(err); ok {
		panic(pe.Value)
	}
	return res
}

// General3Ctx is General3 under a context (see General1Ctx for the
// cancellation and panic contract).
func General3Ctx(ctx context.Context, head *list.Node, body Body, cfg Config) (Result, error) {
	p := cfg.procs()
	bound := cfg.U
	if bound <= 0 {
		bound = list.Len(head)
	}
	var (
		next atomic.Int64
		hops atomic.Int64
	)
	quit := newQuitMin(bound)
	log := newExecLog(p)
	g := newCtxGuard(ctx)
	defer g.done()

	runErr := sched.ForEachProc(ctx, p, sched.ProcConfig{Hooks: cfg.hooks(), Pool: cfg.Pool}, func(vpn int) {
		pt := head
		prev := 0 // pt currently points at iteration index `prev`
		for {
			if g.stop.Load() {
				return
			}
			i := int(next.Add(1) - 1)
			if i >= bound {
				return
			}
			cfg.Metrics.IterIssued(1)
			if i > quit.get() {
				return
			}
			for j := 0; j < i-prev && pt != nil; j++ {
				pt = pt.Next
				hops.Add(1)
			}
			prev = i
			if pt == nil {
				// Fell off the list: the RI terminator fired at or
				// before i; the list length caps validity.
				quit.record(i)
				return
			}
			ts := obs.Start(cfg.Tracer)
			node := pt
			q, ok := g.contain(i, vpn, cfg.Metrics, func() bool {
				it := loopir.Iter{Index: i, VPN: vpn, Tracker: cfg.Tracker}
				return !body(&it, node)
			})
			if !ok {
				return
			}
			log.record(vpn, i)
			cfg.Metrics.IterExecuted(vpn)
			if cfg.Tracer != nil {
				obs.Span(cfg.Tracer, ts, "iter", "general-3", vpn, map[string]any{"i": i})
			}
			if q {
				quit.record(i)
				cfg.Metrics.QuitPosted()
				if cfg.Tracer != nil {
					obs.Instant(cfg.Tracer, "QUIT", "general-3", vpn, map[string]any{"i": i})
				}
			}
		}
	})
	valid := quit.get()
	valid, err := g.resolve(valid, log, runErr)
	executed, overshot := log.finish(valid)
	cfg.Metrics.OvershotAdd(overshot)
	return Result{Valid: valid, Executed: executed, Overshot: overshot, Hops: hops.Load()}, err
}
