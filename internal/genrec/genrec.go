// Package genrec implements the General-1, General-2 and General-3
// methods of Section 3.3 (Figure 4) for WHILE loops whose dispatcher is
// a general recurrence — canonically, a pointer traversing a linked
// list.  The dispatcher itself is inherently sequential (a continuous
// chain of flow dependences), so these methods speed the loop up by
// overlapping the *remainder* work of different iterations:
//
//   - General-1 serializes accesses to next() in a critical section: the
//     list is traversed once, cooperatively, but every dispatcher
//     advancement contends for the lock.
//   - General-2 avoids the lock by giving each processor a private
//     cursor that traverses the *entire* list; processor k statically
//     executes the iterations congruent to k mod nproc.
//   - General-3 also avoids the lock and also privately traverses, but
//     assigns iterations dynamically: a processor assigned iteration i
//     advances its private cursor by i - prev hops from the last
//     iteration it processed.
//
// All three execute the same set of iterations as the sequential loop
// when the terminator is RI (pt == nil); with an RV terminator they
// speculate and report the overshoot for the undo machinery.
package genrec

import (
	"sync"
	"sync/atomic"

	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
)

// Body is the remainder executed for each list node; it returns false if
// the iteration met a remainder-variant termination condition (and, by
// the package convention, did so before performing any stores).
type Body func(it *loopir.Iter, node *list.Node) bool

// Config configures a general-recurrence parallel execution.
type Config struct {
	// Procs is the number of virtual processors.
	Procs int
	// Tracker interposes on managed-memory accesses; nil for direct.
	Tracker mem.Tracker
	// U is an upper bound on iterations for the dynamically scheduled
	// methods (the `u` of Figure 4's DOALLs); 0 means "the list length
	// is the bound" (pure RI traversal).
	U int
	// Metrics, if non-nil, accumulates runtime counters; Tracer, if
	// non-nil, receives iteration spans and QUIT events.
	Metrics *obs.Metrics
	Tracer  obs.Tracer
	// Pool, if non-nil, runs the per-processor workers on a persistent
	// pool instead of spawning goroutines per call (see sched.Pool).
	Pool *sched.Pool
}

func (c Config) hooks() obs.Hooks { return obs.Hooks{M: c.Metrics, T: c.Tracer} }

// execLog records which iterations each virtual processor executed.
// Each worker appends only to its own slice (no locking); the merge in
// finish happens after ForEachProc's wait, which orders it after every
// append.  Counting overshoot afterwards, against the *final* quit
// index, makes the accounting exact — a per-iteration `i > quit`
// check would race against a concurrently-lowering quit minimum.
type execLog struct {
	byVP [][]int
}

func newExecLog(procs int) *execLog { return &execLog{byVP: make([][]int, procs)} }

func (e *execLog) record(vpn, i int) { e.byVP[vpn] = append(e.byVP[vpn], i) }

// finish counts executed iterations and those at or beyond valid.
func (e *execLog) finish(valid int) (executed, overshot int) {
	for _, idxs := range e.byVP {
		executed += len(idxs)
		for _, i := range idxs {
			if i >= valid {
				overshot++
			}
		}
	}
	return executed, overshot
}

func (c Config) procs() int {
	if c.Procs < 1 {
		return 1
	}
	return c.Procs
}

// Result reports a general-method execution.
type Result struct {
	// Valid is the number of valid iterations (list length if no RV
	// exit fired).
	Valid int
	// Executed is the number of iterations whose body ran.
	Executed int
	// Overshot is the number of executed iterations at or beyond Valid.
	Overshot int
	// Hops is the total number of next() advancements performed across
	// all processors: ~n for General-1, ~n*p for General-2, and between
	// n and n*p for General-3 — the redundancy the cost model charges.
	Hops int64
}

// quitMin tracks the smallest iteration index that signalled an RV exit.
type quitMin struct{ v atomic.Int64 }

func newQuitMin(def int) *quitMin {
	q := &quitMin{}
	q.v.Store(int64(def))
	return q
}

func (q *quitMin) record(i int) {
	for {
		cur := q.v.Load()
		if int64(i) >= cur || q.v.CompareAndSwap(cur, int64(i)) {
			return
		}
	}
}

func (q *quitMin) get() int { return int(q.v.Load()) }

// General1 runs the loop with lock-serialized next() (Figure 4,
// *General-1*): processors cooperatively traverse the list once, each
// dispatcher advancement inside a critical section.
func General1(head *list.Node, body Body, cfg Config) Result {
	p := cfg.procs()
	var (
		mu   sync.Mutex
		cur  = head
		idx  int
		hops atomic.Int64
	)
	bound := cfg.U
	if bound <= 0 {
		bound = int(^uint(0) >> 1) // effectively unbounded; nil ends it
	}
	quit := newQuitMin(bound)
	log := newExecLog(p)

	sched.ForEachProcPool(p, cfg.Pool, cfg.hooks(), func(vpn int) {
		for {
			mu.Lock()
			if cur == nil || idx >= bound || idx > quit.get() {
				mu.Unlock()
				return
			}
			pt := cur
			i := idx
			cur = cur.Next
			idx++
			hops.Add(1)
			mu.Unlock()
			cfg.Metrics.IterIssued(1)

			ts := obs.Start(cfg.Tracer)
			it := loopir.Iter{Index: i, VPN: vpn, Tracker: cfg.Tracker}
			q := !body(&it, pt)
			log.record(vpn, i)
			cfg.Metrics.IterExecuted(vpn)
			if cfg.Tracer != nil {
				obs.Span(cfg.Tracer, ts, "iter", "general-1", vpn, map[string]any{"i": i})
			}
			if q {
				quit.record(i)
				cfg.Metrics.QuitPosted()
				if cfg.Tracer != nil {
					obs.Instant(cfg.Tracer, "QUIT", "general-1", vpn, map[string]any{"i": i})
				}
			}
		}
	})
	valid := quit.get()
	if valid >= bound {
		valid = idxClamp(idx, bound)
	}
	executed, overshot := log.finish(valid)
	cfg.Metrics.OvershotAdd(overshot)
	return Result{Valid: valid, Executed: executed, Overshot: overshot, Hops: hops.Load()}
}

func idxClamp(n, bound int) int {
	if n > bound {
		return bound
	}
	return n
}

// General2 runs the loop with static mod-p assignment (Figure 4,
// *General-2*): each processor traverses the entire list with a private
// cursor and executes the iterations congruent to its vpn mod nproc.  No
// lock is taken; the list is traversed p times in total.
func General2(head *list.Node, body Body, cfg Config) Result {
	p := cfg.procs()
	var hops atomic.Int64
	n := list.Len(head) // headers walk; counted as hops below per processor
	quit := newQuitMin(n)
	log := newExecLog(p)

	sched.ForEachProcPool(p, cfg.Pool, cfg.hooks(), func(vpn int) {
		pt := head
		// Initial advance to this processor's first iteration.
		for j := 0; j < vpn && pt != nil; j++ {
			pt = pt.Next
			hops.Add(1)
		}
		for i := vpn; pt != nil; i += p {
			cfg.Metrics.IterIssued(1)
			if i > quit.get() {
				return
			}
			ts := obs.Start(cfg.Tracer)
			it := loopir.Iter{Index: i, VPN: vpn, Tracker: cfg.Tracker}
			q := !body(&it, pt)
			log.record(vpn, i)
			cfg.Metrics.IterExecuted(vpn)
			if cfg.Tracer != nil {
				obs.Span(cfg.Tracer, ts, "iter", "general-2", vpn, map[string]any{"i": i})
			}
			if q {
				quit.record(i)
				cfg.Metrics.QuitPosted()
				if cfg.Tracer != nil {
					obs.Instant(cfg.Tracer, "QUIT", "general-2", vpn, map[string]any{"i": i})
				}
			}
			for j := 0; j < p && pt != nil; j++ {
				pt = pt.Next
				hops.Add(1)
			}
		}
	})
	valid := quit.get()
	executed, overshot := log.finish(valid)
	cfg.Metrics.OvershotAdd(overshot)
	return Result{Valid: valid, Executed: executed, Overshot: overshot, Hops: hops.Load()}
}

// General3 runs the loop with dynamic assignment and private cursors
// (Figure 4, *General-3*): a processor assigned iteration i advances its
// private cursor i - prev hops.  No lock is taken; the total hop count
// lies between n (perfect locality) and n*p.
func General3(head *list.Node, body Body, cfg Config) Result {
	p := cfg.procs()
	bound := cfg.U
	if bound <= 0 {
		bound = list.Len(head)
	}
	var (
		next atomic.Int64
		hops atomic.Int64
	)
	quit := newQuitMin(bound)
	log := newExecLog(p)

	sched.ForEachProcPool(p, cfg.Pool, cfg.hooks(), func(vpn int) {
		pt := head
		prev := 0 // pt currently points at iteration index `prev`
		for {
			i := int(next.Add(1) - 1)
			if i >= bound {
				return
			}
			cfg.Metrics.IterIssued(1)
			if i > quit.get() {
				return
			}
			for j := 0; j < i-prev && pt != nil; j++ {
				pt = pt.Next
				hops.Add(1)
			}
			prev = i
			if pt == nil {
				// Fell off the list: the RI terminator fired at or
				// before i; the list length caps validity.
				quit.record(i)
				return
			}
			ts := obs.Start(cfg.Tracer)
			it := loopir.Iter{Index: i, VPN: vpn, Tracker: cfg.Tracker}
			q := !body(&it, pt)
			log.record(vpn, i)
			cfg.Metrics.IterExecuted(vpn)
			if cfg.Tracer != nil {
				obs.Span(cfg.Tracer, ts, "iter", "general-3", vpn, map[string]any{"i": i})
			}
			if q {
				quit.record(i)
				cfg.Metrics.QuitPosted()
				if cfg.Tracer != nil {
					obs.Instant(cfg.Tracer, "QUIT", "general-3", vpn, map[string]any{"i": i})
				}
			}
		}
	})
	valid := quit.get()
	executed, overshot := log.finish(valid)
	cfg.Metrics.OvershotAdd(overshot)
	return Result{Valid: valid, Executed: executed, Overshot: overshot, Hops: hops.Load()}
}
