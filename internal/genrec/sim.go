package genrec

import (
	"whilepar/internal/simproc"
)

// SimCosts parameterizes the simulated-time models of the three general-
// recurrence methods.  Units are abstract; only ratios matter.
type SimCosts struct {
	// Hop is the cost of one next() advancement (a pointer dereference
	// plus loop overhead).
	Hop float64
	// Lock is the overhead of one lock acquire/release pair (General-1
	// only) — on bus-based machines like the Alliant this is large
	// relative to Hop and grows effectively with contention.
	Lock float64
	// Dispatch is the per-iteration dynamic self-scheduling overhead
	// (General-1 and General-3).
	Dispatch float64
	// Work(i) is the remainder cost of iteration i.
	Work func(i int) float64
}

// SimGeneral1 simulates General-1 on machine m over n iterations: every
// dispatcher advancement is a critical section of length Lock+Hop on a
// single shared lock, after which the owning processor performs the
// iteration's work.  Iterations are granted in lock-acquisition order.
// Returns the trace; the makespan includes nothing beyond the loop
// itself (undo costs are the caller's to add, as in induction.Simulate).
func SimGeneral1(m *simproc.Machine, n int, c SimCosts) simproc.Trace {
	var l simproc.Lock
	var tr simproc.Trace
	for i := 0; i < n; i++ {
		// The processor that will be free soonest contends next; with a
		// FIFO lock this matches grant order on a real machine.
		k := m.EarliestFree()
		g := l.Acquire(m.Clock(k) + c.Dispatch)
		crit := c.Lock + c.Hop
		l.Release(g + crit)
		m.WaitUntil(k, g)
		m.Run(k, crit+c.Work(i))
		tr.Executed++
	}
	tr.Makespan = m.Makespan()
	return tr
}

// SimGeneral2 simulates General-2 on machine m over n iterations:
// processor k privately traverses the whole list (n hops in total per
// processor, interleaved with its work) and executes iterations k, k+p,
// k+2p, ....  No lock, no dispatch overhead — assignment is static.
func SimGeneral2(m *simproc.Machine, n int, c SimCosts) simproc.Trace {
	p := m.P()
	var tr simproc.Trace
	for k := 0; k < p; k++ {
		pos := 0 // private cursor index
		for i := k; i < n; i += p {
			m.Run(k, c.Hop*float64(i-pos)+c.Work(i))
			pos = i
			tr.Executed++
		}
		// Trailing hops to the nil that terminates the traversal.
		if pos < n {
			m.Run(k, c.Hop*float64(n-pos))
		}
	}
	tr.Makespan = m.Makespan()
	return tr
}

// SimGeneral3 simulates General-3 on machine m over n iterations:
// dynamic self-scheduling (Dispatch per iteration), and a processor
// assigned iteration i pays (i - prev) hops from its previous position
// before doing the work.
func SimGeneral3(m *simproc.Machine, n int, c SimCosts) simproc.Trace {
	p := m.P()
	prev := make([]int, p)
	var tr simproc.Trace
	for i := 0; i < n; i++ {
		k := m.EarliestFree()
		m.Run(k, c.Dispatch+c.Hop*float64(i-prev[k])+c.Work(i))
		prev[k] = i
		tr.Executed++
	}
	tr.Makespan = m.Makespan()
	return tr
}

// SeqTime is the sequential WHILE loop's execution time under the same
// model: n hops plus the per-iteration work, with no locks or dispatch.
func (c SimCosts) SeqTime(n int) float64 {
	t := c.Hop * float64(n)
	for i := 0; i < n; i++ {
		t += c.Work(i)
	}
	return t
}
