package induction

import (
	"testing"
	"testing/quick"

	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/sched"
	"whilepar/internal/simproc"
	"whilepar/internal/tsmem"
)

// rvLoop builds the archetypal DO loop with a conditional exit at
// iteration `exit`: valid iterations write A[i] = i+1.
func rvLoop(a *mem.Array, exit, max int) *loopir.Loop[int] {
	return &loopir.Loop[int]{
		Class: loopir.Class{Dispatcher: loopir.MonotonicInduction, Terminator: loopir.RV},
		Disp:  loopir.IntInduction{C: 1, B: 0},
		Body: func(it *loopir.Iter, d int) bool {
			if d == exit {
				return false
			}
			it.Store(a, d, float64(d+1))
			return true
		},
		Max: max,
	}
}

func TestRunRequiresClosedFormAndBound(t *testing.T) {
	l := &loopir.Loop[int]{
		Disp: loopir.Func[int]{StartFn: func() int { return 0 }, NextFn: func(x int) int { return x + 1 }},
		Body: func(*loopir.Iter, int) bool { return true },
		Max:  10,
	}
	if _, err := Run(l, Config{Procs: 2}); err == nil {
		t.Fatal("dispatcher without closed form must be rejected")
	}
	l2 := rvLoop(mem.NewArray("A", 10), 5, 0)
	if _, err := Run(l2, Config{Procs: 2}); err == nil {
		t.Fatal("missing upper bound must be rejected")
	}
	l3 := rvLoop(mem.NewArray("A", 10), 5, 10)
	if _, err := Run(l3, Config{Procs: 2, Schedule: sched.Schedule(9)}); err == nil {
		t.Fatal("invalid schedule must be rejected")
	}
}

func TestBothMethodsFindLastValidIteration(t *testing.T) {
	for _, m := range []Method{Induction1, Induction2} {
		for _, exit := range []int{0, 1, 37, 99} {
			a := mem.NewArray("A", 128)
			l := rvLoop(a, exit, 128)
			res, err := Run(l, Config{Procs: 6, Method: m})
			if err != nil {
				t.Fatal(err)
			}
			if res.Valid != exit {
				t.Fatalf("%v exit=%d: Valid = %d", m, exit, res.Valid)
			}
		}
	}
}

func TestNoExitRunsWholeSpace(t *testing.T) {
	for _, m := range []Method{Induction1, Induction2} {
		a := mem.NewArray("A", 64)
		l := rvLoop(a, -1, 64) // exit never fires
		res, err := Run(l, Config{Procs: 4, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if res.Valid != 64 || res.Executed != 64 || res.Overshot != 0 {
			t.Fatalf("%v: %+v", m, res)
		}
		for i := 0; i < 64; i++ {
			if a.Data[i] != float64(i+1) {
				t.Fatalf("%v: A[%d] = %v", m, i, a.Data[i])
			}
		}
	}
}

func TestRITerminatorViaCond(t *testing.T) {
	// while (d < 40) work(d): RI condition on the dispatcher value.
	a := mem.NewArray("A", 100)
	l := &loopir.Loop[int]{
		Disp: loopir.IntInduction{C: 2, B: 0}, // d = 0,2,4,...
		Cond: func(d int) bool { return d < 40 },
		Body: func(it *loopir.Iter, d int) bool { it.Store(a, d, 1); return true },
		Max:  100,
	}
	res, err := Run(l, Config{Procs: 4, Method: Induction2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != 20 { // d=0..38, i=0..19
		t.Fatalf("Valid = %d, want 20", res.Valid)
	}
	if got := loopir.LastValid(l); got != res.Valid {
		t.Fatalf("parallel Valid %d != sequential %d", res.Valid, got)
	}
}

func TestInduction2OvershootsLessUnderSerialExecution(t *testing.T) {
	// With 1 virtual processor, Induction-2 stops immediately at the
	// exit while Induction-1 executes the whole space.
	a := mem.NewArray("A", 1000)
	l1 := rvLoop(a, 10, 1000)
	r1, _ := Run(l1, Config{Procs: 1, Method: Induction1})
	r2, _ := Run(l1, Config{Procs: 1, Method: Induction2})
	if r1.Executed != 1000 {
		t.Fatalf("Induction-1 must execute the full space, got %d", r1.Executed)
	}
	if r2.Executed != 11 {
		t.Fatalf("Induction-2 on one processor should stop right after the exit, got %d", r2.Executed)
	}
	if r2.Overshot > r1.Overshot {
		t.Fatal("Induction-2 should not overshoot more than Induction-1")
	}
}

// Property: speculative execution + undo == sequential execution, for
// random exits, processor counts and both methods.
func TestSpeculationPlusUndoMatchesSequential(t *testing.T) {
	f := func(exitRaw, procsRaw uint8, method bool) bool {
		n := 200
		exit := int(exitRaw) % n
		procs := int(procsRaw)%6 + 1
		meth := Induction1
		if method {
			meth = Induction2
		}

		parA := mem.NewArray("A", n)
		seqA := mem.NewArray("A", n)
		for i := 0; i < n; i++ {
			parA.Data[i] = -1
			seqA.Data[i] = -1
		}

		ts := tsmem.New(parA)
		ts.Checkpoint()
		lp := rvLoop(parA, exit, n)
		res, err := Run(lp, Config{Procs: procs, Method: meth, Tracker: ts.Tracker()})
		if err != nil {
			return false
		}
		if _, err := ts.Undo(res.Valid); err != nil {
			return false
		}

		loopir.RunSequential(rvLoop(seqA, exit, n))
		return parA.Equal(seqA) && res.Valid == exit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStaticScheduleAlsoCorrect(t *testing.T) {
	a := mem.NewArray("A", 256)
	l := rvLoop(a, 77, 256)
	res, err := Run(l, Config{Procs: 5, Method: Induction2, Schedule: sched.Static})
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != 77 {
		t.Fatalf("static schedule Valid = %d", res.Valid)
	}
}

func TestMethodString(t *testing.T) {
	if Induction1.String() != "Induction-1" || Induction2.String() != "Induction-2" {
		t.Fatal("method names wrong")
	}
}

func TestSimulateShapes(t *testing.T) {
	spec := SimSpec{
		U:        1000,
		Exit:     800,
		Work:     func(int) float64 { return 50 },
		ExitCost: 5, Dispatch: 1,
		Method:        Induction1,
		WritesPerIter: 2, TSCost: 1, CopyCost: 0.5,
		CheckpointWords: 2000, ReduceStep: 2,
	}
	seq := spec.SeqTime()
	if seq != 800*50+5 {
		t.Fatalf("SeqTime = %v", seq)
	}
	var prev float64 = 0
	for _, p := range []int{1, 2, 4, 8} {
		m := simproc.New(p)
		tr, total := Simulate(m, spec)
		if tr.Executed != 1000 {
			t.Fatalf("p=%d: Induction-1 must run full space, got %d", p, tr.Executed)
		}
		sp := simproc.Speedup(seq, total)
		if p == 1 && sp >= 1 {
			t.Fatalf("1-proc speculative run should be slower than sequential (overheads), got %v", sp)
		}
		if sp < prev {
			t.Fatalf("speedup not monotone at p=%d: %v < %v", p, sp, prev)
		}
		prev = sp
	}
	// Induction-2 beats Induction-1 when the exit is early.
	spec.Exit = 50
	spec.Method = Induction1
	_, t1 := Simulate(simproc.New(8), spec)
	spec.Method = Induction2
	_, t2 := Simulate(simproc.New(8), spec)
	if t2 >= t1 {
		t.Fatalf("QUIT should win on early exits: Induction-2 %v vs Induction-1 %v", t2, t1)
	}
}

func TestIdealSpeedupCappedByIterations(t *testing.T) {
	spec := SimSpec{U: 4, Exit: -1, Work: func(int) float64 { return 1 }}
	if got := spec.IdealSpeedup(16); got != 4 {
		t.Fatalf("ideal speedup = %v, want capped at 4 iterations", got)
	}
	if got := spec.IdealSpeedup(0); got != 1 {
		t.Fatalf("ideal speedup with p=0 coerced: %v", got)
	}
}
