// Package induction implements the Induction-1 and Induction-2 methods
// of Section 3.1 (Figure 2): parallel execution of a WHILE loop whose
// dispatcher is an induction d(i) = c*i + b.
//
// Because the dispatcher has a closed form, every processor evaluates
// its iterations' dispatcher values independently — no loop distribution
// or precomputation is needed — and the loop runs as a DOALL with the
// WHILE loop's termination test folded into the body:
//
//   - Induction-1 runs all u iterations; each processor records in
//     L[vpn] the lowest iteration it executed that met the termination
//     condition, and the last valid iteration is found afterwards by a
//     minimum reduction over L.
//   - Induction-2 exploits in-order issue and the machine's QUIT
//     operation: an iteration that meets the termination condition stops
//     further iterations from being issued, so far fewer iterations
//     overshoot.
//
// The identified last valid iteration is what the undo machinery of
// Section 4 (internal/tsmem) needs to restore overshot writes.
package induction

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"whilepar/internal/cancel"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
	"whilepar/internal/simproc"
)

// Method selects between the two variants of Figure 2.
type Method int

const (
	// Induction1 runs the full iteration space and finds the exit by a
	// post-loop minimum reduction.
	Induction1 Method = iota
	// Induction2 uses QUIT to stop issuing iterations once an exit is
	// found (the "optimized version" of Figure 2).
	Induction2
)

// String names the method as in the paper.
func (m Method) String() string {
	if m == Induction1 {
		return "Induction-1"
	}
	return "Induction-2"
}

// Config configures a parallel induction-loop execution.
type Config struct {
	// Procs is the number of virtual processors.
	Procs int
	// Method selects Induction-1 or Induction-2.
	Method Method
	// Tracker interposes on the body's managed-memory accesses
	// (time-stamping, PD-test marking); nil for direct access.
	Tracker mem.Tracker
	// Schedule selects dynamic or static iteration assignment
	// (Induction-2's QUIT argument assumes in-order issue, which both
	// provide per processor).
	Schedule sched.Schedule
	// Metrics, if non-nil, accumulates runtime counters; Tracer, if
	// non-nil, receives structured events.  Both pass through to the
	// DOALL substrate.
	Metrics *obs.Metrics
	Tracer  obs.Tracer
	// Pool, if non-nil, runs the DOALL on a persistent worker pool
	// instead of spawning goroutines per call (see sched.Pool).
	Pool *sched.Pool
}

// Result reports the parallel execution's outcome.
type Result struct {
	// Valid is the number of valid iterations (the last valid iteration
	// is Valid-1); it equals what the sequential loop would have run.
	Valid int
	// Executed is the number of iterations whose body ran.
	Executed int
	// Overshot is the number of executed iterations at or beyond Valid
	// — the work that may need undoing.
	Overshot int
}

// Run executes loop l, whose dispatcher must provide a closed form
// (loopir.ClosedForm[int]), in parallel.  l.Max must be a positive upper
// bound u on the iteration count.  The iteration space [0, u) is
// executed speculatively; each iteration evaluates the dispatcher from
// the closed form, tests the RI condition, runs the body, and treats
// either failing as "met the termination condition".
func Run(l *loopir.Loop[int], cfg Config) (Result, error) {
	res, err := RunCtx(context.Background(), l, cfg)
	if pe, ok := cancel.AsPanic(err); ok {
		panic(pe.Value)
	}
	return res, err
}

// RunCtx is Run under a context: once ctx is done the DOALL substrate
// stops issuing iterations and RunCtx returns the Result so far — Valid
// capped at the committed prefix (the first iteration that did not run)
// — together with ErrCanceled or ErrDeadline.  A panicking body is
// contained and surfaced as ErrWorkerPanic instead of crashing the
// caller.
func RunCtx(ctx context.Context, l *loopir.Loop[int], cfg Config) (Result, error) {
	cf, ok := l.Disp.(loopir.ClosedForm[int])
	if !ok {
		return Result{}, fmt.Errorf("induction: dispatcher %T has no closed form", l.Disp)
	}
	if l.Max <= 0 {
		return Result{}, fmt.Errorf("induction: loop needs an iteration upper bound (Max), got %d", l.Max)
	}
	if err := sched.Validate(cfg.Schedule); err != nil {
		return Result{}, err
	}
	u := l.Max

	iter := func(i, vpn int) bool { // returns true if the iteration hit the exit
		d := cf.At(i)
		if l.Cond != nil && !l.Cond(d) {
			return true
		}
		it := loopir.Iter{Index: i, VPN: vpn, Tracker: cfg.Tracker}
		return !l.Body(&it, d)
	}

	switch cfg.Method {
	case Induction2:
		res, err := sched.DOALLCtx(ctx, u, sched.Options{Procs: cfg.Procs, Schedule: cfg.Schedule, Metrics: cfg.Metrics, Tracer: cfg.Tracer, Pool: cfg.Pool}, func(i, vpn int) sched.Control {
			if iter(i, vpn) {
				return sched.Quit
			}
			return sched.Continue
		})
		valid := res.QuitIndex
		if err != nil {
			// On cancellation or a contained panic the quit index may
			// never have been found; only the committed prefix is known
			// to match the sequential loop.
			valid = res.Prefix
		}
		// The substrate's Overshot is exact (computed after all workers
		// finished, against the final quit index), so use it directly.
		return Result{Valid: valid, Executed: res.Executed, Overshot: res.Overshot}, err

	default: // Induction1: run everything, reduce afterwards.
		procs := cfg.Procs
		if procs < 1 {
			procs = 1
		}
		L := make([]atomic.Int64, procs)
		for k := range L {
			L[k].Store(int64(u))
		}
		res, err := sched.DOALLCtx(ctx, u, sched.Options{Procs: procs, Schedule: cfg.Schedule, Metrics: cfg.Metrics, Tracer: cfg.Tracer, Pool: cfg.Pool}, func(i, vpn int) sched.Control {
			if iter(i, vpn) && int64(i) < L[vpn].Load() {
				L[vpn].Store(int64(i))
			}
			return sched.Continue
		})
		// LI = min(L[0:nproc-1]).
		mins := make([]int, procs)
		for k := range L {
			mins[k] = int(L[k].Load())
		}
		li := sched.MinReduce(mins, u)
		if err != nil && res.Prefix < li {
			// Induction-1 only knows the exit from the reduction; if the
			// run was cut short before every iteration below the reduced
			// minimum executed, only the committed prefix is trustworthy.
			li = res.Prefix
		}
		// Induction-1 never QUITs the substrate, so overshoot is only
		// known after the reduction; mirror it into the metrics here.
		overshot := res.Executed - min(res.Executed, li)
		cfg.Metrics.OvershotAdd(overshot)
		if cfg.Tracer != nil {
			obs.Instant(cfg.Tracer, "min-reduce", "induction", 0, map[string]any{"li": li})
		}
		return Result{Valid: li, Executed: res.Executed, Overshot: overshot}, err
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SimSpec parameterizes the simulated-time model of an induction-method
// execution, including the speculation overheads of Sections 4 and 7.
type SimSpec struct {
	// U is the iteration-space upper bound; Exit the first iteration
	// meeting the termination condition (-1 if none within U).
	U, Exit int
	// Work(i) is the body cost of iteration i; overshot iterations do
	// the same speculative work unless the caller's Work says otherwise.
	Work func(i int) float64
	// ExitCost is the cost of the exit-signalling iteration itself
	// (test + record, no work).
	ExitCost float64
	// Dispatch is the per-iteration self-scheduling overhead.
	Dispatch float64
	// Method selects Induction-1 (full space + reduction) or
	// Induction-2 (QUIT).
	Method Method
	// CheckpointWords is the state saved before the loop (Tb); CopyCost
	// the per-word save/restore cost.  Zero for loops needing no
	// backups.
	CheckpointWords int
	CopyCost        float64
	// WritesPerIter is the number of stamped writes an overshot
	// iteration must undo (Ta); TSCost is the per-write time-stamping
	// overhead added to executing iterations (Td).
	WritesPerIter int
	TSCost        float64
	// ReduceStep is the per-tree-level cost of the post-loop minimum
	// reduction.
	ReduceStep float64
}

// Simulate runs the method on a simulated p-processor machine and
// returns the trace and the total makespan including checkpointing, the
// post-loop reduction, and undo of overshot iterations.
func Simulate(m *simproc.Machine, s SimSpec) (simproc.Trace, float64) {
	cost := func(i int) float64 {
		c := s.Work(i) + s.TSCost*float64(s.WritesPerIter)
		if s.Exit >= 0 && i == s.Exit {
			c = s.ExitCost
		}
		return c
	}
	// Tb: checkpoint in parallel.
	if s.CheckpointWords > 0 {
		m.Reduce(s.CheckpointWords, s.CopyCost, 0)
	}
	tr := m.DynamicDOALL(s.U, cost, s.Dispatch, s.Exit, s.Method == Induction2)
	// Post-loop minimum reduction over the per-processor L values.
	m.Reduce(m.P(), s.ReduceStep, s.ReduceStep)
	// Ta: undo overshot writes, in parallel.
	if undo := tr.Overshot * s.WritesPerIter; undo > 0 {
		m.Reduce(undo, s.CopyCost, 0)
	}
	return tr, m.Makespan()
}

// SeqTime returns the sequential execution time of the original WHILE
// loop under the same cost model: valid iterations' work plus the final
// exit test, with no parallelization overheads.
func (s SimSpec) SeqTime() float64 {
	n := s.U
	if s.Exit >= 0 && s.Exit < n {
		n = s.Exit
	}
	t := simproc.SeqTime(n, s.Work)
	if s.Exit >= 0 && s.Exit < s.U {
		t += s.ExitCost
	}
	return t
}

// IdealSpeedup is Sp_id for this loop: Trem/p with the (fully parallel)
// induction dispatcher folded into the iterations, per Section 7.
func (s SimSpec) IdealSpeedup(p int) float64 {
	if p < 1 {
		p = 1
	}
	return math.Min(float64(p), float64(max(1, s.validCount())))
}

func (s SimSpec) validCount() int {
	if s.Exit >= 0 && s.Exit < s.U {
		return s.Exit
	}
	return s.U
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
