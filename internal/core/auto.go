package core

import (
	"context"
	"runtime/debug"
	"time"

	"whilepar/internal/autotune"
	"whilepar/internal/cancel"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/sched"
	"whilepar/internal/speculate"
)

// inductionDispAt positions the dispatcher at an arbitrary iteration:
// the closed form directly when the dispatcher has one, otherwise by
// replaying the recurrence chain.
func inductionDispAt(l *loopir.Loop[int]) func(int) int {
	return func(i int) int {
		if cf, ok := l.Disp.(loopir.ClosedForm[int]); ok {
			return cf.At(i)
		}
		d := l.Disp.Start()
		for k := 0; k < i; k++ {
			d = l.Disp.Next(d)
		}
		return d
	}
}

// inductionSeqFrom completes the loop sequentially from an arbitrary
// iteration against committed state — the recovery resume, the tuned
// engine's sequential demotion, and the post-probe short-remainder
// path all use it.
func inductionSeqFrom(l *loopir.Loop[int]) func(int) int {
	dispAt := inductionDispAt(l)
	return func(from int) int {
		d := dispAt(from)
		for i := from; l.Max <= 0 || i < l.Max; i++ {
			if l.Cond != nil && !l.Cond(d) {
				return i
			}
			it := loopir.Iter{Index: i, VPN: 0}
			if !l.Body(&it, d) {
				return i
			}
			d = l.Disp.Next(d)
		}
		return l.Max
	}
}

// probeInduction runs the first probeN iterations sequentially on the
// calling goroutine: the auto-tuner's online probe.  Its writes are
// direct (no tracker), which is exactly the committed-prefix state the
// strip engines start from.  The per-iteration context check keeps
// deadlines honest even when the body is slow, and a panicking body is
// contained here just as a worker would contain it.
func probeInduction(ctx context.Context, l *loopir.Loop[int], probeN int, opt Options) (iters int, done bool, err error) {
	d := l.Disp.Start()
	i := 0
	defer func() {
		if r := recover(); r != nil {
			opt.Metrics.WorkerPanic()
			iters, done = i, false
			err = &cancel.PanicError{Iter: i, VPN: 0, Value: r, Stack: debug.Stack()}
		}
	}()
	for ; i < probeN; i++ {
		if cerr := cancel.Err(ctx); cerr != nil {
			opt.Metrics.CtxCancel()
			return i, false, cerr
		}
		if l.Cond != nil && !l.Cond(d) {
			return i, true, nil
		}
		it := loopir.Iter{Index: i, VPN: 0}
		if !l.Body(&it, d) {
			return i, true, nil
		}
		d = l.Disp.Next(d)
	}
	return probeN, false, nil
}

// seqRemainder completes the loop sequentially from a committed prefix
// with the same containment contract as the parallel engines: context
// checked per iteration, a panicking body surfaced as a PanicError at
// its global iteration index instead of unwinding through the caller.
// It backs the auto path's sequential plan (the plan a single
// processor, a short remainder, or a violation-heavy profile earns).
func seqRemainder(ctx context.Context, l *loopir.Loop[int], from int, opt Options) (valid int, err error) {
	d := inductionDispAt(l)(from)
	i := from
	defer func() {
		if r := recover(); r != nil {
			opt.Metrics.WorkerPanic()
			valid = i
			err = &cancel.PanicError{Iter: i, VPN: 0, Value: r, Stack: debug.Stack()}
		}
	}()
	for ; l.Max <= 0 || i < l.Max; i++ {
		if cerr := cancel.Err(ctx); cerr != nil {
			opt.Metrics.CtxCancel()
			return i, cerr
		}
		if l.Cond != nil && !l.Cond(d) {
			return i, nil
		}
		it := loopir.Iter{Index: i, VPN: 0}
		if !l.Body(&it, d) {
			return i, nil
		}
		d = l.Disp.Next(d)
	}
	return l.Max, nil
}

// runInductionAuto is the adaptive path for closed-form induction
// loops under fully-defaulted Options: probe sequentially, consult the
// per-call-site profile, pick an engine (autotune.Decide — engine and
// schedule from deterministic inputs only), run the remainder under
// it, and feed the outcome back into the profile.  Mid-run the Tuner
// re-decides strip size and engine from the obs counters: violation
// storms shrink strips and demote to sequential, clean streaks grow
// strips and promote to the pipelined engine.
func runInductionAuto(ctx context.Context, l *loopir.Loop[int], cf loopir.ClosedForm[int], opt Options) (Report, error) {
	total := l.Max
	procs := opt.procs()
	d, _ := decide(opt, l.Class.Dispatcher) // no Times on this path: the default-parallelize verdict
	rep := Report{Decision: d}

	store := opt.Profiles
	if store == nil {
		store = autotune.Default()
	}
	key := opt.Key
	if key == "" {
		key = callSiteKey()
	}
	prof, haveProf := store.Lookup(key)

	probeN := autotune.ProbeSize(total, procs)
	opt.Metrics.ProbeRun()
	t0 := time.Now()
	pIters, pDone, perr := probeInduction(ctx, l, probeN, opt)
	rep.ProbeNs = time.Since(t0).Nanoseconds()
	rep.ProbeIters = pIters
	rep.Valid = pIters
	if perr != nil {
		rep.Strategy = "auto: sequential probe"
		return finish(rep, opt), perr
	}
	if pDone || probeN >= total {
		rep.Strategy = "auto: probe completed the loop"
		store.Record(key, autotune.Sample{Valid: rep.Valid, Total: total,
			Ns: rep.ProbeNs, NsIters: pIters, Engine: autotune.Sequential})
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}

	needsSpec := needsSpeculation(l.Class, opt)
	plan := autotune.Decide(prof, haveProf, total-probeN, procs, needsSpec)
	// A pinned Validation overrides the earned tier.  A pinned tier
	// above full forces the stripped engine (the pipeline is
	// element-wise only) and the schedule/strip shape the signatures
	// need: stealing's contiguous chunks on block-aligned strips.
	switch opt.Validation {
	case ValidationFull:
		plan.Tier = 0
	case ValidationSignature, ValidationTrusted:
		if plan.Engine == autotune.Pipelined {
			plan.Engine = autotune.Speculative
			plan.Window = 1
		}
		if plan.Engine == autotune.Speculative {
			plan.Tier = int(opt.Validation.tier())
			plan.Schedule = sched.Stealing
			plan.Strip = autotune.AlignStrip(plan.Strip, procs)
		}
	}
	rep.Strategy = "auto: probe + " + plan.Engine.String()

	switch plan.Engine {
	case autotune.Sequential:
		v, serr := seqRemainder(ctx, l, probeN, opt)
		rep.Valid = v
		if serr != nil {
			return finish(rep, opt), serr
		}
		store.Record(key, autotune.Sample{Valid: rep.Valid, Total: total,
			Ns: rep.ProbeNs, NsIters: pIters, Engine: autotune.Sequential})
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil

	case autotune.DOALL:
		res, err := sched.DOALLCtx(ctx, total-probeN, sched.Options{Procs: procs,
			Schedule: plan.Schedule, Metrics: opt.Metrics, Tracer: opt.Tracer, Pool: opt.Workers},
			func(i, vpn int) sched.Control {
				gi := probeN + i
				dv := cf.At(gi)
				if l.Cond != nil && !l.Cond(dv) {
					return sched.Quit
				}
				it := loopir.Iter{Index: gi, VPN: vpn}
				if !l.Body(&it, dv) {
					return sched.Quit
				}
				return sched.Continue
			})
		rep.Executed, rep.Overshot = res.Executed, res.Overshot
		if err != nil {
			// No speculation means no undo: the committed prefix is
			// the probe plus the contiguous executed prefix.  The
			// scheduler reports region-local iteration indices, so a
			// contained panic is re-anchored to the global space.
			if pe, ok := cancel.AsPanic(err); ok && pe.Iter >= 0 {
				pe.Iter += probeN
			}
			rep.Valid = probeN + res.Prefix
			return finish(rep, opt), err
		}
		rep.Valid = probeN + res.QuitIndex
		rep.UsedParallel = true
		store.Record(key, autotune.Sample{Valid: rep.Valid, Total: total,
			Ns: rep.ProbeNs, NsIters: pIters, Engine: autotune.DOALL})
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}

	// Speculative engines: strip-mined, pool-backed, globally indexed.
	// An external Options.Workers pool is used as-is (and never closed
	// here); otherwise the execution spawns its own.
	pool := opt.Workers
	if pool == nil {
		pool = sched.NewPool(procs)
		defer pool.Close()
	}
	var executed, overshot int
	stripPar := func(trk mem.Tracker, lo, hi int) (int, bool, error) {
		res, err := sched.DOALLCtx(ctx, hi-lo, sched.Options{Procs: procs,
			Schedule: plan.Schedule, Metrics: opt.Metrics, Tracer: opt.Tracer, Pool: pool},
			func(i, vpn int) sched.Control {
				gi := lo + i
				dv := cf.At(gi)
				if l.Cond != nil && !l.Cond(dv) {
					return sched.Quit
				}
				it := loopir.Iter{Index: gi, VPN: vpn, Tracker: trk}
				if !l.Body(&it, dv) {
					return sched.Quit
				}
				return sched.Continue
			})
		executed += res.Executed
		overshot += res.Overshot
		if err != nil {
			// Re-anchor a contained panic's strip-local index to the
			// global iteration space before it unwinds.
			if pe, ok := cancel.AsPanic(err); ok && pe.Iter >= 0 {
				pe.Iter += lo
			}
		}
		return res.QuitIndex, res.QuitIndex < hi-lo, err
	}
	dispAt := inductionDispAt(l)
	stripSeq := func(lo, hi int) (int, bool) {
		dv := dispAt(lo)
		for i := lo; i < hi; i++ {
			if l.Cond != nil && !l.Cond(dv) {
				return i - lo, true
			}
			it := loopir.Iter{Index: i, VPN: 0}
			if !l.Body(&it, dv) {
				return i - lo, true
			}
			dv = l.Disp.Next(dv)
		}
		return hi - lo, false
	}
	spec := speculate.Spec{Procs: procs, Shared: opt.Shared, Tested: opt.Tested,
		Tier:    speculate.Tier(plan.Tier),
		Metrics: opt.Metrics, Tracer: opt.Tracer}
	tuner := autotune.NewTuner(autotune.TunerConfig{Plan: plan, Procs: procs,
		Total: total, PipelineOK: true, Metrics: opt.Metrics})
	var srep speculate.StripReport
	var err error
	if plan.Engine == autotune.Pipelined {
		srep, err = speculate.RunStrippedPipelinedFromCtx(ctx, spec, probeN, total, plan.Strip, stripPar, stripSeq)
	} else {
		srep, err = speculate.RunTunedCtx(ctx, spec, probeN, total, tuner, stripPar, stripSeq)
	}
	rep.Valid = probeN + srep.Valid
	rep.Undone = srep.Undone
	rep.PrefixCommitted = srep.PrefixCommitted
	rep.Executed, rep.Overshot = executed, overshot
	rep.Retunes = tuner.Events()
	rep.ValidationTier = int(srep.Tier)
	rep.TierDemoted = srep.TierDemoted
	rep.SigFalsePositives = srep.SigFalsePositives
	rep.AuditRuns, rep.AuditFailures = srep.AuditRuns, srep.AuditFailures
	if err != nil {
		// srep.Valid is the committed-strip prefix on unwind.
		return finish(rep, opt), err
	}
	rep.UsedParallel = srep.Strips > srep.SeqStrips
	store.Record(key, autotune.Sample{Valid: rep.Valid, Total: total,
		Ns: rep.ProbeNs, NsIters: pIters,
		Strips: srep.Strips, SeqStrips: srep.SeqStrips, Engine: plan.Engine,
		Tier: int(srep.Tier), Violated: srep.TierDemoted, AuditFailed: srep.AuditFailures > 0})
	recordStats(opt, rep.Valid)
	return finish(rep, opt), nil
}
