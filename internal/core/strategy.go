package core

import (
	"fmt"
	"runtime"
	"strings"

	"whilepar/internal/induction"
	"whilepar/internal/sched"
)

// Strategy is the first-class execution-strategy selector.  The zero
// value, Auto, lets the orchestrator choose: the engine, schedule,
// strip size and respeculation window come from the adaptive selector
// (internal/autotune) fed by an online probe and the loop's persistent
// profile.  The non-zero values are explicit overrides subsuming the
// older knob sprawl — each implies the flags it needs, so
//
//	Options{Strategy: StrategyPipeline}
//
// replaces Options{Pipeline: true} (which keeps working as a
// deprecated alias).  Conflicting combinations of a Strategy and the
// legacy flags are rejected by Validate with ErrStrategyConflict.
type Strategy int

const (
	// Auto (the default) delegates engine selection to the adaptive
	// selector for loops it understands (closed-form induction
	// dispatchers with otherwise-default knobs) and to the Table 1
	// classification elsewhere.
	Auto Strategy = iota
	// StrategySequential runs the loop on the calling goroutine — the
	// reference semantics, no parallel machinery at all.
	StrategySequential
	// StrategySpeculate pins the classic whole-loop engines: the
	// Table 1 transformation wrapped in the Section 4/5 speculation
	// protocol when needed, exactly as the pre-auto orchestrator ran.
	StrategySpeculate
	// StrategyRunTwice pins Section 4's time-stamp-free alternative
	// (implies Options.RunTwice).
	StrategyRunTwice
	// StrategyRecover pins partial-commit misspeculation recovery
	// (implies Options.Recovery).
	StrategyRecover
	// StrategyPipeline pins pipelined strip speculation (implies
	// Options.Pipeline).
	StrategyPipeline
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case StrategySequential:
		return "sequential"
	case StrategySpeculate:
		return "speculate"
	case StrategyRunTwice:
		return "run-twice"
	case StrategyRecover:
		return "recover"
	case StrategyPipeline:
		return "pipeline"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// validateStrategy rejects out-of-range values and combinations of an
// explicit Strategy with legacy flags that contradict it.  Redundant
// agreement (StrategyPipeline plus Pipeline: true) is allowed — that
// is the migration path — and so are orthogonal compositions that were
// legal before (StrategyPipeline plus Recovery).
func (o Options) validateStrategy() error {
	switch o.Strategy {
	case Auto, StrategySequential, StrategySpeculate, StrategyRunTwice, StrategyRecover, StrategyPipeline:
	default:
		return fmt.Errorf("%w: %d", ErrBadStrategy, int(o.Strategy))
	}
	conflict := func(flag string) error {
		return fmt.Errorf("%w: Strategy %s with %s", ErrStrategyConflict, o.Strategy, flag)
	}
	switch o.Strategy {
	case StrategySequential:
		if o.Pipeline {
			return conflict("Pipeline")
		}
		if o.RunTwice {
			return conflict("RunTwice")
		}
		if o.Recovery {
			return conflict("Recovery")
		}
	case StrategySpeculate:
		if o.Pipeline {
			return conflict("Pipeline")
		}
		if o.RunTwice {
			return conflict("RunTwice")
		}
	case StrategyRunTwice:
		if o.Pipeline {
			return conflict("Pipeline")
		}
		if o.Recovery {
			return conflict("Recovery")
		}
	case StrategyRecover:
		if o.RunTwice {
			return conflict("RunTwice")
		}
	case StrategyPipeline:
		if o.RunTwice {
			return conflict("RunTwice")
		}
	}
	return nil
}

// resolved maps an explicit Strategy onto the legacy flags the rest of
// the orchestrator dispatches on.  Validate has already rejected
// contradictions, so setting the implied flag is idempotent.
func (o Options) resolved() Options {
	switch o.Strategy {
	case StrategyRunTwice:
		o.RunTwice = true
	case StrategyRecover:
		o.Recovery = true
	case StrategyPipeline:
		o.Pipeline = true
	}
	return o
}

// autoEligible reports whether the adaptive selector owns this
// execution: Strategy is Auto and every knob the selector would
// otherwise have to honour is at its zero value.  Any hand-tuned
// engine choice — an explicit schedule, method, pipeline, recovery,
// pool, sparse undo, privatization, cost-model estimates or
// profitability floor — pins the classic path; so does
// FallbackSequential, whose absorb-the-panic contract belongs to the
// whole-loop protocol.  (An explicit InductionMethod of Induction1 is
// indistinguishable from the default and also lands here; the
// selector's strip engines preserve Induction-1/2 semantics either
// way, since both evaluate the dispatcher's closed form.)
func (o Options) autoEligible() bool {
	return o.Strategy == Auto &&
		o.Procs != 1 && // explicit 1 means "run it sequentially" — a pinned choice
		o.InductionMethod == induction.Induction1 &&
		o.Schedule == sched.Dynamic &&
		len(o.Privatized) == 0 &&
		!o.Pipeline && !o.Recovery && !o.RunTwice && !o.SparseUndo &&
		!o.Pool && !o.FallbackSequential &&
		o.MaxRespecRounds == 0 && o.MinIters == 0 &&
		o.Stats == nil && o.Times.Tseq() <= 0
}

// callSiteKey derives the default profile key: the file:line of the
// first stack frame outside this module's implementation (the internal
// packages and the facade's Run* wrappers).  Two loops launched from
// different source lines learn independently; the same line re-run in
// the same process (or with a persisted store, across processes) finds
// its history.
func callSiteKey() string {
	var pcs [16]uintptr
	n := runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		fn := f.Function
		if fn != "" &&
			!strings.HasPrefix(fn, "whilepar/internal/") &&
			!strings.HasPrefix(fn, "whilepar.Run") &&
			!strings.HasPrefix(fn, "runtime.") {
			return fmt.Sprintf("%s:%d", f.File, f.Line)
		}
		if !more {
			return "unknown"
		}
	}
}
