package core

import (
	"fmt"
	"runtime"
	"strings"

	"whilepar/internal/induction"
	"whilepar/internal/sched"
)

// Strategy is the first-class execution-strategy selector.  The zero
// value, Auto, lets the orchestrator choose: the engine, schedule,
// strip size and respeculation window come from the adaptive selector
// (internal/autotune) fed by an online probe and the loop's persistent
// profile.  The non-zero values pin one engine each and are the only
// way to request the run-twice, recovery and pipelined protocols —
// the boolean aliases they once shadowed are gone.
type Strategy int

const (
	// Auto (the default) delegates engine selection to the adaptive
	// selector for loops it understands (closed-form induction
	// dispatchers with otherwise-default knobs) and to the Table 1
	// classification elsewhere.
	Auto Strategy = iota
	// StrategySequential runs the loop on the calling goroutine — the
	// reference semantics, no parallel machinery at all.
	StrategySequential
	// StrategySpeculate pins the classic whole-loop engines: the
	// Table 1 transformation wrapped in the Section 4/5 speculation
	// protocol when needed, exactly as the pre-auto orchestrator ran.
	StrategySpeculate
	// StrategyRunTwice pins Section 4's time-stamp-free alternative:
	// run the parallel loop once purely to learn the iteration count,
	// restore the checkpoint, then run exactly the valid iterations as
	// a plain DOALL.  Requires statically known dependences (no
	// Tested/Privatized arrays).
	StrategyRunTwice
	// StrategyRecover pins partial-commit misspeculation recovery: a
	// failed PD test keeps the valid prefix below the earliest
	// violating iteration, rewinds only the suffix's stamped stores,
	// and the loop completes from the violation point.  Requires the
	// dense stamped path (no SparseUndo, no Privatized arrays).
	StrategyRecover
	// StrategyPipeline pins pipelined strip speculation: while the
	// coordinator validates and commits sealed strip k, the pool
	// already executes strip k+1 into a double-buffered stamp/shadow
	// generation, squashed only if k's test fails.  Implies a
	// persistent pool; requires the dense stamped path and a
	// strip-mineable loop (see ErrPipelineUnsupported).
	StrategyPipeline
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case StrategySequential:
		return "sequential"
	case StrategySpeculate:
		return "speculate"
	case StrategyRunTwice:
		return "run-twice"
	case StrategyRecover:
		return "recover"
	case StrategyPipeline:
		return "pipeline"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// validateStrategy rejects out-of-range Strategy values.  With the
// boolean engine aliases gone a Strategy can no longer contradict
// anything — each value simply pins its engine.
func (o Options) validateStrategy() error {
	switch o.Strategy {
	case Auto, StrategySequential, StrategySpeculate, StrategyRunTwice, StrategyRecover, StrategyPipeline:
		return nil
	}
	return fmt.Errorf("%w: %d", ErrBadStrategy, int(o.Strategy))
}

// resolved maps an explicit Strategy onto the internal engine flags the
// rest of the orchestrator dispatches on.
func (o Options) resolved() Options {
	switch o.Strategy {
	case StrategyRunTwice:
		o.runTwice = true
	case StrategyRecover:
		o.recovery = true
	case StrategyPipeline:
		o.pipeline = true
	}
	return o
}

// autoEligible reports whether the adaptive selector owns this
// execution: Strategy is Auto and every knob the selector would
// otherwise have to honour is at its zero value.  Any hand-tuned
// engine choice — an explicit schedule, method, pool, sparse undo,
// privatization, cost-model estimates or profitability floor — pins
// the classic path; so does FallbackSequential, whose
// absorb-the-panic contract belongs to the whole-loop protocol.  An
// external Options.Workers pool does NOT disqualify: the selector's
// engines run their parallel phases on it like any other pool.  (An
// explicit InductionMethod of Induction1 is indistinguishable from
// the default and also lands here; the selector's strip engines
// preserve Induction-1/2 semantics either way, since both evaluate
// the dispatcher's closed form.)
func (o Options) autoEligible() bool {
	return o.Strategy == Auto &&
		o.Procs != 1 && // explicit 1 means "run it sequentially" — a pinned choice
		o.InductionMethod == induction.Induction1 &&
		o.Schedule == sched.Dynamic &&
		len(o.Privatized) == 0 &&
		!o.SparseUndo &&
		!o.Pool && !o.FallbackSequential &&
		o.MaxRespecRounds == 0 && o.MinIters == 0 &&
		o.Stats == nil && o.Times.Tseq() <= 0
}

// callSiteKey derives the default profile key: the file:line of the
// first stack frame outside this module's implementation (the internal
// packages and the facade's Run* wrappers).  Two loops launched from
// different source lines learn independently; the same line re-run in
// the same process (or with a persisted store, across processes) finds
// its history.
func callSiteKey() string {
	var pcs [16]uintptr
	n := runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		fn := f.Function
		if fn != "" &&
			!strings.HasPrefix(fn, "whilepar/internal/") &&
			!strings.HasPrefix(fn, "whilepar.Run") &&
			!strings.HasPrefix(fn, "runtime.") {
			return fmt.Sprintf("%s:%d", f.File, f.Line)
		}
		if !more {
			return "unknown"
		}
	}
}
