package core

// Context, deadline and panic-containment behaviour of the orchestrated
// entry points: a done context (or an expired Options.Deadline) must
// surface as the typed sentinel with the committed prefix in the
// Report, a panicking body must either surface as ErrWorkerPanic with
// speculative state restored or — under FallbackSequential — complete
// through the sequential fallback, and malformed deadlines must be
// rejected before any goroutine starts.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"whilepar/internal/cancel"
	"whilepar/internal/induction"
	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
)

func TestValidateRejectsNegativeDeadline(t *testing.T) {
	err := Options{Deadline: -time.Second}.Validate()
	if !errors.Is(err, ErrBadDeadline) {
		t.Fatalf("err = %v", err)
	}
	a := mem.NewArray("A", 4)
	l := inductionLoop(a, -1, 4)
	if _, err := RunInductionCtx(context.Background(), l, Options{Deadline: -1}); !errors.Is(err, ErrBadDeadline) {
		t.Fatalf("entry point err = %v", err)
	}
}

func TestRunInductionCtxPreCanceled(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	a := mem.NewArray("A", 64)
	l := inductionLoop(a, -1, 64)
	l.Class.Terminator = loopir.RI
	l.Class.ThresholdOnMonotonic = true
	rep, err := RunInductionCtx(ctx, l, Options{Procs: 4})
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid != 0 {
		t.Fatalf("report %+v", rep)
	}
}

func TestRunInductionCtxDeadline(t *testing.T) {
	// Each iteration sleeps, so the deadline expires mid-loop: the
	// engine must stop issuing, report ErrDeadline (matching
	// context.DeadlineExceeded too), and cap Valid at the committed
	// prefix.
	n := 1000
	a := mem.NewArray("A", n)
	l := &loopir.Loop[int]{
		Class: loopir.Class{Dispatcher: loopir.MonotonicInduction, Terminator: loopir.RI,
			ThresholdOnMonotonic: true},
		Disp: loopir.IntInduction{C: 1},
		Body: func(it *loopir.Iter, d int) bool {
			time.Sleep(time.Millisecond)
			it.Store(a, d, 1)
			return true
		},
		Max: n,
	}
	rep, err := RunInductionCtx(context.Background(), l, Options{Procs: 2, Deadline: 10 * time.Millisecond})
	if !errors.Is(err, cancel.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid >= n {
		t.Fatalf("deadline did not stop the loop: %+v", rep)
	}
	for i := 0; i < rep.Valid; i++ {
		if a.Data[i] != 1 {
			t.Fatalf("Valid = %d but iteration %d never ran", rep.Valid, i)
		}
	}
}

func TestRunInductionCtxPanicSurfaces(t *testing.T) {
	// A panic on the speculative path unwinds: the strip in flight is
	// restored to its checkpoint — the shared arrays hold exactly the
	// committed prefix — and the error matches ErrWorkerPanic with the
	// global iteration attached.  Under the adaptive default the
	// committed prefix is the sequential probe plus every clean strip
	// before the one that panicked.
	a := mem.NewArray("A", 128)
	var fired atomic.Bool
	l := &loopir.Loop[int]{
		Class: loopir.Class{Dispatcher: loopir.MonotonicInduction, Terminator: loopir.RV},
		Disp:  loopir.IntInduction{C: 1},
		Body: func(it *loopir.Iter, d int) bool {
			if d == 40 && fired.CompareAndSwap(false, true) {
				panic("body exploded")
			}
			if d >= 100 {
				return false
			}
			it.Store(a, d, float64(d)+1)
			return true
		},
		Max: 128,
	}
	rep, err := RunInductionCtx(context.Background(), l, Options{
		Procs:           4,
		InductionMethod: induction.Induction1,
		Shared:          []*mem.Array{a},
		Tested:          []*mem.Array{a},
	})
	if !errors.Is(err, cancel.ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
	pe, ok := cancel.AsPanic(err)
	if !ok || pe.Iter != 40 || pe.Value != "body exploded" {
		t.Fatalf("panic detail %+v", pe)
	}
	if rep.UsedParallel {
		t.Fatalf("report %+v", rep)
	}
	for i, v := range a.Data {
		if i < rep.Valid {
			if v != float64(i)+1 {
				t.Fatalf("A[%d] = %v inside the committed prefix (Valid = %d)", i, v, rep.Valid)
			}
		} else if v != 0 {
			t.Fatalf("A[%d] = %v after restore (Valid = %d)", i, v, rep.Valid)
		}
	}
	if rep.Valid > 40 {
		t.Fatalf("Valid = %d commits past the panicking iteration", rep.Valid)
	}
}

func TestRunInductionCtxPanicFallbackSequential(t *testing.T) {
	// Same loop, FallbackSequential set: the panic routes through the
	// speculative exception path and the sequential fallback completes
	// the loop — no error, sequential-identical state.
	a := mem.NewArray("A", 128)
	var fired atomic.Bool
	l := &loopir.Loop[int]{
		Class: loopir.Class{Dispatcher: loopir.MonotonicInduction, Terminator: loopir.RV},
		Disp:  loopir.IntInduction{C: 1},
		Body: func(it *loopir.Iter, d int) bool {
			if d == 40 && fired.CompareAndSwap(false, true) {
				panic("body exploded")
			}
			if d >= 100 {
				return false
			}
			it.Store(a, d, float64(d)+1)
			return true
		},
		Max: 128,
	}
	rep, err := RunInductionCtx(context.Background(), l, Options{
		Procs:              4,
		InductionMethod:    induction.Induction1,
		Shared:             []*mem.Array{a},
		Tested:             []*mem.Array{a},
		FallbackSequential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 100 || rep.UsedParallel || rep.Failure == "" {
		t.Fatalf("report %+v", rep)
	}
	for i := 0; i < 128; i++ {
		want := 0.0
		if i < 100 {
			want = float64(i) + 1
		}
		if a.Data[i] != want {
			t.Fatalf("A[%d] = %v, want %v", i, a.Data[i], want)
		}
	}
}

func TestRunGeneralNumericCtxDeadlineOnPromotePath(t *testing.T) {
	// An affine-recognizable opaque dispatcher promotes to the
	// parallel-prefix path; the deadline wired in by the outer entry
	// point must still bound the promoted execution (and only be
	// derived once — a double WithTimeout would not change semantics
	// but would leak a timer; this exercises the single-wrap wiring).
	n := 500
	a := mem.NewArray("A", n)
	l := &loopir.Loop[float64]{
		Class: loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI},
		Disp: loopir.Func[float64]{
			StartFn: func() float64 { return 1 },
			NextFn:  func(x float64) float64 { return x + 1 },
		},
		Cond: func(x float64) bool { return x < 1e18 },
		Body: func(it *loopir.Iter, x float64) bool {
			time.Sleep(time.Millisecond)
			it.Store(a, it.Index, x)
			return true
		},
		Max: n,
	}
	rep, err := RunGeneralNumericCtx(context.Background(), l,
		Options{Procs: 2, Deadline: 10 * time.Millisecond})
	if !errors.Is(err, cancel.ErrDeadline) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid >= n {
		t.Fatalf("deadline did not stop the loop: %+v", rep)
	}
}

func TestRunListCtxCancelMidTraversal(t *testing.T) {
	n := 5000
	a := mem.NewArray("A", n)
	head := list.Build(n, func(i int) (float64, float64) { return float64(i), 1 })
	ctx, stop := context.WithCancel(context.Background())
	var executed atomic.Int64
	rep, err := RunListCtx(ctx, head, func(it *loopir.Iter, nd *list.Node) bool {
		executed.Add(1)
		if nd.Key == 10 {
			stop()
		}
		if ctx.Err() != nil {
			time.Sleep(time.Microsecond) // let the engine's stop flag land
		}
		it.Store(a, nd.Key, nd.Val*2)
		return true
	}, loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI},
		Options{Procs: 4})
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid > int(executed.Load()) {
		t.Fatalf("Valid = %d exceeds executed %d", rep.Valid, executed.Load())
	}
	for i := 0; i < rep.Valid; i++ {
		if a.Data[i] != float64(2*i) {
			t.Fatalf("Valid = %d but node %d never ran (A[%d] = %v)", rep.Valid, i, i, a.Data[i])
		}
	}
}
