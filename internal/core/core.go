// Package core is the orchestration layer — the paper's "compiler plus
// run-time system" in library form.  Given a WHILE loop in loopir form
// plus the annotations a compiler pass would have produced (which arrays
// are written in place, which have unanalyzable access patterns, which
// may be privatized), it:
//
//  1. classifies the loop against the Table 1 taxonomy;
//  2. consults the Section 7 cost model on whether to parallelize at
//     all;
//  3. selects the transformation — Induction-1/2 for closed-form
//     dispatchers, parallel-prefix distribution for associative
//     recurrences, General-1/2/3 for linked-list traversals;
//  4. wraps the execution in the Section 4/5 speculation protocol
//     (checkpoint, time-stamps, PD test, undo or sequential
//     re-execution) whenever overshoot or unknown dependences make it
//     necessary.
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"whilepar/internal/autotune"
	"whilepar/internal/cancel"
	"whilepar/internal/costmodel"
	"whilepar/internal/doacross"
	"whilepar/internal/genrec"
	"whilepar/internal/induction"
	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/pdtest"
	"whilepar/internal/prefix"
	"whilepar/internal/sched"
	"whilepar/internal/speculate"
)

// ListMethod selects among the Section 3.3 techniques.
type ListMethod int

const (
	// AutoList picks General-3, the paper's overall winner (dynamic
	// assignment, no serialization, modest redundant traversal).
	AutoList ListMethod = iota
	// General1 serializes next() behind a lock.
	General1
	// General2 statically assigns iterations mod nproc.
	General2
	// General3 dynamically assigns iterations with private cursors.
	General3
	// DoacrossList pipelines the traversal (WHILE-DOACROSS): iteration i
	// receives its node from iteration i-1's dispatcher hand-off and
	// overlaps only the remainder — no redundant traversal, but the
	// hand-off chain is the critical path.
	DoacrossList
)

// String names the method as in the paper.
func (m ListMethod) String() string {
	switch m {
	case General1:
		return "General-1"
	case General2:
		return "General-2"
	case General3:
		return "General-3"
	case DoacrossList:
		return "WHILE-DOACROSS"
	}
	return "General-3 (auto)"
}

// Options configures an orchestrated execution.
type Options struct {
	// Strategy selects the execution strategy.  The zero value, Auto,
	// lets the orchestrator pick engine, schedule, strip size and
	// respeculation window itself (see Strategy); the explicit values
	// pin one engine each — StrategyRunTwice, StrategyRecover and
	// StrategyPipeline are the only way to request those protocols.
	Strategy Strategy
	// Profiles is the persistent per-call-site profile store the
	// adaptive selector learns from.  Nil uses a process-wide default
	// store; services that want profiles to survive restarts supply
	// their own and persist it (autotune.ProfileStore is
	// JSON-round-trippable).
	Profiles *autotune.ProfileStore
	// Key identifies this loop in the profile store.  Empty derives a
	// key from the caller's file:line, so distinct loops learn
	// independently with zero configuration.
	Key string
	// Procs is the number of virtual processors.  Zero defaults to
	// runtime.GOMAXPROCS(0); an explicit 1 requests sequential
	// execution; negative values are rejected by Validate.
	Procs int
	// Induction method (Induction-2/QUIT by default).
	InductionMethod induction.Method
	// ListMethod for general-recurrence loops.
	ListMethod ListMethod
	// Schedule for the DOALLs.
	Schedule sched.Schedule
	// Shared lists arrays the loop writes in place (checkpoint + stamp
	// + undo when overshoot is possible).
	Shared []*mem.Array
	// Tested lists arrays with unanalyzable access patterns (PD test).
	Tested []*mem.Array
	// Privatized lists arrays to run against private copies.
	Privatized []speculate.PrivSpec
	// Times, if non-zero, feeds the Section 7 decision; a loop the
	// model rejects is executed sequentially.
	Times costmodel.LoopTimes
	// Stats, if set, supplies the branch-statistics trip-count estimate
	// and enables the Section 8.1 stamp threshold.
	Stats *costmodel.BranchStats
	// MinIters is the profitability floor for the trip-count check.
	MinIters int
	// SparseUndo selects the hash-table undo scheme (Section 4) instead
	// of full checkpointing — for loops whose writes touch a sparse
	// subset of large arrays.
	SparseUndo bool
	// MaxRespecRounds bounds renewed parallel attempts after partial
	// commits in the re-speculating engines (StrategyRecover); 0 means
	// speculate.DefaultMaxRespecRounds.  Negative values are rejected.
	MaxRespecRounds int
	// Pool runs every parallel phase of the execution on one persistent
	// worker pool: the workers are spawned once per entry-point call
	// and parked on a barrier between phases, so a strip-mined or
	// multi-phase loop pays one barrier release per phase instead of
	// procs goroutine spawns.  Off (the default), every phase spawns
	// its own goroutines — the retained baseline and equivalence
	// oracle.  Ignored when Workers supplies a pool.
	Pool bool
	// Workers, if non-nil, is an externally owned worker pool every
	// parallel phase of this execution runs on.  The orchestrator
	// never closes it, so one pool — typically a shared pool
	// (sched.NewSharedPool) — can back many concurrent executions:
	// each parallel region is admitted onto the pool in FIFO order and
	// the effective processor count is clamped to the pool's size.
	Workers *sched.Pool
	// Deadline, if positive, bounds the execution's wall-clock time:
	// the entry point derives a context.WithTimeout from the caller's
	// context (context.Background() for the non-Ctx entry points), so
	// even Run/RunInduction callers that never touch contexts get
	// deadline support.  On expiry the engines stop at the next
	// iteration/strip/chunk boundary, restore any uncommitted
	// speculative state, and return the committed prefix with
	// ErrDeadline.  Zero means no deadline; negative is rejected by
	// Validate (ErrBadDeadline).
	Deadline time.Duration
	// Validation pins the speculative validation tier (full shadows,
	// hash signatures, or shadow-free trusted strips with sampled
	// audits).  The zero value lets the adaptive selector promote and
	// demote the tier from the loop's clean-run streak; see Validation.
	Validation Validation
	// FallbackSequential routes a contained worker panic through the
	// speculation protocol's sequential fallback (restore + re-execute,
	// like any exception) instead of returning ErrWorkerPanic.  Only
	// executions that run under the speculation protocol have a
	// fallback to route to; elsewhere the panic error is returned
	// regardless.
	FallbackSequential bool
	// Metrics, if non-nil, accumulates runtime counters across every
	// layer of the execution (scheduling, speculation, undo memory, PD
	// tests); the Report carries a snapshot.  Tracer, if non-nil,
	// receives structured events suitable for Chrome's trace viewer.
	Metrics *obs.Metrics
	Tracer  obs.Tracer

	// The engine flags the orchestrator dispatches on, derived from
	// Strategy by resolved().  Unexported on purpose: Strategy is the
	// only way callers request these protocols.
	runTwice bool
	recovery bool
	pipeline bool
}

// withDeadline derives the execution context: the caller's ctx (nil
// becomes Background) bounded by Options.Deadline when one is set.  The
// returned stop function must be deferred; it releases the timer.
func (o Options) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Deadline > 0 {
		return context.WithTimeout(ctx, o.Deadline)
	}
	return ctx, func() {}
}

func (o Options) procs() int {
	if o.Procs == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Procs < 1 {
		return 1 // negative: Validate rejects; clamp defensively
	}
	return o.Procs
}

func (o Options) hooks() obs.Hooks { return obs.Hooks{M: o.Metrics, T: o.Tracer} }

// newPool resolves the execution's persistent worker pool: the
// caller-owned Options.Workers when supplied, a freshly spawned pool
// when Options asks for one (StrategyPipeline implies Pool), nil
// otherwise (every phase spawns its own goroutines).  owned reports
// whether the orchestrator must Close it.
func (o Options) newPool() (pool *sched.Pool, owned bool) {
	if o.Workers != nil {
		return o.Workers, false
	}
	if !o.Pool && !o.pipeline {
		return nil, false
	}
	return sched.NewPool(o.procs()), true
}

// closePool is a deferred Close that leaves caller-owned pools alone.
func closePool(p *sched.Pool, owned bool) {
	if p != nil && owned {
		p.Close()
	}
}

// pipeStrip sizes the strips of a pipelined speculative execution:
// small enough that many strips flow through the pipeline (a failed
// strip forfeits little work and the PD-test overlap repeats often),
// large enough that each strip amortizes its checkpoint and barrier.
func pipeStrip(total, procs int) int {
	s := total / 16
	if min := 4 * procs; s < min {
		s = min
	}
	if s > total {
		s = total
	}
	if s < 1 {
		s = 1
	}
	return s
}

// recoveryFor assembles the speculate.Recovery configuration for one
// execution; seqFrom completes the loop sequentially from an arbitrary
// iteration against partially committed state.
func (o Options) recoveryFor(seqFrom func(from int) int) speculate.Recovery {
	if !o.recovery {
		return speculate.Recovery{}
	}
	return speculate.Recovery{Enabled: true, MaxRounds: o.MaxRespecRounds, SeqFrom: seqFrom}
}

// Report describes what the orchestrator did.
type Report struct {
	// Valid iterations (matches the sequential loop).
	Valid int
	// Strategy is the human-readable transformation name.
	Strategy string
	// UsedParallel is false if the loop ran (or re-ran) sequentially.
	UsedParallel bool
	// Decision is the cost model's verdict (zero if no Times given).
	Decision costmodel.Decision
	// Failure explains a speculative fallback, "" otherwise.
	Failure string
	// PD holds per-tested-array verdicts when speculation ran.
	PD []pdtest.Result
	// Undone counts restored locations.
	Undone int
	// Executed and Overshot iterations in the parallel attempt.
	Executed, Overshot int
	// RespecRounds counts renewed parallel attempts after partial
	// commits, and PrefixCommitted the iterations those commits salvaged
	// from failed speculative executions (both 0 unless Options.Recovery
	// engaged; UsedParallel stays true when a prefix was kept).
	RespecRounds    int
	PrefixCommitted int
	// StampThreshold is the Section 8.1 statistics-enhanced threshold
	// used (0 = every store stamped).
	StampThreshold int
	// StrategyChosen names the strategy the orchestrator settled on
	// before running — for auto-tuned executions the selector's
	// initial plan (mid-run changes land in Retunes, not here, so the
	// field is identical across identical runs), elsewhere a copy of
	// Strategy.
	StrategyChosen string
	// ProbeIters and ProbeNs are the auto-tuner's online probe cost:
	// iterations executed sequentially before an engine was chosen,
	// and the wall-clock they took (both 0 when no probe ran).
	ProbeIters int
	ProbeNs    int64
	// Retunes lists the mid-run strategy adjustments the auto-tuner
	// made, in order (nil when none, or when the run was not
	// auto-tuned).
	Retunes []autotune.RetuneEvent
	// ValidationTier is the tier the speculative engine actually ran at
	// (0 = full element-wise shadows — also the value for executions
	// that never speculated); TierDemoted reports a mid-run fall back
	// to the full tier after a violation or audit failure.
	ValidationTier int
	TierDemoted    bool
	// SigFalsePositives counts Tier-1 strips flagged by hash aliasing
	// whose element-wise re-run found no real violation; AuditRuns and
	// AuditFailures count Tier-2 sampled audit strips and the ones
	// whose PD test failed.
	SigFalsePositives int
	AuditRuns         int
	AuditFailures     int
	// Metrics is a snapshot of the run's counters, taken as the
	// orchestrator returns; nil unless Options.Metrics was set.
	Metrics *obs.Snapshot
}

// finish stamps the report with a metrics snapshot (when requested)
// and the settled strategy name just before the orchestrator hands it
// back.
func finish(rep Report, opt Options) Report {
	if rep.StrategyChosen == "" {
		rep.StrategyChosen = rep.Strategy
	}
	if opt.Metrics != nil {
		s := opt.Metrics.Snapshot()
		rep.Metrics = &s
	}
	return rep
}

// decide runs the Section 7 analysis if the caller supplied timing
// estimates; with no estimates the loop is assumed profitable (the
// paper's default stance: "they should almost always be applied").
func decide(opt Options, kind loopir.DispatcherKind) (costmodel.Decision, bool) {
	if opt.Times.Tseq() <= 0 {
		return costmodel.Decision{Parallelize: true, Reason: "no estimates: default to parallelize"}, true
	}
	ps := costmodel.Params{
		Kind:        kind,
		Times:       opt.Times,
		Procs:       opt.procs(),
		NeedsPDTest: len(opt.Tested) > 0,
		// With no run-time history assume iterations are likely
		// independent — the compiler chose speculation for a reason.
		ProbParallel: 0.75,
		MinIters:     float64(opt.MinIters),
	}
	if opt.Stats != nil {
		ni, _ := opt.Stats.Estimate()
		ps.EstimatedIters = ni
	}
	d := costmodel.ShouldParallelize(ps)
	return d, d.Parallelize
}

// needsSpeculation reports whether the execution must run under the
// checkpoint/undo + PD protocol.
func needsSpeculation(class loopir.Class, opt Options) bool {
	return len(opt.Tested) > 0 || len(opt.Privatized) > 0 ||
		(class.CanOvershoot() && len(opt.Shared) > 0)
}

// stampThreshold derives the Section 8.1 threshold from branch stats.
func stampThreshold(opt Options) int {
	if opt.Stats == nil {
		return 0
	}
	return opt.Stats.StampThreshold()
}

// RunInduction orchestrates a WHILE loop whose dispatcher is an
// induction (Section 3.1).  l.Max must bound the iteration space.  It
// is RunInductionCtx under context.Background().
func RunInduction(l *loopir.Loop[int], opt Options) (Report, error) {
	return RunInductionCtx(context.Background(), l, opt)
}

// RunInductionCtx is RunInduction under a context: once ctx is done (or
// Options.Deadline expires) the execution stops at the next iteration
// or strip boundary, uncommitted speculative state is restored, and the
// Report carries the committed prefix together with
// ErrCanceled/ErrDeadline.  A panicking body is contained and returned
// as ErrWorkerPanic — or, with Options.FallbackSequential on a
// speculative path, absorbed by the sequential fallback.
func RunInductionCtx(ctx context.Context, l *loopir.Loop[int], opt Options) (Report, error) {
	if err := opt.Validate(); err != nil {
		return Report{}, err
	}
	opt = opt.resolved()
	ctx, stop := opt.withDeadline(ctx)
	defer stop()
	if opt.Strategy == StrategySequential {
		rep := Report{Strategy: "sequential (explicit)"}
		rep.Valid = loopir.RunSequential(l).Iterations
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}
	if opt.autoEligible() {
		if cf, ok := l.Disp.(loopir.ClosedForm[int]); ok && l.Max > 0 {
			return runInductionAuto(ctx, l, cf, opt)
		}
	}
	d, ok := decide(opt, l.Class.Dispatcher)
	rep := Report{Decision: d, Strategy: opt.InductionMethod.String()}
	if !ok {
		res := loopir.RunSequential(l)
		rep.Valid = res.Iterations
		rep.Strategy = "sequential (cost model)"
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}

	pool, owned := opt.newPool()
	defer closePool(pool, owned)
	cfg := induction.Config{Procs: opt.procs(), Method: opt.InductionMethod, Schedule: opt.Schedule,
		Metrics: opt.Metrics, Tracer: opt.Tracer, Pool: pool}

	if opt.runTwice {
		if len(opt.Tested) > 0 || len(opt.Privatized) > 0 {
			return rep, ErrRunTwiceUnanalyzable
		}
		valid, err := speculate.RunTwiceCtx(ctx, opt.Shared, opt.procs(), opt.hooks(),
			func() (int, error) {
				r, rerr := induction.RunCtx(ctx, l, cfg)
				rep.Executed = r.Executed
				return r.Valid, rerr
			},
			func(valid int) error {
				second := *l
				second.Max = valid
				_, rerr := induction.RunCtx(ctx, &second, cfg)
				return rerr
			})
		if err != nil {
			return rep, err
		}
		rep.Valid = valid
		rep.UsedParallel = true
		rep.Strategy = fmt.Sprintf("%s, run-twice (no time-stamps)", opt.InductionMethod)
		recordStats(opt, valid)
		return finish(rep, opt), nil
	}

	if !needsSpeculation(l.Class, opt) {
		res, err := induction.RunCtx(ctx, l, cfg)
		rep.Valid, rep.Executed, rep.Overshot = res.Valid, res.Executed, res.Overshot
		if err != nil {
			// res.Valid is already capped at the committed prefix.
			return finish(rep, opt), err
		}
		rep.UsedParallel = true
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}

	var parRes induction.Result
	rep.StampThreshold = stampThreshold(opt)
	dispAt := inductionDispAt(l)
	seqFrom := inductionSeqFrom(l)
	if opt.pipeline {
		return runInductionPipelined(ctx, l, opt, pool, rep, seqFrom, dispAt)
	}
	srep, err := speculate.RunCtx(ctx,
		speculate.Spec{
			Procs:          opt.procs(),
			Shared:         opt.Shared,
			Tested:         opt.Tested,
			Privatized:     opt.Privatized,
			StampThreshold: rep.StampThreshold,
			SparseUndo:     opt.SparseUndo,
			Recovery:       opt.recoveryFor(seqFrom),
			PanicFallback:  opt.FallbackSequential,
			Metrics:        opt.Metrics,
			Tracer:         opt.Tracer,
		},
		func(tr mem.Tracker) (int, error) {
			c := cfg
			c.Tracker = tr
			r, err := induction.RunCtx(ctx, l, c)
			parRes = r
			return r.Valid, err
		},
		func() int { return loopir.RunSequential(l).Iterations },
	)
	if err != nil {
		rep.Executed, rep.Overshot = parRes.Executed, parRes.Overshot
		return finish(rep, opt), err
	}
	rep.Valid = srep.Valid
	rep.UsedParallel = srep.UsedParallel
	rep.Failure = srep.Failure
	rep.PD = srep.PD
	rep.Undone = srep.Undone
	rep.RespecRounds, rep.PrefixCommitted = srep.RespecRounds, srep.PrefixCommitted
	rep.Executed, rep.Overshot = parRes.Executed, parRes.Overshot
	rep.Strategy = fmt.Sprintf("%s + speculation", opt.InductionMethod)
	recordStats(opt, rep.Valid)
	return finish(rep, opt), nil
}

// runInductionPipelined executes the speculative section of an
// induction loop as pipelined strips: the iteration space is strip-
// mined, each strip runs as a pool-backed DOALL evaluating the
// dispatcher's closed form, and strip k+1's execution overlaps strip
// k's PD test and commit (speculate.RunStrippedPipelined).
func runInductionPipelined(ctx context.Context, l *loopir.Loop[int], opt Options, pool *sched.Pool, rep Report,
	seqFrom func(int) int, dispAt func(int) int) (Report, error) {
	cf, ok := l.Disp.(loopir.ClosedForm[int])
	if !ok {
		return rep, fmt.Errorf("%w: dispatcher %T has no closed form", ErrPipelineUnsupported, l.Disp)
	}
	if l.Max <= 0 {
		return rep, fmt.Errorf("%w: pipelined induction loop", ErrMissingBound)
	}
	total := l.Max
	// Successive stripPar calls are serialized by the engine (each
	// overlapped strip is joined before the next launches), so plain
	// accumulators are safe.
	var executed, overshot int
	stripPar := func(trk mem.Tracker, lo, hi int) (int, bool, error) {
		res, err := sched.DOALLCtx(ctx, hi-lo, sched.Options{Procs: opt.procs(), Schedule: opt.Schedule,
			Metrics: opt.Metrics, Tracer: opt.Tracer, Pool: pool}, func(i, vpn int) sched.Control {
			gi := lo + i
			d := cf.At(gi)
			if l.Cond != nil && !l.Cond(d) {
				return sched.Quit
			}
			it := loopir.Iter{Index: gi, VPN: vpn, Tracker: trk}
			if !l.Body(&it, d) {
				return sched.Quit
			}
			return sched.Continue
		})
		executed += res.Executed
		overshot += res.Overshot
		return res.QuitIndex, res.QuitIndex < hi-lo, err
	}
	stripSeq := func(lo, hi int) (int, bool) {
		d := dispAt(lo)
		for i := lo; i < hi; i++ {
			if l.Cond != nil && !l.Cond(d) {
				return i - lo, true
			}
			it := loopir.Iter{Index: i, VPN: 0}
			if !l.Body(&it, d) {
				return i - lo, true
			}
			d = l.Disp.Next(d)
		}
		return hi - lo, false
	}
	srep, err := speculate.RunStrippedPipelinedCtx(ctx,
		speculate.Spec{Procs: opt.procs(), Shared: opt.Shared, Tested: opt.Tested,
			Recovery: opt.recoveryFor(seqFrom), PanicFallback: opt.FallbackSequential,
			Metrics: opt.Metrics, Tracer: opt.Tracer},
		total, pipeStrip(total, opt.procs()), stripPar, stripSeq)
	rep.Valid = srep.Valid
	rep.Undone = srep.Undone
	rep.PrefixCommitted = srep.PrefixCommitted
	rep.Executed, rep.Overshot = executed, overshot
	// Per-strip stamps never use the Section 8.1 threshold.
	rep.StampThreshold = 0
	rep.Strategy = fmt.Sprintf("%s + pipelined strip speculation", opt.InductionMethod)
	if err != nil {
		// srep.Valid is the committed-strip prefix on cancellation.
		return finish(rep, opt), err
	}
	rep.UsedParallel = true
	recordStats(opt, rep.Valid)
	return finish(rep, opt), nil
}

// RunAssociative orchestrates a WHILE loop whose dispatcher is an
// associative recurrence (Section 3.2, Figure 3): the loop is
// distributed into a parallel-prefix evaluation of the dispatcher terms
// and a DOALL over the remainder.  The RI condition (l.Cond) terminates
// the term generation; l.Max caps it (strip-mined generation handles an
// absent bound).
func RunAssociative(l *loopir.Loop[float64], opt Options) (Report, error) {
	return RunAssociativeCtx(context.Background(), l, opt)
}

// RunAssociativeCtx is RunAssociative under a context: cancellation (or
// Options.Deadline expiry) stops the parallel-prefix term generation at
// a strip boundary and the remainder DOALL at an iteration boundary,
// restores uncommitted speculative state, and returns the committed
// prefix with ErrCanceled/ErrDeadline.
func RunAssociativeCtx(ctx context.Context, l *loopir.Loop[float64], opt Options) (Report, error) {
	if err := opt.Validate(); err != nil {
		return Report{}, err
	}
	opt = opt.resolved()
	ctx, stop := opt.withDeadline(ctx)
	defer stop()
	if opt.Strategy == StrategySequential {
		rep := Report{Strategy: "sequential (explicit)"}
		rep.Valid = loopir.RunSequential(l).Iterations
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}
	return runAssociative(ctx, l, opt)
}

// runAssociative is the associative path with Options already validated
// and the deadline already folded into ctx — the promote path of
// RunGeneralNumeric enters here so Options.Validate runs exactly once
// per execution.
func runAssociative(ctx context.Context, l *loopir.Loop[float64], opt Options) (Report, error) {
	aff, ok := l.Disp.(loopir.Affine)
	if !ok {
		return Report{}, fmt.Errorf("%w: associative path requires an Affine dispatcher, got %T", ErrBadDispatcher, l.Disp)
	}
	d, okDecide := decide(opt, loopir.AssociativeRecurrence)
	rep := Report{Decision: d, Strategy: "parallel prefix + DOALL"}
	if !okDecide {
		res := loopir.RunSequential(l)
		rep.Valid = res.Iterations
		rep.Strategy = "sequential (cost model)"
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}
	maxTerms := l.Max
	if maxTerms <= 0 {
		return rep, fmt.Errorf("%w: associative loop", ErrMissingBound)
	}

	// Loop 1 (distributed): evaluate the dispatcher terms by parallel
	// prefix, stopping at the RI condition.
	cond := l.Cond
	if cond == nil {
		cond = func(float64) bool { return true }
	}
	strip := maxTerms
	if strip > 4096 {
		strip = 4096
	}
	terms, _, err := prefix.TermsUntilCtx(ctx, aff, cond, strip, opt.procs(), maxTerms)
	if err != nil {
		// Term generation is pure computation: nothing has been
		// committed, so the canceled execution reports zero iterations.
		return finish(rep, opt), err
	}
	return runOverTerms(ctx, l, terms, opt, rep)
}

// RunGeneralNumeric orchestrates a WHILE loop whose dispatcher is an
// opaque numeric recurrence (a loopir.Func).  It first attempts the
// run-time recognition of the recurrence as an affine map — promoting
// the loop from the taxonomy's sequential column to the parallel-prefix
// one — and otherwise falls back to the naive loop distribution of
// Section 3.3: evaluate the dispatcher terms sequentially, then run the
// remainder as a DOALL over the stored values.
func RunGeneralNumeric(l *loopir.Loop[float64], opt Options) (Report, error) {
	return RunGeneralNumericCtx(context.Background(), l, opt)
}

// RunGeneralNumericCtx is RunGeneralNumeric under a context; see
// RunAssociativeCtx for the cancellation contract.  Options.Validate
// runs exactly once, even on the path that promotes the loop to the
// associative engine.
func RunGeneralNumericCtx(ctx context.Context, l *loopir.Loop[float64], opt Options) (Report, error) {
	if err := opt.Validate(); err != nil {
		return Report{}, err
	}
	opt = opt.resolved()
	ctx, stop := opt.withDeadline(ctx)
	defer stop()
	if opt.Strategy == StrategySequential {
		rep := Report{Strategy: "sequential (explicit)"}
		rep.Valid = loopir.RunSequential(l).Iterations
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}
	if _, ok := l.Disp.(loopir.Affine); ok {
		return runAssociative(ctx, l, opt)
	}
	if l.Max <= 0 {
		return Report{}, fmt.Errorf("%w: numeric loop", ErrMissingBound)
	}
	if f, ok := l.Disp.(loopir.Func[float64]); ok {
		if aff, rec := loopir.RecognizeAffine(f.NextFn, f.StartFn()); rec {
			promoted := *l
			promoted.Disp = aff
			promoted.Class.Dispatcher = loopir.AssociativeRecurrence
			rep, err := runAssociative(ctx, &promoted, opt)
			if err == nil {
				rep.Strategy = "recognized affine: " + rep.Strategy
			}
			return rep, err
		}
	}
	// Naive distribution (Section 3.3 baseline): sequential term loop.
	d, okDecide := decide(opt, loopir.GeneralRecurrence)
	rep := Report{Decision: d, Strategy: "sequential dispatcher + DOALL (naive distribution)"}
	if !okDecide {
		res := loopir.RunSequential(l)
		rep.Valid = res.Iterations
		rep.Strategy = "sequential (cost model)"
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}
	var terms []float64
	x := l.Disp.Start()
	for i := 0; i < l.Max; i++ {
		if i&1023 == 0 {
			if err := cancel.Err(ctx); err != nil {
				opt.Metrics.CtxCancel()
				return finish(rep, opt), err
			}
		}
		if l.Cond != nil && !l.Cond(x) {
			break
		}
		terms = append(terms, x)
		x = l.Disp.Next(x)
	}
	return runOverTerms(ctx, l, terms, opt, rep)
}

// runOverTerms runs the remainder loop as a DOALL over precomputed
// dispatcher terms, with the speculation protocol when needed.
func runOverTerms(ctx context.Context, l *loopir.Loop[float64], terms []float64, opt Options, rep Report) (Report, error) {
	n := len(terms)
	pool, owned := opt.newPool()
	defer closePool(pool, owned)
	var doallRes sched.Result
	run := func(tr mem.Tracker) (int, error) {
		var err error
		doallRes, err = sched.DOALLCtx(ctx, n, sched.Options{Procs: opt.procs(), Schedule: opt.Schedule,
			Metrics: opt.Metrics, Tracer: opt.Tracer, Pool: pool}, func(i, vpn int) sched.Control {
			it := loopir.Iter{Index: i, VPN: vpn, Tracker: tr}
			if !l.Body(&it, terms[i]) {
				return sched.Quit
			}
			return sched.Continue
		})
		return doallRes.QuitIndex, err
	}

	if !needsSpeculation(l.Class, opt) {
		valid, err := run(nil)
		rep.Valid = valid
		rep.Executed, rep.Overshot = doallRes.Executed, doallRes.Overshot
		if err != nil {
			// No speculation means no undo: the committed prefix is the
			// contiguous executed prefix the substrate computed.
			rep.Valid = doallRes.Prefix
			return finish(rep, opt), err
		}
		rep.UsedParallel = true
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}
	// Resume over the precomputed term values: iterations below `from`
	// are already committed, only the remainder re-runs.
	seqFrom := func(from int) int {
		for i := from; i < n; i++ {
			it := loopir.Iter{Index: i, VPN: 0}
			if !l.Body(&it, terms[i]) {
				return i
			}
		}
		return n
	}
	if opt.pipeline {
		return runTermsPipelined(ctx, l, terms, opt, pool, rep, seqFrom)
	}
	srep, err := speculate.RunCtx(ctx,
		speculate.Spec{Procs: opt.procs(), Shared: opt.Shared, Tested: opt.Tested,
			Privatized: opt.Privatized, StampThreshold: stampThreshold(opt),
			SparseUndo: opt.SparseUndo, Recovery: opt.recoveryFor(seqFrom),
			PanicFallback: opt.FallbackSequential,
			Metrics:       opt.Metrics, Tracer: opt.Tracer},
		run,
		func() int { return loopir.RunSequential(l).Iterations },
	)
	if err != nil {
		rep.Executed, rep.Overshot = doallRes.Executed, doallRes.Overshot
		return finish(rep, opt), err
	}
	rep.Valid, rep.UsedParallel, rep.Failure = srep.Valid, srep.UsedParallel, srep.Failure
	rep.PD, rep.Undone = srep.PD, srep.Undone
	rep.RespecRounds, rep.PrefixCommitted = srep.RespecRounds, srep.PrefixCommitted
	rep.Executed, rep.Overshot = doallRes.Executed, doallRes.Overshot
	rep.Strategy += " + speculation"
	recordStats(opt, rep.Valid)
	return finish(rep, opt), nil
}

// runTermsPipelined executes the speculative remainder DOALL over
// precomputed dispatcher terms as pipelined strips (see
// runInductionPipelined; here the "closed form" is the terms slice).
func runTermsPipelined(ctx context.Context, l *loopir.Loop[float64], terms []float64, opt Options, pool *sched.Pool,
	rep Report, seqFrom func(int) int) (Report, error) {
	n := len(terms)
	var executed, overshot int
	stripPar := func(trk mem.Tracker, lo, hi int) (int, bool, error) {
		res, err := sched.DOALLCtx(ctx, hi-lo, sched.Options{Procs: opt.procs(), Schedule: opt.Schedule,
			Metrics: opt.Metrics, Tracer: opt.Tracer, Pool: pool}, func(i, vpn int) sched.Control {
			gi := lo + i
			it := loopir.Iter{Index: gi, VPN: vpn, Tracker: trk}
			if !l.Body(&it, terms[gi]) {
				return sched.Quit
			}
			return sched.Continue
		})
		executed += res.Executed
		overshot += res.Overshot
		return res.QuitIndex, res.QuitIndex < hi-lo, err
	}
	stripSeq := func(lo, hi int) (int, bool) {
		for i := lo; i < hi; i++ {
			it := loopir.Iter{Index: i, VPN: 0}
			if !l.Body(&it, terms[i]) {
				return i - lo, true
			}
		}
		return hi - lo, false
	}
	srep, err := speculate.RunStrippedPipelinedCtx(ctx,
		speculate.Spec{Procs: opt.procs(), Shared: opt.Shared, Tested: opt.Tested,
			Recovery: opt.recoveryFor(seqFrom), PanicFallback: opt.FallbackSequential,
			Metrics: opt.Metrics, Tracer: opt.Tracer},
		n, pipeStrip(n, opt.procs()), stripPar, stripSeq)
	rep.Valid = srep.Valid
	rep.Undone = srep.Undone
	rep.PrefixCommitted = srep.PrefixCommitted
	rep.Executed, rep.Overshot = executed, overshot
	rep.Strategy += " + pipelined strip speculation"
	if err != nil {
		return finish(rep, opt), err
	}
	rep.UsedParallel = true
	recordStats(opt, rep.Valid)
	return finish(rep, opt), nil
}

// RunList orchestrates a WHILE loop traversing a linked list (the
// general-recurrence case, Section 3.3).  It is RunListCtx under
// context.Background().
func RunList(head *list.Node, body genrec.Body, class loopir.Class, opt Options) (Report, error) {
	return RunListCtx(context.Background(), head, body, class, opt)
}

// RunListCtx is RunList under a context: cancellation (or
// Options.Deadline expiry) stops the traversal at an iteration
// boundary, restores uncommitted speculative state, and returns the
// committed prefix with ErrCanceled/ErrDeadline; a panicking body
// surfaces as ErrWorkerPanic (or the sequential fallback under
// Options.FallbackSequential on a speculative path).
func RunListCtx(ctx context.Context, head *list.Node, body genrec.Body, class loopir.Class, opt Options) (Report, error) {
	if err := opt.Validate(); err != nil {
		return Report{}, err
	}
	opt = opt.resolved()
	ctx, stop := opt.withDeadline(ctx)
	defer stop()
	if opt.Strategy == StrategySequential {
		rep := Report{Strategy: "sequential (explicit)"}
		rep.Valid = runListSequential(head, body)
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}
	if opt.pipeline {
		return Report{}, fmt.Errorf("%w: list traversals have no strip-mineable dispatcher", ErrPipelineUnsupported)
	}
	d, ok := decide(opt, loopir.GeneralRecurrence)
	method := opt.ListMethod
	if method == AutoList {
		method = General3
	}
	rep := Report{Decision: d, Strategy: method.String()}
	if !ok {
		rep.Valid = runListSequential(head, body)
		rep.Strategy = "sequential (cost model)"
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}

	pool, owned := opt.newPool()
	defer closePool(pool, owned)
	cfg := genrec.Config{Procs: opt.procs(), Metrics: opt.Metrics, Tracer: opt.Tracer, Pool: pool}
	runner := func(tr mem.Tracker) (int, error) {
		c := cfg
		c.Tracker = tr
		var r genrec.Result
		var rerr error
		switch method {
		case General1:
			r, rerr = genrec.General1Ctx(ctx, head, body, c)
		case General2:
			r, rerr = genrec.General2Ctx(ctx, head, body, c)
		case DoacrossList:
			bound := list.Len(head)
			res, derr := doacross.RunWhile(ctx, head,
				func(n *list.Node) *list.Node { return n.Next },
				func(n *list.Node) bool { return n != nil },
				bound, doacross.Config{Procs: opt.procs(), Hooks: opt.hooks(), Pool: pool},
				func(i, vpn int, nd *list.Node) bool {
					it := loopir.Iter{Index: i, VPN: vpn, Tracker: c.Tracker}
					return body(&it, nd)
				})
			r = genrec.Result{Valid: res.QuitIndex, Executed: res.Executed}
			if derr != nil {
				r.Valid = res.Prefix
			}
			rerr = derr
		default:
			r, rerr = genrec.General3Ctx(ctx, head, body, c)
		}
		rep.Executed, rep.Overshot = r.Executed, r.Overshot
		return r.Valid, rerr
	}

	if !needsSpeculation(class, opt) {
		valid, err := runner(nil)
		rep.Valid = valid
		if err != nil {
			// Valid is already capped at the committed prefix.
			return finish(rep, opt), err
		}
		rep.UsedParallel = true
		recordStats(opt, rep.Valid)
		return finish(rep, opt), nil
	}
	// Resume a list traversal mid-way: skip the committed prefix of
	// nodes, then continue the sequential reference traversal.
	seqFrom := func(from int) int {
		pt := head
		for i := 0; i < from && pt != nil; i++ {
			pt = pt.Next
		}
		i := from
		for ; pt != nil; pt = pt.Next {
			it := loopir.Iter{Index: i, VPN: 0}
			if !body(&it, pt) {
				return i
			}
			i++
		}
		return i
	}
	srep, err := speculate.RunCtx(ctx,
		speculate.Spec{Procs: opt.procs(), Shared: opt.Shared, Tested: opt.Tested,
			Privatized: opt.Privatized, StampThreshold: stampThreshold(opt),
			SparseUndo: opt.SparseUndo, Recovery: opt.recoveryFor(seqFrom),
			PanicFallback: opt.FallbackSequential,
			Metrics:       opt.Metrics, Tracer: opt.Tracer},
		runner,
		func() int { return runListSequential(head, body) },
	)
	if err != nil {
		return finish(rep, opt), err
	}
	rep.Valid, rep.UsedParallel, rep.Failure = srep.Valid, srep.UsedParallel, srep.Failure
	rep.PD, rep.Undone = srep.PD, srep.Undone
	rep.RespecRounds, rep.PrefixCommitted = srep.RespecRounds, srep.PrefixCommitted
	rep.Strategy = fmt.Sprintf("%s + speculation", method)
	recordStats(opt, rep.Valid)
	return finish(rep, opt), nil
}

// runListSequential is the sequential reference traversal.
func runListSequential(head *list.Node, body genrec.Body) int {
	i := 0
	for pt := head; pt != nil; pt = pt.Next {
		it := loopir.Iter{Index: i, VPN: 0}
		if !body(&it, pt) {
			return i
		}
		i++
	}
	return i
}

// recordStats feeds the observed trip count back into the branch
// statistics, closing the Section 7 feedback loop.
func recordStats(opt Options, valid int) {
	if opt.Stats != nil {
		opt.Stats.Record(valid)
	}
}
