package core

import (
	"errors"
	"fmt"

	"whilepar/internal/induction"
	"whilepar/internal/sched"
)

// Typed sentinel errors for option and loop validation.  Every entry
// point validates its Options before starting any goroutine and wraps
// the matching sentinel, so callers can branch with errors.Is instead
// of matching message strings.
var (
	// ErrBadProcs: Options.Procs is negative.  Zero means "use
	// runtime.GOMAXPROCS(0)"; explicit 1 means sequential.
	ErrBadProcs = errors.New("core: invalid Procs")
	// ErrBadSchedule: Options.Schedule is not a known sched constant.
	ErrBadSchedule = errors.New("core: invalid Schedule")
	// ErrBadInductionMethod: Options.InductionMethod is out of range.
	ErrBadInductionMethod = errors.New("core: invalid InductionMethod")
	// ErrBadListMethod: Options.ListMethod is out of range.
	ErrBadListMethod = errors.New("core: invalid ListMethod")
	// ErrSparseStampThreshold: SparseUndo was combined with a
	// statistics-enhanced stamp threshold; the sparse log must record
	// every store, so the two are incompatible.
	ErrSparseStampThreshold = errors.New("core: SparseUndo is incompatible with a stamp threshold")
	// ErrRunTwiceUnanalyzable: RunTwice requires statically known
	// dependences (no Tested or Privatized arrays).
	ErrRunTwiceUnanalyzable = errors.New("core: RunTwice requires statically known dependences")
	// ErrBadRespecRounds: Options.MaxRespecRounds is negative (0 means
	// the engine default).
	ErrBadRespecRounds = errors.New("core: invalid MaxRespecRounds")
	// ErrRecoveryUnsupported: partial-commit recovery needs the dense
	// stamped undo path — it cannot bound a suffix rewind from the
	// sparse log, and privatized copies have no per-location stamps.
	ErrRecoveryUnsupported = errors.New("core: Recovery requires dense stamps (no SparseUndo, no Privatized)")
	// ErrPipelineUnsupported: pipelined strip speculation overlaps one
	// strip's execution with the previous strip's PD test, squashing
	// the in-flight strip through its generation's dense checkpoint
	// when the test fails — so it needs the dense stamped path (no
	// SparseUndo, no Privatized copies a squash could not erase), is
	// meaningless under RunTwice (which has no PD phase), and requires
	// a strip-mineable iteration space (a closed-form dispatcher, not a
	// list traversal).
	ErrPipelineUnsupported = errors.New("core: Pipeline requires dense stamps and a strip-mineable loop")
	// ErrMissingBound: the loop needs Max (an iteration-space bound) for
	// the chosen transformation.
	ErrMissingBound = errors.New("core: loop needs Max (or strip-mine externally)")
	// ErrBadDispatcher: the dispatcher's type does not fit the chosen
	// entry point (e.g. the associative path needs an Affine).
	ErrBadDispatcher = errors.New("core: dispatcher does not fit the chosen method")
	// ErrUnsupportedLoop: the unified front door was handed a loop value
	// it cannot classify.
	ErrUnsupportedLoop = errors.New("core: unsupported loop type")
	// ErrBadDeadline: Options.Deadline is negative (0 means no
	// deadline; positive values bound the execution's wall-clock time).
	ErrBadDeadline = errors.New("core: invalid Deadline")
	// ErrBadStrategy: Options.Strategy is not a known Strategy
	// constant.
	ErrBadStrategy = errors.New("core: invalid Strategy")
	// ErrBadValidation: Options.Validation is out of range, or a
	// signature/trusted tier was pinned alongside a mode that has no
	// tiered strip path to honour it — SparseUndo and Privatized copies
	// need the element-wise machinery, StrategyRunTwice has no
	// validation phase at all, and the pipelined engine only speaks the
	// element-wise protocol.
	ErrBadValidation = errors.New("core: invalid Validation")
)

// Validate rejects malformed Options before any goroutine is started.
// Each failure wraps one of the typed sentinels above, so callers can
// test with errors.Is(err, core.ErrBadSchedule) etc.  All entry points
// call it; callers constructing Options programmatically may call it
// early to fail fast.
func (o Options) Validate() error {
	if err := o.validateStrategy(); err != nil {
		return err
	}
	// The remaining rules see the options as the orchestrator will run
	// them, with the Strategy's implied flags folded in.
	o = o.resolved()
	if o.Procs < 0 {
		return fmt.Errorf("%w: %d (0 defaults to GOMAXPROCS, 1 is sequential)", ErrBadProcs, o.Procs)
	}
	if err := sched.Validate(o.Schedule); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSchedule, err)
	}
	switch o.InductionMethod {
	case induction.Induction1, induction.Induction2:
	default:
		return fmt.Errorf("%w: %d", ErrBadInductionMethod, int(o.InductionMethod))
	}
	switch o.ListMethod {
	case AutoList, General1, General2, General3, DoacrossList:
	default:
		return fmt.Errorf("%w: %d", ErrBadListMethod, int(o.ListMethod))
	}
	if o.SparseUndo && o.Stats != nil && o.Stats.StampThreshold() > 0 {
		return ErrSparseStampThreshold
	}
	if o.runTwice && (len(o.Tested) > 0 || len(o.Privatized) > 0) {
		return ErrRunTwiceUnanalyzable
	}
	if o.MaxRespecRounds < 0 {
		return fmt.Errorf("%w: %d", ErrBadRespecRounds, o.MaxRespecRounds)
	}
	if o.Deadline < 0 {
		return fmt.Errorf("%w: %v (0 means none)", ErrBadDeadline, o.Deadline)
	}
	if o.recovery && (o.SparseUndo || len(o.Privatized) > 0) {
		return ErrRecoveryUnsupported
	}
	if o.pipeline {
		if o.SparseUndo {
			return fmt.Errorf("%w: SparseUndo", ErrPipelineUnsupported)
		}
		if len(o.Privatized) > 0 {
			return fmt.Errorf("%w: Privatized arrays", ErrPipelineUnsupported)
		}
	}
	switch o.Validation {
	case ValidationAuto, ValidationFull, ValidationSignature, ValidationTrusted:
	default:
		return fmt.Errorf("%w: %d", ErrBadValidation, int(o.Validation))
	}
	if o.Validation == ValidationSignature || o.Validation == ValidationTrusted {
		switch {
		case o.SparseUndo:
			return fmt.Errorf("%w: %s needs dense stamps, not SparseUndo", ErrBadValidation, o.Validation)
		case len(o.Privatized) > 0:
			return fmt.Errorf("%w: %s cannot cover Privatized copies", ErrBadValidation, o.Validation)
		case o.runTwice:
			return fmt.Errorf("%w: StrategyRunTwice has no validation phase to tier", ErrBadValidation)
		case o.pipeline:
			return fmt.Errorf("%w: the pipelined engine is element-wise only", ErrBadValidation)
		}
	}
	return nil
}
