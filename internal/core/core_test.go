package core

import (
	"runtime"
	"strings"
	"testing"

	"whilepar/internal/costmodel"
	"whilepar/internal/induction"
	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/speculate"
)

func inductionLoop(a *mem.Array, exit, max int) *loopir.Loop[int] {
	return &loopir.Loop[int]{
		Class: loopir.Class{Dispatcher: loopir.MonotonicInduction, Terminator: loopir.RV},
		Disp:  loopir.IntInduction{C: 1},
		Body: func(it *loopir.Iter, d int) bool {
			if d == exit {
				return false
			}
			it.Store(a, d, float64(d)+1)
			return true
		},
		Max: max,
	}
}

func TestRunInductionPlain(t *testing.T) {
	a := mem.NewArray("A", 64)
	l := inductionLoop(a, -1, 64)
	l.Class.Terminator = loopir.RI
	l.Class.ThresholdOnMonotonic = true
	rep, err := RunInduction(l, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedParallel || rep.Valid != 64 {
		t.Fatalf("report %+v", rep)
	}
}

func TestRunInductionSpeculative(t *testing.T) {
	a := mem.NewArray("A", 128)
	l := inductionLoop(a, 40, 128)
	rep, err := RunInduction(l, Options{
		Procs:           4,
		InductionMethod: induction.Induction1, // guarantees overshoot
		Shared:          []*mem.Array{a},
		Tested:          []*mem.Array{a},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedParallel || rep.Valid != 40 {
		t.Fatalf("report %+v", rep)
	}
	if !strings.Contains(rep.Strategy, "speculation") {
		t.Fatalf("strategy = %q", rep.Strategy)
	}
	// State identical to sequential.
	for i := 0; i < 128; i++ {
		want := 0.0
		if i < 40 {
			want = float64(i) + 1
		}
		if a.Data[i] != want {
			t.Fatalf("A[%d] = %v, want %v", i, a.Data[i], want)
		}
	}
}

func TestRunInductionCostModelRejects(t *testing.T) {
	a := mem.NewArray("A", 16)
	l := inductionLoop(a, -1, 16)
	rep, err := RunInduction(l, Options{
		Procs:    4,
		Times:    costmodel.LoopTimes{Trem: 100, Trec: 1, Accesses: 10},
		MinIters: 1000,
		Stats:    seeded(3), // tiny predicted trip count
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedParallel || rep.Strategy != "sequential (cost model)" {
		t.Fatalf("report %+v", rep)
	}
	if rep.Valid != 16 {
		t.Fatalf("sequential run wrong: %+v", rep)
	}
}

func seeded(n int) *costmodel.BranchStats {
	var b costmodel.BranchStats
	for i := 0; i < 10; i++ {
		b.Record(n)
	}
	return &b
}

func TestRunInductionRecordsStats(t *testing.T) {
	var stats costmodel.BranchStats
	a := mem.NewArray("A", 32)
	l := inductionLoop(a, 20, 32)
	if _, err := RunInduction(l, Options{Procs: 2, Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.Samples() != 1 {
		t.Fatalf("stats samples = %d", stats.Samples())
	}
	if ni, _ := stats.Estimate(); ni != 20 {
		t.Fatalf("recorded trip count %v", ni)
	}
}

func TestRunAssociative(t *testing.T) {
	// x: 1, 2, 4, ...; while x < 1000 -> 10 terms; body writes A[i]=x.
	a := mem.NewArray("A", 20)
	l := &loopir.Loop[float64]{
		Class: loopir.Class{Dispatcher: loopir.AssociativeRecurrence, Terminator: loopir.RI},
		Disp:  loopir.Affine{A: 2, B: 0, X0: 1},
		Cond:  func(x float64) bool { return x < 1000 },
		Body: func(it *loopir.Iter, x float64) bool {
			it.Store(a, it.Index, x)
			return true
		},
		Max: 20,
	}
	rep, err := RunAssociative(l, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedParallel || rep.Valid != 10 {
		t.Fatalf("report %+v", rep)
	}
	want := 1.0
	for i := 0; i < 10; i++ {
		if a.Data[i] != want {
			t.Fatalf("A[%d] = %v, want %v", i, a.Data[i], want)
		}
		want *= 2
	}
}

func TestRunAssociativeRejectsNonAffine(t *testing.T) {
	l := &loopir.Loop[float64]{
		Disp: loopir.Func[float64]{StartFn: func() float64 { return 0 }, NextFn: func(x float64) float64 { return x }},
		Body: func(*loopir.Iter, float64) bool { return true },
		Max:  4,
	}
	if _, err := RunAssociative(l, Options{}); err == nil {
		t.Fatal("non-affine dispatcher must be rejected")
	}
	l2 := &loopir.Loop[float64]{
		Disp: loopir.Affine{A: 1, B: 1},
		Body: func(*loopir.Iter, float64) bool { return true },
	}
	if _, err := RunAssociative(l2, Options{}); err == nil {
		t.Fatal("missing Max must be rejected")
	}
}

func TestRunAssociativeSpeculative(t *testing.T) {
	// RV exit at term index 6; shared array written per iteration.
	a := mem.NewArray("A", 32)
	l := &loopir.Loop[float64]{
		Class: loopir.Class{Dispatcher: loopir.AssociativeRecurrence, Terminator: loopir.RV},
		Disp:  loopir.Affine{A: 1, B: 1, X0: 0}, // x = 0,1,2,...
		Body: func(it *loopir.Iter, x float64) bool {
			if it.Index == 6 {
				return false
			}
			it.Store(a, it.Index, x*10)
			return true
		},
		Max: 32,
	}
	rep, err := RunAssociative(l, Options{Procs: 3, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 6 {
		t.Fatalf("report %+v", rep)
	}
	for i := 0; i < 32; i++ {
		want := 0.0
		if i < 6 {
			want = float64(i) * 10
		}
		if a.Data[i] != want {
			t.Fatalf("A[%d] = %v, want %v", i, a.Data[i], want)
		}
	}
}

func TestRunListAllMethods(t *testing.T) {
	for _, m := range []ListMethod{AutoList, General1, General2, General3} {
		n := 200
		a := mem.NewArray("A", n)
		head := list.Build(n, func(i int) (float64, float64) { return float64(i), 1 })
		rep, err := RunList(head, func(it *loopir.Iter, nd *list.Node) bool {
			it.Store(a, nd.Key, nd.Val*2)
			return true
		}, loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI}, Options{Procs: 4, ListMethod: m})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.UsedParallel || rep.Valid != n {
			t.Fatalf("%v: %+v", m, rep)
		}
		for i := 0; i < n; i++ {
			if a.Data[i] != float64(2*i) {
				t.Fatalf("%v: A[%d] = %v", m, i, a.Data[i])
			}
		}
	}
}

func TestRunListSpeculativeWithDependence(t *testing.T) {
	// Body has a flow dependence through A[0]: the PD test must fail
	// and the sequential re-execution must win.
	n := 30
	a := mem.NewArray("A", n)
	head := list.Build(n, nil)
	rep, err := RunList(head, func(it *loopir.Iter, nd *list.Node) bool {
		acc := it.Load(a, 0)
		it.Store(a, 0, acc+1)
		return true
	}, loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI},
		Options{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedParallel {
		t.Fatalf("dependent loop kept parallel result: %+v", rep)
	}
	if a.Data[0] != float64(n) {
		t.Fatalf("A[0] = %v, want %d", a.Data[0], n)
	}
}

func TestRunListCostModelSequential(t *testing.T) {
	head := list.Build(10, nil)
	rep, err := RunList(head, func(*loopir.Iter, *list.Node) bool { return true },
		loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI},
		Options{Procs: 4, Times: costmodel.LoopTimes{Trem: 1, Trec: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedParallel || rep.Valid != 10 {
		t.Fatalf("report %+v", rep)
	}
	if !strings.Contains(rep.Decision.Reason, "dispatcher") {
		t.Fatalf("reason = %q", rep.Decision.Reason)
	}
}

func TestListMethodString(t *testing.T) {
	if General1.String() != "General-1" || AutoList.String() != "General-3 (auto)" {
		t.Fatal("names wrong")
	}
}

func TestRunListRVExit(t *testing.T) {
	n := 100
	head := list.Build(n, nil)
	rep, err := RunList(head, func(it *loopir.Iter, nd *list.Node) bool {
		return nd.Key != 33
	}, loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RV},
		Options{Procs: 4, ListMethod: General3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 33 {
		t.Fatalf("report %+v", rep)
	}
}

func TestRunListDoacrossMethod(t *testing.T) {
	n := 250
	a := mem.NewArray("A", n)
	head := list.Build(n, func(i int) (float64, float64) { return float64(i), 1 })
	rep, err := RunList(head, func(it *loopir.Iter, nd *list.Node) bool {
		it.Store(a, nd.Key, nd.Val*5)
		return true
	}, loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI},
		Options{Procs: 4, ListMethod: DoacrossList})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || !rep.UsedParallel || rep.Strategy != "WHILE-DOACROSS" {
		t.Fatalf("report %+v", rep)
	}
	for i := 0; i < n; i++ {
		if a.Data[i] != float64(5*i) {
			t.Fatalf("A[%d] = %v", i, a.Data[i])
		}
	}
	// RV exit through the pipeline.
	rep2, err := RunList(list.Build(n, nil), func(it *loopir.Iter, nd *list.Node) bool {
		return nd.Key != 77
	}, loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RV},
		Options{Procs: 4, ListMethod: DoacrossList})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Valid != 77 {
		t.Fatalf("RV exit: %+v", rep2)
	}
}

// Property: all four list strategies agree with each other and the
// sequential loop on result state, for random sizes and exits.
func TestAllListStrategiesAgree(t *testing.T) {
	methods := []ListMethod{General1, General2, General3, DoacrossList}
	for _, exit := range []int{-1, 0, 13, 101} {
		n := 120
		want := mem.NewArray("A", n)
		bound := n
		if exit >= 0 && exit < n {
			bound = exit
		}
		for i := 0; i < bound; i++ {
			want.Data[i] = float64(i + 1)
		}
		for _, m := range methods {
			a := mem.NewArray("A", n)
			head := list.Build(n, nil)
			rep, err := RunList(head, func(it *loopir.Iter, nd *list.Node) bool {
				if nd.Key == exit {
					return false
				}
				it.Store(a, nd.Key, float64(nd.Key+1))
				return true
			}, loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RV},
				// RV terminator: overshoot is possible (General-2's
				// static assignment in particular runs ahead), so the
				// speculation machinery must checkpoint and undo.
				Options{Procs: 5, ListMethod: m, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Valid != bound {
				t.Fatalf("%v exit=%d: Valid = %d, want %d", m, exit, rep.Valid, bound)
			}
			if !a.Equal(want) {
				t.Fatalf("%v exit=%d: state diverged", m, exit)
			}
		}
	}
}

func TestRunGeneralNumericRecognizesAffine(t *testing.T) {
	// An opaque closure that is secretly x' = 2x + 1: run-time
	// recognition must promote it to the parallel-prefix path.
	a := mem.NewArray("A", 32)
	l := &loopir.Loop[float64]{
		Class: loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI},
		Disp: loopir.Func[float64]{
			StartFn: func() float64 { return 1 },
			NextFn:  func(x float64) float64 { return 2*x + 1 },
		},
		Cond: func(x float64) bool { return x < 200 },
		Body: func(it *loopir.Iter, x float64) bool {
			it.Store(a, it.Index, x)
			return true
		},
		Max: 32,
	}
	want := loopir.LastValid(&loopir.Loop[float64]{
		Disp: l.Disp, Cond: l.Cond,
		Body: func(*loopir.Iter, float64) bool { return true }, Max: 32,
	})
	rep, err := RunGeneralNumeric(l, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Strategy, "recognized affine") {
		t.Fatalf("strategy = %q", rep.Strategy)
	}
	if rep.Valid != want {
		t.Fatalf("valid = %d, want %d", rep.Valid, want)
	}
	// Terms: 1, 3, 7, 15, 31, 63, 127 (< 200) -> 7 terms.
	if rep.Valid != 7 || a.Data[6] != 127 {
		t.Fatalf("terms wrong: valid=%d a[6]=%v", rep.Valid, a.Data[6])
	}
}

func TestRunGeneralNumericFallsBackToDistribution(t *testing.T) {
	// x' = x^2 + 1 is not affine: the naive distribution runs (and the
	// result still matches sequential).
	a := mem.NewArray("A", 8)
	mk := func() *loopir.Loop[float64] {
		return &loopir.Loop[float64]{
			Class: loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI},
			Disp: loopir.Func[float64]{
				StartFn: func() float64 { return 1 },
				NextFn:  func(x float64) float64 { return x*x + 1 },
			},
			Cond: func(x float64) bool { return x < 1000 },
			Body: func(it *loopir.Iter, x float64) bool {
				it.Store(a, it.Index, x)
				return true
			},
			Max: 8,
		}
	}
	rep, err := RunGeneralNumeric(mk(), Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Strategy, "naive distribution") {
		t.Fatalf("strategy = %q", rep.Strategy)
	}
	// Terms: 1, 2, 5, 26, 677 -> 5 valid.
	if rep.Valid != 5 || a.Data[4] != 677 {
		t.Fatalf("valid=%d a[4]=%v", rep.Valid, a.Data[4])
	}
	// Cost-model rejection path.
	rep2, err := RunGeneralNumeric(mk(), Options{Procs: 4, Times: costmodel.LoopTimes{Trem: 1, Trec: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.UsedParallel {
		t.Fatalf("dispatcher-dominated numeric loop accepted: %+v", rep2)
	}
}

func TestRunGeneralNumericRequiresMax(t *testing.T) {
	l := &loopir.Loop[float64]{
		Disp: loopir.Func[float64]{StartFn: func() float64 { return 0 }, NextFn: func(x float64) float64 { return x + 1 }},
		Body: func(*loopir.Iter, float64) bool { return true },
	}
	if _, err := RunGeneralNumeric(l, Options{}); err == nil {
		t.Fatal("missing Max must be rejected")
	}
}

func TestRunGeneralNumericAffineDispatcherDelegates(t *testing.T) {
	l := &loopir.Loop[float64]{
		Class: loopir.Class{Dispatcher: loopir.AssociativeRecurrence, Terminator: loopir.RI},
		Disp:  loopir.Affine{A: 1, B: 1, X0: 0},
		Cond:  func(x float64) bool { return x < 5 },
		Body:  func(*loopir.Iter, float64) bool { return true },
		Max:   100,
	}
	rep, err := RunGeneralNumeric(l, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 5 || !strings.Contains(rep.Strategy, "prefix") {
		t.Fatalf("%+v", rep)
	}
}

func TestRunInductionSparseUndo(t *testing.T) {
	n := 50_000
	a := mem.NewArray("A", n)
	l := &loopir.Loop[int]{
		Class: loopir.Class{Dispatcher: loopir.MonotonicInduction, Terminator: loopir.RV},
		Disp:  loopir.IntInduction{C: 1},
		Body: func(it *loopir.Iter, d int) bool {
			if d == 150 {
				return false
			}
			it.Store(a, (d*251)%n, float64(d)) // sparse writes
			return true
		},
		Max: 400,
	}
	rep, err := RunInduction(l, Options{
		Procs:           4,
		InductionMethod: induction.Induction1,
		Shared:          []*mem.Array{a},
		Tested:          []*mem.Array{a},
		SparseUndo:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedParallel || rep.Valid != 150 {
		t.Fatalf("report %+v", rep)
	}
	// Only the 150 valid writes survive.
	written := 0
	for i := 0; i < n; i++ {
		if a.Data[i] != 0 {
			written++
		}
	}
	if written != 149 { // iteration 0 writes value 0 (indistinguishable from empty)
		t.Fatalf("surviving writes = %d, want 149", written)
	}
}

func TestRunInductionRunTwice(t *testing.T) {
	n := 256
	a := mem.NewArray("A", n)
	l := inductionLoop(a, 90, n)
	rep, err := RunInduction(l, Options{
		Procs:           4,
		InductionMethod: induction.Induction1,
		Shared:          []*mem.Array{a},
		Strategy:        StrategyRunTwice,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedParallel || rep.Valid != 90 {
		t.Fatalf("report %+v", rep)
	}
	if !strings.Contains(rep.Strategy, "run-twice") {
		t.Fatalf("strategy = %q", rep.Strategy)
	}
	// State equals the sequential loop's: no residue from the first run.
	for i := 0; i < n; i++ {
		want := 0.0
		if i < 90 {
			want = float64(i) + 1
		}
		if a.Data[i] != want {
			t.Fatalf("A[%d] = %v, want %v", i, a.Data[i], want)
		}
	}
	// Incompatible with a PD test.
	if _, err := RunInduction(inductionLoop(a, 90, n), Options{
		Procs: 2, Strategy: StrategyRunTwice, Tested: []*mem.Array{a},
	}); err == nil {
		t.Fatal("StrategyRunTwice with Tested arrays must be rejected")
	}
}

func TestProcsDefaulting(t *testing.T) {
	if got := (Options{}).procs(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Procs=0 -> procs() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Options{Procs: 1}).procs(); got != 1 {
		t.Fatalf("Procs=1 -> procs() = %d, want 1 (explicit sequential)", got)
	}
	if got := (Options{Procs: 6}).procs(); got != 6 {
		t.Fatalf("Procs=6 -> procs() = %d", got)
	}
	// Validate rejects negatives; procs() still clamps defensively.
	if got := (Options{Procs: -3}).procs(); got != 1 {
		t.Fatalf("Procs=-3 -> procs() = %d, want clamp to 1", got)
	}
}

func TestRunInductionPartialRecovery(t *testing.T) {
	// Iteration i writes A[i]; iteration 90 exposed-reads A[60] — one
	// flow dependence that fails the PD test with first violation 60.
	const n, w, r = 128, 60, 90
	mkLoop := func(a *mem.Array) *loopir.Loop[int] {
		return &loopir.Loop[int]{
			Class: loopir.Class{Dispatcher: loopir.MonotonicInduction, Terminator: loopir.RV},
			Disp:  loopir.IntInduction{C: 1},
			Body: func(it *loopir.Iter, d int) bool {
				if d == r {
					it.Store(a, d, 1000+it.Load(a, w))
				} else {
					it.Store(a, d, float64(d)+1)
				}
				return true
			},
			Max: n,
		}
	}

	// Sequential oracle.
	oracle := mem.NewArray("A", n)
	loopir.RunSequential(mkLoop(oracle))

	a := mem.NewArray("A", n)
	rep, err := RunInduction(mkLoop(a), Options{
		Procs:    1, // single VP: dependent accesses cannot physically race
		Shared:   []*mem.Array{a},
		Tested:   []*mem.Array{a},
		Strategy: StrategyRecover,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || !rep.UsedParallel || rep.Failure == "" {
		t.Fatalf("report %+v: want Valid=%d with a kept parallel prefix and a recorded failure", rep, n)
	}
	if rep.PrefixCommitted != w {
		t.Fatalf("PrefixCommitted = %d, want %d", rep.PrefixCommitted, w)
	}
	for i := range a.Data {
		if a.Data[i] != oracle.Data[i] {
			t.Fatalf("A[%d] = %v, want %v", i, a.Data[i], oracle.Data[i])
		}
	}

	// Same loop with recovery off: full sequential fallback, same state.
	b := mem.NewArray("A", n)
	rep2, err := RunInduction(mkLoop(b), Options{
		Procs: 1, Shared: []*mem.Array{b}, Tested: []*mem.Array{b},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.UsedParallel || rep2.PrefixCommitted != 0 || rep2.Valid != n {
		t.Fatalf("baseline report %+v", rep2)
	}
	for i := range b.Data {
		if b.Data[i] != oracle.Data[i] {
			t.Fatalf("baseline A[%d] = %v, want %v", i, b.Data[i], oracle.Data[i])
		}
	}
}

func TestValidateRecoveryOptions(t *testing.T) {
	if err := (Options{MaxRespecRounds: -1}).Validate(); err == nil {
		t.Fatal("negative MaxRespecRounds must be rejected")
	}
	if err := (Options{Strategy: StrategyRecover, SparseUndo: true}).Validate(); err == nil {
		t.Fatal("StrategyRecover with SparseUndo must be rejected")
	}
	a := mem.NewArray("A", 4)
	if err := (Options{Strategy: StrategyRecover, Privatized: []speculate.PrivSpec{{Arr: a}}}).Validate(); err == nil {
		t.Fatal("StrategyRecover with Privatized must be rejected")
	}
	if err := (Options{Strategy: StrategyRecover, MaxRespecRounds: 3}).Validate(); err != nil {
		t.Fatalf("valid recovery options rejected: %v", err)
	}
}
