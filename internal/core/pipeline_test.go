package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"whilepar/internal/list"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/speculate"
)

// The Pool and Pipeline knobs must not change what a loop computes —
// only how the runtime dispatches it.  These tests hold the default
// (spawn-per-call, all-or-nothing) path as the oracle.

func TestRunInductionPoolMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 64 + rng.Intn(512)
		exit := -1
		if rng.Intn(2) == 0 {
			exit = rng.Intn(n)
		}
		want := n
		if exit >= 0 {
			want = exit
		}

		run := func(pool bool) (Report, *mem.Array) {
			a := mem.NewArray("A", n)
			rep, err := RunInduction(inductionLoop(a, exit, n), Options{
				Procs:  4,
				Pool:   pool,
				Shared: []*mem.Array{a},
				Tested: []*mem.Array{a},
			})
			if err != nil {
				t.Fatalf("trial %d pool=%v: %v", trial, pool, err)
			}
			return rep, a
		}
		repD, aD := run(false)
		repP, aP := run(true)
		if repD.Valid != want || repP.Valid != repD.Valid {
			t.Fatalf("trial %d: valid %d (default) vs %d (pool), want %d", trial, repD.Valid, repP.Valid, want)
		}
		for i := 0; i < n; i++ {
			if aD.Data[i] != aP.Data[i] {
				t.Fatalf("trial %d: A[%d] = %v (default) vs %v (pool)", trial, i, aD.Data[i], aP.Data[i])
			}
		}
	}
}

func TestRunInductionPipelinedMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		n := 64 + rng.Intn(512)
		exit := -1
		if rng.Intn(2) == 0 {
			exit = rng.Intn(n)
		}
		want := n
		if exit >= 0 {
			want = exit
		}

		run := func(pipeline bool) (Report, *mem.Array, obs.Snapshot) {
			a := mem.NewArray("A", n)
			m := obs.NewMetrics()
			opt := Options{
				Procs:   4,
				Shared:  []*mem.Array{a},
				Tested:  []*mem.Array{a},
				Metrics: m,
			}
			if pipeline {
				opt.Strategy = StrategyPipeline
			}
			rep, err := RunInduction(inductionLoop(a, exit, n), opt)
			if err != nil {
				t.Fatalf("trial %d pipeline=%v: %v", trial, pipeline, err)
			}
			return rep, a, m.Snapshot()
		}
		repD, aD, _ := run(false)
		repP, aP, s := run(true)
		if repD.Valid != want || repP.Valid != repD.Valid {
			t.Fatalf("trial %d: valid %d (default) vs %d (pipelined), want %d", trial, repD.Valid, repP.Valid, want)
		}
		if !repP.UsedParallel || !strings.Contains(repP.Strategy, "pipelined") {
			t.Fatalf("trial %d: report %+v", trial, repP)
		}
		if s.PoolDispatches == 0 || s.EpochResets == 0 {
			t.Fatalf("trial %d: pipelined run recorded no pool dispatches (%d) or epoch resets (%d)",
				trial, s.PoolDispatches, s.EpochResets)
		}
		for i := 0; i < n; i++ {
			if aD.Data[i] != aP.Data[i] {
				t.Fatalf("trial %d: A[%d] = %v (default) vs %v (pipelined)", trial, i, aD.Data[i], aP.Data[i])
			}
		}
	}
}

func TestRunListPoolMatchesDefaultAndPipelineRejected(t *testing.T) {
	n := 300
	body := func(a *mem.Array) func(it *loopir.Iter, nd *list.Node) bool {
		return func(it *loopir.Iter, nd *list.Node) bool {
			it.Store(a, nd.Key, nd.Val*2)
			return true
		}
	}
	for _, method := range []ListMethod{General1, General2, General3, DoacrossList} {
		aD := mem.NewArray("A", n)
		repD, err := RunList(list.Build(n, func(i int) (float64, float64) { return float64(i), 1 }),
			body(aD), loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI},
			Options{Procs: 4, ListMethod: method})
		if err != nil {
			t.Fatalf("%v default: %v", method, err)
		}
		aP := mem.NewArray("A", n)
		repP, err := RunList(list.Build(n, func(i int) (float64, float64) { return float64(i), 1 }),
			body(aP), loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI},
			Options{Procs: 4, ListMethod: method, Pool: true})
		if err != nil {
			t.Fatalf("%v pool: %v", method, err)
		}
		if repD.Valid != repP.Valid || repD.Valid != n {
			t.Fatalf("%v: valid %d (default) vs %d (pool)", method, repD.Valid, repP.Valid)
		}
		for i := 0; i < n; i++ {
			if aD.Data[i] != aP.Data[i] {
				t.Fatalf("%v: A[%d] = %v (default) vs %v (pool)", method, i, aD.Data[i], aP.Data[i])
			}
		}
	}

	a := mem.NewArray("A", 16)
	_, err := RunList(list.Build(16, nil), body(a),
		loopir.Class{Dispatcher: loopir.GeneralRecurrence, Terminator: loopir.RI},
		Options{Procs: 2, Strategy: StrategyPipeline})
	if !errors.Is(err, ErrPipelineUnsupported) {
		t.Fatalf("RunList with StrategyPipeline: err = %v, want ErrPipelineUnsupported", err)
	}
}

func TestValidatePipelineOptions(t *testing.T) {
	a := mem.NewArray("A", 4)
	bad := []Options{
		{Strategy: StrategyPipeline, SparseUndo: true},
		{Strategy: StrategyPipeline, Privatized: []speculate.PrivSpec{{Arr: a}}},
	}
	for i, o := range bad {
		if err := o.Validate(); !errors.Is(err, ErrPipelineUnsupported) {
			t.Fatalf("case %d: err = %v, want ErrPipelineUnsupported", i, err)
		}
	}
	if err := (Options{Strategy: StrategyPipeline}).Validate(); err != nil {
		t.Fatalf("plain StrategyPipeline must validate: %v", err)
	}
	if err := (Options{Pool: true}).Validate(); err != nil {
		t.Fatalf("plain Pool must validate: %v", err)
	}
}
