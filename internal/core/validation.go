package core

import (
	"fmt"

	"whilepar/internal/speculate"
)

// Validation pins the speculative validation tier instead of letting
// the adaptive selector earn it from the loop's profile.  The zero
// value, ValidationAuto, is the confidence-gated dial: every call site
// starts on the full element-wise shadow machinery and is promoted to
// the cheaper tiers only by consecutive clean runs (see
// autotune.DecideTier), demoted back the moment a violation or audit
// failure is observed.
//
// The explicit values apply to the strip-mined speculative engines the
// auto path runs (closed-form induction loops); executions that take
// the classic whole-loop protocol, or that need no speculation at all,
// run their usual validation regardless and report the tier they
// actually used.  Combinations that pin an engine without a tiered
// strip path — SparseUndo, Privatized copies, RunTwice, Pipeline —
// are rejected by Validate with ErrBadValidation.
type Validation int

const (
	// ValidationAuto lets the profile's clean streak drive the tier.
	ValidationAuto Validation = iota
	// ValidationFull pins Tier 0: element-wise time-stamps and shadow
	// marks on every strip — the oracle, and the only tier that can
	// recover a failed strip by partial commit.
	ValidationFull
	// ValidationSignature pins Tier 1: per-worker hash signatures
	// validated by pairwise intersection after each strip.  Strictly
	// conservative — a hash collision re-runs the strip under Tier 0,
	// a real conflict can never slip through.
	ValidationSignature
	// ValidationTrusted pins Tier 2: shadow-free strips with a sampled
	// audit strip re-run under the full machinery; an audit failure or
	// missed exit restores a run-start backup and re-runs sequentially.
	ValidationTrusted
)

// String names the validation tier request.
func (v Validation) String() string {
	switch v {
	case ValidationAuto:
		return "auto"
	case ValidationFull:
		return "full"
	case ValidationSignature:
		return "signature"
	case ValidationTrusted:
		return "trusted"
	}
	return fmt.Sprintf("validation(%d)", int(v))
}

// tier maps the pinned request onto the engine's Tier value;
// ValidationAuto maps to TierFull and the selector overrides it.
func (v Validation) tier() speculate.Tier {
	switch v {
	case ValidationSignature:
		return speculate.TierSignature
	case ValidationTrusted:
		return speculate.TierTrusted
	}
	return speculate.TierFull
}
