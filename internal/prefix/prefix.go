// Package prefix implements parallel prefix (scan) computations, the
// technique of Section 3.2 for evaluating the terms of an associative
// dispatching recurrence in O(n/p + log p) time.
//
// The classic use in the paper is the dispatcher x(i) = a*x(i-1) + b:
// each step is an affine map, affine-map composition is associative, so
// an inclusive scan over the per-step maps applied to x(0) yields every
// term.  The scan here is the standard blocked two-pass algorithm:
//
//  1. split the input into p blocks; each worker scans its block locally;
//  2. exclusive-scan the p block totals (a p-element sequential scan —
//     the "log p" term on a machine with a combining tree);
//  3. each worker folds its block's carry-in into its local results.
//
// The same Scan primitive also powers the time-stamp-ordered reductions
// used by the MA28 pivot experiments.
package prefix

import (
	"context"

	"whilepar/internal/cancel"
	"whilepar/internal/loopir"
	"whilepar/internal/sched"
	"whilepar/internal/simproc"
)

// Scan computes the inclusive prefix combination of xs under the
// associative operator op, sequentially: out[i] = xs[0] op ... op xs[i].
// It is the reference implementation the parallel version is checked
// against.
func Scan[T any](xs []T, op func(T, T) T) []T {
	out := make([]T, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = op(out[i-1], xs[i])
	}
	return out
}

// ParallelScan computes the inclusive prefix combination of xs under op
// using procs goroutines.  id must be the identity of op.  op must be
// associative (commutativity is not required).  The result equals
// Scan(xs, op) for any associative op.
func ParallelScan[T any](xs []T, id T, op func(T, T) T, procs int) []T {
	n := len(xs)
	if procs < 1 {
		procs = 1
	}
	if n == 0 {
		return make([]T, 0)
	}
	if procs == 1 || n < 2*procs {
		return Scan(xs, op)
	}
	out := make([]T, n)
	blocks := procs
	sz := (n + blocks - 1) / blocks
	totals := make([]T, blocks)

	// Pass 1: local inclusive scans.  The scan is an internal
	// run-to-completion primitive (blocks are tiny relative to any
	// cancellation granularity), so it runs on Background.
	sched.ForEachProc(context.Background(), blocks, sched.ProcConfig{}, func(b int) {
		lo, hi := b*sz, (b+1)*sz
		if hi > n {
			hi = n
		}
		if lo >= hi {
			totals[b] = id
			return
		}
		acc := xs[lo]
		out[lo] = acc
		for i := lo + 1; i < hi; i++ {
			acc = op(acc, xs[i])
			out[i] = acc
		}
		totals[b] = acc
	})

	// Pass 2: exclusive scan of block totals (p elements, sequential).
	carry := make([]T, blocks)
	acc := id
	for b := 0; b < blocks; b++ {
		carry[b] = acc
		acc = op(acc, totals[b])
	}

	// Pass 3: fold carries into blocks (block 0 needs none).
	sched.ForEachProc(context.Background(), blocks, sched.ProcConfig{}, func(b int) {
		if b == 0 {
			return
		}
		lo, hi := b*sz, (b+1)*sz
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			out[i] = op(carry[b], out[i])
		}
	})
	return out
}

// AffineTerms evaluates the first n terms x(0), ..., x(n-1) of the
// associative dispatcher d (x(i) = A*x(i-1) + B, x(0) = X0) with a
// parallel prefix computation over the step maps, as in Figure 3(c)'s
// parallel-prefix(r, a, b, ...) call.
func AffineTerms(d loopir.Affine, n, procs int) []float64 {
	if n <= 0 {
		return nil
	}
	terms := make([]float64, n)
	terms[0] = d.X0
	if n == 1 {
		return terms
	}
	// maps[i] is the composition step producing x(i+1) from x(i); the
	// scan yields the composite map from x(0) to each x(i+1).
	maps := make([]loopir.AffineMap, n-1)
	step := loopir.AffineMap{A: d.A, B: d.B}
	for i := range maps {
		maps[i] = step
	}
	scanned := ParallelScan(maps, loopir.IdentityMap, loopir.Compose, procs)
	for i, m := range scanned {
		terms[i+1] = m.Apply(d.X0)
	}
	return terms
}

// TermsUntil evaluates terms of d until cond fails, in strips of the
// given length: each strip's terms are produced by AffineTerms and then
// scanned for the first failing term.  It returns all valid terms (those
// for which cond held) plus, in extra, the count of superfluous terms
// computed past the failure — the waste Section 3.2 attributes to
// strip-mining an RV/thresholded associative dispatcher.  maxTerms
// bounds the total in case cond never fails.
func TermsUntil(d loopir.Affine, cond func(float64) bool, strip, procs, maxTerms int) (terms []float64, extra int) {
	terms, extra, _ = TermsUntilCtx(context.Background(), d, cond, strip, procs, maxTerms)
	return terms, extra
}

// TermsUntilCtx is TermsUntil under a context: cancellation is observed
// at strip boundaries, returning the terms evaluated so far together
// with ErrCanceled/ErrDeadline.  The strip in flight when the context
// fires is completed (a strip is the unit of work).
func TermsUntilCtx(ctx context.Context, d loopir.Affine, cond func(float64) bool, strip, procs, maxTerms int) (terms []float64, extra int, err error) {
	if strip < 1 {
		strip = 1
	}
	cur := d
	for len(terms) < maxTerms {
		if err := cancel.Err(ctx); err != nil {
			return terms, extra, err
		}
		n := strip
		if len(terms)+n > maxTerms {
			n = maxTerms - len(terms)
		}
		batch := AffineTerms(cur, n, procs)
		for i, x := range batch {
			if !cond(x) {
				terms = append(terms, batch[:i]...)
				extra = len(batch) - i
				return terms, extra, nil
			}
		}
		terms = append(terms, batch...)
		if n > 0 {
			last := batch[n-1]
			cur = loopir.Affine{A: d.A, B: d.B, X0: d.A*last + d.B}
		}
	}
	return terms, 0, nil
}

// SimScanTime charges a machine for a parallel prefix over n elements at
// perOp cost per combine: each processor does ~2*(n/p) combines (local
// scan + carry fold) plus a log2(p)-step tree for the block totals, per
// the O(n/p + log p) bound of Section 3.2.  All clocks advance to the
// completion time, which is returned.
func SimScanTime(m *simproc.Machine, n int, perOp float64) float64 {
	p := m.P()
	local := 2 * perOp * float64((n+p-1)/p)
	if p == 1 {
		local = perOp * float64(n)
	}
	m.Barrier(0)
	for k := 0; k < p; k++ {
		m.Run(k, local)
	}
	return m.Reduce(0, 0, perOp) // log-tree combine of block totals
}
