package prefix

import (
	"math"
	"testing"
	"testing/quick"

	"whilepar/internal/loopir"
	"whilepar/internal/simproc"
)

func addOp(a, b float64) float64 { return a + b }

func TestScanSequential(t *testing.T) {
	got := Scan([]float64{1, 2, 3, 4}, addOp)
	want := []float64{1, 3, 6, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan = %v", got)
		}
	}
	if len(Scan(nil, addOp)) != 0 {
		t.Fatal("empty scan should be empty")
	}
}

func TestParallelScanMatchesSequentialSum(t *testing.T) {
	f := func(raw []float64, procsRaw uint8) bool {
		procs := int(procsRaw)%8 + 1
		// Use integers-in-float to make equality exact.
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Trunc(math.Mod(v, 100))
			if math.IsNaN(xs[i]) {
				xs[i] = 1
			}
		}
		want := Scan(xs, addOp)
		got := ParallelScan(xs, 0, addOp, procs)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParallelScanNonCommutativeOp(t *testing.T) {
	// Affine-map composition is associative but NOT commutative: a
	// block-order bug would be exposed immediately.
	n := 1000
	maps := make([]loopir.AffineMap, n)
	for i := range maps {
		maps[i] = loopir.AffineMap{A: 1 + float64(i%3)*0.001, B: float64(i % 5)}
	}
	want := Scan(maps, loopir.Compose)
	for procs := 1; procs <= 9; procs++ {
		got := ParallelScan(maps, loopir.IdentityMap, loopir.Compose, procs)
		for i := range want {
			if math.Abs(got[i].A-want[i].A) > 1e-9*math.Abs(want[i].A) ||
				math.Abs(got[i].B-want[i].B) > 1e-6*(1+math.Abs(want[i].B)) {
				t.Fatalf("procs=%d: element %d = %+v, want %+v", procs, i, got[i], want[i])
			}
		}
	}
}

func TestParallelScanSmallInputs(t *testing.T) {
	for n := 0; n <= 5; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		got := ParallelScan(xs, 0, addOp, 4)
		want := Scan(xs, addOp)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got %v want %v", n, got, want)
			}
		}
	}
}

func TestAffineTermsMatchDispatcherWalk(t *testing.T) {
	d := loopir.Affine{A: 1.001, B: 0.5, X0: 1}
	n := 5000
	got := AffineTerms(d, n, 8)
	x := d.Start()
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-x) > 1e-6*(1+math.Abs(x)) {
			t.Fatalf("term %d = %v, walk = %v", i, got[i], x)
		}
		x = d.Next(x)
	}
	if AffineTerms(d, 0, 4) != nil {
		t.Fatal("zero terms should be nil")
	}
	one := AffineTerms(d, 1, 4)
	if len(one) != 1 || one[0] != 1 {
		t.Fatalf("one term = %v", one)
	}
}

func TestTermsUntil(t *testing.T) {
	// x doubles from 1; condition x < 1000 holds for x = 1..512 (10 terms).
	d := loopir.Affine{A: 2, B: 0, X0: 1}
	terms, extra := TermsUntil(d, func(x float64) bool { return x < 1000 }, 8, 4, 100)
	if len(terms) != 10 {
		t.Fatalf("got %d terms (%v), want 10", len(terms), terms)
	}
	if terms[9] != 512 {
		t.Fatalf("last term = %v", terms[9])
	}
	if extra < 1 {
		t.Fatalf("strip-mining should compute superfluous terms, extra = %d", extra)
	}
	// Exact strip boundary: 10 valid terms, strip 5 — failure found at
	// start of third strip.
	terms2, _ := TermsUntil(d, func(x float64) bool { return x < 1000 }, 5, 2, 100)
	if len(terms2) != 10 || terms2[9] != 512 {
		t.Fatalf("strip=5: %v", terms2)
	}
	// maxTerms cap respected when cond never fails.
	terms3, extra3 := TermsUntil(loopir.Affine{A: 1, B: 1, X0: 0}, func(float64) bool { return true }, 7, 3, 23)
	if len(terms3) != 23 || extra3 != 0 {
		t.Fatalf("cap: len=%d extra=%d", len(terms3), extra3)
	}
}

func TestSimScanTimeScalesAsNOverP(t *testing.T) {
	n := 100000
	t1 := SimScanTime(simproc.New(1), n, 1)
	t8 := SimScanTime(simproc.New(8), n, 1)
	if t1 != float64(n) {
		t.Fatalf("1-proc scan time = %v, want %v", t1, n)
	}
	// 8-proc: 2*n/8 local plus small log term; speedup ~4 (two passes).
	sp := t1 / t8
	if sp < 3.5 || sp > 4.5 {
		t.Fatalf("8-proc scan speedup = %v, want ~4", sp)
	}
}
