package autotune

import (
	"encoding/json"
	"strings"
	"testing"

	"whilepar/internal/obs"
	"whilepar/internal/sched"
)

func TestProbeSize(t *testing.T) {
	cases := []struct {
		total, procs, want int
	}{
		{1000, 4, 64},  // floor 16 > 2*4, snapped up to the sig block grain
		{1000, 32, 64}, // 2*procs, already on the grain
		{40, 4, 10},    // capped at total/4
		{1, 4, 1},      // tiny loop: at least 1
		{8, 2, 2},      // total/4
	}
	for _, c := range cases {
		if got := ProbeSize(c.total, c.procs); got != c.want {
			t.Errorf("ProbeSize(%d, %d) = %d, want %d", c.total, c.procs, got, c.want)
		}
	}
}

func TestDecideRules(t *testing.T) {
	procs := 8
	// No profile, speculation needed: stripped speculation, dynamic.
	p := Decide(Profile{}, false, 10_000, procs, true)
	if p.Engine != Speculative || p.Schedule != sched.Dynamic || p.Window != 1 {
		t.Fatalf("cold spec plan %+v", p)
	}
	// No profile, no speculation needed: DOALL.
	if p := Decide(Profile{}, false, 10_000, procs, false); p.Engine != DOALL {
		t.Fatalf("cold doall plan %+v", p)
	}
	// Short remainder: sequential regardless of anything else.
	if p := Decide(Profile{}, false, 10, procs, true); p.Engine != Sequential {
		t.Fatalf("short remainder plan %+v", p)
	}
	// One processor: sequential, always — no engine can win back its
	// overhead without a second core's worth of work to overlap.
	if p := Decide(Profile{Runs: 3, TripFraction: 1}, true, 1_000_000, 1, true); p.Engine != Sequential {
		t.Fatalf("single-proc plan %+v", p)
	}
	// Violation-heavy history: sequential when speculation would be needed...
	hot := Profile{Runs: 3, ViolationRate: 0.8, TripFraction: 1}
	if p := Decide(hot, true, 10_000, procs, true); p.Engine != Sequential {
		t.Fatalf("violation-heavy plan %+v", p)
	}
	// ...but DOALL when it would not.
	if p := Decide(hot, true, 10_000, procs, false); p.Engine != DOALL {
		t.Fatalf("violation-heavy doall plan %+v", p)
	}
	// Clean, full-trip history: pipelined with a deeper window and a
	// stealing schedule.
	clean := Profile{Runs: 3, ViolationRate: 0, TripFraction: 1}
	p = Decide(clean, true, 10_000, procs, true)
	if p.Engine != Pipelined || p.Window != 2 || p.Schedule != sched.Stealing {
		t.Fatalf("clean history plan %+v", p)
	}
	// One clean run is not yet enough history for stealing.
	if p := Decide(Profile{Runs: 1, TripFraction: 1}, true, 10_000, procs, true); p.Schedule != sched.Dynamic {
		t.Fatalf("single-run schedule %+v", p)
	}
}

func TestInitialStrip(t *testing.T) {
	// remaining/16 clamped below by 4*procs.
	if got := InitialStrip(Profile{}, false, 10_000, 4); got != 625 {
		t.Fatalf("strip = %d, want 625", got)
	}
	if got := InitialStrip(Profile{}, false, 100, 4); got != 16 {
		t.Fatalf("small-remainder strip = %d, want the 4*procs floor", got)
	}
	if got := InitialStrip(Profile{}, false, 10, 4); got != 10 {
		t.Fatalf("tiny-remainder strip = %d, want 10 (clamped to remaining)", got)
	}
	// Violating history quarters the strip.
	base := InitialStrip(Profile{}, false, 10_000, 4)
	shrunk := InitialStrip(Profile{Runs: 2, ViolationRate: 0.5}, true, 10_000, 4)
	if shrunk >= base {
		t.Fatalf("violating strip %d not below base %d", shrunk, base)
	}
}

func TestProfileStoreRecordAndEWMA(t *testing.T) {
	st := NewProfileStore()
	if _, ok := st.Lookup("k"); ok {
		t.Fatal("empty store claims a profile")
	}
	st.Record("k", Sample{Valid: 100, Total: 100, Ns: 1000, NsIters: 100, Strips: 4, Engine: Speculative})
	p, ok := st.Lookup("k")
	if !ok || p.Runs != 1 || p.TripFraction != 1 || p.NsPerIter != 10 {
		t.Fatalf("first sample profile %+v", p)
	}
	// A violating run moves the violation rate; a strip-free run must
	// not (sticky sequential would otherwise never recover history).
	st.Record("k", Sample{Valid: 50, Total: 100, Ns: 500, NsIters: 50, Strips: 4, SeqStrips: 4, Engine: Speculative})
	p, _ = st.Lookup("k")
	if p.ViolationRate == 0 {
		t.Fatalf("violating run left rate 0: %+v", p)
	}
	rate := p.ViolationRate
	st.Record("k", Sample{Valid: 100, Total: 100, Ns: 1000, NsIters: 100, Engine: Sequential})
	p, _ = st.Lookup("k")
	if p.ViolationRate != rate {
		t.Fatalf("strip-free run moved violation rate %v -> %v", rate, p.ViolationRate)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestProfileStoreJSONRoundTrip(t *testing.T) {
	st := NewProfileStore()
	st.Record("a.go:10", Sample{Valid: 90, Total: 100, Ns: 900, NsIters: 90, Strips: 3, Engine: Pipelined})
	st.Record("b.go:20", Sample{Valid: 100, Total: 100, Ns: 200, NsIters: 100, Engine: DOALL})
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	back := NewProfileStore()
	if err := json.Unmarshal(blob, back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round-trip lost profiles: %d", back.Len())
	}
	p1, _ := st.Lookup("a.go:10")
	p2, ok := back.Lookup("a.go:10")
	if !ok || p1 != p2 {
		t.Fatalf("round-trip changed profile: %+v vs %+v", p1, p2)
	}
}

func TestTunerGrowAndPipeline(t *testing.T) {
	m := obs.NewMetrics()
	tu := NewTuner(TunerConfig{Plan: Plan{Engine: Speculative, Strip: 16}, Procs: 4, Total: 10_000, PipelineOK: true, Metrics: m})
	lo := 0
	for i := 0; i < 4; i++ {
		s := tu.NextStrip(lo, 10_000)
		tu.Observe(lo, s, lo+s, true)
		lo += s
	}
	if tu.NextStrip(lo, 10_000) <= 16 {
		t.Fatalf("clean streak did not grow the strip: %d", tu.NextStrip(lo, 10_000))
	}
	if !tu.SwitchPipeline() {
		t.Fatal("clean streak did not promote to pipelined")
	}
	if tu.SwitchSequential() {
		t.Fatal("clean run demoted to sequential")
	}
	evs := tu.Events()
	if len(evs) == 0 {
		t.Fatal("no retune events recorded")
	}
	var sawGrow, sawPipe bool
	for _, e := range evs {
		sawGrow = sawGrow || e.Action == "grow"
		sawPipe = sawPipe || e.Action == "pipeline"
	}
	if !sawGrow || !sawPipe {
		t.Fatalf("events %+v missing grow/pipeline", evs)
	}
	if m.Snapshot().StrategySwitches == 0 {
		t.Fatal("pipeline promotion not counted")
	}
}

func TestTunerShrinkAndSequentialDemotion(t *testing.T) {
	m := obs.NewMetrics()
	tu := NewTuner(TunerConfig{Plan: Plan{Engine: Speculative, Strip: 64}, Procs: 4, Total: 10_000, Metrics: m})
	lo := 0
	for i := 0; i < 3; i++ {
		s := tu.NextStrip(lo, 10_000)
		tu.Observe(lo, 0, lo+s, false)
		lo += s
	}
	if tu.NextStrip(lo, 10_000) >= 64 {
		t.Fatalf("violation streak did not shrink the strip: %d", tu.NextStrip(lo, 10_000))
	}
	if !tu.SwitchSequential() {
		t.Fatal("violation storm did not demote to sequential")
	}
	if tu.SwitchPipeline() {
		t.Fatal("violating run promoted to pipelined")
	}
	if m.Snapshot().StrategySwitches == 0 {
		t.Fatal("sequential demotion not counted")
	}
}

func TestTunerStripNeverBelowFloor(t *testing.T) {
	tu := NewTuner(TunerConfig{Plan: Plan{Engine: Speculative, Strip: 8}, Procs: 4, Total: 1000})
	for i := 0; i < 10; i++ {
		s := tu.NextStrip(0, 1000)
		tu.Observe(0, 0, s, false)
	}
	if s := tu.NextStrip(0, 1000); s < 4 {
		t.Fatalf("strip %d fell below the procs floor", s)
	}
}

func TestDecideTier(t *testing.T) {
	procs := 8
	clean := func(streak int) Profile {
		return Profile{Runs: 10, TripFraction: 1, ViolationRate: 0, CleanStreak: streak}
	}
	// The tier ladder: below Tier1Streak stays full, then signatures,
	// then (with a near-full trip fraction) trusted.
	if got := DecideTier(clean(Tier1Streak-1), true, sched.Stealing); got != 0 {
		t.Fatalf("streak %d tier = %d, want 0", Tier1Streak-1, got)
	}
	if got := DecideTier(clean(Tier1Streak), true, sched.Stealing); got != 1 {
		t.Fatalf("streak %d tier = %d, want 1", Tier1Streak, got)
	}
	if got := DecideTier(clean(Tier2Streak), true, sched.Stealing); got != 2 {
		t.Fatalf("streak %d tier = %d, want 2", Tier2Streak, got)
	}
	// Tier 2 additionally needs a near-full trip fraction: its recovery
	// path re-runs the whole range, so early exits must be rare.
	early := clean(Tier2Streak)
	early.TripFraction = 0.5
	if got := DecideTier(early, true, sched.Stealing); got != 1 {
		t.Fatalf("early-exit streak tier = %d, want 1", got)
	}
	// No tier without the stealing schedule (interleaved chunks alias
	// signature blocks) or without a profile at all.
	if got := DecideTier(clean(Tier2Streak), true, sched.Dynamic); got != 0 {
		t.Fatalf("dynamic-schedule tier = %d, want 0", got)
	}
	if got := DecideTier(clean(Tier2Streak), false, sched.Stealing); got != 0 {
		t.Fatalf("no-profile tier = %d, want 0", got)
	}
	// A violation on the last run, or a non-negligible rate, demotes to
	// full regardless of streak.
	dirty := clean(Tier2Streak)
	dirty.LastViolated = true
	if got := DecideTier(dirty, true, sched.Stealing); got != 0 {
		t.Fatalf("last-violated tier = %d, want 0", got)
	}
	rate := clean(Tier2Streak)
	rate.ViolationRate = 0.2
	if got := DecideTier(rate, true, sched.Stealing); got != 0 {
		t.Fatalf("violation-rate tier = %d, want 0", got)
	}
	// Through Decide itself: a long-clean profile lands on the stripped
	// engine (not the pipeline) with a tier and a block-aligned strip.
	p := Decide(clean(Tier2Streak), true, 100_000, procs, true)
	if p.Engine != Speculative || p.Tier != 2 {
		t.Fatalf("tiered plan %+v", p)
	}
	if p.Strip%(sigBlock*procs) != 0 {
		t.Fatalf("tiered strip %d not a multiple of %d", p.Strip, sigBlock*procs)
	}
}

func TestAlignStrip(t *testing.T) {
	if got := AlignStrip(1, 4); got != sigBlock*4 {
		t.Fatalf("AlignStrip(1, 4) = %d, want %d", got, sigBlock*4)
	}
	if got := AlignStrip(sigBlock*4, 4); got != sigBlock*4 {
		t.Fatalf("aligned input moved: %d", got)
	}
	if got := AlignStrip(sigBlock*4+1, 4); got != sigBlock*8 {
		t.Fatalf("AlignStrip rounded %d, want %d", got, sigBlock*8)
	}
}

func TestApplyCleanStreakAndViolationCredit(t *testing.T) {
	st := NewProfileStore()
	spec := func(s Sample) Sample {
		s.Total, s.Valid, s.Strips, s.Engine = 100, 100, 4, Speculative
		return s
	}
	for i := 0; i < 8; i++ {
		st.Record("k", spec(Sample{}))
	}
	p, _ := st.Lookup("k")
	if p.CleanStreak != 8 || p.LastViolated {
		t.Fatalf("after 8 clean runs: %+v", p)
	}
	// A violation quarters the streak — not a reset, but most of the
	// history is forfeit — and marks the profile dirty for one run.
	st.Record("k", spec(Sample{SeqStrips: 1, Violated: true, Tier: 1}))
	p, _ = st.Lookup("k")
	if p.CleanStreak != 2 || !p.LastViolated || p.LastTier != 1 {
		t.Fatalf("after violation: %+v", p)
	}
	// An exception-only fallback (SeqStrips without the violation flag)
	// holds the streak rather than growing or quartering it.
	st.Record("k", spec(Sample{SeqStrips: 1}))
	p, _ = st.Lookup("k")
	if p.CleanStreak != 2 || p.LastViolated {
		t.Fatalf("after exception run: %+v", p)
	}
	// A strip-free (sequential/DOALL) run says nothing about the streak.
	st.Record("k", Sample{Valid: 100, Total: 100, Engine: Sequential})
	p, _ = st.Lookup("k")
	if p.CleanStreak != 2 {
		t.Fatalf("strip-free run moved streak: %+v", p)
	}
	// An audit failure burns credit exactly like a violation.
	st.Record("k", spec(Sample{AuditFailed: true, Tier: 2}))
	p, _ = st.Lookup("k")
	if p.CleanStreak != 0 || !p.LastViolated {
		t.Fatalf("after audit failure: %+v", p)
	}
}

func TestProfileStoreSchemaVersioning(t *testing.T) {
	st := NewProfileStore()
	st.Record("k", Sample{Valid: 10, Total: 10, Engine: DOALL})
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"version":`) {
		t.Fatalf("payload missing version envelope: %s", blob)
	}
	// The pre-envelope bare-map format decodes as version 0 and is
	// discarded: the store comes back empty, not erroring.
	legacy := []byte(`{"old.go:1": {"key": "old.go:1", "runs": 5}}`)
	back := NewProfileStore()
	if err := json.Unmarshal(legacy, back); err != nil {
		t.Fatalf("legacy payload should be discarded, not rejected: %v", err)
	}
	if back.Len() != 0 {
		t.Fatalf("legacy payload survived: %d profiles", back.Len())
	}
	// So is a future version.
	future := []byte(`{"version": 99, "profiles": {"k": {"key": "k", "runs": 1}}}`)
	back = NewProfileStore()
	if err := json.Unmarshal(future, back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("future payload survived: %d profiles", back.Len())
	}
	// Malformed JSON is still an error.
	if err := json.Unmarshal([]byte(`{"version": `), NewProfileStore()); err == nil {
		t.Fatal("malformed payload accepted")
	}
}
