package autotune

import (
	"whilepar/internal/obs"
)

// RetuneEvent records one mid-run strategy adjustment, in order, so a
// Report can show *why* an auto-tuned run ended on the engine it did.
type RetuneEvent struct {
	// AtIter is the global iteration boundary the decision was taken
	// at (the end of the strip that triggered it).
	AtIter int `json:"at_iter"`
	// Action is "grow", "shrink", "pipeline" or "sequential".
	Action string `json:"action"`
	// Strip is the strip size in force after the adjustment.
	Strip int `json:"strip"`
}

// TunerConfig parameterizes a Tuner.
type TunerConfig struct {
	// Plan is the initial decision the Tuner starts from.
	Plan Plan
	// Procs and Total bound the strip-size range.
	Procs, Total int
	// PipelineOK permits the mid-run promotion to the pipelined
	// engine (false when the speculation mode cannot be squashed —
	// sparse undo logs or privatized copies).
	PipelineOK bool
	// Metrics is consulted per strip: the Tuner reads the deltas of
	// the PD-fail and speculation-abort counters the execution is
	// already accumulating, so its verdicts corroborate the engine's
	// own clean/violated signal.  May be nil.
	Metrics *obs.Metrics
}

// Tuner re-decides strip size and engine mid-run.  It implements the
// speculate.StripController contract: the engine asks NextStrip before
// each strip, reports each outcome through Observe, and consults
// SwitchPipeline/SwitchSequential at strip boundaries.
//
// The policy is the one the ISSUE's retune loop describes:
//
//   - a violated strip halves the strip size (a smaller bet forfeits
//     less on the next failure), and three consecutive violations give
//     up on speculation entirely — the remainder runs sequentially;
//   - a clean streak doubles the strip size (fewer barriers and
//     checkpoints per iteration), and a streak of three promotes the
//     run to the pipelined engine, which hides the PD test behind the
//     next strip's execution.
//
// Both switches are one-way within a run: the profile, not the run,
// carries the lesson back to the next invocation.
type Tuner struct {
	cfg                TunerConfig
	strip              int
	minStrip, maxStrip int
	cleanStreak        int
	violStreak         int
	pipeline           bool
	sequential         bool
	lastPDFail         int64
	lastAborts         int64
	events             []RetuneEvent
}

// NewTuner returns a Tuner starting from cfg.Plan.
func NewTuner(cfg TunerConfig) *Tuner {
	procs := cfg.Procs
	if procs < 1 {
		procs = 1
	}
	t := &Tuner{cfg: cfg, strip: cfg.Plan.Strip, minStrip: procs}
	if t.strip < 1 {
		t.strip = 1
	}
	t.maxStrip = cfg.Total / 2
	if t.maxStrip < t.strip {
		t.maxStrip = t.strip
	}
	if m := cfg.Metrics; m != nil {
		s := m.Snapshot()
		t.lastPDFail, t.lastAborts = s.PDFail, s.SpecAborts
	}
	return t
}

// NextStrip returns the strip size for the strip starting at done.
func (t *Tuner) NextStrip(done, total int) int { return t.strip }

// Observe reports the outcome of the strip [lo, hi): committed is the
// engine's own verdict (PD passed, no exception).  The Tuner
// corroborates it against the obs counter deltas — a PD failure or
// speculation abort recorded since the last strip marks the strip
// violated even if the caller's flag disagrees — and adjusts.
func (t *Tuner) Observe(lo, valid, hi int, committed bool) {
	violated := !committed
	if m := t.cfg.Metrics; m != nil {
		s := m.Snapshot()
		if s.PDFail > t.lastPDFail || s.SpecAborts > t.lastAborts {
			violated = true
		}
		t.lastPDFail, t.lastAborts = s.PDFail, s.SpecAborts
	}
	if violated {
		t.violStreak++
		t.cleanStreak = 0
		if t.strip > t.minStrip {
			t.strip /= 2
			if t.strip < t.minStrip {
				t.strip = t.minStrip
			}
			t.record(hi, "shrink")
		}
		if t.violStreak >= 3 && !t.sequential {
			t.sequential = true
			t.cfg.Metrics.StrategySwitch()
			t.record(hi, "sequential")
		}
		return
	}
	t.cleanStreak++
	t.violStreak = 0
	if t.cleanStreak >= 2 && t.strip < t.maxStrip {
		t.strip *= 2
		if t.strip > t.maxStrip {
			t.strip = t.maxStrip
		}
		t.record(hi, "grow")
	}
	if t.cleanStreak >= 3 && t.cfg.PipelineOK && !t.pipeline {
		t.pipeline = true
		t.cfg.Metrics.StrategySwitch()
		t.record(hi, "pipeline")
	}
}

// SwitchPipeline reports whether the remainder should move to the
// pipelined engine.
func (t *Tuner) SwitchPipeline() bool { return t.pipeline }

// SwitchSequential reports whether the remainder should finish
// sequentially.
func (t *Tuner) SwitchSequential() bool { return t.sequential }

// Events returns the retune decisions taken so far, in order.
func (t *Tuner) Events() []RetuneEvent { return t.events }

func (t *Tuner) record(at int, action string) {
	t.events = append(t.events, RetuneEvent{AtIter: at, Action: action, Strip: t.strip})
}
