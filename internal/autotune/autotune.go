// Package autotune is the adaptive strategy selector: given a loop's
// profile (persistent, keyed by call site) and a cheap online probe of
// its first iterations, it picks the execution engine, DOALL schedule,
// strip size and respeculation window that the orchestrator would
// otherwise need the caller to hand-tune.
//
// The paper's position (Section 7) is that the parallelization
// decision should be automatic — "they should almost always be
// applied" — and the related speculative-parallelization literature
// (Rauchwerger's synergistic static/dynamic/speculative framework, the
// taskloop DOACROSS studies) consistently finds that *which* strategy
// runs dominates how fast any single engine is.  This package closes
// that gap in three stages:
//
//  1. probe: the orchestrator executes the first strip sequentially,
//     which is free (those iterations had to run anyway, and the
//     sequential prefix is exactly the committed state every
//     speculative engine starts from) and yields the per-iteration
//     body cost, an early-termination signal, and a trip-count sample
//     for costmodel.BranchStats;
//  2. decide: Decide maps the profile plus deterministic loop facts
//     (remaining iterations, processor count, whether speculation is
//     required) to a Plan.  The decision deliberately ignores measured
//     wall-clock time: timing jitter must never flip the chosen
//     strategy between two identical runs (the probe's nanoseconds
//     only size strips, never select engines);
//  3. retune: a Tuner (tuner.go) re-decides strip size and engine
//     mid-run from the internal/obs counters the execution is already
//     accumulating — violation storms shrink the window and eventually
//     fall back to sequential, clean streaks grow it and promote the
//     run to the pipelined engine.
package autotune

import (
	"encoding/json"
	"fmt"
	"sync"

	"whilepar/internal/sched"
	"whilepar/internal/sig"
)

// Engine names one of the execution engines the selector chooses among.
type Engine int

const (
	// Sequential runs the remainder on the calling goroutine — the
	// right call when the remaining work cannot amortize even one
	// barrier, or when the profile says speculation keeps failing.
	Sequential Engine = iota
	// DOALL runs the remainder as a plain scheduled DOALL — no
	// checkpoint, stamps or PD test — legal only when the orchestrator
	// proved speculation unnecessary.
	DOALL
	// Speculative runs strip-mined speculation (checkpoint + stamps +
	// PD test per strip) with the Tuner adjusting strip size per strip.
	Speculative
	// Pipelined is Speculative with strip k+1's execution overlapping
	// strip k's PD test — the fastest engine on clean loops, the most
	// wasteful one under frequent misspeculation.
	Pipelined
)

// String names the engine for reports and rendered profiles.
func (e Engine) String() string {
	switch e {
	case Sequential:
		return "sequential"
	case DOALL:
		return "DOALL"
	case Speculative:
		return "stripped speculation"
	case Pipelined:
		return "pipelined strip speculation"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Plan is one concrete strategy choice.
type Plan struct {
	// Engine to run the post-probe remainder under.
	Engine Engine
	// Schedule for every DOALL the engine dispatches.
	Schedule sched.Schedule
	// Strip is the initial strip size for the speculative engines
	// (0 for Sequential and DOALL, which have no strips).
	Strip int
	// Window is the number of strips in flight: 1 for the stripped
	// engine, 2 once the pipeline overlaps execution with validation.
	Window int
	// Tier is the validation tier granted to the speculative engine: 0
	// keeps the full element-wise shadow machinery, 1 validates strips
	// by hash-signature intersection (internal/sig), 2 trusts clean
	// streaks and runs shadow-free with sampled audits.  The values
	// mirror speculate.Tier; Decide only grants a tier above 0 on the
	// Speculative engine with the Stealing schedule and a block-aligned
	// strip, so worker footprints land on signature-block boundaries.
	Tier int
}

// ProbeResult is what the orchestrator learned from running the first
// strip sequentially.
type ProbeResult struct {
	// Iters actually executed (may stop short of the probe size on
	// early termination).
	Iters int
	// Ns is the probe's wall-clock cost; Ns/Iters estimates the body.
	Ns int64
	// Done reports that the loop terminated inside the probe.
	Done bool
}

// ProbeSize sizes the sequential probe: big enough to sample the body
// cost and give BranchStats a real trip fraction (at least 16
// iterations, at least two per processor), small enough never to eat a
// loop that would have profited from parallel execution (at most a
// quarter of the iteration space).
func ProbeSize(total, procs int) int {
	p := 2 * procs
	if p < 16 {
		p = 16
	}
	if q := total / 4; p > q {
		p = q
	}
	if p < 1 {
		p = 1
	}
	// Snap to the signature block grain when the quarter bound leaves
	// room: the strip engines start exactly where the probe stops, so a
	// 64-aligned probe keeps every later strip (already sized in
	// sigBlock*procs multiples by AlignStrip) on block boundaries — the
	// precondition for the tiered validation's false-positive-free
	// stealing chunks.  Loops too short to afford a 64-iteration probe
	// never earn a tier, so nothing is lost below the bound.
	if q := total / 4; q >= sigBlock {
		p = (p + sigBlock - 1) / sigBlock * sigBlock
		if p > q {
			p = q / sigBlock * sigBlock
		}
	}
	return p
}

// Profile is the persistent per-call-site record the selector learns
// from.  All rate fields are exponentially weighted moving averages
// (alpha ewmaAlpha), so one anomalous run cannot wipe the history and
// a genuinely changed workload converges within a few runs.  Profiles
// are JSON-serializable so services can persist a ProfileStore across
// processes.
type Profile struct {
	// Key identifies the loop (Options.Key, or the derived call site).
	Key string `json:"key"`
	// Runs recorded into this profile.
	Runs int `json:"runs"`
	// NsPerIter is the probed per-iteration body cost.
	NsPerIter float64 `json:"ns_per_iter"`
	// TripFraction is valid iterations over the iteration-space bound:
	// near 1 means the loop almost always runs to its bound (a
	// balanced, steal-friendly space), low values mean early exits.
	TripFraction float64 `json:"trip_fraction"`
	// ViolationRate is the fraction of speculative strips that failed
	// validation and re-ran sequentially.  Overshoot past a QUIT is
	// not a violation — only PD failures and exceptions count.
	ViolationRate float64 `json:"violation_rate"`
	// LastEngine is the engine the previous run ended on.
	LastEngine Engine `json:"last_engine"`
	// CleanStreak counts consecutive speculative runs that committed
	// every strip without a violation or audit failure.  It is the
	// promotion currency for the validation tiers: a violation does not
	// just reset it, it quarters it, so a loop that alternates clean
	// and dirty never accumulates enough credit to shed its shadows.
	CleanStreak int `json:"clean_streak"`
	// LastTier is the validation tier the previous run was granted.
	LastTier int `json:"last_tier"`
	// LastViolated reports that the previous speculative run saw a real
	// violation (PD failure or Tier-2 audit failure).  One dirty run
	// demotes the next run to Tier 0 outright, regardless of the rates.
	LastViolated bool `json:"last_violated"`
}

// Sample is one finished run's contribution to a profile.
type Sample struct {
	// Valid iterations and the iteration-space bound.
	Valid, Total int
	// Ns over NsIters is the probed body cost (0 iters = no estimate).
	Ns      int64
	NsIters int
	// Strips and SeqStrips from the speculative engines (both 0 when
	// the run never speculated).
	Strips, SeqStrips int
	// Engine the run ended on.
	Engine Engine
	// Tier the run was granted, and whether it saw a real violation
	// (Violated: a PD-test failure demoted a strip or the whole run) or
	// a Tier-2 audit failure (AuditFailed).  Tier-1 false positives are
	// neither — a hash collision costs one re-run, not trust.
	Tier        int
	Violated    bool
	AuditFailed bool
}

// ewmaAlpha weights the newest sample; 0.3 means ~3-4 runs to converge
// after a workload change.
const ewmaAlpha = 0.3

func ewma(old, sample float64, first bool) float64 {
	if first {
		return sample
	}
	return old + ewmaAlpha*(sample-old)
}

// apply folds one sample into the profile.
func (p *Profile) apply(s Sample) {
	first := p.Runs == 0
	p.Runs++
	if s.NsIters > 0 && s.Ns > 0 {
		p.NsPerIter = ewma(p.NsPerIter, float64(s.Ns)/float64(s.NsIters), first || p.NsPerIter == 0)
	}
	if s.Total > 0 {
		p.TripFraction = ewma(p.TripFraction, float64(s.Valid)/float64(s.Total), first)
	}
	// A run that never speculated says nothing about the violation
	// rate; in particular a Sequential run chosen *because* the rate
	// was high must not decay it back toward zero (that would flap
	// between sequential and a doomed re-speculation every other run).
	if s.Strips > 0 {
		p.ViolationRate = ewma(p.ViolationRate, float64(s.SeqStrips)/float64(s.Strips), first)
		// Streak credit moves the same direction but on a harsher
		// curve: quartering on a violation means a loop must re-earn
		// most of its history before the tiers trust it again, while
		// the EWMA above would forgive in two or three clean runs.
		if s.Violated || s.AuditFailed {
			p.CleanStreak /= 4
			p.LastViolated = true
		} else if s.SeqStrips == 0 {
			p.CleanStreak++
			p.LastViolated = false
		} else {
			// Sequential strips without a violation flag are
			// exceptions or cancellations: not a breach of trust, but
			// not a clean run either.  Hold the streak.
			p.LastViolated = false
		}
		p.LastTier = s.Tier
	}
	p.LastEngine = s.Engine
}

// StoreSchemaVersion is the version stamped into a ProfileStore's JSON
// payload.  Bump it whenever Profile gains a field whose zero value
// would mislead the selector when decoded from an older payload —
// CleanStreak is exactly such a field: an old profile with a converged
// violation rate but a zero (really: unrecorded) streak is fine, but
// the reverse, a future field defaulting to "trusted", would not be.
// A payload with a different (or missing) version is discarded rather
// than migrated: profiles are a cache of cheap-to-relearn history, and
// re-probing for a few runs is strictly safer than guessing what an
// old field meant.
const StoreSchemaVersion = 2

// storePayload is the persisted envelope around the profile map.
type storePayload struct {
	Version  int                `json:"version"`
	Profiles map[string]Profile `json:"profiles"`
}

// ProfileStore is a concurrency-safe collection of Profiles.  The zero
// value is not usable; call NewProfileStore.  Marshal/Unmarshal round-
// trip the store as a versioned JSON envelope, so services can persist
// learned profiles across processes and ship them between hosts.
type ProfileStore struct {
	mu       sync.Mutex
	profiles map[string]Profile
}

// NewProfileStore returns an empty store.
func NewProfileStore() *ProfileStore {
	return &ProfileStore{profiles: make(map[string]Profile)}
}

// std is the process-wide store used when Options supply none: zero-
// config callers still accumulate history across calls from the same
// call site.
var std = NewProfileStore()

// Default returns the process-wide store.
func Default() *ProfileStore { return std }

// Lookup returns the profile recorded under key.
func (s *ProfileStore) Lookup(key string) (Profile, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.profiles[key]
	return p, ok
}

// Record folds one run's sample into the profile under key and returns
// the updated profile.
func (s *ProfileStore) Record(key string, smp Sample) Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.profiles[key]
	p.Key = key
	p.apply(smp)
	s.profiles[key] = p
	return p
}

// Len reports the number of recorded profiles.
func (s *ProfileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.profiles)
}

// MarshalJSON renders the store as a versioned envelope holding a JSON
// object keyed by profile key.
func (s *ProfileStore) MarshalJSON() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Marshal(storePayload{Version: StoreSchemaVersion, Profiles: s.profiles})
}

// UnmarshalJSON replaces the store's contents with the decoded
// profiles.  A syntactically valid payload carrying a different schema
// version — including the pre-envelope bare-map format, which decodes
// with version 0 — is discarded silently: the store comes back empty
// and the selector relearns, which is the correct reading of stale
// history.  Only malformed JSON is an error.
func (s *ProfileStore) UnmarshalJSON(data []byte) error {
	var p storePayload
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("autotune: bad profile store payload: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.Version != StoreSchemaVersion || p.Profiles == nil {
		s.profiles = make(map[string]Profile)
		return nil
	}
	s.profiles = p.Profiles
	return nil
}

// Decide maps a profile plus deterministic loop facts to a Plan.
//
// Every input is reproducible — iteration counts, processor count, the
// classifier's speculation verdict, and the (persisted) profile.  The
// probe's measured nanoseconds are deliberately absent: two identical
// invocations must choose identical strategies, so wall-clock jitter
// may size nothing but strips (and strip size is itself retuned
// per-strip anyway).  Determinism is load-bearing for callers that
// compare Reports across runs and for the profile round-trip tests.
//
// The rules, in order:
//
//   - one processor runs sequentially, always: every parallel engine
//     adds dispatch, checkpoint and validation cost that a single
//     processor can never win back;
//   - a remainder too small to amortize one parallel dispatch runs
//     sequentially (under 2 iterations per processor and under 64
//     total — below either bound the barrier costs more than the
//     work);
//   - a profile that has watched speculation fail on at least half its
//     strips falls back to sequential outright, the Section 7 stance
//     inverted by evidence (and kept sticky by Profile.apply, which
//     never decays the violation rate on sequential runs);
//   - a loop the classifier cleared of speculation runs as a plain
//     DOALL;
//   - otherwise strip-mined speculation, promoted to the pipelined
//     engine when the profile shows a clean history (almost no
//     violations, nearly full trips — the pipeline's overlap only
//     pays when strips commit).
//
// The schedule follows the profile's trip shape: a loop that reliably
// runs to its bound gets the Stealing schedule (contiguous blocks,
// contention only on imbalance); anything else keeps Dynamic
// self-scheduling, whose eager issue wastes the least work near an
// early exit.
func Decide(prof Profile, haveProfile bool, remaining, procs int, needsSpec bool) Plan {
	if procs <= 1 {
		return Plan{Engine: Sequential}
	}
	if remaining < 2*procs && remaining < 64 {
		return Plan{Engine: Sequential}
	}
	if haveProfile && prof.Runs >= 1 && prof.ViolationRate >= 0.5 && needsSpec {
		return Plan{Engine: Sequential}
	}
	schedule := sched.Dynamic
	if haveProfile && prof.Runs >= 2 && prof.TripFraction >= 0.95 {
		schedule = sched.Stealing
	}
	if !needsSpec {
		return Plan{Engine: DOALL, Schedule: schedule}
	}
	engine := Speculative
	window := 1
	tier := DecideTier(prof, haveProfile, schedule)
	if tier > 0 {
		// A tiered run stays on the stripped engine: the pipelined
		// engine only speaks the element-wise protocol, and shedding
		// the shadows beats hiding them behind the next strip.
		strip := AlignStrip(InitialStrip(prof, haveProfile, remaining, procs), procs)
		return Plan{Engine: Speculative, Schedule: schedule, Strip: strip, Window: window, Tier: tier}
	}
	if haveProfile && prof.Runs >= 1 && prof.ViolationRate <= 0.05 && prof.TripFraction >= 0.9 {
		engine = Pipelined
		window = 2
	}
	return Plan{Engine: engine, Schedule: schedule, Strip: InitialStrip(prof, haveProfile, remaining, procs), Window: window}
}

// Tier promotion thresholds, in consecutive clean speculative runs.
// Three clean runs buy the signature tier (a false positive there costs
// one strip re-run, so the bar is low); eight buy the trusted tier,
// whose audit misses cost a whole-range sequential re-execution and so
// demand a history long enough that the EWMA rates have converged.
const (
	Tier1Streak = 3
	Tier2Streak = 8
)

// sigBlock is the signature block grain the tiered engines hash at;
// strips and worker chunks aligned to it never alias across workers on
// contiguous schedules.
const sigBlock = 1 << sig.DefaultBlockShift

// DecideTier maps the profile to the validation tier a speculative run
// may start at.  The gate is deliberately conservative and, like
// Decide, fully deterministic:
//
//   - any tier above 0 requires an established clean profile (no
//     violation on the last run, a violation rate within the pipeline
//     threshold) *and* the Stealing schedule — contiguous per-worker
//     blocks are what keeps the block-granular signatures free of
//     false sharing; Dynamic's interleaved chunks would flag every
//     dense strip;
//   - Tier 1 (signatures) needs Tier1Streak consecutive clean runs;
//   - Tier 2 (shadow-free with sampled audits) needs Tier2Streak and a
//     near-full trip fraction, because its recovery path on a missed
//     exit or failed audit re-runs the whole range sequentially.
func DecideTier(prof Profile, haveProfile bool, schedule sched.Schedule) int {
	if !haveProfile || schedule != sched.Stealing {
		return 0
	}
	if prof.LastViolated || prof.ViolationRate > 0.05 {
		return 0
	}
	switch {
	case prof.CleanStreak >= Tier2Streak && prof.TripFraction >= 0.95:
		return 2
	case prof.CleanStreak >= Tier1Streak:
		return 1
	}
	return 0
}

// AlignStrip rounds a strip size up to a multiple of sigBlock*procs, so
// that under the Stealing schedule every worker's contiguous chunk
// starts and ends on a signature block boundary — adjacent workers then
// share no block, and a clean strip hashes clean instead of paying a
// false-positive re-run on every seam.  The orchestrator applies the
// same rounding when the caller pins a tier by hand.
func AlignStrip(s, procs int) int {
	if procs < 1 {
		procs = 1
	}
	grain := sigBlock * procs
	return (s + grain - 1) / grain * grain
}

// InitialStrip sizes the first speculative strip: the stripped engines'
// usual remaining/16 (clamped so every processor gets at least four
// iterations), quartered when the profile reports a violation-prone
// loop — a failed strip forfeits its whole parallel attempt, so prior
// failures argue for smaller bets.  The Tuner regrows it on clean
// streaks.
func InitialStrip(prof Profile, haveProfile bool, remaining, procs int) int {
	if procs < 1 {
		procs = 1
	}
	s := remaining / 16
	if min := 4 * procs; s < min {
		s = min
	}
	if s > remaining {
		s = remaining
	}
	if haveProfile && prof.ViolationRate > 0.25 {
		s /= 4
		if s < procs {
			s = procs
		}
	}
	if s < 1 {
		s = 1
	}
	return s
}
