package speculate

import (
	"context"
	"fmt"

	"whilepar/internal/cancel"
)

// StripController steers a tuned strip-mined execution.  It is defined
// structurally here (primitive-typed methods only) so the auto-tuner
// can implement it without this package importing it — the same
// inversion that keeps the cost model out of the engines.
//
// The engine calls NextStrip before launching each strip, Observe
// after each strip's verdict, and consults the two Switch methods at
// strip boundaries.  Both switches are monotone within a run: once
// either returns true it must keep returning true.
type StripController interface {
	// NextStrip returns the strip size to use for the strip starting
	// at iteration done of total.  Values are clamped to [1, total-done].
	NextStrip(done, total int) int
	// Observe reports the strip [lo, hi): valid iterations within it
	// and whether it committed cleanly (PD passed, no exception).
	Observe(lo, valid, hi int, committed bool)
	// SwitchPipeline asks to hand the remainder to the pipelined
	// engine (ignored while the speculation mode cannot be squashed —
	// sparse undo or privatized copies).
	SwitchPipeline() bool
	// SwitchSequential asks to finish the remainder sequentially.
	SwitchSequential() bool
}

// RunTunedCtx is RunStrippedCtx with the strip size, and the engine
// itself, under a controller's mid-run authority: each strip's size
// comes from ctl.NextStrip, each verdict feeds ctl.Observe, and at
// every strip boundary the controller may promote the remainder to the
// pipelined engine or demote it to sequential completion.  Iterations
// below start are treated as already committed (the orchestrator's
// sequential probe); stamps and PD marks carry global indices
// throughout, exactly as in RunStrippedCtx.
//
// The cancellation and panic contract is RunStrippedCtx's: committed
// strips are final, the failing strip is rewound via its checkpoint,
// and the typed error unwinds with the committed prefix in the report.
func RunTunedCtx(ctx context.Context, spec Spec, start, total int, ctl StripController, par StripPar, seq StripSeq) (StripReport, error) {
	if par == nil || seq == nil {
		return StripReport{}, fmt.Errorf("speculate: both strip runners are required")
	}
	if ctl == nil {
		return StripReport{}, fmt.Errorf("speculate: RunTuned requires a StripController")
	}
	if start < 0 {
		start = 0
	}
	procs := spec.Procs
	if procs < 1 {
		procs = 1
	}
	var rep StripReport
	rt := newTierRuntime(spec, procs, start, total, &rep)
	defer rt.release()
	// The pipeline hand-off double-buffers checkpoints; modes a squash
	// cannot erase stay on the stripped path regardless of what the
	// controller asks — and so do runs granted a tier above TierFull,
	// because the pipelined engine only speaks the element-wise
	// protocol.
	pipelineOK := !spec.SparseUndo && len(spec.Privatized) == 0 &&
		rt.chosen == TierFull

	for lo := start; lo < total; {
		if cerr := cancel.Err(ctx); cerr != nil {
			spec.Metrics.CtxCancel()
			return rep, cerr
		}
		strip := ctl.NextStrip(lo, total)
		if strip < 1 {
			strip = 1
		}
		hi := lo + strip
		if hi > total {
			hi = total
		}
		valid, committed, stop, err := rt.step(lo, hi, par, seq)
		if err != nil {
			return rep, err
		}
		ctl.Observe(lo, valid, hi, committed)
		if stop {
			return rep, nil
		}
		lo = hi
		if lo >= total {
			break
		}
		if ctl.SwitchSequential() {
			// The controller gave up on speculation: the committed
			// prefix is final, the remainder runs on this goroutine.
			// Its writes bypass the (released) checkpoint, which is
			// exactly the stripped protocol's sequential-fallback
			// contract.
			rep.SeqStrips++
			sv, sdone := seq(lo, total)
			rep.Valid += sv
			rep.Done = sdone
			return rep, nil
		}
		if pipelineOK && ctl.SwitchPipeline() {
			// Promote the remainder: the pipelined engine takes over
			// from the committed boundary with its own double-buffered
			// generations (full checkpoint of the post-prefix state on
			// priming).
			pstrip := ctl.NextStrip(lo, total)
			if pstrip < 1 {
				pstrip = 1
			}
			prep, perr := runStrippedPipelinedFrom(ctx, spec, lo, total, pstrip, par, seq)
			rep.Valid += prep.Valid
			rep.Strips += prep.Strips
			rep.SeqStrips += prep.SeqStrips
			rep.Undone += prep.Undone
			rep.PrefixCommitted += prep.PrefixCommitted
			rep.Overlapped += prep.Overlapped
			rep.Squashed += prep.Squashed
			rep.Done = prep.Done
			return rep, perr
		}
	}
	return rep, nil
}
