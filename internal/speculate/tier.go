package speculate

import (
	"fmt"
	"math/rand"

	"whilepar/internal/arena"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/pdtest"
	"whilepar/internal/sig"
	"whilepar/internal/tsmem"
)

// Tier selects how much dependence validation a strip-mined speculative
// execution pays.  The dial exists because once misspeculation is rare,
// the per-element shadow instrumentation — not the engine — dominates
// the parallel run's cost; a loop that has validated clean many times
// has earned the right to validate more cheaply.
//
//	TierFull       every access stamped and PD-marked; the element-wise
//	               oracle and the recovery path (the only tier that can
//	               partially commit a failed strip).
//	TierSignature  accesses marked into per-worker hash signatures
//	               (internal/sig) and stamped for undo, no PD marks;
//	               the post-barrier verdict is a pairwise signature
//	               intersection in O(signature size).  A flagged or
//	               partial strip is rewound and re-run under TierFull —
//	               a false positive costs one strip re-execution, never
//	               a wrong commit.
//	TierTrusted    shadow-free: strips run as uninstrumented DOALLs
//	               against the shared arrays, with a sampled audit strip
//	               (one in Spec.AuditEvery, re-armed under TierFull)
//	               continuously re-earning the trust.  A failed audit
//	               revokes it: the run rewinds to its entry state and
//	               completes sequentially — the exact sequential result.
//
// Demotion is engine-local and monotone: a real violation at
// TierSignature, or an audit failure at TierTrusted, drops the
// remainder of the run to TierFull.  Promotion only happens across
// runs, by autotune's clean-streak evidence.
type Tier int

const (
	// TierFull is the full element-wise shadow validation (Tier 0).
	TierFull Tier = iota
	// TierSignature validates by hash-signature intersection (Tier 1).
	TierSignature
	// TierTrusted runs shadow-free with sampled audits (Tier 2).
	TierTrusted
)

// String names the tier for reports and rendered metrics.
func (t Tier) String() string {
	switch t {
	case TierSignature:
		return "signature"
	case TierTrusted:
		return "trusted"
	}
	return "full"
}

// DefaultAuditEvery is the default Tier-2 audit sampling period: one
// strip in this many re-runs under the full shadow machinery.
const DefaultAuditEvery = 8

// sigTracker is the Tier-1 access path: signature marks for the
// post-barrier conflict verdict plus time stamps for the undo/write-set
// machinery — no per-element PD marks, which is the saving.  Shape and
// plumbing mirror fusedTracker.
type sigTracker struct {
	ts *tsmem.Memory
	sg *sig.Sigs
}

var (
	_ mem.Tracker      = (*sigTracker)(nil)
	_ mem.RangeTracker = (*sigTracker)(nil)
)

func (s *sigTracker) Load(a *mem.Array, idx, iter, vpn int) float64 {
	s.sg.MarkLoad(a, idx, iter, vpn)
	return s.ts.StampLoad(a, idx)
}

func (s *sigTracker) Store(a *mem.Array, idx int, v float64, iter, vpn int) {
	s.sg.MarkStore(a, idx, iter, vpn)
	s.ts.StampStore(a, idx, v, iter, vpn)
}

func (s *sigTracker) LoadRange(a *mem.Array, lo, hi int, dst []float64, iter, vpn int) {
	s.sg.MarkLoadRange(a, lo, hi, iter, vpn)
	s.ts.StampLoadRange(a, lo, hi, dst)
}

func (s *sigTracker) StoreRange(a *mem.Array, lo int, src []float64, iter, vpn int) {
	s.sg.MarkStoreRange(a, lo, lo+len(src), iter, vpn)
	s.ts.StampStoreRange(a, lo, src, iter, vpn)
}

// newTracker is newMemory's twin for the validation side: it builds the
// signature set the spec's tier needs over every array the loop
// touches.  Returns nil below TierSignature.
func (s Spec) newTracker(procs int) *sig.Sigs {
	arrs := append([]*mem.Array(nil), s.Shared...)
	for _, a := range s.Tested {
		dup := false
		for _, b := range arrs {
			if a == b {
				dup = true
				break
			}
		}
		if !dup {
			arrs = append(arrs, a)
		}
	}
	return sig.New(procs, arrs, s.Sig)
}

// tierRuntime is the strip-verdict state machine shared by the stripped
// and tuned engines: one instance per run owns the undo memory, the PD
// tests, the signatures and (at TierTrusted) the run-entry backup, and
// executes each strip under the current tier.  The engines keep only
// their scheduling around it.
type tierRuntime struct {
	spec  Spec
	mx    *obs.Metrics
	tr    obs.Tracer
	ts    *tsmem.Memory
	tests []*pdtest.Test
	fused *fusedTracker
	sg    *sig.Sigs
	sigTr *sigTracker

	// chosen is the tier granted at entry (after clamping); current
	// only ever moves down from it.
	chosen, current Tier

	// backup holds run-entry raw copies of the shared arrays — the only
	// rewind TierTrusted's uninstrumented strips have.
	backup [][]float64

	start, total           int
	auditEvery, auditPhase int
	stripIdx               int

	// pending carries the previous strip's write-set so Rearm can
	// refresh the checkpoint incrementally — O(strip writes) instead of
	// O(n) per strip.  nil forces a full Checkpoint (first strip, and
	// after any untracked writes: sequential fallbacks, direct strips).
	pending [][]int

	// lastPDFail records whether the most recent stepFull verdict
	// failed its PD analysis (vs an exception) — the demotion trigger.
	lastPDFail bool

	rep *StripReport
}

// newTierRuntime builds the run's validation state.  Tiers above
// TierFull are clamped away when the speculation mode needs the full
// shadow machinery: sparse undo logs and privatized copies both hang
// off the element-wise paths.
func newTierRuntime(spec Spec, procs, start, total int, rep *StripReport) *tierRuntime {
	tier := spec.Tier
	if tier < TierFull || tier > TierTrusted ||
		spec.SparseUndo || len(spec.Privatized) > 0 {
		tier = TierFull
	}
	r := &tierRuntime{
		spec: spec, mx: spec.Metrics, tr: spec.Tracer,
		chosen: tier, current: tier,
		start: start, total: total,
		rep: rep,
	}
	r.ts = spec.newMemory(procs)
	r.ts.SetObs(r.mx, r.tr)
	for _, a := range spec.Tested {
		t := pdtest.New(a, procs)
		t.SetObs(r.mx, r.tr)
		r.tests = append(r.tests, t)
	}
	r.fused = newFusedTracker(r.ts, r.tests)
	if tier >= TierSignature {
		r.sg = spec.newTracker(procs)
		r.sigTr = &sigTracker{ts: r.ts, sg: r.sg}
	}
	if tier == TierTrusted {
		r.auditEvery = spec.AuditEvery
		if r.auditEvery < 1 {
			r.auditEvery = DefaultAuditEvery
		}
		if spec.AuditPhase > 0 {
			r.auditPhase = (spec.AuditPhase - 1) % r.auditEvery
		} else {
			r.auditPhase = rand.Intn(r.auditEvery)
		}
		for _, a := range spec.Shared {
			b := arena.Float64s(a.Len())
			copy(b, a.Data)
			r.backup = append(r.backup, b)
		}
	}
	rep.Tier = tier
	return r
}

// release returns every pooled buffer.  The runtime must not be used
// afterwards.
func (r *tierRuntime) release() {
	r.ts.Release()
	for _, t := range r.tests {
		t.Release()
	}
	if r.sg != nil {
		r.sg.Release()
	}
	for _, b := range r.backup {
		arena.PutFloat64s(b)
	}
	r.backup = nil
}

// demote drops the remainder of the run to the full shadow tier after a
// real violation or audit failure.
func (r *tierRuntime) demote() {
	if r.current == TierFull {
		return
	}
	r.current = TierFull
	r.rep.TierDemoted = true
	r.mx.TierDemotion()
}

// restoreBackup rewinds the shared arrays to the run's entry state —
// TierTrusted's only rewind — and voids the incremental-checkpoint
// premise (the restore bypasses the tracker).
func (r *tierRuntime) restoreBackup() {
	for i, a := range r.spec.Shared {
		copy(a.Data, r.backup[i])
	}
	r.ts.InvalidateCheckpoint()
	r.pending = nil
}

// step executes one strip [lo, hi) under the current tier and settles
// its verdict: valid iterations credited (already added to the report),
// whether the strip committed speculatively, and whether the engine
// must stop (loop terminated, whole-range fallback completed, or err).
// On a nil error the report's Valid/Done are up to date.
func (r *tierRuntime) step(lo, hi int, par StripPar, seq StripSeq) (valid int, committed, stop bool, err error) {
	r.rep.Strips++
	r.mx.SpecAttempt()
	r.stripIdx++
	stripStart := obs.Start(r.tr)
	switch r.current {
	case TierTrusted:
		valid, committed, stop, err = r.stepTrusted(lo, hi, par, seq)
	case TierSignature:
		valid, committed, stop, err = r.stepSignature(lo, hi, par, seq)
	default:
		valid, committed, stop, err = r.stepFull(lo, hi, par, seq)
	}
	if err != nil {
		return valid, committed, stop, err
	}
	if r.tr != nil {
		obs.Span(r.tr, stripStart, "strip", "speculate", 0, map[string]any{
			"lo": lo, "hi": hi, "valid": valid, "committed": committed, "tier": r.current.String()})
	}
	r.rep.Valid += valid
	return valid, committed, stop, nil
}

// stepFull is the Tier-0 strip protocol — the body RunStrippedCtx ran
// before the tiers existed, verbatim: re-arm, run under the fused
// element-wise tracker, analyze, then commit/recover/fall back.
func (r *tierRuntime) stepFull(lo, hi int, par StripPar, seq StripSeq) (int, bool, bool, error) {
	spec, ts, mx := r.spec, r.ts, r.mx
	r.lastPDFail = false
	ts.Rearm(r.pending)
	for _, t := range r.tests {
		t.Reset()
	}

	valid, done, err := par(r.fused, lo, hi)
	if spec.wantsUnwind(err) {
		mx.SpecAbort(fmt.Sprintf("strip [%d,%d) unwound: %v", lo, hi, err))
		if rerr := ts.RestoreAll(); rerr != nil {
			return 0, false, true, rerr
		}
		return 0, false, true, err
	}
	ok := err == nil && valid >= 0 && valid <= hi-lo
	firstViol := -1
	if ok {
		for _, t := range r.tests {
			// Iterations are stamped with their global indices.
			res := t.Analyze(lo + valid)
			if !res.DOALL {
				ok = false
				r.lastPDFail = true
				if res.FirstViolation >= 0 && (firstViol < 0 || res.FirstViolation < firstViol) {
					firstViol = res.FirstViolation
				}
			}
		}
	}
	if !ok {
		reason := fmt.Sprintf("strip [%d,%d) failed validation", lo, hi)
		if err != nil {
			reason = fmt.Sprintf("strip [%d,%d) exception: %v", lo, hi, err)
		}
		mx.SpecAbort(reason)
		if spec.Recovery.Enabled && err == nil && firstViol > lo {
			// Strip-local partial commit: keep the prefix below the
			// earliest violating iteration, rewind only the suffix,
			// and re-execute just [firstViol, hi) sequentially.
			restored, perr := ts.PartialCommit(firstViol)
			if perr != nil {
				return 0, false, true, perr
			}
			r.rep.Undone += restored
			r.rep.PrefixCommitted += firstViol - lo
			mx.PrefixCommittedAdd(firstViol - lo)
			mx.RespecRound()
			r.rep.SeqStrips++
			sv, sdone := seq(firstViol, hi)
			valid, done = (firstViol-lo)+sv, sdone
		} else {
			if rerr := ts.RestoreAll(); rerr != nil {
				return 0, false, true, rerr
			}
			r.rep.SeqStrips++
			valid, done = seq(lo, hi)
		}
		// The sequential runner wrote the arrays directly, invisibly
		// to the write-set journals: the incremental checkpoint
		// premise is gone until the next full Checkpoint.
		ts.InvalidateCheckpoint()
		r.pending = nil
	} else {
		// What this strip wrote is exactly what the next strip's
		// checkpoint must refresh.  (Undo restores some of those
		// locations to their checkpoint values; re-copying them is
		// merely redundant, not wrong.)
		r.pending = ts.WriteSet()
		if valid < hi-lo || done {
			// Undo the strip's overshoot (stamps carry global indices).
			undone, uerr := ts.Undo(lo + valid)
			if uerr != nil {
				return 0, false, true, uerr
			}
			r.rep.Undone += undone
			done = true
		}
	}
	if ok {
		mx.SpecCommit()
	}
	if done {
		r.rep.Done = true
	}
	return valid, ok, done, nil
}

// stepSignature is the Tier-1 strip protocol: run under the signature
// tracker, settle the strip by pairwise intersection, and hand anything
// the cheap verdict cannot commit — a flagged strip, or a partial strip
// whose overshoot undo needs the element-wise stamps' exactness — back
// to stepFull after a rewind.
func (r *tierRuntime) stepSignature(lo, hi int, par StripPar, seq StripSeq) (int, bool, bool, error) {
	spec, ts, mx := r.spec, r.ts, r.mx
	ts.Rearm(r.pending)
	r.sg.Reset()

	valid, done, err := par(r.sigTr, lo, hi)
	if spec.wantsUnwind(err) {
		mx.SpecAbort(fmt.Sprintf("strip [%d,%d) unwound: %v", lo, hi, err))
		if rerr := ts.RestoreAll(); rerr != nil {
			return 0, false, true, rerr
		}
		return 0, false, true, err
	}
	if err == nil && valid >= 0 && valid <= hi-lo {
		mx.SigValidation()
		flagged := r.sg.Conflict()
		if flagged {
			mx.SigConflict()
		}
		if !flagged && valid == hi-lo {
			// Clean full strip: commit on the signature verdict alone.
			r.pending = ts.WriteSet()
			mx.SpecCommit()
			if done {
				r.rep.Done = true
			}
			return valid, true, done, nil
		}
		// Flagged, or partial (a signature-clean strip can still hold
		// same-worker output dependences inside the undone suffix, so
		// Undo needs the element-wise stamps): rewind and re-run the
		// strip under the Tier-0 oracle.
		if rerr := ts.RestoreAll(); rerr != nil {
			return 0, false, true, rerr
		}
		r.pending = nil // the signature run's write-set is void
		fv, fcommitted, fstop, ferr := r.stepFull(lo, hi, par, seq)
		if ferr == nil && flagged && fcommitted {
			// The oracle found the strip clean: hash aliasing, not a
			// dependence.  One strip re-execution was the entire cost.
			r.rep.SigFalsePositives++
			mx.SigFalsePositive()
		}
		if ferr == nil && r.lastPDFail {
			// A real violation hid under the signatures' grain — the
			// loop is not as clean as its streak claimed.
			r.demote()
		}
		return fv, fcommitted, fstop, ferr
	}
	// Exception (or out-of-range valid): Tier 0's strip-local fallback.
	reason := fmt.Sprintf("strip [%d,%d) failed validation", lo, hi)
	if err != nil {
		reason = fmt.Sprintf("strip [%d,%d) exception: %v", lo, hi, err)
	}
	mx.SpecAbort(reason)
	if rerr := ts.RestoreAll(); rerr != nil {
		return 0, false, true, rerr
	}
	r.rep.SeqStrips++
	valid, done = seq(lo, hi)
	ts.InvalidateCheckpoint()
	r.pending = nil
	if done {
		r.rep.Done = true
	}
	return valid, false, done, nil
}

// stepTrusted is the Tier-2 strip protocol: most strips run as
// uninstrumented DOALLs (nil tracker — the same direct access a loop
// with compile-time-provable independence would use); one strip in
// auditEvery re-runs the full machinery to re-earn the trust.  Direct
// strips have no per-strip rewind, so every failure mode that Tier 0
// would fix locally — exception, mid-strip termination overshoot —
// rewinds to the run-entry backup and completes the whole range
// sequentially: the exact sequential result, at the price of the run.
func (r *tierRuntime) stepTrusted(lo, hi int, par StripPar, seq StripSeq) (int, bool, bool, error) {
	if (r.stripIdx-1)%r.auditEvery == r.auditPhase {
		return r.stepAudit(lo, hi, par, seq)
	}
	spec, mx := r.spec, r.mx
	valid, done, err := par(nil, lo, hi)
	if spec.wantsUnwind(err) {
		mx.SpecAbort(fmt.Sprintf("strip [%d,%d) unwound: %v", lo, hi, err))
		// The run-entry backup is the only rewind, and it also erases
		// the strips already committed this run: the committed-prefix
		// contract holds with an empty prefix.
		r.restoreBackup()
		r.rep.Valid = 0
		return 0, false, true, err
	}
	if err == nil && valid == hi-lo {
		mx.SpecCommit()
		if done {
			r.rep.Done = true
		}
		return valid, true, done, nil
	}
	// Exception or mid-strip termination: the overshoot iterations
	// wrote directly with nothing to undo them.
	reason := fmt.Sprintf("trusted strip [%d,%d) terminated mid-strip", lo, hi)
	if err != nil {
		reason = fmt.Sprintf("trusted strip [%d,%d) exception: %v", lo, hi, err)
	}
	mx.SpecAbort(reason)
	return r.seqWholeRange(seq)
}

// stepAudit is one sampled Tier-2 audit: the strip re-armed under the
// full shadow machinery.  A pass (with its exact overshoot undo)
// re-earns the trust; a PD failure revokes it — everything the
// shadow-free strips committed since run entry is suspect, so the run
// rewinds to its backup and completes sequentially.
func (r *tierRuntime) stepAudit(lo, hi int, par StripPar, seq StripSeq) (int, bool, bool, error) {
	spec, ts, mx := r.spec, r.ts, r.mx
	r.rep.AuditRuns++
	mx.AuditRun()
	// Direct strips bypassed the tracker since the last audit: the
	// incremental-checkpoint premise is void, take a full checkpoint.
	ts.InvalidateCheckpoint()
	ts.Rearm(nil)
	for _, t := range r.tests {
		t.Reset()
	}

	valid, done, err := par(r.fused, lo, hi)
	if spec.wantsUnwind(err) {
		mx.SpecAbort(fmt.Sprintf("audit strip [%d,%d) unwound: %v", lo, hi, err))
		// This strip has its own checkpoint; the direct strips before
		// it stand as the committed prefix.
		if rerr := ts.RestoreAll(); rerr != nil {
			return 0, false, true, rerr
		}
		return 0, false, true, err
	}
	ok := err == nil && valid >= 0 && valid <= hi-lo
	pdFailed := false
	if ok {
		for _, t := range r.tests {
			if !t.Analyze(lo + valid).DOALL {
				ok = false
				pdFailed = true
			}
		}
	}
	if pdFailed {
		r.rep.AuditFailures++
		mx.AuditFailure()
		mx.SpecAbort(fmt.Sprintf("audit strip [%d,%d) failed validation", lo, hi))
		r.demote()
		return r.seqWholeRange(seq)
	}
	if !ok {
		// Exception or out-of-range valid: strip-local fallback under
		// the audit's own checkpoint, exactly Tier 0's.
		mx.SpecAbort(fmt.Sprintf("audit strip [%d,%d) exception: %v", lo, hi, err))
		if rerr := ts.RestoreAll(); rerr != nil {
			return 0, false, true, rerr
		}
		r.rep.SeqStrips++
		valid, done = seq(lo, hi)
		ts.InvalidateCheckpoint()
		r.pending = nil
		if done {
			r.rep.Done = true
		}
		return valid, false, done, nil
	}
	if valid < hi-lo || done {
		undone, uerr := ts.Undo(lo + valid)
		if uerr != nil {
			return 0, false, true, uerr
		}
		r.rep.Undone += undone
		done = true
	}
	mx.SpecCommit()
	if done {
		r.rep.Done = true
	}
	return valid, true, done, nil
}

// seqWholeRange is TierTrusted's global fallback: rewind the shared
// arrays to the run's entry state and execute the engine's whole range
// sequentially.  The report's Valid is reset first — the backup restore
// erased the strips it counted — so the caller's += yields exactly the
// sequential pass's credit.
func (r *tierRuntime) seqWholeRange(seq StripSeq) (int, bool, bool, error) {
	r.restoreBackup()
	r.rep.Valid = 0
	r.rep.SeqStrips++
	sv, sdone := seq(r.start, r.total)
	if sdone {
		r.rep.Done = true
	}
	return sv, false, true, nil
}
