// Package speculate is the run-time engine for speculative parallel
// execution of WHILE loops with unknown cross-iteration dependences
// (Section 5): checkpoint the affected state, execute the loop in
// parallel under time-stamping, shadow marking and (optionally)
// privatization, then validate — undoing overshot iterations and
// committing on success, or restoring everything and re-executing the
// loop sequentially on failure (a failed PD test or an exception).
//
// The engine is method-agnostic: the caller supplies the parallel
// runner (built from internal/induction, internal/genrec, a strip-mined
// or windowed schedule, ...) and the sequential fallback; the engine
// owns the protocol around them.
package speculate

import (
	"context"
	"fmt"
	"sync/atomic"

	"whilepar/internal/cancel"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/pdtest"
	"whilepar/internal/priv"
	"whilepar/internal/sig"
	"whilepar/internal/tsmem"
)

// PrivSpec names an array to privatize for the speculative run.
type PrivSpec struct {
	Arr *mem.Array
	// CopyIn initializes private copies from the shared array.
	CopyIn bool
	// Live requests last-value copy-out after a valid run.
	Live bool
}

// Spec describes the speculative execution.
type Spec struct {
	// Procs is the number of virtual processors.
	Procs int
	// Shared lists the arrays the loop may write in place; they are
	// checkpointed and their stores time-stamped so overshoot can be
	// undone.  Privatized arrays must NOT be listed here — the shared
	// original is their backup.
	Shared []*mem.Array
	// Tested lists the arrays whose dependence structure is unknown;
	// each gets a PD test.
	Tested []*mem.Array
	// Privatized lists arrays executed against private per-processor
	// copies.
	Privatized []PrivSpec
	// StampThreshold enables Section 8.1 statistics-enhanced stamping
	// (iterations below it are not stamped).
	StampThreshold int
	// SparseUndo selects the hash-table undo scheme of Section 4 for
	// arrays with sparse access patterns: instead of cloning whole
	// arrays and keeping a stamp per element, the overwritten value and
	// writing iteration are saved per *touched* location.  Memory is
	// proportional to the accesses, not the array extents.  Incompatible
	// with StampThreshold (every store must be logged).
	SparseUndo bool
	// Journal selects the dense undo memory's first-touch bookkeeping
	// layout: the packed block-journal default (tsmem.JournalBlock,
	// zero value) or the element-journal oracle (tsmem.JournalElement).
	// Benchmarks A/B the two; production callers leave it zero.
	Journal tsmem.Journal
	// Tier selects the strip engines' validation dial (see Tier): the
	// full element-wise shadow oracle (zero value), Tier-1 hash-
	// signature validation, or Tier-2 shadow-free trusted execution
	// with sampled audits.  Modes that need the element-wise machinery
	// (SparseUndo, Privatized) clamp it back to TierFull, and the
	// plain, windowed and pipelined engines always run TierFull.
	Tier Tier
	// Sig sizes the Tier-1 signatures (zero value selects defaults).
	Sig sig.Config
	// AuditEvery is the Tier-2 audit sampling period: one strip in this
	// many re-runs under the full machinery (0 = DefaultAuditEvery).
	AuditEvery int
	// AuditPhase pins which strip of each audit period is sampled:
	// 0 picks a random phase per run; n > 0 audits phase
	// (n-1) % AuditEvery deterministically (for tests).
	AuditPhase int
	// Recovery configures partial-commit misspeculation recovery: on a
	// failed PD test the valid prefix below the first violating
	// iteration is kept, only the suffix's stamped stores are undone,
	// and execution resumes from the violation point instead of
	// restarting the whole loop.  See the Recovery type.
	Recovery Recovery
	// PanicFallback, when set, treats a contained worker panic
	// (cancel.ErrWorkerPanic from the parallel runner) like any other
	// exception: restore the checkpoint and re-execute sequentially.
	// When unset (the default) the engine restores and returns the
	// panic error to the caller instead of silently absorbing it.
	// Cancellation (ErrCanceled/ErrDeadline) never triggers the
	// sequential fallback regardless of this flag.
	PanicFallback bool
	// Metrics, if non-nil, accumulates speculation attempts/commits/
	// aborts, stamped stores, undo counts and PD verdicts; Tracer, if
	// non-nil, receives the corresponding events.  Both propagate to
	// the undo memory and the PD tests.
	Metrics *obs.Metrics
	Tracer  obs.Tracer
}

// newMemory builds the spec's dense undo memory over its shared arrays
// with the selected journal layout — the one constructor every engine
// (plain, stripped, windowed, pipelined, recovery, tuned) funnels
// through, so the whilebench -journal A/B flag reaches them all.
func (s Spec) newMemory(procs int) *tsmem.Memory {
	return tsmem.NewShardedJournal(procs, s.Journal, s.Shared...)
}

// wantsUnwind reports whether err must bypass the sequential fallback
// and unwind to the caller after a restore: cancellation always does,
// and a contained worker panic does unless spec.PanicFallback routes it
// through the exception path.
func (s Spec) wantsUnwind(err error) bool {
	if err == nil {
		return false
	}
	if cancel.IsCancel(err) {
		return true
	}
	return cancel.IsPanic(err) && !s.PanicFallback
}

// ParallelRunner executes the loop in parallel using the supplied
// tracker for every managed-memory access, and returns the number of
// valid iterations it determined (e.g. via Induction-1's minimum
// reduction).  A returned error is treated like an exception: the
// parallel execution is abandoned and the loop re-executed
// sequentially.
type ParallelRunner func(tracker mem.Tracker) (valid int, err error)

// SequentialRunner re-executes the original loop sequentially against
// the (restored) shared state and returns the number of valid
// iterations.
type SequentialRunner func() int

// Report describes what the engine did.
type Report struct {
	// Valid is the final number of valid iterations.
	Valid int
	// UsedParallel is true if the speculative parallel execution was
	// kept; false if the loop was re-executed sequentially.
	UsedParallel bool
	// Failure explains a sequential fallback ("" if none).
	Failure string
	// PD holds the per-tested-array verdicts (index-aligned with
	// Spec.Tested).
	PD []pdtest.Result
	// Undone is the number of memory locations restored by the
	// overshoot undo (including suffix-only undos during recovery).
	Undone int
	// CopiedOut counts last-value copy-out elements.
	CopiedOut int
	// RespecRounds counts renewed attempts after partial commits (0 on
	// the classic all-or-nothing path).
	RespecRounds int
	// PrefixCommitted is the number of iterations salvaged from failed
	// speculative executions by partial commits.
	PrefixCommitted int
}

// Run executes the speculation protocol.  It is RunCtx under
// context.Background(); use RunCtx for cancellation and deadlines.
func Run(spec Spec, par ParallelRunner, seq SequentialRunner) (Report, error) {
	return RunCtx(context.Background(), spec, par, seq)
}

// RunCtx executes the speculation protocol under a context.  Once ctx
// is done the engine stops before starting the parallel attempt — or,
// when the runner itself surfaces a cancellation error, restores the
// checkpoint — and returns ErrCanceled/ErrDeadline.  Cancellation never
// triggers the sequential fallback: the caller asked to stop, not to
// finish another way.  A contained worker panic
// (cancel.ErrWorkerPanic) is restored and returned, unless
// Spec.PanicFallback routes it through the exception path like any
// other runner error.
func RunCtx(ctx context.Context, spec Spec, par ParallelRunner, seq SequentialRunner) (Report, error) {
	if par == nil || seq == nil {
		return Report{}, fmt.Errorf("speculate: both parallel and sequential runners are required")
	}
	procs := spec.Procs
	if procs < 1 {
		procs = 1
	}
	if spec.SparseUndo && spec.StampThreshold > 0 {
		return Report{}, fmt.Errorf("speculate: SparseUndo is incompatible with a stamp threshold")
	}
	if err := cancel.Err(ctx); err != nil {
		spec.Metrics.CtxCancel()
		return Report{}, err
	}

	mx, tr := spec.Metrics, spec.Tracer
	mx.SpecAttempt()
	specStart := obs.Start(tr)

	// Tb: checkpoint the in-place arrays — or, with SparseUndo, defer
	// to first-touch logging (no up-front copies at all).
	var undoer interface {
		Tracker() mem.Tracker
	}
	ts := spec.newMemory(procs)
	ts.SetObs(mx, tr)
	var sp *tsmem.SparseMemory
	if spec.SparseUndo {
		sp = tsmem.NewSparseSharded(procs)
		sp.SetObs(mx, tr)
		undoer = sp
	} else {
		ts.Checkpoint()
		ts.SetStampThreshold(spec.StampThreshold)
		undoer = ts
	}

	// Shadow structures for the PD tests.
	var tests []*pdtest.Test
	var observers []mem.Observer
	for _, a := range spec.Tested {
		t := pdtest.New(a, procs)
		t.SetObs(mx, tr)
		tests = append(tests, t)
		observers = append(observers, t.Observer())
	}
	defer func() {
		ts.Release()
		for _, t := range tests {
			t.Release()
		}
	}()

	// Privatized arrays: redirect through private copies; the undo
	// tracker remains the sink for everything else.
	var sink mem.Tracker = undoer.Tracker()
	var privs []*priv.Private
	for _, ps := range spec.Privatized {
		p := priv.New(ps.Arr, procs, priv.Options{CopyIn: ps.CopyIn, Live: ps.Live})
		privs = append(privs, p)
		sink = p.Tracker(sink)
	}
	tracker := mem.Tracker(mem.Chain{Observers: observers, Sink: sink})
	if len(observers) == 0 {
		tracker = sink
	}
	if sp == nil && len(privs) == 0 {
		// Devirtualized fast path: identical semantics to the chain
		// above (shadow marks first, stamp sink second), without the
		// per-access interface dispatch per layer.
		tracker = newFusedTracker(ts, tests)
	}

	restore := func() error {
		if sp != nil {
			sp.RestoreAll()
			return nil
		}
		if err := ts.RestoreAll(); err != nil {
			return fmt.Errorf("speculate: restore failed: %w", err)
		}
		return nil
	}
	fallback := func(reason string) (Report, error) {
		mx.SpecAbort(reason)
		if tr != nil {
			obs.Instant(tr, "spec-abort", "speculate", 0, map[string]any{"reason": reason})
		}
		if err := restore(); err != nil {
			return Report{}, err
		}
		valid := seq()
		return Report{Valid: valid, Failure: reason, PD: snapshots(tests, valid)}, nil
	}

	valid, err := par(tracker)
	if spec.wantsUnwind(err) {
		// Cancellation (or a panic the caller wants surfaced): restore
		// everything the attempt wrote and hand the typed error up —
		// no sequential fallback.
		reason := fmt.Sprintf("parallel execution unwound: %v", err)
		mx.SpecAbort(reason)
		if tr != nil {
			obs.Instant(tr, "spec-abort", "speculate", 0, map[string]any{"reason": reason})
		}
		if rerr := restore(); rerr != nil {
			return Report{}, rerr
		}
		return Report{Failure: reason}, err
	}
	if err != nil {
		// Exceptions are treated as an invalid parallel execution.
		return fallback(fmt.Sprintf("exception during parallel execution: %v", err))
	}
	if valid < 0 {
		return fallback(fmt.Sprintf("parallel runner reported invalid count %d", valid))
	}

	// Post-execution analysis: every tested array must pass — as a
	// plain DOALL if it was run in place, or as a privatized DOALL if
	// it was privatized.
	privSet := make(map[*mem.Array]bool, len(privs))
	for _, p := range privs {
		privSet[p.Shared()] = true
	}
	var results []pdtest.Result
	failIdx, firstViol := -1, -1
	for i, t := range tests {
		r := t.Analyze(valid)
		results = append(results, r)
		ok := r.DOALL
		if privSet[t.Array()] {
			ok = r.DOALLWithPriv
		}
		if !ok {
			if failIdx < 0 {
				failIdx = i
			}
			if r.FirstViolation >= 0 && (firstViol < 0 || r.FirstViolation < firstViol) {
				firstViol = r.FirstViolation
			}
		}
	}
	if failIdx >= 0 {
		reason := fmt.Sprintf("PD test failed on array %q", spec.Tested[failIdx].Name)
		// Partial-commit recovery: keep the prefix below the earliest
		// violating iteration, rewind only the suffix's stamped stores,
		// and complete the loop sequentially from the violation point.
		// Gated to the dense stamped path without privatization — the
		// sparse log and private copies have no per-location minimum
		// stamp to bound a partial rewind with.
		rec := spec.Recovery
		if rec.Enabled && rec.SeqFrom != nil && sp == nil && len(privs) == 0 && firstViol > 0 {
			if restored, perr := ts.PartialCommit(firstViol); perr == nil {
				mx.PrefixCommittedAdd(firstViol)
				if tr != nil {
					obs.Instant(tr, "partial-recovery", "speculate", 0, map[string]any{
						"reason": reason, "resumeAt": firstViol, "restored": restored,
					})
				}
				finalValid := rec.SeqFrom(firstViol)
				ts.Commit()
				mx.SpecCommit()
				if tr != nil {
					obs.Span(tr, specStart, "speculation", "speculate", 0, map[string]any{
						"valid": finalValid, "undone": restored, "prefixCommitted": firstViol,
					})
				}
				return Report{
					Valid: finalValid, UsedParallel: true, Failure: reason, PD: results,
					Undone: restored, PrefixCommitted: firstViol,
				}, nil
			}
			// PartialCommit refused (e.g. the violation fell below the
			// stamp threshold): the stamps needed for a suffix-only
			// rewind were never recorded — full fallback.
		}
		rep, ferr := fallback(reason)
		rep.PD = results
		return rep, ferr
	}

	// Valid speculation: undo overshoot, copy out privatized last
	// values, commit.
	var undone int
	if sp != nil {
		undone = sp.Undo(valid)
	} else {
		var err error
		undone, err = ts.Undo(valid)
		if err != nil {
			// The statistics-enhanced threshold was optimistic: stamps
			// for the overshoot region were never made.  Fall back.
			return fallback(fmt.Sprintf("undo impossible: %v", err))
		}
		ts.Commit()
	}
	copied := 0
	for _, p := range privs {
		copied += p.CopyOut(valid)
	}
	mx.SpecCommit()
	if tr != nil {
		obs.Span(tr, specStart, "speculation", "speculate", 0, map[string]any{"valid": valid, "undone": undone})
	}
	return Report{Valid: valid, UsedParallel: true, PD: results, Undone: undone, CopiedOut: copied}, nil
}

// snapshots analyzes all tests for reporting after a fallback (the
// verdicts are informational; state has already been restored, so the
// quiet variant keeps them out of the metrics).
func snapshots(tests []*pdtest.Test, valid int) []pdtest.Result {
	var out []pdtest.Result
	for _, t := range tests {
		out = append(out, t.AnalyzeQuiet(valid))
	}
	return out
}

// RunTwice implements Section 4's time-stamp-free alternative: run the
// parallel loop once (with writes, but no stamps) purely to learn the
// iteration count, restore the checkpoint, then run exactly the valid
// iterations as a plain DOALL.  It costs a second execution instead of
// per-write stamps.
//
// firstRun executes the full speculative space and returns the valid
// count; secondRun executes exactly [0, valid) with direct memory
// access.
func RunTwice(shared []*mem.Array, firstRun func() (int, error), secondRun func(valid int) error) (int, error) {
	return RunTwiceCtx(context.Background(), shared, 1, obs.Hooks{}, firstRun, secondRun)
}

// RunTwiceObs is RunTwice with observability hooks and a worker count
// for the checkpoint/restore copies: the discovery run counts as a
// speculation attempt, the re-execution as its commit.
func RunTwiceObs(shared []*mem.Array, procs int, h obs.Hooks, firstRun func() (int, error), secondRun func(valid int) error) (int, error) {
	return RunTwiceCtx(context.Background(), shared, procs, h, firstRun, secondRun)
}

// RunTwiceCtx is RunTwice under a context: a cancellation detected
// before the discovery run, or between the restore and the
// re-execution, returns ErrCanceled/ErrDeadline with the shared state
// restored to the checkpoint (valid count 0 — run-twice commits nothing
// until the second run completes).  Errors from either runner —
// including cancellation and contained panics the runners surface
// themselves — propagate unchanged after the restore.
func RunTwiceCtx(ctx context.Context, shared []*mem.Array, procs int, h obs.Hooks, firstRun func() (int, error), secondRun func(valid int) error) (int, error) {
	if err := cancel.Err(ctx); err != nil {
		h.M.CtxCancel()
		return 0, err
	}
	h.M.SpecAttempt()
	start := obs.Start(h.T)
	ts := tsmem.NewSharded(procs, shared...)
	ts.SetObs(h.M, h.T)
	defer ts.Release()
	ts.Checkpoint()
	valid, err := firstRun()
	if err != nil {
		h.M.SpecAbort(fmt.Sprintf("run-twice discovery failed: %v", err))
		if rerr := ts.RestoreAll(); rerr != nil {
			return 0, rerr
		}
		return 0, err
	}
	if err := ts.RestoreAll(); err != nil {
		return 0, err
	}
	if err := cancel.Err(ctx); err != nil {
		// The discovery writes are already rewound; skipping the
		// re-execution leaves the loop exactly un-run.
		h.M.CtxCancel()
		h.M.SpecAbort("run-twice canceled before re-execution")
		return 0, err
	}
	if err := secondRun(valid); err != nil {
		h.M.SpecAbort(fmt.Sprintf("run-twice re-execution failed: %v", err))
		return 0, err
	}
	h.M.SpecCommit()
	if h.T != nil {
		obs.Span(h.T, start, "run-twice", "speculate", 0, map[string]any{"valid": valid})
	}
	return valid, nil
}

// ExceptionLog supports the exception-hazard handling of Section 5.1:
// loop bodies wrap risky work in Guard, which converts a panic into a
// recorded exception instead of crashing the worker; the parallel
// runner then reports an error, triggering the sequential fallback.
type ExceptionLog struct {
	n     atomic.Int64
	first atomic.Value // string
}

// Guard runs f, recovering a panic into the log.  It returns true if f
// completed normally.
func (e *ExceptionLog) Guard(f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.n.Add(1)
			e.first.CompareAndSwap(nil, fmt.Sprint(r))
			ok = false
		}
	}()
	f()
	return true
}

// Count returns the number of exceptions recorded.
func (e *ExceptionLog) Count() int { return int(e.n.Load()) }

// Err returns an error describing the first exception, or nil.
func (e *ExceptionLog) Err() error {
	if e.Count() == 0 {
		return nil
	}
	return fmt.Errorf("speculate: %d exception(s), first: %v", e.Count(), e.first.Load())
}
