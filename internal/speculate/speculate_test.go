package speculate

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

// parallelLoop runs a simple DOALL over n iterations with the given
// per-iteration access function and exit index, returning the valid
// count the way an induction-method runner would.
func parallelLoop(n, procs, exit int, access func(tr mem.Tracker, i, vpn int)) ParallelRunner {
	return func(tr mem.Tracker) (int, error) {
		res := sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
			if i == exit {
				return sched.Quit
			}
			access(tr, i, vpn)
			return sched.Continue
		})
		return res.QuitIndex, nil
	}
}

func TestIndependentLoopPassesAndCommits(t *testing.T) {
	n := 100
	a := mem.NewArray("A", n)
	spec := Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}}
	rep, err := Run(spec,
		parallelLoop(n, 4, -1, func(tr mem.Tracker, i, vpn int) {
			tr.Store(a, i, float64(i), i, vpn)
		}),
		func() int { t.Fatal("sequential fallback must not run"); return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedParallel || rep.Valid != n || rep.Failure != "" {
		t.Fatalf("report %+v", rep)
	}
	if len(rep.PD) != 1 || !rep.PD[0].DOALL {
		t.Fatalf("PD verdicts %+v", rep.PD)
	}
	for i := 0; i < n; i++ {
		if a.Data[i] != float64(i) {
			t.Fatalf("A[%d] = %v", i, a.Data[i])
		}
	}
}

func TestDependentLoopFallsBackSequentially(t *testing.T) {
	// Flow dependence A[i] = A[i-1] + 1: speculation must fail, state
	// must be restored, and the sequential execution must produce the
	// correct prefix sums.
	n := 50
	a := mem.NewArray("A", n)
	spec := Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}}
	rep, err := Run(spec,
		parallelLoop(n, 4, -1, func(tr mem.Tracker, i, vpn int) {
			prev := 0.0
			if i > 0 {
				prev = tr.Load(a, i-1, i, vpn)
			}
			tr.Store(a, i, prev+1, i, vpn)
		}),
		func() int {
			for i := 0; i < n; i++ {
				prev := 0.0
				if i > 0 {
					prev = a.Data[i-1]
				}
				a.Data[i] = prev + 1
			}
			return n
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedParallel {
		t.Fatal("dependent loop must not keep the parallel result")
	}
	if !strings.Contains(rep.Failure, "PD test failed") {
		t.Fatalf("failure = %q", rep.Failure)
	}
	for i := 0; i < n; i++ {
		if a.Data[i] != float64(i+1) {
			t.Fatalf("sequential re-execution wrong: A[%d] = %v", i, a.Data[i])
		}
	}
}

func TestOvershootUndoneOnSuccess(t *testing.T) {
	// RV exit at 30 of 100: iterations beyond 30 wrote speculatively
	// and must be restored; the PD test passes (independent accesses).
	n := 100
	a := mem.NewArray("A", n)
	for i := range a.Data {
		a.Data[i] = -5
	}
	spec := Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}}
	// Induction-1 style runner: the full space executes speculatively
	// (guaranteeing overshoot), the exit found by the post-loop minimum.
	rep, err := Run(spec,
		func(tr mem.Tracker) (int, error) {
			sched.DOALL(n, sched.Options{Procs: 4}, func(i, vpn int) sched.Control {
				if i != 30 {
					tr.Store(a, i, float64(i), i, vpn)
				}
				return sched.Continue
			})
			return 30, nil
		},
		func() int { t.Fatal("must not fall back"); return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedParallel || rep.Valid != 30 {
		t.Fatalf("report %+v", rep)
	}
	for i := 0; i < 30; i++ {
		if a.Data[i] != float64(i) {
			t.Fatalf("valid write lost at %d", i)
		}
	}
	for i := 30; i < n; i++ {
		if a.Data[i] != -5 {
			t.Fatalf("overshoot not undone at %d: %v", i, a.Data[i])
		}
	}
	if rep.Undone == 0 {
		t.Fatal("report should count undone locations")
	}
}

func TestPrivatizationValidatesOutputDeps(t *testing.T) {
	// Every iteration writes tmp[0] then reads it: output dependences
	// only.  Unprivatized this fails; privatized it passes, and the
	// live value copy-out delivers the last valid iteration's write.
	n := 40
	tmp := mem.NewArray("tmp", 1)
	sum := mem.NewArray("sum", n)
	runSpec := func(spec Spec) (Report, bool) {
		fallback := false
		rep, err := Run(spec,
			parallelLoop(n, 4, -1, func(tr mem.Tracker, i, vpn int) {
				tr.Store(tmp, 0, float64(i*2), i, vpn)
				v := tr.Load(tmp, 0, i, vpn)
				tr.Store(sum, i, v, i, vpn)
			}),
			func() int {
				fallback = true
				for i := 0; i < n; i++ {
					tmp.Data[0] = float64(i * 2)
					sum.Data[i] = tmp.Data[0]
				}
				return n
			})
		if err != nil {
			t.Fatal(err)
		}
		return rep, fallback
	}

	// Without privatization: PD fails on tmp.
	rep, fb := runSpec(Spec{Procs: 4, Shared: []*mem.Array{tmp, sum}, Tested: []*mem.Array{tmp, sum}})
	if rep.UsedParallel || !fb {
		t.Fatalf("unprivatized run should fall back: %+v", rep)
	}

	// With tmp privatized and live: parallel run survives.
	tmp2 := mem.NewArray("tmp", 1)
	sum2 := mem.NewArray("sum", n)
	rep2, err := Run(Spec{
		Procs:      4,
		Shared:     []*mem.Array{sum2},
		Tested:     []*mem.Array{tmp2, sum2},
		Privatized: []PrivSpec{{Arr: tmp2, Live: true}},
	},
		parallelLoop(n, 4, -1, func(tr mem.Tracker, i, vpn int) {
			tr.Store(tmp2, 0, float64(i*2), i, vpn)
			v := tr.Load(tmp2, 0, i, vpn)
			tr.Store(sum2, i, v, i, vpn)
		}),
		func() int { t.Fatal("privatized run must not fall back"); return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.UsedParallel {
		t.Fatalf("report %+v", rep2)
	}
	for i := 0; i < n; i++ {
		if sum2.Data[i] != float64(i*2) {
			t.Fatalf("sum[%d] = %v", i, sum2.Data[i])
		}
	}
	// Last-value copy-out: tmp must hold the final iteration's write.
	if tmp2.Data[0] != float64((n-1)*2) {
		t.Fatalf("live copy-out = %v, want %v", tmp2.Data[0], float64((n-1)*2))
	}
	if rep2.CopiedOut != 1 {
		t.Fatalf("CopiedOut = %d", rep2.CopiedOut)
	}
}

func TestExceptionTriggersFallback(t *testing.T) {
	n := 20
	a := mem.NewArray("A", n)
	spec := Spec{Procs: 2, Shared: []*mem.Array{a}}
	seqRan := false
	rep, err := Run(spec,
		func(tr mem.Tracker) (int, error) {
			var ex ExceptionLog
			sched.DOALL(n, sched.Options{Procs: 2}, func(i, vpn int) sched.Control {
				ex.Guard(func() {
					if i == 7 {
						panic("simulated floating-point exception")
					}
					tr.Store(a, i, 1, i, vpn)
				})
				return sched.Continue
			})
			return n, ex.Err()
		},
		func() int {
			seqRan = true
			for i := 0; i < n; i++ {
				if i != 7 {
					a.Data[i] = 1
				}
			}
			return n
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedParallel || !seqRan {
		t.Fatalf("exception did not trigger fallback: %+v", rep)
	}
	if !strings.Contains(rep.Failure, "exception") {
		t.Fatalf("failure = %q", rep.Failure)
	}
}

func TestStampThresholdFallbackWhenPredictionWrong(t *testing.T) {
	// Threshold 50 but the loop exits at 10: stamps below 50 were never
	// made, so undo is impossible and the engine must fall back.
	n := 100
	a := mem.NewArray("A", n)
	spec := Spec{Procs: 2, Shared: []*mem.Array{a}, StampThreshold: 50}
	seqRan := false
	rep, err := Run(spec,
		parallelLoop(n, 2, 10, func(tr mem.Tracker, i, vpn int) {
			tr.Store(a, i, 9, i, vpn)
		}),
		func() int {
			seqRan = true
			for i := 0; i < 10; i++ {
				a.Data[i] = 9
			}
			return 10
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedParallel || !seqRan || rep.Valid != 10 {
		t.Fatalf("report %+v", rep)
	}
	// State must be exactly the sequential outcome.
	for i := 0; i < n; i++ {
		want := 0.0
		if i < 10 {
			want = 9
		}
		if a.Data[i] != want {
			t.Fatalf("A[%d] = %v, want %v", i, a.Data[i], want)
		}
	}
}

func TestRunRejectsMissingRunners(t *testing.T) {
	if _, err := Run(Spec{}, nil, nil); err == nil {
		t.Fatal("nil runners must be rejected")
	}
}

func TestRunTwice(t *testing.T) {
	n := 60
	a := mem.NewArray("A", n)
	exit := 25
	valid, err := RunTwice([]*mem.Array{a},
		func() (int, error) {
			// First pass: full speculative space, garbage past exit.
			res := sched.DOALL(n, sched.Options{Procs: 4}, func(i, vpn int) sched.Control {
				if i == exit {
					return sched.Quit
				}
				a.Data[i] = 999 // scratch values; restored afterwards
				return sched.Continue
			})
			return res.QuitIndex, nil
		},
		func(valid int) error {
			sched.DOALL(valid, sched.Options{Procs: 4}, func(i, vpn int) sched.Control {
				a.Data[i] = float64(i)
				return sched.Continue
			})
			return nil
		})
	if err != nil || valid != exit {
		t.Fatalf("valid=%d err=%v", valid, err)
	}
	for i := 0; i < n; i++ {
		want := 0.0
		if i < exit {
			want = float64(i)
		}
		if a.Data[i] != want {
			t.Fatalf("A[%d] = %v, want %v", i, a.Data[i], want)
		}
	}
	// First-run error restores and propagates.
	b := mem.NewArray("B", 4)
	b.Data[0] = 3
	_, err = RunTwice([]*mem.Array{b},
		func() (int, error) { b.Data[0] = 77; return 0, errors.New("boom") },
		func(int) error { t.Fatal("second run must not execute"); return nil })
	if err == nil || b.Data[0] != 3 {
		t.Fatalf("err=%v b=%v", err, b.Data[0])
	}
}

func TestExceptionLog(t *testing.T) {
	var e ExceptionLog
	if e.Err() != nil || e.Count() != 0 {
		t.Fatal("fresh log should be clean")
	}
	if ok := e.Guard(func() {}); !ok {
		t.Fatal("clean guard should return true")
	}
	if ok := e.Guard(func() { panic("x") }); ok {
		t.Fatal("panicking guard should return false")
	}
	e.Guard(func() { panic("y") })
	if e.Count() != 2 {
		t.Fatalf("Count = %d", e.Count())
	}
	if err := e.Err(); err == nil || !strings.Contains(err.Error(), "x") {
		t.Fatalf("Err = %v, want first exception preserved", err)
	}
}

// Failure injection: random iterations panic; the engine must always
// fall back and leave exactly the sequential state, never a corrupted
// mixture.
func TestRandomExceptionInjectionNeverCorruptsState(t *testing.T) {
	f := func(seed uint16, procsRaw uint8) bool {
		n := 120
		procs := int(procsRaw)%5 + 1
		panicAt := map[int]bool{
			int(seed) % n:       true,
			(int(seed) * 3) % n: true,
		}
		a := mem.NewArray("A", n)
		for i := range a.Data {
			a.Data[i] = -7
		}
		rep, err := Run(
			Spec{Procs: procs, Shared: []*mem.Array{a}},
			func(tr mem.Tracker) (int, error) {
				var ex ExceptionLog
				sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
					ex.Guard(func() {
						if panicAt[i] {
							panic("injected")
						}
						tr.Store(a, i, float64(i), i, vpn)
					})
					return sched.Continue
				})
				return n, ex.Err()
			},
			func() int {
				for i := 0; i < n; i++ {
					if !panicAt[i] {
						a.Data[i] = float64(i)
					}
				}
				return n
			},
		)
		if err != nil || rep.UsedParallel {
			return false
		}
		for i := 0; i < n; i++ {
			want := -7.0
			if !panicAt[i] {
				want = float64(i)
			}
			if a.Data[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSparseUndoPath(t *testing.T) {
	// The hash-table undo variant: a big, sparsely written array; the
	// overshoot is undone from first-touch logs without any up-front
	// checkpoint copies.
	n := 100_000
	a := mem.NewArray("A", n)
	for i := 0; i < n; i += 500 {
		a.Data[i] = -3
	}
	exit := 80
	spec := Spec{Procs: 4, Shared: []*mem.Array{a}, SparseUndo: true}
	rep, err := Run(spec,
		func(tr mem.Tracker) (int, error) {
			// Induction-1 style: every candidate runs; writes hit only
			// every 500th element.
			sched.DOALL(200, sched.Options{Procs: 4}, func(i, vpn int) sched.Control {
				if i != exit {
					tr.Store(a, i*500, float64(i), i, vpn)
				}
				return sched.Continue
			})
			return exit, nil
		},
		func() int { t.Fatal("must not fall back"); return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedParallel || rep.Valid != exit {
		t.Fatalf("report %+v", rep)
	}
	if rep.Undone != 200-exit-1 {
		t.Fatalf("undone = %d, want %d", rep.Undone, 200-exit-1)
	}
	for i := 0; i < 200; i++ {
		want := -3.0
		if i%1 == 0 && i < exit && i != exit {
			want = float64(i)
		}
		if i >= exit {
			want = -3.0
		}
		if a.Data[i*500] != want {
			t.Fatalf("A[%d] = %v, want %v", i*500, a.Data[i*500], want)
		}
	}
}

func TestSparseUndoFallbackRestores(t *testing.T) {
	n := 1000
	a := mem.NewArray("A", n)
	a.Data[7] = 42
	spec := Spec{Procs: 2, Shared: []*mem.Array{a}, SparseUndo: true, Tested: []*mem.Array{a}}
	rep, err := Run(spec,
		func(tr mem.Tracker) (int, error) {
			// A flow dependence: every iteration reads then rewrites A[7].
			sched.DOALL(50, sched.Options{Procs: 2}, func(i, vpn int) sched.Control {
				v := tr.Load(a, 7, i, vpn)
				tr.Store(a, 7, v+1, i, vpn)
				return sched.Continue
			})
			return 50, nil
		},
		func() int {
			for i := 0; i < 50; i++ {
				a.Data[7]++
			}
			return 50
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedParallel {
		t.Fatal("dependent loop kept parallel result")
	}
	if a.Data[7] != 92 {
		t.Fatalf("A[7] = %v, want 42 restored + 50 sequential increments", a.Data[7])
	}
}

func TestSparseUndoRejectsThreshold(t *testing.T) {
	spec := Spec{SparseUndo: true, StampThreshold: 5}
	if _, err := Run(spec,
		func(mem.Tracker) (int, error) { return 0, nil },
		func() int { return 0 }); err == nil {
		t.Fatal("SparseUndo + threshold must be rejected")
	}
}
