package speculate

import (
	"whilepar/internal/mem"
	"whilepar/internal/pdtest"
	"whilepar/internal/tsmem"
)

// fusedTracker is the devirtualized element fast path: where mem.Chain
// dispatches every access through one Observer interface call per PD
// test plus one Tracker interface call for the stamp sink, the fused
// tracker holds the concrete *pdtest.Test and *tsmem.Memory and calls
// their Mark*/Stamp* methods directly — the single interface dispatch
// left is the engine-to-tracker boundary itself, paid once per access
// (or once per strip on the range path) instead of once per layer.
//
// Semantics are identical to mem.Chain{Observers: tests, Sink:
// ts.Tracker()} by construction: observers first (shadow marking), sink
// second (stamp + write), same argument plumbing.  The Chain path is
// retained as the equivalence oracle (see fused_test.go).
type fusedTracker struct {
	tests []*pdtest.Test
	ts    *tsmem.Memory
}

var (
	_ mem.Tracker      = (*fusedTracker)(nil)
	_ mem.RangeTracker = (*fusedTracker)(nil)
)

func newFusedTracker(ts *tsmem.Memory, tests []*pdtest.Test) *fusedTracker {
	return &fusedTracker{tests: tests, ts: ts}
}

func (f *fusedTracker) Load(a *mem.Array, idx, iter, vpn int) float64 {
	for _, t := range f.tests {
		t.MarkLoad(a, idx, iter, vpn)
	}
	return f.ts.StampLoad(a, idx)
}

func (f *fusedTracker) Store(a *mem.Array, idx int, v float64, iter, vpn int) {
	for _, t := range f.tests {
		t.MarkStore(a, idx, iter, vpn)
	}
	f.ts.StampStore(a, idx, v, iter, vpn)
}

func (f *fusedTracker) LoadRange(a *mem.Array, lo, hi int, dst []float64, iter, vpn int) {
	for _, t := range f.tests {
		t.MarkLoadRange(a, lo, hi, iter, vpn)
	}
	f.ts.StampLoadRange(a, lo, hi, dst)
}

func (f *fusedTracker) StoreRange(a *mem.Array, lo int, src []float64, iter, vpn int) {
	for _, t := range f.tests {
		t.MarkStoreRange(a, lo, lo+len(src), iter, vpn)
	}
	f.ts.StampStoreRange(a, lo, src, iter, vpn)
}
