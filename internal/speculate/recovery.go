package speculate

import (
	"context"
	"fmt"

	"whilepar/internal/cancel"
	"whilepar/internal/costmodel"
	"whilepar/internal/obs"
	"whilepar/internal/pdtest"
)

// Recovery configures partial-commit misspeculation recovery.
//
// The classic protocol (Sections 4-5) treats a failed PD test as total
// failure: restore the checkpoint, re-execute the whole loop
// sequentially.  One late dependence violation then costs more than
// never having speculated.  Recovery instead exploits state the run
// already collected — the PD test knows the earliest iteration
// participating in any violated dependence (Result.FirstViolation), and
// the time-stamp memory can rewind just the stores of iterations at or
// beyond it (tsmem.PartialCommit) — to keep the valid prefix and resume
// from the violation point, re-speculating with an adaptively shrunk
// window that grows back on clean runs.
type Recovery struct {
	// Enabled turns the partial-commit path on.  Off, every engine
	// falls back to the all-or-nothing restore (the retained baseline).
	Enabled bool
	// MaxRounds bounds the number of renewed parallel attempts after
	// partial commits before the remainder of the loop is completed
	// sequentially.  <= 0 means DefaultMaxRespecRounds.
	MaxRounds int
	// Policy sizes the re-speculation windows (halve on violation,
	// double on clean run).  nil uses a fresh policy with engine
	// defaults; share one across executions to carry history.
	Policy *costmodel.RespecPolicy
	// SeqFrom completes the loop sequentially from the given iteration
	// against the current (partially committed) state, returning the
	// final global valid-iteration count.  Required by Run's recovery
	// path; the strip/window engines use their range runners instead.
	SeqFrom func(from int) int
}

// DefaultMaxRespecRounds bounds re-speculation when Recovery.MaxRounds
// is unset.
const DefaultMaxRespecRounds = 8

func (r Recovery) maxRounds() int {
	if r.MaxRounds > 0 {
		return r.MaxRounds
	}
	return DefaultMaxRespecRounds
}

// RecoveryReport describes a RunRecovering execution.
type RecoveryReport struct {
	// Valid is the global number of valid iterations.
	Valid int
	// Rounds counts windows that failed validation and triggered a
	// partial commit + re-speculation (or a sequential window).
	Rounds int
	// PrefixCommitted is the number of iterations salvaged from failed
	// windows by partial commits.
	PrefixCommitted int
	// Undone counts locations restored (suffix undos and overshoot).
	Undone int
	// SeqIters counts iterations executed by the sequential runner.
	SeqIters int
	// Done reports whether the termination condition was met within the
	// bound.
	Done bool
}

// RunRecovering is the adaptive partial-commit speculation engine: the
// iteration space is executed window by window (like RunStripped), but
// a failed PD test no longer forfeits the window.  The engine commits
// the prefix below the earliest violating iteration, rewinds only the
// suffix's stamped stores, and re-speculates from the violation point
// with a window the costmodel.RespecPolicy halves on every violation
// and doubles back on every clean run.  After Recovery.MaxRounds failed
// rounds the remainder runs sequentially.  With Recovery.Enabled false
// it degenerates to per-window all-or-nothing fallback (the baseline
// protocol, kept for comparison like tsmem.NewAtomic).
//
// RunRecovering is RunRecoveringCtx under context.Background().
func RunRecovering(spec Spec, total int, par StripPar, seq StripSeq) (RecoveryReport, error) {
	return RunRecoveringCtx(context.Background(), spec, total, par, seq)
}

// RunRecoveringCtx is the adaptive engine under a context.  The window
// boundary is the cancellation point: once ctx is done no further
// window starts and the report carries the committed position as Valid
// together with ErrCanceled/ErrDeadline.  A cancellation (or a
// contained panic with Spec.PanicFallback unset) surfaced by the window
// runner rewinds the current window before unwinding; neither triggers
// the sequential completion path.
func RunRecoveringCtx(ctx context.Context, spec Spec, total int, par StripPar, seq StripSeq) (RecoveryReport, error) {
	if par == nil || seq == nil {
		return RecoveryReport{}, fmt.Errorf("speculate: both strip runners are required")
	}
	if total < 0 {
		return RecoveryReport{}, fmt.Errorf("speculate: negative iteration bound %d", total)
	}
	procs := spec.Procs
	if procs < 1 {
		procs = 1
	}
	if spec.SparseUndo {
		return RecoveryReport{}, fmt.Errorf("speculate: RunRecovering requires the dense stamped path (no SparseUndo)")
	}
	if len(spec.Privatized) > 0 {
		return RecoveryReport{}, fmt.Errorf("speculate: RunRecovering does not support privatized arrays")
	}

	mx, tr := spec.Metrics, spec.Tracer
	policy := spec.Recovery.Policy
	if policy == nil {
		// Default: open with the whole remaining space (one window, like
		// Run), shrink toward a procs-sized floor on violations.
		w := total
		if w < 1 {
			w = 1
		}
		policy = costmodel.NewRespecPolicy(w, procs, w)
	}
	maxRounds := spec.Recovery.maxRounds()

	// One memory and one shadow set serve every window, as in
	// RunStripped: each round pays an epoch bump and a shadow Reset
	// instead of a fresh allocation and clear, and the buffers return
	// to the shared arena when the engine does.
	ts := spec.newMemory(procs)
	ts.SetObs(mx, tr)
	var tests []*pdtest.Test
	for _, a := range spec.Tested {
		t := pdtest.New(a, procs)
		t.SetObs(mx, tr)
		tests = append(tests, t)
	}
	defer func() {
		ts.Release()
		for _, t := range tests {
			t.Release()
		}
	}()
	tracker := newFusedTracker(ts, tests)

	// pending carries the previous window's write-set for Rearm's
	// incremental checkpoint refresh; nil forces a full Checkpoint.
	var pending [][]int

	var rep RecoveryReport
	pos := 0
	for pos < total {
		if cerr := cancel.Err(ctx); cerr != nil {
			// Everything below pos is committed; the next window has
			// not started.
			mx.CtxCancel()
			rep.Valid = pos
			return rep, cerr
		}
		// After the round budget is spent, finish sequentially.
		if rep.Rounds >= maxRounds {
			v, done := seq(pos, total)
			rep.SeqIters += v
			rep.Valid = pos + v
			rep.Done = done
			return rep, nil
		}

		hi := pos + policy.Window()
		if hi > total {
			hi = total
		}
		mx.SpecAttempt()
		winStart := obs.Start(tr)

		ts.Rearm(pending)
		for _, t := range tests {
			t.Reset()
		}

		valid, done, err := par(tracker, pos, hi)
		if spec.wantsUnwind(err) {
			mx.SpecAbort(fmt.Sprintf("window [%d,%d) unwound: %v", pos, hi, err))
			if rerr := ts.RestoreAll(); rerr != nil {
				return rep, rerr
			}
			rep.Valid = pos
			return rep, err
		}
		ok := err == nil && valid >= 0 && valid <= hi-pos
		firstViol := -1
		if ok {
			for _, t := range tests {
				// Stamps and marks carry global iteration indices.
				r := t.Analyze(pos + valid)
				if !r.DOALL {
					ok = false
					if r.FirstViolation >= 0 && (firstViol < 0 || r.FirstViolation < firstViol) {
						firstViol = r.FirstViolation
					}
				}
			}
		}

		if ok {
			// This window's write-set is the next Rearm's refresh list.
			pending = ts.WriteSet()
			if valid < hi-pos || done {
				undone, uerr := ts.Undo(pos + valid)
				if uerr != nil {
					return rep, uerr
				}
				rep.Undone += undone
				done = true
			}
			mx.SpecCommit()
			if tr != nil {
				obs.Span(tr, winStart, "recovery-window", "speculate", 0,
					map[string]any{"lo": pos, "hi": hi, "valid": valid, "committed": true})
			}
			policy.OnCleanRun(valid)
			pos += valid
			if done {
				rep.Valid = pos
				rep.Done = true
				return rep, nil
			}
			continue
		}

		// Misspeculation.  Salvage the prefix below the earliest
		// violating iteration when there is one; the violation window
		// itself (or the whole window, on an exception) re-runs
		// sequentially, and the next parallel window is halved.
		rep.Rounds++
		mx.RespecRound()
		policy.OnViolation()
		reason := fmt.Sprintf("window [%d,%d) failed validation", pos, hi)
		if err != nil {
			reason = fmt.Sprintf("window [%d,%d) exception: %v", pos, hi, err)
		}
		mx.SpecAbort(reason)

		if spec.Recovery.Enabled && err == nil && firstViol > pos {
			restored, perr := ts.PartialCommit(firstViol)
			if perr != nil {
				return rep, perr
			}
			rep.Undone += restored
			rep.PrefixCommitted += firstViol - pos
			mx.PrefixCommittedAdd(firstViol - pos)
			// PartialCommit re-baselined with an internal full
			// Checkpoint and cleared the journals, so the checkpoint is
			// valid and nothing is pending: hand Rearm empty write-sets
			// (a zero-word refresh) rather than nil, which would force a
			// second, redundant full copy next round.
			pending = make([][]int, len(spec.Shared))
			if tr != nil {
				obs.Span(tr, winStart, "recovery-window", "speculate", 0,
					map[string]any{"lo": pos, "hi": hi, "resumeAt": firstViol, "restored": restored})
			}
			pos = firstViol
			// Re-speculate from the violation point with the shrunk
			// window on the next loop turn.
			continue
		}

		// Nothing to salvage (violation at the resume point, recovery
		// disabled, or an exception): rewind the window and run it
		// sequentially — one window's worth, not the whole loop.
		if rerr := ts.RestoreAll(); rerr != nil {
			return rep, rerr
		}
		v, sdone := seq(pos, hi)
		// Untracked sequential writes: the incremental checkpoint
		// premise is gone until the next full Checkpoint.
		ts.InvalidateCheckpoint()
		pending = nil
		rep.SeqIters += v
		if tr != nil {
			obs.Span(tr, winStart, "recovery-window", "speculate", 0,
				map[string]any{"lo": pos, "hi": hi, "valid": v, "sequential": true})
		}
		pos += v
		if sdone {
			rep.Valid = pos
			rep.Done = true
			return rep, nil
		}
		if pos < hi {
			// A correct sequential runner either finishes its range or
			// signals termination; anything else would loop forever.
			return rep, fmt.Errorf("speculate: sequential runner stopped at %d of [%d,%d) without terminating", pos, pos, hi)
		}
	}
	rep.Valid = pos
	return rep, nil
}
