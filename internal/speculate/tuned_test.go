package speculate

import (
	"context"
	"testing"

	"whilepar/internal/mem"
)

// fakeController drives RunTunedCtx from a test script: a fixed strip
// size plus optional one-way switches after a given number of
// observations.
type fakeController struct {
	strip      int
	observed   int
	pipeAfter  int // observations before SwitchPipeline reports true (0 = never)
	seqAfter   int // observations before SwitchSequential reports true (0 = never)
	committed  int
	violations int
}

func (f *fakeController) NextStrip(done, total int) int { return f.strip }

func (f *fakeController) Observe(lo, valid, hi int, committed bool) {
	f.observed++
	if committed {
		f.committed++
	} else {
		f.violations++
	}
}

func (f *fakeController) SwitchPipeline() bool {
	return f.pipeAfter > 0 && f.observed >= f.pipeAfter
}

func (f *fakeController) SwitchSequential() bool {
	return f.seqAfter > 0 && f.observed >= f.seqAfter
}

func TestRunTunedCleanLoop(t *testing.T) {
	n := 400
	a := mem.NewArray("A", n)
	par, seq := stripLoop(a, -1, 0, 0)
	ctl := &fakeController{strip: 64}
	rep, err := RunTunedCtx(context.Background(), Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		0, n, ctl, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.SeqStrips != 0 {
		t.Fatalf("report %+v", rep)
	}
	if ctl.observed != rep.Strips || ctl.violations != 0 {
		t.Fatalf("controller saw %d strips (%d violations), engine ran %d", ctl.observed, ctl.violations, rep.Strips)
	}
	expectState(t, a, n)
}

func TestRunTunedStartOffset(t *testing.T) {
	// The engine must honour a committed prefix: iterations below start
	// were already run directly (the orchestrator's probe), the strips
	// use global indices, and Valid counts from start.
	n, start := 300, 37
	a := mem.NewArray("A", n)
	for i := 0; i < start; i++ {
		a.Data[i] = float64(i + 1) // the probe's direct writes
	}
	par, seq := stripLoop(a, -1, 0, 0)
	ctl := &fakeController{strip: 48}
	rep, err := RunTunedCtx(context.Background(), Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		start, n, ctl, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n-start {
		t.Fatalf("Valid = %d, want %d (report %+v)", rep.Valid, n-start, rep)
	}
	expectState(t, a, n)
}

func TestRunTunedViolationFallsBackPerStrip(t *testing.T) {
	// A planted dependence inside one strip: that strip aborts, re-runs
	// sequentially, and the rest stays speculative. Final state is the
	// sequential oracle's.
	n := 320
	a := mem.NewArray("A", n)
	par, seq := stripLoop(a, -1, 70, 90)
	ctl := &fakeController{strip: 64}
	rep, err := RunTunedCtx(context.Background(), Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		0, n, ctl, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.SeqStrips == 0 {
		t.Fatalf("report %+v", rep)
	}
	if ctl.violations == 0 {
		t.Fatal("controller never observed the violation")
	}
	expectState(t, a, n)
}

func TestRunTunedSequentialDemotion(t *testing.T) {
	// After the controller demotes, the remainder runs through the
	// sequential runner in one go.
	n := 500
	a := mem.NewArray("A", n)
	par, seq := stripLoop(a, -1, 0, 0)
	ctl := &fakeController{strip: 50, seqAfter: 2}
	rep, err := RunTunedCtx(context.Background(), Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		0, n, ctl, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n {
		t.Fatalf("report %+v", rep)
	}
	if rep.Strips != 2 || rep.SeqStrips != 1 {
		t.Fatalf("want 2 speculative strips then one sequential tail, got %+v", rep)
	}
	expectState(t, a, n)
}

func TestRunTunedPipelinePromotion(t *testing.T) {
	// After the controller promotes, the remainder runs under the
	// pipelined engine — same committed state, overlap accounted.
	n := 1000
	a := mem.NewArray("A", n)
	par, seq := stripLoop(a, -1, 0, 0)
	ctl := &fakeController{strip: 100, pipeAfter: 2}
	rep, err := RunTunedCtx(context.Background(), Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		0, n, ctl, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n {
		t.Fatalf("report %+v", rep)
	}
	if rep.Strips <= 2 {
		t.Fatalf("pipelined remainder should add strips: %+v", rep)
	}
	expectState(t, a, n)
}

func TestRunStrippedPipelinedFromOffset(t *testing.T) {
	n, start := 600, 41
	a := mem.NewArray("A", n)
	for i := 0; i < start; i++ {
		a.Data[i] = float64(i + 1)
	}
	par, seq := stripLoop(a, -1, 0, 0)
	rep, err := RunStrippedPipelinedFromCtx(context.Background(),
		Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		start, n, 64, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n-start {
		t.Fatalf("Valid = %d, want %d (report %+v)", rep.Valid, n-start, rep)
	}
	expectState(t, a, n)
}

func TestRunStrippedPipelinedFromOffsetWithExit(t *testing.T) {
	n, start, exit := 600, 41, 333
	a := mem.NewArray("A", n)
	for i := 0; i < start; i++ {
		a.Data[i] = float64(i + 1)
	}
	par, seq := stripLoop(a, exit, 0, 0)
	rep, err := RunStrippedPipelinedFromCtx(context.Background(),
		Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		start, n, 64, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != exit-start || !rep.Done {
		t.Fatalf("Valid = %d, want %d (report %+v)", rep.Valid, exit-start, rep)
	}
	expectState(t, a, exit)
}

func TestRunTunedRejectsNilController(t *testing.T) {
	par, seq := stripLoop(mem.NewArray("A", 8), -1, 0, 0)
	if _, err := RunTunedCtx(context.Background(), Spec{Procs: 2}, 0, 8, nil, par, seq); err == nil {
		t.Fatal("nil controller accepted")
	}
}
