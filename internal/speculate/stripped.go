package speculate

import (
	"context"
	"fmt"

	"whilepar/internal/cancel"
	"whilepar/internal/mem"
)

// StripReport describes a strip-mined speculative execution.
type StripReport struct {
	// Valid is the global number of valid iterations.
	Valid int
	// Strips executed; SeqStrips of them fell back to sequential
	// re-execution after a failed PD test or exception.
	Strips, SeqStrips int
	// Undone counts locations restored across all strips (overshoot
	// and recovery suffix undos).
	Undone int
	// PrefixCommitted counts iterations salvaged from failed strips by
	// partial commits (0 when Spec.Recovery is off).
	PrefixCommitted int
	// Overlapped counts strips whose execution ran concurrently with
	// the previous strip's PD test (RunStrippedPipelined only).
	Overlapped int
	// Squashed counts overlapped strips whose speculative execution was
	// discarded because the previous strip failed validation
	// (RunStrippedPipelined only).
	Squashed int
	// Done reports whether the loop terminated within the bound (vs
	// exhausting Total iterations).
	Done bool
	// Tier is the validation tier the run was granted at entry (after
	// engine clamping); TierDemoted reports a mid-run fall back to
	// TierFull after a real violation or audit failure.
	Tier        Tier
	TierDemoted bool
	// SigFalsePositives counts Tier-1 flagged strips whose Tier-0
	// re-run found no real violation (hash aliasing — one strip
	// re-execution each, never a wrong commit).
	SigFalsePositives int
	// AuditRuns counts Tier-2 strips re-armed under the full shadow
	// machinery; AuditFailures the ones whose PD test failed.
	AuditRuns, AuditFailures int
}

// StripPar executes one strip [lo, hi) in parallel under the given
// tracker and returns the number of valid iterations *within the strip*
// and whether the termination condition was met in it.  An error is an
// exception (triggers the strip's sequential fallback).  tr is nil when
// the engine runs the strip shadow-free (TierTrusted's direct strips):
// the body must then access the arrays directly — loopir.Iter already
// does exactly that for a nil Tracker.
type StripPar func(tr mem.Tracker, lo, hi int) (valid int, done bool, err error)

// StripSeq re-executes one strip sequentially (after a failed strip) and
// returns the same.
type StripSeq func(lo, hi int) (valid int, done bool)

// RunStripped is the strip-mined speculation protocol of Sections 4, 5.1
// and 8.1: the iteration space is executed strip by strip; each strip is
// checkpointed, run speculatively under time-stamps and fresh PD-test
// shadow structures, validated, and then either committed (with its
// overshoot undone) or restored and re-executed sequentially.
//
// Two properties the paper wants from this shape:
//
//   - memory: time-stamps and shadow marks exist only for the current
//     strip, bounding the overhead memory by O(strip * writes/iter);
//   - safety: if the termination condition depends on a variable with
//     unknown dependences, an un-strip-mined speculative run could
//     mis-identify the last valid iteration or never terminate; here
//     every strip's dependences are tested before its values are
//     trusted, and a failed strip costs one strip's re-execution, not
//     the whole loop's.
//
// RunStripped is RunStrippedCtx under context.Background().
func RunStripped(spec Spec, total, strip int, par StripPar, seq StripSeq) (StripReport, error) {
	return RunStrippedCtx(context.Background(), spec, total, strip, par, seq)
}

// RunStrippedCtx is the strip-mined protocol under a context.  The
// strip boundary is the cancellation point: once ctx is done no further
// strip starts, and the report carries the valid count of the strips
// already committed (the committed prefix) together with
// ErrCanceled/ErrDeadline.  When the strip runner itself surfaces a
// cancellation — or a contained panic with Spec.PanicFallback unset —
// the current strip is rewound via its checkpoint before the error
// unwinds, so the shared arrays hold exactly the committed-prefix
// state.  Cancellation never falls back to sequential re-execution.
func RunStrippedCtx(ctx context.Context, spec Spec, total, strip int, par StripPar, seq StripSeq) (StripReport, error) {
	if par == nil || seq == nil {
		return StripReport{}, fmt.Errorf("speculate: both strip runners are required")
	}
	if strip < 1 {
		return StripReport{}, fmt.Errorf("speculate: strip size must be positive, got %d", strip)
	}
	procs := spec.Procs
	if procs < 1 {
		procs = 1
	}

	// One memory, one shadow set (and, above TierFull, one signature
	// set) serve every strip: the per-strip reset is an epoch bump plus
	// a shadow Reset, so the bounded-memory property still holds — live
	// stamps and marks cover only the current strip — without paying a
	// fresh allocation and O(procs x n) clear per strip.  Their buffers
	// go back to the shared arena when the engine returns.  The strip
	// verdict itself — run, validate at the spec's tier, commit or
	// recover — lives in the tier runtime (tier.go); this loop keeps
	// only the schedule.
	var rep StripReport
	rt := newTierRuntime(spec, procs, 0, total, &rep)
	defer rt.release()

	for lo := 0; lo < total; lo += strip {
		if cerr := cancel.Err(ctx); cerr != nil {
			// Strips committed so far are final; nothing of the next
			// one has started, so there is nothing to rewind.
			spec.Metrics.CtxCancel()
			return rep, cerr
		}
		hi := lo + strip
		if hi > total {
			hi = total
		}
		_, _, stop, err := rt.step(lo, hi, par, seq)
		if err != nil {
			return rep, err
		}
		if stop {
			return rep, nil
		}
	}
	return rep, nil
}
