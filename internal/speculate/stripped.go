package speculate

import (
	"context"
	"fmt"

	"whilepar/internal/cancel"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/pdtest"
)

// StripReport describes a strip-mined speculative execution.
type StripReport struct {
	// Valid is the global number of valid iterations.
	Valid int
	// Strips executed; SeqStrips of them fell back to sequential
	// re-execution after a failed PD test or exception.
	Strips, SeqStrips int
	// Undone counts locations restored across all strips (overshoot
	// and recovery suffix undos).
	Undone int
	// PrefixCommitted counts iterations salvaged from failed strips by
	// partial commits (0 when Spec.Recovery is off).
	PrefixCommitted int
	// Overlapped counts strips whose execution ran concurrently with
	// the previous strip's PD test (RunStrippedPipelined only).
	Overlapped int
	// Squashed counts overlapped strips whose speculative execution was
	// discarded because the previous strip failed validation
	// (RunStrippedPipelined only).
	Squashed int
	// Done reports whether the loop terminated within the bound (vs
	// exhausting Total iterations).
	Done bool
}

// StripPar executes one strip [lo, hi) in parallel under the given
// tracker and returns the number of valid iterations *within the strip*
// and whether the termination condition was met in it.  An error is an
// exception (triggers the strip's sequential fallback).
type StripPar func(tr mem.Tracker, lo, hi int) (valid int, done bool, err error)

// StripSeq re-executes one strip sequentially (after a failed strip) and
// returns the same.
type StripSeq func(lo, hi int) (valid int, done bool)

// RunStripped is the strip-mined speculation protocol of Sections 4, 5.1
// and 8.1: the iteration space is executed strip by strip; each strip is
// checkpointed, run speculatively under time-stamps and fresh PD-test
// shadow structures, validated, and then either committed (with its
// overshoot undone) or restored and re-executed sequentially.
//
// Two properties the paper wants from this shape:
//
//   - memory: time-stamps and shadow marks exist only for the current
//     strip, bounding the overhead memory by O(strip * writes/iter);
//   - safety: if the termination condition depends on a variable with
//     unknown dependences, an un-strip-mined speculative run could
//     mis-identify the last valid iteration or never terminate; here
//     every strip's dependences are tested before its values are
//     trusted, and a failed strip costs one strip's re-execution, not
//     the whole loop's.
//
// RunStripped is RunStrippedCtx under context.Background().
func RunStripped(spec Spec, total, strip int, par StripPar, seq StripSeq) (StripReport, error) {
	return RunStrippedCtx(context.Background(), spec, total, strip, par, seq)
}

// RunStrippedCtx is the strip-mined protocol under a context.  The
// strip boundary is the cancellation point: once ctx is done no further
// strip starts, and the report carries the valid count of the strips
// already committed (the committed prefix) together with
// ErrCanceled/ErrDeadline.  When the strip runner itself surfaces a
// cancellation — or a contained panic with Spec.PanicFallback unset —
// the current strip is rewound via its checkpoint before the error
// unwinds, so the shared arrays hold exactly the committed-prefix
// state.  Cancellation never falls back to sequential re-execution.
func RunStrippedCtx(ctx context.Context, spec Spec, total, strip int, par StripPar, seq StripSeq) (StripReport, error) {
	if par == nil || seq == nil {
		return StripReport{}, fmt.Errorf("speculate: both strip runners are required")
	}
	if strip < 1 {
		return StripReport{}, fmt.Errorf("speculate: strip size must be positive, got %d", strip)
	}
	procs := spec.Procs
	if procs < 1 {
		procs = 1
	}

	mx, tr := spec.Metrics, spec.Tracer

	// One memory and one shadow set serve every strip: the per-strip
	// reset is an epoch bump plus a shadow Reset, so the bounded-memory
	// property still holds — live stamps and marks cover only the
	// current strip — without paying a fresh allocation and
	// O(procs x n) clear per strip.  Their buffers go back to the
	// shared arena when the engine returns.
	ts := spec.newMemory(procs)
	ts.SetObs(mx, tr)
	var tests []*pdtest.Test
	for _, a := range spec.Tested {
		t := pdtest.New(a, procs)
		t.SetObs(mx, tr)
		tests = append(tests, t)
	}
	defer func() {
		ts.Release()
		for _, t := range tests {
			t.Release()
		}
	}()
	tracker := newFusedTracker(ts, tests)

	// pending carries the previous strip's write-set so Rearm can
	// refresh the checkpoint incrementally — O(strip writes) instead of
	// O(n) per strip.  nil forces a full Checkpoint (first strip, and
	// after any sequential fallback, whose untracked writes invalidate
	// the incremental invariant).
	var pending [][]int

	var rep StripReport
	for lo := 0; lo < total; lo += strip {
		if cerr := cancel.Err(ctx); cerr != nil {
			// Strips committed so far are final; nothing of the next
			// one has started, so there is nothing to rewind.
			mx.CtxCancel()
			return rep, cerr
		}
		hi := lo + strip
		if hi > total {
			hi = total
		}
		rep.Strips++
		mx.SpecAttempt()
		stripStart := obs.Start(tr)

		ts.Rearm(pending)
		for _, t := range tests {
			t.Reset()
		}

		valid, done, err := par(tracker, lo, hi)
		if spec.wantsUnwind(err) {
			mx.SpecAbort(fmt.Sprintf("strip [%d,%d) unwound: %v", lo, hi, err))
			if rerr := ts.RestoreAll(); rerr != nil {
				return rep, rerr
			}
			return rep, err
		}
		ok := err == nil && valid >= 0 && valid <= hi-lo
		firstViol := -1
		if ok {
			for _, t := range tests {
				// Iterations are stamped with their global indices.
				r := t.Analyze(lo + valid)
				if !r.DOALL {
					ok = false
					if r.FirstViolation >= 0 && (firstViol < 0 || r.FirstViolation < firstViol) {
						firstViol = r.FirstViolation
					}
				}
			}
		}
		if !ok {
			reason := fmt.Sprintf("strip [%d,%d) failed validation", lo, hi)
			if err != nil {
				reason = fmt.Sprintf("strip [%d,%d) exception: %v", lo, hi, err)
			}
			mx.SpecAbort(reason)
			if spec.Recovery.Enabled && err == nil && firstViol > lo {
				// Strip-local partial commit: keep the prefix below the
				// earliest violating iteration, rewind only the suffix,
				// and re-execute just [firstViol, hi) sequentially.
				restored, perr := ts.PartialCommit(firstViol)
				if perr != nil {
					return rep, perr
				}
				rep.Undone += restored
				rep.PrefixCommitted += firstViol - lo
				mx.PrefixCommittedAdd(firstViol - lo)
				mx.RespecRound()
				rep.SeqStrips++
				sv, sdone := seq(firstViol, hi)
				valid, done = (firstViol-lo)+sv, sdone
			} else {
				if rerr := ts.RestoreAll(); rerr != nil {
					return rep, rerr
				}
				rep.SeqStrips++
				valid, done = seq(lo, hi)
			}
			// The sequential runner wrote the arrays directly, invisibly
			// to the write-set journals: the incremental checkpoint
			// premise is gone until the next full Checkpoint.
			ts.InvalidateCheckpoint()
			pending = nil
		} else {
			// What this strip wrote is exactly what the next strip's
			// checkpoint must refresh.  (Undo restores some of those
			// locations to their checkpoint values; re-copying them is
			// merely redundant, not wrong.)
			pending = ts.WriteSet()
			if valid < hi-lo || done {
				// Undo the strip's overshoot (stamps carry global
				// indices).
				undone, uerr := ts.Undo(lo + valid)
				if uerr != nil {
					return rep, uerr
				}
				rep.Undone += undone
				done = true
			}
		}
		if ok {
			mx.SpecCommit()
		}
		if tr != nil {
			obs.Span(tr, stripStart, "strip", "speculate", 0, map[string]any{"lo": lo, "hi": hi, "valid": valid, "committed": ok})
		}
		rep.Valid += valid
		if done {
			rep.Done = true
			return rep, nil
		}
	}
	return rep, nil
}
