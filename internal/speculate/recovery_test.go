package speculate

import (
	"math/rand"
	"testing"

	"whilepar/internal/costmodel"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
	"whilepar/internal/window"
)

// depLoop is the canonical recovery workload: iteration i writes its
// own element A[i] = 100+i, except iteration r, which exposed-reads
// A[w] first (w < r) and writes A[r] = 1000 + A[w] — one cross-
// iteration flow dependence whose earliest participant is w.  exit < 0
// disables the termination condition; otherwise iteration exit quits
// before storing.
type depLoop struct {
	a       *mem.Array
	n       int
	w, r    int
	exit    int
	initial []float64
}

func newDepLoop(n, w, r, exit int) *depLoop {
	a := mem.NewArray("A", n)
	init := make([]float64, n)
	for i := range init {
		init[i] = float64(-i) // nonzero pre-loop state catches restore bugs
		a.Data[i] = init[i]
	}
	return &depLoop{a: a, n: n, w: w, r: r, exit: exit, initial: init}
}

// access performs iteration i's body through the tracker.
func (d *depLoop) access(tr mem.Tracker, i, vpn int) {
	if i == d.r {
		v := tr.Load(d.a, d.w, i, vpn)
		tr.Store(d.a, i, 1000+v, i, vpn)
		return
	}
	tr.Store(d.a, i, float64(100+i), i, vpn)
}

// seqRange executes [lo, hi) sequentially against the live array and
// returns (valid-in-range, done).
func (d *depLoop) seqRange(lo, hi int) (int, bool) {
	for i := lo; i < hi; i++ {
		if i == d.exit {
			return i - lo, true
		}
		if i == d.r {
			d.a.Data[i] = 1000 + d.a.Data[d.w]
		} else {
			d.a.Data[i] = float64(100 + i)
		}
	}
	return hi - lo, false
}

// oracle returns (final array state, valid count) of the purely
// sequential execution, computed on a private copy.
func (d *depLoop) oracle() ([]float64, int) {
	out := append([]float64(nil), d.initial...)
	valid := d.n
	for i := 0; i < d.n; i++ {
		if i == d.exit {
			valid = i
			break
		}
		if i == d.r {
			out[i] = 1000 + out[d.w]
		} else {
			out[i] = float64(100 + i)
		}
	}
	return out, valid
}

func (d *depLoop) par(procs int) ParallelRunner {
	return func(tr mem.Tracker) (int, error) {
		res := sched.DOALL(d.n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
			if i == d.exit {
				return sched.Quit
			}
			d.access(tr, i, vpn)
			return sched.Continue
		})
		return res.QuitIndex, nil
	}
}

func (d *depLoop) stripPar(procs int) StripPar {
	return func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		res := sched.DOALL(hi-lo, sched.Options{Procs: procs}, func(k, vpn int) sched.Control {
			i := lo + k
			if i == d.exit {
				return sched.Quit
			}
			d.access(tr, i, vpn)
			return sched.Continue
		})
		return res.QuitIndex, res.QuitIndex < hi-lo, nil
	}
}

func (d *depLoop) reset() {
	copy(d.a.Data, d.initial)
}

func (d *depLoop) checkState(t *testing.T, label string, want []float64) {
	t.Helper()
	for i, v := range d.a.Data {
		if v != want[i] {
			t.Fatalf("%s: A[%d] = %v, want %v", label, i, v, want[i])
		}
	}
}

// TestRunPartialRecoveryEquivalence checks the tentpole equivalence on
// randomized violation positions: partial recovery, the retained
// full-restore baseline, and the sequential oracle must produce
// bit-identical state and the same valid count.  procs is kept at 1 so
// the dependent accesses cannot physically race; the recovery logic
// (marks, stamps, violation index, partial commit) is identical at any
// width.
func TestRunPartialRecoveryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(150) + 20
		w := rng.Intn(n - 1)
		r := w + 1 + rng.Intn(n-w-1)
		exit := -1
		if rng.Intn(3) == 0 {
			exit = rng.Intn(n)
		}
		d := newDepLoop(n, w, r, exit)
		wantState, wantValid := d.oracle()

		seqFull := func() int {
			v, _ := d.seqRange(0, d.n)
			return v
		}
		mkSpec := func(recover bool) Spec {
			s := Spec{Procs: 1, Shared: []*mem.Array{d.a}, Tested: []*mem.Array{d.a}, Metrics: obs.NewMetrics()}
			if recover {
				s.Recovery = Recovery{
					Enabled: true,
					SeqFrom: func(from int) int {
						v, _ := d.seqRange(from, d.n)
						return from + v
					},
				}
			}
			return s
		}

		// Baseline: full restore + sequential re-execution.
		d.reset()
		repBase, err := Run(mkSpec(false), d.par(1), seqFull)
		if err != nil {
			t.Fatal(err)
		}
		d.checkState(t, "baseline", wantState)
		if repBase.Valid != wantValid {
			t.Fatalf("baseline valid = %d, want %d (n=%d w=%d r=%d exit=%d)", repBase.Valid, wantValid, n, w, r, exit)
		}

		// Partial recovery.
		d.reset()
		repRec, err := Run(mkSpec(true), d.par(1), seqFull)
		if err != nil {
			t.Fatal(err)
		}
		d.checkState(t, "recovery", wantState)
		if repRec.Valid != wantValid {
			t.Fatalf("recovery valid = %d, want %d (n=%d w=%d r=%d exit=%d)", repRec.Valid, wantValid, n, w, r, exit)
		}

		// When the violation is live (both participants below the valid
		// bound and w > 0), recovery must have salvaged exactly [0, w).
		violLive := w > 0 && (exit < 0 || (w < exit && r < exit))
		if violLive {
			if repRec.PrefixCommitted != w {
				t.Fatalf("PrefixCommitted = %d, want %d (n=%d r=%d exit=%d)", repRec.PrefixCommitted, w, n, r, exit)
			}
			if repRec.UsedParallel != true || repRec.Failure == "" {
				t.Fatalf("recovery report should keep the parallel prefix and record the failure: %+v", repRec)
			}
			if repBase.UsedParallel {
				t.Fatalf("baseline must not report parallel use after a violation: %+v", repBase)
			}
		}
	}
}

// TestRunStrippedPartialRecovery checks the strip engine commits the
// valid prefix of a failed strip and re-executes only its tail.
func TestRunStrippedPartialRecovery(t *testing.T) {
	// Violation inside the second strip: writer 70, reader 76.
	d := newDepLoop(200, 70, 76, -1)
	wantState, wantValid := d.oracle()
	mx := obs.NewMetrics()
	spec := Spec{
		Procs: 1, Shared: []*mem.Array{d.a}, Tested: []*mem.Array{d.a},
		Metrics:  mx,
		Recovery: Recovery{Enabled: true},
	}
	rep, err := RunStripped(spec, d.n, 50, d.stripPar(1), d.seqRange)
	if err != nil {
		t.Fatal(err)
	}
	d.checkState(t, "stripped-recovery", wantState)
	if rep.Valid != wantValid {
		t.Fatalf("valid = %d, want %d", rep.Valid, wantValid)
	}
	// The failed strip [50,100) salvages [50,70): 20 iterations.
	if rep.PrefixCommitted != 20 {
		t.Fatalf("PrefixCommitted = %d, want 20", rep.PrefixCommitted)
	}
	if rep.SeqStrips != 1 {
		t.Fatalf("SeqStrips = %d, want 1", rep.SeqStrips)
	}
	s := mx.Snapshot()
	if s.PrefixCommitted != 20 || s.RespecRounds != 1 {
		t.Fatalf("metrics prefix=%d rounds=%d, want 20/1", s.PrefixCommitted, s.RespecRounds)
	}

	// With recovery off the same strip falls back whole — identical
	// final state, no salvage.
	d.reset()
	spec.Recovery = Recovery{}
	rep2, err := RunStripped(spec, d.n, 50, d.stripPar(1), d.seqRange)
	if err != nil {
		t.Fatal(err)
	}
	d.checkState(t, "stripped-baseline", wantState)
	if rep2.PrefixCommitted != 0 || rep2.Valid != wantValid {
		t.Fatalf("baseline strip report %+v", rep2)
	}
}

// TestRunRecoveringAdaptiveEngine drives the dedicated recovery engine
// over a late violation and checks prefix salvage, window shrinking and
// equivalence.
func TestRunRecoveringAdaptiveEngine(t *testing.T) {
	// Violation at 90% of the space.
	d := newDepLoop(400, 360, 370, -1)
	wantState, wantValid := d.oracle()
	mx := obs.NewMetrics()
	spec := Spec{
		Procs: 2, Shared: []*mem.Array{d.a}, Tested: []*mem.Array{d.a},
		Metrics:  mx,
		Recovery: Recovery{Enabled: true},
	}
	rep, err := RunRecovering(spec, d.n, d.stripPar(2), d.seqRange)
	if err != nil {
		t.Fatal(err)
	}
	d.checkState(t, "recovering", wantState)
	if rep.Valid != wantValid || !rep.Done == (d.exit >= 0) {
		t.Fatalf("report %+v, want valid %d", rep, wantValid)
	}
	if rep.PrefixCommitted < 360 {
		t.Fatalf("PrefixCommitted = %d, want >= 360 (the salvaged prefix)", rep.PrefixCommitted)
	}
	if rep.Rounds < 1 {
		t.Fatalf("Rounds = %d, want >= 1", rep.Rounds)
	}
	// The sequential tail must be a small fraction of the space.
	if rep.SeqIters > 80 {
		t.Fatalf("SeqIters = %d — recovery re-executed too much sequentially", rep.SeqIters)
	}
}

// TestRunRecoveringEquivalenceRandomized sweeps random violation
// positions, window policies and exits through the recovery engine.
func TestRunRecoveringEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(200) + 30
		w := rng.Intn(n - 1)
		r := w + 1 + rng.Intn(n-w-1)
		exit := -1
		if rng.Intn(3) == 0 {
			exit = rng.Intn(n)
		}
		d := newDepLoop(n, w, r, exit)
		wantState, wantValid := d.oracle()
		spec := Spec{
			Procs: 1, Shared: []*mem.Array{d.a}, Tested: []*mem.Array{d.a},
			Recovery: Recovery{
				Enabled:   true,
				MaxRounds: rng.Intn(4) + 1,
				Policy:    costmodel.NewRespecPolicy(rng.Intn(n)+8, 4, n),
			},
		}
		rep, err := RunRecovering(spec, d.n, d.stripPar(1), d.seqRange)
		if err != nil {
			t.Fatal(err)
		}
		d.checkState(t, "recovering-rand", wantState)
		if rep.Valid != wantValid {
			t.Fatalf("valid = %d, want %d (n=%d w=%d r=%d exit=%d)", rep.Valid, wantValid, n, w, r, exit)
		}
	}
}

// TestRunWindowedRecoveryRandomizedViolations is the windowed
// PD-failure path under the race detector: randomized violation
// positions with the dependence pair separated by more than any window
// in effect, so the sliding-window invariant itself orders the
// conflicting accesses (iteration r cannot issue until w completed) —
// the PD test still flags the dependence and recovery must reproduce
// the sequential oracle, with Undone/Valid accounting to match.
func TestRunWindowedRecoveryRandomizedViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		win := 8 + rng.Intn(8) // max window in effect (policy only shrinks before success)
		n := 120 + rng.Intn(120)
		w := rng.Intn(n - win - 2)
		r := w + win + 1 + rng.Intn(n-w-win-1)
		exit := -1
		if rng.Intn(3) == 0 {
			exit = rng.Intn(n)
		}
		procs := 1 + rng.Intn(3)
		d := newDepLoop(n, w, r, exit)
		wantState, wantValid := d.oracle()

		mx := obs.NewMetrics()
		spec := Spec{
			Procs: procs, Shared: []*mem.Array{d.a}, Tested: []*mem.Array{d.a},
			Metrics: mx,
			Recovery: Recovery{
				Enabled: true,
				SeqFrom: func(from int) int {
					v, _ := d.seqRange(from, d.n)
					return from + v
				},
			},
		}
		body := func(tr mem.Tracker, i, vpn int) bool {
			if i == d.exit {
				return true
			}
			d.access(tr, i, vpn)
			return false
		}
		seqFull := func() int {
			v, _ := d.seqRange(0, d.n)
			return v
		}
		rep, err := RunWindowed(spec, n, window.Config{Window: win}, body, seqFull)
		if err != nil {
			t.Fatal(err)
		}
		d.checkState(t, "windowed-recovery", wantState)
		if rep.Valid != wantValid {
			t.Fatalf("valid = %d, want %d (n=%d w=%d r=%d exit=%d win=%d procs=%d)",
				rep.Valid, wantValid, n, w, r, exit, win, procs)
		}

		// Accounting against the element-wise structure: when the
		// violation is live, the first partial commit resumes exactly at
		// w, and the suffix undo covers at least the stores of [w,
		// valid) minus the quitting iteration.
		violLive := w > 0 && (exit < 0 || (w < exit && r < exit))
		if violLive {
			if rep.PrefixCommitted != w {
				t.Fatalf("PrefixCommitted = %d, want %d (n=%d r=%d exit=%d)", rep.PrefixCommitted, w, n, r, exit)
			}
			if rep.RespecRounds < 1 {
				t.Fatalf("RespecRounds = %d, want >= 1", rep.RespecRounds)
			}
			if !rep.UsedParallel {
				t.Fatalf("recovery kept a parallel prefix; report %+v", rep)
			}
			firstRoundValid := wantValid
			if minUndone := firstRoundValid - w - 1; rep.Undone < minUndone {
				t.Fatalf("Undone = %d, want >= %d (suffix stores)", rep.Undone, minUndone)
			}
			s := mx.Snapshot()
			if s.PrefixCommitted != int64(w) || s.SuffixUndone == 0 {
				t.Fatalf("metrics prefix=%d suffix-undone=%d, want %d/>0", s.PrefixCommitted, s.SuffixUndone, w)
			}
		} else if w == 0 && (exit < 0 || (w < exit && r < exit)) {
			// Violation at iteration 0: nothing to salvage; the engine
			// must still converge to the oracle (checked above).
			_ = rep
		}
	}
}

// TestRunWindowedBaselineUnchanged pins the recovery-off windowed path
// to the old all-or-nothing behaviour.
func TestRunWindowedBaselineUnchanged(t *testing.T) {
	d := newDepLoop(150, 40, 60, -1)
	wantState, wantValid := d.oracle()
	spec := Spec{Procs: 2, Shared: []*mem.Array{d.a}, Tested: []*mem.Array{d.a}}
	body := func(tr mem.Tracker, i, vpn int) bool {
		d.access(tr, i, vpn)
		return false
	}
	rep, err := RunWindowed(spec, d.n, window.Config{Window: 16}, body, func() int {
		v, _ := d.seqRange(0, d.n)
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	d.checkState(t, "windowed-baseline", wantState)
	if rep.UsedParallel || rep.Valid != wantValid || rep.RespecRounds != 0 || rep.PrefixCommitted != 0 {
		t.Fatalf("baseline windowed report %+v", rep)
	}
}
