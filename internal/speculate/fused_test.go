package speculate

import (
	"math/rand"
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/pdtest"
	"whilepar/internal/sched"
	"whilepar/internal/tsmem"
)

// buildPaths constructs, over its own arrays, the devirtualized fused
// tracker and the mem.Chain interface path it replaces.
func buildPaths(n, procs int) (fa, ca *mem.Array, ft, ct mem.Tracker, fTests, cTests []*pdtest.Test, fts, cts *tsmem.Memory) {
	fa, ca = mem.NewArray("a", n), mem.NewArray("a", n)
	fts, cts = tsmem.NewSharded(procs, fa), tsmem.NewSharded(procs, ca)
	fT, cT := pdtest.New(fa, procs), pdtest.New(ca, procs)
	fTests, cTests = []*pdtest.Test{fT}, []*pdtest.Test{cT}
	ft = newFusedTracker(fts, fTests)
	ct = mem.Chain{Observers: []mem.Observer{cT.Observer()}, Sink: cts.Tracker()}
	return
}

// TestFusedMatchesChainSequential scripts randomized loads and stores
// through both trackers and demands identical array contents, stamps,
// and PD verdicts — the devirtualization must be invisible at every
// observable surface.
func TestFusedMatchesChainSequential(t *testing.T) {
	const (
		n     = 128
		procs = 4
		cases = 40
	)
	for c := 0; c < cases; c++ {
		rng := rand.New(rand.NewSource(int64(300 + c)))
		fa, ca, ft, ct, fTests, cTests, fts, cts := buildPaths(n, procs)
		fts.Checkpoint()
		cts.Checkpoint()

		for i := 0; i < 1+rng.Intn(80); i++ {
			idx, iter, vpn := rng.Intn(n), rng.Intn(50), rng.Intn(procs)
			if rng.Intn(2) == 0 {
				v := rng.Float64()
				ft.Store(fa, idx, v, iter, vpn)
				ct.Store(ca, idx, v, iter, vpn)
			} else {
				v1 := ft.Load(fa, idx, iter, vpn)
				v2 := ct.Load(ca, idx, iter, vpn)
				if v1 != v2 {
					t.Fatalf("case %d: load[%d] %v != %v", c, idx, v1, v2)
				}
			}
		}

		firstValid := rng.Intn(50)
		r1 := fTests[0].AnalyzeQuiet(firstValid)
		r2 := cTests[0].AnalyzeQuiet(firstValid)
		if r1 != r2 {
			t.Fatalf("case %d: fused verdict %+v != chain %+v", c, r1, r2)
		}
		for i := 0; i < n; i++ {
			if fa.Data[i] != ca.Data[i] {
				t.Fatalf("case %d: data[%d] %v != %v", c, i, fa.Data[i], ca.Data[i])
			}
			if s1, s2 := fts.Stamp(fa, i), cts.Stamp(ca, i); s1 != s2 {
				t.Fatalf("case %d: stamp[%d] %d != %d", c, i, s1, s2)
			}
		}
		fts.Release()
		cts.Release()
		fTests[0].Release()
	}
}

// TestFusedMatchesChainRanges does the same for the batched range path
// (one interposition per strip), which the fused tracker forwards to
// the concrete MarkRange/StampRange methods.
func TestFusedMatchesChainRanges(t *testing.T) {
	const (
		n     = 256
		procs = 4
	)
	fa, ca, ft, ct, fTests, cTests, fts, cts := buildPaths(n, procs)
	fts.Checkpoint()
	cts.Checkpoint()

	fr := ft.(mem.RangeTracker)
	cr := ct.(mem.RangeTracker)

	src := make([]float64, 64)
	for i := range src {
		src[i] = float64(i) * 1.5
	}
	fr.StoreRange(fa, 10, src, 3, 1)
	cr.StoreRange(ca, 10, src, 3, 1)

	dst1, dst2 := make([]float64, 64), make([]float64, 64)
	fr.LoadRange(fa, 10, 74, dst1, 5, 2)
	cr.LoadRange(ca, 10, 74, dst2, 5, 2)
	for i := range dst1 {
		if dst1[i] != dst2[i] {
			t.Fatalf("range load[%d]: %v != %v", i, dst1[i], dst2[i])
		}
	}

	r1 := fTests[0].AnalyzeQuiet(10)
	r2 := cTests[0].AnalyzeQuiet(10)
	if r1 != r2 {
		t.Fatalf("fused verdict %+v != chain %+v", r1, r2)
	}
	for i := 0; i < n; i++ {
		if fa.Data[i] != ca.Data[i] {
			t.Fatalf("data[%d] %v != %v", i, fa.Data[i], ca.Data[i])
		}
		if s1, s2 := fts.Stamp(fa, i), cts.Stamp(ca, i); s1 != s2 {
			t.Fatalf("stamp[%d] %d != %d", i, s1, s2)
		}
	}
	fts.Release()
	cts.Release()
	fTests[0].Release()
}

// TestFusedMatchesChainConcurrent is the -race variant: both trackers
// run the same disjoint-store DOALL and must agree on everything after
// the barrier.
func TestFusedMatchesChainConcurrent(t *testing.T) {
	const (
		n     = 4096
		procs = 8
	)
	fa, ca, ft, ct, fTests, cTests, fts, cts := buildPaths(n, procs)
	fts.Checkpoint()
	cts.Checkpoint()

	run := func(tr mem.Tracker, a *mem.Array) {
		sched.DOALL(n, sched.Options{Procs: procs, Schedule: sched.Stealing}, func(i, vpn int) sched.Control {
			v := tr.Load(a, i, i, vpn)
			tr.Store(a, i, v+float64(i), i, vpn)
			return sched.Continue
		})
	}
	run(ft, fa)
	run(ct, ca)

	r1 := fTests[0].AnalyzeQuiet(n)
	r2 := cTests[0].AnalyzeQuiet(n)
	if r1 != r2 || !r1.DOALL {
		t.Fatalf("fused verdict %+v vs chain %+v", r1, r2)
	}
	for i := 0; i < n; i++ {
		if fa.Data[i] != ca.Data[i] {
			t.Fatalf("data[%d] %v != %v", i, fa.Data[i], ca.Data[i])
		}
	}
	u1, err1 := fts.Undo(n / 2)
	u2, err2 := cts.Undo(n / 2)
	if err1 != nil || err2 != nil || u1 != u2 {
		t.Fatalf("undo: fused (%d,%v) vs chain (%d,%v)", u1, err1, u2, err2)
	}
	for i := 0; i < n; i++ {
		if fa.Data[i] != ca.Data[i] {
			t.Fatalf("post-undo data[%d] %v != %v", i, fa.Data[i], ca.Data[i])
		}
	}
	fts.Release()
	cts.Release()
	fTests[0].Release()
}
