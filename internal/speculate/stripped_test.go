package speculate

import (
	"errors"
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

// stripLoop builds StripPar/StripSeq for a loop writing A[i] = i+1 with
// an RV exit at `exit` and an optional planted dependence window in
// which iterations read their predecessor's element.
func stripLoop(a *mem.Array, exit int, depLo, depHi int) (StripPar, StripSeq) {
	par := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		res := sched.DOALL(hi-lo, sched.Options{Procs: 4}, func(j, vpn int) sched.Control {
			i := lo + j
			if i == exit {
				return sched.Quit
			}
			if i >= depLo && i < depHi && i > 0 {
				_ = tr.Load(a, i-1, i, vpn) // exposed read: cross-iteration dep
			}
			tr.Store(a, i, float64(i+1), i, vpn)
			return sched.Continue
		})
		if res.QuitIndex < hi-lo {
			return res.QuitIndex, true, nil
		}
		return hi - lo, false, nil
	}
	seq := func(lo, hi int) (int, bool) {
		for i := lo; i < hi; i++ {
			if i == exit {
				return i - lo, true
			}
			a.Data[i] = float64(i + 1)
		}
		return hi - lo, false
	}
	return par, seq
}

func expectState(t *testing.T, a *mem.Array, valid int) {
	t.Helper()
	for i := range a.Data {
		want := 0.0
		if i < valid {
			want = float64(i + 1)
		}
		if a.Data[i] != want {
			t.Fatalf("A[%d] = %v, want %v", i, a.Data[i], want)
		}
	}
}

func TestRunStrippedCleanLoop(t *testing.T) {
	n := 200
	a := mem.NewArray("A", n)
	par, seq := stripLoop(a, -1, 0, 0)
	rep, err := RunStripped(Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		n, 32, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.Done || rep.SeqStrips != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Strips != (n+31)/32 {
		t.Fatalf("strips = %d", rep.Strips)
	}
	expectState(t, a, n)
}

func TestRunStrippedStopsAtExit(t *testing.T) {
	n := 300
	a := mem.NewArray("A", n)
	par, seq := stripLoop(a, 137, 0, 0)
	rep, err := RunStripped(Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		n, 50, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 137 || !rep.Done {
		t.Fatalf("report %+v", rep)
	}
	if rep.Strips != 3 { // [0,50) [50,100) [100,150)
		t.Fatalf("strips = %d", rep.Strips)
	}
	expectState(t, a, 137)
}

func TestRunStrippedFailedStripFallsBackLocally(t *testing.T) {
	// A dependence window inside strip 2 only: that strip re-executes
	// sequentially; the others stay parallel.
	n := 160
	a := mem.NewArray("A", n)
	par, seq := stripLoop(a, -1, 70, 75)
	rep, err := RunStripped(Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		n, 40, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SeqStrips != 1 {
		t.Fatalf("exactly one strip should fall back, got %d (%+v)", rep.SeqStrips, rep)
	}
	if rep.Valid != n {
		t.Fatalf("valid = %d", rep.Valid)
	}
	expectState(t, a, n)
}

func TestRunStrippedExceptionFallsBack(t *testing.T) {
	n := 80
	a := mem.NewArray("A", n)
	_, seq := stripLoop(a, -1, 0, 0)
	par := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		if lo == 40 {
			return 0, false, errors.New("simulated exception")
		}
		for i := lo; i < hi; i++ {
			tr.Store(a, i, float64(i+1), i, 0)
		}
		return hi - lo, false, nil
	}
	rep, err := RunStripped(Spec{Procs: 2, Shared: []*mem.Array{a}}, n, 40, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SeqStrips != 1 || rep.Valid != n {
		t.Fatalf("report %+v", rep)
	}
	expectState(t, a, n)
}

func TestRunStrippedExitInsideFailedStrip(t *testing.T) {
	// The strip both carries a dependence and contains the exit: the
	// sequential re-execution finds the exit and the loop stops.
	n := 200
	a := mem.NewArray("A", n)
	par, seq := stripLoop(a, 90, 85, 95)
	rep, err := RunStripped(Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		n, 40, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 90 || !rep.Done || rep.SeqStrips != 1 {
		t.Fatalf("report %+v", rep)
	}
	expectState(t, a, 90)
}

func TestRunStrippedRejectsBadArgs(t *testing.T) {
	if _, err := RunStripped(Spec{}, 10, 4, nil, nil); err == nil {
		t.Fatal("nil runners must be rejected")
	}
	par := func(mem.Tracker, int, int) (int, bool, error) { return 0, false, nil }
	seq := func(int, int) (int, bool) { return 0, false }
	if _, err := RunStripped(Spec{}, 10, 0, par, seq); err == nil {
		t.Fatal("zero strip must be rejected")
	}
}

func TestRunStrippedOverReportingStripFails(t *testing.T) {
	// A parallel runner claiming more valid iterations than the strip
	// holds is treated as invalid (fallback), not trusted.
	n := 40
	a := mem.NewArray("A", n)
	_, seq := stripLoop(a, -1, 0, 0)
	par := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		return hi - lo + 99, false, nil
	}
	rep, err := RunStripped(Spec{Procs: 2, Shared: []*mem.Array{a}}, n, 20, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SeqStrips != rep.Strips {
		t.Fatalf("over-reporting strips must all fall back: %+v", rep)
	}
	expectState(t, a, n)
}
