package speculate

import (
	"context"
	"fmt"

	"whilepar/internal/cancel"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/pdtest"
	"whilepar/internal/tsmem"
)

// pipeGen is one generation of the double-buffered strip machinery: a
// time-stamp memory and a PD-shadow set that one in-flight strip owns
// exclusively.  Two generations alternate, so strip k+1 can execute
// into generation B while the coordinator still validates strip k
// against generation A.
type pipeGen struct {
	ts      *tsmem.Memory
	tests   []*pdtest.Test
	tracker mem.Tracker
}

func newPipeGen(spec Spec, procs int) *pipeGen {
	g := &pipeGen{ts: spec.newMemory(procs)}
	g.ts.SetObs(spec.Metrics, spec.Tracer)
	for _, a := range spec.Tested {
		t := pdtest.New(a, procs)
		t.SetObs(spec.Metrics, spec.Tracer)
		g.tests = append(g.tests, t)
	}
	g.tracker = newFusedTracker(g.ts, g.tests)
	return g
}

// release returns the generation's buffers to the shared arena.
func (g *pipeGen) release() {
	g.ts.Release()
	for _, t := range g.tests {
		t.Release()
	}
}

// prepare re-arms the generation for a new strip: checkpoint the
// current array state (the rollback target if the strip is squashed or
// fails) and epoch-reset the stamps and shadow marks.  pending is the
// union of write-sets applied to the arrays since this generation's
// checkpoint last mirrored them — Rearm refreshes just those locations
// — or nil to force a full copy.
func (g *pipeGen) prepare(pending [][]int) {
	g.ts.Rearm(pending)
	for _, t := range g.tests {
		t.Reset()
	}
}

// appendWS accumulates a strip's write-set into a generation's pending
// list.  A nil destination means the generation has no valid baseline
// to extend (its next prepare full-checkpoints anyway), so it stays nil.
func appendWS(dst, ws [][]int) [][]int {
	if dst == nil {
		return nil
	}
	for i := range ws {
		dst[i] = append(dst[i], ws[i]...)
	}
	return dst
}

// analyze runs the PD test for a strip validated through firstValid
// global iterations and returns whether every test passed plus the
// earliest violating iteration (-1 if none was identified).
func (g *pipeGen) analyze(firstValid int) (ok bool, firstViol int) {
	ok, firstViol = true, -1
	for _, t := range g.tests {
		r := t.Analyze(firstValid)
		if !r.DOALL {
			ok = false
			if r.FirstViolation >= 0 && (firstViol < 0 || r.FirstViolation < firstViol) {
				firstViol = r.FirstViolation
			}
		}
	}
	return ok, firstViol
}

type pipeResult struct {
	valid int
	done  bool
	err   error
}

// RunStrippedPipelined is RunStripped with the serial PD-test phase
// hidden behind the next strip's execution — the software pipeline the
// persistent pool makes cheap.  While the coordinator analyzes sealed
// strip k against generation A, strip k+1 already executes into
// generation B (its own checkpoint, stamps and shadow marks); if k
// validates cleanly the pipeline advances and k+1's analysis overlaps
// k+2, and if k fails, k+1 is squashed — joined, then rewound via B's
// checkpoint — before k is repaired exactly as in RunStripped.
//
// Why squash-on-fail is safe: B's checkpoint is taken after strip k's
// execution has completed, so it snapshots the post-k state.  Joining
// the in-flight strip and restoring B's checkpoint therefore erases
// exactly the writes of strip k+1 — a location written by both strips
// gets k's value back, one written only by k+1 gets its pre-k+1 value
// back — after which strip k's own repair (overshoot undo, partial
// commit, or full restore against A's pre-k checkpoint) proceeds on
// precisely the state the serial protocol would see.  The PD analysis
// itself only reads generation A's shadow marks, never array data, so
// it cannot observe k+1's concurrent stores.
//
// The overlap is only launched for a clean-looking full strip (no
// exception, no QUIT, every iteration valid) — the common case strip
// mining is sized for; anything else ends or restarts the pipeline
// anyway, so there is nothing useful to run ahead.
//
// RunStrippedPipelined is RunStrippedPipelinedCtx under
// context.Background().
func RunStrippedPipelined(spec Spec, total, strip int, par StripPar, seq StripSeq) (StripReport, error) {
	return RunStrippedPipelinedCtx(context.Background(), spec, total, strip, par, seq)
}

// RunStrippedPipelinedCtx is the pipelined protocol under a context.
// Cancellation points are the strip boundaries, with one pipelined
// twist: when the overlapped strip k+1 surfaces a cancellation (or a
// contained panic with Spec.PanicFallback unset) while strip k commits,
// k+1 is squashed — rewound via its generation's post-k checkpoint,
// counted in Squashed — so the shared arrays hold exactly the committed
// prefix through strip k before the typed error unwinds.  Cancellation
// never falls back to sequential re-execution.
func RunStrippedPipelinedCtx(ctx context.Context, spec Spec, total, strip int, par StripPar, seq StripSeq) (StripReport, error) {
	return runStrippedPipelinedFrom(ctx, spec, 0, total, strip, par, seq)
}

// RunStrippedPipelinedFromCtx is the pipelined protocol over [start,
// total) for an orchestrator that already committed a prefix below
// start (the auto-tuner's sequential probe).  Semantics are those of
// RunStrippedPipelinedCtx with the first generation's checkpoint
// snapshotting the post-start state; Valid counts iterations from
// start.
func RunStrippedPipelinedFromCtx(ctx context.Context, spec Spec, start, total, strip int, par StripPar, seq StripSeq) (StripReport, error) {
	return runStrippedPipelinedFrom(ctx, spec, start, total, strip, par, seq)
}

// runStrippedPipelinedFrom is the pipelined protocol over [start,
// total): iterations below start are treated as already committed (the
// orchestrator's sequential probe, or a tuned engine's committed
// prefix), so the first generation's checkpoint snapshots the
// post-start state and every stamp, PD mark and Analyze call keeps
// using global indices.  The report's Valid counts iterations from
// start.
func runStrippedPipelinedFrom(ctx context.Context, spec Spec, start, total, strip int, par StripPar, seq StripSeq) (StripReport, error) {
	if par == nil || seq == nil {
		return StripReport{}, fmt.Errorf("speculate: both strip runners are required")
	}
	if strip < 1 {
		return StripReport{}, fmt.Errorf("speculate: strip size must be positive, got %d", strip)
	}
	if spec.SparseUndo {
		return StripReport{}, fmt.Errorf("speculate: RunStrippedPipelined requires the dense stamped path (no SparseUndo)")
	}
	if len(spec.Privatized) > 0 {
		// Privatized writes bypass the generation's Memory, so a squash
		// could not erase them.
		return StripReport{}, fmt.Errorf("speculate: RunStrippedPipelined does not support privatized arrays")
	}
	procs := spec.Procs
	if procs < 1 {
		procs = 1
	}
	mx, tr := spec.Metrics, spec.Tracer

	a, b := newPipeGen(spec, procs), newPipeGen(spec, procs)
	defer a.release()
	defer b.release()

	// pendA/pendB track, per generation, the union of write-sets applied
	// to the arrays since that generation's checkpoint last mirrored
	// them — what its next prepare must refresh.  nil forces a full
	// copy.  A generation sits out one strip while the other executes,
	// so its pending list accumulates (at most) two strips' writes.
	var pendA, pendB [][]int

	clamp := func(x int) int {
		if x > total {
			return total
		}
		return x
	}

	var rep StripReport
	lo := start
	if lo < 0 {
		lo = 0
	}
	if lo >= total {
		return rep, nil
	}
	if cerr := cancel.Err(ctx); cerr != nil {
		mx.CtxCancel()
		return rep, cerr
	}

	// Prime the pipeline: the first strip has nothing to overlap.
	a.prepare(nil)
	pendA = make([][]int, len(spec.Shared))
	valid, done, err := par(a.tracker, lo, clamp(lo+strip))

	for lo < total {
		hi := clamp(lo + strip)
		if spec.wantsUnwind(err) {
			// The strip in generation A executed but is unvalidated and
			// uncommitted; rewind it so only the committed prefix
			// remains, then unwind.  No overlap is in flight here: the
			// join below intercepts a canceled overlapped strip itself.
			mx.SpecAbort(fmt.Sprintf("strip [%d,%d) unwound: %v", lo, hi, err))
			if rerr := a.ts.RestoreAll(); rerr != nil {
				return rep, rerr
			}
			return rep, err
		}
		if cerr := cancel.Err(ctx); cerr != nil {
			// The runner did not observe the cancellation itself; the
			// unvalidated strip in A is discarded the same way.
			mx.CtxCancel()
			if rerr := a.ts.RestoreAll(); rerr != nil {
				return rep, rerr
			}
			return rep, cerr
		}
		rep.Strips++
		mx.SpecAttempt()
		stripStart := obs.Start(tr)

		// Strip k's writes are now in the arrays: both generations'
		// checkpoints are stale at exactly those locations.
		wsK := a.ts.WriteSet()
		pendA = appendWS(pendA, wsK)
		pendB = appendWS(pendB, wsK)

		// Launch strip k+1 before validating strip k.  Generation B's
		// checkpoint (re)arms inside the goroutine: it reads the post-k
		// array state, which the coordinator's analysis never writes.
		clean := err == nil && valid == hi-lo && !done
		var next chan pipeResult
		if clean && hi < total {
			next = make(chan pipeResult, 1)
			mx.PipelineOverlap()
			rep.Overlapped++
			go func(g *pipeGen, lo2, hi2 int, pend [][]int) {
				g.prepare(pend)
				v, d, e := par(g.tracker, lo2, hi2)
				next <- pipeResult{v, d, e}
			}(b, hi, clamp(hi+strip), pendB)
			// B is armed against the post-k state as of this launch;
			// writes from here on accumulate into a fresh list (the
			// goroutine owns the old one).
			pendB = make([][]int, len(spec.Shared))
		}

		ok := err == nil && valid >= 0 && valid <= hi-lo
		firstViol := -1
		if ok {
			ok, firstViol = a.analyze(lo + valid)
		}

		if ok && clean {
			// Full strip, PD passed: the commit is free and the next
			// strip (if any) is already running.
			mx.SpecCommit()
			if tr != nil {
				obs.Span(tr, stripStart, "strip", "speculate", 0, map[string]any{"lo": lo, "hi": hi, "valid": valid, "committed": true, "pipelined": next != nil})
			}
			rep.Valid += valid
			lo = hi
			if next != nil {
				r := <-next
				valid, done, err = r.valid, r.done, r.err
				if spec.wantsUnwind(err) {
					// The overlapped strip was canceled (or panicked)
					// mid-flight: squash it against generation B's
					// post-k checkpoint so the arrays keep exactly the
					// prefix committed through strip k.
					if rerr := b.ts.RestoreAll(); rerr != nil {
						return rep, rerr
					}
					mx.PipelineSquash()
					rep.Squashed++
					return rep, err
				}
				a, b = b, a
				pendA, pendB = pendB, pendA
			}
			continue
		}

		// The strip needs repair.  If k+1 is in flight its speculative
		// state is worthless: join it, then rewind it via generation
		// B's post-k checkpoint so the repair below operates on exactly
		// the state the serial protocol would see.
		if next != nil {
			<-next
			if rerr := b.ts.RestoreAll(); rerr != nil {
				return rep, rerr
			}
			mx.PipelineSquash()
			rep.Squashed++
		}

		if !ok {
			reason := fmt.Sprintf("strip [%d,%d) failed validation", lo, hi)
			if err != nil {
				reason = fmt.Sprintf("strip [%d,%d) exception: %v", lo, hi, err)
			}
			mx.SpecAbort(reason)
			if spec.Recovery.Enabled && err == nil && firstViol > lo {
				// Strip-local partial commit, as in RunStripped.
				restored, perr := a.ts.PartialCommit(firstViol)
				if perr != nil {
					return rep, perr
				}
				rep.Undone += restored
				rep.PrefixCommitted += firstViol - lo
				mx.PrefixCommittedAdd(firstViol - lo)
				mx.RespecRound()
				rep.SeqStrips++
				sv, sdone := seq(firstViol, hi)
				valid, done = (firstViol-lo)+sv, sdone
			} else {
				if rerr := a.ts.RestoreAll(); rerr != nil {
					return rep, rerr
				}
				rep.SeqStrips++
				valid, done = seq(lo, hi)
			}
		} else if valid < hi-lo || done {
			// Undo the strip's overshoot (stamps carry global indices).
			undone, uerr := a.ts.Undo(lo + valid)
			if uerr != nil {
				return rep, uerr
			}
			rep.Undone += undone
			done = true
		}
		if ok {
			mx.SpecCommit()
		}
		if tr != nil {
			obs.Span(tr, stripStart, "strip", "speculate", 0, map[string]any{"lo": lo, "hi": hi, "valid": valid, "committed": ok})
		}
		rep.Valid += valid
		if done {
			rep.Done = true
			return rep, nil
		}

		// Every path reaching here ran a sequential repair whose writes
		// bypassed the trackers: neither generation's checkpoint can be
		// trusted for an incremental re-arm.
		a.ts.InvalidateCheckpoint()
		b.ts.InvalidateCheckpoint()
		pendA, pendB = nil, nil

		// Restart the pipeline at the next strip.
		lo = hi
		if lo < total {
			a.prepare(nil)
			pendA = make([][]int, len(spec.Shared))
			valid, done, err = par(a.tracker, lo, clamp(lo+strip))
		}
	}
	return rep, nil
}
