package speculate

import (
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
)

// tierLoop is stripLoop's nil-tracker-tolerant twin: the same
// A[i] = i+1 loop with an RV exit and an optional planted dependence
// window, but runnable shadow-free (TierTrusted's direct strips hand
// the runner a nil tracker).  The Stealing schedule gives each worker a
// contiguous block, so with 64-aligned strips the per-worker footprints
// are block-aligned — the shape Tier-1's block-granular signatures are
// sized for.
func tierLoop(a *mem.Array, procs, exit, depLo, depHi int) (StripPar, StripSeq) {
	par := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		res := sched.DOALL(hi-lo, sched.Options{Procs: procs, Schedule: sched.Stealing},
			func(j, vpn int) sched.Control {
				i := lo + j
				if i == exit {
					return sched.Quit
				}
				if i >= depLo && i < depHi && i > 0 {
					if tr != nil {
						_ = tr.Load(a, i-1, i, vpn) // exposed read: cross-iteration dep
					} else {
						_ = a.Data[i-1]
					}
				}
				if tr != nil {
					tr.Store(a, i, float64(i+1), i, vpn)
				} else {
					a.Data[i] = float64(i + 1)
				}
				return sched.Continue
			})
		if res.QuitIndex < hi-lo {
			return res.QuitIndex, true, nil
		}
		return hi - lo, false, nil
	}
	seq := func(lo, hi int) (int, bool) {
		for i := lo; i < hi; i++ {
			if i == exit {
				return i - lo, true
			}
			a.Data[i] = float64(i + 1)
		}
		return hi - lo, false
	}
	return par, seq
}

// TestTierSignatureCleanLoop: a clean loop at TierSignature commits
// every strip and produces the exact sequential state.  Strips are
// 64*procs so the Stealing blocks are signature-block aligned; every
// strip's verdict comes from the signature intersection.
func TestTierSignatureCleanLoop(t *testing.T) {
	n, procs, strip := 1024, 4, 256
	a := mem.NewArray("A", n)
	mx := obs.NewMetrics()
	par, seq := tierLoop(a, procs, -1, 0, 0)
	rep, err := RunStripped(Spec{
		Procs: procs, Shared: []*mem.Array{a}, Tested: []*mem.Array{a},
		Tier: TierSignature, Metrics: mx,
	}, n, strip, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.Done || rep.SeqStrips != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Tier != TierSignature || rep.TierDemoted {
		t.Fatalf("tier %v demoted=%v, want signature undemoted", rep.Tier, rep.TierDemoted)
	}
	s := mx.Snapshot()
	if s.SigValidations != int64(rep.Strips) {
		t.Fatalf("sig validations = %d, want one per strip (%d)", s.SigValidations, rep.Strips)
	}
	expectState(t, a, n)
}

// depPar is a deterministic strip runner: fixed contiguous chunks per
// vpn, executed in vpn order on the calling goroutine.  The planted
// read of i-1 in [depLo, depHi) is a cross-worker flow dependence
// whenever the window spans a chunk boundary — deterministic, where a
// real stealing schedule may legitimately run both endpoints on one
// worker and make the strip signature-clean.
func depPar(a *mem.Array, procs, depLo, depHi int) StripPar {
	return func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		chunk := (hi - lo + procs - 1) / procs
		for v := 0; v < procs; v++ {
			for j := 0; j < chunk; j++ {
				i := lo + v*chunk + j
				if i >= hi {
					break
				}
				if i >= depLo && i < depHi && i > 0 {
					_ = tr.Load(a, i-1, i, v)
				}
				tr.Store(a, i, float64(i+1), i, v)
			}
		}
		return hi - lo, false, nil
	}
}

// TestTierSignatureViolationDemotes is the injected mid-run violation:
// a cross-worker flow dependence planted in strip 2 must flag the
// signatures, fail the Tier-0 re-run's PD test, fall back sequentially
// for that strip, demote the run to TierFull — and still commit the
// exact sequential result.
func TestTierSignatureViolationDemotes(t *testing.T) {
	n, procs, strip := 1024, 4, 256
	a := mem.NewArray("A", n)
	mx := obs.NewMetrics()
	// Strip [256,512) has chunks starting at 256+64k; iteration 320
	// reads element 319 — the last element of its neighbor's chunk.
	par := depPar(a, procs, 320, 322)
	_, seq := tierLoop(a, procs, -1, 0, 0)
	rep, err := RunStripped(Spec{
		Procs: procs, Shared: []*mem.Array{a}, Tested: []*mem.Array{a},
		Tier: TierSignature, Metrics: mx,
	}, n, strip, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.SeqStrips != 1 {
		t.Fatalf("report %+v", rep)
	}
	if !rep.TierDemoted {
		t.Fatalf("a real violation must demote the run: %+v", rep)
	}
	s := mx.Snapshot()
	if s.SigConflicts < 1 || s.TierDemotions != 1 || s.PDFail < 1 {
		t.Fatalf("snapshot conflicts=%d demotions=%d pdfail=%d", s.SigConflicts, s.TierDemotions, s.PDFail)
	}
	expectState(t, a, n)
}

// TestTierSignatureFalsePositiveRerun: with a tiny strip all workers
// write inside one 64-element signature block, so every strip flags —
// pure hash/block aliasing.  Each must re-run under Tier 0, validate
// clean, count a false positive, and never demote.
func TestTierSignatureFalsePositiveRerun(t *testing.T) {
	n, procs, strip := 128, 4, 32
	a := mem.NewArray("A", n)
	mx := obs.NewMetrics()
	// A deterministic runner (no real concurrency, fixed vpn blocks):
	// under sched the stealing pass can leave a whole strip on one
	// worker, which is legitimately conflict-free.
	par := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		chunk := (hi - lo) / procs
		for v := 0; v < procs; v++ {
			for j := 0; j < chunk; j++ {
				i := lo + v*chunk + j
				tr.Store(a, i, float64(i+1), i, v)
			}
		}
		return hi - lo, false, nil
	}
	_, seq := tierLoop(a, procs, -1, 0, 0)
	rep, err := RunStripped(Spec{
		Procs: procs, Shared: []*mem.Array{a}, Tested: []*mem.Array{a},
		Tier: TierSignature, Metrics: mx,
	}, n, strip, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.SeqStrips != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.SigFalsePositives != rep.Strips {
		t.Fatalf("every strip should flag and re-validate clean: fps=%d strips=%d",
			rep.SigFalsePositives, rep.Strips)
	}
	if rep.TierDemoted {
		t.Fatalf("false positives must not demote: %+v", rep)
	}
	if s := mx.Snapshot(); s.SigFalsePositives != int64(rep.Strips) || s.TierDemotions != 0 {
		t.Fatalf("snapshot fps=%d demotions=%d", s.SigFalsePositives, s.TierDemotions)
	}
	expectState(t, a, n)
}

// TestTierSignatureExitMidStrip: a partial strip cannot commit on the
// signature verdict (the overshoot undo needs element-wise stamps), so
// the final strip re-runs under Tier 0 and undoes its overshoot
// exactly.
func TestTierSignatureExitMidStrip(t *testing.T) {
	n, procs, strip := 1024, 4, 256
	a := mem.NewArray("A", n)
	par, seq := tierLoop(a, procs, 700, 0, 0)
	rep, err := RunStripped(Spec{
		Procs: procs, Shared: []*mem.Array{a}, Tested: []*mem.Array{a},
		Tier: TierSignature,
	}, n, strip, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 700 || !rep.Done || rep.TierDemoted {
		t.Fatalf("report %+v", rep)
	}
	expectState(t, a, 700)
}

// TestTierTrustedCleanLoop: shadow-free strips plus pinned audits
// commit the exact state; the audits are counted and pass.
func TestTierTrustedCleanLoop(t *testing.T) {
	n, procs, strip := 1024, 4, 128
	a := mem.NewArray("A", n)
	mx := obs.NewMetrics()
	par, seq := tierLoop(a, procs, -1, 0, 0)
	rep, err := RunStripped(Spec{
		Procs: procs, Shared: []*mem.Array{a}, Tested: []*mem.Array{a},
		Tier: TierTrusted, AuditEvery: 4, AuditPhase: 1, Metrics: mx,
	}, n, strip, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.Done || rep.SeqStrips != 0 || rep.TierDemoted {
		t.Fatalf("report %+v", rep)
	}
	if rep.AuditRuns != 2 || rep.AuditFailures != 0 { // strips 1 and 5 of 8
		t.Fatalf("audits = %d/%d failures, want 2/0", rep.AuditRuns, rep.AuditFailures)
	}
	if s := mx.Snapshot(); s.AuditRuns != 2 || s.AuditFailures != 0 {
		t.Fatalf("snapshot audits=%d failures=%d", s.AuditRuns, s.AuditFailures)
	}
	expectState(t, a, n)
}

// TestTierTrustedAuditFailure: a violation planted inside the audited
// strip revokes the trust — the run rewinds to its entry state,
// completes sequentially, demotes, and still holds the exact
// sequential result.
func TestTierTrustedAuditFailure(t *testing.T) {
	n, procs, strip := 1024, 4, 128
	a := mem.NewArray("A", n)
	mx := obs.NewMetrics()
	// AuditPhase 1 audits strip 1 ([0,128), Stealing blocks of 32):
	// iteration 64 reads element 63, its neighbor block's last element.
	par, seq := tierLoop(a, procs, -1, 64, 66)
	rep, err := RunStripped(Spec{
		Procs: procs, Shared: []*mem.Array{a}, Tested: []*mem.Array{a},
		Tier: TierTrusted, AuditEvery: 4, AuditPhase: 1, Metrics: mx,
	}, n, strip, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.SeqStrips != 1 {
		t.Fatalf("report %+v", rep)
	}
	if rep.AuditFailures != 1 || !rep.TierDemoted {
		t.Fatalf("audit failure must demote: %+v", rep)
	}
	if s := mx.Snapshot(); s.AuditFailures != 1 || s.TierDemotions != 1 {
		t.Fatalf("snapshot failures=%d demotions=%d", s.AuditFailures, s.TierDemotions)
	}
	expectState(t, a, n)
}

// TestTierTrustedExitMidStrip: termination inside a direct strip left
// untracked overshoot writes in the arrays, so the run rewinds to its
// backup and completes sequentially — the exact sequential prefix.
func TestTierTrustedExitMidStrip(t *testing.T) {
	n, procs, strip := 1024, 4, 128
	a := mem.NewArray("A", n)
	par, seq := tierLoop(a, procs, 500, 0, 0)
	rep, err := RunStripped(Spec{
		Procs: procs, Shared: []*mem.Array{a}, Tested: []*mem.Array{a},
		Tier: TierTrusted, AuditEvery: 4, AuditPhase: 1,
	}, n, strip, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 500 || !rep.Done || rep.SeqStrips != 1 {
		t.Fatalf("report %+v", rep)
	}
	expectState(t, a, 500)
}

// TestTierClampedBySparseUndo: modes that need the element-wise
// machinery silently run at TierFull whatever the spec asked for.
func TestTierClampedBySparseUndo(t *testing.T) {
	n := 128
	a := mem.NewArray("A", n)
	par, seq := tierLoop(a, 2, -1, 0, 0)
	rep, err := RunStripped(Spec{
		Procs: 2, Shared: []*mem.Array{a}, Tested: []*mem.Array{a},
		Tier: TierTrusted, SparseUndo: true,
	}, n, 32, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tier != TierFull {
		t.Fatalf("sparse undo must clamp the tier, got %v", rep.Tier)
	}
	expectState(t, a, n)
}

// fixedCtl is a minimal StripController: constant strip, no switches.
type fixedCtl struct{ strip int }

func (c fixedCtl) NextStrip(done, total int) int             { return c.strip }
func (c fixedCtl) Observe(lo, valid, hi int, committed bool) {}
func (c fixedCtl) SwitchPipeline() bool                      { return false }
func (c fixedCtl) SwitchSequential() bool                    { return false }

// TestTunedTierSignature: the tuned engine honors the tier through the
// same runtime, and a violation still demotes and commits exactly.
func TestTunedTierSignature(t *testing.T) {
	n, procs := 1024, 4
	a := mem.NewArray("A", n)
	par := depPar(a, procs, 320, 322)
	_, seq := tierLoop(a, procs, -1, 0, 0)
	rep, err := RunTunedCtx(t.Context(), Spec{
		Procs: procs, Shared: []*mem.Array{a}, Tested: []*mem.Array{a},
		Tier: TierSignature,
	}, 0, n, fixedCtl{strip: 256}, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || !rep.TierDemoted || rep.Tier != TierSignature {
		t.Fatalf("report %+v", rep)
	}
	expectState(t, a, n)
}
