package speculate

import (
	"math/rand"
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
)

// poolStripLoop is stripLoop with the strip DOALLs dispatched onto a
// persistent pool — the combination the core wiring produces when
// Options.Pipeline is set.
func poolStripLoop(a *mem.Array, pool *sched.Pool, exit, depLo, depHi int) (StripPar, StripSeq) {
	_, seq := stripLoop(a, exit, depLo, depHi)
	par := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		res := sched.DOALL(hi-lo, sched.Options{Procs: 4, Pool: pool}, func(j, vpn int) sched.Control {
			i := lo + j
			if i == exit {
				return sched.Quit
			}
			if i >= depLo && i < depHi && i > 0 {
				_ = tr.Load(a, i-1, i, vpn)
			}
			tr.Store(a, i, float64(i+1), i, vpn)
			return sched.Continue
		})
		if res.QuitIndex < hi-lo {
			return res.QuitIndex, true, nil
		}
		return hi - lo, false, nil
	}
	return par, seq
}

// TestRunStrippedPipelinedMatchesRunStripped drives both strip engines
// through randomized loops — exits, planted dependence windows,
// recovery on and off, pool-backed and spawn-per-strip DOALLs — and
// requires identical validity, fallback accounting, and final memory.
func TestRunStrippedPipelinedMatchesRunStripped(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		n := 50 + rng.Intn(400)
		strip := 1 + rng.Intn(60)
		exit := -1
		if rng.Intn(3) == 0 {
			exit = rng.Intn(n)
		}
		depLo, depHi := 0, 0
		if rng.Intn(2) == 0 {
			depLo = 1 + rng.Intn(n-1)
			depHi = depLo + 1 + rng.Intn(20)
		}
		recovery := rng.Intn(2) == 0
		usePool := rng.Intn(2) == 0

		mkSpec := func(a *mem.Array) Spec {
			return Spec{
				Procs:    4,
				Shared:   []*mem.Array{a},
				Tested:   []*mem.Array{a},
				Recovery: Recovery{Enabled: recovery},
			}
		}

		aS := mem.NewArray("A", n)
		parS, seqS := stripLoop(aS, exit, depLo, depHi)
		repS, errS := RunStripped(mkSpec(aS), n, strip, parS, seqS)
		if errS != nil {
			t.Fatalf("trial %d: RunStripped: %v", trial, errS)
		}

		aP := mem.NewArray("A", n)
		var parP StripPar
		var seqP StripSeq
		var pool *sched.Pool
		if usePool {
			pool = sched.NewPool(4)
			parP, seqP = poolStripLoop(aP, pool, exit, depLo, depHi)
		} else {
			parP, seqP = stripLoop(aP, exit, depLo, depHi)
		}
		repP, errP := RunStrippedPipelined(mkSpec(aP), n, strip, parP, seqP)
		if pool != nil {
			pool.Close()
		}
		if errP != nil {
			t.Fatalf("trial %d: RunStrippedPipelined: %v", trial, errP)
		}

		if repP.Valid != repS.Valid || repP.Done != repS.Done {
			t.Fatalf("trial %d (n=%d strip=%d exit=%d dep=[%d,%d) rec=%v pool=%v): pipelined %+v, serial %+v",
				trial, n, strip, exit, depLo, depHi, recovery, usePool, repP, repS)
		}
		if repP.SeqStrips != repS.SeqStrips || repP.PrefixCommitted != repS.PrefixCommitted {
			t.Fatalf("trial %d: fallback accounting diverged: pipelined %+v, serial %+v", trial, repP, repS)
		}
		for i := 0; i < n; i++ {
			if aP.Data[i] != aS.Data[i] {
				t.Fatalf("trial %d: A[%d] = %v (pipelined) vs %v (serial)", trial, i, aP.Data[i], aS.Data[i])
			}
		}
	}
}

func TestRunStrippedPipelinedCleanLoopOverlapsEveryStrip(t *testing.T) {
	n, strip := 320, 32
	a := mem.NewArray("A", n)
	par, seq := stripLoop(a, -1, 0, 0)
	m := obs.NewMetrics()
	rep, err := RunStrippedPipelined(
		Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}, Metrics: m},
		n, strip, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.Done || rep.SeqStrips != 0 {
		t.Fatalf("report %+v", rep)
	}
	// Every strip but the priming one runs under its predecessor's
	// validation; none is squashed.
	if want := n/strip - 1; rep.Overlapped != want || rep.Squashed != 0 {
		t.Fatalf("overlapped %d squashed %d, want %d and 0", rep.Overlapped, rep.Squashed, want)
	}
	s := m.Snapshot()
	if s.PipelinedStrips != int64(rep.Overlapped) || s.PipelineSquashes != 0 {
		t.Fatalf("metrics %d/%d disagree with report %+v", s.PipelinedStrips, s.PipelineSquashes, rep)
	}
	expectState(t, a, n)
}

func TestRunStrippedPipelinedSquashesInFlightStrip(t *testing.T) {
	// The dependence window sits in strip 1, which looks clean to its
	// own DOALL (the violation only surfaces in the PD analysis), so
	// strip 2 is already in flight when strip 1 fails — it must be
	// squashed and the final state must still be exact.
	n, strip := 200, 40
	a := mem.NewArray("A", n)
	par, seq := stripLoop(a, -1, 50, 55)
	m := obs.NewMetrics()
	rep, err := RunStrippedPipelined(
		Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}, Metrics: m},
		n, strip, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.SeqStrips != 1 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Squashed != 1 {
		t.Fatalf("squashed = %d, want 1 (%+v)", rep.Squashed, rep)
	}
	if s := m.Snapshot(); s.PipelineSquashes != 1 {
		t.Fatalf("metrics squashes = %d", s.PipelineSquashes)
	}
	expectState(t, a, n)
}

func TestRunStrippedPipelinedRejectsUnsupportedSpecs(t *testing.T) {
	par := func(mem.Tracker, int, int) (int, bool, error) { return 0, false, nil }
	seq := func(int, int) (int, bool) { return 0, false }
	a := mem.NewArray("A", 8)
	if _, err := RunStrippedPipelined(Spec{SparseUndo: true}, 10, 4, par, seq); err == nil {
		t.Fatal("SparseUndo must be rejected")
	}
	if _, err := RunStrippedPipelined(Spec{Privatized: []PrivSpec{{Arr: a}}}, 10, 4, par, seq); err == nil {
		t.Fatal("Privatized must be rejected")
	}
	if _, err := RunStrippedPipelined(Spec{}, 10, 0, par, seq); err == nil {
		t.Fatal("zero strip must be rejected")
	}
	if _, err := RunStrippedPipelined(Spec{}, 10, 4, nil, nil); err == nil {
		t.Fatal("nil runners must be rejected")
	}
}
