package speculate

import (
	"context"
	"fmt"

	"whilepar/internal/cancel"
	"whilepar/internal/costmodel"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/pdtest"
	"whilepar/internal/window"
)

// WindowedReport describes a sliding-window speculative execution.
type WindowedReport struct {
	// Valid iterations (matches the sequential loop).
	Valid int
	// UsedParallel is false if a failed PD test forced a sequential
	// re-execution of the whole loop; with recovery enabled it stays
	// true as long as some parallel prefix was kept.
	UsedParallel bool
	// MaxSpan is the largest in-flight iteration span observed — the
	// live time-stamp footprint is bounded by MaxSpan * writes/iter.
	MaxSpan int
	// Undone locations restored (overshoot and recovery suffix undos).
	Undone int
	// RespecRounds counts renewed parallel attempts after partial
	// commits (0 on the all-or-nothing path).
	RespecRounds int
	// PrefixCommitted is the number of iterations salvaged from failed
	// rounds by partial commits.
	PrefixCommitted int
}

// WindowedBody executes one iteration under the tracker and reports
// whether it met the termination condition.
type WindowedBody func(tr mem.Tracker, i, vpn int) (quit bool)

// RunWindowed is the resource-controlled variant of the speculation
// protocol (Section 8.2 applied to Section 4/5): iterations are issued
// under a sliding window — bounding the live time-stamp memory without
// strip mining's global barriers — while stores are stamped and shadow-
// marked exactly as in Run.  On a passed PD test the overshoot beyond
// the discovered exit is undone.
//
// On a failure the behaviour depends on Spec.Recovery: disabled (or
// without a SeqFrom runner), the checkpoint is restored and seq
// re-executes the whole loop — the baseline all-or-nothing protocol.
// Enabled, the engine commits the prefix below the earliest violating
// iteration, rewinds only the suffix's stamped stores, and re-runs the
// window from the violation point with a size the RespecPolicy halves
// on every violation and doubles back on clean runs; after MaxRounds
// failed rounds (or a violation pinned at the resume point) the
// remainder completes sequentially via Recovery.SeqFrom.
//
// RunWindowed is RunWindowedCtx under context.Background().
func RunWindowed(spec Spec, n int, cfg window.Config, body WindowedBody, seq SequentialRunner) (WindowedReport, error) {
	return RunWindowedCtx(context.Background(), spec, n, cfg, body, seq)
}

// RunWindowedCtx is the sliding-window protocol under a context.  The
// round boundary is the cancellation point: once ctx is done no further
// round starts, and the report's Valid is the committed position (0 on
// the all-or-nothing path, the partially-committed prefix when recovery
// already salvaged rounds) together with ErrCanceled/ErrDeadline — the
// sequential completion path is never taken on cancellation.  The
// WindowedBody has no error channel, so mid-round cancellation is the
// caller's to arrange (return quit from the body); the engine then
// validates and commits the shortened prefix normally.
func RunWindowedCtx(ctx context.Context, spec Spec, n int, cfg window.Config, body WindowedBody, seq SequentialRunner) (WindowedReport, error) {
	if body == nil || seq == nil {
		return WindowedReport{}, fmt.Errorf("speculate: body and sequential runner are required")
	}
	procs := spec.Procs
	if procs < 1 {
		procs = 1
	}
	cfg.Procs = procs

	mx, tr := spec.Metrics, spec.Tracer
	start := obs.Start(tr)

	// One memory and one set of shadow structures serve every round:
	// PartialCommit rebases the checkpoint onto the committed state and
	// clears the stamps; Reset clears the marks.  Dependences from the
	// committed prefix into a re-run suffix need no marks — the prefix
	// is complete before the suffix re-executes, so those dependences
	// are satisfied by construction.
	ts := spec.newMemory(procs)
	ts.SetObs(mx, tr)
	ts.Checkpoint()
	var tests []*pdtest.Test
	for _, a := range spec.Tested {
		t := pdtest.New(a, procs)
		t.SetObs(mx, tr)
		tests = append(tests, t)
	}
	defer func() {
		ts.Release()
		for _, t := range tests {
			t.Release()
		}
	}()
	tracker := newFusedTracker(ts, tests)

	rec := spec.Recovery
	recovering := rec.Enabled && rec.SeqFrom != nil
	var policy *costmodel.RespecPolicy
	if recovering {
		policy = rec.Policy
		if policy == nil {
			w0 := cfg.Window
			if w0 < 1 {
				w0 = n
			}
			policy = costmodel.NewRespecPolicy(w0, procs, n)
		}
	}

	var rep WindowedReport
	pos := 0
	for {
		if cerr := cancel.Err(ctx); cerr != nil {
			// Rounds already partially committed (pos > 0) are final;
			// the stamps of the last failed round were cleared by its
			// PartialCommit, so no rewind is pending here.
			mx.CtxCancel()
			rep.Valid = pos
			rep.UsedParallel = pos > 0
			return rep, cerr
		}
		mx.SpecAttempt()
		runCfg := cfg
		if policy != nil {
			runCfg.Window = policy.Window()
		}
		res := window.Run(n-pos, runCfg, func(i, vpn int) window.Control {
			if body(tracker, pos+i, vpn) {
				return window.Quit
			}
			return window.Continue
		})
		if res.MaxSpan > rep.MaxSpan {
			rep.MaxSpan = res.MaxSpan
		}
		valid := pos + res.QuitIndex

		okAll := true
		firstViol := -1
		for _, t := range tests {
			if r := t.Analyze(valid); !r.DOALL {
				okAll = false
				if r.FirstViolation >= 0 && (firstViol < 0 || r.FirstViolation < firstViol) {
					firstViol = r.FirstViolation
				}
			}
		}

		if okAll {
			undone, err := ts.Undo(valid)
			if err != nil {
				mx.SpecAbort(fmt.Sprintf("undo impossible: %v", err))
				if rerr := ts.RestoreAll(); rerr != nil {
					return WindowedReport{}, rerr
				}
				return windowedSeqFallback(rec, rep, pos, seq), nil
			}
			rep.Undone += undone
			ts.Commit()
			mx.SpecCommit()
			if policy != nil {
				policy.OnCleanRun(valid - pos)
			}
			if tr != nil {
				obs.Span(tr, start, "windowed-speculation", "speculate", 0, map[string]any{
					"valid": valid, "maxSpan": rep.MaxSpan, "undone": rep.Undone,
					"respecRounds": rep.RespecRounds, "prefixCommitted": rep.PrefixCommitted,
				})
			}
			rep.Valid = valid
			rep.UsedParallel = true
			return rep, nil
		}

		mx.SpecAbort(fmt.Sprintf("PD test failed validating [%d,%d)", pos, valid))

		if !recovering {
			// Baseline all-or-nothing: rewind and re-run sequentially.
			// (Reachable only on the first round — without recovery
			// there is no second round.)
			if err := ts.RestoreAll(); err != nil {
				return WindowedReport{}, err
			}
			rep.Valid = seq()
			return rep, nil
		}

		rep.RespecRounds++
		mx.RespecRound()
		policy.OnViolation()

		if firstViol > pos && rep.RespecRounds < rec.maxRounds() {
			restored, perr := ts.PartialCommit(firstViol)
			if perr != nil {
				return WindowedReport{}, perr
			}
			rep.Undone += restored
			rep.PrefixCommitted += firstViol - pos
			mx.PrefixCommittedAdd(firstViol - pos)
			for _, t := range tests {
				t.Reset()
			}
			if tr != nil {
				obs.Instant(tr, "partial-recovery", "speculate", 0, map[string]any{
					"resumeAt": firstViol, "restored": restored, "window": policy.Window(),
				})
			}
			pos = firstViol
			continue
		}

		// Round budget spent, or the violation sits at the resume point
		// (no parallel progress possible there): salvage what this
		// round allows, then complete sequentially.
		if firstViol > pos {
			restored, perr := ts.PartialCommit(firstViol)
			if perr != nil {
				return WindowedReport{}, perr
			}
			rep.Undone += restored
			rep.PrefixCommitted += firstViol - pos
			mx.PrefixCommittedAdd(firstViol - pos)
			pos = firstViol
		} else if err := ts.RestoreAll(); err != nil {
			return WindowedReport{}, err
		}
		return windowedSeqFallback(rec, rep, pos, seq), nil
	}
}

// windowedSeqFallback completes a windowed execution sequentially from
// pos: via Recovery.SeqFrom when a prefix has been committed (plain seq
// would wrongly re-apply it), via the full seq runner otherwise.
func windowedSeqFallback(rec Recovery, rep WindowedReport, pos int, seq SequentialRunner) WindowedReport {
	if pos > 0 && rec.SeqFrom != nil {
		rep.Valid = rec.SeqFrom(pos)
		rep.UsedParallel = true
	} else {
		rep.Valid = seq()
	}
	return rep
}
