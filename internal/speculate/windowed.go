package speculate

import (
	"fmt"

	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/pdtest"
	"whilepar/internal/tsmem"
	"whilepar/internal/window"
)

// WindowedReport describes a sliding-window speculative execution.
type WindowedReport struct {
	// Valid iterations (matches the sequential loop).
	Valid int
	// UsedParallel is false if a failed PD test forced a sequential
	// re-execution of the whole loop.
	UsedParallel bool
	// MaxSpan is the largest in-flight iteration span observed — the
	// live time-stamp footprint is bounded by MaxSpan * writes/iter.
	MaxSpan int
	// Undone locations restored after the exit was found.
	Undone int
}

// WindowedBody executes one iteration under the tracker and reports
// whether it met the termination condition.
type WindowedBody func(tr mem.Tracker, i, vpn int) (quit bool)

// RunWindowed is the resource-controlled variant of the speculation
// protocol (Section 8.2 applied to Section 4/5): iterations are issued
// under a sliding window — bounding the live time-stamp memory without
// strip mining's global barriers — while stores are stamped and shadow-
// marked exactly as in Run.  On a passed PD test the overshoot beyond
// the discovered exit is undone; on a failure the checkpoint is restored
// and seq re-executes the loop.
func RunWindowed(spec Spec, n int, cfg window.Config, body WindowedBody, seq SequentialRunner) (WindowedReport, error) {
	if body == nil || seq == nil {
		return WindowedReport{}, fmt.Errorf("speculate: body and sequential runner are required")
	}
	procs := spec.Procs
	if procs < 1 {
		procs = 1
	}
	cfg.Procs = procs

	mx, tr := spec.Metrics, spec.Tracer
	mx.SpecAttempt()
	start := obs.Start(tr)

	ts := tsmem.NewSharded(procs, spec.Shared...)
	ts.SetObs(mx, tr)
	ts.Checkpoint()
	var tests []*pdtest.Test
	var observers []mem.Observer
	for _, a := range spec.Tested {
		t := pdtest.New(a, procs)
		t.SetObs(mx, tr)
		tests = append(tests, t)
		observers = append(observers, t.Observer())
	}
	var tracker mem.Tracker = ts.Tracker()
	if len(observers) > 0 {
		tracker = mem.Chain{Observers: observers, Sink: tracker}
	}

	res := window.Run(n, cfg, func(i, vpn int) window.Control {
		if body(tracker, i, vpn) {
			return window.Quit
		}
		return window.Continue
	})
	valid := res.QuitIndex

	for _, t := range tests {
		if r := t.Analyze(valid); !r.DOALL {
			mx.SpecAbort(fmt.Sprintf("PD test failed on array %q", t.Array().Name))
			if err := ts.RestoreAll(); err != nil {
				return WindowedReport{}, err
			}
			return WindowedReport{Valid: seq(), MaxSpan: res.MaxSpan}, nil
		}
	}
	undone, err := ts.Undo(valid)
	if err != nil {
		mx.SpecAbort(fmt.Sprintf("undo impossible: %v", err))
		if rerr := ts.RestoreAll(); rerr != nil {
			return WindowedReport{}, rerr
		}
		return WindowedReport{Valid: seq(), MaxSpan: res.MaxSpan}, nil
	}
	ts.Commit()
	mx.SpecCommit()
	if tr != nil {
		obs.Span(tr, start, "windowed-speculation", "speculate", 0, map[string]any{"valid": valid, "maxSpan": res.MaxSpan, "undone": undone})
	}
	return WindowedReport{Valid: valid, UsedParallel: true, MaxSpan: res.MaxSpan, Undone: undone}, nil
}
