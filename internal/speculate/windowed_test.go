package speculate

import (
	"testing"
	"testing/quick"

	"whilepar/internal/mem"
	"whilepar/internal/window"
)

func TestRunWindowedCleanLoop(t *testing.T) {
	n := 500
	a := mem.NewArray("A", n)
	rep, err := RunWindowed(
		Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		n,
		window.Config{Window: 16},
		func(tr mem.Tracker, i, vpn int) bool {
			tr.Store(a, i, float64(i+1), i, vpn)
			return false
		},
		func() int { t.Fatal("must not fall back"); return 0 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedParallel || rep.Valid != n {
		t.Fatalf("report %+v", rep)
	}
	if rep.MaxSpan > 16 {
		t.Fatalf("span %d exceeded the window", rep.MaxSpan)
	}
	for i := 0; i < n; i++ {
		if a.Data[i] != float64(i+1) {
			t.Fatalf("A[%d] = %v", i, a.Data[i])
		}
	}
}

func TestRunWindowedExitUndoesBoundedOvershoot(t *testing.T) {
	n, exit, w := 2000, 300, 12
	a := mem.NewArray("A", n)
	for i := range a.Data {
		a.Data[i] = -1
	}
	rep, err := RunWindowed(
		Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		n,
		window.Config{Window: w},
		func(tr mem.Tracker, i, vpn int) bool {
			if i == exit {
				return true
			}
			tr.Store(a, i, float64(i), i, vpn)
			return false
		},
		func() int { t.Fatal("must not fall back"); return 0 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != exit || !rep.UsedParallel {
		t.Fatalf("report %+v", rep)
	}
	// The window bounds the overshoot and hence the undo.
	if rep.Undone > w+1 {
		t.Fatalf("undone %d exceeds window bound %d", rep.Undone, w)
	}
	for i := 0; i < n; i++ {
		want := -1.0
		if i < exit {
			want = float64(i)
		}
		if a.Data[i] != want {
			t.Fatalf("A[%d] = %v, want %v", i, a.Data[i], want)
		}
	}
}

func TestRunWindowedDependenceFallsBack(t *testing.T) {
	n := 200
	a := mem.NewArray("A", n)
	seqRan := false
	rep, err := RunWindowed(
		Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}},
		n,
		window.Config{Window: 8},
		func(tr mem.Tracker, i, vpn int) bool {
			prev := 0.0
			if i > 0 {
				prev = tr.Load(a, i-1, i, vpn)
			}
			tr.Store(a, i, prev+1, i, vpn)
			return false
		},
		func() int {
			seqRan = true
			for i := 0; i < n; i++ {
				prev := 0.0
				if i > 0 {
					prev = a.Data[i-1]
				}
				a.Data[i] = prev + 1
			}
			return n
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedParallel || !seqRan || rep.Valid != n {
		t.Fatalf("report %+v, seqRan=%v", rep, seqRan)
	}
	for i := 0; i < n; i++ {
		if a.Data[i] != float64(i+1) {
			t.Fatalf("sequential re-execution wrong at %d: %v", i, a.Data[i])
		}
	}
}

func TestRunWindowedRejectsNilRunners(t *testing.T) {
	if _, err := RunWindowed(Spec{}, 10, window.Config{}, nil, nil); err == nil {
		t.Fatal("nil runners must be rejected")
	}
}

// Property: windowed speculation matches the sequential prefix for
// random exits, windows and processor counts.
func TestRunWindowedMatchesSequentialProperty(t *testing.T) {
	f := func(exitRaw, wRaw, procsRaw uint8) bool {
		n := 150
		exit := int(exitRaw) % n
		procs := int(procsRaw)%4 + 1
		w := int(wRaw)%24 + procs
		par := mem.NewArray("A", n)
		seq := mem.NewArray("A", n)
		for i := 0; i < exit; i++ {
			seq.Data[i] = float64(i * 2)
		}
		rep, err := RunWindowed(
			Spec{Procs: procs, Shared: []*mem.Array{par}, Tested: []*mem.Array{par}},
			n,
			window.Config{Window: w},
			func(tr mem.Tracker, i, vpn int) bool {
				if i == exit {
					return true
				}
				tr.Store(par, i, float64(i*2), i, vpn)
				return false
			},
			func() int { return -1 }, // would corrupt; must not run
		)
		return err == nil && rep.UsedParallel && rep.Valid == exit && par.Equal(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
