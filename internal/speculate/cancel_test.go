package speculate

// Cancellation and panic-containment behaviour of the context-aware
// engine entry points: cancellation must return the committed prefix
// with a typed error and restored state — never the sequential
// fallback — and contained panics must surface as ErrWorkerPanic
// unless Spec.PanicFallback routes them through the exception path.

import (
	"context"
	"errors"
	"runtime/debug"
	"testing"

	"whilepar/internal/cancel"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/window"
)

func TestRunCtxPreCanceled(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	a := mem.NewArray("A", 8)
	m := &obs.Metrics{}
	par := func(tr mem.Tracker) (int, error) { t.Fatal("runner must not start"); return 0, nil }
	seq := func() int { t.Fatal("no sequential fallback on cancel"); return 0 }
	_, err := RunCtx(ctx, Spec{Procs: 2, Shared: []*mem.Array{a}, Metrics: m}, par, seq)
	if !errors.Is(err, cancel.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if m.Snapshot().CtxCancels != 1 {
		t.Fatalf("snapshot %+v", m.Snapshot())
	}
}

func TestRunCtxRunnerCancelRestores(t *testing.T) {
	// The runner writes half the array, then surfaces a cancellation:
	// the engine must rewind those writes and return the typed error
	// without ever invoking the sequential fallback.
	n := 16
	a := mem.NewArray("A", n)
	ctx, stop := context.WithCancel(context.Background())
	par := func(tr mem.Tracker) (int, error) {
		for i := 0; i < n/2; i++ {
			tr.Store(a, i, float64(i+1), i, 0)
		}
		stop()
		return 0, cancel.Wrap(ctx.Err())
	}
	seq := func() int { t.Fatal("no sequential fallback on cancel"); return 0 }
	rep, err := RunCtx(ctx, Spec{Procs: 2, Shared: []*mem.Array{a}}, par, seq)
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid != 0 || rep.UsedParallel {
		t.Fatalf("report %+v", rep)
	}
	expectState(t, a, 0) // every speculative write rewound
}

func TestRunCtxPanicSurfacesByDefault(t *testing.T) {
	a := mem.NewArray("A", 8)
	pe := &cancel.PanicError{Iter: 3, VPN: 1, Value: "boom", Stack: debug.Stack()}
	par := func(tr mem.Tracker) (int, error) {
		tr.Store(a, 0, 1, 0, 0)
		return 0, pe
	}
	seq := func() int { t.Fatal("PanicFallback is off"); return 0 }
	_, err := RunCtx(context.Background(), Spec{Procs: 2, Shared: []*mem.Array{a}}, par, seq)
	if !errors.Is(err, cancel.ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
	got, ok := cancel.AsPanic(err)
	if !ok || got.Iter != 3 {
		t.Fatalf("panic detail lost: %v", err)
	}
	expectState(t, a, 0)
}

func TestRunCtxPanicFallbackRunsSequential(t *testing.T) {
	n := 10
	a := mem.NewArray("A", n)
	par := func(tr mem.Tracker) (int, error) {
		tr.Store(a, 0, 99, 0, 0)
		return 0, &cancel.PanicError{Iter: 0, Value: "boom"}
	}
	seq := func() int {
		for i := 0; i < n; i++ {
			a.Data[i] = float64(i + 1)
		}
		return n
	}
	rep, err := RunCtx(context.Background(), Spec{Procs: 2, Shared: []*mem.Array{a}, PanicFallback: true}, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.UsedParallel || rep.Failure == "" {
		t.Fatalf("report %+v", rep)
	}
	expectState(t, a, n)
}

func TestRunStrippedCtxCancelKeepsCommittedPrefix(t *testing.T) {
	// Cancel once the second strip starts: strip one's 40 iterations
	// are committed and kept; the partially-run second strip is
	// rewound.
	n, strip := 160, 40
	a := mem.NewArray("A", n)
	ctx, stop := context.WithCancel(context.Background())
	m := &obs.Metrics{}
	par := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		if lo >= strip {
			// Write part of the strip, then notice the cancellation.
			tr.Store(a, lo, -1, lo, 0)
			stop()
			return 0, false, cancel.Wrap(ctx.Err())
		}
		for i := lo; i < hi; i++ {
			tr.Store(a, i, float64(i+1), i, 0)
		}
		return hi - lo, false, nil
	}
	seq := func(lo, hi int) (int, bool) { t.Fatal("no sequential fallback on cancel"); return 0, false }
	rep, err := RunStrippedCtx(ctx, Spec{Procs: 2, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}, Metrics: m},
		n, strip, par, seq)
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid != strip {
		t.Fatalf("committed prefix = %d, want %d (%+v)", rep.Valid, strip, rep)
	}
	expectState(t, a, strip)
}

func TestRunStrippedCtxStopsAtBoundary(t *testing.T) {
	// A runner that never observes ctx itself: the engine's own
	// boundary check must still stop issuing strips.
	n, strip := 120, 30
	a := mem.NewArray("A", n)
	ctx, stop := context.WithCancel(context.Background())
	m := &obs.Metrics{}
	par, seq := stripLoop(a, -1, 0, 0)
	wrapped := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		if lo == strip {
			stop() // fires mid-run; this strip still completes
		}
		return par(tr, lo, hi)
	}
	rep, err := RunStrippedCtx(ctx, Spec{Procs: 4, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}, Metrics: m},
		n, strip, wrapped, seq)
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid != 2*strip || rep.Strips != 2 {
		t.Fatalf("report %+v", rep)
	}
	if m.Snapshot().CtxCancels != 1 {
		t.Fatalf("snapshot %+v", m.Snapshot())
	}
	expectState(t, a, 2*strip)
}

func TestRunStrippedCtxPanicFallbackStaysLocal(t *testing.T) {
	// With PanicFallback set a panicking strip re-executes
	// sequentially, strip-locally, like any exception.
	n, strip := 80, 20
	a := mem.NewArray("A", n)
	par0, seq := stripLoop(a, -1, 0, 0)
	par := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		if lo == 2*strip {
			tr.Store(a, lo, -5, lo, 0)
			return 0, false, &cancel.PanicError{Iter: lo, Value: "boom"}
		}
		return par0(tr, lo, hi)
	}
	rep, err := RunStrippedCtx(context.Background(),
		Spec{Procs: 4, Shared: []*mem.Array{a}, PanicFallback: true}, n, strip, par, seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != n || rep.SeqStrips != 1 {
		t.Fatalf("report %+v", rep)
	}
	expectState(t, a, n)
}

func TestRunRecoveringCtxCancelReturnsPosition(t *testing.T) {
	n := 100
	a := mem.NewArray("A", n)
	ctx, stop := context.WithCancel(context.Background())
	calls := 0
	par := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		calls++
		if calls == 1 {
			// First window: complete 30 iterations and QUIT-free stop
			// via a short valid count so the engine continues.
			for i := lo; i < lo+30; i++ {
				tr.Store(a, i, float64(i+1), i, 0)
			}
			stop()
			return 30, false, cancel.Wrap(ctx.Err())
		}
		t.Fatal("no window may start after cancellation")
		return 0, false, nil
	}
	seq := func(lo, hi int) (int, bool) { t.Fatal("no sequential completion on cancel"); return 0, false }
	rep, err := RunRecoveringCtx(ctx, Spec{Procs: 2, Shared: []*mem.Array{a}}, n, par, seq)
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid != 0 {
		t.Fatalf("canceled window must be rewound entirely: %+v", rep)
	}
	expectState(t, a, 0)
}

func TestRunWindowedCtxCancelAtBoundary(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	n := 50
	a := mem.NewArray("A", n)
	m := &obs.Metrics{}
	body := func(tr mem.Tracker, i, vpn int) bool { t.Fatal("no round may start"); return true }
	seq := func() int { t.Fatal("no sequential fallback on cancel"); return 0 }
	rep, err := RunWindowedCtx(ctx, Spec{Procs: 2, Shared: []*mem.Array{a}, Metrics: m},
		n, window.Config{Window: 8}, body, seq)
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid != 0 || rep.UsedParallel {
		t.Fatalf("report %+v", rep)
	}
	if m.Snapshot().CtxCancels != 1 {
		t.Fatalf("snapshot %+v", m.Snapshot())
	}
}

func TestRunStrippedPipelinedCtxCancelSquashesOverlap(t *testing.T) {
	// Strip one runs clean, so strip two is launched as overlap; strip
	// two surfaces a cancellation mid-flight.  The engine must keep
	// strip one's committed values, squash strip two, and unwind.
	n, strip := 120, 40
	a := mem.NewArray("A", n)
	ctx, stop := context.WithCancel(context.Background())
	m := &obs.Metrics{}
	par := func(tr mem.Tracker, lo, hi int) (int, bool, error) {
		if lo >= strip {
			tr.Store(a, lo, -3, lo, 0)
			stop()
			return 0, false, cancel.Wrap(ctx.Err())
		}
		for i := lo; i < hi; i++ {
			tr.Store(a, i, float64(i+1), i, 0)
		}
		return hi - lo, false, nil
	}
	seq := func(lo, hi int) (int, bool) { t.Fatal("no sequential fallback on cancel"); return 0, false }
	rep, err := RunStrippedPipelinedCtx(ctx,
		Spec{Procs: 2, Shared: []*mem.Array{a}, Tested: []*mem.Array{a}, Metrics: m},
		n, strip, par, seq)
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if rep.Valid != strip || rep.Squashed != 1 {
		t.Fatalf("report %+v", rep)
	}
	if m.Snapshot().PipelineSquashes != 1 {
		t.Fatalf("snapshot %+v", m.Snapshot())
	}
	expectState(t, a, strip)
}

func TestRunTwiceCtxCancelBetweenRuns(t *testing.T) {
	n := 12
	a := mem.NewArray("A", n)
	ctx, stop := context.WithCancel(context.Background())
	first := func() (int, error) {
		for i := 0; i < n; i++ {
			a.Data[i] = float64(i + 1) // direct writes; checkpoint covers them
		}
		stop()
		return n, nil
	}
	second := func(valid int) error { t.Fatal("second run must not start"); return nil }
	_, err := RunTwiceCtx(ctx, []*mem.Array{a}, 1, obs.Hooks{}, first, second)
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	expectState(t, a, 0) // discovery writes rewound, re-execution skipped
}
