package obs

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
)

// The structured read API over Snapshot: every scalar counter as a
// (name, value) pair, and a Prometheus text-format renderer over it.
// Consumers — the whilepard /metrics endpoint, whilebench's -metrics
// output — iterate Counters() instead of hard-coding field lists, so a
// counter added to Snapshot shows up everywhere automatically.

// Counter is one named scalar counter of a Snapshot.  Name is the
// snake_case form of the Snapshot field name (PDTests -> pd_tests).
type Counter struct {
	Name  string
	Value int64
}

// counterFields maps the int64 fields of Snapshot, in declaration
// order, to their snake_case names.  Computed once via reflection; the
// struct is fixed at compile time.
var counterFields = func() []struct {
	index int
	name  string
} {
	t := reflect.TypeOf(Snapshot{})
	var out []struct {
		index int
		name  string
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			continue
		}
		out = append(out, struct {
			index int
			name  string
		}{i, snakeCase(f.Name)})
	}
	return out
}()

// snakeCase converts a Go exported field name to snake_case, keeping
// acronym runs together: PDTests -> pd_tests, CtxCancels ->
// ctx_cancels, SigFalsePositives -> sig_false_positives.
func snakeCase(s string) string {
	var b strings.Builder
	runes := []rune(s)
	for i, r := range runes {
		upper := r >= 'A' && r <= 'Z'
		if upper && i > 0 {
			prevLower := runes[i-1] >= 'a' && runes[i-1] <= 'z'
			nextLower := i+1 < len(runes) && runes[i+1] >= 'a' && runes[i+1] <= 'z'
			if prevLower || nextLower {
				b.WriteByte('_')
			}
		}
		if upper {
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Counters returns every scalar counter of the snapshot as (name,
// value) pairs in the Snapshot's declaration order.  The per-VPN
// breakdown, abort reasons and PD verdicts are not flattened here —
// WritePrometheus renders them with labels.
func (s Snapshot) Counters() []Counter {
	v := reflect.ValueOf(s)
	out := make([]Counter, len(counterFields))
	for k, f := range counterFields {
		out[k] = Counter{Name: f.name, Value: v.Field(f.index).Int()}
	}
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: one "# TYPE <prefix>_<name> counter" header and
// sample per scalar counter, plus labeled series for the per-VPN
// iteration counts and the speculation abort reasons.
func WritePrometheus(w io.Writer, prefix string, s Snapshot) error {
	if prefix == "" {
		prefix = "whilepar"
	}
	for _, c := range s.Counters() {
		if _, err := fmt.Fprintf(w, "# TYPE %s_%s counter\n%s_%s %d\n",
			prefix, c.Name, prefix, c.Name, c.Value); err != nil {
			return err
		}
	}
	if len(s.VPNBusy) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE %s_vpn_busy counter\n", prefix); err != nil {
			return err
		}
		for vpn, n := range s.VPNBusy {
			if _, err := fmt.Fprintf(w, "%s_vpn_busy{vpn=\"%d\"} %d\n", prefix, vpn, n); err != nil {
				return err
			}
		}
	}
	if len(s.AbortReasons) > 0 {
		reasons := make([]string, 0, len(s.AbortReasons))
		for r := range s.AbortReasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		if _, err := fmt.Fprintf(w, "# TYPE %s_abort_reason counter\n", prefix); err != nil {
			return err
		}
		for _, r := range reasons {
			if _, err := fmt.Fprintf(w, "%s_abort_reason{reason=%q} %d\n", prefix, r, s.AbortReasons[r]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Add returns the field-wise sum of two snapshots' scalar counters
// (VPNBusy summed index-wise, AbortReasons merged).  It is the
// aggregation step behind a service-wide /metrics view assembled from
// per-job Metrics.  PDVerdicts are not concatenated — a cross-job list
// has no meaningful order.
func (s Snapshot) Add(o Snapshot) Snapshot {
	sv := reflect.ValueOf(&s).Elem()
	ov := reflect.ValueOf(o)
	for _, f := range counterFields {
		sv.Field(f.index).SetInt(sv.Field(f.index).Int() + ov.Field(f.index).Int())
	}
	if len(o.VPNBusy) > 0 {
		busy := make([]int64, len(s.VPNBusy))
		copy(busy, s.VPNBusy)
		for i, n := range o.VPNBusy {
			for len(busy) <= i {
				busy = append(busy, 0)
			}
			busy[i] += n
		}
		s.VPNBusy = busy
	}
	if len(o.AbortReasons) > 0 {
		merged := make(map[string]int64, len(s.AbortReasons)+len(o.AbortReasons))
		for k, v := range s.AbortReasons {
			merged[k] = v
		}
		for k, v := range o.AbortReasons {
			merged[k] += v
		}
		s.AbortReasons = merged
	}
	s.PDVerdicts = nil
	return s
}
