// Package obs is the runtime observability layer: execution-scoped
// metrics and optional structured event tracing for the speculative
// WHILE-loop runtime.
//
// The paper's profitability argument (Section 7) hinges on quantities
// the runtime itself produces — overshoot, undo volume, speculation
// aborts, PD-test verdicts — and the related work (taskloop-style
// speculation studies) shows abort/commit rates are the deciding signal
// for whether speculative execution pays.  This package makes those
// quantities observable without perturbing the hot path:
//
//   - Metrics is a set of atomic counters an execution accumulates
//     into.  Every recording method is safe on a nil *Metrics and
//     compiles down to a single predictable branch in that case, so the
//     substrates (internal/sched, internal/tsmem, ...) call them
//     unconditionally.
//   - Tracer receives structured events (iteration spans, QUIT posts,
//     checkpoint/undo, PD verdicts).  A nil Tracer costs one branch per
//     potential event; ChromeTracer (trace.go) buffers events and
//     exports them in the Chrome trace-event JSON format, loadable in
//     chrome://tracing or https://ui.perfetto.dev.
//
// Metrics is execution-scoped, not global: callers allocate one per
// orchestrated run (whilepar Options.Metrics) and read a consistent
// Snapshot after the run completes.  Counters may be read while the
// run is still in flight — they are individually atomic — but only a
// post-completion Snapshot is guaranteed to satisfy the cross-counter
// identities (Executed == valid + overshot, and so on).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics accumulates counters for one orchestrated loop execution.
// All methods are safe for concurrent use and for a nil receiver (a
// nil *Metrics records nothing).
type Metrics struct {
	// DOALL substrate.
	issued   atomic.Int64
	executed atomic.Int64
	overshot atomic.Int64
	quits    atomic.Int64

	// Guided-schedule chunking.
	chunks     atomic.Int64
	chunkIters atomic.Int64
	maxChunk   atomic.Int64
	minChunk   atomic.Int64 // 0 = unset

	// Dynamic-schedule chunking (geometric claims from the shared
	// counter).
	dynChunks     atomic.Int64
	dynChunkIters atomic.Int64

	// Time-stamped memory (internal/tsmem).
	trackedStores atomic.Int64
	stampedStores atomic.Int64
	checkpoints   atomic.Int64
	checkpointWds atomic.Int64
	restores      atomic.Int64
	undone        atomic.Int64

	// Sharded/batched memory fast path.
	batchedRanges atomic.Int64
	batchedElems  atomic.Int64
	shardMerges   atomic.Int64
	shardMergeWds atomic.Int64
	parCopies     atomic.Int64
	parCopyMaxWk  atomic.Int64

	// PD tests.
	pdTests atomic.Int64
	pdPass  atomic.Int64
	pdFail  atomic.Int64

	// Speculation protocol.
	specAttempts atomic.Int64
	specCommits  atomic.Int64
	specAborts   atomic.Int64

	// Partial-commit misspeculation recovery.
	respecRounds    atomic.Int64
	prefixCommitted atomic.Int64
	suffixUndone    atomic.Int64

	// Persistent-pool executor and pipelined strip speculation.
	poolDispatches atomic.Int64
	poolWorkers    atomic.Int64
	pipeOverlapped atomic.Int64
	pipeSquashed   atomic.Int64
	epochResets    atomic.Int64

	// Work-stealing schedule and incremental checkpoint re-arm.
	stealChunks  atomic.Int64
	stealIters   atomic.Int64
	deltaCheckps atomic.Int64
	deltaCheckWd atomic.Int64

	// Cancellation and panic containment.
	ctxCancels   atomic.Int64
	workerPanics atomic.Int64

	// Adaptive strategy selection (internal/autotune).
	probeRuns        atomic.Int64
	strategySwitches atomic.Int64

	// Tiered validation (internal/sig signatures and trusted audits).
	sigValidations atomic.Int64
	sigConflicts   atomic.Int64
	sigFalsePos    atomic.Int64
	tierDemotions  atomic.Int64
	auditRuns      atomic.Int64
	auditFailures  atomic.Int64

	mu           sync.Mutex
	vpnBusy      []*busySlot
	abortReasons map[string]int64
	pdVerdicts   []PDVerdict
}

// busySlot is one per-vpn executed counter padded out to a cache line:
// adjacent workers flush their chunk counts concurrently, and without
// the padding the slots share lines and every flush ping-pongs the line
// between cores (false sharing).  64 bytes covers x86-64 and arm64 line
// sizes.
type busySlot struct {
	v atomic.Int64
	_ [56]byte
}

// PDVerdict is one recorded PD-test outcome.
type PDVerdict struct {
	// Array names the tested array.
	Array string
	// DOALL reports whether the execution was valid as-is.
	DOALL bool
	// DOALLWithPriv reports validity under privatization.
	DOALLWithPriv bool
	// Accesses is the number of marked accesses.
	Accesses int
}

// NewMetrics returns an empty Metrics.
func NewMetrics() *Metrics { return &Metrics{} }

// IterIssued records n iterations handed to a worker by the issue
// mechanism (claimed, whether or not QUIT later suppressed them).
func (m *Metrics) IterIssued(n int) {
	if m == nil {
		return
	}
	m.issued.Add(int64(n))
}

// IterExecuted records one iteration whose body ran on processor vpn.
func (m *Metrics) IterExecuted(vpn int) {
	if m == nil {
		return
	}
	m.executed.Add(1)
	m.busySlot(vpn).Add(1)
}

// IterExecutedN records n iterations whose bodies ran on processor vpn
// in one call — the chunk-boundary flush of the batched dispatchers,
// which pays the busy-slot lookup once per chunk instead of per
// iteration.
func (m *Metrics) IterExecutedN(vpn, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.executed.Add(int64(n))
	m.busySlot(vpn).Add(int64(n))
}

// busySlot returns the per-vpn executed counter (cache-line padded),
// growing the table on first use of a processor number.
func (m *Metrics) busySlot(vpn int) *atomic.Int64 {
	if vpn < 0 {
		vpn = 0
	}
	m.mu.Lock()
	for len(m.vpnBusy) <= vpn {
		m.vpnBusy = append(m.vpnBusy, new(busySlot))
	}
	s := &m.vpnBusy[vpn].v
	m.mu.Unlock()
	return s
}

// OvershotAdd records n iterations that executed at or beyond the final
// quit index.
func (m *Metrics) OvershotAdd(n int) {
	if m == nil {
		return
	}
	m.overshot.Add(int64(n))
}

// QuitPosted records one QUIT signalled by an iteration.
func (m *Metrics) QuitPosted() {
	if m == nil {
		return
	}
	m.quits.Add(1)
}

// GuidedChunk records one chunk of the given size claimed by the Guided
// schedule.
func (m *Metrics) GuidedChunk(size int) {
	if m == nil {
		return
	}
	m.chunks.Add(1)
	m.chunkIters.Add(int64(size))
	casMax(&m.maxChunk, int64(size))
	casMinNonzero(&m.minChunk, int64(size))
}

// DynamicChunk records one chunk of the given size claimed by the
// Dynamic schedule's geometric dispatcher.
func (m *Metrics) DynamicChunk(size int) {
	if m == nil {
		return
	}
	m.dynChunks.Add(1)
	m.dynChunkIters.Add(int64(size))
}

func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func casMinNonzero(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if (cur != 0 && v >= cur) || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// TrackedStore records one store performed through a time-stamping
// tracker.
func (m *Metrics) TrackedStore() {
	if m == nil {
		return
	}
	m.trackedStores.Add(1)
}

// TrackedStoresAdd records n stores performed through a time-stamping
// tracker in one batched (range) call.
func (m *Metrics) TrackedStoresAdd(n int) {
	if m == nil {
		return
	}
	m.trackedStores.Add(int64(n))
}

// StampedStore records the first stamp taken on a memory location.
func (m *Metrics) StampedStore() {
	if m == nil {
		return
	}
	m.stampedStores.Add(1)
}

// StampedStoresAdd records n distinct stamped locations at once — the
// sharded time-stamp memory counts them during the post-barrier merge
// rather than store by store.
func (m *Metrics) StampedStoresAdd(n int) {
	if m == nil {
		return
	}
	m.stampedStores.Add(int64(n))
}

// BatchedRange records one batched LoadRange/StoreRange of elems
// elements: a single tracker interposition covering a whole strip.
func (m *Metrics) BatchedRange(elems int) {
	if m == nil {
		return
	}
	m.batchedRanges.Add(1)
	m.batchedElems.Add(int64(elems))
}

// ShardMergeDone records one post-barrier merge of per-worker stamp (or
// sparse-undo) shards into the authoritative view: shards were combined
// over words locations.
func (m *Metrics) ShardMergeDone(shards, words int) {
	if m == nil {
		return
	}
	m.shardMerges.Add(1)
	m.shardMergeWds.Add(int64(words))
}

// ParallelCopy records one checkpoint/restore span executed by workers
// concurrent workers instead of a single sequential copy.
func (m *Metrics) ParallelCopy(workers int) {
	if m == nil {
		return
	}
	m.parCopies.Add(1)
	casMax(&m.parCopyMaxWk, int64(workers))
}

// CheckpointDone records one checkpoint of the given size in words.
func (m *Metrics) CheckpointDone(words int) {
	if m == nil {
		return
	}
	m.checkpoints.Add(1)
	m.checkpointWds.Add(int64(words))
}

// RestoreDone records one full checkpoint restore (a speculation
// abort's rewind).
func (m *Metrics) RestoreDone() {
	if m == nil {
		return
	}
	m.restores.Add(1)
}

// UndoneAdd records n memory locations restored by the overshoot undo.
func (m *Metrics) UndoneAdd(n int) {
	if m == nil {
		return
	}
	m.undone.Add(int64(n))
}

// RecordPD records one PD-test verdict.
func (m *Metrics) RecordPD(v PDVerdict) {
	if m == nil {
		return
	}
	m.pdTests.Add(1)
	if v.DOALL {
		m.pdPass.Add(1)
	} else {
		m.pdFail.Add(1)
	}
	m.mu.Lock()
	m.pdVerdicts = append(m.pdVerdicts, v)
	m.mu.Unlock()
}

// SpecAttempt records the start of one speculative execution (a whole
// loop, a strip, or a window).
func (m *Metrics) SpecAttempt() {
	if m == nil {
		return
	}
	m.specAttempts.Add(1)
}

// SpecCommit records a speculative execution whose results were kept.
func (m *Metrics) SpecCommit() {
	if m == nil {
		return
	}
	m.specCommits.Add(1)
}

// SpecAbort records a speculative execution abandoned for the given
// reason (sequential fallback).
func (m *Metrics) SpecAbort(reason string) {
	if m == nil {
		return
	}
	m.specAborts.Add(1)
	m.mu.Lock()
	if m.abortReasons == nil {
		m.abortReasons = make(map[string]int64)
	}
	m.abortReasons[reason]++
	m.mu.Unlock()
}

// RespecRound records one re-speculation round: a renewed parallel
// attempt launched from a violation point after a partial commit.
func (m *Metrics) RespecRound() {
	if m == nil {
		return
	}
	m.respecRounds.Add(1)
}

// PrefixCommittedAdd records n iterations committed as the valid prefix
// of a partially failed speculative execution.
func (m *Metrics) PrefixCommittedAdd(n int) {
	if m == nil {
		return
	}
	m.prefixCommitted.Add(int64(n))
}

// SuffixUndoneAdd records n memory locations restored by a suffix-only
// undo during partial-commit recovery.
func (m *Metrics) SuffixUndoneAdd(n int) {
	if m == nil {
		return
	}
	m.suffixUndone.Add(int64(n))
}

// PoolDispatch records one parallel region executed on a persistent
// worker pool of the given width (instead of spawn-per-call
// goroutines).
func (m *Metrics) PoolDispatch(workers int) {
	if m == nil {
		return
	}
	m.poolDispatches.Add(1)
	casMax(&m.poolWorkers, int64(workers))
}

// PipelineOverlap records one strip whose speculative execution was
// launched while its predecessor's PD test and commit were still
// running (software-pipelined strip speculation).
func (m *Metrics) PipelineOverlap() {
	if m == nil {
		return
	}
	m.pipeOverlapped.Add(1)
}

// PipelineSquash records one in-flight speculative strip discarded
// because its predecessor failed validation (or terminated the loop).
func (m *Metrics) PipelineSquash() {
	if m == nil {
		return
	}
	m.pipeSquashed.Add(1)
}

// EpochReset records one O(1) time-stamp reset performed by bumping
// the stamp memory's generation number instead of clearing the shards.
func (m *Metrics) EpochReset() {
	if m == nil {
		return
	}
	m.epochResets.Add(1)
}

// StealChunk records one chunk of the given size a worker claimed from
// another worker's block under the Stealing schedule.
func (m *Metrics) StealChunk(size int) {
	if m == nil {
		return
	}
	m.stealChunks.Add(1)
	m.stealIters.Add(int64(size))
}

// DeltaCheckpointDone records one incremental checkpoint re-arm that
// refreshed only the given number of dirtied words instead of
// recopying every tracked array.
func (m *Metrics) DeltaCheckpointDone(words int) {
	if m == nil {
		return
	}
	m.deltaCheckps.Add(1)
	m.deltaCheckWd.Add(int64(words))
}

// CtxCancel records one execution abandoned because its context was
// canceled or its deadline expired.
func (m *Metrics) CtxCancel() {
	if m == nil {
		return
	}
	m.ctxCancels.Add(1)
}

// WorkerPanic records one loop-body panic contained by a worker's
// recover backstop.
func (m *Metrics) WorkerPanic() {
	if m == nil {
		return
	}
	m.workerPanics.Add(1)
}

// ProbeRun records one sequential auto-tuning probe: a first strip
// executed on the calling goroutine to estimate body cost, violation
// likelihood and trip count before an engine is chosen.
func (m *Metrics) ProbeRun() {
	if m == nil {
		return
	}
	m.probeRuns.Add(1)
}

// StrategySwitch records one mid-run engine change by the auto-tuner
// (a clean run promoted to the pipelined engine, or a violation storm
// demoted to sequential completion).
func (m *Metrics) StrategySwitch() {
	if m == nil {
		return
	}
	m.strategySwitches.Add(1)
}

// SigValidation records one post-barrier strip verdict computed by
// pairwise signature intersection instead of the element-wise PD test.
func (m *Metrics) SigValidation() {
	if m == nil {
		return
	}
	m.sigValidations.Add(1)
}

// SigConflict records one signature validation that flagged the strip
// (a possible conflict; the strip re-runs under the full shadow tier).
func (m *Metrics) SigConflict() {
	if m == nil {
		return
	}
	m.sigConflicts.Add(1)
}

// SigFalsePositive records one flagged strip whose Tier-0 re-run found
// no real violation — the cost of hash aliasing, never a wrong commit.
func (m *Metrics) SigFalsePositive() {
	if m == nil {
		return
	}
	m.sigFalsePos.Add(1)
}

// TierDemotion records one mid-run validation-tier demotion back to the
// full element-wise shadow tier after a real violation or audit failure.
func (m *Metrics) TierDemotion() {
	if m == nil {
		return
	}
	m.tierDemotions.Add(1)
}

// AuditRun records one sampled Tier-2 audit strip: a strip re-armed
// under the full shadow machinery to re-earn the shadow-free trust.
func (m *Metrics) AuditRun() {
	if m == nil {
		return
	}
	m.auditRuns.Add(1)
}

// AuditFailure records one Tier-2 audit strip whose PD test failed —
// trust is revoked and the run falls back to the exact sequential path.
func (m *Metrics) AuditFailure() {
	if m == nil {
		return
	}
	m.auditFailures.Add(1)
}

// Snapshot is a plain-value copy of all counters, safe to retain after
// the Metrics keeps accumulating.
type Snapshot struct {
	// Issued counts iterations claimed from the issue mechanism;
	// Issued - Executed is the claims QUIT suppressed.
	Issued int64
	// Executed counts iterations whose body ran.
	Executed int64
	// Overshot counts executed iterations at or beyond the final quit
	// index.
	Overshot int64
	// QuitsPosted counts QUIT verdicts returned by iteration bodies.
	QuitsPosted int64

	// GuidedChunks/GuidedChunkIters/MaxGuidedChunk/MinGuidedChunk
	// describe the Guided schedule's claim sizes (zero when unused).
	GuidedChunks, GuidedChunkIters, MaxGuidedChunk, MinGuidedChunk int64

	// DynamicChunks/DynamicChunkIters describe the Dynamic schedule's
	// geometric claims from the shared counter (zero when unused).
	DynamicChunks, DynamicChunkIters int64

	// TrackedStores counts stores through time-stamping trackers;
	// StampedStores counts distinct locations that took a stamp.
	TrackedStores, StampedStores int64
	// Checkpoints/CheckpointWords/Restores/Undone describe the undo
	// machinery's work.
	Checkpoints, CheckpointWords, Restores, Undone int64

	// BatchedRanges counts batched LoadRange/StoreRange tracker calls;
	// BatchedElems the elements they covered (one interposition per
	// range instead of per element).
	BatchedRanges, BatchedElems int64
	// ShardMerges counts post-barrier merges of per-worker stamp
	// shards; ShardMergeWords the locations merged.
	ShardMerges, ShardMergeWords int64
	// ParallelCopies counts checkpoint/restore spans split across
	// workers; ParallelCopyMaxWorkers is the widest such span.
	ParallelCopies, ParallelCopyMaxWorkers int64

	// PDTests = PDPass + PDFail; PDVerdicts holds the individual
	// outcomes in recording order.
	PDTests, PDPass, PDFail int64
	PDVerdicts              []PDVerdict

	// SpecAttempts/SpecCommits/SpecAborts describe the speculation
	// protocol; AbortReasons tallies fallback causes.
	SpecAttempts, SpecCommits, SpecAborts int64
	AbortReasons                          map[string]int64

	// RespecRounds counts renewed parallel attempts after a partial
	// commit; PrefixCommitted the iterations salvaged below violation
	// points; SuffixUndone the locations restored by suffix-only undos.
	RespecRounds, PrefixCommitted, SuffixUndone int64

	// PoolDispatches counts parallel regions executed on a persistent
	// worker pool; PoolMaxWorkers is the widest such pool.
	PoolDispatches, PoolMaxWorkers int64
	// PipelinedStrips counts strips launched while their predecessor
	// was still validating; PipelineSquashes the in-flight strips
	// discarded after a predecessor failed (or terminated the loop).
	PipelinedStrips, PipelineSquashes int64
	// EpochResets counts O(1) stamp resets done by generation bump.
	EpochResets int64

	// StealChunks/StealIters count chunks (and the iterations they
	// covered) claimed from another worker's block by the Stealing
	// schedule.
	StealChunks, StealIters int64
	// DeltaCheckpoints counts incremental checkpoint re-arms;
	// DeltaCheckpointWords the dirtied words they refreshed (vs the
	// full-array words a Checkpoint would copy).
	DeltaCheckpoints, DeltaCheckpointWords int64

	// CtxCancels counts executions abandoned on a canceled or expired
	// context; WorkerPanics counts loop-body panics contained by the
	// workers' recover backstops.
	CtxCancels, WorkerPanics int64

	// ProbeRuns counts sequential auto-tuning probes; StrategySwitches
	// counts mid-run engine changes the auto-tuner made (pipeline
	// promotions and sequential demotions).
	ProbeRuns, StrategySwitches int64

	// SigValidations counts strip verdicts computed by signature
	// intersection; SigConflicts the strips it flagged;
	// SigFalsePositives the flagged strips whose Tier-0 re-run found no
	// real violation.  TierDemotions counts mid-run falls back to the
	// full shadow tier; AuditRuns/AuditFailures describe the Tier-2
	// sampled audits.
	SigValidations, SigConflicts, SigFalsePositives int64
	TierDemotions, AuditRuns, AuditFailures         int64

	// VPNBusy[k] is the number of iterations processor k executed.
	VPNBusy []int64
}

// Snapshot returns a consistent copy of the counters.  Call it after
// the instrumented execution has completed.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Issued:                 m.issued.Load(),
		Executed:               m.executed.Load(),
		Overshot:               m.overshot.Load(),
		QuitsPosted:            m.quits.Load(),
		GuidedChunks:           m.chunks.Load(),
		GuidedChunkIters:       m.chunkIters.Load(),
		MaxGuidedChunk:         m.maxChunk.Load(),
		MinGuidedChunk:         m.minChunk.Load(),
		DynamicChunks:          m.dynChunks.Load(),
		DynamicChunkIters:      m.dynChunkIters.Load(),
		TrackedStores:          m.trackedStores.Load(),
		StampedStores:          m.stampedStores.Load(),
		Checkpoints:            m.checkpoints.Load(),
		CheckpointWords:        m.checkpointWds.Load(),
		Restores:               m.restores.Load(),
		Undone:                 m.undone.Load(),
		BatchedRanges:          m.batchedRanges.Load(),
		BatchedElems:           m.batchedElems.Load(),
		ShardMerges:            m.shardMerges.Load(),
		ShardMergeWords:        m.shardMergeWds.Load(),
		ParallelCopies:         m.parCopies.Load(),
		ParallelCopyMaxWorkers: m.parCopyMaxWk.Load(),
		PDTests:                m.pdTests.Load(),
		PDPass:                 m.pdPass.Load(),
		PDFail:                 m.pdFail.Load(),
		SpecAttempts:           m.specAttempts.Load(),
		SpecCommits:            m.specCommits.Load(),
		SpecAborts:             m.specAborts.Load(),
		RespecRounds:           m.respecRounds.Load(),
		PrefixCommitted:        m.prefixCommitted.Load(),
		SuffixUndone:           m.suffixUndone.Load(),
		PoolDispatches:         m.poolDispatches.Load(),
		PoolMaxWorkers:         m.poolWorkers.Load(),
		PipelinedStrips:        m.pipeOverlapped.Load(),
		PipelineSquashes:       m.pipeSquashed.Load(),
		EpochResets:            m.epochResets.Load(),
		StealChunks:            m.stealChunks.Load(),
		StealIters:             m.stealIters.Load(),
		DeltaCheckpoints:       m.deltaCheckps.Load(),
		DeltaCheckpointWords:   m.deltaCheckWd.Load(),
		CtxCancels:             m.ctxCancels.Load(),
		WorkerPanics:           m.workerPanics.Load(),
		ProbeRuns:              m.probeRuns.Load(),
		StrategySwitches:       m.strategySwitches.Load(),
		SigValidations:         m.sigValidations.Load(),
		SigConflicts:           m.sigConflicts.Load(),
		SigFalsePositives:      m.sigFalsePos.Load(),
		TierDemotions:          m.tierDemotions.Load(),
		AuditRuns:              m.auditRuns.Load(),
		AuditFailures:          m.auditFailures.Load(),
	}
	m.mu.Lock()
	s.VPNBusy = make([]int64, len(m.vpnBusy))
	for k, c := range m.vpnBusy {
		s.VPNBusy[k] = c.v.Load()
	}
	if len(m.abortReasons) > 0 {
		s.AbortReasons = make(map[string]int64, len(m.abortReasons))
		for k, v := range m.abortReasons {
			s.AbortReasons[k] = v
		}
	}
	s.PDVerdicts = append([]PDVerdict(nil), m.pdVerdicts...)
	m.mu.Unlock()
	return s
}

// String renders the snapshot as an aligned human-readable summary.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iterations: issued=%d executed=%d overshot=%d quits=%d\n",
		s.Issued, s.Executed, s.Overshot, s.QuitsPosted)
	if s.GuidedChunks > 0 {
		fmt.Fprintf(&b, "guided:     chunks=%d iters=%d min=%d max=%d avg=%.1f\n",
			s.GuidedChunks, s.GuidedChunkIters, s.MinGuidedChunk, s.MaxGuidedChunk,
			float64(s.GuidedChunkIters)/float64(s.GuidedChunks))
	}
	if s.DynamicChunks > 0 {
		fmt.Fprintf(&b, "dynamic:    chunks=%d iters=%d avg=%.1f\n",
			s.DynamicChunks, s.DynamicChunkIters,
			float64(s.DynamicChunkIters)/float64(s.DynamicChunks))
	}
	fmt.Fprintf(&b, "memory:     stores=%d stamped=%d checkpoints=%d (%d words) restores=%d undone=%d\n",
		s.TrackedStores, s.StampedStores, s.Checkpoints, s.CheckpointWords, s.Restores, s.Undone)
	if s.BatchedRanges > 0 || s.ShardMerges > 0 || s.ParallelCopies > 0 {
		fmt.Fprintf(&b, "fast path:  ranges=%d (%d elems) shard-merges=%d (%d words) par-copies=%d (max %d workers)\n",
			s.BatchedRanges, s.BatchedElems, s.ShardMerges, s.ShardMergeWords,
			s.ParallelCopies, s.ParallelCopyMaxWorkers)
	}
	fmt.Fprintf(&b, "pd-test:    runs=%d pass=%d fail=%d\n", s.PDTests, s.PDPass, s.PDFail)
	for _, v := range s.PDVerdicts {
		fmt.Fprintf(&b, "  %-12s doall=%v priv=%v accesses=%d\n", v.Array, v.DOALL, v.DOALLWithPriv, v.Accesses)
	}
	if s.PoolDispatches > 0 || s.PipelinedStrips > 0 || s.EpochResets > 0 {
		fmt.Fprintf(&b, "pool:       dispatches=%d (max %d workers) pipelined-strips=%d squashes=%d epoch-resets=%d\n",
			s.PoolDispatches, s.PoolMaxWorkers, s.PipelinedStrips, s.PipelineSquashes, s.EpochResets)
	}
	if s.StealChunks > 0 || s.DeltaCheckpoints > 0 {
		fmt.Fprintf(&b, "hot path:   steals=%d (%d iters) delta-checkpoints=%d (%d words)\n",
			s.StealChunks, s.StealIters, s.DeltaCheckpoints, s.DeltaCheckpointWords)
	}
	if s.CtxCancels > 0 || s.WorkerPanics > 0 {
		fmt.Fprintf(&b, "cancel:     ctx-cancels=%d worker-panics=%d\n", s.CtxCancels, s.WorkerPanics)
	}
	if s.ProbeRuns > 0 || s.StrategySwitches > 0 {
		fmt.Fprintf(&b, "autotune:   probes=%d strategy-switches=%d\n", s.ProbeRuns, s.StrategySwitches)
	}
	if s.SigValidations > 0 || s.AuditRuns > 0 || s.TierDemotions > 0 {
		fmt.Fprintf(&b, "tiers:      sig-validations=%d conflicts=%d false-positives=%d audits=%d audit-failures=%d demotions=%d\n",
			s.SigValidations, s.SigConflicts, s.SigFalsePositives, s.AuditRuns, s.AuditFailures, s.TierDemotions)
	}
	fmt.Fprintf(&b, "speculation: attempts=%d commits=%d aborts=%d\n", s.SpecAttempts, s.SpecCommits, s.SpecAborts)
	if s.RespecRounds > 0 || s.PrefixCommitted > 0 || s.SuffixUndone > 0 {
		fmt.Fprintf(&b, "recovery:   respec-rounds=%d prefix-committed=%d suffix-undone=%d\n",
			s.RespecRounds, s.PrefixCommitted, s.SuffixUndone)
	}
	if len(s.AbortReasons) > 0 {
		reasons := make([]string, 0, len(s.AbortReasons))
		for r := range s.AbortReasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Fprintf(&b, "  abort x%d: %s\n", s.AbortReasons[r], r)
		}
	}
	if len(s.VPNBusy) > 0 {
		fmt.Fprintf(&b, "vpn busy:   %v\n", s.VPNBusy)
	}
	return b.String()
}

// Hooks bundles a Metrics and a Tracer for substrates whose entry
// points take one optional observability argument.  The zero value is
// fully inert.
type Hooks struct {
	M *Metrics
	T Tracer
}
