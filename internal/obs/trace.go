package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one structured trace event, shaped after the Chrome
// trace-event format (the "JSON Array Format" of the Trace Event
// specification) so a buffered stream of Events serializes directly
// into something chrome://tracing and Perfetto load.
type Event struct {
	// Name labels the event ("iter", "QUIT", "checkpoint", ...).
	Name string `json:"name"`
	// Cat is the event category ("doall", "tsmem", "speculate", ...).
	Cat string `json:"cat,omitempty"`
	// Phase is the trace-event phase: "X" complete (with Dur), "i"
	// instant, "B"/"E" begin/end.
	Phase string `json:"ph"`
	// TS is the event timestamp in microseconds since tracer start.
	TS int64 `json:"ts"`
	// Dur is the duration in microseconds (phase "X" only).
	Dur int64 `json:"dur,omitempty"`
	// PID is the trace process id (always 1: one runtime).
	PID int `json:"pid"`
	// TID is the trace thread id; the runtime uses the virtual
	// processor number so per-vpn lanes appear in the viewer.
	TID int `json:"tid"`
	// Args carries event-specific payload (iteration index, undo
	// count, PD verdict, ...).
	Args map[string]any `json:"args,omitempty"`
}

// Tracer receives structured events from an instrumented execution.
// Implementations must be safe for concurrent use.  Substrates always
// guard emission with a nil check, so tracing costs one branch when
// disabled.
type Tracer interface {
	// Now returns the current trace clock in microseconds.
	Now() int64
	// Emit records one event.
	Emit(Event)
}

// Start returns the current trace clock, or 0 for a nil tracer; pair
// with Span.
func Start(t Tracer) int64 {
	if t == nil {
		return 0
	}
	return t.Now()
}

// Span emits a complete ("X") event covering start..now.
func Span(t Tracer, start int64, name, cat string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	now := t.Now()
	dur := now - start
	if dur < 1 {
		dur = 1 // sub-microsecond spans still render in the viewer
	}
	t.Emit(Event{Name: name, Cat: cat, Phase: "X", TS: start, Dur: dur, PID: 1, TID: tid, Args: args})
}

// Instant emits an instant ("i") event at the current trace clock.
func Instant(t Tracer, name, cat string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Phase: "i", TS: t.Now(), PID: 1, TID: tid, Args: args})
}

// ChromeTracer buffers events in memory and exports them as Chrome
// trace-event JSON.  The zero value is not usable; call
// NewChromeTracer.
type ChromeTracer struct {
	start time.Time
	mu    sync.Mutex
	evs   []Event
}

// NewChromeTracer returns a tracer whose clock starts now.
func NewChromeTracer() *ChromeTracer {
	return &ChromeTracer{start: time.Now()}
}

// Now returns microseconds since the tracer was created.
func (c *ChromeTracer) Now() int64 { return time.Since(c.start).Microseconds() }

// Emit buffers one event.
func (c *ChromeTracer) Emit(ev Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

// Len returns the number of buffered events.
func (c *ChromeTracer) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}

// Events returns a copy of the buffered events.
func (c *ChromeTracer) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.evs...)
}

// chromeTrace is the JSON Object Format wrapper, which lets viewers
// pick the display unit and tolerates trailing metadata.
type chromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteTo serializes the buffered events as Chrome trace-event JSON.
func (c *ChromeTracer) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	doc := chromeTrace{TraceEvents: c.evs, DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []Event{}
	}
	data, err := json.Marshal(doc)
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// WriteFile writes the trace to path (0644).
func (c *ChromeTracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
