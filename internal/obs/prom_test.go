package obs

import (
	"strings"
	"testing"
)

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Issued":               "issued",
		"PDTests":              "pd_tests",
		"CtxCancels":           "ctx_cancels",
		"MaxGuidedChunk":       "max_guided_chunk",
		"SigFalsePositives":    "sig_false_positives",
		"DeltaCheckpointWords": "delta_checkpoint_words",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCountersCoverEveryScalarField(t *testing.T) {
	m := NewMetrics()
	m.IterIssued(10)
	m.IterExecutedN(1, 7)
	m.SpecAttempt()
	m.SpecAbort("pd-test failed")
	s := m.Snapshot()

	cs := s.Counters()
	byName := map[string]int64{}
	for _, c := range cs {
		if _, dup := byName[c.Name]; dup {
			t.Fatalf("duplicate counter name %q", c.Name)
		}
		byName[c.Name] = c.Value
	}
	if byName["issued"] != 10 || byName["executed"] != 7 ||
		byName["spec_attempts"] != 1 || byName["spec_aborts"] != 1 {
		t.Fatalf("counters = %v", byName)
	}
	// Every int64 field must be present (the reflection sweep is the
	// point: new counters appear without touching consumers).
	for _, want := range []string{"pd_tests", "ctx_cancels", "worker_panics", "probe_runs"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("counter %q missing from Counters()", want)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	m := NewMetrics()
	m.IterIssued(3)
	m.IterExecuted(0)
	m.IterExecuted(2)
	m.SpecAbort("violation")
	var b strings.Builder
	if err := WritePrometheus(&b, "whilepard", m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE whilepard_issued counter\nwhilepard_issued 3\n",
		"whilepard_executed 2\n",
		"whilepard_vpn_busy{vpn=\"0\"} 1\n",
		"whilepard_vpn_busy{vpn=\"2\"} 1\n",
		"whilepard_abort_reason{reason=\"violation\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotAdd(t *testing.T) {
	a := NewMetrics()
	a.IterIssued(5)
	a.IterExecuted(0)
	a.SpecAbort("x")
	b := NewMetrics()
	b.IterIssued(7)
	b.IterExecuted(3)
	b.SpecAbort("x")
	b.SpecAbort("y")

	sum := a.Snapshot().Add(b.Snapshot())
	if sum.Issued != 12 || sum.Executed != 2 {
		t.Fatalf("sum = %+v", sum)
	}
	if len(sum.VPNBusy) != 4 || sum.VPNBusy[0] != 1 || sum.VPNBusy[3] != 1 {
		t.Fatalf("VPNBusy = %v", sum.VPNBusy)
	}
	if sum.AbortReasons["x"] != 2 || sum.AbortReasons["y"] != 1 {
		t.Fatalf("AbortReasons = %v", sum.AbortReasons)
	}
}
