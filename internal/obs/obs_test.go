package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilMetricsAndTracerAreInert(t *testing.T) {
	var m *Metrics
	m.IterIssued(5)
	m.IterExecuted(3)
	m.OvershotAdd(1)
	m.QuitPosted()
	m.GuidedChunk(7)
	m.TrackedStore()
	m.StampedStore()
	m.CheckpointDone(100)
	m.RestoreDone()
	m.UndoneAdd(2)
	m.RecordPD(PDVerdict{Array: "a"})
	m.SpecAttempt()
	m.SpecCommit()
	m.SpecAbort("x")
	if s := m.Snapshot(); s.Executed != 0 || s.SpecAborts != 0 {
		t.Fatalf("nil metrics produced counts: %+v", s)
	}

	var tr Tracer // nil interface
	start := Start(tr)
	Span(tr, start, "iter", "doall", 0, nil)
	Instant(tr, "QUIT", "doall", 0, nil)
}

func TestMetricsConcurrentAccumulation(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func(vpn int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.IterIssued(1)
				m.IterExecuted(vpn)
				m.TrackedStore()
			}
			m.GuidedChunk(vpn + 1)
			m.SpecAttempt()
		}(k)
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Issued != workers*per || s.Executed != workers*per || s.TrackedStores != workers*per {
		t.Fatalf("counter mismatch: %+v", s)
	}
	if len(s.VPNBusy) != workers {
		t.Fatalf("vpn table size = %d, want %d", len(s.VPNBusy), workers)
	}
	for k, v := range s.VPNBusy {
		if v != per {
			t.Fatalf("vpn %d busy = %d, want %d", k, v, per)
		}
	}
	if s.GuidedChunks != workers || s.MinGuidedChunk != 1 || s.MaxGuidedChunk != workers {
		t.Fatalf("chunk stats wrong: %+v", s)
	}
	if s.SpecAttempts != workers {
		t.Fatalf("spec attempts = %d", s.SpecAttempts)
	}
	if s.String() == "" {
		t.Fatal("empty render")
	}
}

func TestChromeTracerEmitsLoadableJSON(t *testing.T) {
	c := NewChromeTracer()
	st := Start(c)
	Span(c, st, "iter", "doall", 2, map[string]any{"i": 41})
	Instant(c, "QUIT", "doall", 2, map[string]any{"i": 41})
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    *int64         `json:"ts"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 2 {
		t.Fatalf("unexpected document: %s", buf.String())
	}
	span, inst := doc.TraceEvents[0], doc.TraceEvents[1]
	if span.Phase != "X" || span.Name != "iter" || span.TID != 2 || span.TS == nil {
		t.Fatalf("bad span event: %+v", span)
	}
	if inst.Phase != "i" || inst.Name != "QUIT" || inst.Args["i"] != float64(41) {
		t.Fatalf("bad instant event: %+v", inst)
	}
}

func TestChromeTracerEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewChromeTracer().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents missing or not an array: %s", buf.String())
	}
}
