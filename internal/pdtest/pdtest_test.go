package pdtest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

// replay drives a trace through a Test the way a speculative DOALL
// would: iterations are assigned to processors round-robin, and each
// processor's iterations are marked in increasing order (per-processor
// sequentiality is what the marking relies on).
func replay(t *Test, trace []Access, procs int) {
	// Group accesses by iteration, preserving intra-iteration order.
	byIter := make(map[int][]Access)
	maxIter := -1
	for _, a := range trace {
		byIter[a.Iter] = append(byIter[a.Iter], a)
		if a.Iter > maxIter {
			maxIter = a.Iter
		}
	}
	o := t.Observer()
	for i := 0; i <= maxIter; i++ {
		vpn := i % procs
		for _, a := range byIter[i] {
			if a.Write {
				o.ObserveStore(t.arr, a.Elem, a.Iter, vpn)
			} else {
				o.ObserveLoad(t.arr, a.Elem, a.Iter, vpn)
			}
		}
	}
}

func TestCleanLoopIsDOALL(t *testing.T) {
	// Figure 5(a): A[i] = 2*A[i] — each iteration reads then writes its
	// own element.  No cross-iteration dependence; the loop is a DOALL
	// (the same-iteration read-then-write must NOT trip the test).
	a := mem.NewArray("A", 32)
	pd := New(a, 4)
	var trace []Access
	for i := 0; i < 32; i++ {
		trace = append(trace, Access{Iter: i, Elem: i, Write: false}, Access{Iter: i, Elem: i, Write: true})
	}
	replay(pd, trace, 4)
	res := pd.Analyze(32)
	if !res.DOALL {
		t.Fatalf("clean loop rejected: %+v", res)
	}
	if res.PrivatizableStrict {
		t.Fatal("read-before-write is an exposed read; strict privatization must fail")
	}
	if res.Accesses != 64 {
		t.Fatalf("accesses = %d, want 64", res.Accesses)
	}
}

func TestFlowDependenceDetected(t *testing.T) {
	// Figure 5(c): A[i] = A[i] + A[i-1] — iteration i exposed-reads
	// element i-1 written by iteration i-1.
	a := mem.NewArray("A", 16)
	pd := New(a, 4)
	var trace []Access
	for i := 1; i < 16; i++ {
		trace = append(trace,
			Access{Iter: i, Elem: i, Write: false},
			Access{Iter: i, Elem: i - 1, Write: false},
			Access{Iter: i, Elem: i, Write: true})
	}
	replay(pd, trace, 4)
	res := pd.Analyze(16)
	if res.DOALL || !res.FlowAntiDep {
		t.Fatalf("flow dependence missed: %+v", res)
	}
	if res.DOALLWithPriv {
		t.Fatal("privatization cannot fix a cross-iteration flow dependence")
	}
}

func TestOutputDepRemovedByPrivatization(t *testing.T) {
	// Figure 5(b) shape: a temporary written (then read) by every
	// iteration — output dependences only, removable by privatization.
	a := mem.NewArray("tmp", 4)
	pd := New(a, 4)
	var trace []Access
	for i := 0; i < 20; i++ {
		trace = append(trace,
			Access{Iter: i, Elem: 0, Write: true},
			Access{Iter: i, Elem: 0, Write: false})
	}
	replay(pd, trace, 4)
	res := pd.Analyze(20)
	if res.DOALL {
		t.Fatal("output dependence missed")
	}
	if !res.OutputDep || res.FlowAntiDep {
		t.Fatalf("wrong dependence kinds: %+v", res)
	}
	if !res.DOALLWithPriv {
		t.Fatal("privatization should validate the loop")
	}
	if !res.PrivatizableStrict {
		t.Fatal("every read is write-first; strict criterion should hold")
	}
}

func TestOvershotMarksIgnored(t *testing.T) {
	// The dependence exists only between iterations 10 and 12; with
	// valid = 11 (iterations 0..10), iteration 12's marks are ignored
	// and the test passes.
	a := mem.NewArray("A", 8)
	pd := New(a, 2)
	trace := []Access{
		{Iter: 10, Elem: 3, Write: true},
		{Iter: 12, Elem: 3, Write: false}, // exposed read of 10's write
	}
	replay(pd, trace, 2)
	if res := pd.Analyze(13); res.DOALL {
		t.Fatalf("full analysis should fail: %+v", res)
	}
	pd.Reset()
	replay(pd, trace, 2)
	if res := pd.Analyze(11); !res.DOALL {
		t.Fatalf("marks from overshot iteration 12 not ignored: %+v", res)
	}
}

func TestResetClearsMarks(t *testing.T) {
	a := mem.NewArray("A", 4)
	pd := New(a, 2)
	replay(pd, []Access{{Iter: 0, Elem: 1, Write: true}, {Iter: 1, Elem: 1, Write: true}}, 2)
	if res := pd.Analyze(2); !res.OutputDep {
		t.Fatal("setup failed")
	}
	pd.Reset()
	if pd.Accesses() != 0 {
		t.Fatal("Reset should clear access count")
	}
	if res := pd.Analyze(2); res.OutputDep || !res.DOALL {
		t.Fatalf("marks survived Reset: %+v", res)
	}
}

func TestIgnoresOtherArrays(t *testing.T) {
	a, b := mem.NewArray("A", 4), mem.NewArray("B", 4)
	pd := New(a, 2)
	o := pd.Observer()
	o.ObserveStore(b, 0, 0, 0)
	o.ObserveLoad(b, 0, 1, 0)
	if pd.Accesses() != 0 {
		t.Fatal("accesses to other arrays must not be marked")
	}
	if res := pd.Analyze(2); !res.DOALL {
		t.Fatalf("unrelated accesses affected verdict: %+v", res)
	}
}

func TestAnalyzeMatchesOracleOnRandomTraces(t *testing.T) {
	// Property: on random access traces the shadow-array test agrees
	// exactly with the trace-based Oracle, for every verdict field and
	// every valid cutoff.
	f := func(seed int64, procsRaw, validRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		iters := rng.Intn(20) + 2
		elems := rng.Intn(6) + 1
		procs := int(procsRaw)%4 + 1
		valid := int(validRaw)%(iters+2) - 1
		if valid < 0 {
			valid = iters
		}
		var trace []Access
		for i := 0; i < iters; i++ {
			na := rng.Intn(5)
			for j := 0; j < na; j++ {
				trace = append(trace, Access{
					Iter:  i,
					Elem:  rng.Intn(elems),
					Write: rng.Intn(2) == 0,
				})
			}
		}
		a := mem.NewArray("A", elems)
		pd := New(a, procs)
		replay(pd, trace, procs)
		got := pd.Analyze(valid)
		want := Oracle(trace, valid)
		return got.DOALL == want.DOALL &&
			got.DOALLWithPriv == want.DOALLWithPriv &&
			got.PrivatizableStrict == want.PrivatizableStrict &&
			got.OutputDep == want.OutputDep &&
			got.FlowAntiDep == want.FlowAntiDep &&
			got.FirstViolation == want.FirstViolation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFirstViolationIndex(t *testing.T) {
	// Flow dependence between iterations 7 (writer) and 11 (exposed
	// reader): the earliest involved iteration is 7, so that is where a
	// partial commit must resume.
	a := mem.NewArray("A", 16)
	pd := New(a, 4)
	trace := []Access{
		{Iter: 2, Elem: 0, Write: true}, // clean singleton write
		{Iter: 7, Elem: 5, Write: true},
		{Iter: 11, Elem: 5, Write: false},
	}
	replay(pd, trace, 4)
	res := pd.Analyze(16)
	if res.DOALL || res.FirstViolation != 7 {
		t.Fatalf("flow violation index: got %d (res %+v), want 7", res.FirstViolation, res)
	}

	// An anti dependence (read at 3 before write at 9) resumes at the
	// reader, the earlier of the pair.
	pd.Reset()
	replay(pd, []Access{
		{Iter: 3, Elem: 2, Write: false},
		{Iter: 9, Elem: 2, Write: true},
	}, 4)
	if res := pd.Analyze(16); res.FirstViolation != 3 {
		t.Fatalf("anti violation index: got %d, want 3", res.FirstViolation)
	}

	// Output dependence (writers 4 and 13): earliest writer wins.
	pd.Reset()
	replay(pd, []Access{
		{Iter: 4, Elem: 1, Write: true},
		{Iter: 13, Elem: 1, Write: true},
	}, 4)
	if res := pd.Analyze(16); res.FirstViolation != 4 {
		t.Fatalf("output violation index: got %d, want 4", res.FirstViolation)
	}

	// Clean run: no violation index.
	pd.Reset()
	replay(pd, []Access{{Iter: 0, Elem: 0, Write: true}, {Iter: 1, Elem: 1, Write: true}}, 4)
	if res := pd.Analyze(16); !res.DOALL || res.FirstViolation != -1 {
		t.Fatalf("clean run should report FirstViolation -1, got %+v", res)
	}

	// Marks above the valid cutoff must not contribute: with valid = 9
	// the reader at 11 vanishes and element 5's writer at 7 is a clean
	// singleton again.
	pd.Reset()
	replay(pd, trace, 4)
	if res := pd.Analyze(9); !res.DOALL || res.FirstViolation != -1 {
		t.Fatalf("cutoff should clear the violation, got %+v", res)
	}
}

func TestFirstViolationRangePathMatchesElementWise(t *testing.T) {
	// The batched Observe*Range marking must produce the same violation
	// index as element-wise marking for the same logical accesses.
	const elems = 64
	mk := func(ranged bool) Result {
		a := mem.NewArray("A", elems)
		pd := New(a, 4)
		o := pd.Observer()
		ro := o.(interface {
			ObserveStoreRange(a *mem.Array, lo, hi, iter, vpn int)
			ObserveLoadRange(a *mem.Array, lo, hi, iter, vpn int)
		})
		// Iteration i writes [8i, 8i+8); iteration 5 also exposed-reads
		// [24, 32), which iteration 3 wrote — flow violation from 3.
		for i := 0; i < 8; i++ {
			lo, hi := 8*i, 8*i+8
			if i == 5 {
				if ranged {
					ro.ObserveLoadRange(a, 24, 32, i, i%4)
				} else {
					for e := 24; e < 32; e++ {
						o.ObserveLoad(a, e, i, i%4)
					}
				}
			}
			if ranged {
				ro.ObserveStoreRange(a, lo, hi, i, i%4)
			} else {
				for e := lo; e < hi; e++ {
					o.ObserveStore(a, e, i, i%4)
				}
			}
		}
		return pd.Analyze(8)
	}
	el, rg := mk(false), mk(true)
	if el.FirstViolation != 3 || rg.FirstViolation != 3 {
		t.Fatalf("range/element first-violation mismatch: element %+v, range %+v", el, rg)
	}
	if el.DOALL != rg.DOALL || el.FlowAntiDep != rg.FlowAntiDep || el.OutputDep != rg.OutputDep {
		t.Fatalf("range path verdict diverged: element %+v, range %+v", el, rg)
	}
}

func TestConcurrentMarkingUnderRealDOALL(t *testing.T) {
	// Marking is per-processor; under a real concurrent DOALL (each
	// iteration reads its element, writes its element) the verdict must
	// still be DOALL-valid and deterministic.
	n := 2000
	a := mem.NewArray("A", n)
	pd := New(a, 8)
	tracker := mem.Chain{Observers: []mem.Observer{pd.Observer()}, Sink: mem.Direct{}}
	sched.DOALL(n, sched.Options{Procs: 8}, func(i, vpn int) sched.Control {
		v := tracker.Load(a, i, i, vpn)
		tracker.Store(a, i, v+1, i, vpn)
		return sched.Continue
	})
	res := pd.Analyze(n)
	if !res.DOALL || res.Accesses != 2*n {
		t.Fatalf("concurrent clean loop: %+v", res)
	}
}

func TestNewCoercesProcs(t *testing.T) {
	pd := New(mem.NewArray("A", 1), 0)
	if len(pd.shadows) != 1 {
		t.Fatal("procs < 1 should coerce to 1")
	}
	if pd.Array().Name != "A" {
		t.Fatal("Array accessor broken")
	}
}

func TestOracleEmptyTrace(t *testing.T) {
	res := Oracle(nil, 10)
	if !res.DOALL || !res.DOALLWithPriv || !res.PrivatizableStrict || res.Accesses != 0 {
		t.Fatalf("empty trace verdict: %+v", res)
	}
}
