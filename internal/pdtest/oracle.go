package pdtest

// Access is one element access in a loop's dynamic access trace, used by
// the Oracle reference analyzer.
type Access struct {
	// Iter is the iteration performing the access.
	Iter int
	// Elem is the array element index accessed.
	Elem int
	// Write is true for a store, false for a load.
	Write bool
}

// Oracle is the exact, trace-based dependence analyzer the PD test is
// validated against.  accesses must list each iteration's accesses in
// its program order (the relative order of different iterations is
// irrelevant to the dependence definitions used here).  Marks from
// iterations >= valid are ignored, mirroring Analyze.
//
// It is deliberately the "textbook" computation — O(trace length) with
// full per-iteration write sets — so that any disagreement with the
// shadow-array implementation indicts the latter.
func Oracle(accesses []Access, valid int) Result {
	type key struct{ iter, elem int }
	writtenInIter := make(map[key]bool)

	// writers[e] = set of valid iterations writing e;
	// exposed[e] = set of valid iterations exposed-reading e.
	writers := make(map[int]map[int]bool)
	exposed := make(map[int]map[int]bool)
	count := 0

	for _, a := range accesses {
		count++
		if a.Iter >= valid {
			// Still track same-iteration writes for exposedness of that
			// iteration's own later reads, but record nothing.
			if a.Write {
				writtenInIter[key{a.Iter, a.Elem}] = true
			}
			continue
		}
		if a.Write {
			writtenInIter[key{a.Iter, a.Elem}] = true
			if writers[a.Elem] == nil {
				writers[a.Elem] = make(map[int]bool)
			}
			writers[a.Elem][a.Iter] = true
		} else if !writtenInIter[key{a.Iter, a.Elem}] {
			if exposed[a.Elem] == nil {
				exposed[a.Elem] = make(map[int]bool)
			}
			exposed[a.Elem][a.Iter] = true
		}
	}

	var res Result
	res.Accesses = count
	res.PrivatizableStrict = true
	res.FirstViolation = -1
	for _, rs := range exposed {
		if len(rs) > 0 {
			res.PrivatizableStrict = false
			break
		}
	}
	lowerFV := func(iter int) {
		if res.FirstViolation < 0 || iter < res.FirstViolation {
			res.FirstViolation = iter
		}
	}
	minOf := func(s map[int]bool) int {
		min := -1
		for it := range s {
			if min < 0 || it < min {
				min = it
			}
		}
		return min
	}
	for e, ws := range writers {
		if len(ws) >= 2 {
			res.OutputDep = true
			lowerFV(minOf(ws))
		}
		rs := exposed[e]
		if len(ws) > 0 && len(rs) > 0 {
			// Clean only when the sole writer and sole exposed reader are
			// the same iteration — the element-wise Analyze condition.
			clean := len(ws) == 1 && len(rs) == 1 && ws[minOf(rs)]
			if !clean {
				res.FlowAntiDep = true
				w, r := minOf(ws), minOf(rs)
				if r < w {
					lowerFV(r)
				} else {
					lowerFV(w)
				}
			}
		}
	}
	res.DOALL = !res.OutputDep && !res.FlowAntiDep
	res.DOALLWithPriv = !res.FlowAntiDep
	return res
}
