package pdtest

import (
	"math/rand"
	"testing"

	"whilepar/internal/mem"
)

// Batched shadow marking (ObserveLoadRange/ObserveStoreRange) must
// produce verdicts bit-identical to the element-wise observer on the
// same access sequence — the PD test's soundness cannot depend on how
// the accesses were chunked.
func TestRangeObserverVerdictsMatchElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(128) + 16
		procs := rng.Intn(8) + 1
		a := mem.NewArray("A", n)

		tEl := New(a, procs)
		tRg := New(a, procs)
		el := tEl.Observer()
		rg := tRg.Observer().(mem.RangeObserver)

		// A random access script: loads and stores over random ranges,
		// random iterations, random vpns.  The element path replays each
		// range element by element.
		for k := 0; k < 60; k++ {
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo) + 1
			iter := rng.Intn(n)
			vpn := rng.Intn(procs)
			if rng.Intn(2) == 0 {
				rg.ObserveLoadRange(a, lo, hi, iter, vpn)
				for i := lo; i < hi; i++ {
					el.ObserveLoad(a, i, iter, vpn)
				}
			} else {
				rg.ObserveStoreRange(a, lo, hi, iter, vpn)
				for i := lo; i < hi; i++ {
					el.ObserveStore(a, i, iter, vpn)
				}
			}
		}

		if tEl.Accesses() != tRg.Accesses() {
			t.Fatalf("trial %d: accesses element %d != range %d", trial, tEl.Accesses(), tRg.Accesses())
		}
		for _, valid := range []int{0, n / 3, n} {
			rEl := tEl.AnalyzeQuiet(valid)
			rRg := tRg.AnalyzeQuiet(valid)
			if rEl != rRg {
				t.Fatalf("trial %d valid %d: verdicts diverge\nelement: %+v\nrange:   %+v", trial, valid, rEl, rRg)
			}
		}
	}
}
