package pdtest

import (
	"math/rand"
	"testing"

	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

// TestEpochMatchesEagerAcrossStrips drives the epoch-tagged shadow
// scheme (New) and the eager-sweep oracle (NewEager) through the same
// randomized multi-strip access scripts and demands identical verdicts
// — DOALL flag, FirstViolation, Accesses — strip after strip.  The
// epoch scheme's whole point is that Reset is an O(1) generation bump;
// this test is the proof that the bump is observationally equivalent to
// the oracle's full reinitialization, including marks leaking (or
// rather, not leaking) across strips.
func TestEpochMatchesEagerAcrossStrips(t *testing.T) {
	const (
		n      = 96
		procs  = 4
		strips = 12
		cases  = 40
	)
	for c := 0; c < cases; c++ {
		rng := rand.New(rand.NewSource(int64(1000 + c)))
		arr1 := mem.NewArray("a", n)
		arr2 := mem.NewArray("a", n)
		epochT := New(arr1, procs)
		eagerT := NewEager(arr2, procs)

		for s := 0; s < strips; s++ {
			// A random little access script, mirrored into both tests.
			type acc struct {
				idx, iter, vpn int
				store          bool
			}
			var script []acc
			for i := 0; i < 1+rng.Intn(40); i++ {
				script = append(script, acc{
					idx:   rng.Intn(n),
					iter:  s*100 + rng.Intn(30),
					vpn:   rng.Intn(procs),
					store: rng.Intn(2) == 0,
				})
			}
			apply := func(tt *Test, a *mem.Array) {
				for _, ac := range script {
					if ac.store {
						tt.MarkStore(a, ac.idx, ac.iter, ac.vpn)
					} else {
						tt.MarkLoad(a, ac.idx, ac.iter, ac.vpn)
					}
				}
			}
			apply(epochT, arr1)
			apply(eagerT, arr2)

			firstValid := s*100 + rng.Intn(35)
			r1 := epochT.AnalyzeQuiet(firstValid)
			r2 := eagerT.AnalyzeQuiet(firstValid)
			if r1 != r2 {
				t.Fatalf("case %d strip %d: epoch %+v != eager %+v", c, s, r1, r2)
			}
			if a1, a2 := epochT.Accesses(), eagerT.Accesses(); a1 != a2 {
				t.Fatalf("case %d strip %d: accesses %d != %d", c, s, a1, a2)
			}
			epochT.Reset()
			eagerT.Reset()
		}
		epochT.Release()
	}
}

// TestEpochMatchesEagerConcurrent is the -race variant: both schemes
// mark under a real concurrent DOALL (disjoint per-vpn index ranges, as
// the sharded shadows require) and must agree post-barrier.
func TestEpochMatchesEagerConcurrent(t *testing.T) {
	const (
		n     = 4096
		procs = 8
	)
	arr1 := mem.NewArray("a", n)
	arr2 := mem.NewArray("a", n)
	epochT := New(arr1, procs)
	eagerT := NewEager(arr2, procs)

	for s := 0; s < 3; s++ {
		run := func(tt *Test, a *mem.Array) {
			sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
				tt.MarkLoad(a, i, i, vpn)
				tt.MarkStore(a, i, i, vpn)
				return sched.Continue
			})
		}
		run(epochT, arr1)
		run(eagerT, arr2)
		r1 := epochT.AnalyzeQuiet(n)
		r2 := eagerT.AnalyzeQuiet(n)
		if r1 != r2 {
			t.Fatalf("strip %d: epoch %+v != eager %+v", s, r1, r2)
		}
		if !r1.DOALL {
			t.Fatalf("strip %d: self-dependence-free loop rejected: %+v", s, r1)
		}
		epochT.Reset()
		eagerT.Reset()
	}
	epochT.Release()
}
