// Package pdtest implements the PRIVATIZING DOALL test (PD test) of
// Section 5.1: a run-time technique that decides, after a speculative
// parallel execution, whether the loop actually had cross-iteration data
// dependences — and if so, whether privatization would have removed
// them.
//
// For each shared array under test the loop's accesses are traversed
// into shadow structures while the speculative DOALL runs; a fully
// parallel post-execution analysis then checks for:
//
//   - cross-iteration flow/anti dependences: some element is written by
//     one iteration and *exposed-read* (read before being written within
//     its own iteration) by a different iteration;
//   - output dependences: some element is written by two or more
//     distinct iterations.
//
// A loop is a valid DOALL with respect to the array iff neither occurs.
// Privatization (private per-processor copies, Section 5's Privatization
// Criterion) removes output dependences but not cross-iteration flow,
// so "valid if privatized" requires only the absence of flow/anti
// dependences.
//
// WHILE-loop integration (Section 5.1): every shadow mark carries the
// iteration that made it, and the analysis takes the last valid
// iteration as a parameter — marks made by overshot iterations are
// simply ignored, exactly as the paper prescribes ("those marks in the
// shadow arrays with minimum time-stamps greater than the last valid
// iteration will be ignored").
//
// Shadow structures are per virtual processor, so marking is
// contention-free; iterations on one processor run sequentially, which
// is what makes the exposed-read determination (did *this* iteration
// already write the element?) exact.
package pdtest

import (
	"math"
	"sync/atomic"

	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
)

const never = int64(math.MaxInt64)

// shadow is one virtual processor's private marking state for one array.
type shadow struct {
	// lastWriter[e] is the most recent iteration *on this processor*
	// that wrote e (-1 if none): the same-iteration write detector that
	// decides whether a read is exposed.
	lastWriter []int64
	// w1 <= w2 are the two smallest distinct iterations on this
	// processor that wrote e; r1 <= r2 likewise for exposed reads.
	w1, w2, r1, r2 []int64
}

func newShadow(n int) *shadow {
	s := &shadow{
		lastWriter: make([]int64, n),
		w1:         make([]int64, n),
		w2:         make([]int64, n),
		r1:         make([]int64, n),
		r2:         make([]int64, n),
	}
	for i := 0; i < n; i++ {
		s.lastWriter[i] = -1
		s.w1[i], s.w2[i] = never, never
		s.r1[i], s.r2[i] = never, never
	}
	return s
}

// atomicMin lowers a to v if v is smaller.
func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// insert2 maintains the two smallest distinct values.
func insert2(a, b *int64, v int64) {
	switch {
	case v == *a || v == *b:
	case v < *a:
		*b = *a
		*a = v
	case v < *b:
		*b = v
	}
}

// Test is a PD test instance for one shared array.
type Test struct {
	arr      *mem.Array
	shadows  []*shadow
	accesses atomic.Int64

	// Optional observability hooks (nil-safe).
	obsM *obs.Metrics
	obsT obs.Tracer
}

// SetObs attaches observability hooks: every Analyze records its
// verdict into m and emits a "pd-test" event to t.  Either may be nil.
func (t *Test) SetObs(mx *obs.Metrics, tr obs.Tracer) { t.obsM, t.obsT = mx, tr }

// New creates a PD test for array a with marking state for procs virtual
// processors.
func New(a *mem.Array, procs int) *Test {
	if procs < 1 {
		procs = 1
	}
	t := &Test{arr: a, shadows: make([]*shadow, procs)}
	for k := range t.shadows {
		t.shadows[k] = newShadow(a.Len())
	}
	return t
}

// Array returns the array under test.
func (t *Test) Array() *mem.Array { return t.arr }

// Accesses returns the number of accesses marked so far (the `a` of the
// cost model's overhead terms).
func (t *Test) Accesses() int { return int(t.accesses.Load()) }

// Observer returns the mem.Observer to be chained into the speculative
// DOALL's tracker.  Accesses to other arrays are ignored.
func (t *Test) Observer() mem.Observer { return observer{t} }

type observer struct{ t *Test }

func (o observer) ObserveLoad(a *mem.Array, idx, iter, vpn int) {
	if a != o.t.arr {
		return
	}
	o.t.accesses.Add(1)
	s := o.t.shadows[vpn]
	if s.lastWriter[idx] == int64(iter) {
		return // read covered by this iteration's own earlier write
	}
	insert2(&s.r1[idx], &s.r2[idx], int64(iter))
}

func (o observer) ObserveStore(a *mem.Array, idx, iter, vpn int) {
	if a != o.t.arr {
		return
	}
	o.t.accesses.Add(1)
	s := o.t.shadows[vpn]
	if s.lastWriter[idx] != int64(iter) {
		insert2(&s.w1[idx], &s.w2[idx], int64(iter))
		s.lastWriter[idx] = int64(iter)
	}
}

// ObserveLoadRange marks hi-lo loads with one access-counter update; the
// per-element shadow marking is unchanged, so verdicts are identical to
// the element-wise path.
func (o observer) ObserveLoadRange(a *mem.Array, lo, hi, iter, vpn int) {
	if a != o.t.arr {
		return
	}
	o.t.accesses.Add(int64(hi - lo))
	s := o.t.shadows[vpn]
	it := int64(iter)
	for idx := lo; idx < hi; idx++ {
		if s.lastWriter[idx] == it {
			continue
		}
		insert2(&s.r1[idx], &s.r2[idx], it)
	}
}

// ObserveStoreRange marks hi-lo stores with one access-counter update.
func (o observer) ObserveStoreRange(a *mem.Array, lo, hi, iter, vpn int) {
	if a != o.t.arr {
		return
	}
	o.t.accesses.Add(int64(hi - lo))
	s := o.t.shadows[vpn]
	it := int64(iter)
	for idx := lo; idx < hi; idx++ {
		if s.lastWriter[idx] != it {
			insert2(&s.w1[idx], &s.w2[idx], it)
			s.lastWriter[idx] = it
		}
	}
}

// Result is the verdict of the post-execution analysis.
type Result struct {
	// DOALL: the speculative parallel execution was valid as-is — no
	// cross-iteration flow/anti or output dependences among iterations
	// below the valid bound.
	DOALL bool
	// DOALLWithPriv: valid had the array been privatized (output
	// dependences removed by private copies; still requires no
	// cross-iteration flow/anti dependence).
	DOALLWithPriv bool
	// PrivatizableStrict: the paper's Privatization Criterion holds
	// verbatim — every read was preceded by a same-iteration write, so
	// no copy-in mechanism is needed.
	PrivatizableStrict bool
	// OutputDep: some element was written by two distinct valid
	// iterations.
	OutputDep bool
	// FlowAntiDep: some element was written by one valid iteration and
	// exposed-read by a different valid iteration.
	FlowAntiDep bool
	// FirstViolation is the smallest valid iteration participating in
	// any violated dependence, or -1 when DOALL holds.  For an output
	// dependence on an element that is its earliest writer; for a
	// flow/anti dependence the earlier of the earliest writer and the
	// earliest exposed reader.  Committing iterations strictly below it
	// and undoing the rest is safe: every marked access of a violating
	// element belongs to an iteration at or beyond this bound, so the
	// time-stamped undo (which keys on the per-location *minimum* write
	// stamp) restores every such element in full.
	FirstViolation int
	// Accesses marked during the run (for overhead accounting).
	Accesses int
}

// Analyze runs the post-execution analysis, ignoring all marks made by
// iterations with index >= valid (the time-stamped-marks rule for
// overshooting WHILE loops).  The element scan is itself executed as a
// DOALL over the shadow arrays — the analysis is fully parallel
// regardless of the nature of the original loop.
func (t *Test) Analyze(valid int) Result { return t.analyze(valid, true) }

// AnalyzeQuiet is Analyze without recording into the observability
// hooks — for informational re-analysis (e.g. reporting verdicts after
// a fallback has already been decided), so metrics count each protocol
// decision exactly once.
func (t *Test) AnalyzeQuiet(valid int) Result { return t.analyze(valid, false) }

func (t *Test) analyze(valid int, record bool) Result {
	n := t.arr.Len()
	v := int64(valid)
	var outputDep, flowAnti, exposed atomic.Bool
	var firstViol atomic.Int64
	firstViol.Store(never)

	sched.DOALL(n, sched.Options{Procs: len(t.shadows)}, func(e, _ int) sched.Control {
		// Merge per-processor marks for element e: the two smallest
		// distinct writer iterations and exposed-read iterations.
		w1, w2, r1, r2 := never, never, never, never
		for _, s := range t.shadows {
			insert2(&w1, &w2, s.w1[e])
			insert2(&w1, &w2, s.w2[e])
			insert2(&r1, &r2, s.r1[e])
			insert2(&r1, &r2, s.r2[e])
		}
		if r1 < v {
			exposed.Store(true)
		}
		if w2 < v {
			outputDep.Store(true)
			atomicMin(&firstViol, w1)
		}
		if w1 < v && r1 < v {
			// A flow/anti dependence needs a writer and an exposed
			// reader in different valid iterations.  Only if the sole
			// valid writer and sole valid exposed reader are the same
			// iteration is the element clean.
			clean := w1 == r1 && w2 >= v && r2 >= v
			if !clean {
				flowAnti.Store(true)
				if r1 < w1 {
					atomicMin(&firstViol, r1)
				} else {
					atomicMin(&firstViol, w1)
				}
			}
		}
		return sched.Continue
	})

	res := Result{
		DOALL:              !outputDep.Load() && !flowAnti.Load(),
		DOALLWithPriv:      !flowAnti.Load(),
		PrivatizableStrict: !exposed.Load(),
		OutputDep:          outputDep.Load(),
		FlowAntiDep:        flowAnti.Load(),
		FirstViolation:     -1,
		Accesses:           t.Accesses(),
	}
	if fv := firstViol.Load(); fv != never {
		res.FirstViolation = int(fv)
	}
	if record {
		// The verdict is computed by merging the per-processor shadow
		// shards element-wise; account that like a stamp-shard merge.
		t.obsM.ShardMergeDone(len(t.shadows), n)
		t.obsM.RecordPD(obs.PDVerdict{
			Array: t.arr.Name, DOALL: res.DOALL, DOALLWithPriv: res.DOALLWithPriv, Accesses: res.Accesses,
		})
		if t.obsT != nil {
			obs.Instant(t.obsT, "pd-test", "pdtest", 0, map[string]any{
				"array": t.arr.Name, "doall": res.DOALL, "priv": res.DOALLWithPriv, "accesses": res.Accesses,
			})
		}
	}
	return res
}

// Reset clears all marks for reuse across strips (Section 5.1 suggests
// strip-mining and running the PD test on each strip when the terminator
// itself depends on a variable with unknown dependences).
func (t *Test) Reset() {
	n := t.arr.Len()
	for _, s := range t.shadows {
		for i := 0; i < n; i++ {
			s.lastWriter[i] = -1
			s.w1[i], s.w2[i] = never, never
			s.r1[i], s.r2[i] = never, never
		}
	}
	t.accesses.Store(0)
}
