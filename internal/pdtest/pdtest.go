// Package pdtest implements the PRIVATIZING DOALL test (PD test) of
// Section 5.1: a run-time technique that decides, after a speculative
// parallel execution, whether the loop actually had cross-iteration data
// dependences — and if so, whether privatization would have removed
// them.
//
// For each shared array under test the loop's accesses are traversed
// into shadow structures while the speculative DOALL runs; a fully
// parallel post-execution analysis then checks for:
//
//   - cross-iteration flow/anti dependences: some element is written by
//     one iteration and *exposed-read* (read before being written within
//     its own iteration) by a different iteration;
//   - output dependences: some element is written by two or more
//     distinct iterations.
//
// A loop is a valid DOALL with respect to the array iff neither occurs.
// Privatization (private per-processor copies, Section 5's Privatization
// Criterion) removes output dependences but not cross-iteration flow,
// so "valid if privatized" requires only the absence of flow/anti
// dependences.
//
// WHILE-loop integration (Section 5.1): every shadow mark carries the
// iteration that made it, and the analysis takes the last valid
// iteration as a parameter — marks made by overshot iterations are
// simply ignored, exactly as the paper prescribes ("those marks in the
// shadow arrays with minimum time-stamps greater than the last valid
// iteration will be ignored").
//
// Shadow structures are per virtual processor, so marking is
// contention-free; iterations on one processor run sequentially, which
// is what makes the exposed-read determination (did *this* iteration
// already write the element?) exact.
//
// Strip-mining throughput: a strip-mined execution runs the PD test
// once per strip, so the per-strip costs must be proportional to the
// strip's accesses, not to the array length.  The shadow slots are
// therefore epoch-tagged — a slot is live only if its generation tag
// equals the test's current epoch, making Reset a single counter bump —
// and each processor journals the elements it touches, so Analyze
// merges exactly the touched set instead of sweeping all n elements.
// NewEager keeps the eager-sweep, full-scan scheme as the equivalence
// oracle and baseline.
package pdtest

import (
	"math"
	"sync/atomic"

	"whilepar/internal/arena"
	"whilepar/internal/mem"
	"whilepar/internal/obs"
	"whilepar/internal/sched"
)

const never = int64(math.MaxInt64)

// pdRec is one element's packed marking state on one processor — the
// same cache-packing move tsmem's stamp records make.  The six logical
// fields used to live in six parallel slices, so a first-touch mark
// dirtied six cache lines; fused into one 48-byte array-of-structs
// record (pinned by TestPackedShadowLayout), every mark touches exactly
// one line and the epoch tag can never sit apart from the slots it
// guards.
type pdRec struct {
	// lastWriter is the most recent iteration *on this processor* that
	// wrote the element (-1 if none): the same-iteration write detector
	// that decides whether a read is exposed.
	lastWriter int64
	// w1 <= w2 are the two smallest distinct iterations on this
	// processor that wrote the element; r1 <= r2 likewise for exposed
	// reads.
	w1, w2, r1, r2 int64
	// tag is the epoch that last initialized the slots; they are live
	// only while tag equals the test's current epoch.  In eager mode
	// every tag is pinned to the never-moving epoch, so the liveness
	// check is always true and the eager Reset sweep carries the slot
	// reinitialization.
	tag uint32
	// padding: keeps the record at 48 bytes explicitly rather than by
	// compiler accident.
	_ uint32
}

var pdRecPool = arena.NewSlicePool[pdRec]()

// shadow is one virtual processor's private marking state for one array.
type shadow struct {
	// recs[e] is element e's packed marking record.
	recs []pdRec
	// dirty journals the elements this processor touched in the current
	// epoch (first touch only), giving Analyze its worklist.  Unused
	// (empty) in eager mode.
	dirty []int
	// accesses counts marks made by this processor since the last
	// Reset; the per-shadow split keeps the hot path free of shared
	// atomics (summed post-barrier by Accesses).
	accesses int64
}

func newShadow(n int, eager bool) *shadow {
	// Recycled records must come back with all-stale tags: a leftover
	// tag equal to a fresh test's live epoch would read as current
	// marks.
	s := &shadow{recs: pdRecPool.GetZeroed(n)}
	if eager {
		// Pin every tag live and eagerly initialize every slot: the
		// pre-epoch scheme, where Reset's sweep is the only
		// reinitialization.
		for i := range s.recs {
			s.recs[i].tag = 1
		}
		s.sweep()
	} else {
		s.dirty = arena.Ints(64)
	}
	return s
}

// sweep reinitializes every slot (eager mode only).
func (s *shadow) sweep() {
	for i := range s.recs {
		r := &s.recs[i]
		r.lastWriter = -1
		r.w1, r.w2 = never, never
		r.r1, r.r2 = never, never
	}
}

func (s *shadow) release() {
	pdRecPool.Put(s.recs)
	arena.PutInts(s.dirty)
	*s = shadow{}
}

// atomicMin lowers a to v if v is smaller.
func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// insert2 maintains the two smallest distinct values.
func insert2(a, b *int64, v int64) {
	switch {
	case v == *a || v == *b:
	case v < *a:
		*b = *a
		*a = v
	case v < *b:
		*b = v
	}
}

// Test is a PD test instance for one shared array.
type Test struct {
	arr     *mem.Array
	shadows []*shadow
	// epoch is the current shadow generation.  It starts at 1 so the
	// zeroed tags of a fresh allocation are already stale; in eager
	// mode it never moves.
	epoch uint32
	eager bool

	// seen/seenGen deduplicate the per-shadow dirty journals into
	// touched, Analyze's worklist (epoch mode only).
	seen    []uint32
	seenGen uint32
	touched []int

	// Optional observability hooks (nil-safe).
	obsM *obs.Metrics
	obsT obs.Tracer
}

// SetObs attaches observability hooks: every Analyze records its
// verdict into m and emits a "pd-test" event to t.  Either may be nil.
func (t *Test) SetObs(mx *obs.Metrics, tr obs.Tracer) { t.obsM, t.obsT = mx, tr }

// New creates a PD test for array a with marking state for procs virtual
// processors.  Shadow slots are epoch-tagged and touch-journaled, so
// Reset is O(1) and Analyze visits only touched elements.
func New(a *mem.Array, procs int) *Test { return newTest(a, procs, false) }

// NewEager is New with epoch tagging disabled: every slot is eagerly
// initialized, Reset sweeps all procs x n slots, and Analyze scans every
// element.  It is retained as the equivalence oracle for the journaled
// fast path and as its benchmark baseline.
func NewEager(a *mem.Array, procs int) *Test { return newTest(a, procs, true) }

func newTest(a *mem.Array, procs int, eager bool) *Test {
	if procs < 1 {
		procs = 1
	}
	t := &Test{arr: a, shadows: make([]*shadow, procs), epoch: 1, eager: eager}
	for k := range t.shadows {
		t.shadows[k] = newShadow(a.Len(), eager)
	}
	if !eager {
		t.seen = arena.Uint32sZeroed(a.Len())
	}
	return t
}

// Release returns the test's shadow buffers to the shared arena.  The
// test must not be used afterwards; call it when an engine is done with
// its per-invocation tests.
func (t *Test) Release() {
	for _, s := range t.shadows {
		s.release()
	}
	t.shadows = nil
	arena.PutUint32s(t.seen)
	t.seen = nil
	arena.PutInts(t.touched)
	t.touched = nil
}

// Array returns the array under test.
func (t *Test) Array() *mem.Array { return t.arr }

// Accesses returns the number of accesses marked so far (the `a` of the
// cost model's overhead terms).  Call it after the parallel section: it
// sums the per-processor counters.
func (t *Test) Accesses() int {
	n := int64(0)
	for _, s := range t.shadows {
		n += s.accesses
	}
	return int(n)
}

// Observer returns the mem.Observer to be chained into the speculative
// DOALL's tracker.  Accesses to other arrays are ignored.
func (t *Test) Observer() mem.Observer { return observer{t} }

// slot makes element idx's record of shadow s live in the current
// epoch, initializing it and journaling the first touch, and returns
// it — one cache line for the whole first-touch mark.
func (t *Test) slot(s *shadow, idx int) *pdRec {
	r := &s.recs[idx]
	if r.tag != t.epoch {
		r.tag = t.epoch
		r.lastWriter = -1
		r.w1, r.w2 = never, never
		r.r1, r.r2 = never, never
		s.dirty = append(s.dirty, idx)
	}
	return r
}

// MarkLoad records one load of a[idx] by iteration iter on processor
// vpn.  It is the concrete (devirtualized) form of the Observer's
// ObserveLoad, for callers that fuse the marking into a typed tracker
// instead of dispatching through a mem.Observer chain.
func (t *Test) MarkLoad(a *mem.Array, idx, iter, vpn int) {
	if a != t.arr {
		return
	}
	s := t.shadows[vpn]
	s.accesses++
	r := t.slot(s, idx)
	if r.lastWriter == int64(iter) {
		return // read covered by this iteration's own earlier write
	}
	insert2(&r.r1, &r.r2, int64(iter))
}

// MarkStore records one store, the concrete form of ObserveStore.
func (t *Test) MarkStore(a *mem.Array, idx, iter, vpn int) {
	if a != t.arr {
		return
	}
	s := t.shadows[vpn]
	s.accesses++
	r := t.slot(s, idx)
	if r.lastWriter != int64(iter) {
		insert2(&r.w1, &r.w2, int64(iter))
		r.lastWriter = int64(iter)
	}
}

// MarkLoadRange marks hi-lo loads with one access-counter update; the
// per-element shadow marking is unchanged, so verdicts are identical to
// the element-wise path.
func (t *Test) MarkLoadRange(a *mem.Array, lo, hi, iter, vpn int) {
	if a != t.arr {
		return
	}
	s := t.shadows[vpn]
	s.accesses += int64(hi - lo)
	it := int64(iter)
	for idx := lo; idx < hi; idx++ {
		r := t.slot(s, idx)
		if r.lastWriter == it {
			continue
		}
		insert2(&r.r1, &r.r2, it)
	}
}

// MarkStoreRange marks hi-lo stores with one access-counter update.
func (t *Test) MarkStoreRange(a *mem.Array, lo, hi, iter, vpn int) {
	if a != t.arr {
		return
	}
	s := t.shadows[vpn]
	s.accesses += int64(hi - lo)
	it := int64(iter)
	for idx := lo; idx < hi; idx++ {
		r := t.slot(s, idx)
		if r.lastWriter != it {
			insert2(&r.w1, &r.w2, it)
			r.lastWriter = it
		}
	}
}

type observer struct{ t *Test }

func (o observer) ObserveLoad(a *mem.Array, idx, iter, vpn int)  { o.t.MarkLoad(a, idx, iter, vpn) }
func (o observer) ObserveStore(a *mem.Array, idx, iter, vpn int) { o.t.MarkStore(a, idx, iter, vpn) }
func (o observer) ObserveLoadRange(a *mem.Array, lo, hi, iter, vpn int) {
	o.t.MarkLoadRange(a, lo, hi, iter, vpn)
}
func (o observer) ObserveStoreRange(a *mem.Array, lo, hi, iter, vpn int) {
	o.t.MarkStoreRange(a, lo, hi, iter, vpn)
}

// Result is the verdict of the post-execution analysis.
type Result struct {
	// DOALL: the speculative parallel execution was valid as-is — no
	// cross-iteration flow/anti or output dependences among iterations
	// below the valid bound.
	DOALL bool
	// DOALLWithPriv: valid had the array been privatized (output
	// dependences removed by private copies; still requires no
	// cross-iteration flow/anti dependence).
	DOALLWithPriv bool
	// PrivatizableStrict: the paper's Privatization Criterion holds
	// verbatim — every read was preceded by a same-iteration write, so
	// no copy-in mechanism is needed.
	PrivatizableStrict bool
	// OutputDep: some element was written by two distinct valid
	// iterations.
	OutputDep bool
	// FlowAntiDep: some element was written by one valid iteration and
	// exposed-read by a different valid iteration.
	FlowAntiDep bool
	// FirstViolation is the smallest valid iteration participating in
	// any violated dependence, or -1 when DOALL holds.  For an output
	// dependence on an element that is its earliest writer; for a
	// flow/anti dependence the earlier of the earliest writer and the
	// earliest exposed reader.  Committing iterations strictly below it
	// and undoing the rest is safe: every marked access of a violating
	// element belongs to an iteration at or beyond this bound, so the
	// time-stamped undo (which keys on the per-location *minimum* write
	// stamp) restores every such element in full.
	FirstViolation int
	// Accesses marked during the run (for overhead accounting).
	Accesses int
}

// Analyze runs the post-execution analysis, ignoring all marks made by
// iterations with index >= valid (the time-stamped-marks rule for
// overshooting WHILE loops).  In epoch mode the merge visits exactly
// the elements some processor touched this epoch (the union of the
// dirty journals); the eager oracle scans all n elements as a DOALL
// over the shadow arrays.  Either way the analysis depends only on
// shadow marks, never on array data.
func (t *Test) Analyze(valid int) Result { return t.analyze(valid, true) }

// AnalyzeQuiet is Analyze without recording into the observability
// hooks — for informational re-analysis (e.g. reporting verdicts after
// a fallback has already been decided), so metrics count each protocol
// decision exactly once.
func (t *Test) AnalyzeQuiet(valid int) Result { return t.analyze(valid, false) }

// inlineScan is the worklist size below which the merge runs inline on
// the caller: spawning a DOALL's worth of goroutines costs more than
// merging a strip-sized touched set.
const inlineScan = 4096

func (t *Test) analyze(valid int, record bool) Result {
	n := t.arr.Len()
	v := int64(valid)
	var outputDep, flowAnti, exposed atomic.Bool
	var firstViol atomic.Int64
	firstViol.Store(never)

	// Build the worklist: in epoch mode only journaled elements can
	// carry live marks.  The journals hold first-touches per processor,
	// so the union is deduplicated against a generation-tagged scratch.
	work := n
	if !t.eager {
		t.seenGen++
		if t.seenGen == 0 {
			for i := range t.seen {
				t.seen[i] = 0
			}
			t.seenGen = 1
		}
		touched := t.touched[:0]
		for _, s := range t.shadows {
			for _, e := range s.dirty {
				if t.seen[e] != t.seenGen {
					t.seen[e] = t.seenGen
					touched = append(touched, e)
				}
			}
		}
		t.touched = touched
		work = len(touched)
	}

	scan := func(e int) {
		// Merge per-processor marks for element e: the two smallest
		// distinct writer iterations and exposed-read iterations.
		// Shadows whose slot is stale (untouched this epoch) carry no
		// marks for e; in eager mode every tag is pinned live.
		w1, w2, r1, r2 := never, never, never, never
		for _, s := range t.shadows {
			r := &s.recs[e]
			if r.tag != t.epoch {
				continue
			}
			insert2(&w1, &w2, r.w1)
			insert2(&w1, &w2, r.w2)
			insert2(&r1, &r2, r.r1)
			insert2(&r1, &r2, r.r2)
		}
		if r1 < v {
			exposed.Store(true)
		}
		if w2 < v {
			outputDep.Store(true)
			atomicMin(&firstViol, w1)
		}
		if w1 < v && r1 < v {
			// A flow/anti dependence needs a writer and an exposed
			// reader in different valid iterations.  Only if the sole
			// valid writer and sole valid exposed reader are the same
			// iteration is the element clean.
			clean := w1 == r1 && w2 >= v && r2 >= v
			if !clean {
				flowAnti.Store(true)
				if r1 < w1 {
					atomicMin(&firstViol, r1)
				} else {
					atomicMin(&firstViol, w1)
				}
			}
		}
	}

	switch {
	case t.eager:
		// Oracle shape: the element scan is itself a DOALL over the
		// shadow arrays — fully parallel regardless of the original
		// loop's nature.
		sched.DOALL(n, sched.Options{Procs: len(t.shadows)}, func(e, _ int) sched.Control {
			scan(e)
			return sched.Continue
		})
	case work <= inlineScan || len(t.shadows) == 1:
		for _, e := range t.touched {
			scan(e)
		}
	default:
		touched := t.touched
		sched.DOALL(work, sched.Options{Procs: len(t.shadows)}, func(j, _ int) sched.Control {
			scan(touched[j])
			return sched.Continue
		})
	}

	res := Result{
		DOALL:              !outputDep.Load() && !flowAnti.Load(),
		DOALLWithPriv:      !flowAnti.Load(),
		PrivatizableStrict: !exposed.Load(),
		OutputDep:          outputDep.Load(),
		FlowAntiDep:        flowAnti.Load(),
		FirstViolation:     -1,
		Accesses:           t.Accesses(),
	}
	if fv := firstViol.Load(); fv != never {
		res.FirstViolation = int(fv)
	}
	if record {
		// The verdict is computed by merging the per-processor shadow
		// shards element-wise; account that like a stamp-shard merge.
		t.obsM.ShardMergeDone(len(t.shadows), work)
		t.obsM.RecordPD(obs.PDVerdict{
			Array: t.arr.Name, DOALL: res.DOALL, DOALLWithPriv: res.DOALLWithPriv, Accesses: res.Accesses,
		})
		if t.obsT != nil {
			obs.Instant(t.obsT, "pd-test", "pdtest", 0, map[string]any{
				"array": t.arr.Name, "doall": res.DOALL, "priv": res.DOALLWithPriv, "accesses": res.Accesses,
			})
		}
	}
	return res
}

// Reset clears all marks for reuse across strips (Section 5.1 suggests
// strip-mining and running the PD test on each strip when the terminator
// itself depends on a variable with unknown dependences).  In epoch mode
// this is one generation bump plus journal truncation — O(touched), not
// O(procs x n); the eager oracle pays the full sweep.
func (t *Test) Reset() {
	if t.eager {
		for _, s := range t.shadows {
			s.sweep()
		}
	} else {
		t.epoch++
		if t.epoch == 0 {
			// uint32 wrap: tags written 2^32 generations ago would read
			// as live again, so pay one full sweep to zero them and
			// restart at 1 (zero is never a live epoch).
			for _, s := range t.shadows {
				for i := range s.recs {
					s.recs[i].tag = 0
				}
			}
			t.epoch = 1
		}
		for _, s := range t.shadows {
			s.dirty = s.dirty[:0]
		}
	}
	for _, s := range t.shadows {
		s.accesses = 0
	}
}
