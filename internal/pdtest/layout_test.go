package pdtest

import (
	"testing"
	"unsafe"
)

// The packed shadow record must stay 48 bytes — five int64 slots plus
// the epoch tag and explicit padding — so it spans at most one cache
// line and a first-touch mark never fans out across parallel arrays.
func TestPackedShadowLayout(t *testing.T) {
	if got := unsafe.Sizeof(pdRec{}); got != 48 {
		t.Fatalf("packed shadow record is %d bytes, want 48", got)
	}
	if got := unsafe.Alignof(pdRec{}); got != 8 {
		t.Fatalf("packed shadow record alignment is %d, want 8", got)
	}
	var r pdRec
	if off := unsafe.Offsetof(r.tag); off != 40 {
		t.Fatalf("epoch tag at offset %d, want 40", off)
	}
}
