package distribute

import (
	"sync/atomic"
	"testing"

	"whilepar/internal/loopir"
	"whilepar/internal/mem"
)

// multiRecLoop is the Section 6 end-to-end case: a loop with a general
// recurrence (a chained value), an induction, and parallel work
// consuming both.
//
//	chain = f(chain)            // stmt 0: general recurrence
//	work[i] = chain_i + i*i     // stmt 2: parallel remainder
func multiRecLoop(n int) (*Graph, func(chainOut, workOut *mem.Array) Impl) {
	disp := &Stmt{ID: 0, Name: "chain = f(chain)", Kind: GeneralRec, SelfDep: true, Cost: 1}
	work := &Stmt{ID: 2, Name: "work[i] = chain+i*i", Kind: Plain, Cost: 50}
	g := NewGraph(disp, work)
	g.AddDep(0, 0)
	g.AddDep(0, 2)
	impl := func(chainOut, workOut *mem.Array) Impl {
		var chain atomic.Int64 // monotone chained value
		return Impl{
			0: func(it *loopir.Iter, i int) {
				// The recurrence: chain_{i} = chain_{i-1} + 3 (evaluated
				// strictly in iteration order by the executor).
				v := chain.Add(3)
				it.Store(chainOut, i, float64(v))
			},
			2: func(it *loopir.Iter, i int) {
				it.Store(workOut, i, it.Load(chainOut, i)+float64(i*i))
			},
		}
	}
	return g, impl
}

func runBoth(t *testing.T, blocks []Block, n, procs int, impl func(chainOut, workOut *mem.Array) Impl) (par, seq *mem.Array) {
	t.Helper()
	parChain, parWork := mem.NewArray("chain", n), mem.NewArray("work", n)
	seqChain, seqWork := mem.NewArray("chain", n), mem.NewArray("work", n)
	if err := Execute(blocks, n, ExecOptions{Procs: procs}, impl(parChain, parWork)); err != nil {
		t.Fatal(err)
	}
	if err := ExecuteSequential(blocks, n, impl(seqChain, seqWork)); err != nil {
		t.Fatal(err)
	}
	return parWork, seqWork
}

func TestExecutePlanMatchesSequential(t *testing.T) {
	n := 500
	g, impl := multiRecLoop(n)
	blocks := Plan(g, FuseOptions{ParallelOverhead: 5})
	if len(blocks) != 2 {
		t.Fatalf("plan has %d blocks", len(blocks))
	}
	par, seq := runBoth(t, blocks, n, 8, impl)
	if !par.Equal(seq) {
		t.Fatal("plan execution diverged from sequential")
	}
}

func TestExecuteDoacrossPipelineMatchesSequential(t *testing.T) {
	n := 500
	g, impl := multiRecLoop(n)
	blocks := Plan(g, FuseOptions{ParallelOverhead: 5, Doacross: true})
	if !blocks[0].Doacross {
		t.Fatal("setup: first block should be DOACROSS-marked")
	}
	par, seq := runBoth(t, blocks, n, 8, impl)
	if !par.Equal(seq) {
		t.Fatal("pipelined execution diverged from sequential")
	}
}

func TestExecuteChainIsOrdered(t *testing.T) {
	// The recurrence statement must observe strict iteration order even
	// under the pipeline: chain values are 3, 6, 9, ...
	n := 300
	g, impl := multiRecLoop(n)
	blocks := Plan(g, FuseOptions{Doacross: true})
	chain, work := mem.NewArray("chain", n), mem.NewArray("work", n)
	if err := Execute(blocks, n, ExecOptions{Procs: 6}, impl(chain, work)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if chain.Data[i] != float64(3*(i+1)) {
			t.Fatalf("chain[%d] = %v, want %v", i, chain.Data[i], 3*(i+1))
		}
	}
}

func TestExecuteRejectsMissingImpl(t *testing.T) {
	g, _ := multiRecLoop(10)
	blocks := Plan(g, FuseOptions{})
	err := Execute(blocks, 10, ExecOptions{Procs: 2}, Impl{})
	if err == nil {
		t.Fatal("missing implementation must be rejected")
	}
	if err := ExecuteSequential(blocks, 10, Impl{}); err == nil {
		t.Fatal("sequential executor must also reject")
	}
}

func TestExecuteSequentialBlockWithoutDoacross(t *testing.T) {
	// Sequential block not marked Doacross, followed by a parallel one:
	// executed with a full join in between.
	s0 := &Stmt{ID: 0, Kind: GeneralRec, SelfDep: true}
	s1 := &Stmt{ID: 1, Kind: Plain, Cost: 100}
	g := NewGraph(s0, s1)
	g.AddDep(0, 0)
	g.AddDep(0, 1)
	blocks := Plan(g, FuseOptions{}) // no Doacross marking
	n := 100
	var order []int
	var parRan atomic.Int64
	impl := Impl{
		0: func(it *loopir.Iter, i int) {
			if parRan.Load() != 0 {
				t.Error("parallel block started before sequential block finished")
			}
			order = append(order, i) // single-threaded: safe
		},
		1: func(it *loopir.Iter, i int) { parRan.Add(1) },
	}
	if err := Execute(blocks, n, ExecOptions{Procs: 4}, impl); err != nil {
		t.Fatal(err)
	}
	if len(order) != n || parRan.Load() != int64(n) {
		t.Fatalf("blocks incomplete: %d seq, %d par", len(order), parRan.Load())
	}
	for i, v := range order {
		if v != i {
			t.Fatal("sequential block out of order")
		}
	}
}
