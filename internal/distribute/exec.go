package distribute

import (
	"context"
	"fmt"

	"whilepar/internal/doacross"
	"whilepar/internal/loopir"
	"whilepar/internal/mem"
	"whilepar/internal/sched"
)

// Impl binds statement IDs to their per-iteration actions.  The action
// receives the iteration context (through which managed-memory accesses
// flow) and the iteration index.
type Impl map[int]func(it *loopir.Iter, i int)

// ExecOptions configures plan execution.
type ExecOptions struct {
	// Procs is the number of virtual processors.
	Procs int
	// Tracker interposes on managed-memory accesses (nil = direct).
	Tracker mem.Tracker
}

// Execute runs a distributed/fused plan over the iteration space [0, n):
// blocks execute in order with a join between them;
//
//   - parallel, prefix and PD-test blocks run as DOALLs (the PD-test
//     block's speculation protocol is the caller's: pass a tracker wired
//     to internal/speculate);
//   - sequential blocks run in iteration order on one processor —
//     except that a sequential block marked Doacross is *pipelined*
//     against its immediate successor block: iteration i runs the
//     sequential statements (chained i-1 -> i), posts, and then runs the
//     successor block's statements for the same iteration, overlapping
//     them with the chain.
//
// Every statement in every block must have an implementation.
func Execute(blocks []Block, n int, opt ExecOptions, impl Impl) error {
	procs := opt.Procs
	if procs < 1 {
		procs = 1
	}
	for _, b := range blocks {
		for _, s := range b.Stmts {
			if impl[s.ID] == nil {
				return fmt.Errorf("distribute: statement %d (%s) has no implementation", s.ID, s.Name)
			}
		}
	}

	runStmts := func(b Block, it *loopir.Iter, i int) {
		for _, s := range b.Stmts {
			impl[s.ID](it, i)
		}
	}

	for bi := 0; bi < len(blocks); bi++ {
		b := blocks[bi]
		switch {
		case b.Kind == SequentialBlock && b.Doacross && bi+1 < len(blocks):
			succ := blocks[bi+1]
			bi++ // the successor is consumed by the pipeline
			doacross.Run(context.Background(), n, doacross.Config{Procs: procs}, func(i, vpn int, s *doacross.Sync) doacross.Control {
				s.Wait(i, i-1)
				it := loopir.Iter{Index: i, VPN: vpn, Tracker: opt.Tracker}
				runStmts(b, &it, i)
				s.Post(i)
				runStmts(succ, &it, i)
				return doacross.Continue
			})
		case b.Kind == SequentialBlock:
			for i := 0; i < n; i++ {
				it := loopir.Iter{Index: i, VPN: 0, Tracker: opt.Tracker}
				runStmts(b, &it, i)
			}
		default: // ParallelBlock, PrefixBlock, PDTestBlock
			sched.DOALL(n, sched.Options{Procs: procs}, func(i, vpn int) sched.Control {
				it := loopir.Iter{Index: i, VPN: vpn, Tracker: opt.Tracker}
				runStmts(b, &it, i)
				return sched.Continue
			})
		}
	}
	return nil
}

// ExecuteSequential is the reference executor: every block, every
// iteration, in program order on one processor.  The semantic oracle
// Execute is validated against.
func ExecuteSequential(blocks []Block, n int, impl Impl) error {
	for _, b := range blocks {
		for _, s := range b.Stmts {
			if impl[s.ID] == nil {
				return fmt.Errorf("distribute: statement %d (%s) has no implementation", s.ID, s.Name)
			}
		}
	}
	for _, b := range blocks {
		for i := 0; i < n; i++ {
			it := loopir.Iter{Index: i, VPN: 0}
			for _, s := range b.Stmts {
				impl[s.ID](&it, i)
			}
		}
	}
	return nil
}
