package distribute

import (
	"testing"

	"whilepar/internal/loopir"
)

// figure1b builds the dependence graph of the canonical list-traversal
// WHILE loop: a general-recurrence dispatcher feeding a parallel body.
func figure1b() *Graph {
	disp := &Stmt{ID: 0, Name: "tmp = next(tmp)", Kind: GeneralRec, SelfDep: true, Cost: 1}
	work := &Stmt{ID: 1, Name: "WORK(tmp)", Kind: Plain, Cost: 10}
	g := NewGraph(disp, work)
	g.AddDep(0, 0) // recurrence
	g.AddDep(0, 1) // work uses the dispatcher value
	return g
}

func TestDistributeExtractsDispatcherFirst(t *testing.T) {
	blocks := Distribute(figure1b())
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	if blocks[0].Kind != SequentialBlock || blocks[0].Stmts[0].ID != 0 {
		t.Fatalf("first block should be the sequential dispatcher: %+v", blocks[0])
	}
	if blocks[1].Kind != ParallelBlock || blocks[1].Stmts[0].ID != 1 {
		t.Fatalf("second block should be the parallel remainder: %+v", blocks[1])
	}
}

func TestMultiStatementSCCIsSequential(t *testing.T) {
	// Two mutually dependent plain statements: a recurrence the
	// compiler cannot reduce — one sequential block.
	a := &Stmt{ID: 0, Name: "a", Kind: Plain, Cost: 1}
	b := &Stmt{ID: 1, Name: "b", Kind: Plain, Cost: 1}
	g := NewGraph(a, b)
	g.AddDep(0, 1)
	g.AddDep(1, 0)
	blocks := Distribute(g)
	if len(blocks) != 1 || blocks[0].Kind != SequentialBlock || len(blocks[0].Stmts) != 2 {
		t.Fatalf("blocks = %+v", blocks)
	}
}

func TestKindClassification(t *testing.T) {
	cases := []struct {
		kind StmtKind
		self bool
		want BlockKind
	}{
		{Plain, false, ParallelBlock},
		{Plain, true, SequentialBlock},
		{InductionRec, true, ParallelBlock},
		{AssociativeRec, true, PrefixBlock},
		{GeneralRec, true, SequentialBlock},
		{Unknown, false, PDTestBlock},
	}
	for _, c := range cases {
		s := &Stmt{ID: 0, Kind: c.kind, SelfDep: c.self}
		g := NewGraph(s)
		if c.self {
			g.AddDep(0, 0)
		}
		blocks := Distribute(g)
		if blocks[0].Kind != c.want {
			t.Errorf("%v/self=%v -> %v, want %v", c.kind, c.self, blocks[0].Kind, c.want)
		}
	}
}

func TestTopologicalOrderRespectsDependences(t *testing.T) {
	// Chain: induction -> plain -> associative -> plain.
	s0 := &Stmt{ID: 0, Kind: InductionRec, SelfDep: true}
	s1 := &Stmt{ID: 1, Kind: Plain}
	s2 := &Stmt{ID: 2, Kind: AssociativeRec, SelfDep: true}
	s3 := &Stmt{ID: 3, Kind: Plain}
	g := NewGraph(s0, s1, s2, s3)
	g.AddDep(0, 0)
	g.AddDep(0, 1)
	g.AddDep(1, 2)
	g.AddDep(2, 2)
	g.AddDep(2, 3)
	blocks := Distribute(g)
	pos := map[int]int{}
	for bi, b := range blocks {
		for _, s := range b.Stmts {
			pos[s.ID] = bi
		}
	}
	if !(pos[0] < pos[1] && pos[1] < pos[2] && pos[2] < pos[3]) {
		t.Fatalf("topological order violated: %v", pos)
	}
}

func TestFuseMergesContiguousSameKind(t *testing.T) {
	blocks := []Block{
		{Kind: SequentialBlock, Stmts: []*Stmt{{ID: 0, Cost: 5}}},
		{Kind: SequentialBlock, Stmts: []*Stmt{{ID: 1, Cost: 5}}},
		{Kind: ParallelBlock, Stmts: []*Stmt{{ID: 2, Cost: 100}}},
		{Kind: ParallelBlock, Stmts: []*Stmt{{ID: 3, Cost: 100}}},
		{Kind: SequentialBlock, Stmts: []*Stmt{{ID: 4, Cost: 5}}},
	}
	out := Fuse(blocks, FuseOptions{})
	if len(out) != 3 {
		t.Fatalf("fused to %d blocks: %+v", len(out), out)
	}
	if len(out[0].Stmts) != 2 || out[0].Kind != SequentialBlock {
		t.Fatalf("first fused block: %+v", out[0])
	}
	if len(out[1].Stmts) != 2 || out[1].Kind != ParallelBlock {
		t.Fatalf("second fused block: %+v", out[1])
	}
}

func TestFuseDemotesUnprofitableParallelBlocks(t *testing.T) {
	blocks := []Block{
		{Kind: SequentialBlock, Stmts: []*Stmt{{ID: 0, Cost: 5}}},
		{Kind: ParallelBlock, Stmts: []*Stmt{{ID: 1, Cost: 2}}}, // below overhead
		{Kind: SequentialBlock, Stmts: []*Stmt{{ID: 2, Cost: 5}}},
	}
	out := Fuse(blocks, FuseOptions{ParallelOverhead: 10})
	if len(out) != 1 || out[0].Kind != SequentialBlock || len(out[0].Stmts) != 3 {
		t.Fatalf("demotion+fusion failed: %+v", out)
	}
	// With negligible overhead the parallel block survives.
	out2 := Fuse(blocks, FuseOptions{ParallelOverhead: 1})
	if len(out2) != 3 {
		t.Fatalf("profitable parallel block demoted: %+v", out2)
	}
}

func TestFusePDTestBlocksOnlyWhenAllowed(t *testing.T) {
	blocks := []Block{
		{Kind: PDTestBlock, Stmts: []*Stmt{{ID: 0, Cost: 50}}},
		{Kind: PDTestBlock, Stmts: []*Stmt{{ID: 1, Cost: 50}}},
	}
	if out := Fuse(blocks, FuseOptions{}); len(out) != 2 {
		t.Fatalf("PD-test blocks fused by default: %+v", out)
	}
	if out := Fuse(blocks, FuseOptions{FusePDTest: true}); len(out) != 1 {
		t.Fatalf("PD-test fusion not honoured: %+v", out)
	}
}

func TestDoacrossMarking(t *testing.T) {
	blocks := []Block{
		{Kind: SequentialBlock, Stmts: []*Stmt{{ID: 0, Cost: 5}}},
		{Kind: ParallelBlock, Stmts: []*Stmt{{ID: 1, Cost: 100}}},
		{Kind: SequentialBlock, Stmts: []*Stmt{{ID: 2, Cost: 5}}},
	}
	out := Fuse(blocks, FuseOptions{Doacross: true})
	if !out[0].Doacross {
		t.Fatal("interior sequential block should be DOACROSS-schedulable")
	}
	if out[len(out)-1].Doacross {
		t.Fatal("final block has no successor to pipeline against")
	}
}

func TestPlanEndToEnd(t *testing.T) {
	// A realistic multi-recurrence loop: general dispatcher, induction
	// counter, parallel work, a tiny parallel tail that should demote.
	disp := &Stmt{ID: 0, Name: "p=next(p)", Kind: GeneralRec, SelfDep: true, Cost: 1}
	cnt := &Stmt{ID: 1, Name: "i=i+1", Kind: InductionRec, SelfDep: true, Cost: 1}
	work := &Stmt{ID: 2, Name: "work", Kind: Plain, Cost: 100}
	tail := &Stmt{ID: 3, Name: "tail", Kind: Plain, Cost: 1}
	g := NewGraph(disp, cnt, work, tail)
	g.AddDep(0, 0)
	g.AddDep(1, 1)
	g.AddDep(0, 2)
	g.AddDep(1, 2)
	g.AddDep(2, 3)
	out := Plan(g, FuseOptions{ParallelOverhead: 5, Doacross: true})
	if len(out) < 2 {
		t.Fatalf("plan = %+v", out)
	}
	// The dispatcher must come out sequential and before the work.
	if out[0].Kind != SequentialBlock {
		t.Fatalf("plan[0] = %+v", out[0])
	}
	if DispatcherKindOf(out[0]) != loopir.GeneralRecurrence {
		t.Fatal("sequential block should map to a general recurrence")
	}
	var foundWork bool
	for _, b := range out {
		if b.Kind == ParallelBlock {
			for _, s := range b.Stmts {
				if s.ID == 2 {
					foundWork = true
				}
			}
		}
	}
	if !foundWork {
		t.Fatalf("work statement lost its parallel block: %+v", out)
	}
}

func TestBlockKindStrings(t *testing.T) {
	for k, want := range map[BlockKind]string{
		ParallelBlock: "parallel", PrefixBlock: "prefix",
		SequentialBlock: "sequential", PDTestBlock: "pd-test",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	for k, want := range map[StmtKind]string{
		Plain: "plain", InductionRec: "induction", AssociativeRec: "associative",
		GeneralRec: "general", Unknown: "unknown",
	} {
		if k.String() != want {
			t.Errorf("kind string = %q, want %q", k.String(), want)
		}
	}
}

func TestDispatcherKindOfPrefix(t *testing.T) {
	if DispatcherKindOf(Block{Kind: PrefixBlock}) != loopir.AssociativeRecurrence {
		t.Fatal("prefix block should map to associative recurrence")
	}
	if DispatcherKindOf(Block{Kind: ParallelBlock}) != loopir.MonotonicInduction {
		t.Fatal("parallel block should map to induction")
	}
}
