// Package distribute implements the transformation of arbitrary WHILE
// loops with multiple recurrences (Section 6): given the data dependence
// graph of the loop body, it recursively extracts the hierarchically
// top-level recurrences, distributes the loop into per-recurrence and
// remainder loops, classifies each distributed loop (parallel /
// parallel-prefix / sequential / unknown-access), and then fuses
// contiguous loops bottom-up to maximize granularity and the code
// executed in parallel.
//
// The statement-level dependence graph is the package's input IR; SCC
// condensation (Tarjan) yields the recurrences — a strongly connected
// component with more than one statement, or a self-dependent statement,
// is a recurrence, whose kind (induction / associative / general) the
// "compiler" annotates on the statement.
package distribute

import (
	"fmt"
	"sort"

	"whilepar/internal/loopir"
)

// StmtKind classifies a statement for distribution purposes.
type StmtKind int

const (
	// Plain statements form the remainder; they are parallel across
	// iterations unless marked Unknown.
	Plain StmtKind = iota
	// InductionRec is a self-recurrence with a closed form.
	InductionRec
	// AssociativeRec is a self-recurrence evaluable by parallel prefix.
	AssociativeRec
	// GeneralRec is an inherently sequential self-recurrence.
	GeneralRec
	// Unknown marks a statement whose access pattern cannot be analyzed
	// statically; loops containing it need the PD test.
	Unknown
)

// String names the kind.
func (k StmtKind) String() string {
	switch k {
	case Plain:
		return "plain"
	case InductionRec:
		return "induction"
	case AssociativeRec:
		return "associative"
	case GeneralRec:
		return "general"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("StmtKind(%d)", int(k))
}

// Stmt is one statement of the loop body.
type Stmt struct {
	ID   int
	Name string
	Kind StmtKind
	// Cost is the statement's per-iteration cost, used by the fusion
	// profitability heuristic.
	Cost float64
	// SelfDep marks a statement that depends on itself across
	// iterations (a one-statement recurrence).
	SelfDep bool
}

// Graph is the loop body's statement dependence graph.  An edge u -> v
// means v depends on (must follow) u.
type Graph struct {
	Stmts []*Stmt
	succ  map[int][]int
}

// NewGraph creates a graph over the given statements.
func NewGraph(stmts ...*Stmt) *Graph {
	g := &Graph{Stmts: stmts, succ: make(map[int][]int)}
	return g
}

// AddDep records that `to` depends on `from`.
func (g *Graph) AddDep(from, to int) { g.succ[from] = append(g.succ[from], to) }

// stmt returns the statement with the given ID.
func (g *Graph) stmt(id int) *Stmt {
	for _, s := range g.Stmts {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// scc computes strongly connected components with Tarjan's algorithm,
// returned in reverse topological order (dependents after dependencies
// once reversed by the caller).
func (g *Graph) scc() [][]int {
	index := make(map[int]int)
	lowlink := make(map[int]int)
	onStack := make(map[int]bool)
	var stack []int
	var comps [][]int
	counter := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		lowlink[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}

	// Deterministic visit order by statement ID.
	ids := make([]int, 0, len(g.Stmts))
	for _, s := range g.Stmts {
		ids = append(ids, s.ID)
	}
	sort.Ints(ids)
	for _, v := range ids {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comps
}

// BlockKind classifies a distributed loop.
type BlockKind int

const (
	// ParallelBlock: a fully parallel loop (DOALL).
	ParallelBlock BlockKind = iota
	// PrefixBlock: an associative recurrence evaluated by parallel
	// prefix.
	PrefixBlock
	// SequentialBlock: an inherently sequential loop (general
	// recurrence or undetectable dependence structure); candidates for
	// DOACROSS scheduling against their successors.
	SequentialBlock
	// PDTestBlock: a loop whose access pattern is unknown, to be
	// speculatively executed under the PD test.
	PDTestBlock
)

// String names the block kind.
func (k BlockKind) String() string {
	switch k {
	case ParallelBlock:
		return "parallel"
	case PrefixBlock:
		return "prefix"
	case SequentialBlock:
		return "sequential"
	case PDTestBlock:
		return "pd-test"
	}
	return fmt.Sprintf("BlockKind(%d)", int(k))
}

// Block is one loop after distribution (and possibly fusion).
type Block struct {
	Kind  BlockKind
	Stmts []*Stmt
	// Doacross marks a sequential block that the scheduler may pipeline
	// against its successor blocks (Section 6's closing remark).
	Doacross bool
}

// Cost sums the per-iteration costs of the block's statements.
func (b Block) Cost() float64 {
	var c float64
	for _, s := range b.Stmts {
		c += s.Cost
	}
	return c
}

// classify determines a single SCC's block kind.
func (g *Graph) classify(comp []int) BlockKind {
	multi := len(comp) > 1
	kind := ParallelBlock
	for _, id := range comp {
		s := g.stmt(id)
		switch s.Kind {
		case Unknown:
			return PDTestBlock
		case GeneralRec:
			return SequentialBlock
		case AssociativeRec:
			kind = PrefixBlock
		case InductionRec:
			// closed form: stays parallel
		case Plain:
			if s.SelfDep {
				return SequentialBlock
			}
		}
	}
	if multi {
		// A multi-statement SCC is a recurrence the compiler cannot
		// reduce to a known form unless every statement is part of an
		// annotated induction/associative chain.
		if kind == ParallelBlock {
			return SequentialBlock
		}
	}
	return kind
}

// Distribute performs the recursive recurrence extraction of Section 6:
// SCC condensation followed by a topological emission, one block per
// SCC.  The result is maximally distributed — Fuse merges blocks back.
func Distribute(g *Graph) []Block {
	comps := g.scc()
	// Tarjan emits components in reverse topological order of the
	// condensation; reverse to get dependencies first (the
	// "hierarchically top level recurrences" extracted ahead of their
	// dependents).
	var blocks []Block
	for i := len(comps) - 1; i >= 0; i-- {
		comp := comps[i]
		var stmts []*Stmt
		for _, id := range comp {
			stmts = append(stmts, g.stmt(id))
		}
		blocks = append(blocks, Block{Kind: g.classify(comp), Stmts: stmts})
	}
	return blocks
}

// FuseOptions tunes the fusion heuristics.
type FuseOptions struct {
	// ParallelOverhead is the fixed cost of spawning one parallel loop;
	// a parallel block whose Cost does not exceed it is demoted to
	// sequential and fused with its sequential neighbours (the
	// "balance the overhead of parallelization" criterion).
	ParallelOverhead float64
	// FusePDTest permits fusing PD-test blocks with the parallel blocks
	// they dominate; the paper advises against it (a failed test's
	// re-execution cost grows), so it defaults to off.
	FusePDTest bool
	// Doacross marks residual sequential blocks for DOACROSS
	// scheduling.
	Doacross bool
}

// Fuse merges contiguous distributed blocks bottom-up per Section 6:
// runs of sequential blocks fuse together; runs of parallel blocks fuse
// together; an under-provisioned parallel block (cost below the
// parallelization overhead) is demoted and fused into the preceding
// sequential block.  Prefix and PD-test blocks fuse only with their own
// kind (and PD-test blocks only if FusePDTest).
func Fuse(blocks []Block, opt FuseOptions) []Block {
	// Demote unprofitable parallel blocks first.
	demoted := make([]Block, len(blocks))
	copy(demoted, blocks)
	for i, b := range demoted {
		if b.Kind == ParallelBlock && b.Cost() <= opt.ParallelOverhead {
			demoted[i].Kind = SequentialBlock
		}
	}

	var out []Block
	canFuse := func(a, b Block) bool {
		if a.Kind != b.Kind {
			return false
		}
		switch a.Kind {
		case PDTestBlock:
			return opt.FusePDTest
		case PrefixBlock:
			// Fusing associative recurrences is legal only without data
			// flow between them; the distribution already separated
			// flow-connected recurrences into one SCC, so contiguous
			// prefix blocks here are independent and may fuse.
			return true
		default:
			return true
		}
	}
	for _, b := range demoted {
		if len(out) > 0 && canFuse(out[len(out)-1], b) {
			last := &out[len(out)-1]
			last.Stmts = append(last.Stmts, b.Stmts...)
			continue
		}
		out = append(out, b)
	}
	if opt.Doacross {
		for i := range out {
			if out[i].Kind == SequentialBlock && i+1 < len(out) {
				out[i].Doacross = true
			}
		}
	}
	return out
}

// Plan runs Distribute then Fuse and returns the final block sequence —
// the complete Section 6 pipeline.
func Plan(g *Graph, opt FuseOptions) []Block {
	return Fuse(Distribute(g), opt)
}

// DispatcherKindOf maps a block kind to the Table 1 dispatcher kind its
// recurrence corresponds to, for the downstream strategy choice.
func DispatcherKindOf(b Block) loopir.DispatcherKind {
	switch b.Kind {
	case PrefixBlock:
		return loopir.AssociativeRecurrence
	case SequentialBlock:
		return loopir.GeneralRecurrence
	default:
		return loopir.MonotonicInduction
	}
}
