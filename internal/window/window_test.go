package window

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunExecutesAllIterations(t *testing.T) {
	n := 500
	counts := make([]atomic.Int32, n)
	res := Run(n, Config{Procs: 6, Window: 16}, func(i, vpn int) Control {
		counts[i].Add(1)
		return Continue
	})
	if res.Executed != n || res.QuitIndex != n {
		t.Fatalf("result %+v", res)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestSpanNeverExceedsWindow(t *testing.T) {
	f := func(nRaw, wRaw, procsRaw uint8) bool {
		n := int(nRaw)%300 + 10
		procs := int(procsRaw)%6 + 1
		w := int(wRaw)%40 + procs // window at least procs
		res := Run(n, Config{Procs: procs, Window: w, MinWindow: procs}, func(i, vpn int) Control {
			return Continue
		})
		return res.MaxSpan <= res.MaxWindow && res.Executed == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuitExecutesAllValidIterations(t *testing.T) {
	n := 400
	counts := make([]atomic.Int32, n)
	res := Run(n, Config{Procs: 5, Window: 8}, func(i, vpn int) Control {
		counts[i].Add(1)
		if i == 100 {
			return Quit
		}
		return Continue
	})
	if res.QuitIndex != 100 {
		t.Fatalf("QuitIndex = %d", res.QuitIndex)
	}
	for i := 0; i <= 100; i++ {
		if counts[i].Load() != 1 {
			t.Fatalf("valid iteration %d ran %d times", i, counts[i].Load())
		}
	}
	if res.Executed > 100+8+1 {
		t.Fatalf("window should bound overshoot: executed %d", res.Executed)
	}
}

func TestWindowBoundsOvershootTighterThanUnbounded(t *testing.T) {
	// With a quit at iteration 10 and a tiny window, at most ~window
	// iterations can be in flight past the exit.
	res := Run(10000, Config{Procs: 8, Window: 8}, func(i, vpn int) Control {
		if i == 10 {
			return Quit
		}
		return Continue
	})
	if res.Executed > 10+8+1 {
		t.Fatalf("executed %d, want <= window past the exit", res.Executed)
	}
}

func TestDynamicAdaptationShrinksWindow(t *testing.T) {
	// Budget shrinks after 100 completions: the window must come down.
	var completions atomic.Int64
	res := Run(2000, Config{
		Procs:         4,
		Window:        64,
		WritesPerIter: 2,
		Budget: func() int {
			if completions.Load() > 100 {
				return 16 // -> window target 8
			}
			return 256 // -> window target 128
		},
	}, func(i, vpn int) Control {
		completions.Add(1)
		return Continue
	})
	if res.MaxWindow <= 64 {
		t.Fatalf("window never grew toward the large budget: max %d", res.MaxWindow)
	}
	if res.MinWindowSeen >= 64 {
		t.Fatalf("window never shrank toward the small budget: min %d", res.MinWindowSeen)
	}
	if res.Executed != 2000 {
		t.Fatalf("executed %d", res.Executed)
	}
}

func TestStaticMemBudget(t *testing.T) {
	res := Run(500, Config{Procs: 2, Window: 100, WritesPerIter: 4, MemBudget: 32}, func(i, vpn int) Control {
		return Continue
	})
	// Budget 32 entries / 4 writes = window 8; it should shrink there.
	if res.MinWindowSeen > 8 {
		t.Fatalf("window did not shrink to the budget: min %d", res.MinWindowSeen)
	}
}

func TestDegenerateConfigs(t *testing.T) {
	// Zero procs, zero window: coerced, still correct.
	res := Run(50, Config{}, func(i, vpn int) Control { return Continue })
	if res.Executed != 50 {
		t.Fatalf("degenerate config executed %d", res.Executed)
	}
	// Empty space.
	res = Run(0, Config{Procs: 3, Window: 4}, func(i, vpn int) Control {
		t.Fatal("body must not run")
		return Continue
	})
	if res.Executed != 0 || res.QuitIndex != 0 {
		t.Fatalf("empty run %+v", res)
	}
}
