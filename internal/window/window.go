// Package window implements the resource-controlled self-scheduling of
// Section 8.2: iterations are issued under a sliding window of size w —
// at any time, the difference between the highest iteration started (h)
// and the lowest iteration not yet completed (l) is at most w — which
// bounds the time-stamp memory by w times the writes per iteration
// *without* the rigid global synchronization points of strip mining.
//
// The window size is dynamically determined at the application level:
// the loop monitors its own memory use (entries currently tracked) and
// grows the window when more memory can be used without degrading
// performance, shrinking it when the budget is exceeded — the paper's
// application-level self-monitoring, as opposed to OS-level monitors.
package window

import (
	"sync"
)

// Config configures a windowed execution.
type Config struct {
	// Procs is the number of virtual processors.
	Procs int
	// Window is the initial window size w (>= 1; coerced).
	Window int
	// WritesPerIter is the number of time-stamped writes an in-flight
	// iteration holds; used to translate the memory budget into a
	// window size.
	WritesPerIter int
	// MemBudget, if set, is the maximum number of time-stamp entries
	// the loop may hold at once; the window adapts to it dynamically.
	// Budget, if non-nil, is consulted instead on every adaptation —
	// modelling a budget that changes with system load.
	MemBudget int
	Budget    func() int
	// MinWindow floors adaptation (default: Procs, below which
	// processors would starve).
	MinWindow int
}

// Result reports a windowed execution.
type Result struct {
	// Executed iterations.
	Executed int
	// QuitIndex: smallest iteration that signalled the termination
	// condition (n if none).
	QuitIndex int
	// MaxSpan is the largest h-l+1 observed — it must never exceed the
	// largest window size in effect.
	MaxSpan int
	// MaxWindow / MinWindowSeen record the adaptation range.
	MaxWindow, MinWindowSeen int
}

// Control is the body verdict, as in sched.
type Control int

const (
	Continue Control = iota
	Quit
)

// Run executes iterations [0, n) of body on cfg.Procs goroutines under
// the sliding-window invariant.  body must be safe for concurrent
// invocation.  Iterations below the final QuitIndex are all executed.
func Run(n int, cfg Config, body func(i, vpn int) Control) Result {
	procs := cfg.Procs
	if procs < 1 {
		procs = 1
	}
	w := cfg.Window
	if w < 1 {
		w = 1
	}
	minW := cfg.MinWindow
	if minW < 1 {
		minW = procs
	}
	if w < minW {
		w = minW
	}
	budget := cfg.Budget
	if budget == nil && cfg.MemBudget > 0 {
		budget = func() int { return cfg.MemBudget }
	}

	var (
		mu     sync.Mutex
		cond   = sync.NewCond(&mu)
		next   int // next iteration to issue
		done   = map[int]bool{}
		low    int // lowest incomplete iteration
		quitAt = n // min quitting iteration
		res    Result
	)
	res.QuitIndex = n
	res.MaxWindow, res.MinWindowSeen = w, w

	adapt := func() {
		if budget == nil {
			return
		}
		wpi := cfg.WritesPerIter
		if wpi < 1 {
			wpi = 1
		}
		target := budget() / wpi
		if target < minW {
			target = minW
		}
		// Move gradually toward the target: grow/shrink by half the gap,
		// the application-level controller reacting to memory pressure.
		if target > w {
			w += (target - w + 1) / 2
		} else if target < w {
			w -= (w - target + 1) / 2
		}
		if w < minW {
			w = minW
		}
		if w > res.MaxWindow {
			res.MaxWindow = w
		}
		if w < res.MinWindowSeen {
			res.MinWindowSeen = w
		}
	}

	var wg sync.WaitGroup
	worker := func(vpn int) {
		defer wg.Done()
		for {
			mu.Lock()
			// Wait until the window admits the next iteration.
			for next < n && next <= quitAt && next-low >= w {
				cond.Wait()
			}
			if next >= n || next > quitAt {
				mu.Unlock()
				cond.Broadcast()
				return
			}
			i := next
			next++
			if span := i - low + 1; span > res.MaxSpan {
				res.MaxSpan = span
			}
			mu.Unlock()

			verdict := body(i, vpn)

			mu.Lock()
			if verdict == Quit && i < quitAt {
				quitAt = i
				res.QuitIndex = i
			}
			res.Executed++
			done[i] = true
			for done[low] {
				delete(done, low)
				low++
			}
			adapt()
			mu.Unlock()
			cond.Broadcast()
		}
	}

	wg.Add(procs)
	for k := 0; k < procs; k++ {
		go worker(k)
	}
	wg.Wait()
	return res
}
