package frontend

import (
	"fmt"
	"strings"
)

// Expr is an expression node.
type Expr interface {
	// String renders the expression (for diagnostics and tests).
	String() string
}

// Num is a numeric literal.
type Num struct{ Val float64 }

// Var is a scalar variable reference, or the special identifier `nil`.
type Var struct{ Name string }

// Index is an array element reference base[sub].
type Index struct {
	Base string
	Sub  Expr
}

// Call is a function application f(args...) — an opaque operation.
type Call struct {
	Fn   string
	Args []Expr
}

// Binary is a binary operation.
type Binary struct {
	Op   string // + - * / < > <= >= == != && ||
	L, R Expr
}

func (n Num) String() string { return trimFloat(n.Val) }
func (v Var) String() string { return v.Name }
func (x Index) String() string {
	return fmt.Sprintf("%s[%s]", x.Base, x.Sub)
}
func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(parts, ", "))
}
func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// Stmt is one body statement.
type Stmt interface{ stmt() }

// Assign is `lhs = expr` or `lhs[sub] = expr`.
type Assign struct {
	LHS  string // base variable name
	Sub  Expr   // nil for scalar assignment
	RHS  Expr
	Line int // 1-based statement position, used as the statement ID
}

// ExitIf is `if (cond) exit` — a termination condition in the body.
type ExitIf struct {
	Cond Expr
	Line int
}

func (Assign) stmt() {}
func (ExitIf) stmt() {}

// LoopAST is a parsed WHILE loop.
type LoopAST struct {
	// Cond is the loop-header condition (the loop continues while it
	// holds).  nil for `while (true)`.
	Cond Expr
	Body []Stmt
}

// vars collects every scalar variable and array base referenced by e,
// excluding function names (opaque operators).
func vars(e Expr, out map[string]bool) {
	switch t := e.(type) {
	case Num:
	case Var:
		if t.Name != "nil" && t.Name != "true" && t.Name != "false" {
			out[t.Name] = true
		}
	case Index:
		out[t.Base] = true
		vars(t.Sub, out)
	case Call:
		for _, a := range t.Args {
			vars(a, out)
		}
	case Binary:
		vars(t.L, out)
		vars(t.R, out)
	}
}

// hasNestedIndex reports whether e contains an array reference inside an
// array subscript — the "subscripted subscripts" pattern that defeats
// static dependence analysis (Section 5).
func hasNestedIndex(e Expr, inSub bool) bool {
	switch t := e.(type) {
	case Index:
		if inSub {
			return true
		}
		return hasNestedIndex(t.Sub, true)
	case Call:
		for _, a := range t.Args {
			if hasNestedIndex(a, inSub) {
				return true
			}
		}
	case Binary:
		return hasNestedIndex(t.L, inSub) || hasNestedIndex(t.R, inSub)
	}
	return false
}
