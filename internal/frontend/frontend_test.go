package frontend

import (
	"strings"
	"testing"

	"whilepar/internal/distribute"
	"whilepar/internal/loopir"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	ast, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, err := Analyze(ast)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return an
}

func TestListTraversalLoop(t *testing.T) {
	// Figure 1(b): general recurrence, RI terminator.
	an := analyze(t, `
		while (p != nil) {
			y[i] = work(p)
			i = i + 1
			p = next(p)
		}`)
	if an.Class.Dispatcher != loopir.GeneralRecurrence {
		t.Fatalf("dispatcher = %v", an.Class.Dispatcher)
	}
	if an.DispatcherVar != "p" {
		t.Fatalf("dispatcher var = %q", an.DispatcherVar)
	}
	if an.Class.Terminator != loopir.RI {
		t.Fatalf("terminator = %v", an.Class.Terminator)
	}
	if an.Class.CanOvershoot() {
		t.Fatal("RI list walk must not overshoot")
	}
}

func TestConditionalExitDOLoop(t *testing.T) {
	// Figure 1(d): induction dispatcher, RV exit on remainder data.
	an := analyze(t, `
		while (i < 1000) {
			err = residual(obs[i], i)
			if (err > eps) exit
			state[i] = smooth(obs[i])
			i = i + 1
		}`)
	if an.Class.Dispatcher != loopir.MonotonicInduction {
		t.Fatalf("dispatcher = %v", an.Class.Dispatcher)
	}
	if an.Class.Terminator != loopir.RV {
		t.Fatalf("terminator = %v", an.Class.Terminator)
	}
	if !an.Class.CanOvershoot() {
		t.Fatal("RV loop must be able to overshoot")
	}
	// Exactly two conditions: the RI header threshold and the RV exit.
	if len(an.Conds) != 2 {
		t.Fatalf("conds = %+v", an.Conds)
	}
	if an.Conds[0].Kind != loopir.RI || !an.Conds[0].Threshold {
		t.Fatalf("header cond = %+v", an.Conds[0])
	}
	if an.Conds[1].Kind != loopir.RV || !an.Conds[1].FromExit {
		t.Fatalf("exit cond = %+v", an.Conds[1])
	}
}

func TestMonotonicThresholdException(t *testing.T) {
	an := analyze(t, `
		while (i < n) {
			y[i] = f(i)
			i = i + 2
		}`)
	if !an.Class.ThresholdOnMonotonic {
		t.Fatalf("threshold exception not detected: %+v", an.Class)
	}
	if an.Class.CanOvershoot() {
		t.Fatal("monotonic threshold loop must not overshoot")
	}
}

func TestAssociativeRecurrence(t *testing.T) {
	an := analyze(t, `
		while (x < 1000000) {
			y[i] = x
			i = i + 1
			x = 0.5*x + 2
		}`)
	if an.Class.Dispatcher != loopir.AssociativeRecurrence {
		t.Fatalf("dispatcher = %v", an.Class.Dispatcher)
	}
	var xinfo *StmtInfo
	for i := range an.Stmts {
		if an.Stmts[i].LHS == "x" {
			xinfo = &an.Stmts[i]
		}
	}
	if xinfo == nil || xinfo.Kind != distribute.AssociativeRec || xinfo.A != 0.5 || xinfo.B != 2 {
		t.Fatalf("x statement = %+v", xinfo)
	}
}

func TestSubscriptedSubscriptsNeedPDTest(t *testing.T) {
	an := analyze(t, `
		while (i < n) {
			a[idx[i]] = a[idx[i]] + w[i]
			i = i + 1
		}`)
	if len(an.Unknown) != 1 || an.Unknown[0] != "a" {
		t.Fatalf("Unknown = %v", an.Unknown)
	}
	// The plan must carry a PD-test block.
	plan := distribute.Plan(an.Graph, distribute.FuseOptions{})
	found := false
	for _, b := range plan {
		if b.Kind == distribute.PDTestBlock {
			found = true
		}
	}
	if !found {
		t.Fatalf("no PD-test block in plan: %+v", plan)
	}
}

func TestDispatcherIsTopLevelRecurrence(t *testing.T) {
	// Both a general recurrence and an induction: the general one feeds
	// the work, so it is the hierarchically top-level dispatcher here
	// (it precedes the remainder in the dependence graph).
	an := analyze(t, `
		while (p != nil) {
			p = advance(p)
			out[k] = load(p)
			k = k + 1
		}`)
	if an.Class.Dispatcher != loopir.GeneralRecurrence {
		t.Fatalf("dispatcher = %v (%q)", an.Class.Dispatcher, an.DispatcherVar)
	}
}

func TestNoRecurrenceMeansImplicitCounter(t *testing.T) {
	an := analyze(t, `
		while (i < n) {
			b[i] = 2*a[i]
		}`)
	if an.DispatcherVar != "" || an.Class.Dispatcher != loopir.MonotonicInduction {
		t.Fatalf("%+v", an)
	}
}

func TestGeneralRecurrenceViaNonAffine(t *testing.T) {
	an := analyze(t, `
		while (x < 100) {
			x = x*x + 1
		}`)
	if an.Class.Dispatcher != loopir.GeneralRecurrence {
		t.Fatalf("x*x+1 should be a general recurrence, got %v", an.Class.Dispatcher)
	}
	// Division by a constant stays affine.
	an2 := analyze(t, `
		while (x > 1) {
			x = x/2 + 3
		}`)
	if an2.Class.Dispatcher != loopir.AssociativeRecurrence {
		t.Fatalf("x/2+3 should be associative, got %v", an2.Class.Dispatcher)
	}
	// Division BY the recurrence variable is not affine.
	an3 := analyze(t, `
		while (x > 1) {
			x = 2/x
		}`)
	if an3.Class.Dispatcher != loopir.GeneralRecurrence {
		t.Fatalf("2/x should be general, got %v", an3.Class.Dispatcher)
	}
}

func TestRVHeaderCondition(t *testing.T) {
	// The header reads a remainder-computed value: RV.
	an := analyze(t, `
		while (s < limit) {
			s = s + a[i]
			i = i + 1
		}`)
	// s = s + a[i] is self-dependent but reads a[i] too -> not affine in
	// numbers only -> general recurrence... the dispatcher is whichever
	// tops the graph; the condition on s is a recurrence variable so RI.
	if an.Class.Terminator != loopir.RI {
		t.Fatalf("condition on recurrence variable should be RI, got %v", an.Class.Terminator)
	}
	an2 := analyze(t, `
		while (err < eps) {
			err = compute(a[i])
			i = i + 1
		}`)
	if an2.Class.Terminator != loopir.RV {
		t.Fatalf("condition on remainder value should be RV, got %v", an2.Class.Terminator)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`for (i<n) {}`,
		`while (i<n) { i = }`,
		`while i<n { }`,
		`while (i<n) { i = i+1`,
		`while (i<n) { if (x) continue }`,
		`while (i<n) { } trailing`,
		`while (i<n) { a[i = 3 }`,
		`while (i $ n) { }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseExpressionShapes(t *testing.T) {
	ast, err := Parse(`while (true) { y = -x + f(a, b[i]) * 2 }`)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Cond != nil {
		t.Fatal("while(true) should have nil cond")
	}
	a := ast.Body[0].(Assign)
	got := a.RHS.String()
	if !strings.Contains(got, "f(a, b[i])") {
		t.Fatalf("RHS = %s", got)
	}
	// Unary minus folds into literals.
	ast2, _ := Parse(`while (true) { y = -3 }`)
	if n, ok := ast2.Body[0].(Assign).RHS.(Num); !ok || n.Val != -3 {
		t.Fatalf("unary minus: %+v", ast2.Body[0])
	}
}

func TestReportRendering(t *testing.T) {
	an := analyze(t, `
		while (p != nil) {
			a[idx[j]] = work(p)
			j = j + 1
			p = next(p)
			if (bad > 0) exit
			bad = check(a[idx[j]])
		}`)
	rep := an.Report()
	for _, want := range []string{
		"general recurrence", "RV", "PD test needed", "distribution plan",
		"in-body exit", "self-dependent",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
